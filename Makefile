# CI entry points for the GOOFI reproduction. `make ci` is what every PR
# must keep green: vet, build, the full test suite, the race-checked core
# and scan packages (the concurrent campaign runner and the packed scan
# datapath), and a short benchmark smoke run.

GO ?= go

# Repetitions for `make bench`; 6+ samples give benchstat enough data for
# a significance test.
BENCHCOUNT ?= 6

.PHONY: all build vet test race bench benchsmoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The worker-pool campaign engine lives in internal/core, the packed
# bitset + TAP fast path in internal/scan, and the chaos/retry taxonomy in
# internal/target; run all three under the race detector on every change.
race:
	$(GO) test -race ./internal/core/... ./internal/scan/... ./internal/target/...

# Benchstat-friendly benchmark run: every benchmark, with allocation
# stats, repeated BENCHCOUNT times. Capture before/after and compare:
#
#	make bench > old.txt
#	... apply change ...
#	make bench > new.txt
#	benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCHCOUNT) .

# Short benchmark smoke: the parallel campaign sweep plus the injection
# micro-benchmark, just enough iterations to catch regressions in wiring.
benchsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSCIFICampaignParallel|BenchmarkInjectionScanVsMemory' -benchtime 16x -benchmem .

ci: vet build test race benchsmoke
