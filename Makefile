# CI entry points for the GOOFI reproduction. `make ci` is what every PR
# must keep green: vet, build, the full test suite, the race-checked core
# (the concurrent campaign runner), and a short benchmark smoke run.

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The worker-pool campaign engine lives in internal/core; run it under the
# race detector on every change.
race:
	$(GO) test -race ./internal/core/...

# Short benchmark smoke: the parallel campaign sweep plus the injection
# micro-benchmark, just enough iterations to catch regressions in wiring.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSCIFICampaignParallel|BenchmarkInjectionScanVsMemory' -benchtime 16x .

ci: vet build test race bench
