# CI entry points for the GOOFI reproduction. `make ci` is what every PR
# must keep green: vet, build, the full test suite, the race-checked core,
# scan and obsv packages (the concurrent campaign runner, the packed scan
# datapath and the metrics broadcaster), and a short benchmark smoke run
# that also emits its machine-readable JSON summary.

GO ?= go

# Repetitions for `make bench`; 6+ samples give benchstat enough data for
# a significance test.
BENCHCOUNT ?= 6

# Benchmark summary comparison inputs for `make benchdiff`.
OLD ?= BENCH_old.json
NEW ?= BENCH_campaign.json

.PHONY: all build vet fmt test race bench benchdiff benchsmoke cover fuzzsmoke crashsmoke storagesmoke servesmoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt cleanliness gate: `gofmt -l` prints the names of misformatted files
# and exits 0 regardless, so fail explicitly when the list is non-empty.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# The worker-pool campaign engine (and the checkpoint-forking paths) live
# in internal/core, the packed bitset + TAP fast path in internal/scan,
# the chaos/retry taxonomy and the checkpoint stores in internal/target,
# the delta snapshot scheme in internal/thor, the restorable plant models
# in internal/envsim, the concurrent recorder/broadcaster in
# internal/obsv, the WAL group-commit machinery in internal/sqldb, and the
# fault-injecting filesystem (shared op counter + durability maps) in
# internal/vfs, the multi-tenant campaign service (queue scheduler,
# shard aggregator, drain) in internal/service, and the store layer that
# drains provenance journals while runners emit into them in
# internal/dbase; run all ten under the race detector on every change.
race:
	$(GO) test -race ./internal/core/... ./internal/scan/... ./internal/target/... ./internal/thor/... ./internal/envsim/... ./internal/obsv/... ./internal/sqldb/... ./internal/vfs/... ./internal/service/... ./internal/dbase/...

# Benchstat-friendly benchmark run: every benchmark, with allocation
# stats, repeated BENCHCOUNT times. The raw text lands in
# BENCH_campaign.txt (benchstat-compatible) and the averaged
# machine-readable summary in BENCH_campaign.json. Compare two summaries
# with `make benchdiff OLD=a.json NEW=b.json` (non-zero exit on any >10%
# regression). go test writes to a file rather than into a pipe so a
# benchmark failure fails the target.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCHCOUNT) . > BENCH_campaign.txt
	cat BENCH_campaign.txt
	$(GO) run ./cmd/goofi-bench -in BENCH_campaign.txt -out BENCH_campaign.json

benchdiff:
	$(GO) run ./cmd/goofi-bench -diff $(OLD) $(NEW)

# Short benchmark smoke: the parallel campaign sweep, the forked-campaign
# pair and the injection micro-benchmark, just enough time per benchmark
# to catch regressions in wiring. Time-based rather than a fixed
# iteration count so one-off setup (minting worker targets, the forked
# golden run) amortises roughly as it does in the full baseline run.
# Emits BENCH_smoke.json so CI artifacts carry machine-readable numbers.
benchsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSCIFICampaignParallel|BenchmarkCampaignForked|BenchmarkInjectionScanVsMemory' -benchtime 50ms -benchmem . > BENCH_smoke.txt
	cat BENCH_smoke.txt
	$(GO) run ./cmd/goofi-bench -in BENCH_smoke.txt -out BENCH_smoke.json

# Coverage across every package, with the per-package summary and a total.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Duration of each short fuzz run in fuzzsmoke.
FUZZTIME ?= 5s

# Short coverage-guided fuzz of the hostile-input surfaces: the SQL
# lexer/parser, the WAL record codec/replay, the packed scan-chain codec,
# the page-delta checkpoint round-trip and the storage-chaos fault-schedule
# codec. `go test -fuzz` takes one target per invocation, hence six runs.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseSelect$$' -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run '^$$' -fuzz '^FuzzLexer$$' -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run '^$$' -fuzz '^FuzzWALRecord$$' -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run '^$$' -fuzz '^FuzzBitsPackUnpack$$' -fuzztime $(FUZZTIME) ./internal/scan
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDelta$$' -fuzztime $(FUZZTIME) ./internal/thor
	$(GO) test -run '^$$' -fuzz '^FuzzFaultyVFS$$' -fuzztime $(FUZZTIME) ./internal/vfs

# SIGKILL crash-recovery smoke: a handful of live campaigns killed at
# seeded random points, recovered from the WAL, resumed to completion and
# verified row-for-row against a no-crash reference run. The full
# acceptance sweep is `go run ./cmd/crashtest -n 20`.
crashsmoke:
	$(GO) run ./cmd/crashtest -n 5 -experiments 80 -seed 7

# Simulated-crash storage sweep: 200 campaigns over the deterministic
# fault-injecting filesystem (vfs.Faulty), each power-cut at a seeded op
# with transient, torn and lying-fsync faults along the way, then
# recovered, resumed and verified row-for-row against a fault-free
# reference. No fork per iteration, so 200 seeds cost seconds where the
# SIGKILL harness above costs minutes.
storagesmoke:
	$(GO) run ./cmd/crashtest -sim -n 200 -experiments 16 -seed 1

# Campaign-service drain/restart smoke: ten cycles of a forked goofi
# serve daemon with two tenants submitted over HTTP, SIGTERMed at a
# seeded random point mid-campaign, inspected offline (every persisted
# row bit-identical to a no-crash reference), restarted on the same data
# directory, and polled until the resumed campaigns match the reference
# row for row. Shard counts rotate across iterations so sharded
# interruption and reassembly ride the same oracle.
servesmoke:
	$(GO) run ./cmd/crashtest -serve -n 10 -experiments 80 -seed 3

# After benchsmoke, gate the smoke numbers against the committed full-run
# baseline BENCH_campaign.json. Time only (-metrics ns): allocation
# metrics fold one-off setup into per-op numbers and so only compare
# between runs of similar length. The tolerance is deliberately generous
# (75%): the smoke run is short and lands on whatever machine CI uses,
# so only order-of-magnitude regressions — a forked campaign falling
# back to the plain path, a capture turning quadratic — should trip it.
ci: fmt vet build test race benchsmoke fuzzsmoke crashsmoke storagesmoke servesmoke
	$(GO) run ./cmd/goofi-bench -diff BENCH_campaign.json -tolerance 75 -metrics ns BENCH_smoke.json
