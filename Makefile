# CI entry points for the GOOFI reproduction. `make ci` is what every PR
# must keep green: vet, build, the full test suite, the race-checked core
# and scan packages (the concurrent campaign runner and the packed scan
# datapath), and a short benchmark smoke run.

GO ?= go

# Repetitions for `make bench`; 6+ samples give benchstat enough data for
# a significance test.
BENCHCOUNT ?= 6

.PHONY: all build vet test race bench benchsmoke cover fuzzsmoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The worker-pool campaign engine lives in internal/core, the packed
# bitset + TAP fast path in internal/scan, and the chaos/retry taxonomy in
# internal/target; run all three under the race detector on every change.
race:
	$(GO) test -race ./internal/core/... ./internal/scan/... ./internal/target/...

# Benchstat-friendly benchmark run: every benchmark, with allocation
# stats, repeated BENCHCOUNT times. Capture before/after and compare:
#
#	make bench > old.txt
#	... apply change ...
#	make bench > new.txt
#	benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCHCOUNT) .

# Short benchmark smoke: the parallel campaign sweep plus the injection
# micro-benchmark, just enough iterations to catch regressions in wiring.
benchsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSCIFICampaignParallel|BenchmarkInjectionScanVsMemory' -benchtime 16x -benchmem .

# Coverage across every package, with the per-package summary and a total.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Duration of each short fuzz run in fuzzsmoke.
FUZZTIME ?= 5s

# Short coverage-guided fuzz of the hostile-input surfaces: the SQL
# lexer/parser and the packed scan-chain codec. `go test -fuzz` takes one
# target per invocation, hence three runs.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseSelect$$' -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run '^$$' -fuzz '^FuzzLexer$$' -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run '^$$' -fuzz '^FuzzBitsPackUnpack$$' -fuzztime $(FUZZTIME) ./internal/scan

ci: vet build test race benchsmoke fuzzsmoke
