// Preinjection demonstrates the paper's §4 "pre-injection analysis"
// extension: a liveness analysis of the reference execution determines when
// each fault location holds live data, and the campaign planner skips
// injections that would be overwritten — raising the effective-error yield
// per experiment.
//
//	go run ./examples/preinjection
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"goofi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 250
	w := goofi.MustWorkload("crc16")

	// The liveness analysis runs one instrumented reference execution.
	liveness, err := goofi.AnalyzeLiveness(goofi.NewThorTarget(), w)
	if err != nil {
		return err
	}
	fmt.Printf("reference execution: %d instructions\n", liveness.MaxCycle())

	base := goofi.Campaign{
		Workload:       w,
		Technique:      goofi.TechSCIFI,
		Model:          goofi.Model{Kind: goofi.Transient},
		LocationFilter: "chain:internal.core",
		NExperiments:   n,
		Seed:           17,
		InjectMinTime:  10,
		InjectMaxTime:  liveness.MaxCycle() - 10,
	}

	// Estimate how much of the sampled fault space is dead.
	ops := goofi.NewThorTarget()
	if err := ops.InitTestCard(); err != nil {
		return err
	}
	locs, err := base.LocationFilter.Resolve(ops)
	if err != nil {
		return err
	}
	frac := liveness.LiveFraction(rand.New(rand.NewSource(1)), locs,
		base.InjectMinTime, base.InjectMaxTime, 5000)
	fmt.Printf("live fraction of the (location, time) fault space: %.1f%%\n\n", 100*frac)

	run := func(name string, withPlanner bool) (goofi.Report, error) {
		ops := goofi.NewThorTarget()
		db, err := goofi.NewMemoryDatabase()
		if err != nil {
			return goofi.Report{}, err
		}
		if err := goofi.RegisterTarget(db, ops, "pre-injection demo"); err != nil {
			return goofi.Report{}, err
		}
		c := base
		c.Name = name
		r := goofi.NewRunner(ops, db, c)
		if withPlanner {
			r.PlanFunc = goofi.LivePlanner(liveness, c.Model).Plan
		}
		if _, err := r.Run(context.Background()); err != nil {
			return goofi.Report{}, err
		}
		return goofi.Analyze(db, name)
	}

	plain, err := run("plain", false)
	if err != nil {
		return err
	}
	live, err := run("live", true)
	if err != nil {
		return err
	}

	fmt.Printf("%-30s %10s %10s\n", "", "plain", "pre-inj")
	fmt.Printf("%-30s %10d %10d\n", "experiments", plain.Total, live.Total)
	fmt.Printf("%-30s %10d %10d\n", "effective errors", plain.Effective, live.Effective)
	fmt.Printf("%-30s %9.1f%% %9.1f%%\n", "effective rate",
		100*float64(plain.Effective)/float64(plain.Total),
		100*float64(live.Effective)/float64(live.Total))
	fmt.Printf("%-30s %10d %10d\n", "non-effective (wasted runs)", plain.NonEffective, live.NonEffective)
	fmt.Printf("\nthe same statistical confidence is reached with roughly %.1fx\n",
		float64(live.Effective)/float64(plain.Effective))
	fmt.Println("fewer experiments when plans avoid dead locations.")
	return nil
}
