// Controlapp reproduces the paper's flagship use case (§1, ref. [12]): a
// SCIFI campaign against a jet-engine control application that protects
// itself with executable assertions and best-effort recovery, closing the
// loop with an environment simulator at every iteration (Fig. 1).
//
// The example runs the campaign, prints the §3.4 classification with the
// per-mechanism detection breakdown (hardware EDMs vs the software
// assertion), and then drills into one detected experiment with a
// detail-mode rerun — the parentExperiment scenario of §2.3.
//
//	go run ./examples/controlapp
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"goofi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ops := goofi.NewThorTarget()
	db, err := goofi.NewMemoryDatabase()
	if err != nil {
		return err
	}
	if err := goofi.RegisterTarget(db, ops, "jet-engine control target"); err != nil {
		return err
	}

	campaign := goofi.Campaign{
		Name:     "control-study",
		Workload: goofi.MustWorkload("control"),
		// Inject into the core AND the parity-protected caches: the cache
		// EDMs only matter for a technique that can reach them.
		Technique:      goofi.TechSCIFI,
		Model:          goofi.Model{Kind: goofi.Transient},
		LocationFilter: "chain:internal.core,chain:internal.icache,chain:internal.dcache",
		NExperiments:   300,
		Seed:           7,
		InjectMinTime:  100,
		InjectMaxTime:  3800,
	}
	fmt.Printf("running %d experiments on the control application...\n", campaign.NExperiments)
	if _, err := goofi.RunCampaign(context.Background(), ops, db, campaign, nil); err != nil {
		return err
	}

	report, err := goofi.Analyze(db, campaign.Name)
	if err != nil {
		return err
	}
	fmt.Print(report)

	// Find a detected experiment and rerun it in detail mode to trace the
	// error propagation.
	exps, err := db.Experiments(campaign.Name)
	if err != nil {
		return err
	}
	var victim string
	for _, e := range exps {
		if e.TerminationReason == "detected" && e.ParentExperiment == "" &&
			!strings.HasSuffix(e.ExperimentName, goofi.RefSuffix) {
			victim = e.ExperimentName
			break
		}
	}
	if victim == "" {
		fmt.Println("no detected experiment to trace")
		return nil
	}

	runner := goofi.NewRunner(ops, db, campaign)
	refDetail, err := runner.RerunDetail(campaign.Name + goofi.RefSuffix)
	if err != nil {
		return err
	}
	vicDetail, err := runner.RerunDetail(victim)
	if err != nil {
		return err
	}
	refRow, err := db.GetExperiment(refDetail)
	if err != nil {
		return err
	}
	vicRow, err := db.GetExperiment(vicDetail)
	if err != nil {
		return err
	}
	fmt.Printf("\ndetail rerun of %s (parentExperiment=%s):\n", vicDetail, vicRow.ParentExperiment)
	refSV, err := goofi.DecodeStateVector(refRow.StateVector)
	if err != nil {
		return err
	}
	vicSV, err := goofi.DecodeStateVector(vicRow.StateVector)
	if err != nil {
		return err
	}
	prop, err := goofi.ComparePropagation(refSV, vicSV)
	if err != nil {
		return err
	}
	fmt.Println("error propagation:", prop)
	return nil
}
