// Porting demonstrates the paper's §2.2 story — "adapting GOOFI to new
// target systems" — twice:
//
//  1. it runs a campaign against the bundled *second* target system, a
//     16-bit accumulator machine that implements only six of the sixteen
//     Framework operations (pre-runtime SWIFI needs nothing more); and
//
//  2. it defines a third, inline target right here in the example by
//     embedding goofi.BaseTarget (the Fig. 3 Framework template), showing
//     exactly how little code a new port needs.
//
//     go run ./examples/porting
package main

import (
	"context"
	"fmt"
	"log"

	"goofi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Part 1: the bundled second target.
	ops := goofi.NewSimpleTarget()
	db, err := goofi.NewMemoryDatabase()
	if err != nil {
		return err
	}
	if err := goofi.RegisterTarget(db, ops, "16-bit accumulator machine"); err != nil {
		return err
	}
	campaign := goofi.Campaign{
		Name:           "port-demo",
		Workload:       goofi.SimpleChecksumWorkload(),
		Technique:      goofi.TechSWIFIPre,
		Model:          goofi.Model{Kind: goofi.Transient},
		LocationFilter: "mem:0x800-0x840", // the checksum's input block
		NExperiments:   100,
		Seed:           3,
	}
	if _, err := goofi.RunCampaign(context.Background(), ops, db, campaign, nil); err != nil {
		return err
	}
	report, err := goofi.Analyze(db, "port-demo")
	if err != nil {
		return err
	}
	fmt.Println("campaign against the accumulator machine (no scan chains):")
	fmt.Print(report)

	// SCIFI cannot run here: the target leaves every scan operation on its
	// Framework default (ErrNotImplemented), so validation refuses it.
	scifi := campaign
	scifi.Name = "port-scifi"
	scifi.Technique = goofi.TechSCIFI
	scifi.LocationFilter = "chain:internal.core"
	if err := scifi.Validate(ops); err != nil {
		fmt.Printf("\nSCIFI against this target is rejected up front:\n  %v\n", err)
	}

	// Part 2: a third target in ~30 lines. toyTarget "runs" workloads by
	// noting how many memory faults were written into it — enough for the
	// engine's whole pre-runtime SWIFI flow to execute against it.
	toy := &toyTarget{}
	fmt.Println("\ninline toy target (BaseTarget embedding):")
	db2, err := goofi.NewMemoryDatabase()
	if err != nil {
		return err
	}
	if err := goofi.RegisterTarget(db2, toy, "toy"); err != nil {
		return err
	}
	c2 := campaign
	c2.Name = "toy-demo"
	c2.Workload = goofi.SimpleChecksumWorkload()
	c2.NExperiments = 10
	c2.LocationFilter = "mem:0x0-0x40"
	if _, err := goofi.RunCampaign(context.Background(), toy, db2, c2, nil); err != nil {
		return err
	}
	fmt.Printf("toy target executed %d workload runs and absorbed %d fault writes\n",
		toy.runs, toy.faultWrites)
	return nil
}

// toyTarget is the minimal possible port: memory is a plain map, every run
// "terminates" immediately, and everything else stays on the Framework
// defaults.
type toyTarget struct {
	goofi.BaseTarget
	mem         map[uint32]uint32
	runs        int
	faultWrites int
}

func (t *toyTarget) Name() string { return "toy" }

func (t *toyTarget) InitTestCard() error {
	t.mem = make(map[uint32]uint32)
	return nil
}

func (t *toyTarget) LoadWorkload(goofi.Workload) error { return nil }

func (t *toyTarget) WriteMemory(addr uint32, vals []uint32) error {
	for i, v := range vals {
		t.mem[addr+uint32(4*i)] = v
		t.faultWrites++
	}
	return nil
}

func (t *toyTarget) ReadMemory(addr uint32, n int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := range out {
		out[i] = t.mem[addr+uint32(4*i)]
	}
	return out, nil
}

func (t *toyTarget) RunWorkload() error { t.runs++; return nil }

func (t *toyTarget) WaitForTermination(goofi.TerminationSpec) (goofi.Termination, error) {
	return goofi.Termination{Reason: goofi.TerminWorkloadEnd}, nil
}

func (t *toyTarget) MemLayout() (uint32, uint32) { return 1 << 16, 0 }
