// Comparison runs the same fault budget through every injection technique —
// SCIFI, pre-runtime SWIFI, runtime SWIFI and pin-level — on the same
// workload, showing how the reachable fault space and the resulting
// dependability estimates differ between techniques (the question behind the
// comparison study the paper builds on, its ref. [10]).
//
//	go run ./examples/comparison
package main

import (
	"context"
	"fmt"
	"log"

	"goofi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 150
	configs := []struct {
		label     string
		technique string
		locations goofi.LocationFilter
	}{
		{"SCIFI (core+caches)", goofi.TechSCIFI,
			"chain:internal.core,chain:internal.icache,chain:internal.dcache"},
		{"SWIFI pre-runtime", goofi.TechSWIFIPre, "mem:0x0000-0x0140,mem:0x4000-0x4040"},
		{"SWIFI runtime", goofi.TechSWIFIRuntime, "mem:0x4000-0x4040"},
		{"pin-level", goofi.TechPinLevel, "chain:boundary.pins"},
	}

	fmt.Printf("%-22s %9s %9s %8s %7s %7s %9s\n",
		"technique", "locs", "detected", "escaped", "latent", "overwr", "coverage")
	for i, cfg := range configs {
		ops := goofi.NewThorTarget()
		db, err := goofi.NewMemoryDatabase()
		if err != nil {
			return err
		}
		if err := goofi.RegisterTarget(db, ops, "comparison target"); err != nil {
			return err
		}
		campaign := goofi.Campaign{
			Name:           fmt.Sprintf("cmp-%d", i),
			Workload:       goofi.MustWorkload("bubblesort"),
			Technique:      cfg.technique,
			Model:          goofi.Model{Kind: goofi.Transient},
			LocationFilter: cfg.locations,
			NExperiments:   n,
			Seed:           13,
			InjectMinTime:  10,
			InjectMaxTime:  1400,
		}
		locs, err := campaign.LocationFilter.Resolve(ops)
		if err != nil {
			return err
		}
		if _, err := goofi.RunCampaign(context.Background(), ops, db, campaign, nil); err != nil {
			return err
		}
		rep, err := goofi.Analyze(db, campaign.Name)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %9d %9d %8d %7d %7d %8.1f%%\n",
			cfg.label, len(locs),
			rep.Counts[goofi.OutcomeDetected], rep.Counts[goofi.OutcomeEscaped],
			rep.Counts[goofi.OutcomeLatent], rep.Counts[goofi.OutcomeOverwritten],
			100*rep.Coverage)
	}
	fmt.Println("\nnote: each technique samples a different fault space, so the")
	fmt.Println("coverage estimates differ — the reason GOOFI supports several")
	fmt.Println("techniques behind one campaign interface.")
	return nil
}
