// Quickstart: the complete GOOFI flow in one small program — configure the
// target, define a campaign, inject faults, analyse the outcomes (the four
// phases of paper §3).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"goofi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Configuration phase: a simulated Thor-RD target system and an
	// in-memory campaign database.
	ops := goofi.NewThorTarget()
	db, err := goofi.NewMemoryDatabase()
	if err != nil {
		return err
	}
	if err := goofi.RegisterTarget(db, ops, "quickstart target"); err != nil {
		return err
	}
	fmt.Println("scan chains of the target:")
	for _, ci := range ops.Chains() {
		fmt.Printf("  %-18s %5d bits (%d writable)\n", ci.Name, ci.Bits, len(ci.Writable))
	}

	// Set-up phase: 200 single transient bit-flips into the processor core
	// (register file, PC, PSW, pipeline latches) while a sort runs.
	campaign := goofi.Campaign{
		Name:           "quickstart",
		Workload:       goofi.MustWorkload("bubblesort"),
		Technique:      goofi.TechSCIFI,
		Model:          goofi.Model{Kind: goofi.Transient},
		LocationFilter: "chain:internal.core",
		NExperiments:   200,
		Seed:           42,
		InjectMinTime:  10,
		InjectMaxTime:  1400,
	}

	// Fault-injection phase, with a progress callback (paper Fig. 7).
	summary, err := goofi.RunCampaign(context.Background(), ops, db, campaign,
		func(p goofi.Progress) {
			if p.Done%50 == 0 && p.Done > 0 {
				fmt.Printf("  %d/%d experiments done, last: %s\n", p.Done, p.Total, p.LastOutcome)
			}
		})
	if err != nil {
		return err
	}
	fmt.Printf("campaign complete: %d experiments\n\n", summary.Completed)

	// Analysis phase: classify against the reference run (§3.4).
	report, err := goofi.Analyze(db, "quickstart")
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}
