module goofi

go 1.22
