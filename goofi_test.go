package goofi

import (
	"context"
	"strings"
	"testing"
)

// TestPublicAPIPipeline drives the whole tool through the facade only:
// configure → set up → inject → analyse, the four phases of paper §3.
func TestPublicAPIPipeline(t *testing.T) {
	ops := NewThorTarget()
	db, err := NewMemoryDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterTarget(db, ops, "facade test target"); err != nil {
		t.Fatal(err)
	}

	c := Campaign{
		Name:           "facade",
		Workload:       MustWorkload("bubblesort"),
		Technique:      TechSCIFI,
		Model:          Model{Kind: Transient},
		LocationFilter: "chain:internal.core",
		NExperiments:   12,
		Seed:           2,
		InjectMinTime:  10,
		InjectMaxTime:  1400,
	}
	var events int
	sum, err := RunCampaign(context.Background(), ops, db, c, func(Progress) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 12 || events != 13 {
		t.Fatalf("completed=%d events=%d", sum.Completed, events)
	}

	rep, err := Analyze(db, "facade")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 12 {
		t.Fatalf("report total = %d", rep.Total)
	}
	if !strings.Contains(rep.String(), "Detected errors") {
		t.Fatal("report format broken")
	}

	sql := GenerateAnalysisSQL("facade")
	if err := db.DB().ExecScript(sql); err != nil {
		t.Fatalf("generated SQL: %v", err)
	}
}

func TestFacadeInventories(t *testing.T) {
	ws := Workloads()
	if len(ws) != 5 {
		t.Fatalf("workloads = %v", ws)
	}
	if _, err := GetWorkload("control"); err != nil {
		t.Fatal(err)
	}
	if _, err := GetWorkload("zz"); err == nil {
		t.Fatal("unknown workload should fail")
	}
	techs := Techniques()
	if len(techs) < 5 {
		t.Fatalf("techniques = %v", techs)
	}
	if len(EDMs()) != 10 {
		t.Fatalf("EDMs = %v", EDMs())
	}
}

func TestMustWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustWorkload should panic on unknown names")
		}
	}()
	MustWorkload("definitely-not-a-workload")
}

func TestFacadeLivenessAndPropagation(t *testing.T) {
	a, err := AnalyzeLiveness(NewThorTarget(), MustWorkload("bubblesort"))
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxCycle() == 0 {
		t.Fatal("liveness analysis empty")
	}
	p := LivePlanner(a, Model{Kind: Transient})
	if p == nil {
		t.Fatal("nil planner")
	}

	// Detail campaign through the facade, then propagation analysis.
	ops := NewThorTarget()
	db, err := NewMemoryDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterTarget(db, ops, "t"); err != nil {
		t.Fatal(err)
	}
	c := Campaign{
		Name:           "facade-detail",
		Workload:       MustWorkload("crc16"),
		Technique:      TechSCIFI,
		Model:          Model{Kind: Transient},
		LocationFilter: "chain:internal.core/R3", // CRC accumulator: high impact
		NExperiments:   4,
		Seed:           5,
		InjectMinTime:  100,
		InjectMaxTime:  3000,
		DetailMode:     true,
	}
	if _, err := RunCampaign(context.Background(), ops, db, c, nil); err != nil {
		t.Fatal(err)
	}
	ref, err := db.GetExperiment("facade-detail" + RefSuffix)
	if err != nil {
		t.Fatal(err)
	}
	refSV, err := DecodeStateVector(ref.StateVector)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := db.GetExperiment("facade-detail/e0000")
	if err != nil {
		t.Fatal(err)
	}
	expSV, err := DecodeStateVector(exp.StateVector)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComparePropagation(refSV, expSV); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCustomTargetConfig(t *testing.T) {
	cfg := ThorConfig()
	cfg.WatchdogLimit = 4096
	ops := NewThorTargetWithConfig(cfg)
	if err := ops.InitTestCard(); err != nil {
		t.Fatal(err)
	}
	if got := ops.Name(); got == "" {
		t.Fatal("empty target name")
	}
}

func TestRegisterEnvSimulatorAndTechnique(t *testing.T) {
	// Custom environment simulator: constant plant.
	err := RegisterEnvSimulator("facade-const", func() EnvSimulator {
		return constSim{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterEnvSimulator("facade-const", func() EnvSimulator { return constSim{} }); err == nil {
		t.Fatal("duplicate env simulator should fail")
	}

	// Custom technique: delegate to SCIFI semantics through the public
	// Algorithm type (the §2.1 extension path through the facade).
	called := 0
	algo := Algorithm(func(ops TargetOperations, c Campaign, plan Plan) (Experiment, error) {
		called++
		if err := ops.InitTestCard(); err != nil {
			return Experiment{}, err
		}
		if err := ops.LoadWorkload(c.Workload); err != nil {
			return Experiment{}, err
		}
		if err := ops.RunWorkload(); err != nil {
			return Experiment{}, err
		}
		term, err := ops.WaitForTermination(TerminationSpec{MaxCycles: c.Workload.MaxCycles})
		if err != nil {
			return Experiment{}, err
		}
		return Experiment{Plan: plan, Term: term, State: &StateVector{}}, nil
	})
	if err := RegisterTechnique("facade-custom", algo, nil); err != nil {
		t.Fatal(err)
	}
	ops := NewThorTarget()
	db, err := NewMemoryDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterTarget(db, ops, "t"); err != nil {
		t.Fatal(err)
	}
	c := Campaign{
		Name:           "facade-custom-camp",
		Workload:       MustWorkload("bubblesort"),
		Technique:      "facade-custom",
		Model:          Model{Kind: Transient},
		LocationFilter: "chain:internal.core",
		NExperiments:   2,
		Seed:           1,
		InjectMinTime:  1,
		InjectMaxTime:  10,
	}
	sum, err := RunCampaign(context.Background(), ops, db, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 2 || called != 3 { // reference + 2 experiments
		t.Fatalf("completed=%d called=%d", sum.Completed, called)
	}
}

type constSim struct{}

func (constSim) Name() string           { return "facade-const" }
func (constSim) Step([]uint32) []uint32 { return []uint32{1, 2} }
func (constSim) Reset()                 {}

func TestFacadeSimpleTargetCampaign(t *testing.T) {
	ops := NewSimpleTarget()
	db, err := NewMemoryDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterTarget(db, ops, "second target"); err != nil {
		t.Fatal(err)
	}
	c := Campaign{
		Name:           "facade-simple",
		Workload:       SimpleChecksumWorkload(),
		Technique:      TechSWIFIPre,
		Model:          Model{Kind: Transient},
		LocationFilter: "mem:0x800-0x840",
		NExperiments:   5,
		Seed:           1,
	}
	sum, err := RunCampaign(context.Background(), ops, db, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 5 {
		t.Fatalf("completed = %d", sum.Completed)
	}
	if _, err := Analyze(db, "facade-simple"); err != nil {
		t.Fatal(err)
	}
}
