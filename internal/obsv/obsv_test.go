package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []int64{100, 200, 300, 400, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 2000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	s := h.Stats("x")
	if s.MinNs != 100 || s.MaxNs != 1000 {
		t.Fatalf("min=%d max=%d", s.MinNs, s.MaxNs)
	}
	// Power-of-two buckets: the p50 estimate must land within a factor of
	// two of the true median (300) and inside [min, max].
	p50 := h.Quantile(0.5)
	if p50 < 100 || p50 > 1000 {
		t.Fatalf("p50=%d outside observed range", p50)
	}
	if h.Quantile(1) != 1000 {
		t.Fatalf("p100=%d, want clamp to max", h.Quantile(1))
	}
	if h.Quantile(0) < 100 {
		t.Fatalf("p0=%d, want clamp to min", h.Quantile(0))
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5) // clamped to 0
	s := h.Stats("z")
	if s.Count != 2 || s.MinNs != 0 || s.MaxNs != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if h.Quantile(0.99) != 0 {
		t.Fatalf("q=%d", h.Quantile(0.99))
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge identity")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram identity")
	}
}

// TestNilRecorderSafe proves the whole disabled surface no-ops.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	sp := r.Begin(PhaseInit, 0)
	sp.End()
	r.BeginGroup("g", 1).End()
	r.Count("c", 1)
	r.SetGauge("g", 2)
	r.Observe("h", time.Millisecond)
	r.ObserveSince("h", time.Now())
	r.SetWallClock(time.Second)
	if r.PhaseTotal(PhaseInit) != 0 || r.Registry() != nil {
		t.Fatal("nil recorder leaked state")
	}
	if got := r.Snapshot(); got.WallClockNs != 0 || len(got.Phases) != 0 {
		t.Fatalf("nil snapshot = %+v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("nil trace invalid: %v", err)
	}
}

// TestDisabledPathZeroAlloc pins the acceptance criterion that a nil
// recorder costs zero allocations on the hot loop.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		sp := r.Begin(PhaseScanIn, 0)
		sp.End()
		r.Count("x", 1)
		r.BeginGroup("exp", 0).End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op", allocs)
	}
	// The provenance journal keeps the invariant: no journal (or no
	// recorder at all) means emitting wide events costs nothing — the hooks
	// guard their fmt.Sprintf detail building behind Enabled().
	for _, rec := range []*Recorder{nil, New(Options{})} {
		tc := TraceContext{Rec: rec, Campaign: "c", Experiment: "c/e0001"}
		allocs = testing.AllocsPerRun(100, func() {
			if tc.Enabled() {
				tc.Emit(EvPlan, "plan=never-built")
			}
			rec.Journal().Emit(WideEvent{Kind: EvWALCommit})
		})
		if allocs != 0 {
			t.Fatalf("disabled journal path (rec=%v) allocates %.1f per op", rec, allocs)
		}
	}
}

// TestEnabledMetricsNoTraceZeroAlloc: with metrics on but tracing off, leaf
// spans still avoid allocation (value Span, atomic histogram).
func TestEnabledMetricsNoTraceZeroAlloc(t *testing.T) {
	r := New(Options{})
	allocs := testing.AllocsPerRun(100, func() {
		sp := r.Begin(PhaseScanIn, 0)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("metrics-only span allocates %.1f per op", allocs)
	}
}

func TestRecorderPhasesAndTrace(t *testing.T) {
	r := New(Options{Trace: true})
	sp := r.Begin(PhaseWorkload, 2)
	time.Sleep(time.Millisecond)
	sp.End()
	r.BeginGroup("exp/e0001", 2).End()
	if r.PhaseTotal(PhaseWorkload) < int64(time.Millisecond) {
		t.Fatalf("workload total = %d", r.PhaseTotal(PhaseWorkload))
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace invalid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 2 {
		t.Fatalf("events = %d", len(tf.TraceEvents))
	}
	byName := map[string]TraceEvent{}
	for _, e := range tf.TraceEvents {
		byName[e.Name] = e
	}
	wl, ok := byName["workload"]
	if !ok || wl.Ph != "X" || wl.Cat != "phase" || wl.Tid != 2 || wl.Dur < 1000 {
		t.Fatalf("workload event = %+v", wl)
	}
	if g, ok := byName["exp/e0001"]; !ok || g.Cat != "group" {
		t.Fatalf("group event = %+v", g)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
}

func TestTraceCapDrops(t *testing.T) {
	r := New(Options{Trace: true, TraceCap: 2})
	for i := 0; i < 5; i++ {
		r.Begin(PhaseInit, 0).End()
	}
	buffered, dropped := r.tracer.stats()
	if buffered != 2 || dropped != 3 {
		t.Fatalf("buffered=%d dropped=%d", buffered, dropped)
	}
	if s := r.Snapshot(); s.TraceDropped != 3 {
		t.Fatalf("snapshot dropped = %d", s.TraceDropped)
	}
	// Metrics keep counting past the trace cap.
	if r.phases[PhaseInit].Count() != 5 {
		t.Fatalf("phase count = %d", r.phases[PhaseInit].Count())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := New(Options{})
	r.Begin(PhaseFlush, 0).End()
	r.Count("experiments.completed", 7)
	r.SetGauge("workers", 4)
	r.Observe("store.PutExperiment", 250*time.Microsecond)
	r.SetWallClock(3 * time.Second)

	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ParseSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.WallClockNs != int64(3*time.Second) {
		t.Fatalf("wall = %d", s.WallClockNs)
	}
	if s.Counters["experiments.completed"] != 7 || s.Gauges["workers"] != 4 {
		t.Fatalf("scalars = %+v %+v", s.Counters, s.Gauges)
	}
	if _, ok := s.Gauges["campaign.wall_ns"]; ok {
		t.Fatal("wall gauge should be folded into WallClockNs")
	}
	if len(s.Phases) != int(NumPhases) {
		t.Fatalf("phases = %d", len(s.Phases))
	}
	found := false
	for _, h := range s.Histograms {
		if h.Name == "store.PutExperiment" && h.Count == 1 {
			found = true
		}
		if strings.HasPrefix(h.Name, "phase.") {
			t.Fatalf("phase histogram %q leaked into Histograms", h.Name)
		}
	}
	if !found {
		t.Fatal("store histogram missing from snapshot")
	}
	if s.PhaseSumNs() <= 0 {
		t.Fatalf("phase sum = %d", s.PhaseSumNs())
	}

	if _, err := ParseSnapshot(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed snapshot should fail to parse")
	}
}

func TestSnapshotFormat(t *testing.T) {
	r := New(Options{})
	sp := r.Begin(PhaseWorkload, 0)
	time.Sleep(200 * time.Microsecond)
	sp.End()
	r.Count("experiments.completed", 1)
	r.Observe("store.Save", 2*time.Millisecond)
	r.SetWallClock(time.Millisecond)

	var buf bytes.Buffer
	r.Snapshot().Format(&buf)
	out := buf.String()
	for _, want := range []string{"campaign wall-clock", "workload", "store.Save", "experiments.completed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted stats missing %q:\n%s", want, out)
		}
	}
	// Phases with zero observations are suppressed from the table.
	if strings.Contains(out, "retry-backoff") {
		t.Fatalf("empty phase rendered:\n%s", out)
	}
}

func TestGroupOf(t *testing.T) {
	// Non-carrier values get a no-op span.
	GroupOf(42, "x").End()
	GroupOf(nil, "x").End()

	r := New(Options{Trace: true})
	c := testCarrier{r: r, tid: 3}
	GroupOf(c, "inject").End()
	buffered, _ := r.tracer.stats()
	if buffered != 1 {
		t.Fatalf("events = %d", buffered)
	}
}

type testCarrier struct {
	r   *Recorder
	tid int32
}

func (c testCarrier) ObsvRecorder() *Recorder { return c.r }
func (c testCarrier) ObsvTID() int32          { return c.tid }

func TestPhaseString(t *testing.T) {
	if PhaseScanIn.String() != "scan-in" || Phase(200).String() != "unknown" {
		t.Fatal("phase names")
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[int64]string{
		0:             "0",
		500:           "500ns",
		1500:          "1.5µs",
		2_500_000:     "2.50ms",
		3_000_000_000: "3.00s",
	}
	for ns, want := range cases {
		if got := fmtDur(ns); got != want {
			t.Errorf("fmtDur(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g*1000 + i))
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.Stats("c")
	if s.MinNs != 0 || s.MaxNs != 3999 {
		t.Fatalf("min=%d max=%d", s.MinNs, s.MaxNs)
	}
}
