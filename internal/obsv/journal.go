package obsv

import (
	"sync"
	"time"
)

// Provenance tracing: structured wide events that reconstruct the causal
// story of one experiment across every layer of the engine — the plan drawn
// for it, each attempt with the chaos faults that hit it, retry backoffs,
// hang/quarantine verdicts, checkpoint restores, the store flush that logged
// its row, the WAL commit batch (and fsync) that made the row durable, and
// any storage faults fired while the attempt was in flight.
//
// Events flow into a bounded ring Journal attached to the Recorder
// (Options.Journal). The disabled state follows the package's nil rule: a
// nil *Journal no-ops, Recorder.Journal() returns nil when journalling is
// off, and emitters guard all detail-string formatting behind that nil
// check, so the disabled path costs one branch and zero allocations.

// Event kinds. A fixed vocabulary rather than free-form strings so renderers
// and tests can switch on them.
const (
	// EvPlan: an injection plan was drawn for an experiment.
	EvPlan = "plan"
	// EvAttempt: one experiment attempt ran; TimeNs is its start, DurNs its
	// duration, Detail its outcome.
	EvAttempt = "attempt"
	// EvInject: the fault-injection algorithm performed an injection.
	EvInject = "inject"
	// EvRetry: the engine slept a retry backoff after a transient fault;
	// Detail names the fault that caused it.
	EvRetry = "retry-backoff"
	// EvHang: the wall-clock watchdog gave up on an attempt.
	EvHang = "hang"
	// EvQuarantine: a target instance was retired and replaced.
	EvQuarantine = "quarantine"
	// EvRestore: the forking engine restored a golden-run checkpoint instead
	// of re-executing the prefix.
	EvRestore = "checkpoint-restore"
	// EvChaosError, EvChaosPanic, EvChaosHang: the Flaky chaos wrapper
	// injected a fault into the attempt in flight.
	EvChaosError = "chaos-error"
	EvChaosPanic = "chaos-panic"
	EvChaosHang  = "chaos-hang"
	// EvRowDurable: the store acknowledged an experiment row; Detail carries
	// the WAL commit batch and fsync state that made it durable.
	EvRowDurable = "row-durable"
	// EvWALCommit: the WAL committer wrote one group-commit batch.
	EvWALCommit = "wal-commit"
	// EvStorageFault: the fault-injecting filesystem fired under the campaign
	// database while the run was in flight.
	EvStorageFault = "storage-fault"
	// EvHTTPRequest: the service accepted an HTTP request that concerns this
	// campaign; Detail carries the request id and route.
	EvHTTPRequest = "http-request"
)

// Virtual thread ids for emitters that do not run on a campaign worker.
const (
	// WALCommitTID is the WAL group-commit goroutine.
	WALCommitTID int32 = -1
	// StorageTID is the storage layer (vfs fault injection).
	StorageTID int32 = -2
	// HTTPTID is the service HTTP layer.
	HTTPTID int32 = -3
)

// WideEvent is one structured provenance event. The JSON form is the NDJSON
// currency of the service's /trace endpoint and the persisted row format of
// the ExperimentTraceEvents table.
type WideEvent struct {
	// Seq is the journal-assigned append order (unique per journal).
	Seq int64 `json:"seq"`
	// RunID groups the events of one persisted run; 0 while still in the
	// live journal (assigned when the journal is drained to the store).
	RunID int64 `json:"runId,omitempty"`
	// TimeNs is the event's wall-clock time (Unix nanoseconds). For span
	// events (EvAttempt, EvRetry, EvWALCommit) it is the start time.
	TimeNs int64 `json:"timeNs"`
	// DurNs is the span duration; 0 for instant events.
	DurNs int64 `json:"durNs,omitempty"`
	// Kind is one of the Ev* constants.
	Kind string `json:"kind"`
	// Campaign names the campaign the event belongs to.
	Campaign string `json:"campaign,omitempty"`
	// Shard is the in-process shard the emitting runner executed.
	Shard int `json:"shard,omitempty"`
	// Experiment is the experiment name when the emitter knows it; storage
	// and WAL events leave it empty and are attributed at render time by
	// timestamp overlap (AttributeEvents).
	Experiment string `json:"experiment,omitempty"`
	// Index is the experiment's campaign index (meaningful with Experiment).
	Index int `json:"index,omitempty"`
	// Attempt is the zero-based attempt number the event belongs to.
	Attempt int `json:"attempt,omitempty"`
	// TID is the virtual thread of the emitter: 0 coordinator, 1..N workers,
	// or one of the negative reserved ids above.
	TID int32 `json:"tid"`
	// Detail is a human-readable elaboration (fault kind, WAL batch, error).
	Detail string `json:"detail,omitempty"`
}

// DefaultJournalCap bounds the ring journal when Options.JournalCap is zero:
// enough for tens of thousands of experiments' worth of events without
// letting a runaway campaign hold gigabytes.
const DefaultJournalCap = 1 << 16

// Journal is a bounded, drop-counting ring of wide events. When full, the
// oldest event is overwritten and Dropped is incremented — recent history
// wins, and the drop counter keeps the loss honest. All methods are safe for
// concurrent use and no-op on a nil *Journal.
type Journal struct {
	mu      sync.Mutex
	buf     []WideEvent
	start   int // ring index of the oldest buffered event
	n       int // buffered events
	seq     int64
	dropped int64
}

// NewJournal builds a journal holding at most cap events (0 = default).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]WideEvent, capacity)}
}

// Emit appends one event, assigning its Seq and stamping TimeNs with the
// current wall clock when the emitter did not provide one.
func (j *Journal) Emit(ev WideEvent) {
	if j == nil {
		return
	}
	if ev.TimeNs == 0 {
		ev.TimeNs = time.Now().UnixNano()
	}
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	if j.n < len(j.buf) {
		j.buf[(j.start+j.n)%len(j.buf)] = ev
		j.n++
	} else {
		j.buf[j.start] = ev
		j.start = (j.start + 1) % len(j.buf)
		j.dropped++
	}
	j.mu.Unlock()
}

// Events returns a copy of the buffered events in append (Seq) order.
func (j *Journal) Events() []WideEvent {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]WideEvent, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.start+i)%len(j.buf)]
	}
	return out
}

// Len reports the buffered event count.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Dropped reports how many events were overwritten past the ring capacity.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// TraceContext identifies the experiment attempt in flight: campaign run →
// shard → experiment → attempt. It travels from the Runner into the target
// wrappers (via target.ApplyTraceContext) so layers that inject or observe
// faults can attribute their events to the attempt they hit. The zero value
// is the disabled state.
type TraceContext struct {
	// Rec carries the recorder whose journal receives the events.
	Rec        *Recorder
	Campaign   string
	Shard      int
	Experiment string
	Index      int
	Attempt    int
	TID        int32
}

// Enabled reports whether events emitted through this context go anywhere.
// Emitters must guard detail-string formatting behind it so the disabled
// path stays allocation-free.
func (tc TraceContext) Enabled() bool {
	return tc.Rec.Journal() != nil
}

// Emit records one instant event carrying the context's attribution.
func (tc TraceContext) Emit(kind, detail string) {
	tc.emit(kind, detail, 0, 0)
}

// EmitSpan records one span event: TimeNs = start, DurNs = elapsed since.
func (tc TraceContext) EmitSpan(kind, detail string, start time.Time) {
	tc.emit(kind, detail, start.UnixNano(), int64(time.Since(start)))
}

func (tc TraceContext) emit(kind, detail string, timeNs, durNs int64) {
	j := tc.Rec.Journal()
	if j == nil {
		return
	}
	j.Emit(WideEvent{
		TimeNs:     timeNs,
		DurNs:      durNs,
		Kind:       kind,
		Campaign:   tc.Campaign,
		Shard:      tc.Shard,
		Experiment: tc.Experiment,
		Index:      tc.Index,
		Attempt:    tc.Attempt,
		TID:        tc.TID,
		Detail:     detail,
	})
}
