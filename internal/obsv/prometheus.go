package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (text/plain; version=0.0.4), dependency-free. Every
// instrument in the snapshot is exported:
//
//   - counters  → goofi_<name>_total
//   - gauges    → goofi_<name>
//   - the campaign wall-clock → goofi_campaign_wall_clock_seconds
//   - phase histograms → one goofi_phase_duration_seconds family with a
//     phase label, cumulative le buckets from the power-of-two bucket edges
//   - other histograms → goofi_<name>_seconds histogram families
//   - dropped trace events → goofi_trace_events_dropped_total
//
// Durations are converted from nanoseconds to Prometheus base seconds.
// Output is deterministic: families and label values appear in sorted order.
func WritePrometheus(w io.Writer, s Snapshot) error {
	return writePrometheus(w, []labeledSnapshot{{snap: s}})
}

// WritePrometheusMulti renders several snapshots — keyed by campaign id — as
// one exposition. The text format requires each metric family to appear
// exactly once, so the writer unions the instrument names across snapshots,
// emits each family header once, and distinguishes the per-campaign series
// with a campaign label. The campaign service multiplexes every running
// campaign's recorder onto its single /metrics endpoint through this; its
// service-level snapshot (HTTP latency, runtime gauges) travels under the
// empty key and carries no campaign label.
func WritePrometheusMulti(w io.Writer, snaps map[string]Snapshot) error {
	keys := make([]string, 0, len(snaps))
	for k := range snaps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ls := make([]labeledSnapshot, 0, len(keys))
	for _, k := range keys {
		labels := ""
		if k != "" {
			labels = `campaign="` + promLabelValue(k) + `"`
		}
		ls = append(ls, labeledSnapshot{labels: labels, snap: snaps[k]})
	}
	return writePrometheus(w, ls)
}

// labeledSnapshot pairs one snapshot with the raw label body (`k="v",...` or
// empty) attached to every series it contributes.
type labeledSnapshot struct {
	labels string
	snap   Snapshot
}

// writePrometheus is the shared exposition core: every family appears once,
// holding one series (or bucket set) per labeled snapshot that carries the
// instrument.
func writePrometheus(w io.Writer, ls []labeledSnapshot) error {
	pw := &promWriter{w: w}

	anyWall := false
	for _, l := range ls {
		if l.snap.WallClockNs > 0 {
			anyWall = true
			break
		}
	}
	if anyWall {
		pw.family("goofi_campaign_wall_clock_seconds", "gauge",
			"Total campaign wall-clock time so far.")
		for _, l := range ls {
			if l.snap.WallClockNs > 0 {
				pw.sample("goofi_campaign_wall_clock_seconds", l.labels, promSeconds(l.snap.WallClockNs))
			}
		}
	}

	for _, name := range unionNames(ls, func(s Snapshot) map[string]int64 { return s.Counters }) {
		fam := "goofi_" + promName(name) + "_total"
		pw.family(fam, "counter", "Counter "+name+".")
		for _, l := range ls {
			if v, ok := l.snap.Counters[name]; ok {
				pw.sample(fam, l.labels, float64(v))
			}
		}
	}
	for _, name := range unionNames(ls, func(s Snapshot) map[string]int64 { return s.Gauges }) {
		fam := "goofi_" + promName(name)
		pw.family(fam, "gauge", "Gauge "+name+".")
		for _, l := range ls {
			if v, ok := l.snap.Gauges[name]; ok {
				pw.sample(fam, l.labels, float64(v))
			}
		}
	}
	anyDropped := false
	for _, l := range ls {
		if l.snap.TraceDropped > 0 {
			anyDropped = true
			break
		}
	}
	if anyDropped {
		pw.family("goofi_trace_events_dropped_total", "counter",
			"Trace events discarded beyond the buffer cap.")
		for _, l := range ls {
			if l.snap.TraceDropped > 0 {
				pw.sample("goofi_trace_events_dropped_total", l.labels, float64(l.snap.TraceDropped))
			}
		}
	}

	anyPhases := false
	for _, l := range ls {
		if len(l.snap.Phases) > 0 {
			anyPhases = true
			break
		}
	}
	if anyPhases {
		pw.family("goofi_phase_duration_seconds", "histogram",
			"Leaf-phase durations partitioning the campaign wall-clock.")
		for _, l := range ls {
			for _, p := range l.snap.Phases {
				pw.histogram("goofi_phase_duration_seconds",
					joinLabels(l.labels, `phase="`+p.Phase+`"`), p.HistogramStats)
			}
		}
	}
	histNames := []string{}
	httpNames := []string{}
	seen := map[string]bool{}
	for _, l := range ls {
		for _, h := range l.snap.Histograms {
			if seen[h.Name] {
				continue
			}
			seen[h.Name] = true
			if strings.HasPrefix(h.Name, httpHistPrefix) {
				httpNames = append(httpNames, h.Name)
			} else {
				histNames = append(histNames, h.Name)
			}
		}
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		fam := "goofi_" + promName(name) + "_seconds"
		pw.family(fam, "histogram", "Latency histogram "+name+".")
		for _, l := range ls {
			for _, h := range l.snap.Histograms {
				if h.Name == name {
					pw.histogram(fam, l.labels, h)
				}
			}
		}
	}
	if len(httpNames) > 0 {
		sort.Strings(httpNames)
		pw.family("goofi_http_request_duration_seconds", "histogram",
			"Service HTTP request latency by route and status.")
		for _, name := range httpNames {
			route, status := splitHTTPHistName(name)
			lbl := `route="` + promLabelValue(route) + `",status="` + promLabelValue(status) + `"`
			for _, l := range ls {
				for _, h := range l.snap.Histograms {
					if h.Name == name {
						pw.histogram("goofi_http_request_duration_seconds", joinLabels(l.labels, lbl), h)
					}
				}
			}
		}
	}
	return pw.err
}

// httpHistPrefix marks the per-route/status HTTP latency histograms the
// service records ("http|<route>|<status>"). They fold into one
// goofi_http_request_duration_seconds family with route and status labels
// instead of mangling the route into a metric name.
const httpHistPrefix = "http|"

// HTTPHistName builds the histogram name under which one route/status pair's
// request latencies are recorded.
func HTTPHistName(route string, status int) string {
	return httpHistPrefix + route + "|" + strconv.Itoa(status)
}

// splitHTTPHistName is the inverse of HTTPHistName.
func splitHTTPHistName(name string) (route, status string) {
	rest := strings.TrimPrefix(name, httpHistPrefix)
	if i := strings.LastIndexByte(rest, '|'); i >= 0 {
		return rest[:i], rest[i+1:]
	}
	return rest, ""
}

// unionNames collects the sorted union of one instrument map's keys across
// all labeled snapshots.
func unionNames(ls []labeledSnapshot, get func(Snapshot) map[string]int64) []string {
	seen := map[string]bool{}
	out := []string{}
	for _, l := range ls {
		for n := range get(l.snap) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out
}

// joinLabels concatenates two raw label bodies, either of which may be empty.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

// promLabelValue escapes a string for use inside a label value's quotes per
// the exposition format: backslash, double quote and newline.
func promLabelValue(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// promWriter accumulates exposition lines, keeping the first write error.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// family emits the HELP and TYPE header of one metric family.
func (p *promWriter) family(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels is the raw `k="v",...` body or "".
func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	p.printf("%s%s %s\n", name, labels, promFloat(v))
}

// histogram emits the cumulative bucket/sum/count series of one histogram
// under the family name, with extraLabels attached to every sample.
func (p *promWriter) histogram(name, extraLabels string, h HistogramStats) {
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	cum := int64(0)
	for _, b := range h.Buckets {
		cum += b.Count
		le := promFloat(promSeconds(b.UpperNs))
		if b.UpperNs == math.MaxInt64 {
			le = "+Inf"
		}
		p.printf("%s_bucket{%sle=%q} %d\n", name, extraLabels+sep, le, cum)
	}
	// Prometheus requires a terminal +Inf bucket equal to the total count.
	if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].UpperNs != math.MaxInt64 {
		p.printf("%s_bucket{%sle=\"+Inf\"} %d\n", name, extraLabels+sep, h.Count)
	}
	p.sample(name+"_sum", extraLabels, promSeconds(h.TotalNs))
	p.printf("%s_count%s %d\n", name, bracket(extraLabels), h.Count)
}

func bracket(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// promName maps an instrument name onto the Prometheus metric-name charset:
// every run of characters outside [a-zA-Z0-9_] becomes one underscore.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	pendingSep := false
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			pendingSep = sb.Len() > 0
			continue
		}
		if pendingSep {
			sb.WriteByte('_')
			pendingSep = false
		}
		sb.WriteRune(r)
	}
	out := sb.String()
	if out == "" {
		return "unnamed"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// promSeconds converts nanoseconds to seconds.
func promSeconds(ns int64) float64 { return float64(ns) / 1e9 }

// promFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, no exponent surprises for integers.
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedNames(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
