package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (text/plain; version=0.0.4), dependency-free. Every
// instrument in the snapshot is exported:
//
//   - counters  → goofi_<name>_total
//   - gauges    → goofi_<name>
//   - the campaign wall-clock → goofi_campaign_wall_clock_seconds
//   - phase histograms → one goofi_phase_duration_seconds family with a
//     phase label, cumulative le buckets from the power-of-two bucket edges
//   - other histograms → goofi_<name>_seconds histogram families
//   - dropped trace events → goofi_trace_events_dropped_total
//
// Durations are converted from nanoseconds to Prometheus base seconds.
// Output is deterministic: families and label values appear in sorted order.
func WritePrometheus(w io.Writer, s Snapshot) error {
	pw := &promWriter{w: w}

	if s.WallClockNs > 0 {
		pw.family("goofi_campaign_wall_clock_seconds", "gauge",
			"Total campaign wall-clock time so far.")
		pw.sample("goofi_campaign_wall_clock_seconds", "", promSeconds(s.WallClockNs))
	}

	for _, name := range sortedNames(s.Counters) {
		fam := "goofi_" + promName(name) + "_total"
		pw.family(fam, "counter", "Counter "+name+".")
		pw.sample(fam, "", float64(s.Counters[name]))
	}
	for _, name := range sortedNames(s.Gauges) {
		fam := "goofi_" + promName(name)
		pw.family(fam, "gauge", "Gauge "+name+".")
		pw.sample(fam, "", float64(s.Gauges[name]))
	}
	if s.TraceDropped > 0 {
		pw.family("goofi_trace_events_dropped_total", "counter",
			"Trace events discarded beyond the buffer cap.")
		pw.sample("goofi_trace_events_dropped_total", "", float64(s.TraceDropped))
	}

	if len(s.Phases) > 0 {
		pw.family("goofi_phase_duration_seconds", "histogram",
			"Leaf-phase durations partitioning the campaign wall-clock.")
		for _, p := range s.Phases {
			pw.histogram("goofi_phase_duration_seconds",
				`phase="`+p.Phase+`"`, p.HistogramStats)
		}
	}
	for _, h := range s.Histograms {
		fam := "goofi_" + promName(h.Name) + "_seconds"
		pw.family(fam, "histogram", "Latency histogram "+h.Name+".")
		pw.histogram(fam, "", h)
	}
	return pw.err
}

// promWriter accumulates exposition lines, keeping the first write error.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// family emits the HELP and TYPE header of one metric family.
func (p *promWriter) family(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels is the raw `k="v",...` body or "".
func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	p.printf("%s%s %s\n", name, labels, promFloat(v))
}

// histogram emits the cumulative bucket/sum/count series of one histogram
// under the family name, with extraLabels attached to every sample.
func (p *promWriter) histogram(name, extraLabels string, h HistogramStats) {
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	cum := int64(0)
	for _, b := range h.Buckets {
		cum += b.Count
		le := promFloat(promSeconds(b.UpperNs))
		if b.UpperNs == math.MaxInt64 {
			le = "+Inf"
		}
		p.printf("%s_bucket{%sle=%q} %d\n", name, extraLabels+sep, le, cum)
	}
	// Prometheus requires a terminal +Inf bucket equal to the total count.
	if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].UpperNs != math.MaxInt64 {
		p.printf("%s_bucket{%sle=\"+Inf\"} %d\n", name, extraLabels+sep, h.Count)
	}
	p.sample(name+"_sum", extraLabels, promSeconds(h.TotalNs))
	p.printf("%s_count%s %d\n", name, bracket(extraLabels), h.Count)
}

func bracket(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// promName maps an instrument name onto the Prometheus metric-name charset:
// every run of characters outside [a-zA-Z0-9_] becomes one underscore.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	pendingSep := false
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			pendingSep = sb.Len() > 0
			continue
		}
		if pendingSep {
			sb.WriteByte('_')
			pendingSep = false
		}
		sb.WriteRune(r)
	}
	out := sb.String()
	if out == "" {
		return "unnamed"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// promSeconds converts nanoseconds to seconds.
func promSeconds(ns int64) float64 { return float64(ns) / 1e9 }

// promFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, no exponent surprises for integers.
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedNames(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
