// Package obsv is GOOFI's observability subsystem: a dependency-free
// metrics registry (atomic counters, gauges, streaming histograms with
// p50/p95/p99) and a per-experiment span tracer that records where campaign
// wall-clock time goes — target initialisation, the golden reference run,
// scan shift-in/out, workload execution, injection, retry attempts, store
// flushes — and emits Chrome trace_event-format JSON.
//
// The central type is Recorder. Every method is nil-safe: a nil *Recorder
// is the disabled state and costs one branch and zero allocations on the
// hot loop, so the campaign engine, the Measured target wrapper and the
// database layer carry a recorder unconditionally and the user pays only
// when observability is switched on.
//
// Phase accounting follows one rule that makes the numbers trustworthy:
// the Phase* constants are LEAF phases that never overlap in time on one
// goroutine, so their durations sum to (just under) the campaign
// wall-clock. Grouping spans — the campaign, the reference run, one
// experiment, one injection — are trace-only (BeginGroup) and deliberately
// excluded from the phase metrics, because they contain leaf phases and
// would double-count.
package obsv

import (
	"io"
	"time"
)

// Phase identifies one leaf phase of campaign execution. Leaf phases are
// mutually exclusive in time on any one goroutine: their total durations
// partition the campaign wall-clock (minus untimed engine glue).
type Phase uint8

const (
	// PhaseInit is target initialisation: power-up reset, workload
	// assembly/load, and arming the workload at its entry point.
	PhaseInit Phase = iota
	// PhasePlan is injection-plan sampling from the fault model.
	PhasePlan
	// PhaseWorkload is workload execution on the target: running to a
	// breakpoint, a trigger, or termination.
	PhaseWorkload
	// PhaseScanOut is shifting chain contents out of the target through the
	// TAP (ReadScanChain).
	PhaseScanOut
	// PhaseScanIn is shifting chain contents into the target (WriteScanChain).
	PhaseScanIn
	// PhaseMemory is test-card memory access through the host port.
	PhaseMemory
	// PhaseCheckpointSave is capturing a target snapshot: the scifi-checkpoint
	// single slot and the forking engine's golden-run checkpoint grid
	// (imports into a worker's pool are accounted here too).
	PhaseCheckpointSave
	// PhaseCheckpointRestore is rolling a target back to a saved snapshot.
	PhaseCheckpointRestore
	// PhaseRetry is backoff sleep between experiment retry attempts.
	PhaseRetry
	// PhaseFlush is persisting experiment rows to the campaign store.
	PhaseFlush
	// PhaseWALAppend is the write-ahead log's group-commit work: writing
	// coalesced record batches and fsyncing them. It runs on the WAL's own
	// committer goroutine (a dedicated virtual thread), so it remains a leaf
	// phase — it never overlaps another phase on the same thread, it overlaps
	// the campaign threads it makes durable.
	PhaseWALAppend
	// NumPhases bounds the Phase enum.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseInit:              "target-init",
	PhasePlan:              "plan",
	PhaseWorkload:          "workload",
	PhaseScanOut:           "scan-out",
	PhaseScanIn:            "scan-in",
	PhaseMemory:            "memory",
	PhaseCheckpointSave:    "checkpoint-save",
	PhaseCheckpointRestore: "checkpoint-restore",
	PhaseRetry:             "retry-backoff",
	PhaseFlush:             "store-flush",
	PhaseWALAppend:         "wal-append",
}

// String names the phase as it appears in metrics dumps and traces.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Options configures a Recorder.
type Options struct {
	// Trace enables the span tracer (Chrome trace_event buffer). Metrics
	// are always on for a non-nil recorder.
	Trace bool
	// TraceCap bounds the buffered trace events; 0 means DefaultTraceCap.
	TraceCap int
	// Journal enables the provenance wide-event journal (see journal.go).
	Journal bool
	// JournalCap bounds the journal ring; 0 means DefaultJournalCap.
	JournalCap int
}

// Recorder collects metrics (always, when non-nil) and trace spans (when
// Options.Trace). The zero value is not usable; construct with New. A nil
// *Recorder is the disabled state: every method no-ops.
type Recorder struct {
	epoch   time.Time
	reg     *Registry
	tracer  *tracer
	journal *Journal
	phases  [NumPhases]*Histogram
}

// New builds a recorder. The trace epoch (ts=0 of the trace file) is the
// moment of creation.
func New(o Options) *Recorder {
	r := &Recorder{epoch: time.Now(), reg: NewRegistry()}
	for p := Phase(0); p < NumPhases; p++ {
		r.phases[p] = r.reg.Histogram("phase." + p.String())
	}
	if o.Trace {
		r.tracer = newTracer(o.TraceCap)
	}
	if o.Journal {
		r.journal = NewJournal(o.JournalCap)
	}
	return r
}

// Journal returns the provenance wide-event journal, or nil when journalling
// is disabled (including on a nil recorder). Emitters branch on the returned
// pointer before formatting any event detail, keeping the disabled path free
// of allocations.
func (r *Recorder) Journal() *Journal {
	if r == nil {
		return nil
	}
	return r.journal
}

// Registry exposes the underlying metrics registry (nil on a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Span is one in-flight timed section. Span is a value type: starting and
// ending a span allocates nothing.
type Span struct {
	r     *Recorder
	start time.Time
	name  string // grouping spans only
	phase int8   // >= 0: leaf phase; < 0: trace-only grouping span
	tid   int32
}

// Begin starts a leaf-phase span on virtual thread tid (0 = the campaign
// coordinator, 1..N = worker goroutines). The duration is recorded into the
// phase histogram on End, and into the trace when tracing is on.
func (r *Recorder) Begin(p Phase, tid int32) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, start: time.Now(), phase: int8(p), tid: tid}
}

// BeginGroup starts a trace-only grouping span (an experiment, the
// reference run, one injection). Grouping spans contain leaf phases and are
// therefore excluded from the phase metrics — they exist to structure the
// trace timeline. With tracing off this records nothing.
func (r *Recorder) BeginGroup(name string, tid int32) Span {
	if r == nil || r.tracer == nil {
		return Span{}
	}
	return Span{r: r, start: time.Now(), name: name, phase: -1, tid: tid}
}

// End closes the span, recording its duration. End on a zero Span no-ops.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	if s.phase >= 0 {
		s.r.phases[s.phase].Observe(int64(d))
		if s.r.tracer != nil {
			s.r.tracer.add(Phase(s.phase).String(), "phase", s.tid, s.start.Sub(s.r.epoch), d)
		}
		return
	}
	s.r.tracer.add(s.name, "group", s.tid, s.start.Sub(s.r.epoch), d)
}

// PhaseTotal returns the accumulated nanoseconds of one leaf phase.
func (r *Recorder) PhaseTotal(p Phase) int64 {
	if r == nil || p >= NumPhases {
		return 0
	}
	return r.phases[p].Sum()
}

// Count adds n to the named counter.
func (r *Recorder) Count(name string, n int64) {
	if r == nil {
		return
	}
	r.reg.Counter(name).Add(n)
}

// SetGauge assigns the named gauge.
func (r *Recorder) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.reg.Gauge(name).Set(v)
}

// Observe records a duration into the named histogram (outside the phase
// namespace — the store layer uses this for per-call latencies).
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.reg.Histogram(name).Observe(int64(d))
}

// ObserveSince is Observe(name, time.Since(start)) — the one-line deferred
// instrumentation form.
func (r *Recorder) ObserveSince(name string, start time.Time) {
	if r == nil {
		return
	}
	r.reg.Histogram(name).Observe(int64(time.Since(start)))
}

// SetWallClock records the campaign's total wall-clock time; the snapshot's
// per-phase percentages are computed against it.
func (r *Recorder) SetWallClock(d time.Duration) {
	if r == nil {
		return
	}
	r.reg.Gauge("campaign.wall_ns").Set(int64(d))
}

// WriteTrace emits the buffered spans as a Chrome-loadable trace_event JSON
// document. With tracing off it writes a valid empty trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil || r.tracer == nil {
		return newTracer(1).writeJSON(w)
	}
	return r.tracer.writeJSON(w)
}

// Carrier is implemented by instrumented wrappers (target.Measured) so that
// code holding only an abstract interface — the injection algorithms — can
// reach the recorder travelling with it.
type Carrier interface {
	// ObsvRecorder returns the wrapper's recorder (possibly nil).
	ObsvRecorder() *Recorder
	// ObsvTID returns the virtual thread id the wrapper records under.
	ObsvTID() int32
}

// GroupOf starts a trace-only grouping span on v's recorder if v is a
// Carrier, and a no-op span otherwise — the zero-cost hook the injection
// algorithms use without knowing whether the target is instrumented.
func GroupOf(v any, name string) Span {
	c, ok := v.(Carrier)
	if !ok {
		return Span{}
	}
	return c.ObsvRecorder().BeginGroup(name, c.ObsvTID())
}
