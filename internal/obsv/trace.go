package obsv

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace_event record ("X" complete events only).
// The JSON field names follow the Trace Event Format specification, so a
// dump loads directly into chrome://tracing or Perfetto.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TsUs float64 `json:"ts"`  // start, microseconds since trace epoch
	Dur  float64 `json:"dur"` // duration, microseconds
	Pid  int     `json:"pid"`
	Tid  int32   `json:"tid"`
}

// TraceFile is the envelope the tracer writes — the JSON Object Format of
// the trace_event spec.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// DefaultTraceCap bounds the buffered trace events: a 100k-experiment
// campaign would otherwise grow the buffer without bound. Events beyond the
// cap are dropped and counted; the metrics snapshot reports the drop count.
const DefaultTraceCap = 1 << 20

// tracer buffers trace events for one campaign run.
type tracer struct {
	mu      sync.Mutex
	events  []TraceEvent
	cap     int
	dropped int64
}

func newTracer(capEvents int) *tracer {
	if capEvents <= 0 {
		capEvents = DefaultTraceCap
	}
	return &tracer{cap: capEvents}
}

// add buffers one complete event.
func (t *tracer) add(name, cat string, tid int32, start, dur time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name,
		Cat:  cat,
		Ph:   "X",
		TsUs: float64(start) / float64(time.Microsecond),
		Dur:  float64(dur) / float64(time.Microsecond),
		Pid:  1,
		Tid:  tid,
	})
}

// stats reports the buffered and dropped event counts.
func (t *tracer) stats() (buffered, dropped int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.events)), t.dropped
}

// writeJSON emits the Chrome-loadable trace file.
func (t *tracer) writeJSON(w io.Writer) error {
	t.mu.Lock()
	events := t.events
	t.mu.Unlock()
	if events == nil {
		events = []TraceEvent{} // an empty trace is still a valid trace
	}
	enc := json.NewEncoder(w)
	return enc.Encode(TraceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
