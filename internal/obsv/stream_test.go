package obsv

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBroadcasterPublishSubscribe(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe(4)
	defer cancel()

	b.Publish(CampaignEvent{Seq: 1, Done: 1, Total: 10})
	b.Publish(CampaignEvent{Seq: 2, Done: 2, Total: 10})
	if ev := <-ch; ev.Seq != 1 {
		t.Fatalf("first event seq = %d", ev.Seq)
	}
	if ev := <-ch; ev.Seq != 2 {
		t.Fatalf("second event seq = %d", ev.Seq)
	}
	if last, ok := b.Last(); !ok || last.Seq != 2 {
		t.Fatalf("Last() = %+v, %v", last, ok)
	}
}

func TestBroadcasterReplaysLatestToNewSubscriber(t *testing.T) {
	b := NewBroadcaster()
	b.Publish(CampaignEvent{Seq: 7, Done: 70, Total: 100})
	ch, cancel := b.Subscribe(1)
	defer cancel()
	select {
	case ev := <-ch:
		if ev.Seq != 7 || ev.Done != 70 {
			t.Fatalf("replayed event = %+v", ev)
		}
	default:
		t.Fatal("no replay of the latest event on subscribe")
	}
}

func TestBroadcasterSlowSubscriberDrops(t *testing.T) {
	b := NewBroadcaster()
	_, cancel := b.Subscribe(1)
	defer cancel()
	b.Publish(CampaignEvent{Seq: 1}) // fills the buffer
	b.Publish(CampaignEvent{Seq: 2}) // dropped, must not block
	b.Publish(CampaignEvent{Seq: 3}) // dropped
	if got := b.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	// The latest event is still replayed to fresh subscribers.
	ch2, cancel2 := b.Subscribe(1)
	defer cancel2()
	if ev := <-ch2; ev.Seq != 3 {
		t.Fatalf("latest after drops = %+v", ev)
	}
}

func TestBroadcasterClose(t *testing.T) {
	b := NewBroadcaster()
	ch, _ := b.Subscribe(2)
	b.Publish(CampaignEvent{Seq: 1})
	b.Close()
	b.Close()                        // idempotent
	b.Publish(CampaignEvent{Seq: 2}) // after close: dropped silently

	if ev, ok := <-ch; !ok || ev.Seq != 1 {
		t.Fatalf("buffered event after close = %+v, %v", ev, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after Close")
	}
	// Subscribing to a closed broadcaster yields the last event, then a
	// closed channel — a watcher attaching after the campaign still sees the
	// final state.
	ch2, cancel := b.Subscribe(1)
	if ev, ok := <-ch2; !ok || ev.Seq != 1 {
		t.Fatalf("post-close subscribe = %+v, %v", ev, ok)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("post-close subscription channel not closed")
	}
	cancel() // must not panic
}

func TestBroadcasterCancelIdempotent(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe(1)
	cancel()
	cancel() // double cancel must not panic or double-close
	if _, ok := <-ch; ok {
		t.Fatal("channel open after cancel")
	}
	b.Publish(CampaignEvent{Seq: 1}) // publishing to zero subscribers is fine
}

func TestBroadcasterNil(t *testing.T) {
	var b *Broadcaster
	b.Publish(CampaignEvent{Seq: 1}) // no-op
	b.Close()                        // no-op
	if b.Dropped() != 0 {
		t.Fatal("nil Dropped != 0")
	}
	if _, ok := b.Last(); ok {
		t.Fatal("nil Last reports an event")
	}
	ch, cancel := b.Subscribe(1)
	if _, ok := <-ch; ok {
		t.Fatal("nil Subscribe channel not closed")
	}
	cancel()
}

func TestBroadcasterConcurrent(t *testing.T) {
	b := NewBroadcaster()
	var pubs, subs sync.WaitGroup
	for g := 0; g < 4; g++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < 100; i++ {
				b.Publish(CampaignEvent{Seq: int64(i)})
			}
		}()
		subs.Add(1)
		go func() {
			defer subs.Done()
			ch, _ := b.Subscribe(4)
			for range ch { // drains until Close closes the channel
			}
		}()
	}
	pubs.Wait()
	b.Close()
	subs.Wait()
}

// ---------------------------------------------------------------------------

// promSnapshot builds a small synthetic snapshot exercising every exporter
// branch: wall clock, counters, gauges, phase histograms with buckets, free
// histograms, and dropped trace events.
func promSnapshot() Snapshot {
	return Snapshot{
		WallClockNs:  2_500_000_000,
		TraceDropped: 4,
		Counters:     map[string]int64{"experiments.completed": 8, "store.calls": 31},
		Gauges:       map[string]int64{"workers": 2},
		Phases: []PhaseStats{
			{Phase: "workload", HistogramStats: HistogramStats{
				Name: "phase.workload", Count: 3, TotalNs: 700,
				Buckets: []HistBucket{{UpperNs: 255, Count: 2}, {UpperNs: 511, Count: 1}},
			}},
			{Phase: "scan-out", HistogramStats: HistogramStats{
				Name: "phase.scan-out", Count: 1, TotalNs: 100,
				Buckets: []HistBucket{{UpperNs: 127, Count: 1}},
			}},
		},
		Histograms: []HistogramStats{
			{Name: "store.PutExperiment", Count: 5, TotalNs: 1000,
				Buckets: []HistBucket{{UpperNs: 255, Count: 4}, {UpperNs: math.MaxInt64, Count: 1}}},
		},
	}
}

func TestWritePrometheusStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE goofi_campaign_wall_clock_seconds gauge",
		"goofi_campaign_wall_clock_seconds 2.5",
		"# TYPE goofi_experiments_completed_total counter",
		"goofi_experiments_completed_total 8",
		"goofi_store_calls_total 31",
		"# TYPE goofi_workers gauge",
		"goofi_workers 2",
		"# TYPE goofi_trace_events_dropped_total counter",
		"goofi_trace_events_dropped_total 4",
		"# TYPE goofi_phase_duration_seconds histogram",
		`goofi_phase_duration_seconds_bucket{phase="workload",le="2.55e-07"} 2`,
		`goofi_phase_duration_seconds_bucket{phase="workload",le="5.11e-07"} 3`,
		`goofi_phase_duration_seconds_bucket{phase="workload",le="+Inf"} 3`,
		`goofi_phase_duration_seconds_count{phase="workload"} 3`,
		`goofi_phase_duration_seconds_bucket{phase="scan-out",le="+Inf"} 1`,
		"# TYPE goofi_store_PutExperiment_seconds histogram",
		`goofi_store_PutExperiment_seconds_bucket{le="+Inf"} 5`,
		"goofi_store_PutExperiment_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the workload phase has 2 then 2+1.
	if strings.Contains(out, `{phase="workload",le="5.11e-07"} 1`) {
		t.Error("buckets emitted per-bucket instead of cumulative")
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("exposition is not deterministic across calls")
	}
}

// TestWritePrometheusMulti checks the multiplexed exposition the campaign
// service serves: every family header appears exactly once even when several
// campaigns carry the same instrument, each series is distinguished by a
// campaign label, and instruments unique to one campaign still surface.
func TestWritePrometheusMulti(t *testing.T) {
	a := promSnapshot()
	b := promSnapshot()
	b.WallClockNs = 5_000_000_000
	b.Counters = map[string]int64{"experiments.completed": 3, "experiments.hangs": 1}
	b.Histograms = nil
	b.Phases = nil
	b.TraceDropped = 0

	var buf bytes.Buffer
	if err := WritePrometheusMulti(&buf, map[string]Snapshot{
		"t1/alpha": a,
		"t2/beta":  b,
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		`goofi_campaign_wall_clock_seconds{campaign="t1/alpha"} 2.5`,
		`goofi_campaign_wall_clock_seconds{campaign="t2/beta"} 5`,
		`goofi_experiments_completed_total{campaign="t1/alpha"} 8`,
		`goofi_experiments_completed_total{campaign="t2/beta"} 3`,
		`goofi_experiments_hangs_total{campaign="t2/beta"} 1`,
		`goofi_store_calls_total{campaign="t1/alpha"} 31`,
		`goofi_phase_duration_seconds_bucket{campaign="t1/alpha",phase="workload",le="+Inf"} 3`,
		`goofi_store_PutExperiment_seconds_count{campaign="t1/alpha"} 5`,
		`goofi_trace_events_dropped_total{campaign="t1/alpha"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("multi exposition missing %q\n%s", want, out)
		}
	}
	// Families must be declared once: duplicate TYPE lines are invalid.
	for _, fam := range []string{
		"goofi_experiments_completed_total",
		"goofi_campaign_wall_clock_seconds",
		"goofi_phase_duration_seconds",
	} {
		if n := strings.Count(out, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s declared %d times, want once", fam, n)
		}
	}
	// The hangs counter exists only in t2/beta; no t1/alpha series for it.
	if strings.Contains(out, `goofi_experiments_hangs_total{campaign="t1/alpha"}`) {
		t.Error("campaign without an instrument produced a series for it")
	}
	// Label values are escaped.
	var esc bytes.Buffer
	if err := WritePrometheusMulti(&esc, map[string]Snapshot{
		`q"x\y`: {Counters: map[string]int64{"c": 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(esc.String(), `campaign="q\"x\\y"`) {
		t.Errorf("label value not escaped:\n%s", esc.String())
	}
}

func TestWritePrometheusEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot produced output:\n%s", buf.String())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink full" }

func TestWritePrometheusPropagatesWriteError(t *testing.T) {
	if err := WritePrometheus(&failWriter{}, promSnapshot()); err != errFail {
		t.Fatalf("err = %v, want the writer's error", err)
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"store.calls", "store_calls"},
		{"phase.scan-out", "phase_scan_out"},
		{"already_ok", "already_ok"},
		{"a..b", "a_b"},
		{"..leading", "leading"},
		{"trailing..", "trailing"},
		{"9lives", "_9lives"},
		{"", "unnamed"},
		{"!!!", "unnamed"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPromFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{3, "3"},
		{2.5, "2.5"},
		{0.000000255, "2.55e-07"},
	} {
		if got := promFloat(tc.in); got != tc.want {
			t.Errorf("promFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// ---------------------------------------------------------------------------

func TestDiffSnapshots(t *testing.T) {
	a := Snapshot{
		WallClockNs: 1000,
		Counters:    map[string]int64{"experiments.completed": 4, "only.a": 1},
		Gauges:      map[string]int64{"workers": 1},
		Phases: []PhaseStats{{Phase: "workload",
			HistogramStats: HistogramStats{Count: 4, P95Ns: 100}}},
	}
	b := Snapshot{
		WallClockNs: 1500,
		Counters:    map[string]int64{"experiments.completed": 8, "only.b": 2},
		Gauges:      map[string]int64{"workers": 4},
		Histograms:  []HistogramStats{{Name: "store.Flush", Count: 1, P95Ns: 50}},
	}
	d := DiffSnapshots(a, b)

	if d.WallClock.Delta() != 500 || d.WallClock.Pct() != 50 {
		t.Fatalf("wall clock delta = %+v", d.WallClock)
	}
	byName := map[string]MetricDelta{}
	for _, m := range d.Counters {
		byName[m.Name] = m
	}
	if m := byName["experiments.completed"]; m.A != 4 || m.B != 8 || m.Delta() != 4 || m.Pct() != 100 {
		t.Errorf("completed delta = %+v", m)
	}
	// Union semantics: one-sided instruments appear with the other side zero.
	if m := byName["only.a"]; m.A != 1 || m.B != 0 {
		t.Errorf("only.a = %+v", m)
	}
	if m := byName["only.b"]; m.A != 0 || m.B != 2 || m.Pct() != 0 {
		t.Errorf("only.b = %+v", m)
	}

	hists := map[string]HistogramDelta{}
	for _, h := range d.Histograms {
		hists[h.Name] = h
	}
	if h, ok := hists["phase.workload"]; !ok || h.A.Count != 4 || h.B.Count != 0 {
		t.Errorf("phase.workload delta = %+v", h)
	}
	if h, ok := hists["store.Flush"]; !ok || h.A.Count != 0 || h.B.Count != 1 {
		t.Errorf("store.Flush delta = %+v", h)
	}

	var buf bytes.Buffer
	d.Format(&buf)
	out := buf.String()
	for _, want := range []string{"wall-clock", "experiments.completed", "+4",
		"phase.workload", "store.Flush", "100n"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff format missing %q:\n%s", want, out)
		}
	}
	// Unchanged scalars are suppressed from the triage view.
	same := DiffSnapshots(a, a)
	buf.Reset()
	same.Format(&buf)
	if strings.Contains(buf.String(), "only.a") {
		t.Errorf("unchanged counter shown in diff:\n%s", buf.String())
	}
}
