package obsv

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set assigns the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds observations v with bitlen(v) == i, i.e. v in [2^(i-1), 2^i).
// 64 buckets cover the whole int64 range, so Observe never branches on
// out-of-range values.
const histBuckets = 65

// Histogram is a lock-free streaming histogram over int64 observations
// (nanoseconds throughout this repo). Observations land in power-of-two
// buckets; quantiles are estimated from the bucket boundaries and clamped
// to the observed min/max, which keeps the error within a factor of two —
// plenty for "where does the time go" analysis — at a fixed 65-word cost
// and zero allocation per observation.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// minPlus1 holds the observed minimum plus one; zero means "no
	// observation yet", which keeps the zero Histogram usable.
	minPlus1 atomic.Int64
	max      atomic.Int64
	buckets  [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bitLen(uint64(v))].Add(1)
	for {
		cur := h.minPlus1.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.minPlus1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// bitLen is bits.Len64 without the import — the bucket index of v.
func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 <= q <= 1) of the observations: the
// upper boundary of the bucket in which the cumulative count crosses q,
// clamped to the observed [min, max]. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	bound := int64(0)
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i >= 63 {
				bound = math.MaxInt64
			} else {
				bound = int64(1) << uint(i)
			}
			break
		}
	}
	if mp := h.minPlus1.Load(); mp > 0 && bound < mp-1 {
		bound = mp - 1
	}
	if max := h.max.Load(); bound > max {
		bound = max
	}
	return bound
}

// Stats snapshots the histogram into its exported form.
func (h *Histogram) Stats(name string) HistogramStats {
	s := HistogramStats{
		Name:    name,
		Count:   h.count.Load(),
		TotalNs: h.sum.Load(),
		P50Ns:   h.Quantile(0.50),
		P95Ns:   h.Quantile(0.95),
		P99Ns:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.MinNs = h.minPlus1.Load() - 1
		s.MaxNs = h.max.Load()
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperNs: bucketUpper(i), Count: n})
		}
	}
	return s
}

// bucketUpper is the inclusive upper bound of bucket i: the largest value
// with bit length i. Observations are clamped non-negative, so indices above
// 63 are unreachable and share MaxInt64.
func bucketUpper(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Registry is a name-indexed collection of counters, gauges and histograms.
// Instrument lookup is get-or-create and safe for concurrent use; callers on
// hot paths should look up once and hold the returned pointer.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// counterValues snapshots all counters.
func (r *Registry) counterValues() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	return out
}

// gaugeValues snapshots all gauges.
func (r *Registry) gaugeValues() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	return out
}

// histStats snapshots all histograms, sorted by name.
func (r *Registry) histStats() []HistogramStats {
	r.mu.RLock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	out := make([]HistogramStats, 0, len(names))
	for _, n := range names {
		out = append(out, r.Histogram(n).Stats(n))
	}
	return out
}
