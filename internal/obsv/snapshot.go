package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// HistBucket is one populated power-of-two histogram bucket: Count
// observations v with UpperNs/2 < v <= UpperNs (bucket counts, not
// cumulative). The bounds are the exact bucket edges of Histogram, so an
// exporter can rebuild a faithful cumulative distribution.
type HistBucket struct {
	UpperNs int64 `json:"upperNs"`
	Count   int64 `json:"count"`
}

// HistogramStats is the exported snapshot of one histogram.
type HistogramStats struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"totalNs"`
	MinNs   int64  `json:"minNs"`
	MaxNs   int64  `json:"maxNs"`
	P50Ns   int64  `json:"p50Ns"`
	P95Ns   int64  `json:"p95Ns"`
	P99Ns   int64  `json:"p99Ns"`
	// Buckets lists the populated buckets in ascending bound order; empty
	// buckets are omitted.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// PhaseStats is one row of the per-phase wall-clock breakdown.
type PhaseStats struct {
	Phase string `json:"phase"`
	HistogramStats
}

// Snapshot is the machine-readable metrics dump written by -metrics-out and
// consumed by `goofi stats`.
type Snapshot struct {
	// WallClockNs is the campaign's total wall-clock time.
	WallClockNs int64 `json:"wallClockNs"`
	// Phases is the leaf-phase breakdown; the TotalNs values sum to
	// approximately WallClockNs (exactly the instrumented fraction of it).
	Phases []PhaseStats `json:"phases"`
	// Counters and Gauges are all scalar instruments by name.
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// Histograms holds every non-phase histogram (store.* latencies etc.).
	Histograms []HistogramStats `json:"histograms,omitempty"`
	// TraceDropped counts trace events discarded beyond the buffer cap.
	TraceDropped int64 `json:"traceDropped,omitempty"`
}

// Snapshot captures the recorder's current state. Safe to call while the
// campaign is still running (values are read atomically per instrument).
// Returns the zero Snapshot on a nil recorder.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		WallClockNs: r.reg.Gauge("campaign.wall_ns").Value(),
		Counters:    r.reg.counterValues(),
		Gauges:      r.reg.gaugeValues(),
	}
	delete(s.Gauges, "campaign.wall_ns") // surfaced as WallClockNs
	for p := Phase(0); p < NumPhases; p++ {
		hs := r.phases[p].Stats("phase." + p.String())
		s.Phases = append(s.Phases, PhaseStats{Phase: p.String(), HistogramStats: hs})
	}
	for _, hs := range r.reg.histStats() {
		if strings.HasPrefix(hs.Name, "phase.") {
			continue // already in Phases
		}
		s.Histograms = append(s.Histograms, hs)
	}
	if r.tracer != nil {
		_, s.TraceDropped = r.tracer.stats()
	}
	return s
}

// WriteMetrics writes the snapshot as indented JSON.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ParseSnapshot reads a -metrics-out JSON dump back in (for `goofi stats`).
func ParseSnapshot(rd io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obsv: parse metrics: %w", err)
	}
	// Reject arbitrary JSON (e.g. a trace file fed to `goofi stats`): a real
	// snapshot always carries a wall clock or at least one instrument.
	if s.WallClockNs <= 0 && len(s.Phases) == 0 && len(s.Counters) == 0 &&
		len(s.Gauges) == 0 && len(s.Histograms) == 0 {
		return Snapshot{}, fmt.Errorf("obsv: parse metrics: no snapshot fields present")
	}
	return s, nil
}

// PhaseSumNs totals the per-phase durations — the instrumented fraction of
// the wall clock.
func (s Snapshot) PhaseSumNs() int64 {
	var sum int64
	for _, p := range s.Phases {
		sum += p.TotalNs
	}
	return sum
}

// Format renders the snapshot as the human-readable report behind
// `goofi stats`: a per-phase time breakdown with percentages of wall-clock,
// then latency histograms and scalar instruments.
func (s Snapshot) Format(w io.Writer) {
	wall := s.WallClockNs
	fmt.Fprintf(w, "campaign wall-clock  %s\n", fmtDur(wall))
	fmt.Fprintf(w, "instrumented phases  %s", fmtDur(s.PhaseSumNs()))
	if wall > 0 {
		fmt.Fprintf(w, "  (%.1f%% of wall-clock)", 100*float64(s.PhaseSumNs())/float64(wall))
	}
	fmt.Fprintln(w)

	phases := append([]PhaseStats(nil), s.Phases...)
	sort.Slice(phases, func(i, j int) bool { return phases[i].TotalNs > phases[j].TotalNs })
	fmt.Fprintf(w, "\n%-14s %10s %7s %8s %10s %10s %10s\n",
		"phase", "total", "share", "count", "p50", "p95", "p99")
	for _, p := range phases {
		if p.Count == 0 {
			continue
		}
		share := "-"
		if wall > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(p.TotalNs)/float64(wall))
		}
		fmt.Fprintf(w, "%-14s %10s %7s %8d %10s %10s %10s\n",
			p.Phase, fmtDur(p.TotalNs), share, p.Count,
			fmtDur(p.P50Ns), fmtDur(p.P95Ns), fmtDur(p.P99Ns))
	}

	if len(s.Histograms) > 0 {
		fmt.Fprintf(w, "\n%-24s %8s %10s %10s %10s %10s\n",
			"histogram", "count", "total", "p50", "p95", "p99")
		for _, h := range s.Histograms {
			fmt.Fprintf(w, "%-24s %8d %10s %10s %10s %10s\n",
				h.Name, h.Count, fmtDur(h.TotalNs),
				fmtDur(h.P50Ns), fmtDur(h.P95Ns), fmtDur(h.P99Ns))
		}
	}

	if len(s.Counters) > 0 {
		names := make([]string, 0, len(s.Counters))
		for n := range s.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "\ncounters\n")
		for _, n := range names {
			fmt.Fprintf(w, "  %-26s %d\n", n, s.Counters[n])
		}
	}
	if len(s.Gauges) > 0 {
		names := make([]string, 0, len(s.Gauges))
		for n := range s.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "\ngauges\n")
		for _, n := range names {
			fmt.Fprintf(w, "  %-26s %d\n", n, s.Gauges[n])
		}
	}
	if s.TraceDropped > 0 {
		fmt.Fprintf(w, "\ntrace events dropped: %d (raise trace buffer cap)\n", s.TraceDropped)
	}
}

// fmtDur renders nanoseconds compactly (µs/ms/s, three significant-ish
// digits) for the stats tables.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(time.Second))
	}
}
