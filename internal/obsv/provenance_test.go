package obsv

import (
	"strings"
	"testing"
	"time"
)

// TestJournalRing: the journal assigns monotonically increasing sequence
// numbers, returns events in append order, and past its capacity overwrites
// the oldest event while counting the loss.
func TestJournalRing(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Emit(WideEvent{Kind: EvPlan, Index: i})
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	if j.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", j.Dropped())
	}
	events := j.Events()
	for i, ev := range events {
		if want := i + 2; ev.Index != want {
			t.Fatalf("event %d has Index %d, want %d (oldest overwritten first)", i, ev.Index, want)
		}
		if i > 0 && events[i].Seq <= events[i-1].Seq {
			t.Fatalf("Seq not increasing: %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	if events[0].TimeNs == 0 {
		t.Fatal("Emit did not stamp TimeNs")
	}
}

// TestJournalNilSafe: every method of a nil journal is a no-op, matching the
// nil-recorder contract of the rest of the package.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit(WideEvent{Kind: EvPlan})
	if j.Events() != nil || j.Len() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal is not inert")
	}
}

// TestRecorderJournalOption: the journal exists only when asked for, and a
// nil recorder reports none.
func TestRecorderJournalOption(t *testing.T) {
	if New(Options{}).Journal() != nil {
		t.Fatal("recorder without Journal option has a journal")
	}
	if New(Options{Journal: true}).Journal() == nil {
		t.Fatal("recorder with Journal option has no journal")
	}
	var r *Recorder
	if r.Journal() != nil {
		t.Fatal("nil recorder has a journal")
	}
}

// TestTraceContext: an enabled context stamps its identity onto emitted
// events; a disabled one (no recorder, or recorder without journal) is
// inert.
func TestTraceContext(t *testing.T) {
	rec := New(Options{Journal: true})
	tc := TraceContext{Rec: rec, Campaign: "c1", Shard: 2, Experiment: "c1/e0001",
		Index: 1, Attempt: 3, TID: 4}
	if !tc.Enabled() {
		t.Fatal("context with journaling recorder not enabled")
	}
	tc.Emit(EvInject, "domain=scan injections=2")
	start := time.Now().Add(-time.Millisecond)
	tc.EmitSpan(EvAttempt, "outcome=ok", start)

	events := rec.Journal().Events()
	if len(events) != 2 {
		t.Fatalf("journal has %d events, want 2", len(events))
	}
	ev := events[0]
	if ev.Kind != EvInject || ev.Campaign != "c1" || ev.Shard != 2 ||
		ev.Experiment != "c1/e0001" || ev.Index != 1 || ev.Attempt != 3 || ev.TID != 4 {
		t.Fatalf("emitted event lost context: %+v", ev)
	}
	if sp := events[1]; sp.DurNs < int64(time.Millisecond) || sp.TimeNs != start.UnixNano() {
		t.Fatalf("span event time/dur wrong: %+v", sp)
	}

	for _, tc := range []TraceContext{{}, {Rec: New(Options{})}} {
		if tc.Enabled() {
			t.Fatalf("context %+v should be disabled", tc)
		}
		tc.Emit(EvPlan, "x") // must not panic
	}
}

// TestSortEvents: causal order is wall-clock time with emission sequence
// breaking ties.
func TestSortEvents(t *testing.T) {
	events := []WideEvent{
		{Seq: 3, TimeNs: 20},
		{Seq: 2, TimeNs: 10},
		{Seq: 1, TimeNs: 10},
	}
	SortEvents(events)
	if events[0].Seq != 1 || events[1].Seq != 2 || events[2].Seq != 3 {
		t.Fatalf("sorted order wrong: %+v", events)
	}
}

// TestAttributeEvents: unattributed sub-experiment events inherit the
// experiment of the attempt window they landed in; overlapping windows
// resolve to the latest-starting one; events outside every window stay
// unattributed.
func TestAttributeEvents(t *testing.T) {
	events := []WideEvent{
		{Seq: 1, TimeNs: 100, DurNs: 100, Kind: EvAttempt, Experiment: "c/e0001", Index: 1, Attempt: 0},
		{Seq: 2, TimeNs: 150, DurNs: 100, Kind: EvAttempt, Experiment: "c/e0002", Index: 2, Attempt: 1},
		{Seq: 3, TimeNs: 120, Kind: EvStorageFault, TID: StorageTID},     // only e0001's window
		{Seq: 4, TimeNs: 180, Kind: EvWALCommit, TID: WALCommitTID},      // both; latest start wins
		{Seq: 5, TimeNs: 400, Kind: EvStorageFault, TID: StorageTID},     // no window
		{Seq: 6, TimeNs: 130, Kind: EvRowDurable, Experiment: "c/e0009"}, // already attributed
	}
	AttributeEvents(events)
	if got := events[2].Experiment; got != "c/e0001" {
		t.Fatalf("storage fault attributed to %q, want c/e0001", got)
	}
	if events[3].Experiment != "c/e0002" || events[3].Attempt != 1 {
		t.Fatalf("overlapping windows: got %q attempt %d, want latest-starting c/e0002 attempt 1",
			events[3].Experiment, events[3].Attempt)
	}
	if events[4].Experiment != "" {
		t.Fatalf("event outside every window attributed to %q", events[4].Experiment)
	}
	if events[5].Experiment != "c/e0009" {
		t.Fatal("pre-attributed event was rewritten")
	}
}

// TestEventBatch: the batch id joins row-durable and wal-commit events.
func TestEventBatch(t *testing.T) {
	cases := []struct {
		detail string
		want   int64
	}{
		{"batch=42 records=3 bytes=100 synced=true err=false", 42},
		{"batch=7 synced=true", 7},
		{"batch=9", 9},
		{"op=3 kind=write", 0},
		{"batch=x", 0},
		{"", 0},
	}
	for _, c := range cases {
		if got := EventBatch(WideEvent{Detail: c.detail}); got != c.want {
			t.Fatalf("EventBatch(%q) = %d, want %d", c.detail, got, c.want)
		}
	}
}

// TestChromeTrace: spans become complete slices, instants become marks, and
// lanes map shard → process, tid → thread, rebased to the earliest event.
func TestChromeTrace(t *testing.T) {
	base := int64(5_000_000)
	tf := ChromeTrace([]WideEvent{
		{TimeNs: base + 1000, DurNs: 2000, Kind: EvAttempt, Experiment: "c/e0001", Shard: 1, TID: 2},
		{TimeNs: base, Kind: EvStorageFault, TID: StorageTID},
	})
	if len(tf.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(tf.TraceEvents))
	}
	span, mark := tf.TraceEvents[0], tf.TraceEvents[1]
	if span.Ph != "X" || span.Dur != 2 || span.TsUs != 1 || span.Pid != 2 || span.Tid != 2 {
		t.Fatalf("span lane wrong: %+v", span)
	}
	if !strings.Contains(span.Name, "c/e0001") {
		t.Fatalf("span name %q lacks experiment", span.Name)
	}
	if mark.Ph != "i" || mark.TsUs != 0 || mark.Tid != StorageTID {
		t.Fatalf("instant mark wrong: %+v", mark)
	}
	if empty := ChromeTrace(nil); empty.TraceEvents == nil || len(empty.TraceEvents) != 0 {
		t.Fatal("empty input must yield an empty (non-nil) event list")
	}
}

// retriedExperimentEvents builds the canonical causal chain the acceptance
// scenario reconstructs: attempt 0 hits an injected chaos fault, backs off,
// attempt 1 succeeds, the row lands in WAL batch 3.
func retriedExperimentEvents() []WideEvent {
	ms := int64(time.Millisecond)
	return []WideEvent{
		{Seq: 1, TimeNs: 0 * ms, Kind: EvPlan, Experiment: "c/e0001", Detail: "plan=transient@100"},
		{Seq: 2, TimeNs: 1 * ms, DurNs: 2 * ms, Kind: EvAttempt, Experiment: "c/e0001", Attempt: 0,
			Detail: "outcome=err cause=chaos"},
		{Seq: 3, TimeNs: 2 * ms, Kind: EvChaosError, TID: 1}, // inside attempt 0's window
		{Seq: 4, TimeNs: 3*ms + 1, DurNs: ms, Kind: EvRetry, Experiment: "c/e0001", Attempt: 0,
			Detail: "backoff=1ms cause=chaos"},
		{Seq: 5, TimeNs: 5 * ms, DurNs: 2 * ms, Kind: EvAttempt, Experiment: "c/e0001", Attempt: 1,
			Detail: "outcome=ok term=detected"},
		{Seq: 6, TimeNs: 8 * ms, Kind: EvRowDurable, Experiment: "c/e0001", Detail: "batch=3 synced=true"},
		{Seq: 7, TimeNs: 9 * ms, DurNs: ms, Kind: EvWALCommit, TID: WALCommitTID,
			Detail: "batch=3 records=1 bytes=64 synced=true err=false"},
		{Seq: 8, TimeNs: 9 * ms, DurNs: ms, Kind: EvWALCommit, TID: WALCommitTID,
			Detail: "batch=4 records=1 bytes=64 synced=true err=false"}, // other experiment's batch
		{Seq: 9, TimeNs: 1 * ms, Kind: EvPlan, Experiment: "c/e0002", Detail: "plan=transient@200"},
	}
}

// TestFormatTimeline: one experiment's rendered chain contains its chaos
// fault, the retry backoff, both attempts and exactly the WAL batch that
// committed its row.
func TestFormatTimeline(t *testing.T) {
	var sb strings.Builder
	if err := FormatTimeline(&sb, retriedExperimentEvents(), "c/e0001"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		EvPlan, EvChaosError, EvRetry, "outcome=err cause=chaos",
		"outcome=ok term=detected", "batch=3 synced=true",
		"batch=3 records=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "batch=4") {
		t.Fatalf("timeline includes an unrelated WAL batch:\n%s", out)
	}
	if strings.Contains(out, "c/e0002") {
		t.Fatalf("timeline includes another experiment:\n%s", out)
	}
	if err := FormatTimeline(&sb, retriedExperimentEvents(), "c/e0099"); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// TestFormatTraceSummary: the rollup counts events, attempts and faults per
// experiment and tallies unattributed leftovers.
func TestFormatTraceSummary(t *testing.T) {
	var sb strings.Builder
	FormatTraceSummary(&sb, retriedExperimentEvents())
	out := sb.String()
	if !strings.Contains(out, "c/e0001") || !strings.Contains(out, "c/e0002") {
		t.Fatalf("summary lacks experiments:\n%s", out)
	}
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "c/e0001") {
			line = l
		}
	}
	// 5 own events + the attributed chaos error; 2 attempts; 1 fault.
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[1] != "6" || fields[2] != "2" || fields[3] != "1" {
		t.Fatalf("c/e0001 rollup = %q, want events=6 attempts=2 faults=1", line)
	}
}
