package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Rendering and export of provenance wide events: causal ordering, render-
// time attribution of storage/WAL events to the attempt they overlapped, the
// per-experiment timeline behind `goofi trace`, and the Chrome trace_event
// exporter that stitches multi-shard runs onto one timeline.

// SortEvents orders events causally: by wall-clock time, with the journal
// append order breaking ties. Shard-merged streams (several shards sharing
// one journal, or several runs' persisted rows) end up interleaved the way
// they actually happened.
func SortEvents(events []WideEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TimeNs != events[j].TimeNs {
			return events[i].TimeNs < events[j].TimeNs
		}
		return events[i].Seq < events[j].Seq
	})
}

// AttributeEvents assigns experiment attribution to events that were emitted
// below the experiment layer — storage faults and WAL commits carry no
// experiment name of their own — by timestamp overlap with attempt spans:
// an unattributed event landing inside an attempt's [start, start+dur]
// window inherits that attempt's experiment. When windows overlap (parallel
// workers), the latest-starting window wins; events overlapping no attempt
// stay unattributed. The input slice is modified in place and returned.
func AttributeEvents(events []WideEvent) []WideEvent {
	type window struct {
		start, end int64
		experiment string
		index      int
		attempt    int
	}
	var windows []window
	for _, ev := range events {
		if ev.Kind == EvAttempt && ev.Experiment != "" {
			windows = append(windows, window{
				start:      ev.TimeNs,
				end:        ev.TimeNs + ev.DurNs,
				experiment: ev.Experiment,
				index:      ev.Index,
				attempt:    ev.Attempt,
			})
		}
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i].start < windows[j].start })
	for i := range events {
		if events[i].Experiment != "" || events[i].Kind == EvAttempt {
			continue
		}
		t := events[i].TimeNs
		for k := len(windows) - 1; k >= 0; k-- {
			w := windows[k]
			if w.start > t {
				continue
			}
			if t <= w.end {
				events[i].Experiment = w.experiment
				events[i].Index = w.index
				events[i].Attempt = w.attempt
			}
			break // windows before this one start even earlier; latest wins
		}
	}
	return events
}

// EventBatch extracts the WAL commit batch id from an event's detail
// ("batch=N ..."), or 0 when the event carries none. Row-durability and
// WAL-commit events share this key, which is how a renderer links a row to
// the exact group-commit batch that made it durable.
func EventBatch(ev WideEvent) int64 {
	detail := ev.Detail
	i := strings.Index(detail, "batch=")
	if i < 0 {
		return 0
	}
	detail = detail[i+len("batch="):]
	if j := strings.IndexByte(detail, ' '); j >= 0 {
		detail = detail[:j]
	}
	n, err := strconv.ParseInt(detail, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// ChromeTrace stitches wide events — possibly merged from several shards —
// onto one Chrome trace_event timeline: one process lane per shard, one
// thread lane per virtual thread, timestamps rebased to the earliest event.
// Span events render as complete ("X") slices, instant events as "i" marks.
func ChromeTrace(events []WideEvent) TraceFile {
	out := TraceFile{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}
	if len(events) == 0 {
		return out
	}
	epoch := events[0].TimeNs
	for _, ev := range events {
		if ev.TimeNs < epoch {
			epoch = ev.TimeNs
		}
	}
	for _, ev := range events {
		name := ev.Kind
		if ev.Experiment != "" {
			name = ev.Kind + " " + ev.Experiment
		}
		te := TraceEvent{
			Name: name,
			Cat:  "provenance",
			Ph:   "i",
			TsUs: float64(ev.TimeNs-epoch) / float64(time.Microsecond),
			Pid:  ev.Shard + 1,
			Tid:  ev.TID,
		}
		if ev.DurNs > 0 {
			te.Ph = "X"
			te.Dur = float64(ev.DurNs) / float64(time.Microsecond)
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	return out
}

// FormatTraceSummary renders the per-experiment index of a trace: one line
// per experiment with its event/attempt/fault counts, plus the campaign-
// global event tally — the `goofi trace CAMPAIGN` view.
func FormatTraceSummary(w io.Writer, events []WideEvent) {
	events = AttributeEvents(append([]WideEvent(nil), events...))
	SortEvents(events)
	type expStats struct {
		events, attempts, faults int
		firstNs                  int64
	}
	perExp := map[string]*expStats{}
	var order []string
	global := 0
	for _, ev := range events {
		if ev.Experiment == "" {
			global++
			continue
		}
		st := perExp[ev.Experiment]
		if st == nil {
			st = &expStats{firstNs: ev.TimeNs}
			perExp[ev.Experiment] = st
			order = append(order, ev.Experiment)
		}
		st.events++
		switch ev.Kind {
		case EvAttempt:
			st.attempts++
		case EvChaosError, EvChaosPanic, EvChaosHang, EvStorageFault:
			st.faults++
		}
	}
	fmt.Fprintf(w, "%-28s %8s %9s %8s\n", "experiment", "events", "attempts", "faults")
	for _, name := range order {
		st := perExp[name]
		fmt.Fprintf(w, "%-28s %8d %9d %8d\n", name, st.events, st.attempts, st.faults)
	}
	if global > 0 {
		fmt.Fprintf(w, "%-28s %8d\n", "(unattributed)", global)
	}
}

// FormatTimeline renders one experiment's causal timeline: every event
// attributed to it (including storage faults and chaos faults attributed by
// timestamp overlap) plus the WAL commit batches that made its rows durable,
// in causal order with offsets relative to the experiment's first event —
// the `goofi trace CAMPAIGN EXPERIMENT` view.
func FormatTimeline(w io.Writer, events []WideEvent, experiment string) error {
	events = AttributeEvents(append([]WideEvent(nil), events...))
	SortEvents(events)

	// The WAL batches that committed this experiment's rows: wal-commit
	// events matching a row-durable batch join the timeline.
	batches := map[int64]bool{}
	for _, ev := range events {
		if ev.Kind == EvRowDurable && ev.Experiment == experiment {
			if b := EventBatch(ev); b > 0 {
				batches[b] = true
			}
		}
	}
	var line []WideEvent
	for _, ev := range events {
		switch {
		case ev.Experiment == experiment:
			line = append(line, ev)
		case ev.Kind == EvWALCommit && batches[EventBatch(ev)]:
			line = append(line, ev)
		}
	}
	if len(line) == 0 {
		return fmt.Errorf("obsv: no trace events for experiment %q", experiment)
	}
	t0 := line[0].TimeNs
	fmt.Fprintf(w, "timeline of %s (%d events)\n", experiment, len(line))
	fmt.Fprintf(w, "%12s %10s  %-18s %s\n", "offset", "duration", "event", "detail")
	for _, ev := range line {
		dur := "-"
		if ev.DurNs > 0 {
			dur = fmtDur(ev.DurNs)
		}
		detail := ev.Detail
		if ev.Kind != EvWALCommit {
			detail = fmt.Sprintf("attempt=%d %s", ev.Attempt, ev.Detail)
		}
		fmt.Fprintf(w, "%12s %10s  %-18s %s\n",
			"+"+fmtDur(ev.TimeNs-t0), dur, ev.Kind, strings.TrimSpace(detail))
	}
	return nil
}
