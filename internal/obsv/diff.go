package obsv

import (
	"fmt"
	"io"
	"sort"
)

// MetricDelta compares one scalar instrument across two snapshots.
type MetricDelta struct {
	Name string `json:"name"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

// Delta is B - A.
func (d MetricDelta) Delta() int64 { return d.B - d.A }

// Pct is the relative change in percent; 0 when A is 0.
func (d MetricDelta) Pct() float64 {
	if d.A == 0 {
		return 0
	}
	return 100 * float64(d.B-d.A) / float64(d.A)
}

// HistogramDelta compares one histogram (including the phase histograms)
// across two snapshots — counts plus quantile shifts.
type HistogramDelta struct {
	Name string         `json:"name"`
	A    HistogramStats `json:"a"`
	B    HistogramStats `json:"b"`
}

// SnapshotDiff is the comparison of two metrics snapshots, the data behind
// `goofi stats -diff a.json b.json` — quick perf triage between two runs.
type SnapshotDiff struct {
	WallClock  MetricDelta      `json:"wallClock"`
	Counters   []MetricDelta    `json:"counters,omitempty"`
	Gauges     []MetricDelta    `json:"gauges,omitempty"`
	Histograms []HistogramDelta `json:"histograms,omitempty"`
}

// DiffSnapshots compares snapshot a (the "before") with b (the "after").
// Instruments present in only one snapshot appear with the other side zero.
func DiffSnapshots(a, b Snapshot) SnapshotDiff {
	d := SnapshotDiff{
		WallClock: MetricDelta{Name: "wall-clock", A: a.WallClockNs, B: b.WallClockNs},
		Counters:  scalarDeltas(a.Counters, b.Counters),
		Gauges:    scalarDeltas(a.Gauges, b.Gauges),
	}
	ah := histogramsByName(a)
	bh := histogramsByName(b)
	names := map[string]bool{}
	for n := range ah {
		names[n] = true
	}
	for n := range bh {
		names[n] = true
	}
	for _, n := range sortedSet(names) {
		d.Histograms = append(d.Histograms, HistogramDelta{Name: n, A: ah[n], B: bh[n]})
	}
	return d
}

// histogramsByName flattens a snapshot's phase and free histograms into one
// name-indexed map (phases keep their "phase." prefix).
func histogramsByName(s Snapshot) map[string]HistogramStats {
	out := make(map[string]HistogramStats, len(s.Phases)+len(s.Histograms))
	for _, p := range s.Phases {
		out["phase."+p.Phase] = p.HistogramStats
	}
	for _, h := range s.Histograms {
		out[h.Name] = h
	}
	return out
}

func scalarDeltas(a, b map[string]int64) []MetricDelta {
	names := map[string]bool{}
	for n := range a {
		names[n] = true
	}
	for n := range b {
		names[n] = true
	}
	out := make([]MetricDelta, 0, len(names))
	for _, n := range sortedSet(names) {
		out = append(out, MetricDelta{Name: n, A: a[n], B: b[n]})
	}
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Format renders the diff as the aligned report behind `goofi stats -diff`:
// wall-clock and scalar deltas, then per-histogram count and p50/p95/p99
// shifts. Unchanged instruments are skipped to keep the triage view short.
func (d SnapshotDiff) Format(w io.Writer) {
	fmt.Fprintf(w, "%-26s %12s %12s %12s %8s\n", "metric", "a", "b", "delta", "change")
	printDelta := func(m MetricDelta, dur bool) {
		av, bv, dv := fmt.Sprint(m.A), fmt.Sprint(m.B), fmt.Sprintf("%+d", m.Delta())
		if dur {
			av, bv = fmtDur(m.A), fmtDur(m.B)
			dv = signedDur(m.Delta())
		}
		fmt.Fprintf(w, "%-26s %12s %12s %12s %7.1f%%\n", m.Name, av, bv, dv, m.Pct())
	}
	printDelta(d.WallClock, true)
	for _, m := range d.Counters {
		if m.Delta() != 0 {
			printDelta(m, false)
		}
	}
	for _, m := range d.Gauges {
		if m.Delta() != 0 {
			printDelta(m, false)
		}
	}

	fmt.Fprintf(w, "\n%-26s %16s %14s %14s %14s\n", "histogram", "count a→b", "p50 a→b", "p95 a→b", "p99 a→b")
	for _, h := range d.Histograms {
		if h.A.Count == 0 && h.B.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-26s %16s %14s %14s %14s\n", h.Name,
			fmt.Sprintf("%d→%d", h.A.Count, h.B.Count),
			quantileShift(h.A.P50Ns, h.B.P50Ns),
			quantileShift(h.A.P95Ns, h.B.P95Ns),
			quantileShift(h.A.P99Ns, h.B.P99Ns))
	}
}

// quantileShift renders "old→new" for one quantile pair.
func quantileShift(a, b int64) string {
	return fmtDur(a) + "→" + fmtDur(b)
}

func signedDur(ns int64) string {
	if ns < 0 {
		return "-" + fmtDur(-ns)
	}
	return "+" + fmtDur(ns)
}
