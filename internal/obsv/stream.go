package obsv

import (
	"sync"
)

// CampaignEvent is one frame of the live campaign monitoring stream: a
// point-in-time view of campaign progress assembled by the Runner's snapshot
// ticker and consumed by the /campaign/events endpoint and `goofi watch`.
type CampaignEvent struct {
	Campaign string `json:"campaign"`
	// Seq increases by one per published event of a run; the final event has
	// the highest Seq and Final set.
	Seq int64 `json:"seq"`
	// ElapsedNs is wall-clock time since the campaign entered its run loop.
	ElapsedNs int64 `json:"elapsedNs"`
	// Done counts concluded experiments (including resumed ones) out of Total.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Skipped counts experiments reused from an earlier, interrupted run.
	Skipped int `json:"skipped"`
	// Detected counts experiments terminated by an error detection mechanism
	// so far — Detected/Done is the live coverage proxy `goofi watch` shows.
	Detected    int `json:"detected"`
	Retries     int `json:"retries"`
	Hangs       int `json:"hangs"`
	Quarantined int `json:"quarantined"`
	Workers     int `json:"workers"`
	// RatePerSec is the completion rate since the run started.
	RatePerSec float64 `json:"ratePerSec"`
	// EtaNs estimates the remaining wall-clock time at the current rate
	// (0 when the rate is still unknown).
	EtaNs       int64  `json:"etaNs,omitempty"`
	LastOutcome string `json:"lastOutcome,omitempty"`
	// Final marks the last event of the run; its counters match the Runner's
	// Summary.
	Final bool `json:"final,omitempty"`
}

// Broadcaster fans campaign events out to any number of subscribers (HTTP
// streams, tests). It is the glue between the Runner's snapshot ticker and
// the `/campaign/events` endpoint:
//
//   - Publish never blocks: a subscriber that cannot keep up loses events
//     (counted in Dropped) rather than stalling the campaign.
//   - Subscribe immediately replays the most recent event, so a watcher
//     attaching mid-campaign sees state at once.
//   - Close marks the campaign over and closes every subscriber channel, so
//     stream consumers terminate cleanly.
//
// A nil *Broadcaster is the disabled state: Publish and Close no-op,
// Subscribe returns a closed channel.
type Broadcaster struct {
	mu      sync.Mutex
	subs    map[int]chan CampaignEvent
	nextID  int
	last    CampaignEvent
	hasLast bool
	closed  bool
	dropped int64
}

// NewBroadcaster builds an open broadcaster with no subscribers.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: map[int]chan CampaignEvent{}}
}

// Publish delivers ev to every subscriber without blocking and remembers it
// for replay to future subscribers. Publishing after Close is a no-op.
func (b *Broadcaster) Publish(ev CampaignEvent) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.last, b.hasLast = ev, true
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default:
			b.dropped++
		}
	}
}

// Subscribe registers a new subscriber with the given channel buffer
// (minimum 1) and returns its event channel plus a cancel function. The most
// recent event, if any, is replayed immediately. After Close — or after
// cancel — the channel is closed.
func (b *Broadcaster) Subscribe(buf int) (<-chan CampaignEvent, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan CampaignEvent, buf)
	if b == nil {
		close(ch)
		return ch, func() {}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.hasLast {
		ch <- b.last
	}
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
	return ch, cancel
}

// Close ends the stream: every subscriber channel is closed after the events
// already delivered, and later Publish/Subscribe calls observe the closed
// state. Safe to call more than once.
func (b *Broadcaster) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}

// Dropped counts events lost to slow subscribers.
func (b *Broadcaster) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Last returns the most recently published event and whether one exists.
func (b *Broadcaster) Last() (CampaignEvent, bool) {
	if b == nil {
		return CampaignEvent{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last, b.hasLast
}
