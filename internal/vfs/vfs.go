// Package vfs is the storage seam under goofi's persistence stack: a small
// virtual-filesystem interface that internal/sqldb (dump images, the
// write-ahead log) and internal/dbase route every file operation through.
//
// Production code uses the passthrough OS implementation and pays one
// interface call per operation. Tests — and `goofi run -storage-chaos` —
// substitute Faulty, a seeded deterministic fault injector that simulates
// the misbehaviour real storage exhibits: transient and sticky I/O errors,
// short (torn) writes, fsyncs that lie, renames that are not durable until
// the parent directory is synced, and crashes that lose everything not yet
// fsynced. GOOFI injecting faults into GOOFI: the same genericity argument
// the paper makes for target-level injection, applied to the tool's own
// storage path.
package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
)

// File is one open file of an FS. It is the subset of *os.File the storage
// stack needs: sequential and positional reads/writes, metadata, durability.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Name returns the path the file was opened as.
	Name() string
	// Stat returns the file's metadata.
	Stat() (fs.FileInfo, error)
	// Sync flushes the file's data to stable storage. On a directory handle
	// it makes the directory's entries (creations, renames, removals)
	// durable — the POSIX contract writeFileDurable depends on.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
}

// FS is the filesystem surface of the storage stack. Implementations must be
// safe for concurrent use.
type FS interface {
	// Open opens a file (or directory) for reading.
	Open(name string) (File, error)
	// Create creates or truncates a file for read/write.
	Create(name string) (File, error)
	// OpenFile is the generalised open (os.OpenFile semantics).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile returns the whole content of a file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]fs.DirEntry, error)
}

// OS is the passthrough FS over the real filesystem — the default everywhere.
type OS struct{}

func (OS) Open(name string) (File, error)   { return os.Open(name) }
func (OS) Create(name string) (File, error) { return os.Create(name) }
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                   { return os.Remove(name) }
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// tempCounter seeds CreateTemp name generation; a process-wide counter keeps
// names unique without consulting a clock or global RNG.
var tempCounter atomic.Uint64

// CreateTemp creates a new file in dir with a unique name built from pattern
// (the last "*" is replaced by a unique suffix; without one the suffix is
// appended), open for read/write — os.CreateTemp semantics over an FS.
func CreateTemp(fsys FS, dir, pattern string) (File, error) {
	prefix, suffix := pattern, ""
	if i := lastStar(pattern); i >= 0 {
		prefix, suffix = pattern[:i], pattern[i+1:]
	}
	for try := 0; try < 10000; try++ {
		n := tempCounter.Add(1)
		name := filepath.Join(dir, prefix+strconv.FormatUint(n, 10)+suffix)
		f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if err == nil {
			return f, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("vfs: create temp in %s: %w", dir, err)
		}
	}
	return nil, fmt.Errorf("vfs: create temp in %s: name space exhausted", dir)
}

func lastStar(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '*' {
			return i
		}
	}
	return -1
}

// WriteFileDurable atomically replaces path with data and makes the
// replacement survive power loss: the temp file is fsynced before the rename
// and the parent directory after it (the rename itself lives in directory
// metadata). Cleanup removals of the abandoned temp file are best-effort —
// the primary error is what the caller needs to see.
func WriteFileDurable(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := CreateTemp(fsys, dir, ".goofidb-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		_ = fsys.Remove(tmpName) // best-effort: report the write error, not the cleanup
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(fmt.Errorf("vfs: write %s: %w", tmpName, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("vfs: sync %s: %w", tmpName, err))
	}
	if err := tmp.Close(); err != nil {
		_ = fsys.Remove(tmpName)
		return fmt.Errorf("vfs: close %s: %w", tmpName, err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		_ = fsys.Remove(tmpName)
		return fmt.Errorf("vfs: rename %s to %s: %w", tmpName, path, err)
	}
	return SyncDir(fsys, dir)
}

// SyncDir makes dir's entries (creations, renames, removals) durable by
// opening and fsyncing the directory — the POSIX step that commits name-level
// operations to stable storage.
func SyncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("vfs: open dir %s for sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("vfs: sync dir %s: %w", dir, err)
	}
	return nil
}
