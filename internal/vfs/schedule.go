package vfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ScheduledFault pins one fault to one op index.
type ScheduledFault struct {
	// Op is the zero-based operation index the fault fires at.
	Op uint64
	// Kind is the fault to inject there.
	Kind FaultKind
}

// Schedule is an explicit op-indexed fault plan — the replay currency of the
// injector. Faulty.History() emits one; FaultyConfig.Schedule consumes one;
// the text codec ("12:werr,40:torn,99:lie") survives log lines and CLI
// flags, so a failure found by seed search replays from a copy-pasted
// string.
type Schedule []ScheduledFault

// String renders the schedule in the canonical text form: comma-separated
// "op:kind" entries in ascending op order.
func (s Schedule) String() string {
	sorted := append(Schedule(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Op < sorted[j].Op })
	var sb strings.Builder
	for i, sf := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(sf.Op, 10))
		sb.WriteByte(':')
		sb.WriteString(sf.Kind.String())
	}
	return sb.String()
}

// parseFaultKind resolves a codec kind name. FaultNone ("none") is rejected:
// a schedule entry that injects nothing is a typo, not a plan.
func parseFaultKind(name string) (FaultKind, error) {
	for k := FaultOpenErr; k < numFaultKinds; k++ {
		if name == faultKindNames[k] {
			return k, nil
		}
	}
	return FaultNone, fmt.Errorf("vfs: schedule: unknown fault kind %q", name)
}

// ParseSchedule parses the canonical text form back into a Schedule. Entries
// are comma-separated "op:kind"; whitespace around entries is tolerated,
// duplicate op indices are rejected (a single op has a single fate), and the
// result is returned in ascending op order — ParseSchedule and String are
// inverses on canonical input.
func ParseSchedule(spec string) (Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	out := make(Schedule, 0, len(parts))
	seen := make(map[uint64]bool, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		opStr, kindStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("vfs: schedule entry %q: want op:kind", part)
		}
		op, err := strconv.ParseUint(opStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("vfs: schedule entry %q: %w", part, err)
		}
		kind, err := parseFaultKind(kindStr)
		if err != nil {
			return nil, fmt.Errorf("vfs: schedule entry %q: %w", part, err)
		}
		if seen[op] {
			return nil, fmt.Errorf("vfs: schedule: duplicate op %d", op)
		}
		seen[op] = true
		out = append(out, ScheduledFault{Op: op, Kind: kind})
	}
	if len(out) == 0 {
		return nil, nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out, nil
}
