package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"goofi/internal/obsv"
)

// Sentinel errors callers classify injected faults with.
var (
	// ErrInjected marks every error Faulty manufactures (errors.Is).
	ErrInjected = errors.New("vfs: injected fault")
	// ErrTransient additionally marks injected errors that a retry may
	// clear — the storage-level analogue of target.ErrTransient. Sticky
	// errors and simulated crashes do not carry it.
	ErrTransient = errors.New("vfs: transient injected fault")
	// ErrCrashed is returned by every operation past a simulated crash
	// point (FaultyConfig.CrashAtOp) and by operations on handles
	// invalidated by Crash.
	ErrCrashed = errors.New("vfs: simulated crash")
)

// IsInjected reports whether err is (or wraps) an injected storage fault.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// IsTransient reports whether err is an injected storage fault that a
// bounded retry is expected to clear.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// injectedError is one manufactured fault, carrying enough context to
// reproduce it: the op index and the fault kind.
type injectedError struct {
	kind FaultKind
	op   uint64
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("vfs: injected %s at op %d", e.kind, e.op)
}

func (e *injectedError) Unwrap() []error {
	switch e.kind {
	case FaultSticky:
		return []error{ErrInjected}
	case FaultCrash:
		return []error{ErrInjected, ErrCrashed}
	default:
		return []error{ErrInjected, ErrTransient}
	}
}

// FaultKind names one class of injected fault — the unit of the replay
// schedule codec.
type FaultKind uint8

const (
	// FaultNone is the zero kind; it never appears in a history.
	FaultNone FaultKind = iota
	// FaultOpenErr is a transient error on Open/Create/OpenFile/ReadFile/ReadDir.
	FaultOpenErr
	// FaultReadErr is a transient error on Read/ReadAt.
	FaultReadErr
	// FaultWriteErr is a transient error on Write/WriteAt; nothing is written.
	FaultWriteErr
	// FaultSyncErr is a transient error on Sync; nothing becomes durable.
	FaultSyncErr
	// FaultRenameErr is a transient error on Rename/Remove.
	FaultRenameErr
	// FaultSticky permanently poisons the file handle the op ran on.
	FaultSticky
	// FaultTorn applies only a prefix of a write and returns a transient
	// error — the short-write shape of a power cut mid-sector.
	FaultTorn
	// FaultLie makes Sync report success without making anything durable.
	FaultLie
	// FaultCrash is the simulated whole-filesystem crash point.
	FaultCrash
	numFaultKinds
)

var faultKindNames = [numFaultKinds]string{
	FaultNone:      "none",
	FaultOpenErr:   "oerr",
	FaultReadErr:   "rerr",
	FaultWriteErr:  "werr",
	FaultSyncErr:   "serr",
	FaultRenameErr: "nerr",
	FaultSticky:    "sticky",
	FaultTorn:      "torn",
	FaultLie:       "lie",
	FaultCrash:     "crash",
}

func (k FaultKind) String() string {
	if k < numFaultKinds {
		return faultKindNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultyConfig tunes a Faulty filesystem. The zero value injects nothing.
type FaultyConfig struct {
	// Seed makes every fault decision a pure function of (Seed, op index):
	// rerunning the same single-threaded op sequence replays the same
	// faults exactly.
	Seed int64
	// Per-op transient error rates, by operation class.
	OpenErrRate, ReadErrRate, WriteErrRate, SyncErrRate, RenameErrRate float64
	// StickyErrRate is the per-op probability of a permanent (sticky)
	// error: the handle the op ran on fails every subsequent operation.
	// Models a died disk rather than a glitch; the WAL's sticky-failure
	// policy must fail fast on it, never retry forever.
	StickyErrRate float64
	// TornWriteRate is the per-write probability that only a prefix of the
	// buffer reaches the file before a transient error is returned.
	TornWriteRate float64
	// SyncLieRate is the per-sync probability that Sync returns success
	// without marking anything durable — data acknowledged under a lying
	// fsync is lost by the next Crash, exactly like hardware write caches
	// that ignore flush commands.
	SyncLieRate float64
	// NonDurableRenames enables strict POSIX directory semantics: file
	// creations, renames and removals survive Crash only after the parent
	// directory has been synced. Off, name-level operations are durable
	// immediately (data still needs an honest fsync).
	NonDurableRenames bool
	// CrashAtOp, when positive, fails every operation whose index is >=
	// CrashAtOp with ErrCrashed — the deterministic in-process stand-in
	// for SIGKILL. Pair with Crash() to drop unsynced state afterwards.
	CrashAtOp int64
	// Schedule forces specific faults at specific op indices regardless of
	// the rates — the replay mechanism for a failure found by seed search.
	Schedule Schedule
}

// Validate checks the rates are probabilities.
func (c FaultyConfig) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"open", c.OpenErrRate}, {"read", c.ReadErrRate}, {"write", c.WriteErrRate},
		{"sync", c.SyncErrRate}, {"rename", c.RenameErrRate},
		{"sticky", c.StickyErrRate}, {"torn", c.TornWriteRate}, {"lie", c.SyncLieRate},
	} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("vfs: faulty %s rate %g outside [0,1]", r.name, r.rate)
		}
	}
	if c.CrashAtOp < 0 {
		return fmt.Errorf("vfs: faulty crashat %d negative", c.CrashAtOp)
	}
	return nil
}

// ParseFaultyConfig parses a storage-chaos spec of the form
// "write=0.01,sync=0.005,torn=0.01,lie=0.002,sticky=0,open=0,read=0,rename=0,seed=3,dirsync=1,crashat=0,sched=12:werr+40:torn".
// Unknown keys are rejected.
func ParseFaultyConfig(spec string) (FaultyConfig, error) {
	var cfg FaultyConfig
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return FaultyConfig{}, fmt.Errorf("vfs: faulty spec %q: want key=value", kv)
		}
		switch key {
		case "open", "read", "write", "sync", "rename", "sticky", "torn", "lie":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return FaultyConfig{}, fmt.Errorf("vfs: faulty %s: %w", key, err)
			}
			switch key {
			case "open":
				cfg.OpenErrRate = rate
			case "read":
				cfg.ReadErrRate = rate
			case "write":
				cfg.WriteErrRate = rate
			case "sync":
				cfg.SyncErrRate = rate
			case "rename":
				cfg.RenameErrRate = rate
			case "sticky":
				cfg.StickyErrRate = rate
			case "torn":
				cfg.TornWriteRate = rate
			case "lie":
				cfg.SyncLieRate = rate
			}
		case "seed":
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return FaultyConfig{}, fmt.Errorf("vfs: faulty seed: %w", err)
			}
			cfg.Seed = seed
		case "crashat":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return FaultyConfig{}, fmt.Errorf("vfs: faulty crashat: %w", err)
			}
			cfg.CrashAtOp = n
		case "dirsync":
			cfg.NonDurableRenames = val == "1" || strings.EqualFold(val, "true")
		case "sched":
			// "+"-separated inside the comma-separated spec.
			sched, err := ParseSchedule(strings.ReplaceAll(val, "+", ","))
			if err != nil {
				return FaultyConfig{}, err
			}
			cfg.Schedule = sched
		default:
			return FaultyConfig{}, fmt.Errorf("vfs: faulty spec: unknown key %q", key)
		}
	}
	return cfg, cfg.Validate()
}

// FaultyStats is a point-in-time tally of injected faults.
type FaultyStats struct {
	// Ops counts every operation that passed through the injector.
	Ops int64
	// InjectedErrors counts transient error injections (all classes).
	InjectedErrors int64
	// StickyErrors counts handle-poisoning injections.
	StickyErrors int64
	// TornWrites counts short-write injections.
	TornWrites int64
	// SyncLies counts syncs that claimed success without durability.
	SyncLies int64
	// Crashes counts Crash() invocations plus the first ErrCrashed hit.
	Crashes int64
}

// finode is the durability state of one tracked file: the content an honest
// fsync last pinned. It follows the file across renames (name-level
// durability is tracked separately, in the crash-visible name map).
type finode struct {
	synced []byte
}

// Faulty wraps a base FS and deterministically injects storage faults. Every
// decision derives from (Seed, op index), so a single-threaded op sequence
// replays bit-identically; History() returns the injected faults as a
// Schedule that FaultyConfig.Schedule replays without the rates.
//
// Faulty additionally models crash durability: writes are volatile until an
// honest Sync, name-level operations (create/rename/remove) are volatile
// until the parent directory syncs when NonDurableRenames is set, and
// Crash() rolls the base filesystem back to the durable view — the
// in-process equivalent of SIGKILL plus power loss, hundreds of times per
// second instead of once per forked child.
//
// Concurrency: Faulty is safe for concurrent use, but concurrent callers
// race for op indices, so determinism holds per interleaving. The storage
// stack's file I/O is effectively sequential (one committer goroutine, one
// coordinator), which keeps seeded runs reproducible in practice.
type Faulty struct {
	base FS
	cfg  FaultyConfig

	ops atomic.Int64
	rec atomic.Pointer[obsv.Recorder]

	mu      sync.Mutex
	files   map[string]*finode // volatile name -> inode
	crash   map[string]*finode // crash-durable name -> inode
	handles map[*faultyFile]struct{}
	sched   map[uint64]FaultKind
	history Schedule
	stats   FaultyStats
	crashed bool // an ErrCrashed fate was hit (counted once)
}

// maxHistory bounds the recorded fault schedule; beyond it faults still
// inject but are no longer recorded.
const maxHistory = 65536

// NewFaulty wraps base with a deterministic fault injector.
func NewFaulty(base FS, cfg FaultyConfig) (*Faulty, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Faulty{
		base:    base,
		cfg:     cfg,
		files:   make(map[string]*finode),
		crash:   make(map[string]*finode),
		handles: make(map[*faultyFile]struct{}),
	}
	if len(cfg.Schedule) > 0 {
		f.sched = make(map[uint64]FaultKind, len(cfg.Schedule))
		for _, sf := range cfg.Schedule {
			f.sched[sf.Op] = sf.Kind
		}
	}
	return f, nil
}

// SetRecorder attaches an observability recorder: every injected fault is
// then counted under vfs.* counters. Nil detaches.
func (f *Faulty) SetRecorder(rec *obsv.Recorder) { f.rec.Store(rec) }

// Stats returns a snapshot of the injected-fault tallies.
func (f *Faulty) Stats() FaultyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Ops = f.ops.Load()
	return st
}

// History returns the faults injected so far, in op order — paste it into
// FaultyConfig.Schedule (or a "sched=" spec) to replay them exactly.
func (f *Faulty) History() Schedule {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append(Schedule(nil), f.history...)
}

// --- deterministic decisions ---

// splitmix64 is the canonical 64-bit finalizer — one invertible round is
// enough to decorrelate consecutive op indices.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll draws the uniform [0,1) variate for (seed, op, salt). Distinct salts
// give independent draws for the same op.
func (f *Faulty) roll(op uint64, salt uint64) float64 {
	h := splitmix64(uint64(f.cfg.Seed)<<1 ^ splitmix64(op^salt<<56))
	return float64(h>>11) / float64(uint64(1)<<53)
}

// Salt constants, one per decision family.
const (
	saltSticky = iota + 1
	saltErr
	saltTorn
	saltLie
	saltTornLen
)

// nextOp claims the next op index.
func (f *Faulty) nextOp() uint64 { return uint64(f.ops.Add(1) - 1) }

// decide returns the fate of op index op performing an operation of class
// kind (one of the *Err kinds, which also selects the rate).
func (f *Faulty) decide(op uint64, kind FaultKind) FaultKind {
	if f.cfg.CrashAtOp > 0 && op >= uint64(f.cfg.CrashAtOp) {
		return FaultCrash
	}
	if f.sched != nil {
		if k, ok := f.sched[op]; ok {
			return k
		}
		return FaultNone
	}
	if f.cfg.StickyErrRate > 0 && f.roll(op, saltSticky) < f.cfg.StickyErrRate {
		return FaultSticky
	}
	switch kind {
	case FaultWriteErr:
		if f.cfg.TornWriteRate > 0 && f.roll(op, saltTorn) < f.cfg.TornWriteRate {
			return FaultTorn
		}
		if f.cfg.WriteErrRate > 0 && f.roll(op, saltErr) < f.cfg.WriteErrRate {
			return FaultWriteErr
		}
	case FaultSyncErr:
		if f.cfg.SyncLieRate > 0 && f.roll(op, saltLie) < f.cfg.SyncLieRate {
			return FaultLie
		}
		if f.cfg.SyncErrRate > 0 && f.roll(op, saltErr) < f.cfg.SyncErrRate {
			return FaultSyncErr
		}
	case FaultOpenErr:
		if f.cfg.OpenErrRate > 0 && f.roll(op, saltErr) < f.cfg.OpenErrRate {
			return FaultOpenErr
		}
	case FaultReadErr:
		if f.cfg.ReadErrRate > 0 && f.roll(op, saltErr) < f.cfg.ReadErrRate {
			return FaultReadErr
		}
	case FaultRenameErr:
		if f.cfg.RenameErrRate > 0 && f.roll(op, saltErr) < f.cfg.RenameErrRate {
			return FaultRenameErr
		}
	}
	return FaultNone
}

// inject records fault kind at op and returns its error (nil for FaultLie,
// whose "success" is the fault).
func (f *Faulty) inject(op uint64, kind FaultKind) error {
	rec := f.rec.Load()
	f.mu.Lock()
	if len(f.history) < maxHistory {
		f.history = append(f.history, ScheduledFault{Op: op, Kind: kind})
	}
	switch kind {
	case FaultSticky:
		f.stats.StickyErrors++
		rec.Count("vfs.errors.sticky", 1)
	case FaultTorn:
		f.stats.TornWrites++
		rec.Count("vfs.writes.torn", 1)
	case FaultLie:
		f.stats.SyncLies++
		rec.Count("vfs.syncs.lied", 1)
	case FaultCrash:
		if !f.crashed {
			f.crashed = true
			f.stats.Crashes++
			rec.Count("vfs.crashes", 1)
		}
	default:
		f.stats.InjectedErrors++
		rec.Count("vfs.errors.injected", 1)
	}
	f.mu.Unlock()
	if j := rec.Journal(); j != nil {
		// Storage faults fire below the experiment layer, so the event carries
		// no experiment name; render-time attribution (obsv.AttributeEvents)
		// assigns it to whichever attempt was in flight.
		j.Emit(obsv.WideEvent{
			Kind:   obsv.EvStorageFault,
			TID:    obsv.StorageTID,
			Detail: fmt.Sprintf("op=%d kind=%s", op, kind),
		})
	}
	if kind == FaultLie {
		return nil
	}
	return &injectedError{kind: kind, op: op}
}

// --- durability model ---

// track returns the inode of a volatile name, lazily snapshotting
// preexisting base files as durable with their current content. Callers hold
// f.mu.
func (f *Faulty) trackLocked(name string) *finode {
	name = filepath.Clean(name)
	if ino, ok := f.files[name]; ok {
		return ino
	}
	ino := &finode{}
	if data, err := f.base.ReadFile(name); err == nil {
		// Preexisting file: durable as-is, both in data and in name.
		ino.synced = data
		f.crash[name] = ino
	}
	f.files[name] = ino
	return ino
}

// ensureTracked snapshots name's pre-operation durability state. Call it
// BEFORE a base operation that creates, truncates, renames away or removes
// the name: a preexisting file's content is pinned as durable before the
// operation mutates it, and a missing file tracks as volatile-only.
func (f *Faulty) ensureTracked(name string) {
	f.mu.Lock()
	f.trackLocked(name)
	f.mu.Unlock()
}

// noteCreate registers a created (or truncated) file in the volatile view;
// ensureTracked must have run before the base operation.
func (f *Faulty) noteCreate(name string) {
	name = filepath.Clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.files[name]
	if !ok {
		ino = &finode{}
		f.files[name] = ino
	}
	if !f.cfg.NonDurableRenames {
		if _, durable := f.crash[name]; !durable {
			f.crash[name] = ino
		}
	}
}

// noteSyncFile pins the file's current base content as durable data.
func (f *Faulty) noteSyncFile(name string) {
	name = filepath.Clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	ino := f.trackLocked(name)
	if data, err := f.base.ReadFile(name); err == nil {
		ino.synced = data
	}
}

// noteSyncDir commits every pending name-level operation under dir: names
// present in the volatile view become crash-durable, names removed from it
// stop being.
func (f *Faulty) noteSyncDir(dir string) {
	dir = filepath.Clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	for name, ino := range f.files {
		if filepath.Dir(name) == dir {
			f.crash[name] = ino
		}
	}
	for name := range f.crash {
		if filepath.Dir(name) == dir {
			if _, ok := f.files[name]; !ok {
				delete(f.crash, name)
			}
		}
	}
}

// noteRename moves the volatile name and, outside strict mode, the durable
// name with it.
func (f *Faulty) noteRename(oldpath, newpath string) {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	f.mu.Lock()
	defer f.mu.Unlock()
	ino := f.trackLocked(oldpath)
	delete(f.files, oldpath)
	f.files[newpath] = ino
	if !f.cfg.NonDurableRenames {
		delete(f.crash, oldpath)
		f.crash[newpath] = ino
	}
}

// noteRemove drops the volatile name and, outside strict mode, the durable
// one.
func (f *Faulty) noteRemove(name string) {
	name = filepath.Clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.trackLocked(name)
	delete(f.files, name)
	if !f.cfg.NonDurableRenames {
		delete(f.crash, name)
	}
}

// Crash simulates power loss: the base filesystem is rolled back to the
// durable view (files revert to their last honestly-synced content,
// uncommitted creations disappear, uncommitted renames and removals revert),
// every open handle is invalidated, and the injector keeps counting ops so a
// subsequent reopen sees fresh indices. The op counter and history are
// preserved — the crash is part of the schedule, not a reset of it.
func (f *Faulty) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for h := range f.handles {
		h.kill()
	}
	f.handles = make(map[*faultyFile]struct{})
	// Remove names that never became durable.
	for name := range f.files {
		if _, ok := f.crash[name]; !ok {
			_ = f.base.Remove(name)
		}
	}
	// Restore every durable name to its synced content.
	for name, ino := range f.crash {
		w, err := f.base.Create(name)
		if err != nil {
			return fmt.Errorf("vfs: crash restore %s: %w", name, err)
		}
		if len(ino.synced) > 0 {
			if _, err := w.Write(ino.synced); err != nil {
				w.Close()
				return fmt.Errorf("vfs: crash restore %s: %w", name, err)
			}
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("vfs: crash restore %s: %w", name, err)
		}
	}
	// The post-crash volatile view is exactly the durable view.
	f.files = make(map[string]*finode, len(f.crash))
	for name, ino := range f.crash {
		f.files[name] = &finode{synced: append([]byte(nil), ino.synced...)}
	}
	f.crash = make(map[string]*finode, len(f.files))
	for name, ino := range f.files {
		f.crash[name] = ino
	}
	if !f.crashed {
		f.stats.Crashes++
		f.rec.Load().Count("vfs.crashes", 1)
	}
	f.crashed = false
	return nil
}

// ClearCrashPoint disables a configured CrashAtOp so the filesystem can be
// reused for the post-crash recovery phase of an in-process rig.
func (f *Faulty) ClearCrashPoint() {
	f.mu.Lock()
	f.cfg.CrashAtOp = 0
	f.crashed = false
	f.mu.Unlock()
}

// --- FS implementation ---

func (f *Faulty) openErr() error {
	op := f.nextOp()
	if fate := f.decide(op, FaultOpenErr); fate != FaultNone && fate != FaultLie && fate != FaultTorn {
		return f.inject(op, fate)
	}
	return nil
}

func (f *Faulty) Open(name string) (File, error) {
	if err := f.openErr(); err != nil {
		return nil, err
	}
	base, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(base, name), nil
}

func (f *Faulty) Create(name string) (File, error) {
	if err := f.openErr(); err != nil {
		return nil, err
	}
	f.ensureTracked(name)
	base, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	f.noteCreate(name)
	return f.wrap(base, name), nil
}

func (f *Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.openErr(); err != nil {
		return nil, err
	}
	if flag&(os.O_CREATE|os.O_TRUNC) != 0 {
		f.ensureTracked(name)
	}
	base, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&(os.O_CREATE|os.O_TRUNC) != 0 {
		f.noteCreate(name)
	}
	return f.wrap(base, name), nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	op := f.nextOp()
	if fate := f.decide(op, FaultRenameErr); fate != FaultNone && fate != FaultLie && fate != FaultTorn {
		return f.inject(op, fate)
	}
	// Track both ends before the base rename: the source so its synced
	// content travels with the inode, and the destination so a preexisting
	// durable file it replaces survives an un-dir-synced rename plus crash.
	f.ensureTracked(oldpath)
	f.ensureTracked(newpath)
	if err := f.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.noteRename(oldpath, newpath)
	return nil
}

func (f *Faulty) Remove(name string) error {
	op := f.nextOp()
	if fate := f.decide(op, FaultRenameErr); fate != FaultNone && fate != FaultLie && fate != FaultTorn {
		return f.inject(op, fate)
	}
	f.ensureTracked(name)
	if err := f.base.Remove(name); err != nil {
		return err
	}
	f.noteRemove(name)
	return nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	op := f.nextOp()
	if fate := f.decide(op, FaultReadErr); fate != FaultNone && fate != FaultLie && fate != FaultTorn {
		return nil, f.inject(op, fate)
	}
	return f.base.ReadFile(name)
}

func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.openErr(); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f *Faulty) wrap(base File, name string) *faultyFile {
	ff := &faultyFile{fs: f, f: base, name: filepath.Clean(name)}
	if st, err := base.Stat(); err == nil {
		ff.dir = st.IsDir()
	}
	f.mu.Lock()
	f.handles[ff] = struct{}{}
	f.mu.Unlock()
	return ff
}

// --- File implementation ---

// faultyFile wraps one open base file. A sticky injected error poisons the
// handle; Crash invalidates it outright.
type faultyFile struct {
	fs   *Faulty
	f    File
	name string
	dir  bool

	mu     sync.Mutex
	sticky error
	dead   bool
}

func (ff *faultyFile) kill() {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if !ff.dead {
		ff.dead = true
		_ = ff.f.Close() // the process "died": release the real descriptor
	}
}

// gate claims an op index and resolves the handle's fate for an operation of
// class kind. It returns the error to surface (nil = proceed) and, for
// FaultTorn / FaultLie, the fate so the caller applies the partial effect.
func (ff *faultyFile) gate(kind FaultKind) (FaultKind, uint64, error) {
	ff.mu.Lock()
	if ff.dead {
		ff.mu.Unlock()
		return FaultNone, 0, fmt.Errorf("vfs: %s: handle invalidated: %w", ff.name, ErrCrashed)
	}
	if ff.sticky != nil {
		err := ff.sticky
		ff.mu.Unlock()
		return FaultNone, 0, err
	}
	ff.mu.Unlock()
	op := ff.fs.nextOp()
	fate := ff.fs.decide(op, kind)
	switch fate {
	case FaultNone:
		return FaultNone, op, nil
	case FaultSticky:
		err := ff.fs.inject(op, fate)
		ff.mu.Lock()
		ff.sticky = err
		ff.mu.Unlock()
		return fate, op, err
	case FaultTorn, FaultLie:
		return fate, op, nil // caller applies the partial effect and records
	default:
		return fate, op, ff.fs.inject(op, fate)
	}
}

func (ff *faultyFile) Read(p []byte) (int, error) {
	if _, _, err := ff.gate(FaultReadErr); err != nil {
		return 0, err
	}
	return ff.f.Read(p)
}

func (ff *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	if _, _, err := ff.gate(FaultReadErr); err != nil {
		return 0, err
	}
	return ff.f.ReadAt(p, off)
}

// tornLen picks the deterministic prefix length of a torn write: at least 0,
// strictly less than n.
func (ff *faultyFile) tornLen(op uint64, n int) int {
	if n <= 1 {
		return 0
	}
	h := splitmix64(uint64(ff.fs.cfg.Seed) ^ splitmix64(op^uint64(saltTornLen)<<56))
	return int(h % uint64(n))
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	fate, op, err := ff.gate(FaultWriteErr)
	if err != nil {
		return 0, err
	}
	if fate == FaultTorn {
		k := ff.tornLen(op, len(p))
		n := 0
		if k > 0 {
			n, _ = ff.f.Write(p[:k])
		}
		return n, ff.fs.inject(op, FaultTorn)
	}
	return ff.f.Write(p)
}

func (ff *faultyFile) WriteAt(p []byte, off int64) (int, error) {
	fate, op, err := ff.gate(FaultWriteErr)
	if err != nil {
		return 0, err
	}
	if fate == FaultTorn {
		k := ff.tornLen(op, len(p))
		n := 0
		if k > 0 {
			n, _ = ff.f.WriteAt(p[:k], off)
		}
		return n, ff.fs.inject(op, FaultTorn)
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultyFile) Sync() error {
	fate, op, err := ff.gate(FaultSyncErr)
	if err != nil {
		return err
	}
	if fate == FaultLie {
		// Report success; commit nothing to the durable view.
		return ff.fs.inject(op, FaultLie)
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	if ff.dir {
		ff.fs.noteSyncDir(ff.name)
	} else {
		ff.fs.noteSyncFile(ff.name)
	}
	return nil
}

func (ff *faultyFile) Seek(offset int64, whence int) (int64, error) {
	if err := ff.liveErr(); err != nil {
		return 0, err
	}
	return ff.f.Seek(offset, whence)
}

func (ff *faultyFile) Truncate(size int64) (err error) {
	if err := ff.liveErr(); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultyFile) Stat() (fs.FileInfo, error) {
	if err := ff.liveErr(); err != nil {
		return nil, err
	}
	return ff.f.Stat()
}

func (ff *faultyFile) Name() string { return ff.name }

func (ff *faultyFile) Close() error {
	ff.fs.mu.Lock()
	delete(ff.fs.handles, ff)
	ff.fs.mu.Unlock()
	ff.mu.Lock()
	dead := ff.dead
	ff.mu.Unlock()
	if dead {
		return nil // kill() already closed the base handle
	}
	return ff.f.Close()
}

// liveErr reports the handle's standing failure (dead or sticky) without
// consuming an op index — metadata ops don't draw faults but must not
// pretend a poisoned handle works.
func (ff *faultyFile) liveErr() error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.dead {
		return fmt.Errorf("vfs: %s: handle invalidated: %w", ff.name, ErrCrashed)
	}
	return ff.sticky
}
