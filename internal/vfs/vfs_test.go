package vfs_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goofi/internal/vfs"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fsys vfs.FS = vfs.OS{}
	p := filepath.Join(dir, "a.txt")

	h, err := fsys.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := fsys.ReadFile(p)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := fsys.Rename(p, p+".2"); err != nil {
		t.Fatal(err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil || len(entries) != 1 || entries[0].Name() != "a.txt.2" {
		t.Fatalf("ReadDir after rename: %v, %v", entries, err)
	}
	if err := fsys.Remove(p + ".2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open(p + ".2"); err == nil {
		t.Fatal("open of removed file succeeded")
	}
}

func TestCreateTemp(t *testing.T) {
	dir := t.TempDir()
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		h, err := vfs.CreateTemp(vfs.OS{}, dir, ".goofidb-*")
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(h.Name())
		if !strings.HasPrefix(name, ".goofidb-") {
			t.Errorf("temp name %q does not honour the pattern", name)
		}
		if seen[name] {
			t.Errorf("duplicate temp name %q", name)
		}
		seen[name] = true
		if _, err := h.Write([]byte("x")); err != nil {
			t.Errorf("temp file not writable: %v", err)
		}
		h.Close()
	}
}

func TestWriteFileDurable(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "img.db")
	if err := vfs.WriteFileDurable(vfs.OS{}, p, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(p); string(got) != "v1" {
		t.Fatalf("content %q, want v1", got)
	}
	// Replacing an existing file leaves no temp debris behind.
	if err := vfs.WriteFileDurable(vfs.OS{}, p, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(p); string(got) != "v2" {
		t.Fatalf("content %q, want v2", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after replace: %v", entries)
	}
}

func TestSyncDir(t *testing.T) {
	dir := t.TempDir()
	if err := vfs.SyncDir(vfs.OS{}, dir); err != nil {
		t.Fatal(err)
	}
	if err := vfs.SyncDir(vfs.OS{}, filepath.Join(dir, "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
}
