package vfs_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"goofi/internal/vfs"
)

func TestScheduleCodecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", ""},
		{"12:werr", "12:werr"},
		{"12:werr,40:torn", "12:werr,40:torn"},
		{"40:torn,12:werr", "12:werr,40:torn"}, // canonicalised to op order
		{" 3:lie , 7:serr ", "3:lie,7:serr"},
		{"0:oerr,1:rerr,2:werr,3:serr,4:nerr,5:sticky,6:torn,7:lie,8:crash",
			"0:oerr,1:rerr,2:werr,3:serr,4:nerr,5:sticky,6:torn,7:lie,8:crash"},
	}
	for _, tc := range cases {
		sched, err := vfs.ParseSchedule(tc.in)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", tc.in, err)
		}
		if got := sched.String(); got != tc.want {
			t.Errorf("ParseSchedule(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		again, err := vfs.ParseSchedule(sched.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", sched.String(), err)
		}
		if again.String() != sched.String() {
			t.Errorf("codec not idempotent on %q: %q", tc.in, again.String())
		}
	}

	for _, bad := range []string{
		"12:werr,12:torn", // duplicate op
		"5:none",          // injecting nothing is a typo, not a plan
		"5:bogus",
		"nocolon",
		"x:werr",
	} {
		if _, err := vfs.ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q): want error, got nil", bad)
		}
	}
}

func TestParseFaultyConfig(t *testing.T) {
	cfg, err := vfs.ParseFaultyConfig(
		"write=0.25,sync=0.125,torn=0.5,lie=0.01,sticky=0.02,open=0.03,read=0.04,rename=0.05,seed=9,dirsync=1,crashat=77,sched=12:werr+40:torn")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WriteErrRate != 0.25 || cfg.SyncErrRate != 0.125 || cfg.TornWriteRate != 0.5 ||
		cfg.SyncLieRate != 0.01 || cfg.StickyErrRate != 0.02 || cfg.OpenErrRate != 0.03 ||
		cfg.ReadErrRate != 0.04 || cfg.RenameErrRate != 0.05 {
		t.Errorf("rates mis-parsed: %+v", cfg)
	}
	if cfg.Seed != 9 || !cfg.NonDurableRenames || cfg.CrashAtOp != 77 {
		t.Errorf("seed/dirsync/crashat mis-parsed: %+v", cfg)
	}
	if cfg.Schedule.String() != "12:werr,40:torn" {
		t.Errorf("sched mis-parsed: %q", cfg.Schedule.String())
	}

	for _, bad := range []string{
		"bogus=1",
		"write=nope",
		"write=1.5", // rate outside [0,1]
		"crashat=-3",
		"write",
	} {
		if _, err := vfs.ParseFaultyConfig(bad); err == nil {
			t.Errorf("ParseFaultyConfig(%q): want error, got nil", bad)
		}
	}
}

// faultProbe runs a fixed single-threaded op sequence, ignoring injected
// errors, and returns the fault history — the probe sequence is identical
// across runs, so determinism tests can compare histories directly.
func faultProbe(t *testing.T, cfg vfs.FaultyConfig) vfs.Schedule {
	t.Helper()
	f, err := vfs.NewFaulty(vfs.OS{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "probe.bin")
	h, err := f.Create(p)
	if err == nil {
		for i := 0; i < 30; i++ {
			_, _ = h.Write([]byte("payload-payload-payload"))
			if i%5 == 4 {
				_ = h.Sync()
			}
		}
		h.Close()
	}
	_, _ = f.ReadFile(p)
	if h2, err := f.Open(p); err == nil {
		buf := make([]byte, 64)
		_, _ = h2.Read(buf)
		h2.Close()
	}
	_ = f.Rename(p, p+".moved")
	_ = f.Remove(p + ".moved")
	return f.History()
}

func TestFaultyDeterminism(t *testing.T) {
	cfg := vfs.FaultyConfig{
		Seed:          42,
		WriteErrRate:  0.3,
		SyncErrRate:   0.2,
		TornWriteRate: 0.15,
		SyncLieRate:   0.1,
		ReadErrRate:   0.2,
		RenameErrRate: 0.3,
	}
	h1 := faultProbe(t, cfg)
	h2 := faultProbe(t, cfg)
	if h1.String() != h2.String() {
		t.Fatalf("same seed, same op sequence, different faults:\n  %s\n  %s", h1, h2)
	}
	if len(h1) == 0 {
		t.Fatal("probe with aggressive rates injected nothing; rates are not being applied")
	}

	// A history replayed as an explicit schedule (rates off) reproduces the
	// exact same injections — the replay contract of the codec.
	h3 := faultProbe(t, vfs.FaultyConfig{Seed: 42, Schedule: h1})
	if h3.String() != h1.String() {
		t.Fatalf("schedule replay diverged:\n  original %s\n  replayed %s", h1, h3)
	}

	// A different seed gives a different plan (astronomically likely with
	// ~100 ops at these rates).
	cfg.Seed = 43
	if h4 := faultProbe(t, cfg); h4.String() == h1.String() {
		t.Fatalf("seeds 42 and 43 produced identical histories: %s", h1)
	}
}

func TestFaultyCrashDurability(t *testing.T) {
	dir := t.TempDir()
	f, err := vfs.NewFaulty(vfs.OS{}, vfs.FaultyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "data.bin")
	h, err := f.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("SYNCED")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "SYNCED" {
		t.Errorf("post-crash content %q, want the synced prefix %q", got, "SYNCED")
	}
	// The pre-crash handle is dead.
	if _, err := h.Write([]byte("x")); !errors.Is(err, vfs.ErrCrashed) {
		t.Errorf("write on pre-crash handle: err=%v, want ErrCrashed", err)
	}
	if err := h.Close(); err != nil {
		t.Errorf("close of killed handle: %v", err)
	}
	if st := f.Stats(); st.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", st.Crashes)
	}
}

func TestFaultyStrictNameDurability(t *testing.T) {
	newStrict := func(t *testing.T) *vfs.Faulty {
		f, err := vfs.NewFaulty(vfs.OS{}, vfs.FaultyConfig{NonDurableRenames: true})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	write := func(t *testing.T, f vfs.FS, p, content string) {
		t.Helper()
		h, err := f.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
		if err := h.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("creation volatile until dir sync", func(t *testing.T) {
		dir := t.TempDir()
		f := newStrict(t)
		p := filepath.Join(dir, "new.bin")
		write(t, f, p, "content")
		if err := f.Crash(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("un-dir-synced creation survived the crash: stat err=%v", err)
		}
	})

	t.Run("creation durable after dir sync", func(t *testing.T) {
		dir := t.TempDir()
		f := newStrict(t)
		p := filepath.Join(dir, "new.bin")
		write(t, f, p, "content")
		if err := vfs.SyncDir(f, dir); err != nil {
			t.Fatal(err)
		}
		if err := f.Crash(); err != nil {
			t.Fatal(err)
		}
		if got, err := os.ReadFile(p); err != nil || string(got) != "content" {
			t.Errorf("dir-synced creation: content %q err %v, want %q", got, err, "content")
		}
	})

	t.Run("rename over durable file reverts without dir sync", func(t *testing.T) {
		dir := t.TempDir()
		// The destination predates the injector: durable ground truth.
		p := filepath.Join(dir, "image.db")
		if err := os.WriteFile(p, []byte("OLD"), 0o644); err != nil {
			t.Fatal(err)
		}
		f := newStrict(t)
		tmp := filepath.Join(dir, "image.tmp")
		write(t, f, tmp, "NEW")
		if err := f.Rename(tmp, p); err != nil {
			t.Fatal(err)
		}
		if err := f.Crash(); err != nil {
			t.Fatal(err)
		}
		if got, err := os.ReadFile(p); err != nil || string(got) != "OLD" {
			t.Errorf("un-dir-synced rename: destination %q err %v, want the old durable %q", got, err, "OLD")
		}
	})

	t.Run("rename over durable file commits with dir sync", func(t *testing.T) {
		dir := t.TempDir()
		p := filepath.Join(dir, "image.db")
		if err := os.WriteFile(p, []byte("OLD"), 0o644); err != nil {
			t.Fatal(err)
		}
		f := newStrict(t)
		tmp := filepath.Join(dir, "image.tmp")
		write(t, f, tmp, "NEW")
		if err := f.Rename(tmp, p); err != nil {
			t.Fatal(err)
		}
		if err := vfs.SyncDir(f, dir); err != nil {
			t.Fatal(err)
		}
		if err := f.Crash(); err != nil {
			t.Fatal(err)
		}
		if got, err := os.ReadFile(p); err != nil || string(got) != "NEW" {
			t.Errorf("dir-synced rename: destination %q err %v, want %q", got, err, "NEW")
		}
	})

	t.Run("removal reverts without dir sync", func(t *testing.T) {
		dir := t.TempDir()
		p := filepath.Join(dir, "keep.bin")
		if err := os.WriteFile(p, []byte("KEEP"), 0o644); err != nil {
			t.Fatal(err)
		}
		f := newStrict(t)
		if err := f.Remove(p); err != nil {
			t.Fatal(err)
		}
		if err := f.Crash(); err != nil {
			t.Fatal(err)
		}
		if got, err := os.ReadFile(p); err != nil || string(got) != "KEEP" {
			t.Errorf("un-dir-synced removal: %q err %v, want the file back as %q", got, err, "KEEP")
		}
	})
}

func TestFaultyTornWrite(t *testing.T) {
	dir := t.TempDir()
	f, err := vfs.NewFaulty(vfs.OS{}, vfs.FaultyConfig{
		Schedule: vfs.Schedule{{Op: 1, Kind: vfs.FaultTorn}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "torn.bin")
	h, err := f.Create(p) // op 0
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 128)
	n, err := h.Write(data) // op 1: torn
	if err == nil || !vfs.IsTransient(err) {
		t.Fatalf("torn write: n=%d err=%v, want a transient injected error", n, err)
	}
	if n >= len(data) {
		t.Fatalf("torn write wrote %d of %d bytes — not torn", n, len(data))
	}
	h.Close()
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n || !bytes.Equal(got, data[:n]) {
		t.Errorf("file holds %d bytes, want exactly the %d-byte torn prefix", len(got), n)
	}
	if st := f.Stats(); st.TornWrites != 1 {
		t.Errorf("TornWrites = %d, want 1", st.TornWrites)
	}
	if h := f.History().String(); h != "1:torn" {
		t.Errorf("history %q, want %q", h, "1:torn")
	}
}

func TestFaultySyncLie(t *testing.T) {
	dir := t.TempDir()
	f, err := vfs.NewFaulty(vfs.OS{}, vfs.FaultyConfig{
		Schedule: vfs.Schedule{{Op: 2, Kind: vfs.FaultLie}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "lied.bin")
	h, err := f.Create(p) // op 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("doomed")); err != nil { // op 1
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil { // op 2: the lie reports success
		t.Fatalf("a lying sync must return nil, got %v", err)
	}
	h.Close()
	if st := f.Stats(); st.SyncLies != 1 {
		t.Fatalf("SyncLies = %d, want 1", st.SyncLies)
	}
	if err := f.Crash(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("data 'synced' by a lying fsync survived the crash: %q", got)
	}
}

func TestFaultyStickyHandle(t *testing.T) {
	dir := t.TempDir()
	f, err := vfs.NewFaulty(vfs.OS{}, vfs.FaultyConfig{
		Schedule: vfs.Schedule{{Op: 1, Kind: vfs.FaultSticky}},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := f.Create(filepath.Join(dir, "sick.bin")) // op 0
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Write([]byte("x")) // op 1: sticky
	if !vfs.IsInjected(err) || vfs.IsTransient(err) {
		t.Fatalf("sticky fault: err=%v, want injected and NOT transient", err)
	}
	// The handle is poisoned: every later op fails the same way.
	if _, err2 := h.Write([]byte("y")); !errors.Is(err2, vfs.ErrInjected) {
		t.Errorf("second write on poisoned handle: %v, want the sticky error", err2)
	}
	if err2 := h.Sync(); !errors.Is(err2, vfs.ErrInjected) {
		t.Errorf("sync on poisoned handle: %v, want the sticky error", err2)
	}
	if st := f.Stats(); st.StickyErrors != 1 {
		t.Errorf("StickyErrors = %d, want 1 (poison must not re-count)", st.StickyErrors)
	}
	// Other handles are unaffected.
	h2, err := f.Create(filepath.Join(dir, "fine.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Write([]byte("ok")); err != nil {
		t.Errorf("fresh handle after a sticky fault: %v", err)
	}
	h2.Close()
}

func TestFaultyCrashPoint(t *testing.T) {
	dir := t.TempDir()
	f, err := vfs.NewFaulty(vfs.OS{}, vfs.FaultyConfig{CrashAtOp: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "cp.bin")
	h, err := f.Create(p) // op 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("pre")); err != nil { // op 1
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("post")); !errors.Is(err, vfs.ErrCrashed) { // op 2
		t.Fatalf("op at the crash point: err=%v, want ErrCrashed", err)
	}
	// Everything after the crash point dies too, filesystem ops included.
	if _, err := f.Open(p); !errors.Is(err, vfs.ErrCrashed) {
		t.Errorf("open past the crash point: %v, want ErrCrashed", err)
	}
	if err := f.Crash(); err != nil {
		t.Fatal(err)
	}
	f.ClearCrashPoint()
	// Post-crash the filesystem is reusable; the unsynced write is gone.
	got, err := f.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("unsynced pre-crash write survived: %q", got)
	}
}

// TestWriteFileDurableSurvivesCrash drives the full atomic-replace protocol
// through a strict-semantics injector: if WriteFileDurable returns success,
// the new content must survive a crash — the property the checkpoint
// protocol is built on.
func TestWriteFileDurableSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "img.db")
	if err := os.WriteFile(p, []byte("v0"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := vfs.NewFaulty(vfs.OS{}, vfs.FaultyConfig{NonDurableRenames: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFileDurable(f, p, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash(); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(p); string(got) != "v1" {
		t.Errorf("durably written content lost: %q, want %q", got, "v1")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("stray files after WriteFileDurable + crash: %v", entries)
	}
}

// FuzzFaultyVFS fuzzes the schedule codec: anything ParseSchedule accepts
// must render canonically and survive a parse/print round trip unchanged.
func FuzzFaultyVFS(f *testing.F) {
	f.Add("12:werr,40:torn")
	f.Add("0:oerr")
	f.Add("")
	f.Add("3:lie, 2:serr ,1:sticky")
	f.Add("18446744073709551615:crash")
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := vfs.ParseSchedule(s)
		if err != nil {
			return // rejected input is fine; we fuzz the accepted half
		}
		text := sched.String()
		again, err := vfs.ParseSchedule(text)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) failed to reparse: %v", text, s, err)
		}
		if again.String() != text {
			t.Fatalf("round trip not stable: %q -> %q -> %q", s, text, again.String())
		}
		if len(again) != len(sched) {
			t.Fatalf("entry count changed in round trip: %d -> %d", len(sched), len(again))
		}
	})
}
