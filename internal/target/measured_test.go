package target

import (
	"testing"

	"goofi/internal/obsv"
	"goofi/internal/scan"
	"goofi/internal/workload"
)

// TestMeasuredPhaseMapping drives every instrumented operation against a
// real Thor target and checks the time lands in the right leaf phase.
func TestMeasuredPhaseMapping(t *testing.T) {
	rec := obsv.New(obsv.Options{})
	m := NewMeasured(NewDefaultThorTarget(), rec)

	if err := m.InitTestCard(); err != nil {
		t.Fatal(err)
	}
	w, err := workload.Get("bubblesort")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadWorkload(w); err != nil {
		t.Fatal(err)
	}
	if err := m.RunWorkload(); err != nil {
		t.Fatal(err)
	}
	if rec.PhaseTotal(obsv.PhaseInit) <= 0 {
		t.Fatal("init phase not recorded")
	}

	if err := m.SetBreakpoint(50); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitForBreakpoint(1000); err != nil {
		t.Fatal(err)
	}
	chains := m.Chains()
	if len(chains) == 0 {
		t.Fatal("no chains")
	}
	bits, err := m.ReadScanChain(chains[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteScanChain(chains[0].Name, bits); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadMemory(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMemory(0, []uint32{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitForTermination(TerminationSpec{MaxCycles: 100000}); err != nil {
		t.Fatal(err)
	}

	for _, p := range []obsv.Phase{obsv.PhaseWorkload, obsv.PhaseScanOut, obsv.PhaseScanIn, obsv.PhaseMemory} {
		if rec.PhaseTotal(p) <= 0 {
			t.Errorf("phase %s not recorded", p)
		}
	}
	// No operation here should have been accounted elsewhere.
	for _, p := range []obsv.Phase{obsv.PhasePlan, obsv.PhaseRetry, obsv.PhaseFlush} {
		if rec.PhaseTotal(p) != 0 {
			t.Errorf("phase %s spuriously recorded", p)
		}
	}
}

// TestMeasuredForwardsCapabilities pins the contrast with Flaky: Measured
// must forward Checkpointer/TriggerWaiter/ExperimentSeeder so that turning
// on metrics never changes which techniques a campaign can run.
func TestMeasuredForwardsCapabilities(t *testing.T) {
	rec := obsv.New(obsv.Options{})
	thor := NewDefaultThorTarget()
	var ops Operations = NewMeasured(thor, rec)
	if _, ok := ops.(Checkpointer); !ok {
		t.Error("Measured must forward Checkpointer")
	}
	if _, ok := ops.(TriggerWaiter); !ok {
		t.Error("Measured must forward TriggerWaiter")
	}
	if _, ok := ops.(ExperimentSeeder); !ok {
		t.Error("Measured must forward ExperimentSeeder")
	}
	if _, ok := ops.(obsv.Carrier); !ok {
		t.Error("Measured must implement obsv.Carrier")
	}

	// Checkpoint time must land in the checkpoint phase.
	if err := ops.InitTestCard(); err != nil {
		t.Fatal(err)
	}
	w, err := workload.Get("bubblesort")
	if err != nil {
		t.Fatal(err)
	}
	if err := ops.LoadWorkload(w); err != nil {
		t.Fatal(err)
	}
	if err := ops.RunWorkload(); err != nil {
		t.Fatal(err)
	}
	cp := ops.(Checkpointer)
	if err := cp.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if ok, err := cp.RestoreCheckpoint(); err != nil || !ok {
		t.Fatalf("restore = %v, %v", ok, err)
	}
	cp.ClearCheckpoint()
	if rec.PhaseTotal(obsv.PhaseCheckpointSave) <= 0 {
		t.Error("checkpoint-save phase not recorded")
	}
	if rec.PhaseTotal(obsv.PhaseCheckpointRestore) <= 0 {
		t.Error("checkpoint-restore phase not recorded")
	}
}

// measuredStub is a capability-free inner target.
type measuredStub struct{ BaseTarget }

func (measuredStub) ReadScanChain(string) (scan.Bits, error) { return scan.NewBits(4), nil }

// TestMeasuredOptimisticProbes documents the trade-off of forwarding: a
// probe against Measured answers for the wrapper, so an inner target
// without the capability surfaces ErrNotImplemented at call time.
func TestMeasuredOptimisticProbes(t *testing.T) {
	m := NewMeasured(measuredStub{}, obsv.New(obsv.Options{}))
	if err := m.SaveCheckpoint(); err != ErrNotImplemented {
		t.Fatalf("SaveCheckpoint = %v", err)
	}
	if _, err := m.RestoreCheckpoint(); err != ErrNotImplemented {
		t.Fatalf("RestoreCheckpoint = %v", err)
	}
	m.ClearCheckpoint() // must not panic
	if _, err := m.WaitForTrigger(nil, 10); err != ErrNotImplemented {
		t.Fatalf("WaitForTrigger = %v", err)
	}
	m.SeedExperiment(1, 2, 3) // must not panic
}

// TestMeasuredNilRecorder: instrumentation with a nil recorder is the
// disabled state — operations pass straight through.
func TestMeasuredNilRecorder(t *testing.T) {
	m := NewMeasured(measuredStub{}, nil)
	if m.ObsvRecorder() != nil {
		t.Fatal("recorder should be nil")
	}
	if _, err := m.ReadScanChain("x"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		m.ReadScanChain("x")
	})
	// One allocation is the stub's NewBits; the measurement layer itself
	// must add none.
	if allocs > 1 {
		t.Fatalf("nil-recorder wrap allocates %.1f per op", allocs)
	}
}

// TestMeasuredFactoryAndTID exercises the factory path and worker-id
// tagging used by the parallel runner.
func TestMeasuredFactoryAndTID(t *testing.T) {
	rec := obsv.New(obsv.Options{Trace: true})
	f := MeasuredFactory(SimpleFactory(), rec)
	ops, err := f.New()
	if err != nil {
		t.Fatal(err)
	}
	m, ok := ops.(*Measured)
	if !ok {
		t.Fatalf("factory minted %T", ops)
	}
	m.SetWorkerID(3)
	if m.ObsvTID() != 3 {
		t.Fatalf("tid = %d", m.ObsvTID())
	}
	if m.Unwrap() == nil {
		t.Fatal("unwrap")
	}
	// GroupOf reaches the recorder through the Operations interface.
	sp := obsv.GroupOf(ops, "inject")
	sp.End()
}
