package target

import (
	"errors"
	"fmt"

	"goofi/internal/asm"
	"goofi/internal/envsim"
	"goofi/internal/scan"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// errNotInitialised flags operations invoked before InitTestCard.
var errNotInitialised = errors.New("target: test card not initialised")

// ThorTarget implements Operations on the Thor-RD simulator: workloads are
// assembled to Thor machine code, internal state is reached exclusively
// through the JTAG TAP's scan chains, and environment simulators are coupled
// to the workload at its SYNC points.
type ThorTarget struct {
	cfg  thor.Config
	sys  *thor.System
	tap  *scan.TAP
	core *scan.Chain

	w      workload.Spec
	loaded bool
	// prog caches the assembled image; campaigns reload the same workload
	// for every experiment.
	prog    *asm.Program
	progSrc string

	env *envsim.Recorder

	detail bool
	trace  []TraceEntry

	// cpstore is the CheckpointStore: snapshots keyed by caller id. The
	// first snapshot saved (goldenCP) keeps a full memory image; later saves
	// store page deltas against it, so a forking campaign's checkpoint grid
	// costs one image plus the divergent pages. cpBytes tracks the owned
	// footprint for the engine's memory budget.
	cpstore  map[uint64]*thorSnapshot
	goldenCP *thor.Checkpoint
	cpBytes  int64
}

// legacySlot is the CheckpointStore id backing the single-slot Checkpointer
// interface, out of the way of the forking engine's cycle-count ids.
const legacySlot = ^uint64(0)

// thorSnapshot is one stored snapshot: the CPU checkpoint plus the debug
// registers, TAP controller stage and environment-simulator state it does
// not cover. Snapshots are immutable once taken and may be shared between
// sibling ThorTarget instances via Export/ImportCheckpoint.
type thorSnapshot struct {
	cpu    *thor.Checkpoint
	debug  thor.Debug
	tap    scan.TAPSnapshot
	env    any
	hasEnv bool
	bytes  int64
}

// NewThorTarget builds a Thor target with the given simulator configuration.
// The simulator itself is constructed lazily by InitTestCard, so an invalid
// configuration surfaces as an InitTestCard error.
func NewThorTarget(cfg thor.Config) *ThorTarget { return &ThorTarget{cfg: cfg} }

// NewDefaultThorTarget builds a Thor target with the default configuration.
func NewDefaultThorTarget() *ThorTarget { return NewThorTarget(thor.DefaultConfig()) }

// Name identifies the Thor-RD test card.
func (t *ThorTarget) Name() string { return "thor-rd" }

// System exposes the underlying simulator for instrumentation (the
// pre-injection analysis attaches its own trace hook). Nil before
// InitTestCard.
func (t *ThorTarget) System() *thor.System { return t.sys }

// InitTestCard powers up the simulator: full CPU reset, memory cleared,
// debug registers and TAP reset, hooks and traces dropped.
func (t *ThorTarget) InitTestCard() error {
	if t.sys == nil {
		sys, err := thor.NewSystem(t.cfg)
		if err != nil {
			return fmt.Errorf("target: %w", err)
		}
		tap, err := thor.BuildTAP(sys)
		if err != nil {
			return fmt.Errorf("target: %w", err)
		}
		core, err := tap.ChainByName(thor.ChainCore)
		if err != nil {
			return fmt.Errorf("target: %w", err)
		}
		t.sys, t.tap, t.core = sys, tap, core
	}
	t.sys.CPU.Reset()
	t.sys.CPU.ClearMemory()
	t.sys.CPU.SetSyncHook(nil)
	t.sys.CPU.SetTraceHook(nil)
	*t.sys.Debug = thor.Debug{}
	t.tap.Reset()
	t.trace = nil
	t.loaded = false
	t.env = nil
	return nil
}

// LoadWorkload assembles the workload (cached across experiments), writes
// its segments through the host port and instantiates its environment
// simulator.
func (t *ThorTarget) LoadWorkload(w workload.Spec) error {
	if t.sys == nil {
		return errNotInitialised
	}
	if t.prog == nil || t.progSrc != w.Source {
		prog, err := asm.Assemble(w.Source)
		if err != nil {
			return fmt.Errorf("target: workload %s: %w", w.Name, err)
		}
		t.prog, t.progSrc = prog, w.Source
	}
	cpu := t.sys.CPU
	cpu.ClearMemory()
	for _, seg := range t.prog.Segments {
		addr := seg.Addr
		for _, word := range seg.Words {
			if err := cpu.WriteWordHost(addr, word); err != nil {
				return fmt.Errorf("target: workload %s: %w", w.Name, err)
			}
			addr += 4
		}
	}
	t.w = w
	t.env = nil
	if w.Env != "" {
		envsim.RegisterBuiltins()
		sim, err := envsim.New(w.Env)
		if err != nil {
			return fmt.Errorf("target: workload %s: %w", w.Name, err)
		}
		t.env = envsim.NewRecorder(sim)
	}
	t.loaded = true
	return nil
}

// RunWorkload arms the loaded workload: CPU reset (memory is preserved, so
// pre-arranged inputs and pre-runtime faults stay in place), environment
// reset, hooks installed. No instruction executes here — execution is driven
// by WaitForBreakpoint/WaitForTermination so that faults injected between
// RunWorkload and the first wait land before the first instruction.
func (t *ThorTarget) RunWorkload() error {
	if t.sys == nil {
		return errNotInitialised
	}
	if !t.loaded {
		return errors.New("target: no workload loaded")
	}
	cpu := t.sys.CPU
	cpu.Reset()
	*t.sys.Debug = thor.Debug{}
	t.trace = nil
	if t.env != nil {
		t.env.Reset()
		cpu.SetSyncHook(t.exchangeEnv)
	} else {
		cpu.SetSyncHook(nil)
	}
	if t.detail {
		cpu.SetTraceHook(t.recordTrace)
	} else {
		cpu.SetTraceHook(nil)
	}
	return nil
}

// exchangeEnv is the SYNC hook coupling workload and environment: sampled
// outputs go into the simulator, its reply lands at the input addresses
// before the next iteration reads them.
func (t *ThorTarget) exchangeEnv(cpu *thor.CPU) {
	outs := make([]uint32, len(t.w.OutputAddrs))
	for i, addr := range t.w.OutputAddrs {
		v, err := cpu.ReadWordHost(addr)
		if err != nil {
			continue
		}
		outs[i] = v
	}
	ins := t.env.Step(outs)
	for i, addr := range t.w.InputAddrs {
		if i >= len(ins) {
			break
		}
		// The workload owns its address map; errors here would mean a
		// mis-declared spec already rejected by Validate.
		_ = cpu.WriteWordHost(addr, ins[i])
	}
}

// recordTrace is the detail-mode trace hook: core chain image after every
// executed instruction.
func (t *ThorTarget) recordTrace(rec thor.TraceRecord) {
	t.trace = append(t.trace, TraceEntry{
		Cycle:  rec.Cycle,
		PC:     rec.PC,
		Disasm: rec.Instr.String(),
		Core:   t.core.Capture(),
	})
}

// WriteMemory writes words through the host port.
func (t *ThorTarget) WriteMemory(addr uint32, vals []uint32) error {
	if t.sys == nil {
		return errNotInitialised
	}
	for i, v := range vals {
		if err := t.sys.CPU.WriteWordHost(addr+uint32(4*i), v); err != nil {
			return fmt.Errorf("target: %w", err)
		}
	}
	return nil
}

// ReadMemory reads words through the host port.
func (t *ThorTarget) ReadMemory(addr uint32, n int) ([]uint32, error) {
	if t.sys == nil {
		return nil, errNotInitialised
	}
	out := make([]uint32, n)
	for i := range out {
		v, err := t.sys.CPU.ReadWordHost(addr + uint32(4*i))
		if err != nil {
			return nil, fmt.Errorf("target: %w", err)
		}
		out[i] = v
	}
	return out, nil
}

// SetBreakpoint arms a cycle breakpoint through the debug unit.
func (t *ThorTarget) SetBreakpoint(cycle uint64) error {
	if t.sys == nil {
		return errNotInitialised
	}
	t.sys.Debug.BPCycle = cycle
	t.sys.Debug.BPCycleEnable = true
	t.sys.Debug.Hit = false
	return nil
}

// WaitForBreakpoint steps the workload until the armed breakpoint fires
// (checked before each instruction, like the hardware debug unit). On a hit
// the debug registers are cleared — the host acknowledges the breakpoint
// before injecting, so the registers carry no per-experiment residue into
// the captured state. False is returned when the workload ends, the cycle
// budget is exhausted, or the workload's own iteration bound is reached
// first (an injection time beyond the execution never fires).
func (t *ThorTarget) WaitForBreakpoint(maxCycles uint64) (bool, error) {
	if t.sys == nil {
		return false, errNotInitialised
	}
	cpu, d := t.sys.CPU, t.sys.Debug
	for {
		if cpu.Status() != thor.StatusRunning {
			return false, nil
		}
		if (d.BPCycleEnable && cpu.Cycles() >= d.BPCycle) ||
			(d.BPAddrEnable && cpu.PC == d.BPAddr) {
			*d = thor.Debug{}
			return true, nil
		}
		if maxCycles > 0 && cpu.Cycles() >= maxCycles {
			return false, nil
		}
		if t.w.MaxIterations > 0 && cpu.Iterations() >= t.w.MaxIterations {
			return false, nil
		}
		cpu.Step()
	}
}

// WaitForTermination disarms the debug unit and runs the workload to its
// end, classifying the outcome. Budgets are checked before each instruction,
// so a MaxIterations bound terminates exactly at the iteration count (the
// environment history then holds exactly MaxIterations snapshots).
func (t *ThorTarget) WaitForTermination(spec TerminationSpec) (Termination, error) {
	if t.sys == nil {
		return Termination{}, errNotInitialised
	}
	cpu := t.sys.CPU
	*t.sys.Debug = thor.Debug{}
	for cpu.Status() == thor.StatusRunning {
		if spec.MaxIterations > 0 && cpu.Iterations() >= spec.MaxIterations {
			return t.termination(TerminIterations, ""), nil
		}
		if spec.MaxCycles > 0 && cpu.Cycles() >= spec.MaxCycles {
			return t.termination(TerminTimeout, ""), nil
		}
		cpu.Step()
	}
	switch cpu.Status() {
	case thor.StatusDetected:
		mech := ""
		if det := cpu.Detection(); det != nil {
			mech = det.Mechanism
		}
		return t.termination(TerminDetected, mech), nil
	default:
		return t.termination(TerminWorkloadEnd, ""), nil
	}
}

func (t *ThorTarget) termination(reason Reason, mech string) Termination {
	return Termination{
		Reason:     reason,
		Mechanism:  mech,
		Cycles:     t.sys.CPU.Cycles(),
		Iterations: t.sys.CPU.Iterations(),
	}
}

// ReadScanChain shifts a chain image out through the TAP.
func (t *ThorTarget) ReadScanChain(chain string) (scan.Bits, error) {
	if t.tap == nil {
		return scan.Bits{}, errNotInitialised
	}
	if err := t.tap.SelectChain(chain); err != nil {
		return scan.Bits{}, err
	}
	return t.tap.ReadChain()
}

// WriteScanChain shifts a chain image in through the TAP.
func (t *ThorTarget) WriteScanChain(chain string, bits scan.Bits) error {
	if t.tap == nil {
		return errNotInitialised
	}
	if err := t.tap.SelectChain(chain); err != nil {
		return err
	}
	_, err := t.tap.WriteChain(bits)
	return err
}

// Chains inventories the TAP's scan chains in IR-code order.
func (t *ThorTarget) Chains() []ChainInfo {
	if t.tap == nil {
		return nil
	}
	chains := t.tap.Chains()
	out := make([]ChainInfo, 0, len(chains))
	for _, ch := range chains {
		out = append(out, ChainInfo{Name: ch.Name(), Bits: ch.Length(), Writable: ch.WritableBits()})
	}
	return out
}

// BitName names a chain bit for the fault-location catalogue.
func (t *ThorTarget) BitName(chain string, bit int) (string, error) {
	if t.tap == nil {
		return "", errNotInitialised
	}
	ch, err := t.tap.ChainByName(chain)
	if err != nil {
		return "", err
	}
	if bit < 0 || bit >= ch.Length() {
		return "", fmt.Errorf("target: chain %s has no bit %d", chain, bit)
	}
	return ch.BitName(bit), nil
}

// MemLayout reports the configured memory and ROM sizes.
func (t *ThorTarget) MemLayout() (uint32, uint32) { return t.cfg.MemSize, t.cfg.ROMSize }

// SetDetailMode toggles per-instruction tracing. The hook itself is
// (re)installed by RunWorkload, so toggling between experiments is cheap.
func (t *ThorTarget) SetDetailMode(on bool) {
	t.detail = on
	if !on {
		t.trace = nil
		if t.sys != nil {
			t.sys.CPU.SetTraceHook(nil)
		}
	}
}

// TraceLog returns the detail-mode trace of the last execution.
func (t *ThorTarget) TraceLog() []TraceEntry { return t.trace }

// EnvHistory returns the environment simulator's recorded outputs.
func (t *ThorTarget) EnvHistory() [][]uint32 {
	if t.env == nil {
		return nil
	}
	return t.env.History()
}

// SaveCheckpoint snapshots the complete system state into the single legacy
// slot (Checkpointer).
func (t *ThorTarget) SaveCheckpoint() error { return t.SaveCheckpointAt(legacySlot) }

// RestoreCheckpoint restores the legacy-slot snapshot, reporting false when
// none was saved (Checkpointer).
func (t *ThorTarget) RestoreCheckpoint() (bool, error) { return t.RestoreCheckpointAt(legacySlot) }

// ClearCheckpoint discards the legacy-slot snapshot (Checkpointer).
func (t *ThorTarget) ClearCheckpoint() { t.DropCheckpointAt(legacySlot) }

// SaveCheckpointAt snapshots the complete system state — CPU (registers,
// memory, caches), debug registers, TAP controller stage and environment
// simulator — under id (CheckpointStore). The first snapshot taken carries a
// full memory image; subsequent ones delta against it.
func (t *ThorTarget) SaveCheckpointAt(id uint64) error {
	if t.sys == nil {
		return errNotInitialised
	}
	var cpu *thor.Checkpoint
	if t.goldenCP == nil {
		cpu = t.sys.CPU.Checkpoint()
		t.goldenCP = cpu
	} else {
		var err error
		if cpu, err = t.sys.CPU.CheckpointDelta(t.goldenCP); err != nil {
			return fmt.Errorf("target: save checkpoint %d: %w", id, err)
		}
	}
	snap := &thorSnapshot{cpu: cpu, debug: *t.sys.Debug, tap: t.tap.Snapshot()}
	if t.env != nil {
		snap.env = t.env.SaveState()
		snap.hasEnv = true
	}
	snap.bytes = cpu.Bytes()
	t.putSnapshot(id, snap)
	return nil
}

// putSnapshot installs a snapshot under id, keeping the byte accounting.
func (t *ThorTarget) putSnapshot(id uint64, snap *thorSnapshot) {
	if t.cpstore == nil {
		t.cpstore = make(map[uint64]*thorSnapshot)
	}
	if old, ok := t.cpstore[id]; ok {
		t.cpBytes -= old.bytes
	}
	t.cpstore[id] = snap
	t.cpBytes += snap.bytes
}

// RestoreCheckpointAt restores the snapshot saved under id in place (scan
// chains stay bound to the live state), reporting false when the store holds
// none (CheckpointStore). The snapshot itself stays valid for further
// restores, on this instance or any sibling it is exported to.
func (t *ThorTarget) RestoreCheckpointAt(id uint64) (bool, error) {
	snap, ok := t.cpstore[id]
	if !ok {
		return false, nil
	}
	if t.sys == nil {
		return false, errNotInitialised
	}
	if err := t.sys.CPU.Restore(snap.cpu); err != nil {
		return false, fmt.Errorf("target: restore checkpoint %d: %w", id, err)
	}
	*t.sys.Debug = snap.debug
	t.tap.RestoreSnapshot(snap.tap)
	if snap.hasEnv && t.env != nil {
		if err := t.env.RestoreState(snap.env); err != nil {
			return false, fmt.Errorf("target: restore checkpoint %d: %w", id, err)
		}
	}
	t.trace = nil
	return true, nil
}

// DropCheckpointAt discards the snapshot saved under id (CheckpointStore).
// When the store empties, the golden image is released so the next save
// starts a fresh full-image generation.
func (t *ThorTarget) DropCheckpointAt(id uint64) {
	snap, ok := t.cpstore[id]
	if !ok {
		return
	}
	t.cpBytes -= snap.bytes
	delete(t.cpstore, id)
	if len(t.cpstore) == 0 {
		t.goldenCP = nil
		t.cpBytes = 0
	}
}

// DropCheckpoints discards every snapshot (CheckpointStore).
func (t *ThorTarget) DropCheckpoints() {
	t.cpstore = nil
	t.goldenCP = nil
	t.cpBytes = 0
}

// CheckpointBytes estimates the store's owned footprint (CheckpointStore).
// Imported snapshots alias their exporter's golden image, so only divergent
// pages count for them.
func (t *ThorTarget) CheckpointBytes() int64 { return t.cpBytes }

// ExportCheckpoint hands out the snapshot saved under id as an opaque
// immutable value (CheckpointStore).
func (t *ThorTarget) ExportCheckpoint(id uint64) (any, bool) {
	snap, ok := t.cpstore[id]
	return snap, ok
}

// ImportCheckpoint installs a snapshot exported by a sibling instance
// (CheckpointStore). Shape compatibility with this instance's configuration
// is validated at restore time, so importing before InitTestCard is legal.
func (t *ThorTarget) ImportCheckpoint(id uint64, snap any) error {
	ts, ok := snap.(*thorSnapshot)
	if !ok || ts == nil {
		return fmt.Errorf("target: import checkpoint %d: not a thor snapshot (%T)", id, snap)
	}
	t.putSnapshot(id, ts)
	return nil
}

// WaitForTrigger steps the workload until the event trigger fires, bounded
// by the cycle budget and the workload's iteration bound.
func (t *ThorTarget) WaitForTrigger(trig trigger.Trigger, maxCycles uint64) (bool, error) {
	if t.sys == nil {
		return false, errNotInitialised
	}
	cpu := t.sys.CPU
	for {
		if cpu.Status() != thor.StatusRunning {
			return false, nil
		}
		if maxCycles > 0 && cpu.Cycles() >= maxCycles {
			return false, nil
		}
		if t.w.MaxIterations > 0 && cpu.Iterations() >= t.w.MaxIterations {
			return false, nil
		}
		cpu.Step()
		if trig.Fired(cpu.LastEvents(), cpu.Cycles()) {
			return true, nil
		}
	}
}

// ThorFactory mints independent Thor targets sharing one configuration —
// one simulator per parallel campaign worker.
func ThorFactory(cfg thor.Config) Factory {
	return FactoryFunc(func() (Operations, error) { return NewThorTarget(cfg), nil })
}

// DefaultThorFactory mints default-configured Thor targets.
func DefaultThorFactory() Factory { return ThorFactory(thor.DefaultConfig()) }
