package target

import (
	"sync/atomic"

	"goofi/internal/obsv"
	"goofi/internal/scan"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// Measured wraps another target's Operations and times every call into an
// obsv.Recorder — the observability sibling of Flaky: instead of breaking
// operations it measures them. Each operation maps onto one leaf phase of
// the obsv taxonomy (initialisation, workload execution, scan shift-in/out,
// memory access, checkpointing), so a campaign run over Measured targets
// yields a per-phase wall-clock breakdown.
//
// Unlike Flaky, Measured DOES forward the optional capability interfaces
// (Checkpointer, CheckpointStore, TriggerWaiter, ExperimentSeeder) by probing
// the inner target dynamically: instrumentation must be transparent, or switching on
// -metrics-out would silently change which techniques a campaign can run.
// The trade-off is that a capability probe against Measured is optimistic —
// it answers for the wrapper, and an inner target without the capability
// surfaces ErrNotImplemented at call time instead of probe time.
//
// Measured implements obsv.Carrier, so code holding only the Operations
// interface (the injection algorithms) can open trace spans on the same
// recorder via obsv.GroupOf.
type Measured struct {
	Operations
	rec *obsv.Recorder
	tid atomic.Int32
	tc  obsv.TraceContext
}

// NewMeasured wraps inner, recording into rec (nil rec is allowed and makes
// every timing a no-op).
func NewMeasured(inner Operations, rec *obsv.Recorder) *Measured {
	return &Measured{Operations: inner, rec: rec}
}

// MeasuredFactory wraps every target the inner factory mints with the same
// recorder. The campaign runner assigns worker ids via SetWorkerID.
func MeasuredFactory(inner Factory, rec *obsv.Recorder) Factory {
	return FactoryFunc(func() (Operations, error) {
		ops, err := inner.New()
		if err != nil {
			return nil, err
		}
		return NewMeasured(ops, rec), nil
	})
}

// SetWorkerID assigns the virtual thread id this instance records under
// (0 = sequential/coordinator, 1..N = pool workers).
func (m *Measured) SetWorkerID(tid int32) { m.tid.Store(tid) }

// ObsvRecorder returns the recorder (obsv.Carrier).
func (m *Measured) ObsvRecorder() *obsv.Recorder { return m.rec }

// ObsvTID returns the current virtual thread id (obsv.Carrier).
func (m *Measured) ObsvTID() int32 { return m.tid.Load() }

// Unwrap returns the wrapped target, for capability probes that need the
// real implementation.
func (m *Measured) Unwrap() Operations { return m.Operations }

func (m *Measured) begin(p obsv.Phase) obsv.Span {
	return m.rec.Begin(p, m.tid.Load())
}

// InitTestCard times target power-up/reset as target-init.
func (m *Measured) InitTestCard() error {
	sp := m.begin(obsv.PhaseInit)
	defer sp.End()
	return m.Operations.InitTestCard()
}

// LoadWorkload times workload assembly/load as target-init.
func (m *Measured) LoadWorkload(w workload.Spec) error {
	sp := m.begin(obsv.PhaseInit)
	defer sp.End()
	return m.Operations.LoadWorkload(w)
}

// RunWorkload times arming the workload as target-init.
func (m *Measured) RunWorkload() error {
	sp := m.begin(obsv.PhaseInit)
	defer sp.End()
	return m.Operations.RunWorkload()
}

// SetBreakpoint times breakpoint arming as workload time.
func (m *Measured) SetBreakpoint(cycle uint64) error {
	sp := m.begin(obsv.PhaseWorkload)
	defer sp.End()
	return m.Operations.SetBreakpoint(cycle)
}

// WaitForBreakpoint times execution up to the breakpoint as workload time.
func (m *Measured) WaitForBreakpoint(maxCycles uint64) (bool, error) {
	sp := m.begin(obsv.PhaseWorkload)
	defer sp.End()
	return m.Operations.WaitForBreakpoint(maxCycles)
}

// WaitForTermination times the run-to-completion leg as workload time.
func (m *Measured) WaitForTermination(spec TerminationSpec) (Termination, error) {
	sp := m.begin(obsv.PhaseWorkload)
	defer sp.End()
	return m.Operations.WaitForTermination(spec)
}

// ReadScanChain times TAP shift-out.
func (m *Measured) ReadScanChain(chain string) (scan.Bits, error) {
	sp := m.begin(obsv.PhaseScanOut)
	defer sp.End()
	return m.Operations.ReadScanChain(chain)
}

// WriteScanChain times TAP shift-in.
func (m *Measured) WriteScanChain(chain string, bits scan.Bits) error {
	sp := m.begin(obsv.PhaseScanIn)
	defer sp.End()
	return m.Operations.WriteScanChain(chain, bits)
}

// ReadMemory times host-port reads.
func (m *Measured) ReadMemory(addr uint32, n int) ([]uint32, error) {
	sp := m.begin(obsv.PhaseMemory)
	defer sp.End()
	return m.Operations.ReadMemory(addr, n)
}

// WriteMemory times host-port writes.
func (m *Measured) WriteMemory(addr uint32, vals []uint32) error {
	sp := m.begin(obsv.PhaseMemory)
	defer sp.End()
	return m.Operations.WriteMemory(addr, vals)
}

// SaveCheckpoint forwards Checkpointer, timed as checkpoint-save. An inner
// target without the capability gets ErrNotImplemented.
func (m *Measured) SaveCheckpoint() error {
	cp, ok := m.Operations.(Checkpointer)
	if !ok {
		return ErrNotImplemented
	}
	sp := m.begin(obsv.PhaseCheckpointSave)
	defer sp.End()
	return cp.SaveCheckpoint()
}

// RestoreCheckpoint forwards Checkpointer, timed as checkpoint-restore.
func (m *Measured) RestoreCheckpoint() (bool, error) {
	cp, ok := m.Operations.(Checkpointer)
	if !ok {
		return false, ErrNotImplemented
	}
	sp := m.begin(obsv.PhaseCheckpointRestore)
	defer sp.End()
	return cp.RestoreCheckpoint()
}

// ClearCheckpoint forwards Checkpointer (untimed: it only drops state).
func (m *Measured) ClearCheckpoint() {
	if cp, ok := m.Operations.(Checkpointer); ok {
		cp.ClearCheckpoint()
	}
}

// SaveCheckpointAt forwards CheckpointStore, timed as checkpoint-save.
func (m *Measured) SaveCheckpointAt(id uint64) error {
	cs, ok := m.Operations.(CheckpointStore)
	if !ok {
		return ErrNotImplemented
	}
	sp := m.begin(obsv.PhaseCheckpointSave)
	defer sp.End()
	return cs.SaveCheckpointAt(id)
}

// RestoreCheckpointAt forwards CheckpointStore, timed as checkpoint-restore.
func (m *Measured) RestoreCheckpointAt(id uint64) (bool, error) {
	cs, ok := m.Operations.(CheckpointStore)
	if !ok {
		return false, ErrNotImplemented
	}
	sp := m.begin(obsv.PhaseCheckpointRestore)
	defer sp.End()
	return cs.RestoreCheckpointAt(id)
}

// DropCheckpointAt forwards CheckpointStore (untimed: it only drops state).
func (m *Measured) DropCheckpointAt(id uint64) {
	if cs, ok := m.Operations.(CheckpointStore); ok {
		cs.DropCheckpointAt(id)
	}
}

// DropCheckpoints forwards CheckpointStore (untimed).
func (m *Measured) DropCheckpoints() {
	if cs, ok := m.Operations.(CheckpointStore); ok {
		cs.DropCheckpoints()
	}
}

// CheckpointBytes forwards CheckpointStore (untimed; 0 without the
// capability).
func (m *Measured) CheckpointBytes() int64 {
	if cs, ok := m.Operations.(CheckpointStore); ok {
		return cs.CheckpointBytes()
	}
	return 0
}

// ExportCheckpoint forwards CheckpointStore (untimed: exports alias).
func (m *Measured) ExportCheckpoint(id uint64) (any, bool) {
	if cs, ok := m.Operations.(CheckpointStore); ok {
		return cs.ExportCheckpoint(id)
	}
	return nil, false
}

// ImportCheckpoint forwards CheckpointStore, timed as checkpoint-save (an
// import is how a worker's pool acquires a snapshot).
func (m *Measured) ImportCheckpoint(id uint64, snap any) error {
	cs, ok := m.Operations.(CheckpointStore)
	if !ok {
		return ErrNotImplemented
	}
	sp := m.begin(obsv.PhaseCheckpointSave)
	defer sp.End()
	return cs.ImportCheckpoint(id, snap)
}

// WaitForTrigger forwards TriggerWaiter, timed as workload time.
func (m *Measured) WaitForTrigger(trig trigger.Trigger, maxCycles uint64) (bool, error) {
	tw, ok := m.Operations.(TriggerWaiter)
	if !ok {
		return false, ErrNotImplemented
	}
	sp := m.begin(obsv.PhaseWorkload)
	defer sp.End()
	return tw.WaitForTrigger(trig, maxCycles)
}

// SeedExperiment forwards ExperimentSeeder (untimed), preserving the
// bit-reproducibility contract for wrapped chaos targets.
func (m *Measured) SeedExperiment(campaignSeed int64, experiment, attempt int) {
	if es, ok := m.Operations.(ExperimentSeeder); ok {
		es.SeedExperiment(campaignSeed, experiment, attempt)
	}
}

// SetTraceContext stores the attempt's provenance context and forwards it
// inward (TraceContextSetter). Like SeedExperiment, the runner calls this
// before launching the attempt, so a plain field is race-free.
func (m *Measured) SetTraceContext(tc obsv.TraceContext) {
	m.tc = tc
	if s, ok := m.Operations.(TraceContextSetter); ok {
		s.SetTraceContext(tc)
	}
}

// ObsvTraceContext returns the attempt context (TraceContextCarrier).
func (m *Measured) ObsvTraceContext() obsv.TraceContext { return m.tc }
