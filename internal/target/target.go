// Package target defines GOOFI's target abstraction layer: the generic
// operations a fault-injection algorithm needs from a test card (paper §2.2,
// Fig. 3). Algorithms in internal/core speak only this interface; porting
// GOOFI to a new system means implementing it (or embedding BaseTarget and
// overriding the operations the system supports).
//
// Two targets ship with the reproduction: ThorTarget, the JTAG-equipped
// Thor-RD simulator the paper's campaigns run on, and SimpleTarget, the
// minimal accumulator machine of the porting guide.
package target

import (
	"errors"

	"goofi/internal/scan"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// ErrNotImplemented is returned by BaseTarget for every operation a concrete
// target has not overridden — the Framework default of §2.2.
var ErrNotImplemented = errors.New("target: operation not implemented")

// Reason classifies how an experiment's workload execution ended.
type Reason int

// Termination reasons (§2.3: the terminationReason column).
const (
	// TerminWorkloadEnd: the workload ran to completion (HALT).
	TerminWorkloadEnd Reason = iota + 1
	// TerminDetected: an error-detection mechanism fired.
	TerminDetected
	// TerminTimeout: the cycle budget was exhausted.
	TerminTimeout
	// TerminIterations: the iteration budget was reached (control workloads
	// that never halt on their own).
	TerminIterations
)

// String renders the reason as stored in the database.
func (r Reason) String() string {
	switch r {
	case TerminWorkloadEnd:
		return "workload-end"
	case TerminDetected:
		return "detected"
	case TerminTimeout:
		return "timeout"
	case TerminIterations:
		return "iterations"
	default:
		return "unknown"
	}
}

// TerminationSpec bounds a WaitForTermination call.
type TerminationSpec struct {
	// MaxCycles bounds the execution in instructions; 0 means unbounded.
	MaxCycles uint64
	// MaxIterations bounds the execution in workload iterations (SYNC
	// points); 0 means unbounded.
	MaxIterations uint64
}

// Termination describes how and when a workload execution ended.
type Termination struct {
	Reason Reason
	// Mechanism names the error-detection mechanism for TerminDetected.
	Mechanism string
	// Cycles and Iterations are the execution counters at termination.
	Cycles     uint64
	Iterations uint64
}

// ChainInfo describes one scan chain of the target.
type ChainInfo struct {
	Name string
	// Bits is the chain length.
	Bits int
	// Writable lists the bit positions a host write can change.
	Writable []int
}

// TraceEntry is one detail-mode log record: the core state after one
// executed instruction (§3.3, "logging the system state after each executed
// instruction").
type TraceEntry struct {
	Cycle  uint64
	PC     uint32
	Disasm string
	// Core is the captured core scan-chain image.
	Core scan.Bits
}

// Operations is the set of generic operations the fault-injection algorithms
// are written against (Fig. 3). The experiment life-cycle is: InitTestCard,
// LoadWorkload, optional memory setup, RunWorkload (arms the workload
// without executing instructions), then SetBreakpoint/WaitForBreakpoint and
// scan-chain access to inject, and WaitForTermination to finish.
type Operations interface {
	// Name identifies the target system (the testCardName column).
	Name() string

	// InitTestCard powers up and fully resets the target.
	InitTestCard() error
	// LoadWorkload assembles and loads the workload image and prepares its
	// environment simulator.
	LoadWorkload(w workload.Spec) error
	// RunWorkload arms the loaded workload at its entry point. It must not
	// execute any instructions: execution is driven exclusively by
	// WaitForBreakpoint and WaitForTermination, so pre-run faults injected
	// after RunWorkload are in place before the first instruction.
	RunWorkload() error

	// WriteMemory and ReadMemory access test-card memory words through the
	// host port (byte addresses, word-aligned).
	WriteMemory(addr uint32, vals []uint32) error
	ReadMemory(addr uint32, n int) ([]uint32, error)

	// SetBreakpoint arms a cycle breakpoint at the given execution time.
	SetBreakpoint(cycle uint64) error
	// WaitForBreakpoint runs the workload until the breakpoint fires,
	// reporting false when the workload ends or the budget is exhausted
	// first.
	WaitForBreakpoint(maxCycles uint64) (bool, error)

	// ReadScanChain and WriteScanChain access internal state through the
	// target's scan chains — the only path to registers, caches and pins.
	ReadScanChain(chain string) (scan.Bits, error)
	WriteScanChain(chain string, bits scan.Bits) error

	// WaitForTermination runs the workload to its end and classifies it.
	WaitForTermination(spec TerminationSpec) (Termination, error)

	// Chains inventories the target's scan chains.
	Chains() []ChainInfo
	// BitName names one chain bit ("chain/field[i]") for the fault-location
	// catalogue.
	BitName(chain string, bit int) (string, error)
	// MemLayout reports the memory and ROM sizes in bytes.
	MemLayout() (memSize, romSize uint32)

	// SetDetailMode toggles per-instruction state logging (§3.3).
	SetDetailMode(on bool)
	// TraceLog returns the detail-mode trace of the last execution.
	TraceLog() []TraceEntry
	// EnvHistory returns the environment simulator's recorded outputs, one
	// snapshot per workload iteration, or nil without a simulator.
	EnvHistory() [][]uint32
}

// Checkpointer is the optional capability behind the scifi-checkpoint
// technique: saving the post-prefix system state once and restoring it for
// every subsequent experiment.
type Checkpointer interface {
	// SaveCheckpoint snapshots the complete system state.
	SaveCheckpoint() error
	// RestoreCheckpoint restores the snapshot, reporting false when none was
	// saved.
	RestoreCheckpoint() (bool, error)
	// ClearCheckpoint discards any saved snapshot.
	ClearCheckpoint()
}

// CheckpointStore generalises Checkpointer to many snapshots addressed by
// caller-chosen ids — the capability behind the core engine's golden-run
// checkpoint forking. The forking engine uses reference-run cycle counts as
// ids: it snapshots along the golden run, then starts each experiment from
// the nearest checkpoint at or before its first injection time.
//
// Exported snapshots are opaque immutable values. They may be imported into
// any sibling instance minted from the same Factory (same configuration);
// this is how the parallel runner distributes the coordinator's golden-run
// checkpoints to its worker pool. Implementations are expected to share
// large state (the golden memory image) between snapshots, so CheckpointBytes
// reports owned bytes — the quantity a memory budget meaningfully bounds.
type CheckpointStore interface {
	// SaveCheckpointAt snapshots the complete system state under id,
	// replacing any snapshot previously saved under it.
	SaveCheckpointAt(id uint64) error
	// RestoreCheckpointAt restores the snapshot saved under id, reporting
	// false when the store holds none.
	RestoreCheckpointAt(id uint64) (bool, error)
	// DropCheckpointAt discards the snapshot saved under id, if any.
	DropCheckpointAt(id uint64)
	// DropCheckpoints discards every snapshot in the store.
	DropCheckpoints()
	// CheckpointBytes estimates the store's owned memory footprint.
	CheckpointBytes() int64
	// ExportCheckpoint returns the snapshot saved under id as an opaque
	// immutable value, or false when the store holds none.
	ExportCheckpoint(id uint64) (snap any, ok bool)
	// ImportCheckpoint installs a previously exported snapshot under id.
	// Shape validation happens at restore time, so instances may import
	// before they are initialised.
	ImportCheckpoint(id uint64, snap any) error
}

// AsCheckpointStore probes ops for a usable CheckpointStore. Wrapper layers
// (Measured, Flaky) forward the capability optimistically — they answer for
// themselves and surface ErrNotImplemented only at call time — so this
// helper unwraps to the innermost target and requires the capability to be
// real there, while returning the outermost store so instrumentation and
// chaos stay in the call path.
func AsCheckpointStore(ops Operations) (CheckpointStore, bool) {
	outer, ok := ops.(CheckpointStore)
	if !ok {
		return nil, false
	}
	inner := ops
	for {
		u, ok := inner.(interface{ Unwrap() Operations })
		if !ok {
			break
		}
		inner = u.Unwrap()
	}
	if _, ok := inner.(CheckpointStore); !ok {
		return nil, false
	}
	return outer, true
}

// TriggerWaiter is the optional capability behind the scifi-triggered
// technique: running until an event trigger fires.
type TriggerWaiter interface {
	// WaitForTrigger runs the workload until the trigger fires, reporting
	// false when the workload ends or the budget is exhausted first.
	WaitForTrigger(trig trigger.Trigger, maxCycles uint64) (bool, error)
}

// ExperimentSeeder is the optional capability of targets whose behaviour
// draws on pseudo-randomness (the Flaky chaos wrapper): the campaign runner
// reseeds before every experiment attempt, so nondeterministic-looking
// behaviour is actually a pure function of (campaign seed, experiment index,
// attempt index) — independent of worker scheduling — and campaigns over such
// targets stay bit-reproducible.
type ExperimentSeeder interface {
	// SeedExperiment reseeds the target's PRNG for one experiment attempt.
	// The reference run is seeded with experiment index -1.
	SeedExperiment(campaignSeed int64, experiment, attempt int)
}

// Factory mints independent target instances. Parallel campaign execution
// (core.Runner with Campaign.Workers > 1) gives every worker its own
// instance, so experiments share no simulator state.
type Factory interface {
	New() (Operations, error)
}

// FactoryFunc adapts a constructor function to the Factory interface.
type FactoryFunc func() (Operations, error)

// New calls f.
func (f FactoryFunc) New() (Operations, error) { return f() }
