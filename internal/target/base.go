package target

import (
	"goofi/internal/scan"
	"goofi/internal/workload"
)

// BaseTarget provides the Framework defaults of §2.2: every operation
// returns ErrNotImplemented (or a harmless zero value for the inventory
// calls), so a port only overrides the operations its system supports.
// Embed it by value; all methods use value receivers so they promote through
// both value and pointer embedding.
type BaseTarget struct{}

// Name returns a placeholder; ports should override it.
func (BaseTarget) Name() string { return "unnamed-target" }

// InitTestCard is not implemented by the framework default.
func (BaseTarget) InitTestCard() error { return ErrNotImplemented }

// LoadWorkload is not implemented by the framework default.
func (BaseTarget) LoadWorkload(workload.Spec) error { return ErrNotImplemented }

// RunWorkload is not implemented by the framework default.
func (BaseTarget) RunWorkload() error { return ErrNotImplemented }

// WriteMemory is not implemented by the framework default.
func (BaseTarget) WriteMemory(uint32, []uint32) error { return ErrNotImplemented }

// ReadMemory is not implemented by the framework default.
func (BaseTarget) ReadMemory(uint32, int) ([]uint32, error) { return nil, ErrNotImplemented }

// SetBreakpoint is not implemented by the framework default.
func (BaseTarget) SetBreakpoint(uint64) error { return ErrNotImplemented }

// WaitForBreakpoint is not implemented by the framework default.
func (BaseTarget) WaitForBreakpoint(uint64) (bool, error) { return false, ErrNotImplemented }

// ReadScanChain is not implemented by the framework default.
func (BaseTarget) ReadScanChain(string) (scan.Bits, error) { return scan.Bits{}, ErrNotImplemented }

// WriteScanChain is not implemented by the framework default.
func (BaseTarget) WriteScanChain(string, scan.Bits) error { return ErrNotImplemented }

// WaitForTermination is not implemented by the framework default.
func (BaseTarget) WaitForTermination(TerminationSpec) (Termination, error) {
	return Termination{}, ErrNotImplemented
}

// Chains reports no scan chains.
func (BaseTarget) Chains() []ChainInfo { return nil }

// BitName is not implemented by the framework default.
func (BaseTarget) BitName(string, int) (string, error) { return "", ErrNotImplemented }

// MemLayout reports no memory.
func (BaseTarget) MemLayout() (uint32, uint32) { return 0, 0 }

// SetDetailMode is a no-op: targets without tracing ignore detail mode.
func (BaseTarget) SetDetailMode(bool) {}

// TraceLog reports no trace.
func (BaseTarget) TraceLog() []TraceEntry { return nil }

// EnvHistory reports no environment simulator.
func (BaseTarget) EnvHistory() [][]uint32 { return nil }
