package target

import "goofi/internal/obsv"

// Provenance context plumbing. The campaign runner stamps the attempt in
// flight onto the target stack before every attempt (ApplyTraceContext), the
// wrappers store and forward it inward, and fault-injecting layers (Flaky)
// or instrumented layers (Measured) attribute the wide events they emit to
// that attempt. Like SetWorkerID and ExperimentSeeder, the capability is a
// dynamic probe: interface embedding does not promote it, so every wrapper
// forwards explicitly.

// TraceContextSetter is the probe the runner uses to hand the current
// attempt's provenance context to the target stack.
type TraceContextSetter interface {
	SetTraceContext(obsv.TraceContext)
}

// TraceContextCarrier exposes the provenance context travelling with a
// target, so code holding only the Operations interface (the injection
// algorithms) can attribute events to the attempt in flight.
type TraceContextCarrier interface {
	ObsvTraceContext() obsv.TraceContext
}

// ApplyTraceContext hands tc to ops when it accepts provenance context; a
// bare target without the capability is left alone.
func ApplyTraceContext(ops Operations, tc obsv.TraceContext) {
	if s, ok := ops.(TraceContextSetter); ok {
		s.SetTraceContext(tc)
	}
}

// TraceContextOf returns the provenance context travelling with ops, or the
// zero (disabled) context.
func TraceContextOf(ops Operations) obsv.TraceContext {
	if c, ok := ops.(TraceContextCarrier); ok {
		return c.ObsvTraceContext()
	}
	return obsv.TraceContext{}
}
