package target

import (
	"fmt"

	"goofi/internal/simple"
	"goofi/internal/workload"
)

// Word geometry of the simple checksum workload: the program lives at word
// 0, sums sixteen data words at dataWord into resultWord.
const (
	simpleDataWord   = 0x200
	simpleDataCount  = 16
	simpleResultWord = 0x300
)

// SimpleTarget ports GOOFI to the 16-bit accumulator machine of
// internal/simple — the minimal port of the paper's §2.2 extension story. It
// embeds BaseTarget, so every scan operation stays on the framework default:
// SWIFI works, SCIFI is rejected by campaign validation.
type SimpleTarget struct {
	BaseTarget
	m *simple.Machine
	w workload.Spec

	// cpstore implements CheckpointStore over full machine-state snapshots:
	// the machine's 8 KiB image is small enough that delta encoding would
	// buy nothing, so every snapshot is a complete simple.State.
	cpstore map[uint64]*simple.State
}

// simpleStateBytes is the accounting weight of one machine snapshot: the
// memory image plus registers, counters and slice headers.
const simpleStateBytes = int64(simple.MemWords*2 + 128)

// NewSimpleTarget builds the accumulator-machine target.
func NewSimpleTarget() *SimpleTarget { return &SimpleTarget{m: simple.New()} }

// Name identifies the accumulator test card.
func (t *SimpleTarget) Name() string { return "simple-accu" }

// InitTestCard resets the machine and zeroes its memory so no state leaks
// between experiments (the machine's own Reset preserves memory).
func (t *SimpleTarget) InitTestCard() error {
	t.m.Reset()
	for addr := uint16(0); int(addr) < simple.MemWords; addr++ {
		if err := t.m.Write(addr, 0); err != nil {
			return fmt.Errorf("target: %w", err)
		}
	}
	return nil
}

// LoadWorkload installs the built-in checksum program with a deterministic
// data block. The Spec's Source is documentation only — this machine has no
// assembler.
func (t *SimpleTarget) LoadWorkload(w workload.Spec) error {
	prog := simple.ChecksumProgram(simpleDataWord, simpleDataCount, simpleResultWord)
	for i, word := range prog {
		if err := t.m.Write(uint16(i), word); err != nil {
			return fmt.Errorf("target: workload %s: %w", w.Name, err)
		}
	}
	for i := 0; i < simpleDataCount; i++ {
		if err := t.m.Write(simpleDataWord+uint16(i), uint16(7*i+13)); err != nil {
			return fmt.Errorf("target: workload %s: %w", w.Name, err)
		}
	}
	t.w = w
	return nil
}

// RunWorkload arms the program at address zero without executing anything.
func (t *SimpleTarget) RunWorkload() error {
	t.m.Reset()
	return nil
}

// WriteMemory writes words through the host port. The machine's words are
// 16 bits wide, so values are truncated — faults injected into the upper
// half of a 32-bit word vanish, exactly like flipping a wire the narrow
// machine does not have.
func (t *SimpleTarget) WriteMemory(addr uint32, vals []uint32) error {
	for i, v := range vals {
		word := addr/4 + uint32(i)
		if word > 0xFFFF {
			return fmt.Errorf("target: address %#x out of range", addr+uint32(4*i))
		}
		if err := t.m.Write(uint16(word), uint16(v)); err != nil {
			return fmt.Errorf("target: %w", err)
		}
	}
	return nil
}

// ReadMemory reads words through the host port.
func (t *SimpleTarget) ReadMemory(addr uint32, n int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := range out {
		word := addr/4 + uint32(i)
		if word > 0xFFFF {
			return nil, fmt.Errorf("target: address %#x out of range", addr+uint32(4*i))
		}
		v, err := t.m.Read(uint16(word))
		if err != nil {
			return nil, fmt.Errorf("target: %w", err)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

// WaitForTermination runs the program to completion within the cycle budget
// and classifies the outcome.
func (t *SimpleTarget) WaitForTermination(spec TerminationSpec) (Termination, error) {
	budget := spec.MaxCycles
	if budget == 0 {
		budget = 1 << 20
	}
	for t.m.Status() == simple.StatusRunning && t.m.Cycles() < budget {
		t.m.Step()
	}
	term := Termination{Cycles: t.m.Cycles()}
	switch t.m.Status() {
	case simple.StatusHalted:
		term.Reason = TerminWorkloadEnd
	case simple.StatusDetected:
		term.Reason = TerminDetected
		term.Mechanism = t.m.Mechanism()
	default:
		term.Reason = TerminTimeout
	}
	return term, nil
}

// MemLayout reports the machine's word-addressed memory as bytes.
func (t *SimpleTarget) MemLayout() (uint32, uint32) { return simple.MemWords * 4, 0 }

// SaveCheckpointAt snapshots the machine state under id (CheckpointStore).
func (t *SimpleTarget) SaveCheckpointAt(id uint64) error {
	if t.cpstore == nil {
		t.cpstore = make(map[uint64]*simple.State)
	}
	st := t.m.SaveState()
	t.cpstore[id] = &st
	return nil
}

// RestoreCheckpointAt restores the snapshot saved under id, reporting false
// when the store holds none (CheckpointStore).
func (t *SimpleTarget) RestoreCheckpointAt(id uint64) (bool, error) {
	st, ok := t.cpstore[id]
	if !ok {
		return false, nil
	}
	t.m.RestoreState(*st)
	return true, nil
}

// DropCheckpointAt discards the snapshot saved under id (CheckpointStore).
func (t *SimpleTarget) DropCheckpointAt(id uint64) { delete(t.cpstore, id) }

// DropCheckpoints discards every snapshot (CheckpointStore).
func (t *SimpleTarget) DropCheckpoints() { t.cpstore = nil }

// CheckpointBytes estimates the store's footprint (CheckpointStore).
func (t *SimpleTarget) CheckpointBytes() int64 {
	return int64(len(t.cpstore)) * simpleStateBytes
}

// ExportCheckpoint hands out a snapshot as an opaque immutable value
// (CheckpointStore).
func (t *SimpleTarget) ExportCheckpoint(id uint64) (any, bool) {
	st, ok := t.cpstore[id]
	return st, ok
}

// ImportCheckpoint installs a snapshot exported by a sibling instance
// (CheckpointStore).
func (t *SimpleTarget) ImportCheckpoint(id uint64, snap any) error {
	st, ok := snap.(*simple.State)
	if !ok || st == nil {
		return fmt.Errorf("target: import checkpoint %d: not a simple-machine snapshot (%T)", id, snap)
	}
	if t.cpstore == nil {
		t.cpstore = make(map[uint64]*simple.State)
	}
	t.cpstore[id] = st
	return nil
}

// SimpleChecksumWorkload describes the built-in checksum program of
// SimpleTarget in workload.Spec terms, so the standard campaign machinery
// (validation, logging, analysis) applies unchanged.
func SimpleChecksumWorkload() workload.Spec {
	return workload.Spec{
		Name:           "simple-checksum",
		Description:    "sum sixteen data words into a result word (built into the simple target)",
		Source:         "; built-in: checksum of 16 words at 0x200 into 0x300 (no assembler on this target)",
		TerminatesSelf: true,
		MaxCycles:      4096,
		ResultAddrs:    []uint32{4 * simpleResultWord},
	}
}

// SimpleFactory mints independent accumulator-machine targets for parallel
// campaign workers.
func SimpleFactory() Factory {
	return FactoryFunc(func() (Operations, error) { return NewSimpleTarget(), nil })
}
