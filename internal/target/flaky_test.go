package target

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTransientTaxonomy(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must stay nil")
	}
	base := errors.New("scan glitch")
	te := Transient(base)
	if !IsTransient(te) {
		t.Fatal("wrapped error must classify as transient")
	}
	if !errors.Is(te, base) {
		t.Fatal("wrapping must preserve the cause for errors.Is")
	}
	if te.Error() != base.Error() {
		t.Fatalf("message changed: %q", te.Error())
	}
	// Idempotent: wrapping a transient error again returns it unchanged.
	if Transient(te) != te {
		t.Fatal("double wrap must be a no-op")
	}
	// Errors that merely wrap a transient error stay transient.
	outer := fmt.Errorf("experiment 4: %w", te)
	if !IsTransient(outer) {
		t.Fatal("fmt.Errorf chain must stay transient")
	}
	if IsTransient(base) || IsTransient(nil) {
		t.Fatal("plain errors and nil are not transient")
	}
}

func TestParseFlakyConfig(t *testing.T) {
	cfg, err := ParseFlakyConfig("err=0.02, panic=0.005,hang=0.01,seed=3,hangdur=5s")
	if err != nil {
		t.Fatal(err)
	}
	want := FlakyConfig{ErrorRate: 0.02, PanicRate: 0.005, HangRate: 0.01, Seed: 3, HangDuration: 5 * time.Second}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	// hangdur defaults to 30s so a spec without it can never wedge forever.
	cfg, err = ParseFlakyConfig("err=0.5")
	if err != nil || cfg.HangDuration != 30*time.Second {
		t.Fatalf("default hangdur: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"nope", "bogus=1", "err=x", "err=1.5", "hang=-0.1", "seed=abc", "hangdur=xyz"} {
		if _, err := ParseFlakyConfig(bad); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}

// chaosStub overrides just enough of the operation surface for chaos draws
// to have a success path to fall through to.
type chaosStub struct{ BaseTarget }

func (chaosStub) ReadMemory(addr uint32, n int) ([]uint32, error) { return make([]uint32, n), nil }

// TestFlakySeededFaultStream pins the determinism contract: after
// SeedExperiment, the injected fault stream is a pure function of the seeds
// and indices, and distinct attempts draw distinct streams.
func TestFlakySeededFaultStream(t *testing.T) {
	draw := func(campaignSeed int64, exp, attempt int) []bool {
		f := NewFlaky(chaosStub{}, FlakyConfig{ErrorRate: 0.5, Seed: 7})
		f.SeedExperiment(campaignSeed, exp, attempt)
		out := make([]bool, 64)
		for i := range out {
			_, err := f.ReadMemory(0, 1)
			out[i] = err != nil
			if err != nil && !IsTransient(err) {
				t.Fatal("injected errors must be transient")
			}
		}
		return out
	}
	eq := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	a, b := draw(1, 5, 0), draw(1, 5, 0)
	if !eq(a, b) {
		t.Fatal("same (seed, experiment, attempt) must replay the same fault stream")
	}
	if eq(a, draw(1, 5, 1)) {
		t.Fatal("a retry attempt must draw a fresh fault stream")
	}
	if eq(a, draw(2, 5, 0)) {
		t.Fatal("a different campaign seed must draw a fresh fault stream")
	}
}

func TestFlakyPanicAndCounts(t *testing.T) {
	f := NewFlaky(chaosStub{}, FlakyConfig{PanicRate: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PanicRate=1 must panic")
			}
		}()
		f.ReadMemory(0, 1)
	}()
	if c := f.Counts(); c.Panics != 1 || c.Errors != 0 || c.Hangs != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestFlakyBoundedHang(t *testing.T) {
	f := NewFlaky(chaosStub{}, FlakyConfig{HangRate: 1, HangDuration: time.Millisecond})
	start := time.Now()
	_, err := f.ReadMemory(0, 1)
	if !IsTransient(err) {
		t.Fatalf("bounded hang must resolve to a transient error, got %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("hang returned before its duration elapsed")
	}
	if c := f.Counts(); c.Hangs != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

// TestFlakyHidesCapabilities: wrapping must not forward optional capability
// interfaces, or campaign validation would promise checkpoint/trigger support
// the chaos layer cannot deliver faithfully.
func TestFlakyHidesCapabilities(t *testing.T) {
	var ops Operations = NewFlaky(NewDefaultThorTarget(), FlakyConfig{})
	if _, ok := ops.(Checkpointer); ok {
		t.Error("Flaky must not forward Checkpointer")
	}
	if _, ok := ops.(TriggerWaiter); ok {
		t.Error("Flaky must not forward TriggerWaiter")
	}
	if _, ok := ops.(ExperimentSeeder); !ok {
		t.Error("Flaky must implement ExperimentSeeder")
	}
}
