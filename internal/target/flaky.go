package target

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"goofi/internal/obsv"
	"goofi/internal/scan"
)

// FlakyConfig configures the Flaky chaos wrapper: per-operation probabilities
// of injecting a transient error, a panic or a hang into the scan/read/write
// surface of a target. All decisions are drawn from a seeded PRNG, so a
// chaos campaign is as reproducible as a clean one.
type FlakyConfig struct {
	// ErrorRate is the per-operation probability of returning a transient
	// error instead of performing the operation.
	ErrorRate float64
	// PanicRate is the per-operation probability of panicking mid-operation
	// (the campaign runner's recover converts this into an experiment
	// failure).
	PanicRate float64
	// HangRate is the per-operation probability of blocking — the wedge the
	// campaign watchdog must detect. Pair a nonzero HangRate with
	// Campaign.ExperimentTimeout.
	HangRate float64
	// Seed makes the injected fault stream reproducible; it is mixed with the
	// campaign seed and experiment/attempt indices by SeedExperiment.
	Seed int64
	// HangDuration bounds how long an injected hang blocks before returning a
	// transient error. 0 blocks forever — only safe under a watchdog.
	HangDuration time.Duration
}

// Validate checks the rates are probabilities.
func (c FlakyConfig) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{{"err", c.ErrorRate}, {"panic", c.PanicRate}, {"hang", c.HangRate}} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("target: flaky %s rate %g outside [0,1]", r.name, r.rate)
		}
	}
	if c.HangDuration < 0 {
		return fmt.Errorf("target: flaky hang duration %v negative", c.HangDuration)
	}
	return nil
}

// ParseFlakyConfig parses a chaos spec of the form
// "err=0.02,panic=0.005,hang=0.01,seed=3,hangdur=5s". Unknown keys are
// rejected; hangdur defaults to 30s so a CLI self-test campaign can never
// wedge forever even without a watchdog.
func ParseFlakyConfig(spec string) (FlakyConfig, error) {
	cfg := FlakyConfig{HangDuration: 30 * time.Second}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return FlakyConfig{}, fmt.Errorf("target: flaky spec %q: want key=value", kv)
		}
		switch key {
		case "err", "panic", "hang":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return FlakyConfig{}, fmt.Errorf("target: flaky %s: %w", key, err)
			}
			switch key {
			case "err":
				cfg.ErrorRate = rate
			case "panic":
				cfg.PanicRate = rate
			case "hang":
				cfg.HangRate = rate
			}
		case "seed":
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return FlakyConfig{}, fmt.Errorf("target: flaky seed: %w", err)
			}
			cfg.Seed = seed
		case "hangdur":
			d, err := time.ParseDuration(val)
			if err != nil {
				return FlakyConfig{}, fmt.Errorf("target: flaky hangdur: %w", err)
			}
			cfg.HangDuration = d
		default:
			return FlakyConfig{}, fmt.Errorf("target: flaky spec: unknown key %q", key)
		}
	}
	return cfg, cfg.Validate()
}

// FlakyCounts tallies the faults a Flaky wrapper injected.
type FlakyCounts struct {
	Errors, Panics, Hangs int64
}

// Flaky wraps another target's Operations and injects seeded transient faults
// — errors, panics and hangs — into the scan/read/write surface: fault
// injection for the fault injector. It exists to exercise (and self-test) the
// campaign engine's retry, quarantine and watchdog machinery against the
// misbehaviour real test cards exhibit (§2: hung experiments, glitching
// scan-chain communication).
//
// Flaky implements ExperimentSeeder: the campaign runner reseeds it before
// every experiment attempt, so the injected fault stream is a pure function
// of (campaign seed, experiment index, attempt index) — independent of worker
// scheduling — and chaos campaigns stay bit-reproducible.
//
// The single-slot capability interfaces (Checkpointer, TriggerWaiter) are
// intentionally not forwarded: a wrapped target reports only the generic
// operation surface, so capability probes stay truthful for validation.
// CheckpointStore IS forwarded (with chaos on the save/restore/import paths)
// because forking campaigns must be chaos-testable; validation stays truthful
// through AsCheckpointStore, which requires the innermost target to hold the
// capability for real.
type Flaky struct {
	Operations
	cfg FlakyConfig
	rng *rand.Rand
	tc  obsv.TraceContext

	errors atomic.Int64
	panics atomic.Int64
	hangs  atomic.Int64
}

// NewFlaky wraps inner with the given chaos configuration.
func NewFlaky(inner Operations, cfg FlakyConfig) *Flaky {
	return &Flaky{
		Operations: inner,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(mixSeed(cfg.Seed, 0, 0, 0))),
	}
}

// FlakyFactory wraps every target the inner factory mints.
func FlakyFactory(inner Factory, cfg FlakyConfig) Factory {
	return FactoryFunc(func() (Operations, error) {
		ops, err := inner.New()
		if err != nil {
			return nil, err
		}
		return NewFlaky(ops, cfg), nil
	})
}

// mixSeed folds the seeds and indices through splitmix64 so nearby inputs
// give unrelated PRNG streams.
func mixSeed(cfgSeed, campaignSeed int64, experiment, attempt int) int64 {
	z := uint64(cfgSeed)*0x9e3779b97f4a7c15 ^ uint64(campaignSeed)
	z ^= uint64(int64(experiment))<<32 ^ uint64(int64(attempt))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SeedExperiment reseeds the fault stream for one experiment attempt
// (ExperimentSeeder).
func (f *Flaky) SeedExperiment(campaignSeed int64, experiment, attempt int) {
	f.rng = rand.New(rand.NewSource(mixSeed(f.cfg.Seed, campaignSeed, experiment, attempt)))
}

// SetTraceContext stores the attempt's provenance context so injected chaos
// faults are attributed to the attempt they hit (TraceContextSetter). Set by
// the runner before each attempt, like SeedExperiment.
func (f *Flaky) SetTraceContext(tc obsv.TraceContext) {
	f.tc = tc
	if s, ok := f.Operations.(TraceContextSetter); ok {
		s.SetTraceContext(tc)
	}
}

// ObsvTraceContext returns the attempt context (TraceContextCarrier).
func (f *Flaky) ObsvTraceContext() obsv.TraceContext { return f.tc }

// Counts reports how many faults have been injected so far.
func (f *Flaky) Counts() FlakyCounts {
	return FlakyCounts{Errors: f.errors.Load(), Panics: f.panics.Load(), Hangs: f.hangs.Load()}
}

// chaos draws the fault decision for one operation call: panic, hang (block,
// then fail transiently) or transient error, in that precedence order.
func (f *Flaky) chaos(op string) error {
	if f.cfg.PanicRate > 0 && f.rng.Float64() < f.cfg.PanicRate {
		f.panics.Add(1)
		if f.tc.Enabled() {
			f.tc.Emit(obsv.EvChaosPanic, "op="+op)
		}
		panic(fmt.Sprintf("flaky: injected panic in %s", op))
	}
	if f.cfg.HangRate > 0 && f.rng.Float64() < f.cfg.HangRate {
		f.hangs.Add(1)
		// Emitted before the block so the event lands inside the attempt's
		// window even when the watchdog abandons the hung goroutine.
		if f.tc.Enabled() {
			f.tc.Emit(obsv.EvChaosHang, fmt.Sprintf("op=%s hangdur=%v", op, f.cfg.HangDuration))
		}
		if f.cfg.HangDuration <= 0 {
			select {} // block forever; only the campaign watchdog can move on
		}
		time.Sleep(f.cfg.HangDuration)
		return Transient(fmt.Errorf("flaky: %s hung for %v", op, f.cfg.HangDuration))
	}
	if f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate {
		f.errors.Add(1)
		if f.tc.Enabled() {
			f.tc.Emit(obsv.EvChaosError, "op="+op)
		}
		return Transient(fmt.Errorf("flaky: injected %s error", op))
	}
	return nil
}

// ReadScanChain injects chaos into the scan-read path.
func (f *Flaky) ReadScanChain(chain string) (scan.Bits, error) {
	if err := f.chaos("ReadScanChain"); err != nil {
		return scan.Bits{}, err
	}
	return f.Operations.ReadScanChain(chain)
}

// WriteScanChain injects chaos into the scan-write path.
func (f *Flaky) WriteScanChain(chain string, bits scan.Bits) error {
	if err := f.chaos("WriteScanChain"); err != nil {
		return err
	}
	return f.Operations.WriteScanChain(chain, bits)
}

// ReadMemory injects chaos into the host-port read path.
func (f *Flaky) ReadMemory(addr uint32, n int) ([]uint32, error) {
	if err := f.chaos("ReadMemory"); err != nil {
		return nil, err
	}
	return f.Operations.ReadMemory(addr, n)
}

// WriteMemory injects chaos into the host-port write path.
func (f *Flaky) WriteMemory(addr uint32, vals []uint32) error {
	if err := f.chaos("WriteMemory"); err != nil {
		return err
	}
	return f.Operations.WriteMemory(addr, vals)
}

// Unwrap returns the wrapped target, for capability probes that need the
// real implementation (AsCheckpointStore).
func (f *Flaky) Unwrap() Operations { return f.Operations }

// SaveCheckpointAt injects chaos into the checkpoint-save path.
func (f *Flaky) SaveCheckpointAt(id uint64) error {
	cs, ok := f.Operations.(CheckpointStore)
	if !ok {
		return ErrNotImplemented
	}
	if err := f.chaos("SaveCheckpointAt"); err != nil {
		return err
	}
	return cs.SaveCheckpointAt(id)
}

// RestoreCheckpointAt injects chaos into the checkpoint-restore path.
func (f *Flaky) RestoreCheckpointAt(id uint64) (bool, error) {
	cs, ok := f.Operations.(CheckpointStore)
	if !ok {
		return false, ErrNotImplemented
	}
	if err := f.chaos("RestoreCheckpointAt"); err != nil {
		return false, err
	}
	return cs.RestoreCheckpointAt(id)
}

// DropCheckpointAt forwards without chaos: dropping state cannot glitch.
func (f *Flaky) DropCheckpointAt(id uint64) {
	if cs, ok := f.Operations.(CheckpointStore); ok {
		cs.DropCheckpointAt(id)
	}
}

// DropCheckpoints forwards without chaos.
func (f *Flaky) DropCheckpoints() {
	if cs, ok := f.Operations.(CheckpointStore); ok {
		cs.DropCheckpoints()
	}
}

// CheckpointBytes forwards without chaos (pure accounting).
func (f *Flaky) CheckpointBytes() int64 {
	if cs, ok := f.Operations.(CheckpointStore); ok {
		return cs.CheckpointBytes()
	}
	return 0
}

// ExportCheckpoint forwards without chaos (exports alias host memory; the
// glitching surface is the target link, exercised by import/restore).
func (f *Flaky) ExportCheckpoint(id uint64) (any, bool) {
	if cs, ok := f.Operations.(CheckpointStore); ok {
		return cs.ExportCheckpoint(id)
	}
	return nil, false
}

// ImportCheckpoint injects chaos into the pool-import path.
func (f *Flaky) ImportCheckpoint(id uint64, snap any) error {
	cs, ok := f.Operations.(CheckpointStore)
	if !ok {
		return ErrNotImplemented
	}
	if err := f.chaos("ImportCheckpoint"); err != nil {
		return err
	}
	return cs.ImportCheckpoint(id, snap)
}
