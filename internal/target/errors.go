package target

import "errors"

// ErrTransient classifies an operation failure as a transient target glitch:
// scan-chain communication noise, a momentary simulator fault, a wedged JTAG
// transaction — the §2 failure modes a campaign engine must survive rather
// than abort on. Wrap errors with Transient to mark them; the campaign
// runner retries experiments whose attempts failed transiently and treats
// every other error as a permanent tool failure.
var ErrTransient = errors.New("target: transient fault")

// transientError wraps an error so that errors.Is(err, ErrTransient) holds
// while the original cause stays reachable through the chain.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }

// Unwrap exposes both the cause and the ErrTransient marker.
func (e *transientError) Unwrap() []error { return []error{e.err, ErrTransient} }

// Transient marks err as a transient target fault. A nil err stays nil; an
// already-transient err is returned unchanged.
func Transient(err error) error {
	if err == nil || IsTransient(err) {
		return err
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is (or wraps) a transient target fault —
// the retry/quarantine classification of the campaign engine.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }
