package target

import (
	"testing"

	"goofi/internal/obsv"
	"goofi/internal/workload"
)

// armThor initialises a Thor target and arms the bubblesort workload.
func armThor(t *testing.T, ops Operations) workload.Spec {
	t.Helper()
	w, err := workload.Get("bubblesort")
	if err != nil {
		t.Fatal(err)
	}
	if err := ops.InitTestCard(); err != nil {
		t.Fatal(err)
	}
	if err := ops.LoadWorkload(w); err != nil {
		t.Fatal(err)
	}
	if err := ops.RunWorkload(); err != nil {
		t.Fatal(err)
	}
	return w
}

// runTo drives the target to the given cycle via the debug breakpoint.
func runTo(t *testing.T, ops Operations, cycle, maxCycles uint64) {
	t.Helper()
	if err := ops.SetBreakpoint(cycle); err != nil {
		t.Fatal(err)
	}
	hit, err := ops.WaitForBreakpoint(maxCycles)
	if err != nil || !hit {
		t.Fatalf("breakpoint at %d: hit=%v err=%v", cycle, hit, err)
	}
}

// finalState runs to termination and returns the outcome plus result words.
func finalState(t *testing.T, ops Operations, w workload.Spec) (Termination, []uint32) {
	t.Helper()
	term, err := ops.WaitForTermination(TerminationSpec{
		MaxCycles: w.MaxCycles, MaxIterations: w.MaxIterations})
	if err != nil {
		t.Fatal(err)
	}
	var words []uint32
	for _, addr := range w.ResultAddrs {
		vs, err := ops.ReadMemory(addr, 1)
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, vs...)
	}
	return term, words
}

// TestThorCheckpointStore exercises the multi-slot store on one instance:
// save at several cycles, restore by id, and re-execution from a restored
// checkpoint reproduces the uninterrupted outcome.
func TestThorCheckpointStore(t *testing.T) {
	tt := NewDefaultThorTarget()
	w := armThor(t, tt)

	runTo(t, tt, 100, w.MaxCycles)
	if err := tt.SaveCheckpointAt(100); err != nil {
		t.Fatal(err)
	}
	firstBytes := tt.CheckpointBytes()
	if firstBytes <= 0 {
		t.Fatal("no bytes accounted after first save")
	}
	runTo(t, tt, 600, w.MaxCycles)
	if err := tt.SaveCheckpointAt(600); err != nil {
		t.Fatal(err)
	}
	// The second snapshot is a delta against the first's full image: it must
	// cost far less than another full image.
	if delta := tt.CheckpointBytes() - firstBytes; delta <= 0 || delta >= firstBytes/2 {
		t.Errorf("delta snapshot cost %d bytes (full image: %d)", delta, firstBytes)
	}

	wantTerm, wantWords := finalState(t, tt, w)

	// Restore mid-run state and re-execute: identical outcome.
	for _, id := range []uint64{100, 600} {
		ok, err := tt.RestoreCheckpointAt(id)
		if err != nil || !ok {
			t.Fatalf("restore %d: ok=%v err=%v", id, ok, err)
		}
		if got := tt.System().CPU.Cycles(); got != id {
			t.Fatalf("restored cycle count = %d, want %d", got, id)
		}
		term, words := finalState(t, tt, w)
		if term != wantTerm {
			t.Fatalf("termination after restore %d = %+v, want %+v", id, term, wantTerm)
		}
		for i := range words {
			if words[i] != wantWords[i] {
				t.Fatalf("result word %d after restore %d = %#x, want %#x", i, id, words[i], wantWords[i])
			}
		}
	}

	if ok, _ := tt.RestoreCheckpointAt(42); ok {
		t.Fatal("restore of an unsaved id succeeded")
	}
	tt.DropCheckpointAt(100)
	if ok, _ := tt.RestoreCheckpointAt(100); ok {
		t.Fatal("restore of a dropped id succeeded")
	}
	tt.DropCheckpoints()
	if tt.CheckpointBytes() != 0 {
		t.Fatalf("bytes after DropCheckpoints = %d", tt.CheckpointBytes())
	}
}

// TestThorCheckpointExportImport pins snapshot portability: a checkpoint
// exported from one instance restores byte-equivalently on a sibling minted
// from the same configuration.
func TestThorCheckpointExportImport(t *testing.T) {
	src := NewDefaultThorTarget()
	w := armThor(t, src)
	runTo(t, src, 400, w.MaxCycles)
	if err := src.SaveCheckpointAt(400); err != nil {
		t.Fatal(err)
	}
	wantTerm, wantWords := finalState(t, src, w)

	snap, ok := src.ExportCheckpoint(400)
	if !ok {
		t.Fatal("export failed")
	}
	dst := NewDefaultThorTarget()
	// Import before initialisation must be legal.
	if err := dst.ImportCheckpoint(400, snap); err != nil {
		t.Fatal(err)
	}
	armThor(t, dst)
	ok, err := dst.RestoreCheckpointAt(400)
	if err != nil || !ok {
		t.Fatalf("restore on sibling: ok=%v err=%v", ok, err)
	}
	term, words := finalState(t, dst, w)
	if term != wantTerm {
		t.Fatalf("sibling termination = %+v, want %+v", term, wantTerm)
	}
	for i := range words {
		if words[i] != wantWords[i] {
			t.Fatalf("sibling result word %d = %#x, want %#x", i, words[i], wantWords[i])
		}
	}

	if err := dst.ImportCheckpoint(1, "not a snapshot"); err == nil {
		t.Fatal("foreign snapshot accepted")
	}
}

// TestSimpleCheckpointStore covers the accumulator target's store.
func TestSimpleCheckpointStore(t *testing.T) {
	st := NewSimpleTarget()
	if err := st.InitTestCard(); err != nil {
		t.Fatal(err)
	}
	w := SimpleChecksumWorkload()
	if err := st.LoadWorkload(w); err != nil {
		t.Fatal(err)
	}
	if err := st.RunWorkload(); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveCheckpointAt(0); err != nil {
		t.Fatal(err)
	}
	if st.CheckpointBytes() <= 0 {
		t.Fatal("no bytes accounted")
	}
	term1, err := st.WaitForTermination(TerminationSpec{MaxCycles: w.MaxCycles})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := st.ReadMemory(w.ResultAddrs[0], 1)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt memory, restore, re-run: same checksum.
	if err := st.WriteMemory(w.ResultAddrs[0], []uint32{0xDEAD}); err != nil {
		t.Fatal(err)
	}
	ok, err := st.RestoreCheckpointAt(0)
	if err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	term2, err := st.WaitForTermination(TerminationSpec{MaxCycles: w.MaxCycles})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := st.ReadMemory(w.ResultAddrs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if term1 != term2 || r1[0] != r2[0] {
		t.Fatalf("restored re-run diverged: %+v/%#x vs %+v/%#x", term1, r1[0], term2, r2[0])
	}

	// Export/import across siblings.
	snap, ok := st.ExportCheckpoint(0)
	if !ok {
		t.Fatal("export failed")
	}
	sib := NewSimpleTarget()
	if err := sib.ImportCheckpoint(0, snap); err != nil {
		t.Fatal(err)
	}
	if ok, err := sib.RestoreCheckpointAt(0); err != nil || !ok {
		t.Fatalf("sibling restore: ok=%v err=%v", ok, err)
	}
	if err := sib.ImportCheckpoint(1, 3.14); err == nil {
		t.Fatal("foreign snapshot accepted")
	}
}

// TestAsCheckpointStore pins the probe semantics: wrappers answer for their
// inner target, and the returned store is the outermost layer.
func TestAsCheckpointStore(t *testing.T) {
	rec := obsv.New(obsv.Options{})
	thorT := NewDefaultThorTarget()

	if _, ok := AsCheckpointStore(thorT); !ok {
		t.Error("bare ThorTarget must probe true")
	}
	m := NewMeasured(thorT, rec)
	if cs, ok := AsCheckpointStore(m); !ok {
		t.Error("Measured(Thor) must probe true")
	} else if _, isMeasured := cs.(*Measured); !isMeasured {
		t.Error("probe must return the outermost layer")
	}
	f := NewFlaky(m, FlakyConfig{})
	if cs, ok := AsCheckpointStore(f); !ok {
		t.Error("Flaky(Measured(Thor)) must probe true")
	} else if _, isFlaky := cs.(*Flaky); !isFlaky {
		t.Error("probe must return the outermost layer")
	}

	if _, ok := AsCheckpointStore(measuredStub{}); ok {
		t.Error("capability-free target must probe false")
	}
	if _, ok := AsCheckpointStore(NewMeasured(measuredStub{}, rec)); ok {
		t.Error("Measured(stub) must probe false: the capability is not real underneath")
	}
	if _, ok := AsCheckpointStore(NewFlaky(measuredStub{}, FlakyConfig{})); ok {
		t.Error("Flaky(stub) must probe false")
	}
}
