package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"goofi/internal/obsv"
)

// TestErrorStatusMapping pins every service sentinel onto its HTTP status:
// the client contract `goofi submit` and `goofi watch` retry against.
func TestErrorStatusMapping(t *testing.T) {
	s := newTestServer(t, Options{DataDir: t.TempDir()})
	cases := []struct {
		err  error
		code int
	}{
		{ErrNotFound, http.StatusNotFound},
		{fmt.Errorf("wrapped: %w", ErrNotFound), http.StatusNotFound},
		{ErrExists, http.StatusConflict},
		{ErrQueueFull, http.StatusTooManyRequests},
		{ErrDraining, http.StatusServiceUnavailable},
		{errors.New("anything else"), http.StatusBadRequest},
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		s.writeError(rr, c.err)
		if rr.Code != c.code {
			t.Errorf("writeError(%v) status = %d, want %d", c.err, rr.Code, c.code)
		}
		var doc map[string]string
		if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil || doc["error"] == "" {
			t.Errorf("writeError(%v) body = %q, want JSON problem document", c.err, rr.Body)
		}
		if c.code == http.StatusTooManyRequests && rr.Header().Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
	}
}

// syncBuffer makes a log sink safe to read while service goroutines are
// still writing to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDPropagation: a client-supplied X-Goofi-Request-Id is echoed
// on the response, appears in the service log, and lands in the campaign's
// http-request trace events; without one the service generates an id.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	s := newTestServer(t, Options{
		DataDir: t.TempDir(),
		Logger:  slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	spec := testSpec("acme", "rid", 4, 1)
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest("POST", srv.URL+"/campaigns", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "rid-test-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "rid-test-42" {
		t.Fatalf("response %s = %q, want the client-supplied id echoed", RequestIDHeader, got)
	}
	if !strings.Contains(logBuf.String(), "rid-test-42") {
		t.Fatalf("request id missing from service log:\n%s", logBuf.String())
	}
	waitStatus(t, s, "acme/rid")

	// A status poll for the campaign lands in its journal with the id.
	req, _ = http.NewRequest("GET", srv.URL+"/campaigns/acme/rid", nil)
	req.Header.Set(RequestIDHeader, "rid-test-43")
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	found := false
	for _, ev := range traceEventsOf(t, srv.URL, "acme/rid") {
		if ev.Kind == obsv.EvHTTPRequest && strings.Contains(ev.Detail, "id=rid-test-43") {
			if ev.TID != obsv.HTTPTID {
				t.Fatalf("http-request event on tid %d, want %d", ev.TID, obsv.HTTPTID)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("client request id never reached the campaign's trace events")
	}

	// No client id: the middleware mints one.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("no generated request id on the response")
	}
}

// traceEventsOf streams a campaign's NDJSON trace endpoint back into events.
func traceEventsOf(t *testing.T, base, id string) []obsv.WideEvent {
	t.Helper()
	resp, err := http.Get(base + "/campaigns/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	var events []obsv.WideEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev obsv.WideEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestTraceEndpoint: the trace stream of a finished campaign reconstructs
// the engine's causal events — plan draws, attempts, row durability — in
// causal order, and unknown campaigns 404.
func TestTraceEndpoint(t *testing.T) {
	s := newTestServer(t, Options{DataDir: t.TempDir()})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	spec := testSpec("acme", "traced", 6, 3)
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, "acme/traced")

	events := traceEventsOf(t, srv.URL, "acme/traced")
	kinds := map[string]int{}
	for i, ev := range events {
		kinds[ev.Kind]++
		if i > 0 && events[i].TimeNs < events[i-1].TimeNs {
			t.Fatalf("events out of causal order at %d: %d after %d", i, events[i].TimeNs, events[i-1].TimeNs)
		}
	}
	for _, kind := range []string{obsv.EvPlan, obsv.EvAttempt, obsv.EvRowDurable, obsv.EvWALCommit} {
		if kinds[kind] == 0 {
			t.Fatalf("trace stream lacks %q events; got %v", kind, kinds)
		}
	}
	if kinds[obsv.EvAttempt] < spec.Experiments {
		t.Fatalf("only %d attempt events for %d experiments", kinds[obsv.EvAttempt], spec.Experiments)
	}

	resp, err := http.Get(srv.URL + "/campaigns/acme/ghost/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign trace status = %d", resp.StatusCode)
	}
}

// TestHealthzFields: the health document carries the build version and live
// scheduler state.
func TestHealthzFields(t *testing.T) {
	s := newTestServer(t, Options{DataDir: t.TempDir()})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var doc struct {
		Status     string `json:"status"`
		Version    string `json:"version"`
		QueueDepth *int   `json:"queueDepth"`
		Running    *int   `json:"running"`
		Draining   *bool  `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.Version == "" {
		t.Fatalf("healthz doc = %+v", doc)
	}
	if doc.QueueDepth == nil || doc.Running == nil || doc.Draining == nil {
		t.Fatalf("healthz doc missing scheduler fields: %+v", doc)
	}
}

// TestMetricsHTTPFamilies: request latencies fold into one
// goofi_http_request_duration_seconds family labelled by route and status,
// and the runtime gauges ride along — all label-free service-level series
// next to the campaign-labelled engine metrics.
func TestMetricsHTTPFamilies(t *testing.T) {
	s := newTestServer(t, Options{DataDir: t.TempDir()})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, path := range []string{"/healthz", "/campaigns", "/campaigns/no/body"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE goofi_http_request_duration_seconds histogram",
		`goofi_http_request_duration_seconds_count{route="GET /healthz",status="200"}`,
		`goofi_http_request_duration_seconds_count{route="GET /campaigns/{tenant}/{name}",status="404"}`,
		"goofi_runtime_goroutines",
		"goofi_runtime_heap_inuse_bytes",
		"goofi_runtime_gc_pause_total_ns",
		"goofi_runtime_gc_cycles",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition lacks %q", want)
		}
	}
	if strings.Count(out, "# TYPE goofi_http_request_duration_seconds histogram") != 1 {
		t.Error("http histogram family emitted more than once")
	}
}
