// Package service is the campaign-as-a-service layer over the GOOFI engine:
// a multi-tenant daemon that accepts campaign submissions over a JSON/HTTP
// API, queues them behind a bounded-concurrency scheduler, executes each
// against its tenant's own WAL-backed database, streams live CampaignEvent
// frames, and survives SIGTERM by checkpointing in-flight campaigns and
// persisting the queue for resume on restart.
//
// The genericity argument of the paper (§3) — one engine, many targets —
// extends here to many clients: campaigns from independent tenants share the
// process but nothing else. Each tenant owns a database directory; each
// campaign owns a database file, recorder and event broadcaster; and a large
// campaign can be split across in-process shards whose reassembled rows are
// bit-identical to a single-process run (the pre-drawn-plan determinism the
// parallel engine already guarantees).
package service

import (
	"fmt"
	"strings"
	"time"

	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/target"
	"goofi/internal/workload"
)

// Spec is one campaign submission — the JSON body of POST /campaigns. The
// engine knobs (workers, shards, retries, timeout, chaos) parallel the flags
// of goofi run; the campaign definition fields parallel goofi setup.
type Spec struct {
	// Tenant names the submitting tenant; it becomes the database directory
	// under the service data dir, so it must be a path-safe slug.
	Tenant string `json:"tenant"`
	// Campaign is the campaign name, unique per tenant; it becomes the
	// database file name.
	Campaign string `json:"campaign"`

	Workload    string `json:"workload"`
	Technique   string `json:"technique,omitempty"` // default scifi
	Model       string `json:"model,omitempty"`     // default transient
	Locations   string `json:"locations"`
	Trigger     string `json:"trigger,omitempty"`
	Experiments int    `json:"experiments"`
	Seed        int64  `json:"seed"`
	TMin        uint64 `json:"tmin,omitempty"` // default 10
	TMax        uint64 `json:"tmax,omitempty"` // default 1000
	Notes       string `json:"notes,omitempty"`

	// Workers is the in-shard worker count (goofi run -workers).
	Workers int `json:"workers,omitempty"`
	// Shards splits the campaign across that many in-process shard runners;
	// the reassembled rows are bit-identical to an unsharded run.
	Shards int `json:"shards,omitempty"`
	// Retries and Timeout arm the fault-tolerance layer per experiment.
	Retries int    `json:"retries,omitempty"`
	Timeout string `json:"timeout,omitempty"` // Go duration, e.g. "30s"
	// Chaos wraps every target in the flaky chaos injector
	// (goofi run -chaos), e.g. "err=0.03,panic=0.01,seed=7".
	Chaos string `json:"chaos,omitempty"`
}

// ID is the campaign's service-wide identity: tenant/campaign.
func (s Spec) ID() string { return s.Tenant + "/" + s.Campaign }

// slugOK reports whether a tenant or campaign name is safe to use as a path
// component: non-empty, and only letters, digits, dot, underscore and dash —
// with no leading dot, so no hidden files and no "." / "..".
func slugOK(s string) bool {
	if s == "" || len(s) > 128 || s[0] == '.' {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the submission shape: identity slugs, a resolvable
// workload and fault model, and sane engine knobs. Target-dependent
// validation (location filters against the chain inventory) happens when the
// campaign runs.
func (s Spec) Validate() error {
	if !slugOK(s.Tenant) {
		return fmt.Errorf("service: tenant %q is not a valid slug", s.Tenant)
	}
	if !slugOK(s.Campaign) {
		return fmt.Errorf("service: campaign %q is not a valid slug", s.Campaign)
	}
	if _, err := s.campaign(); err != nil {
		return err
	}
	if s.Shards < 0 || s.Workers < 0 || s.Retries < 0 {
		return fmt.Errorf("service: %s: negative shards/workers/retries", s.ID())
	}
	return nil
}

// campaign builds the core campaign this spec describes, applying the same
// defaults and chaos arming as goofi run.
func (s Spec) campaign() (core.Campaign, error) {
	w, err := workload.Get(s.Workload)
	if err != nil {
		return core.Campaign{}, fmt.Errorf("service: %s: %w", s.ID(), err)
	}
	model := s.Model
	if model == "" {
		model = "transient"
	}
	m, err := faultmodel.ParseModel(model)
	if err != nil {
		return core.Campaign{}, fmt.Errorf("service: %s: %w", s.ID(), err)
	}
	tech := s.Technique
	if tech == "" {
		tech = core.TechSCIFI
	}
	tmin, tmax := s.TMin, s.TMax
	if tmin == 0 {
		tmin = 10
	}
	if tmax == 0 {
		tmax = 1000
	}
	c := core.Campaign{
		Name:           s.Campaign,
		Workload:       w,
		Technique:      tech,
		Model:          m,
		LocationFilter: faultmodel.Filter(s.Locations),
		TriggerSpec:    s.Trigger,
		NExperiments:   s.Experiments,
		Seed:           s.Seed,
		InjectMinTime:  tmin,
		InjectMaxTime:  tmax,
		Notes:          s.Notes,
		Workers:        s.Workers,
		RetryLimit:     s.Retries,
	}
	if s.Timeout != "" {
		d, err := time.ParseDuration(s.Timeout)
		if err != nil {
			return core.Campaign{}, fmt.Errorf("service: %s: timeout: %w", s.ID(), err)
		}
		c.ExperimentTimeout = d
	}
	if s.Chaos != "" {
		cfg, err := target.ParseFlakyConfig(s.Chaos)
		if err != nil {
			return core.Campaign{}, fmt.Errorf("service: %s: %w", s.ID(), err)
		}
		// A chaos campaign needs the robustness layer armed, exactly like
		// goofi run -chaos: default retry budget, and a watchdog when the
		// chaos includes hangs.
		if c.RetryLimit == 0 {
			c.RetryLimit = 3
		}
		if cfg.HangRate > 0 && c.ExperimentTimeout <= 0 {
			c.ExperimentTimeout = 30 * time.Second
		}
	}
	if c.NExperiments <= 0 {
		return core.Campaign{}, fmt.Errorf("service: %s: experiments must be positive", s.ID())
	}
	return c, nil
}

// splitID parses "tenant/campaign" back into its parts.
func splitID(id string) (tenant, campaign string, ok bool) {
	tenant, campaign, ok = strings.Cut(id, "/")
	return tenant, campaign, ok && tenant != "" && campaign != ""
}
