package service

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/dbase"
	"goofi/internal/obsv"
)

// RequestIDHeader carries the request id: honoured when the client sends one,
// generated otherwise, always echoed on the response and propagated into the
// request log line and the campaign's trace events.
const RequestIDHeader = "X-Goofi-Request-Id"

// buildHandler assembles the service's HTTP API once, at New:
//
//	POST   /campaigns                           submit (202, 400, 409, 429, 503)
//	GET    /campaigns                           list all campaigns
//	GET    /campaigns/{tenant}/{name}           status document
//	DELETE /campaigns/{tenant}/{name}           cancel / forget
//	GET    /campaigns/{tenant}/{name}/events    live NDJSON CampaignEvent stream
//	GET    /campaigns/{tenant}/{name}/report    analysis report (done campaigns)
//	GET    /campaigns/{tenant}/{name}/trace     provenance wide events (NDJSON)
//	GET    /metrics                             multiplexed Prometheus exposition
//	GET    /healthz                             liveness + build/queue document
//
// Every route runs under the instrument middleware: request-id echo, a
// per-route/status latency histogram, and an http-request trace event on
// campaign-scoped routes.
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"POST /campaigns", s.handleSubmit},
		{"GET /campaigns", s.handleList},
		{"GET /campaigns/{tenant}/{name}", s.handleStatus},
		{"DELETE /campaigns/{tenant}/{name}", s.handleCancel},
		{"GET /campaigns/{tenant}/{name}/events", s.handleEvents},
		{"GET /campaigns/{tenant}/{name}/report", s.handleReport},
		{"GET /campaigns/{tenant}/{name}/trace", s.handleTrace},
		{"GET /metrics", s.handleMetrics},
		{"GET /healthz", s.handleHealthz},
	} {
		mux.HandleFunc(r.pattern, s.instrument(r.pattern, r.h))
	}
	return mux
}

// Handler returns the HTTP API. The mux is built once in New and reused —
// constructing it per request would re-register every route on every call.
func (s *Server) Handler() http.Handler { return s.handler }

// ServeHTTP makes the server itself mountable as an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.handler.ServeHTTP(w, req)
}

// instrument wraps one route's handler with the service middleware:
// request-id (read or generate, echo, log), the per-route/status latency
// histogram behind /metrics, and an http-request wide event into the
// campaign's trace journal when the route names one.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		rid := req.Header.Get(RequestIDHeader)
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, req)
		status := sw.status()
		s.httpRec.ObserveSince(obsv.HTTPHistName(pattern, status), start)
		s.log.Info("http request",
			"requestId", rid, "route", pattern, "status", status, "dur", time.Since(start))
		s.emitHTTPTrace(req, pattern, rid, status, start)
	}
}

// newRequestID mints a 16-hex-digit random request id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unidentified"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for the middleware. It implements
// http.Flusher unconditionally so the NDJSON streaming handlers keep their
// flush-per-frame behaviour through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// emitHTTPTrace attributes one served request to the campaign it concerns, so
// the provenance timeline runs end to end: HTTP request → experiment attempts
// → WAL fsync.
func (s *Server) emitHTTPTrace(req *http.Request, pattern, rid string, status int, start time.Time) {
	tenant, name := req.PathValue("tenant"), req.PathValue("name")
	if tenant == "" || name == "" {
		return
	}
	s.mu.Lock()
	j := s.jobs[tenant+"/"+name]
	s.mu.Unlock()
	if j == nil {
		return
	}
	jl := j.rec.Journal()
	if jl == nil {
		return
	}
	jl.Emit(obsv.WideEvent{
		Kind:     obsv.EvHTTPRequest,
		TID:      obsv.HTTPTID,
		Campaign: j.spec.Campaign,
		TimeNs:   start.UnixNano(),
		DurNs:    time.Since(start).Nanoseconds(),
		Detail:   fmt.Sprintf("id=%s route=%s status=%d", rid, pattern, status),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders one error as a JSON problem document, mapping the
// service sentinels onto their status codes.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrExists):
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After",
			strconv.Itoa(int(max(s.opts.RetryAfter.Seconds(), 1))))
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Location", "/campaigns/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func reqID(req *http.Request) string {
	return req.PathValue("tenant") + "/" + req.PathValue("name")
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	st, err := s.Status(reqID(req))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	st, err := s.Cancel(reqID(req))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the campaign's CampaignEvent frames as NDJSON until
// the campaign finishes or the client goes away. A subscriber joining late
// immediately receives the latest frame (the final one, for a finished
// campaign) — the replay contract goofi watch's reconnect relies on.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	b, err := s.Events(reqID(req))
	if err != nil {
		s.writeError(w, err)
		return
	}
	ch, cancel := b.Subscribe(16)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-req.Context().Done():
			return
		}
	}
}

// handleReport classifies a finished campaign and returns the analysis
// report. The tenant store was closed when the campaign finished, so the
// report reopens it read-only (replaying any WAL sidecar) and discards the
// classification rows instead of saving them — the endpoint is idempotent.
func (s *Server) handleReport(w http.ResponseWriter, req *http.Request) {
	id := reqID(req)
	st, err := s.Status(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if st.Status != StatusDone {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("campaign %s is %s, not %s", id, st.Status, StatusDone),
		})
		return
	}
	rep, err := s.report(st)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// report runs the analysis against a freshly opened copy of the campaign's
// store. The store is only touched from this request's goroutine.
func (s *Server) report(st Status) (analysis.Report, error) {
	s.mu.Lock()
	j := s.jobs[st.ID]
	var spec Spec
	if j != nil {
		spec = j.spec
	}
	s.mu.Unlock()
	if j == nil {
		return analysis.Report{}, fmt.Errorf("%w: %s", ErrNotFound, st.ID)
	}
	store, err := dbase.OpenStoreFS(s.tenantDBPath(spec), s.fsys)
	if err != nil {
		return analysis.Report{}, fmt.Errorf("service: reopen store for %s: %w", st.ID, err)
	}
	defer store.Close()
	return analysis.Classify(store, spec.Campaign)
}

// handleTrace streams the campaign's provenance wide events as NDJSON in
// causal order. While the campaign runs (or before its store was saved), the
// live journal answers — shard runners share one journal, so the stream is
// already shard-merged; afterwards the persisted ExperimentTraceEvents rows
// are read back from the tenant store.
func (s *Server) handleTrace(w http.ResponseWriter, req *http.Request) {
	id := reqID(req)
	s.mu.Lock()
	j := s.jobs[id]
	var spec Spec
	var running bool
	if j != nil {
		spec = j.spec
		running = j.status == StatusQueued || j.status == StatusRunning
	}
	s.mu.Unlock()
	if j == nil {
		s.writeError(w, fmt.Errorf("%w: %s", ErrNotFound, id))
		return
	}
	events := j.rec.Journal().Events()
	if len(events) == 0 && !running {
		// The journal is empty (e.g. the service restarted since the run);
		// fall back to the persisted rows. The tenant store is closed once a
		// campaign finishes, so reopening read-only is safe here.
		store, err := dbase.OpenStoreFS(s.tenantDBPath(spec), s.fsys)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		defer store.Close()
		if events, err = store.TraceEvents(spec.Campaign); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
	}
	obsv.SortEvents(events)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

// serviceVersion is the build's module version (or VCS revision) for the
// health document, resolved once.
var serviceVersion = func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	version := bi.Main.Version
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			version += "+" + kv.Value
			break
		}
	}
	if version == "" || version == "(devel)" {
		return "devel"
	}
	return version
}()

// handleHealthz answers the liveness probe with the build version and the
// scheduler's vital signs: queue depth, running campaign count, drain state.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	depth, running, draining := len(s.queue), s.running, s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"version":    serviceVersion,
		"queueDepth": depth,
		"running":    running,
		"draining":   draining,
	})
}

// handleMetrics multiplexes every campaign's recorder snapshot onto one
// Prometheus exposition, distinguished by the campaign label; the service's
// own recorder (request latency histograms, runtime gauges) joins under the
// empty key, carrying no campaign label.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.sampleRuntime()
	snaps := s.Snapshots()
	snaps[""] = s.httpRec.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obsv.WritePrometheusMulti(w, snaps); err != nil {
		s.log.Warn("prometheus exposition failed", "err", err)
	}
}

// sampleRuntime refreshes the process gauges at scrape time: goroutines, heap
// in use, cumulative GC pause time and collection count.
func (s *Server) sampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.httpRec.SetGauge("runtime.goroutines", int64(runtime.NumGoroutine()))
	s.httpRec.SetGauge("runtime.heap.inuse.bytes", int64(ms.HeapInuse))
	s.httpRec.SetGauge("runtime.gc.pause.total.ns", int64(ms.PauseTotalNs))
	s.httpRec.SetGauge("runtime.gc.cycles", int64(ms.NumGC))
}
