package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"goofi/internal/analysis"
	"goofi/internal/dbase"
	"goofi/internal/obsv"
)

// Handler builds the service's HTTP API:
//
//	POST   /campaigns                           submit (202, 400, 409, 429, 503)
//	GET    /campaigns                           list all campaigns
//	GET    /campaigns/{tenant}/{name}           status document
//	DELETE /campaigns/{tenant}/{name}           cancel / forget
//	GET    /campaigns/{tenant}/{name}/events    live NDJSON CampaignEvent stream
//	GET    /campaigns/{tenant}/{name}/report    analysis report (done campaigns)
//	GET    /metrics                             multiplexed Prometheus exposition
//	GET    /healthz                             liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{tenant}/{name}", s.handleStatus)
	mux.HandleFunc("DELETE /campaigns/{tenant}/{name}", s.handleCancel)
	mux.HandleFunc("GET /campaigns/{tenant}/{name}/events", s.handleEvents)
	mux.HandleFunc("GET /campaigns/{tenant}/{name}/report", s.handleReport)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// ServeHTTP makes the server itself mountable as an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.Handler().ServeHTTP(w, req)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders one error as a JSON problem document, mapping the
// service sentinels onto their status codes.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrExists):
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After",
			strconv.Itoa(int(max(s.opts.RetryAfter.Seconds(), 1))))
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Location", "/campaigns/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func reqID(req *http.Request) string {
	return req.PathValue("tenant") + "/" + req.PathValue("name")
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	st, err := s.Status(reqID(req))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	st, err := s.Cancel(reqID(req))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the campaign's CampaignEvent frames as NDJSON until
// the campaign finishes or the client goes away. A subscriber joining late
// immediately receives the latest frame (the final one, for a finished
// campaign) — the replay contract goofi watch's reconnect relies on.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	b, err := s.Events(reqID(req))
	if err != nil {
		s.writeError(w, err)
		return
	}
	ch, cancel := b.Subscribe(16)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-req.Context().Done():
			return
		}
	}
}

// handleReport classifies a finished campaign and returns the analysis
// report. The tenant store was closed when the campaign finished, so the
// report reopens it read-only (replaying any WAL sidecar) and discards the
// classification rows instead of saving them — the endpoint is idempotent.
func (s *Server) handleReport(w http.ResponseWriter, req *http.Request) {
	id := reqID(req)
	st, err := s.Status(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if st.Status != StatusDone {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("campaign %s is %s, not %s", id, st.Status, StatusDone),
		})
		return
	}
	rep, err := s.report(st)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// report runs the analysis against a freshly opened copy of the campaign's
// store. The store is only touched from this request's goroutine.
func (s *Server) report(st Status) (analysis.Report, error) {
	s.mu.Lock()
	j := s.jobs[st.ID]
	var spec Spec
	if j != nil {
		spec = j.spec
	}
	s.mu.Unlock()
	if j == nil {
		return analysis.Report{}, fmt.Errorf("%w: %s", ErrNotFound, st.ID)
	}
	store, err := dbase.OpenStoreFS(s.tenantDBPath(spec), s.fsys)
	if err != nil {
		return analysis.Report{}, fmt.Errorf("service: reopen store for %s: %w", st.ID, err)
	}
	defer store.Close()
	return analysis.Classify(store, spec.Campaign)
}

// handleMetrics multiplexes every campaign's recorder snapshot onto one
// Prometheus exposition, distinguished by the campaign label.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obsv.WritePrometheusMulti(w, s.Snapshots()); err != nil {
		s.log.Warn("prometheus exposition failed", "err", err)
	}
}
