package service

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/obsv"
	"goofi/internal/target"
	"goofi/internal/vfs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testSpec is the canonical submission the suite reuses: a seeded SCIFI
// campaign over the simulated Thor target.
func testSpec(tenant, campaign string, n int, seed int64) Spec {
	return Spec{
		Tenant:      tenant,
		Campaign:    campaign,
		Workload:    "bubblesort",
		Locations:   "chain:internal.core",
		Experiments: n,
		Seed:        seed,
		TMax:        1400,
	}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	if opts.MonitorInterval == 0 {
		opts.MonitorInterval = 10 * time.Millisecond
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// waitStatus polls until the campaign reaches a terminal state.
func waitStatus(t *testing.T, s *Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		switch st.Status {
		case StatusDone, StatusFailed, StatusCancelled, StatusInterrupted:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", id)
	return Status{}
}

// waitRunning polls until the scheduler has dispatched the campaign — the
// submission itself only enqueues it.
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == StatusRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("campaign %s never started", id)
}

// referenceRows runs the same campaign single-process on an in-memory store
// — the ground truth every service execution must reproduce exactly.
func referenceRows(t *testing.T, spec Spec) []dbase.ExperimentRow {
	t.Helper()
	c, err := spec.campaign()
	if err != nil {
		t.Fatal(err)
	}
	store, err := dbase.NewMemoryStore()
	if err != nil {
		t.Fatal(err)
	}
	ops, factory, err := buildTarget(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.RegisterTarget(store, ops, "reference"); err != nil {
		t.Fatal(err)
	}
	r := core.NewRunner(ops, store, c)
	r.Factory = factory
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rows, err := store.Experiments(spec.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// tenantRows reopens the tenant's persisted database (replaying any WAL
// sidecar) and returns the campaign's rows.
func tenantRows(t *testing.T, dataDir string, spec Spec) []dbase.ExperimentRow {
	t.Helper()
	path := filepath.Join(dataDir, spec.Tenant, spec.Campaign+".db")
	store, err := dbase.OpenStoreFS(path, vfs.OS{})
	if err != nil {
		t.Fatalf("reopen %s: %v", path, err)
	}
	defer store.Close()
	rows, err := store.Experiments(spec.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func requireSameRows(t *testing.T, want, got []dbase.ExperimentRow, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: rows = %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: row %d differs:\nwant %+v\ngot  %+v", label, i, want[i], got[i])
		}
	}
}

// rowsDigest is the canonical SHA-256 of a row set, covering every column —
// the golden files pin it across releases.
func rowsDigest(rows []dbase.ExperimentRow) string {
	h := sha256.New()
	for _, r := range rows {
		fmt.Fprintf(h, "%s|%s|%s|%s|%s|%s|%d|%d|%x\n",
			r.ExperimentName, r.ParentExperiment, r.CampaignName,
			r.ExperimentData, r.TerminationReason, r.Mechanism,
			r.Cycles, r.Iterations, r.StateVector)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s missing (run with -update): %v", name, err)
	}
	if strings.TrimSpace(string(want)) != got {
		t.Fatalf("%s: digest %s does not match golden %s", name, got, strings.TrimSpace(string(want)))
	}
}

// TestServiceRunMatchesDirectRun is the core service contract: a campaign
// executed by the daemon persists exactly the rows a direct single-process
// run produces.
func TestServiceRunMatchesDirectRun(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{DataDir: dir})
	spec := testSpec("acme", "svc-basic", 12, 42)

	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, s, spec.ID())
	if st.Status != StatusDone {
		t.Fatalf("status = %s (%s)", st.Status, st.Error)
	}
	if st.Done != 12 {
		t.Fatalf("done = %d, want 12", st.Done)
	}
	requireSameRows(t, referenceRows(t, spec), tenantRows(t, dir, spec), "service run")
}

// TestShardedServiceMatchesUnsharded submits the same seeded campaign twice
// — once unsharded, once split across 3 shards — and requires bit-identical
// persisted rows, additionally pinned by a SHA-256 golden.
func TestShardedServiceMatchesUnsharded(t *testing.T) {
	dirA := t.TempDir()
	sA := newTestServer(t, Options{DataDir: dirA})
	plain := testSpec("acme", "svc-shard", 13, 7)
	if _, err := sA.Submit(plain); err != nil {
		t.Fatal(err)
	}
	if st := waitStatus(t, sA, plain.ID()); st.Status != StatusDone {
		t.Fatalf("unsharded: %s (%s)", st.Status, st.Error)
	}

	dirB := t.TempDir()
	sB := newTestServer(t, Options{DataDir: dirB})
	sharded := plain
	sharded.Shards = 3
	if _, err := sB.Submit(sharded); err != nil {
		t.Fatal(err)
	}
	if st := waitStatus(t, sB, sharded.ID()); st.Status != StatusDone {
		t.Fatalf("sharded: %s (%s)", st.Status, st.Error)
	}

	want := tenantRows(t, dirA, plain)
	got := tenantRows(t, dirB, sharded)
	requireSameRows(t, want, got, "sharded reassembly")
	checkGolden(t, "shard_golden.txt", rowsDigest(got))
}

// TestMultiTenantConcurrent storms the daemon with 8 campaigns across 4
// tenants and verifies every one lands exactly its reference rows — the
// isolation contract, exercised under -race by make race.
func TestMultiTenantConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{DataDir: dir, Concurrency: 4, QueueLimit: 16})

	var specs []Spec
	for i := 0; i < 8; i++ {
		spec := testSpec(fmt.Sprintf("tenant%d", i%4), fmt.Sprintf("camp%d", i), 6+i, int64(100+i))
		if i%3 == 0 {
			spec.Shards = 2
		}
		if i%2 == 1 {
			spec.Workers = 2
		}
		specs = append(specs, spec)
	}
	for _, spec := range specs {
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("submit %s: %v", spec.ID(), err)
		}
	}
	for _, spec := range specs {
		if st := waitStatus(t, s, spec.ID()); st.Status != StatusDone {
			t.Fatalf("%s: %s (%s)", spec.ID(), st.Status, st.Error)
		}
	}
	for _, spec := range specs {
		requireSameRows(t, referenceRows(t, spec), tenantRows(t, dir, spec), spec.ID())
	}
}

// TestQueueBackpressure fills the bounded queue and checks the overflow
// submission is rejected with ErrQueueFull while a duplicate gets ErrExists.
func TestQueueBackpressure(t *testing.T) {
	s := newTestServer(t, Options{DataDir: t.TempDir(), Concurrency: 1, QueueLimit: 1})

	// A large campaign occupies the single execution slot for the whole test.
	big := testSpec("acme", "big", 8000, 1)
	if _, err := s.Submit(big); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, big.ID())
	queued := testSpec("acme", "queued", 4, 2)
	if _, err := s.Submit(queued); err != nil {
		t.Fatal(err)
	}
	overflow := testSpec("acme", "overflow", 4, 3)
	if _, err := s.Submit(overflow); !isErr(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	if _, err := s.Submit(queued); !isErr(err, ErrExists) {
		t.Fatalf("duplicate err = %v, want ErrExists", err)
	}

	// Cancelling the running campaign frees the slot; the queued one drains.
	if _, err := s.Cancel(big.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitStatus(t, s, big.ID()); st.Status != StatusCancelled {
		t.Fatalf("big: %s", st.Status)
	}
	if st := waitStatus(t, s, queued.ID()); st.Status != StatusDone {
		t.Fatalf("queued: %s (%s)", st.Status, st.Error)
	}
}

func isErr(err, want error) bool { return err != nil && strings.Contains(err.Error(), want.Error()) }

// TestDrainPersistsAndResumes is the graceful-shutdown contract: SIGTERM
// (modelled by Drain) interrupts the running campaign after a checkpoint,
// persists the queue, and a fresh server over the same data dir finishes
// both campaigns with rows identical to never having been interrupted.
func TestDrainPersistsAndResumes(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{DataDir: dir, Concurrency: 1, MonitorInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	running := testSpec("acme", "interrupted", 8000, 11)
	queued := testSpec("acme", "patient", 5, 12)
	if _, err := s.Submit(running); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(queued); err != nil {
		t.Fatal(err)
	}
	// Let the running campaign log some rows first, so the restart below
	// genuinely resumes rather than starting over.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.Status(running.ID())
		if err != nil {
			t.Fatal(err)
		}
		if st.Done > 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st, _ := s.Status(running.ID()); st.Status != StatusInterrupted {
		t.Fatalf("running campaign after drain: %s", st.Status)
	}
	if st, _ := s.Status(queued.ID()); st.Status != StatusQueued {
		t.Fatalf("queued campaign after drain: %s", st.Status)
	}
	if _, err := os.Stat(filepath.Join(dir, queueFile)); err != nil {
		t.Fatalf("queue file not persisted: %v", err)
	}
	// Interrupted rows are already durable on disk.
	if n := len(tenantRows(t, dir, running)); n == 0 {
		t.Fatal("no rows persisted before drain")
	}

	// Submissions during/after drain are refused.
	if _, err := s.Submit(testSpec("acme", "late", 3, 13)); !isErr(err, ErrDraining) {
		t.Fatalf("late submit err = %v, want ErrDraining", err)
	}

	// Restart: both campaigns resume from the queue file and finish.
	s2 := newTestServer(t, Options{DataDir: dir, Concurrency: 1})
	if st := waitStatus(t, s2, running.ID()); st.Status != StatusDone {
		t.Fatalf("resumed campaign: %s (%s)", st.Status, st.Error)
	}
	if st := waitStatus(t, s2, queued.ID()); st.Status != StatusDone {
		t.Fatalf("queued campaign after restart: %s (%s)", st.Status, st.Error)
	}
	// A drain with nothing left to resume clears the stale queue file.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := s2.Drain(ctx2); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, queueFile)); !os.IsNotExist(err) {
		t.Fatalf("queue file should be gone after clean drain, stat err = %v", err)
	}

	requireSameRows(t, referenceRows(t, running), tenantRows(t, dir, running), "resumed campaign")
	requireSameRows(t, referenceRows(t, queued), tenantRows(t, dir, queued), "queued campaign")
}

// TestServiceStorageChaos runs the whole service over a fault-injecting
// filesystem with transient faults on every op class: the retry layers must
// absorb them and the persisted rows must still match the reference.
func TestServiceStorageChaos(t *testing.T) {
	cfg, err := vfs.ParseFaultyConfig("open=0.02,read=0.02,write=0.02,sync=0.02,rename=0.02,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := vfs.NewFaulty(vfs.OS{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s := newTestServer(t, Options{DataDir: dir, FS: fsys})
	spec := testSpec("acme", "stormy", 10, 77)
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if st := waitStatus(t, s, spec.ID()); st.Status != StatusDone {
		t.Fatalf("status = %s (%s)", st.Status, st.Error)
	}
	requireSameRows(t, referenceRows(t, spec), tenantRows(t, dir, spec), "storage chaos")
}

// TestSpecValidation rejects malformed submissions before they reach the
// queue.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"empty tenant", func(s *Spec) { s.Tenant = "" }},
		{"path traversal tenant", func(s *Spec) { s.Tenant = ".." }},
		{"slash in campaign", func(s *Spec) { s.Campaign = "a/b" }},
		{"hidden campaign", func(s *Spec) { s.Campaign = ".sneaky" }},
		{"unknown workload", func(s *Spec) { s.Workload = "no-such" }},
		{"zero experiments", func(s *Spec) { s.Experiments = 0 }},
		{"negative shards", func(s *Spec) { s.Shards = -1 }},
		{"bad timeout", func(s *Spec) { s.Timeout = "soon" }},
		{"bad chaos", func(s *Spec) { s.Chaos = "explode=yes" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSpec("acme", "ok", 4, 1)
			tc.mut(&spec)
			if err := spec.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", spec)
			}
		})
	}
}

// --- HTTP API ---

// TestHTTPLifecycle drives the full API over real HTTP: submit a chaos
// campaign, stream its event frames, read the final status, fetch the
// analysis report and check its taxonomy adds up.
func TestHTTPLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{DataDir: dir})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	spec := testSpec("acme", "httpcamp", 20, 5)
	spec.Chaos = "err=0.05,seed=5"
	spec.Workers = 2
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/campaigns/acme/httpcamp" {
		t.Fatalf("Location = %q", loc)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID != "acme/httpcamp" || st.Total != 20 {
		t.Fatalf("submit status doc = %+v", st)
	}

	// Stream events until the final frame: Seq strictly increases, Done is
	// monotonic, and the final frame accounts for every experiment.
	resp, err = http.Get(srv.URL + "/campaigns/acme/httpcamp/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type = %q", ct)
	}
	var last obsv.CampaignEvent
	seen := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev obsv.CampaignEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("frame %d: %v", seen, err)
		}
		if seen > 0 {
			if ev.Seq <= last.Seq {
				t.Fatalf("seq not increasing: %d after %d", ev.Seq, last.Seq)
			}
			if ev.Done < last.Done {
				t.Fatalf("done regressed: %d after %d", ev.Done, last.Done)
			}
		}
		last = ev
		seen++
	}
	resp.Body.Close()
	if !last.Final || last.Done != 20 {
		t.Fatalf("final frame = %+v (saw %d frames)", last, seen)
	}

	if st := waitStatus(t, s, "acme/httpcamp"); st.Status != StatusDone {
		t.Fatalf("status = %s (%s)", st.Status, st.Error)
	}

	// A late events subscriber still gets the final frame immediately.
	resp, err = http.Get(srv.URL + "/campaigns/acme/httpcamp/events")
	if err != nil {
		t.Fatal(err)
	}
	var replay obsv.CampaignEvent
	sc = bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no replay frame for finished campaign")
	}
	if err := json.Unmarshal(sc.Bytes(), &replay); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !replay.Final {
		t.Fatalf("replay frame not final: %+v", replay)
	}

	// Report: the outcome taxonomy must cover all 20 experiments.
	resp, err = http.Get(srv.URL + "/campaigns/acme/httpcamp/report")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d", resp.StatusCode)
	}
	var rep analysis.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Total+rep.Failed != 20 {
		t.Fatalf("report classified %d+%d experiments, want 20: %+v", rep.Total, rep.Failed, rep)
	}
	if rep.Effective+rep.NonEffective != rep.Total {
		t.Fatalf("taxonomy does not add up: %+v", rep)
	}

	// Listing includes the campaign; status endpoint agrees.
	resp, err = http.Get(srv.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != "acme/httpcamp" {
		t.Fatalf("list = %+v", list)
	}

	// Metrics: the multiplexed exposition labels series with the campaign id.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := new(strings.Builder)
	sc = bufio.NewScanner(resp.Body)
	for sc.Scan() {
		metrics.WriteString(sc.Text() + "\n")
	}
	resp.Body.Close()
	if !strings.Contains(metrics.String(), `campaign="acme/httpcamp"`) {
		t.Fatalf("metrics exposition lacks campaign label:\n%.400s", metrics.String())
	}

	// DELETE forgets the finished campaign, freeing the id.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/campaigns/acme/httpcamp", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if _, err := s.Status("acme/httpcamp"); !isErr(err, ErrNotFound) {
		t.Fatalf("status after delete = %v", err)
	}
}

// TestHTTPErrors maps every failure mode onto its status code.
func TestHTTPErrors(t *testing.T) {
	s := newTestServer(t, Options{DataDir: t.TempDir(), Concurrency: 1, QueueLimit: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(spec Spec) *http.Response {
		t.Helper()
		body, _ := json.Marshal(spec)
		resp, err := http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp, err := http.Get(srv.URL + "/campaigns/no/body"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp := post(testSpec("", "bad", 4, 1)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec status = %d", resp.StatusCode)
	}
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed json status = %d", resp.StatusCode)
	}

	// Fill the slot and the queue, then overflow and duplicate.
	if resp := post(testSpec("acme", "big", 8000, 1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("big status = %d", resp.StatusCode)
	}
	waitRunning(t, s, "acme/big")
	if resp := post(testSpec("acme", "q1", 4, 2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("q1 status = %d", resp.StatusCode)
	}
	resp = post(testSpec("acme", "q2", 4, 3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp := post(testSpec("acme", "q1", 4, 2)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status = %d", resp.StatusCode)
	}

	// A report for an unfinished campaign conflicts.
	if resp, err := http.Get(srv.URL + "/campaigns/acme/big/report"); err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("early report: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	if _, err := s.Cancel("acme/big"); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, "acme/big")
	waitStatus(t, s, "acme/q1")
}

// TestTargetFailureMarksFailed: a campaign whose spec cannot build a runnable
// target must land in StatusFailed, not wedge the queue.
func TestTargetFailureMarksFailed(t *testing.T) {
	s := newTestServer(t, Options{DataDir: t.TempDir()})
	spec := testSpec("acme", "doomed", 4, 1)
	spec.Locations = "chain:no.such.chain"
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, s, spec.ID())
	if st.Status != StatusFailed || st.Error == "" {
		t.Fatalf("status = %+v", st)
	}
	// The failure freed the execution slot: the next campaign still runs.
	ok := testSpec("acme", "fine", 4, 2)
	if _, err := s.Submit(ok); err != nil {
		t.Fatal(err)
	}
	if st := waitStatus(t, s, ok.ID()); st.Status != StatusDone {
		t.Fatalf("follow-up: %s (%s)", st.Status, st.Error)
	}
}

func TestSplitID(t *testing.T) {
	if tn, c, ok := splitID("a/b"); !ok || tn != "a" || c != "b" {
		t.Fatalf("splitID = %q %q %v", tn, c, ok)
	}
	for _, bad := range []string{"", "a", "/b", "a/"} {
		if _, _, ok := splitID(bad); ok {
			t.Fatalf("splitID accepted %q", bad)
		}
	}
}

// mustTarget is a compile-time style assertion that the target package's
// chaos seam used by buildTarget stays available.
var _ = target.ParseFlakyConfig
