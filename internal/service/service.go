package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"sync"

	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/obsv"
	"goofi/internal/sqldb"
	"goofi/internal/target"
	"goofi/internal/vfs"
)

// Campaign lifecycle states.
const (
	StatusQueued      = "queued"
	StatusRunning     = "running"
	StatusDone        = "done"
	StatusFailed      = "failed"
	StatusCancelled   = "cancelled"
	StatusInterrupted = "interrupted" // stopped by drain; resumes on restart
)

// queueFile is the drain-time persistence of not-yet-finished campaigns,
// written durably under the data dir and re-enqueued on the next start.
const queueFile = "queue.json"

// Submission failure sentinels; the HTTP layer maps them onto status codes.
var (
	// ErrQueueFull: the bounded queue rejected the submission (429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining: the server is shutting down and accepts nothing (503).
	ErrDraining = errors.New("service: draining")
	// ErrExists: the campaign id is already submitted (409).
	ErrExists = errors.New("service: campaign already exists")
	// ErrNotFound: no such campaign (404).
	ErrNotFound = errors.New("service: campaign not found")
)

// Options configures a Server.
type Options struct {
	// DataDir is the service state root: one subdirectory per tenant, each
	// holding one WAL-backed database file per campaign, plus the drain
	// queue file.
	DataDir string
	// FS is the filesystem seam under every database and the queue file;
	// nil means the real filesystem. Tests substitute vfs.Faulty here to
	// storm the whole service with storage faults.
	FS vfs.FS
	// QueueLimit bounds how many campaigns may wait behind the running
	// ones; submissions beyond it get 429 + Retry-After. 0 means 8.
	QueueLimit int
	// Concurrency is how many campaigns execute at once — campaigns, not
	// workers: each campaign may additionally shard and parallelise
	// internally. 0 means 2.
	Concurrency int
	// WALOptions is the group-commit durability policy of every tenant
	// store. The zero value syncs every batch (SyncEvery <= 1).
	WALOptions sqldb.WALOptions
	// MonitorInterval is the live event-frame period; 0 means 250ms.
	MonitorInterval time.Duration
	// RetryAfter is the client backoff hint sent with 429; 0 means 1s.
	RetryAfter time.Duration
	// Logger receives service diagnostics; nil discards.
	Logger *slog.Logger
}

// job is one submitted campaign and everything the service tracks about it.
// All mutable fields are guarded by the server mutex.
type job struct {
	spec Spec
	c    core.Campaign // validated at submit time

	status    string
	errMsg    string
	summary   core.Summary
	cancel    context.CancelFunc // non-nil while running
	cancelled bool               // DELETE requested (distinguishes from drain)
	done      chan struct{}      // closed on any terminal state

	events *obsv.Broadcaster
	rec    *obsv.Recorder
	seq    int64 // event sequence for service-published (sharded) frames
}

// Server is the multi-tenant campaign daemon. Create with New, expose over
// HTTP via ServeHTTP (it implements http.Handler), and shut down with Drain.
type Server struct {
	opts Options
	fsys vfs.FS
	log  *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for stable listings
	queue    []*job
	running  int
	draining bool

	wake      chan struct{}
	stop      chan struct{}
	schedDone chan struct{}
	wg        sync.WaitGroup

	// handler is the HTTP mux, built once at New — rebuilding per request
	// would re-register every route on every call.
	handler http.Handler
	// httpRec records service-level metrics: per-route/status request
	// latency histograms and process runtime gauges, folded into the
	// /metrics exposition without a campaign label.
	httpRec *obsv.Recorder
}

// New builds a server over its data directory, re-enqueues any campaigns a
// previous drain persisted, and starts the scheduler.
func New(opts Options) (*Server, error) {
	if opts.DataDir == "" {
		return nil, errors.New("service: Options.DataDir is required")
	}
	if opts.FS == nil {
		opts.FS = vfs.OS{}
	}
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = 8
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 2
	}
	if opts.MonitorInterval <= 0 {
		opts.MonitorInterval = 250 * time.Millisecond
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(discardHandler{})
	}
	// Directory creation stays on the host OS: the vfs seam covers file
	// operations (the failure modes that matter for durability), not tree
	// structure.
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: create data dir: %w", err)
	}
	s := &Server{
		opts:      opts,
		fsys:      opts.FS,
		log:       opts.Logger,
		jobs:      map[string]*job{},
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		schedDone: make(chan struct{}),
		httpRec:   obsv.New(obsv.Options{}),
	}
	s.handler = s.buildHandler()
	if err := s.loadQueue(); err != nil {
		return nil, err
	}
	go s.scheduler()
	s.nudge()
	return s, nil
}

// Submit validates and enqueues one campaign. The returned error is one of
// the sentinels above or a validation error.
func (s *Server) Submit(spec Spec) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	c, err := spec.campaign()
	if err != nil {
		return Status{}, err
	}
	j := &job{
		spec:   spec,
		c:      c,
		status: StatusQueued,
		done:   make(chan struct{}),
		events: obsv.NewBroadcaster(),
		rec:    obsv.New(obsv.Options{Journal: true}),
	}
	id := spec.ID()

	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		return Status{}, ErrDraining
	case s.jobs[id] != nil:
		s.mu.Unlock()
		return Status{}, fmt.Errorf("%w: %s", ErrExists, id)
	case len(s.queue) >= s.opts.QueueLimit:
		s.mu.Unlock()
		return Status{}, ErrQueueFull
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, j)
	st := s.statusLocked(j)
	s.mu.Unlock()

	s.log.Info("campaign submitted", "id", id,
		"experiments", spec.Experiments, "shards", spec.Shards, "workers", spec.Workers)
	s.nudge()
	return st, nil
}

// Cancel ends a campaign: a queued one is dequeued, a running one is stopped
// after its in-flight experiment (its logged rows remain, so a later
// submission of the same id resumes), and a terminal one is forgotten so the
// id becomes submittable again.
func (s *Server) Cancel(id string) (Status, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch j.status {
	case StatusQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.status = StatusCancelled
		j.cancelled = true
		close(j.done)
		j.events.Close()
	case StatusRunning:
		j.cancelled = true
		if j.cancel != nil {
			j.cancel()
		}
	default: // terminal: forget, freeing the id
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	st := s.statusLocked(j)
	s.mu.Unlock()
	s.log.Info("campaign cancel", "id", id, "status", st.Status)
	return st, nil
}

// Status reports one campaign.
func (s *Server) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s.statusLocked(j), nil
}

// List reports every known campaign in submission order.
func (s *Server) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			out = append(out, s.statusLocked(j))
		}
	}
	return out
}

// Events returns the campaign's event broadcaster for streaming.
func (s *Server) Events(id string) (*obsv.Broadcaster, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j.events, nil
}

// Snapshots collects every campaign's metrics snapshot for the multiplexed
// /metrics exposition.
func (s *Server) Snapshots() map[string]obsv.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]obsv.Snapshot, len(s.jobs))
	for id, j := range s.jobs {
		out[id] = j.rec.Snapshot()
	}
	return out
}

// statusLocked renders a job's status; the server mutex must be held.
func (s *Server) statusLocked(j *job) Status {
	st := Status{
		ID:       j.spec.ID(),
		Tenant:   j.spec.Tenant,
		Campaign: j.spec.Campaign,
		Status:   j.status,
		Error:    j.errMsg,
		Shards:   j.spec.Shards,
		Workers:  j.spec.Workers,
		Total:    j.spec.Experiments,
	}
	if j.status == StatusQueued {
		for i, q := range s.queue {
			if q == j {
				st.QueuePosition = i + 1
				break
			}
		}
	}
	if ev, ok := j.events.Last(); ok {
		st.Done = ev.Done
		st.Detected = ev.Detected
		st.Retries = ev.Retries
		st.Hangs = ev.Hangs
		st.Quarantined = ev.Quarantined
	}
	switch j.status {
	case StatusDone, StatusInterrupted, StatusCancelled:
		st.Done = j.summary.Completed + j.summary.Skipped
		st.Detected = detectedOf(j.summary)
		st.Retries = j.summary.Retries
		st.Hangs = j.summary.Hangs
		st.Quarantined = j.summary.Quarantined
	}
	return st
}

// Status is the JSON status document of one campaign.
type Status struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Campaign string `json:"campaign"`
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
	// QueuePosition is 1-based while queued; 0 otherwise.
	QueuePosition int `json:"queuePosition,omitempty"`
	Done          int `json:"done"`
	Total         int `json:"total"`
	Detected      int `json:"detected"`
	Retries       int `json:"retries"`
	Hangs         int `json:"hangs"`
	Quarantined   int `json:"quarantined"`
	Shards        int `json:"shards,omitempty"`
	Workers       int `json:"workers,omitempty"`
}

func detectedOf(sum core.Summary) int {
	n := 0
	for _, v := range sum.Detections {
		n += v
	}
	return n
}

// nudge wakes the scheduler without blocking.
func (s *Server) nudge() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// scheduler dispatches queued jobs while capacity allows, until Drain stops
// it.
func (s *Server) scheduler() {
	defer close(s.schedDone)
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
		}
		for {
			s.mu.Lock()
			if s.draining || s.running >= s.opts.Concurrency || len(s.queue) == 0 {
				s.mu.Unlock()
				break
			}
			j := s.queue[0]
			s.queue = s.queue[1:]
			j.status = StatusRunning
			ctx, cancel := context.WithCancel(context.Background())
			j.cancel = cancel
			s.running++
			s.wg.Add(1)
			s.mu.Unlock()
			go s.execute(ctx, cancel, j)
		}
	}
}

// execute runs one campaign to a terminal state.
func (s *Server) execute(ctx context.Context, cancel context.CancelFunc, j *job) {
	defer s.wg.Done()
	defer cancel()
	id := j.spec.ID()
	s.log.Info("campaign starting", "id", id)
	sum, err := s.runCampaign(ctx, j)

	s.mu.Lock()
	j.summary = sum
	j.cancel = nil
	switch {
	case err == nil:
		j.status = StatusDone
	case errors.Is(err, core.ErrStopped):
		if j.cancelled {
			j.status = StatusCancelled
		} else {
			// Drain interrupted it; the WAL holds every logged row and the
			// queue file re-enqueues the spec for resume on restart.
			j.status = StatusInterrupted
		}
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	st := j.status
	close(j.done)
	s.running--
	s.mu.Unlock()

	// The runner closes the broadcaster on a completed run; closing again is
	// a no-op, but a run that failed before monitoring started would
	// otherwise leave watchers hanging.
	j.events.Close()
	s.log.Info("campaign finished", "id", id, "status", st,
		"completed", sum.Completed, "skipped", sum.Skipped, "err", errStr(err))
	s.nudge()
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// tenantDBPath is the campaign's database file under its tenant directory.
func (s *Server) tenantDBPath(spec Spec) string {
	return filepath.Join(s.opts.DataDir, spec.Tenant, spec.Campaign+".db")
}

// openTenantStore opens (or creates) the campaign's WAL-backed store.
func (s *Server) openTenantStore(spec Spec) (*dbase.Store, error) {
	dir := filepath.Join(s.opts.DataDir, spec.Tenant)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: tenant dir %s: %w", spec.Tenant, err)
	}
	store, err := dbase.OpenStoreWALFS(s.tenantDBPath(spec), s.fsys, s.opts.WALOptions)
	if err != nil {
		return nil, fmt.Errorf("service: open store for %s: %w", spec.ID(), err)
	}
	return store, nil
}

// buildTarget mints the campaign's target and factory, chaos-wrapped when the
// spec asks for it.
func buildTarget(spec Spec) (target.Operations, target.Factory, error) {
	var ops target.Operations = target.NewDefaultThorTarget()
	factory := target.DefaultThorFactory()
	if spec.Chaos != "" {
		cfg, err := target.ParseFlakyConfig(spec.Chaos)
		if err != nil {
			return nil, nil, err
		}
		ops = target.NewFlaky(ops, cfg)
		factory = target.FlakyFactory(factory, cfg)
	}
	return ops, factory, nil
}

// ensureTarget registers the target system unless the store already holds
// it — RegisterTarget's replace semantics would otherwise collide with the
// foreign key from a resumed campaign's CampaignData row.
func ensureTarget(store *dbase.Store, ops target.Operations) error {
	if _, err := store.GetTargetSystem(ops.Name()); err == nil {
		return nil
	} else if !errors.Is(err, dbase.ErrNotFound) {
		return err
	}
	return core.RegisterTarget(store, ops, "campaign service target")
}

// runCampaign executes one campaign against its tenant store: open, register,
// run (sharded or not), save, close. The store is only ever touched from this
// goroutine — the SQL engine is not verified thread-safe.
func (s *Server) runCampaign(ctx context.Context, j *job) (core.Summary, error) {
	store, err := s.openTenantStore(j.spec)
	if err != nil {
		return core.Summary{}, err
	}
	ops, factory, err := buildTarget(j.spec)
	if err != nil {
		store.Close()
		return core.Summary{}, err
	}
	if err := ensureTarget(store, ops); err != nil {
		store.Close()
		return core.Summary{}, err
	}
	store.SetRecorder(j.rec)

	var sum core.Summary
	if j.spec.Shards > 1 {
		sum, err = s.runSharded(ctx, j, store)
	} else {
		r := core.NewRunner(ops, store, j.c)
		r.Factory = factory
		r.Recorder = j.rec
		r.Events = j.events
		r.MonitorInterval = s.opts.MonitorInterval
		r.Logger = s.log
		sum, err = r.Run(ctx)
	}

	// Drain the provenance journal into the tenant store before saving. One
	// drain covers sharded runs too: every shard runner records into j.rec,
	// so the journal already holds the shard-merged event stream.
	if _, derr := store.PutTraceJournal(j.spec.Campaign, j.rec.Journal()); derr != nil && err == nil {
		err = derr
	}

	// Whatever happened, persist what the store holds: an interrupted
	// campaign's rows are exactly what resume needs.
	if serr := store.Save(); serr != nil && err == nil {
		err = serr
	}
	if cerr := store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return sum, err
}

// Drain shuts the service down gracefully: new submissions are rejected,
// running campaigns are stopped after their in-flight experiments (their
// stores checkpointed and closed), and the interrupted plus still-queued
// specs are written durably to the queue file so the next start resumes
// them. ctx bounds the wait for running campaigns.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.schedDone
		return nil
	}
	s.draining = true
	for _, j := range s.jobs {
		if j.status == StatusRunning && j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	close(s.stop)

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
	<-s.schedDone

	return s.persistQueue()
}

// persistQueue writes the resume set — interrupted campaigns first, then the
// queue in order — durably to the queue file.
func (s *Server) persistQueue() error {
	s.mu.Lock()
	var specs []Spec
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil && j.status == StatusInterrupted {
			specs = append(specs, j.spec)
		}
	}
	for _, j := range s.queue {
		specs = append(specs, j.spec)
	}
	s.mu.Unlock()

	path := filepath.Join(s.opts.DataDir, queueFile)
	if len(specs) == 0 {
		// Nothing to resume; a stale file from an earlier drain must not
		// resurrect campaigns.
		if err := s.fsys.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.log.Warn("queue file cleanup failed", "err", err)
		}
		return nil
	}
	data, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encode queue: %w", err)
	}
	if err := writeDurableRetry(s.fsys, path, data); err != nil {
		return fmt.Errorf("service: persist queue: %w", err)
	}
	s.log.Info("queue persisted for resume", "campaigns", len(specs))
	return nil
}

// loadQueue re-enqueues the campaigns a previous drain persisted.
func (s *Server) loadQueue() error {
	path := filepath.Join(s.opts.DataDir, queueFile)
	data, err := s.fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: read queue file: %w", err)
	}
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return fmt.Errorf("service: queue file corrupt: %w", err)
	}
	for _, spec := range specs {
		c, err := spec.campaign()
		if err != nil {
			s.log.Warn("dropping unresumable queued campaign", "id", spec.ID(), "err", err)
			continue
		}
		j := &job{
			spec:   spec,
			c:      c,
			status: StatusQueued,
			done:   make(chan struct{}),
			events: obsv.NewBroadcaster(),
			rec:    obsv.New(obsv.Options{Journal: true}),
		}
		s.jobs[spec.ID()] = j
		s.order = append(s.order, spec.ID())
		s.queue = append(s.queue, j)
	}
	if len(specs) > 0 {
		s.log.Info("resuming campaigns from previous drain", "campaigns", len(specs))
	}
	return nil
}

// writeDurableRetry is WriteFileDurable with the same bounded transient-fault
// retry the store layer applies — the queue file must survive a flaky disk.
func writeDurableRetry(fsys vfs.FS, path string, data []byte) error {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if err = vfs.WriteFileDurable(fsys, path, data); err == nil {
			return nil
		}
		if !vfs.IsTransient(err) {
			return err
		}
		time.Sleep(time.Millisecond << attempt)
	}
	return err
}

// discardHandler is a no-op slog.Handler (slog.DiscardHandler needs Go 1.24;
// the module's language version predates it).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
