package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/obsv"
)

// runSharded executes one campaign split across Spec.Shards in-process shard
// runners and reassembles their rows into the tenant store.
//
// Each shard gets its own private in-memory store (the SQL engine is not
// verified thread-safe, so shards must not share one) pre-seeded with the
// tenant store's already-logged rows, and a fresh target instance. Every
// shard draws the complete seeded plan stream but executes only its own
// indices, so the merged row set is bit-identical to a single-process run —
// the pre-drawn-plan determinism argument, extended across stores.
//
// The merge runs even when shards were interrupted: whatever rows they
// logged land in the WAL-backed tenant store, which is exactly what resume
// after a drain needs.
func (s *Server) runSharded(ctx context.Context, j *job, tenant *dbase.Store) (core.Summary, error) {
	shards := j.spec.Shards

	// Resume state: rows the tenant store already holds are seeded into
	// every shard (so shard runners skip them) and excluded from the merge.
	existing, err := tenant.Experiments(j.c.Name)
	if err != nil {
		return core.Summary{}, fmt.Errorf("service: %s: read resume rows: %w", j.spec.ID(), err)
	}
	existingNames := make(map[string]bool, len(existing))
	for _, row := range existing {
		existingNames[row.ExperimentName] = true
	}
	var campRow dbase.CampaignRow
	haveCampRow := false
	if len(existing) > 0 {
		if campRow, err = tenant.GetCampaign(j.c.Name); err != nil {
			return core.Summary{}, fmt.Errorf("service: %s: read campaign row: %w", j.spec.ID(), err)
		}
		haveCampRow = true
	}

	// agg holds the latest progress of every shard; a ticker goroutine sums
	// them into campaign-wide event frames on the job's broadcaster.
	agg := &shardAggregator{
		j:     j,
		total: j.c.NExperiments,
		last:  make([]core.Progress, shards),
		start: time.Now(),
	}
	stopAgg := make(chan struct{})
	aggDone := make(chan struct{})
	go agg.loop(s.opts.MonitorInterval, stopAgg, aggDone)

	stores := make([]*dbase.Store, shards)
	sums := make([]core.Summary, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for si := 0; si < shards; si++ {
		mem, err := dbase.NewMemoryStore()
		if err != nil {
			close(stopAgg)
			<-aggDone
			return core.Summary{}, err
		}
		stores[si] = mem
		ops, factory, err := buildTarget(j.spec)
		if err != nil {
			close(stopAgg)
			<-aggDone
			return core.Summary{}, err
		}
		if err := core.RegisterTarget(mem, ops, "campaign service shard"); err != nil {
			close(stopAgg)
			<-aggDone
			return core.Summary{}, err
		}
		if haveCampRow {
			if err := mem.PutCampaign(campRow); err != nil {
				close(stopAgg)
				<-aggDone
				return core.Summary{}, err
			}
		}
		if len(existing) > 0 {
			if err := mem.PutExperiments(existing); err != nil {
				close(stopAgg)
				<-aggDone
				return core.Summary{}, err
			}
		}

		r := core.NewRunner(ops, mem, j.c)
		r.Factory = factory
		r.Recorder = j.rec
		r.Logger = s.log
		r.ShardIndex, r.ShardCount = si, shards
		r.OnProgress = agg.observe(si)

		wg.Add(1)
		go func(si int, r *core.Runner) {
			defer wg.Done()
			sums[si], errs[si] = r.Run(ctx)
		}(si, r)
	}
	wg.Wait()
	close(stopAgg)
	<-aggDone

	// Reassemble: every shard contributes its owned rows; the reference row
	// (and any pre-seeded resume rows) appear in several shards and are kept
	// once. Sorted batch insert keeps the tenant store's row order equal to
	// a single-process run's name order.
	merged := map[string]dbase.ExperimentRow{}
	for si, mem := range stores {
		rows, rerr := mem.Experiments(j.c.Name)
		if rerr != nil {
			return core.Summary{}, fmt.Errorf("service: %s: shard %d rows: %w", j.spec.ID(), si, rerr)
		}
		for _, row := range rows {
			if existingNames[row.ExperimentName] {
				continue
			}
			merged[row.ExperimentName] = row
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]dbase.ExperimentRow, 0, len(names))
	for _, name := range names {
		out = append(out, merged[name])
	}
	if len(out) > 0 {
		if err := s.ensureTenantCampaignRow(j, tenant, stores[0]); err != nil {
			return core.Summary{}, err
		}
		if err := tenant.PutExperiments(out); err != nil {
			return core.Summary{}, fmt.Errorf("service: %s: merge %d rows: %w", j.spec.ID(), len(out), err)
		}
	}

	sum := mergeSummaries(j.c.Name, sums)
	agg.final(sum)

	// Error policy: a real failure outranks a stop; any stopped shard marks
	// the whole campaign stopped (its merged rows make the resume).
	var stopped bool
	for _, e := range errs {
		switch {
		case e == nil:
		case errors.Is(e, core.ErrStopped):
			stopped = true
		default:
			return sum, e
		}
	}
	if stopped {
		return sum, core.ErrStopped
	}
	return sum, nil
}

// ensureTenantCampaignRow copies the campaign definition row from a shard
// store into the tenant store on the campaign's first merge — shard runners
// write it to their memory stores, but the tenant store needs it before
// experiment rows can reference it.
func (s *Server) ensureTenantCampaignRow(j *job, tenant, shard *dbase.Store) error {
	if _, err := tenant.GetCampaign(j.c.Name); err == nil {
		return nil
	} else if !errors.Is(err, dbase.ErrNotFound) {
		return err
	}
	row, err := shard.GetCampaign(j.c.Name)
	if err != nil {
		return fmt.Errorf("service: %s: shard campaign row: %w", j.spec.ID(), err)
	}
	return tenant.PutCampaign(row)
}

// mergeSummaries folds per-shard summaries into the campaign-wide one.
func mergeSummaries(campaign string, sums []core.Summary) core.Summary {
	out := core.Summary{Campaign: campaign}
	for _, s := range sums {
		out.Completed += s.Completed
		out.Skipped += s.Skipped
		out.Retries += s.Retries
		out.Hangs += s.Hangs
		out.Quarantined += s.Quarantined
		for k, v := range s.Terminations {
			if out.Terminations == nil {
				out.Terminations = map[string]int{}
			}
			out.Terminations[k] += v
		}
		for k, v := range s.Detections {
			if out.Detections == nil {
				out.Detections = map[string]int{}
			}
			out.Detections[k] += v
		}
	}
	return out
}

// shardAggregator sums per-shard progress into campaign-wide CampaignEvent
// frames on the job's broadcaster, replacing the single-runner monitor that
// an unsharded campaign would have.
type shardAggregator struct {
	j     *job
	total int
	start time.Time

	mu   sync.Mutex
	last []core.Progress
}

// observe returns the OnProgress hook of one shard.
func (a *shardAggregator) observe(si int) func(core.Progress) {
	return func(p core.Progress) {
		a.mu.Lock()
		a.last[si] = p
		a.mu.Unlock()
	}
}

func (a *shardAggregator) loop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			a.j.events.Publish(a.frame(false))
		case <-stop:
			return
		}
	}
}

// frame sums the latest shard progress into one event. Runs on the
// aggregator goroutine and, for the final frame, after every shard exited.
func (a *shardAggregator) frame(final bool) obsv.CampaignEvent {
	a.mu.Lock()
	var p core.Progress
	for _, lp := range a.last {
		p.Done += lp.Done
		p.Skipped += lp.Skipped
		p.Detected += lp.Detected
		p.Retries += lp.Retries
		p.Hangs += lp.Hangs
		p.Quarantined += lp.Quarantined
		if lp.LastOutcome != "" {
			p.LastOutcome = lp.LastOutcome
		}
	}
	seq := a.j.seq
	a.j.seq++
	a.mu.Unlock()

	elapsed := time.Since(a.start)
	ev := obsv.CampaignEvent{
		Campaign:    a.j.c.Name,
		Seq:         seq,
		ElapsedNs:   int64(elapsed),
		Done:        p.Done,
		Total:       a.total,
		Skipped:     p.Skipped,
		Detected:    p.Detected,
		Retries:     p.Retries,
		Hangs:       p.Hangs,
		Quarantined: p.Quarantined,
		Workers:     max(a.j.c.Workers, 1) * len(a.last),
		LastOutcome: p.LastOutcome,
		Final:       final,
	}
	if secs := elapsed.Seconds(); secs > 0 && p.Done > 0 {
		ev.RatePerSec = float64(p.Done) / secs
		if rem := a.total - p.Done; rem > 0 {
			ev.EtaNs = int64(float64(rem) / ev.RatePerSec * 1e9)
		}
	}
	return ev
}

// final publishes the terminal frame from the merged summary, so watchers
// see counters that match the reassembled result exactly.
func (a *shardAggregator) final(sum core.Summary) {
	a.mu.Lock()
	seq := a.j.seq
	a.j.seq++
	a.mu.Unlock()
	n := 0
	for _, v := range sum.Detections {
		n += v
	}
	a.j.events.Publish(obsv.CampaignEvent{
		Campaign:    a.j.c.Name,
		Seq:         seq,
		ElapsedNs:   int64(time.Since(a.start)),
		Done:        sum.Completed + sum.Skipped,
		Total:       a.total,
		Skipped:     sum.Skipped,
		Detected:    n,
		Retries:     sum.Retries,
		Hangs:       sum.Hangs,
		Quarantined: sum.Quarantined,
		Workers:     max(a.j.c.Workers, 1) * len(a.last),
		Final:       true,
	})
	// Sharded runs publish through the service, not a runner monitor, so the
	// service also ends the stream.
	a.j.events.Close()
}
