package analysis

import (
	"fmt"
	"sort"
	"strings"

	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/faultmodel"
	"goofi/internal/target"
)

// LocationStats aggregates outcomes per fault location — the "which state
// elements are critical" analysis that campaigns like the paper's companion
// studies report (e.g. error coverage per register).
type LocationStats struct {
	// Location is the state-element name ("internal.core/R3") for scan
	// locations or the word address ("mem:0x4000") for memory locations.
	Location string
	Total    int
	// Outcomes maps the analysis outcome labels to counts.
	Outcomes map[string]int
}

// Effective returns the count of effective (detected + escaped) errors.
func (s LocationStats) Effective() int {
	return s.Outcomes[OutcomeDetected] + s.Outcomes[OutcomeEscaped]
}

// LocationBreakdown groups a campaign's classified experiments by the state
// element their (first) injection hit. Classify must have run first; ops is
// needed to resolve scan bits into element names. Results are sorted by
// descending effective count, then name.
func LocationBreakdown(store *dbase.Store, campaign string, ops target.Operations) ([]LocationStats, error) {
	results, err := store.AnalysisResults(campaign)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("analysis: campaign %s has no analysis results; run Classify first", campaign)
	}
	if err := ops.InitTestCard(); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	byLoc := map[string]*LocationStats{}
	for _, res := range results {
		exp, err := store.GetExperiment(res.ExperimentName)
		if err != nil {
			return nil, err
		}
		plan, err := core.PlanOfExperiment(exp.ExperimentData)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", res.ExperimentName, err)
		}
		if len(plan.Injections) == 0 {
			continue
		}
		name, err := locationName(plan.Injections[0].Loc, ops)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", res.ExperimentName, err)
		}
		st, ok := byLoc[name]
		if !ok {
			st = &LocationStats{Location: name, Outcomes: map[string]int{}}
			byLoc[name] = st
		}
		st.Total++
		st.Outcomes[res.Outcome]++
	}
	out := make([]LocationStats, 0, len(byLoc))
	for _, st := range byLoc {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Effective() != out[j].Effective() {
			return out[i].Effective() > out[j].Effective()
		}
		return out[i].Location < out[j].Location
	})
	return out, nil
}

// locationName resolves a location to its element-level display name.
func locationName(loc faultmodel.Location, ops target.Operations) (string, error) {
	switch loc.Domain {
	case faultmodel.DomainScan:
		name, err := ops.BitName(loc.Chain, loc.Bit)
		if err != nil {
			return "", err
		}
		// Strip the bit index: "internal.core/R3[17]" -> "internal.core/R3".
		if open := strings.LastIndexByte(name, '['); open > 0 {
			name = name[:open]
		}
		return name, nil
	case faultmodel.DomainMemory:
		return fmt.Sprintf("mem:%#x", loc.Addr), nil
	default:
		return "", fmt.Errorf("unknown location domain %v", loc.Domain)
	}
}

// FormatLocationTable renders the breakdown as an aligned text table,
// showing the top n locations (n <= 0 shows all).
func FormatLocationTable(stats []LocationStats, n int) string {
	if n <= 0 || n > len(stats) {
		n = len(stats)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %6s %9s %8s %7s %7s\n",
		"location", "total", "detected", "escaped", "latent", "overwr")
	for _, st := range stats[:n] {
		fmt.Fprintf(&sb, "%-28s %6d %9d %8d %7d %7d\n",
			st.Location, st.Total,
			st.Outcomes[OutcomeDetected], st.Outcomes[OutcomeEscaped],
			st.Outcomes[OutcomeLatent], st.Outcomes[OutcomeOverwritten])
	}
	if n < len(stats) {
		fmt.Fprintf(&sb, "(%d more locations)\n", len(stats)-n)
	}
	return sb.String()
}
