// Package analysis implements GOOFI's analysis phase (paper §3.4): it reads
// the LoggedSystemState table, compares each experiment's logged state with
// the fault-free reference run, and classifies the outcome into the paper's
// taxonomy:
//
//	Effective errors
//	    Detected errors     — an error detection mechanism fired (broken
//	                          down per mechanism)
//	    Escaped errors      — incorrect results or timeliness violations
//	Non-effective errors
//	    Latent errors       — state differences that were neither detected
//	                          nor visible in the results
//	    Overwritten errors  — no observable difference at all
//
// It also computes error-detection coverage with a confidence interval and
// implements the §4 extension "automatic generation of software for
// analysing the LoggedSystemState table" by emitting (and executing) SQL
// aggregate scripts over the classification.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/target"
)

// Outcome classification labels stored in AnalysisResult.outcome.
const (
	OutcomeDetected    = "detected"
	OutcomeEscaped     = "escaped"
	OutcomeLatent      = "latent"
	OutcomeOverwritten = "overwritten"
)

// Interval is a binomial proportion confidence interval.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Report is the campaign-level analysis result. The JSON tags give the CLI
// a stable machine-readable export format.
type Report struct {
	Campaign string `json:"campaign"`
	// Total counts classified fault-injection experiments (the reference
	// run and detail reruns are excluded).
	Total int `json:"total"`
	// Counts maps outcome label to experiment count.
	Counts map[string]int `json:"outcomes"`
	// PerMechanism breaks down detected errors by EDM.
	PerMechanism map[string]int `json:"perMechanism"`
	// Failed counts experiments lost to tool-level target failures ("failed"
	// rows); they are excluded from the outcome taxonomy and from Total.
	Failed int `json:"failed"`
	// Effective = Detected + Escaped; NonEffective = Latent + Overwritten.
	Effective    int `json:"effective"`
	NonEffective int `json:"nonEffective"`
	// Coverage is Detected / Effective — the error detection coverage the
	// paper's campaigns estimate; CI is its 95% Wilson interval.
	Coverage float64  `json:"coverage"`
	CI       Interval `json:"coverageCI"`
}

// Classify analyses every experiment of a campaign against its reference
// run, stores one AnalysisResult row per experiment, and returns the report.
func Classify(store *dbase.Store, campaign string) (Report, error) {
	ref, err := store.GetExperiment(campaign + core.RefSuffix)
	if err != nil {
		return Report{}, fmt.Errorf("analysis: reference run: %w", err)
	}
	refSV, err := core.DecodeStateVector(ref.StateVector)
	if err != nil {
		return Report{}, fmt.Errorf("analysis: reference run: %w", err)
	}
	exps, err := store.Experiments(campaign)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Campaign:     campaign,
		Counts:       map[string]int{},
		PerMechanism: map[string]int{},
	}
	var rows []dbase.AnalysisRow
	for _, e := range exps {
		if e.ExperimentName == ref.ExperimentName || e.ParentExperiment != "" {
			continue // skip the reference run and detail reruns
		}
		if e.TerminationReason == core.TermFailed {
			// A "failed" row records a tool-level loss (the target glitched
			// through the whole retry budget), not a target outcome: it
			// carries no state vector worth classifying.
			rep.Failed++
			continue
		}
		outcome, mech, err := classifyOne(refSV, ref.TerminationReason, e)
		if err != nil {
			return Report{}, fmt.Errorf("analysis: %s: %w", e.ExperimentName, err)
		}
		rows = append(rows, dbase.AnalysisRow{
			ExperimentName: e.ExperimentName,
			CampaignName:   campaign,
			Outcome:        outcome,
			Mechanism:      mech,
		})
		rep.Counts[outcome]++
		if outcome == OutcomeDetected {
			rep.PerMechanism[mech]++
		}
		rep.Total++
	}
	if err := store.PutAnalysis(rows); err != nil {
		return Report{}, err
	}
	rep.Effective = rep.Counts[OutcomeDetected] + rep.Counts[OutcomeEscaped]
	rep.NonEffective = rep.Counts[OutcomeLatent] + rep.Counts[OutcomeOverwritten]
	if rep.Effective > 0 {
		rep.Coverage = float64(rep.Counts[OutcomeDetected]) / float64(rep.Effective)
		rep.CI = Wilson(rep.Counts[OutcomeDetected], rep.Effective, 1.96)
	}
	return rep, nil
}

// classifyOne applies the §3.4 taxonomy to one experiment.
func classifyOne(refSV *core.StateVector, refReason string, e dbase.ExperimentRow) (outcome, mechanism string, err error) {
	if e.TerminationReason == target.TerminDetected.String() {
		return OutcomeDetected, e.Mechanism, nil
	}
	// A timeout that the reference run did not exhibit is a timeliness
	// violation that escaped every detection mechanism. A watchdog hang is
	// the same violation in its most extreme form: the system wedged without
	// any mechanism firing.
	if e.TerminationReason == core.TermHang ||
		(e.TerminationReason == target.TerminTimeout.String() && refReason != e.TerminationReason) {
		return OutcomeEscaped, "", nil
	}
	sv, err := core.DecodeStateVector(e.StateVector)
	if err != nil {
		return "", "", err
	}
	switch {
	case !sv.OutputsEqual(refSV):
		return OutcomeEscaped, "", nil
	case !sv.StateEqual(refSV):
		return OutcomeLatent, "", nil
	default:
		return OutcomeOverwritten, "", nil
	}
}

// Wilson computes the Wilson score interval for k successes out of n trials
// at normal quantile z (1.96 for 95%).
func Wilson(k, n int, z float64) Interval {
	if n == 0 {
		return Interval{}
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	centre := p + z*z/(2*nn)
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo := (centre - half) / denom
	hi := (centre + half) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi}
}

// String renders the report in the layout of the paper's result list (§3.4).
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign %s: %d experiments\n", r.Campaign, r.Total)
	fmt.Fprintf(&sb, "  Effective errors:      %4d (%s)\n", r.Effective, pct(r.Effective, r.Total))
	fmt.Fprintf(&sb, "    Detected errors:     %4d (%s)\n", r.Counts[OutcomeDetected], pct(r.Counts[OutcomeDetected], r.Total))
	for _, m := range sortedKeys(r.PerMechanism) {
		fmt.Fprintf(&sb, "      %-20s %4d\n", m+":", r.PerMechanism[m])
	}
	fmt.Fprintf(&sb, "    Escaped errors:      %4d (%s)\n", r.Counts[OutcomeEscaped], pct(r.Counts[OutcomeEscaped], r.Total))
	fmt.Fprintf(&sb, "  Non-effective errors:  %4d (%s)\n", r.NonEffective, pct(r.NonEffective, r.Total))
	fmt.Fprintf(&sb, "    Latent errors:       %4d (%s)\n", r.Counts[OutcomeLatent], pct(r.Counts[OutcomeLatent], r.Total))
	fmt.Fprintf(&sb, "    Overwritten errors:  %4d (%s)\n", r.Counts[OutcomeOverwritten], pct(r.Counts[OutcomeOverwritten], r.Total))
	if r.Effective > 0 {
		fmt.Fprintf(&sb, "  Error detection coverage: %.1f%% (95%% CI %.1f%%–%.1f%%)\n",
			100*r.Coverage, 100*r.CI.Lo, 100*r.CI.Hi)
	}
	if r.Failed > 0 {
		fmt.Fprintf(&sb, "  Failed experiments (excluded): %d\n", r.Failed)
	}
	return sb.String()
}

func pct(k, n int) string {
	if n == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(k)/float64(n))
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
