package analysis

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/obsv"
	"goofi/internal/target"
)

// crossStore runs and analyses several campaigns on one store, with metrics
// persistence enabled so CampaignRunMetrics rows exist to join against.
func crossStore(t *testing.T, campaigns ...core.Campaign) *dbase.Store {
	t.Helper()
	ops := target.NewDefaultThorTarget()
	store, err := dbase.NewMemoryStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.RegisterTarget(store, ops, "test"); err != nil {
		t.Fatal(err)
	}
	for _, c := range campaigns {
		rec := obsv.New(obsv.Options{})
		store.SetRecorder(rec)
		r := core.NewRunner(ops, store, c)
		r.Recorder = rec
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		store.SetRecorder(nil)
		if _, err := Classify(store, c.Name); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func twoCampaignStore(t *testing.T) *dbase.Store {
	t.Helper()
	ca := baseCampaign("cross-a", 60)
	cb := baseCampaign("cross-b", 40)
	cb.Seed = 99
	return crossStore(t, ca, cb)
}

// TestCrossReportTwoCampaigns is the reporting acceptance check: the joined
// report carries both campaigns with per-EDM coverage, Wilson intervals, and
// each campaign's final run-metrics row.
func TestCrossReportTwoCampaigns(t *testing.T) {
	store := twoCampaignStore(t)
	rep, err := Cross(store, []string{"cross-a", "cross-b"}, target.NewDefaultThorTarget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Campaigns) != 2 {
		t.Fatalf("sections = %d", len(rep.Campaigns))
	}
	wantTotal := map[string]int{"cross-a": 60, "cross-b": 40}
	for _, sec := range rep.Campaigns {
		r := sec.Report
		if r.Total != wantTotal[r.Campaign] {
			t.Fatalf("%s: total = %d, want %d", r.Campaign, r.Total, wantTotal[r.Campaign])
		}
		// The stored-rows reconstruction must agree with a fresh Classify.
		fresh, err := Classify(store, r.Campaign)
		if err != nil {
			t.Fatal(err)
		}
		if r.Effective != fresh.Effective || r.Coverage != fresh.Coverage ||
			r.CI != fresh.CI || r.Failed != fresh.Failed {
			t.Errorf("%s: stored report %+v != fresh report %+v", r.Campaign, r, fresh)
		}

		// Per-EDM coverage with exact Wilson intervals.
		if len(sec.Mechanisms) == 0 {
			t.Fatalf("%s: no mechanism coverage", r.Campaign)
		}
		for _, m := range sec.Mechanisms {
			if m.Effective != r.Effective {
				t.Errorf("%s/%s: effective = %d, want %d", r.Campaign, m.Mechanism, m.Effective, r.Effective)
			}
			if want := r.PerMechanism[m.Mechanism]; m.Detected != want {
				t.Errorf("%s/%s: detected = %d, want %d", r.Campaign, m.Mechanism, m.Detected, want)
			}
			if want := Wilson(m.Detected, m.Effective, 1.96); m.CI != want {
				t.Errorf("%s/%s: CI = %+v, want Wilson %+v", r.Campaign, m.Mechanism, m.CI, want)
			}
			if m.CI.Lo > m.Coverage || m.Coverage > m.CI.Hi {
				t.Errorf("%s/%s: coverage %v outside its CI %+v", r.Campaign, m.Mechanism, m.Coverage, m.CI)
			}
		}

		// The engine join: one final row, FK-linked, totals matching.
		if len(sec.Runs) != 1 {
			t.Fatalf("%s: runs = %+v", r.Campaign, sec.Runs)
		}
		run := sec.LastRun()
		if run.CampaignName != r.Campaign || !run.Final || run.Done != r.Total {
			t.Fatalf("%s: final run row = %+v", r.Campaign, run)
		}

		// Location breakdown present because ops was passed.
		if len(sec.Locations) == 0 {
			t.Fatalf("%s: no location breakdown", r.Campaign)
		}
	}
}

func TestCrossReportWithoutOpsOrMetrics(t *testing.T) {
	// Analyse only — no recorder, so no run metrics; nil ops, so no locations.
	store := runCampaign(t, baseCampaign("cross-bare", 20))
	if _, err := Classify(store, "cross-bare"); err != nil {
		t.Fatal(err)
	}
	rep, err := Cross(store, []string{"cross-bare"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sec := rep.Campaigns[0]
	if len(sec.Locations) != 0 || len(sec.Runs) != 0 || sec.LastRun() != nil {
		t.Fatalf("bare section = %+v", sec)
	}
	// The renderers must cope with the missing joins.
	var buf bytes.Buffer
	rep.Format(&buf)
	if !strings.Contains(buf.String(), "cross-bare") {
		t.Fatal("text render lost the campaign")
	}
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCrossReportRequiresAnalyze(t *testing.T) {
	store := runCampaign(t, baseCampaign("cross-raw", 10))
	_, err := Cross(store, []string{"cross-raw"}, nil)
	if err == nil || !strings.Contains(err.Error(), "analyze") {
		t.Fatalf("unanalysed campaign: err = %v", err)
	}
	if _, err := Cross(store, nil, nil); err == nil {
		t.Fatal("empty campaign list must error")
	}
	if _, err := Cross(store, []string{"ghost"}, nil); err == nil {
		t.Fatal("unknown campaign must error")
	}
}

func TestCrossReportFormatText(t *testing.T) {
	store := twoCampaignStore(t)
	rep, err := Cross(store, []string{"cross-a", "cross-b"}, target.NewDefaultThorTarget())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Format(&buf)
	out := buf.String()
	for _, want := range []string{
		"Cross-campaign report (2 campaigns)",
		"cross-a", "cross-b", "95% CI", "mechanism",
		"phase durations", "workload", "scan-in",
		"top locations: cross-a",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestCrossReportCSV(t *testing.T) {
	store := twoCampaignStore(t)
	rep, err := Cross(store, []string{"cross-a", "cross-b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	header := records[0]
	wantCols := 17 + int(obsv.NumPhases)
	if len(header) != wantCols {
		t.Fatalf("header has %d columns, want %d: %v", len(header), wantCols, header)
	}
	if header[0] != "campaign" || header[1] != "mechanism" || header[9] != "run" {
		t.Fatalf("header = %v", header)
	}
	if header[len(header)-1] != "phase_wal_append_ns" {
		t.Fatalf("last phase column = %q", header[len(header)-1])
	}
	var allRows, mechRows int
	for _, rec := range records[1:] {
		if len(rec) != wantCols {
			t.Fatalf("ragged row: %v", rec)
		}
		if rec[1] == "(all)" {
			allRows++
			if rec[9] == "" {
				t.Errorf("(all) row missing engine columns: %v", rec)
			}
		} else {
			mechRows++
			if rec[9] != "" {
				t.Errorf("mechanism row carries engine columns: %v", rec)
			}
		}
	}
	if allRows != 2 || mechRows == 0 {
		t.Fatalf("rows: %d (all) + %d mechanism", allRows, mechRows)
	}
}

func TestCrossReportHTML(t *testing.T) {
	store := twoCampaignStore(t)
	rep, err := Cross(store, []string{"cross-a", "cross-b"}, target.NewDefaultThorTarget())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>",
		"Error detection coverage", "Per-mechanism coverage",
		"Engine metrics", "Phase durations",
		"cross-a", "cross-b",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	if strings.Contains(out, "{{") {
		t.Error("unexecuted template actions in HTML output")
	}
}
