package analysis

import (
	"bytes"
	"fmt"

	"goofi/internal/core"
	"goofi/internal/scan"
)

// PropagationReport compares the detail-mode traces of a faulted experiment
// and its reference run — the error-propagation analysis the paper's detail
// mode exists for (§3.3: "the detail mode operation is used to produce an
// execution trace, allowing the error propagation to be analysed in
// detail").
type PropagationReport struct {
	// Diverged is false when the two traces are identical.
	Diverged bool
	// FirstCycle and FirstPC locate the first instruction after which the
	// observable core state differed.
	FirstCycle uint64
	FirstPC    uint32
	// FirstDisasm is the faulted run's instruction at the divergence point.
	FirstDisasm string
	// FirstDiffBits counts the core-chain bits differing at the divergence
	// sample — the error's initial footprint in the state elements.
	FirstDiffBits int
	// DifferingSamples counts trace records whose core state differs;
	// ComparedSamples is the number of records compared (the shorter
	// trace's length).
	DifferingSamples int
	ComparedSamples  int
	// LengthDelta is len(faulted trace) - len(reference trace); a non-zero
	// value means control flow changed the instruction count.
	LengthDelta int
}

// ComparePropagation diffs two detail-mode state vectors.
func ComparePropagation(ref, faulted *core.StateVector) (PropagationReport, error) {
	if len(ref.Trace) == 0 || len(faulted.Trace) == 0 {
		return PropagationReport{}, fmt.Errorf("analysis: propagation analysis needs detail-mode traces")
	}
	rep := PropagationReport{LengthDelta: len(faulted.Trace) - len(ref.Trace)}
	n := len(ref.Trace)
	if len(faulted.Trace) < n {
		n = len(faulted.Trace)
	}
	rep.ComparedSamples = n
	for i := 0; i < n; i++ {
		a, b := ref.Trace[i], faulted.Trace[i]
		// The packed core images compare (and, at the divergence point,
		// popcount) eight chain bits per byte — no unpacking.
		if a.PC != b.PC || !bytes.Equal(a.Core, b.Core) {
			rep.DifferingSamples++
			if !rep.Diverged {
				rep.Diverged = true
				rep.FirstCycle = b.Cycle
				rep.FirstPC = b.PC
				rep.FirstDisasm = b.Disasm
				rep.FirstDiffBits = scan.PackedOnesCountDiff(a.Core, b.Core)
			}
		}
	}
	if rep.LengthDelta != 0 {
		rep.Diverged = true
		if rep.DifferingSamples == 0 && n > 0 {
			// Identical prefix, then one run stopped (or continued): the
			// divergence point is the step after the shorter trace's end.
			longer := faulted.Trace
			if rep.LengthDelta < 0 {
				longer = ref.Trace
			}
			rep.FirstCycle = longer[n-1].Cycle + 1
			rep.FirstPC = longer[n-1].PC
			rep.FirstDisasm = longer[n-1].Disasm
		}
	}
	return rep, nil
}

// String renders the report.
func (r PropagationReport) String() string {
	if !r.Diverged {
		return fmt.Sprintf("no divergence over %d trace samples", r.ComparedSamples)
	}
	if r.DifferingSamples == 0 {
		if r.LengthDelta < 0 {
			return fmt.Sprintf("identical until early termination after %d instructions (reference ran %d more)",
				r.ComparedSamples, -r.LengthDelta)
		}
		return fmt.Sprintf("identical prefix of %d instructions, then ran %d instructions longer than the reference",
			r.ComparedSamples, r.LengthDelta)
	}
	return fmt.Sprintf("diverged at cycle %d (pc=%#x, %s, %d core bit(s)); %d/%d samples differ; length delta %+d",
		r.FirstCycle, r.FirstPC, r.FirstDisasm, r.FirstDiffBits, r.DifferingSamples, r.ComparedSamples, r.LengthDelta)
}
