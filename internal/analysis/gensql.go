package analysis

import (
	"fmt"

	"goofi/internal/dbase"
	"goofi/internal/sqldb"
)

// GenerateSQL emits the SQL analysis script that a GOOFI user would
// otherwise write by hand (§3.4: "the user must write tailor made scripts or
// programs that query the database"; §4 lists automating this as an
// extension). The script aggregates the AnalysisResult classification of one
// campaign into the paper's result categories.
func GenerateSQL(campaign string) string {
	esc := escape(campaign)
	return fmt.Sprintf(`-- GOOFI generated analysis script for campaign %s
-- Outcome distribution (paper §3.4 taxonomy)
SELECT outcome, COUNT(*) AS experiments
FROM AnalysisResult
WHERE campaignName = '%s'
GROUP BY outcome
ORDER BY outcome;

-- Detected errors per error detection mechanism
SELECT mechanism, COUNT(*) AS detections
FROM AnalysisResult
WHERE campaignName = '%s' AND outcome = 'detected'
GROUP BY mechanism
ORDER BY detections DESC, mechanism;

-- Error detection coverage: detected / effective
SELECT COUNT(*) AS effective
FROM AnalysisResult
WHERE campaignName = '%s' AND outcome IN ('detected', 'escaped');

SELECT COUNT(*) AS detected
FROM AnalysisResult
WHERE campaignName = '%s' AND outcome = 'detected';
`, esc, esc, esc, esc, esc)
}

func escape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'')
		}
		out = append(out, s[i])
	}
	return string(out)
}

// SQLAggregates runs the generated aggregate queries against the campaign
// database and returns the outcome and per-mechanism counts. Used to verify
// that the generated SQL reproduces the natively computed Report (experiment
// E9).
func SQLAggregates(store *dbase.Store, campaign string) (outcomes, mechanisms map[string]int, err error) {
	db := store.DB()
	rows, err := db.Query(
		"SELECT outcome, COUNT(*) FROM AnalysisResult WHERE campaignName = ? GROUP BY outcome",
		sqldb.Text(campaign))
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: %w", err)
	}
	outcomes = make(map[string]int, rows.Len())
	for _, r := range rows.Data {
		outcomes[r[0].Text] = int(r[1].Int)
	}
	rows, err = db.Query(
		"SELECT mechanism, COUNT(*) FROM AnalysisResult WHERE campaignName = ? AND outcome = 'detected' GROUP BY mechanism",
		sqldb.Text(campaign))
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: %w", err)
	}
	mechanisms = make(map[string]int, rows.Len())
	for _, r := range rows.Data {
		mechanisms[r[0].Text] = int(r[1].Int)
	}
	return outcomes, mechanisms, nil
}

// CoverageViaSQL computes the error-detection coverage purely in SQL.
func CoverageViaSQL(store *dbase.Store, campaign string) (float64, error) {
	row, err := store.DB().QueryRow(
		`SELECT COUNT(*) FROM AnalysisResult
		 WHERE campaignName = ? AND outcome IN ('detected', 'escaped')`,
		sqldb.Text(campaign))
	if err != nil {
		return 0, fmt.Errorf("analysis: %w", err)
	}
	effective := row[0].Int
	if effective == 0 {
		return 0, nil
	}
	row, err = store.DB().QueryRow(
		"SELECT COUNT(*) FROM AnalysisResult WHERE campaignName = ? AND outcome = 'detected'",
		sqldb.Text(campaign))
	if err != nil {
		return 0, fmt.Errorf("analysis: %w", err)
	}
	return float64(row[0].Int) / float64(effective), nil
}
