package analysis

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/faultmodel"
	"goofi/internal/target"
	"goofi/internal/workload"
)

// runCampaign executes a small campaign and returns its store.
func runCampaign(t *testing.T, c core.Campaign) *dbase.Store {
	t.Helper()
	ops := target.NewDefaultThorTarget()
	store, err := dbase.NewMemoryStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.RegisterTarget(store, ops, "test"); err != nil {
		t.Fatal(err)
	}
	r := core.NewRunner(ops, store, c)
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return store
}

func baseCampaign(name string, n int) core.Campaign {
	return core.Campaign{
		Name:           name,
		Workload:       workload.BubbleSort(),
		Technique:      core.TechSCIFI,
		Model:          faultmodel.Model{Kind: faultmodel.Transient},
		LocationFilter: "chain:internal.core",
		NExperiments:   n,
		Seed:           3,
		InjectMinTime:  10,
		InjectMaxTime:  1400,
	}
}

func TestClassifyCampaign(t *testing.T) {
	store := runCampaign(t, baseCampaign("an1", 40))
	rep, err := Classify(store, "an1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 40 {
		t.Fatalf("total = %d", rep.Total)
	}
	sum := 0
	for _, v := range rep.Counts {
		sum += v
	}
	if sum != 40 {
		t.Fatalf("counts = %v", rep.Counts)
	}
	if rep.Effective+rep.NonEffective != 40 {
		t.Fatalf("effective %d + noneffective %d != 40", rep.Effective, rep.NonEffective)
	}
	// 40 random single bit-flips into registers must yield a mixture: at
	// least some non-effective faults, and some effect overall.
	if rep.NonEffective == 0 {
		t.Fatalf("no non-effective faults at all: %v", rep.Counts)
	}
	// Analysis rows are stored, one per experiment.
	rows, err := store.AnalysisResults("an1")
	if err != nil || len(rows) != 40 {
		t.Fatalf("analysis rows = %d, %v", len(rows), err)
	}
	// Re-running the analysis is idempotent.
	rep2, err := Classify(store, "an1")
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Total != rep.Total || rep2.Counts[OutcomeDetected] != rep.Counts[OutcomeDetected] {
		t.Fatal("re-analysis changed the result")
	}
	// Detected experiments carry mechanisms.
	for _, row := range rows {
		if row.Outcome == OutcomeDetected && row.Mechanism == "" {
			t.Fatalf("detected without mechanism: %+v", row)
		}
	}
	if rep.Effective > 0 {
		if rep.Coverage < 0 || rep.Coverage > 1 {
			t.Fatalf("coverage = %f", rep.Coverage)
		}
		if rep.CI.Lo > rep.Coverage || rep.CI.Hi < rep.Coverage {
			t.Fatalf("CI %v does not bracket coverage %f", rep.CI, rep.Coverage)
		}
	}
}

func TestClassifyMissingCampaign(t *testing.T) {
	store, err := dbase.NewMemoryStore()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Classify(store, "ghost"); err == nil {
		t.Fatal("missing campaign should fail")
	}
}

func TestReportString(t *testing.T) {
	store := runCampaign(t, baseCampaign("an2", 15))
	rep, err := Classify(store, "an2")
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, frag := range []string{"Effective errors", "Detected errors", "Escaped errors",
		"Latent errors", "Overwritten errors"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

func TestWilson(t *testing.T) {
	// Degenerate cases.
	if iv := Wilson(0, 0, 1.96); iv.Lo != 0 || iv.Hi != 0 {
		t.Fatalf("Wilson(0,0) = %v", iv)
	}
	// Known value: 8/10 at 95% is roughly [0.49, 0.94].
	iv := Wilson(8, 10, 1.96)
	if math.Abs(iv.Lo-0.49) > 0.02 || math.Abs(iv.Hi-0.943) > 0.02 {
		t.Fatalf("Wilson(8,10) = %+v", iv)
	}
	// Bounds stay in [0,1] at the extremes.
	if iv := Wilson(0, 5, 1.96); iv.Lo != 0 {
		t.Fatalf("Wilson(0,5) = %+v", iv)
	}
	if iv := Wilson(5, 5, 1.96); iv.Hi != 1 {
		t.Fatalf("Wilson(5,5) = %+v", iv)
	}
	// Monotone in n: wider for smaller samples.
	small := Wilson(5, 10, 1.96)
	large := Wilson(50, 100, 1.96)
	if (small.Hi - small.Lo) <= (large.Hi - large.Lo) {
		t.Fatal("interval should shrink with n")
	}
}

func TestGeneratedSQLMatchesNativeReport(t *testing.T) {
	store := runCampaign(t, baseCampaign("an3", 30))
	rep, err := Classify(store, "an3")
	if err != nil {
		t.Fatal(err)
	}
	// The generated script must parse and run against the store.
	script := GenerateSQL("an3")
	if err := store.DB().ExecScript(script); err != nil {
		t.Fatalf("generated SQL does not execute: %v\n%s", err, script)
	}
	// And its aggregates must equal the native computation (E9).
	outcomes, mechanisms, err := SQLAggregates(store, "an3")
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range rep.Counts {
		if outcomes[k] != v {
			t.Errorf("outcome %s: SQL %d, native %d", k, outcomes[k], v)
		}
	}
	for k, v := range rep.PerMechanism {
		if mechanisms[k] != v {
			t.Errorf("mechanism %s: SQL %d, native %d", k, mechanisms[k], v)
		}
	}
	cov, err := CoverageViaSQL(store, "an3")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-rep.Coverage) > 1e-9 {
		t.Fatalf("SQL coverage %f, native %f", cov, rep.Coverage)
	}
}

func TestGenerateSQLEscapesQuotes(t *testing.T) {
	script := GenerateSQL("camp'ain")
	if !strings.Contains(script, "camp''ain") {
		t.Fatalf("script does not escape quotes:\n%s", script)
	}
}

func TestPropagationAnalysis(t *testing.T) {
	ops := target.NewDefaultThorTarget()
	store, err := dbase.NewMemoryStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.RegisterTarget(store, ops, "test"); err != nil {
		t.Fatal(err)
	}
	c := baseCampaign("an4", 6)
	c.DetailMode = true
	r := core.NewRunner(ops, store, c)
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ref, err := store.GetExperiment("an4" + core.RefSuffix)
	if err != nil {
		t.Fatal(err)
	}
	refSV, err := core.DecodeStateVector(ref.StateVector)
	if err != nil {
		t.Fatal(err)
	}
	if len(refSV.Trace) == 0 {
		t.Fatal("detail-mode campaign logged no reference trace")
	}
	exps, err := store.Experiments("an4")
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	for _, e := range exps {
		if e.ExperimentName == ref.ExperimentName {
			continue
		}
		sv, err := core.DecodeStateVector(e.StateVector)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := ComparePropagation(refSV, sv)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Diverged {
			diverged++
			if pr.String() == "" {
				t.Fatal("empty report string")
			}
		}
	}
	if diverged == 0 {
		t.Fatal("no experiment diverged from the reference trace")
	}
	// Identical traces do not diverge.
	pr, err := ComparePropagation(refSV, refSV)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Diverged || pr.DifferingSamples != 0 {
		t.Fatalf("self comparison = %+v", pr)
	}
	// Missing traces are an error.
	if _, err := ComparePropagation(&core.StateVector{}, refSV); err == nil {
		t.Fatal("missing trace should fail")
	}
}

func TestLocationBreakdown(t *testing.T) {
	store := runCampaign(t, baseCampaign("an-loc", 60))
	if _, err := Classify(store, "an-loc"); err != nil {
		t.Fatal(err)
	}
	ops := target.NewDefaultThorTarget()
	stats, err := LocationBreakdown(store, "an-loc", ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no location stats")
	}
	total := 0
	for _, st := range stats {
		total += st.Total
		if !strings.HasPrefix(st.Location, "internal.core/") {
			t.Fatalf("unexpected location %q", st.Location)
		}
		sum := 0
		for _, v := range st.Outcomes {
			sum += v
		}
		if sum != st.Total {
			t.Fatalf("outcome sum %d != total %d for %s", sum, st.Total, st.Location)
		}
	}
	if total != 60 {
		t.Fatalf("attributed %d of 60 experiments", total)
	}
	// Sorted by effective count descending.
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Effective() < stats[i].Effective() {
			t.Fatal("stats not sorted by effectiveness")
		}
	}
	tbl := FormatLocationTable(stats, 5)
	if !strings.Contains(tbl, "location") || !strings.Contains(tbl, "more locations") {
		t.Fatalf("table:\n%s", tbl)
	}
	full := FormatLocationTable(stats, 0)
	if strings.Contains(full, "more locations") {
		t.Fatal("full table should not truncate")
	}
}

func TestLocationBreakdownRequiresClassify(t *testing.T) {
	store := runCampaign(t, baseCampaign("an-loc2", 3))
	ops := target.NewDefaultThorTarget()
	if _, err := LocationBreakdown(store, "an-loc2", ops); err == nil {
		t.Fatal("breakdown without Classify should fail")
	}
}

func TestLocationBreakdownMemoryDomain(t *testing.T) {
	c := baseCampaign("an-loc3", 10)
	c.Technique = core.TechSWIFIPre
	c.LocationFilter = "mem:0x4000-0x4040"
	store := runCampaign(t, c)
	if _, err := Classify(store, "an-loc3"); err != nil {
		t.Fatal(err)
	}
	stats, err := LocationBreakdown(store, "an-loc3", target.NewDefaultThorTarget())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stats {
		if !strings.HasPrefix(st.Location, "mem:0x4") {
			t.Fatalf("unexpected location %q", st.Location)
		}
	}
}

func TestClassifySimpleTargetCampaign(t *testing.T) {
	// The second target system's campaigns flow through the same analysis
	// phase: its state vectors have no scan chains, only result memory.
	ops := target.NewSimpleTarget()
	store, err := dbase.NewMemoryStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.RegisterTarget(store, ops, "accumulator machine"); err != nil {
		t.Fatal(err)
	}
	c := core.Campaign{
		Name:           "simple-an",
		Workload:       target.SimpleChecksumWorkload(),
		Technique:      core.TechSWIFIPre,
		Model:          faultmodel.Model{Kind: faultmodel.Transient},
		LocationFilter: "mem:0x800-0x840",
		NExperiments:   30,
		Seed:           8,
	}
	if _, err := core.NewRunner(ops, store, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep, err := Classify(store, "simple-an")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 30 {
		t.Fatalf("total = %d", rep.Total)
	}
	// Data faults on this machine either corrupt the checksum (escaped) or
	// hit the dead upper bits of the 16-bit words (overwritten); there is
	// nothing latent to observe and no EDM covers data.
	if rep.Counts[OutcomeEscaped] == 0 {
		t.Fatalf("no escaped errors: %v", rep.Counts)
	}
	if rep.Counts[OutcomeDetected] != 0 {
		t.Fatalf("data faults cannot be detected on this machine: %v", rep.Counts)
	}
}

// TestTaxonomyEdgeCases drives classifyOne through every branch with
// hand-built state vectors, independent of any simulator behaviour.
func TestTaxonomyEdgeCases(t *testing.T) {
	store, err := dbase.NewMemoryStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.PutTargetSystem(dbase.TargetSystem{TestCardName: "t", MemSize: 64, ROMSize: 4}); err != nil {
		t.Fatal(err)
	}
	if err := store.PutCampaign(dbase.CampaignRow{
		CampaignName: "tax", TestCardName: "t", Workload: "bubblesort",
		Technique: "scifi", FaultModel: "transient", LocationFilter: "x",
		NExperiments: 5,
	}); err != nil {
		t.Fatal(err)
	}
	mkSV := func(chainByte byte, memVal uint32, env uint32) []byte {
		sv := &core.StateVector{
			Chains: []core.ChainState{{Name: "c", Bits: 8, Data: []byte{chainByte}}},
			Memory: []core.MemWord{{Addr: 0x10, Value: memVal}},
			Env:    [][]uint32{{env}},
		}
		return sv.Encode()
	}
	put := func(name, reason, mech string, sv []byte) {
		t.Helper()
		if err := store.PutExperiment(dbase.ExperimentRow{
			ExperimentName: name, CampaignName: "tax",
			ExperimentData:    "plan=[] injected=0/0",
			TerminationReason: reason, Mechanism: mech, StateVector: sv,
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("tax/ref", "workload-end", "", mkSV(0xAA, 7, 3))
	put("tax/e0000", "detected", "watchdog", mkSV(0x00, 0, 0)) // detected
	put("tax/e0001", "timeout", "", mkSV(0xAA, 7, 3))          // timeliness escape
	put("tax/e0002", "workload-end", "", mkSV(0xAA, 9, 3))     // wrong memory -> escaped
	put("tax/e0003", "workload-end", "", mkSV(0xAA, 7, 4))     // wrong env -> escaped
	put("tax/e0004", "workload-end", "", mkSV(0xAB, 7, 3))     // chain diff -> latent
	put("tax/e0005", "workload-end", "", mkSV(0xAA, 7, 3))     // identical -> overwritten

	rep, err := Classify(store, "tax")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		OutcomeDetected:    1,
		OutcomeEscaped:     3,
		OutcomeLatent:      1,
		OutcomeOverwritten: 1,
	}
	for k, v := range want {
		if rep.Counts[k] != v {
			t.Errorf("%s = %d, want %d", k, rep.Counts[k], v)
		}
	}
	if rep.PerMechanism["watchdog"] != 1 {
		t.Errorf("mechanisms = %v", rep.PerMechanism)
	}
	if rep.Coverage != 0.25 { // 1 detected of 4 effective
		t.Errorf("coverage = %f", rep.Coverage)
	}
	// A reference run that itself timed out makes experiment timeouts
	// non-escaping (they match the reference); rebuild with that shape.
	if err := store.PutCampaign(dbase.CampaignRow{
		CampaignName: "tax2", TestCardName: "t", Workload: "control",
		Technique: "scifi", FaultModel: "transient", LocationFilter: "x",
		NExperiments: 1,
	}); err != nil {
		t.Fatal(err)
	}
	put2 := func(name, reason string, sv []byte) {
		t.Helper()
		if err := store.PutExperiment(dbase.ExperimentRow{
			ExperimentName: name, CampaignName: "tax2",
			ExperimentData:    "plan=[] injected=0/0",
			TerminationReason: reason, StateVector: sv,
		}); err != nil {
			t.Fatal(err)
		}
	}
	put2("tax2/ref", "timeout", mkSV(0xAA, 7, 3))
	put2("tax2/e0000", "timeout", mkSV(0xAA, 7, 3))
	rep2, err := Classify(store, "tax2")
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Counts[OutcomeOverwritten] != 1 {
		t.Fatalf("matching-timeout outcome = %v", rep2.Counts)
	}
}

// TestClassifyMixedRows drives Classify over campaigns that mix ordinary
// outcomes with the robustness-layer row shapes the engine can log: watchdog
// hangs, tool-level failures (the retry budget exhausted), and detail-mode
// reruns linked to a parent. Each case pins how those rows enter — or stay
// out of — the §3.4 report.
func TestClassifyMixedRows(t *testing.T) {
	sv := func(chainByte byte, memVal uint32) []byte {
		v := &core.StateVector{
			Chains: []core.ChainState{{Name: "c", Bits: 8, Data: []byte{chainByte}}},
			Memory: []core.MemWord{{Addr: 0x10, Value: memVal}},
			Env:    [][]uint32{{1}},
		}
		return v.Encode()
	}
	refSV := sv(0xAA, 7)
	type row struct {
		name, reason, mech, parent string
		sv                         []byte
	}
	cases := []struct {
		label        string
		rows         []row
		wantTotal    int
		wantFailed   int
		wantCounts   map[string]int
		wantAnalysis int // stored AnalysisResult rows
	}{
		{
			label: "hang rows escape",
			rows: []row{
				{name: "e0000", reason: core.TermHang, sv: nil}, // hangs carry no usable state
				{name: "e0001", reason: "workload-end", sv: refSV},
			},
			wantTotal:  2,
			wantCounts: map[string]int{OutcomeEscaped: 1, OutcomeOverwritten: 1},
			// A hang must classify WITHOUT decoding its (empty) state vector.
			wantAnalysis: 2,
		},
		{
			label: "failed rows counted apart, excluded from Total",
			rows: []row{
				{name: "e0000", reason: core.TermFailed, sv: nil},
				{name: "e0001", reason: core.TermFailed, sv: nil},
				{name: "e0002", reason: "workload-end", sv: sv(0xAB, 7)},
			},
			wantTotal:    1,
			wantFailed:   2,
			wantCounts:   map[string]int{OutcomeLatent: 1},
			wantAnalysis: 1,
		},
		{
			label: "detail reruns skipped via parent link",
			rows: []row{
				{name: "e0000", reason: "workload-end", sv: sv(0xAA, 9)},
				{name: "e0000/detail", reason: "workload-end", parent: "e0000", sv: sv(0xAA, 9)},
				{name: "ref/detail", reason: "workload-end", parent: "ref", sv: refSV},
			},
			wantTotal:    1,
			wantCounts:   map[string]int{OutcomeEscaped: 1},
			wantAnalysis: 1,
		},
		{
			label: "full mixture",
			rows: []row{
				{name: "e0000", reason: "detected", mech: "access-violation", sv: sv(0, 0)},
				{name: "e0001", reason: core.TermHang, sv: nil},
				{name: "e0002", reason: core.TermFailed, sv: nil},
				{name: "e0003", reason: "workload-end", sv: refSV},
				{name: "e0003/detail", reason: "workload-end", parent: "e0003", sv: refSV},
			},
			wantTotal:  3,
			wantFailed: 1,
			wantCounts: map[string]int{
				OutcomeDetected: 1, OutcomeEscaped: 1, OutcomeOverwritten: 1,
			},
			wantAnalysis: 3,
		},
	}
	for i, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			store, err := dbase.NewMemoryStore()
			if err != nil {
				t.Fatal(err)
			}
			if err := store.PutTargetSystem(dbase.TargetSystem{TestCardName: "t", MemSize: 64, ROMSize: 4}); err != nil {
				t.Fatal(err)
			}
			camp := fmt.Sprintf("mix%d", i)
			if err := store.PutCampaign(dbase.CampaignRow{
				CampaignName: camp, TestCardName: "t", Workload: "bubblesort",
				Technique: "scifi", FaultModel: "transient", LocationFilter: "x",
				NExperiments: len(tc.rows),
			}); err != nil {
				t.Fatal(err)
			}
			if err := store.PutExperiment(dbase.ExperimentRow{
				ExperimentName: camp + core.RefSuffix, CampaignName: camp,
				ExperimentData:    "plan=[] injected=0/0",
				TerminationReason: "workload-end", StateVector: refSV,
			}); err != nil {
				t.Fatal(err)
			}
			for _, r := range tc.rows {
				parent := r.parent
				if parent != "" {
					parent = camp + "/" + parent
				}
				if err := store.PutExperiment(dbase.ExperimentRow{
					ExperimentName: camp + "/" + r.name, CampaignName: camp,
					ParentExperiment: parent, ExperimentData: "plan=[] injected=0/0",
					TerminationReason: r.reason, Mechanism: r.mech, StateVector: r.sv,
				}); err != nil {
					t.Fatal(err)
				}
			}
			rep, err := Classify(store, camp)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Total != tc.wantTotal {
				t.Errorf("Total = %d, want %d", rep.Total, tc.wantTotal)
			}
			if rep.Failed != tc.wantFailed {
				t.Errorf("Failed = %d, want %d", rep.Failed, tc.wantFailed)
			}
			for k, v := range tc.wantCounts {
				if rep.Counts[k] != v {
					t.Errorf("Counts[%s] = %d, want %d", k, rep.Counts[k], v)
				}
			}
			sum := 0
			for _, v := range rep.Counts {
				sum += v
			}
			if sum != tc.wantTotal {
				t.Errorf("counts sum %d != Total %d: %v", sum, tc.wantTotal, rep.Counts)
			}
			rows, err := store.AnalysisResults(camp)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != tc.wantAnalysis {
				t.Errorf("stored analysis rows = %d, want %d", len(rows), tc.wantAnalysis)
			}
			for _, r := range rows {
				if strings.HasSuffix(r.ExperimentName, core.DetailSuffix) ||
					strings.HasSuffix(r.ExperimentName, core.RefSuffix) {
					t.Errorf("special row classified: %q", r.ExperimentName)
				}
			}
		})
	}
}
