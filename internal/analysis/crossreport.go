package analysis

import (
	"encoding/csv"
	"fmt"
	"html/template"
	"io"
	"strconv"
	"strings"
	"time"

	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/obsv"
	"goofi/internal/target"
)

// MechanismCoverage is one error detection mechanism's coverage within a
// campaign: the fraction of effective errors that EDM detected, with its 95%
// Wilson interval.
type MechanismCoverage struct {
	Mechanism string   `json:"mechanism"`
	Detected  int      `json:"detected"`
	Effective int      `json:"effective"`
	Coverage  float64  `json:"coverage"`
	CI        Interval `json:"coverageCI"`
}

// CampaignSection is one campaign's slice of a cross-campaign report,
// assembled by joining its AnalysisResult rows (outcome taxonomy),
// LoggedSystemState rows (failed experiments) and CampaignRunMetrics rows
// (engine performance).
type CampaignSection struct {
	Report     Report              `json:"report"`
	Mechanisms []MechanismCoverage `json:"mechanisms,omitempty"`
	// Locations is the per-location breakdown; empty when no target was
	// available to resolve location names.
	Locations []LocationStats `json:"locations,omitempty"`
	// Runs holds the final CampaignRunMetrics row of each run in run order;
	// empty when the campaign ran without metrics persistence.
	Runs []dbase.RunMetricsRow `json:"runs,omitempty"`
}

// LastRun returns the most recent run's final metrics row, or nil.
func (s CampaignSection) LastRun() *dbase.RunMetricsRow {
	if len(s.Runs) == 0 {
		return nil
	}
	return &s.Runs[len(s.Runs)-1]
}

// TopLocations returns at most n locations (the breakdown is already sorted
// by descending effective count).
func (s CampaignSection) TopLocations(n int) []LocationStats {
	if n <= 0 || n > len(s.Locations) {
		n = len(s.Locations)
	}
	return s.Locations[:n]
}

// CrossReport compares completed campaigns side by side — the `goofi report`
// deliverable.
type CrossReport struct {
	Campaigns []CampaignSection `json:"campaigns"`
}

// Cross assembles a cross-campaign report for the named campaigns. Each must
// have been analysed already (Classify stores the AnalysisResult rows this
// joins against). ops, when non-nil, resolves injection locations into state
// element names for the per-location breakdown; pass nil to skip it. Run
// metrics are included when present and silently absent otherwise, so
// campaigns run before metrics persistence existed still report.
func Cross(store *dbase.Store, campaigns []string, ops target.Operations) (CrossReport, error) {
	if len(campaigns) == 0 {
		return CrossReport{}, fmt.Errorf("analysis: cross report needs at least one campaign")
	}
	var cr CrossReport
	for _, name := range campaigns {
		rep, err := reportFromStored(store, name)
		if err != nil {
			return CrossReport{}, err
		}
		sec := CampaignSection{Report: rep}
		for _, m := range sortedKeys(rep.PerMechanism) {
			k := rep.PerMechanism[m]
			mc := MechanismCoverage{Mechanism: m, Detected: k, Effective: rep.Effective}
			if rep.Effective > 0 {
				mc.Coverage = float64(k) / float64(rep.Effective)
				mc.CI = Wilson(k, rep.Effective, 1.96)
			}
			sec.Mechanisms = append(sec.Mechanisms, mc)
		}
		if ops != nil {
			locs, err := LocationBreakdown(store, name, ops)
			if err != nil {
				return CrossReport{}, err
			}
			sec.Locations = locs
		}
		runs, err := store.FinalRunMetrics(name)
		if err != nil {
			return CrossReport{}, err
		}
		sec.Runs = runs
		cr.Campaigns = append(cr.Campaigns, sec)
	}
	return cr, nil
}

// reportFromStored rebuilds a campaign's Report from its stored
// AnalysisResult rows instead of re-classifying — `goofi report` must not
// mutate the database. Failed experiments never reach AnalysisResult, so
// their count is recovered from LoggedSystemState.
func reportFromStored(store *dbase.Store, campaign string) (Report, error) {
	results, err := store.AnalysisResults(campaign)
	if err != nil {
		return Report{}, err
	}
	if len(results) == 0 {
		return Report{}, fmt.Errorf("analysis: campaign %s has no analysis results; run the analyze step first", campaign)
	}
	rep := Report{
		Campaign:     campaign,
		Counts:       map[string]int{},
		PerMechanism: map[string]int{},
	}
	for _, res := range results {
		rep.Counts[res.Outcome]++
		if res.Outcome == OutcomeDetected {
			rep.PerMechanism[res.Mechanism]++
		}
		rep.Total++
	}
	exps, err := store.Experiments(campaign)
	if err != nil {
		return Report{}, err
	}
	for _, e := range exps {
		if e.ParentExperiment == "" && e.TerminationReason == core.TermFailed {
			rep.Failed++
		}
	}
	rep.Effective = rep.Counts[OutcomeDetected] + rep.Counts[OutcomeEscaped]
	rep.NonEffective = rep.Counts[OutcomeLatent] + rep.Counts[OutcomeOverwritten]
	if rep.Effective > 0 {
		rep.Coverage = float64(rep.Counts[OutcomeDetected]) / float64(rep.Effective)
		rep.CI = Wilson(rep.Counts[OutcomeDetected], rep.Effective, 1.96)
	}
	return rep, nil
}

// topLocationsShown bounds the per-campaign location table in the rendered
// report; the full breakdown stays available through `goofi locations`.
const topLocationsShown = 8

// Format renders the cross-campaign comparison as aligned text tables:
// overall and per-EDM coverage with Wilson intervals, engine metrics and the
// phase-duration breakdown of each campaign's latest run, and the top
// locations where available.
func (c CrossReport) Format(w io.Writer) {
	fmt.Fprintf(w, "Cross-campaign report (%d campaigns)\n", len(c.Campaigns))

	fmt.Fprintf(w, "\n%-20s %7s %7s %10s %9s %10s %15s\n",
		"campaign", "total", "failed", "effective", "detected", "coverage", "95% CI")
	for _, s := range c.Campaigns {
		r := s.Report
		fmt.Fprintf(w, "%-20s %7d %7d %10d %9d %10s %15s\n",
			r.Campaign, r.Total, r.Failed, r.Effective,
			r.Counts[OutcomeDetected], pctOf(r.Coverage, r.Effective), ciOf(r.CI, r.Effective))
	}

	fmt.Fprintf(w, "\n%-20s %-16s %9s %10s %10s %15s\n",
		"campaign", "mechanism", "detected", "effective", "coverage", "95% CI")
	for _, s := range c.Campaigns {
		for _, m := range s.Mechanisms {
			fmt.Fprintf(w, "%-20s %-16s %9d %10d %10s %15s\n",
				s.Report.Campaign, m.Mechanism, m.Detected, m.Effective,
				pctOf(m.Coverage, m.Effective), ciOf(m.CI, m.Effective))
		}
	}

	if c.anyRuns() {
		fmt.Fprintf(w, "\n%-20s %4s %9s %9s %8s %8s %6s %11s %8s %10s\n",
			"campaign", "run", "done", "elapsed", "rate/s", "retries", "hangs", "quarantined", "workers", "store p95")
		for _, s := range c.Campaigns {
			run := s.LastRun()
			if run == nil {
				fmt.Fprintf(w, "%-20s %4s\n", s.Report.Campaign, "-")
				continue
			}
			fmt.Fprintf(w, "%-20s %4d %9s %9s %8.1f %8d %6d %11d %8d %10s\n",
				s.Report.Campaign, run.RunID,
				fmt.Sprintf("%d/%d", run.Done, run.Total),
				fmtNs(run.ElapsedNs), ratePerSec(*run),
				run.Retries, run.Hangs, run.Quarantined, run.Workers,
				fmtNs(run.StoreP95Ns))
		}

		fmt.Fprintf(w, "\n%-20s", "phase durations")
		for p := obsv.Phase(0); p < obsv.NumPhases; p++ {
			fmt.Fprintf(w, " %12s", p.String())
		}
		fmt.Fprintln(w)
		for _, s := range c.Campaigns {
			run := s.LastRun()
			if run == nil {
				continue
			}
			fmt.Fprintf(w, "%-20s", s.Report.Campaign)
			for _, ns := range run.PhaseNs {
				fmt.Fprintf(w, " %12s", fmtNs(ns))
			}
			fmt.Fprintln(w)
		}
	}

	for _, s := range c.Campaigns {
		if len(s.Locations) == 0 {
			continue
		}
		fmt.Fprintf(w, "\ntop locations: %s\n", s.Report.Campaign)
		fmt.Fprint(w, FormatLocationTable(s.Locations, topLocationsShown))
	}
}

func (c CrossReport) anyRuns() bool {
	for _, s := range c.Campaigns {
		if len(s.Runs) > 0 {
			return true
		}
	}
	return false
}

// WriteCSV renders the comparison as one flat CSV: a "(all)" row per
// campaign carrying the overall coverage plus the latest run's engine and
// phase columns, then one row per mechanism with the engine columns empty.
func (c CrossReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"campaign", "mechanism", "detected", "effective", "coverage", "ci_lo", "ci_hi",
		"experiments", "failed", "run", "elapsed_ns", "rate_per_sec",
		"retries", "hangs", "quarantined", "workers", "store_p95_ns",
	}
	for p := obsv.Phase(0); p < obsv.NumPhases; p++ {
		header = append(header, "phase_"+strings.ReplaceAll(p.String(), "-", "_")+"_ns")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	blankEngine := make([]string, len(header)-9)
	for _, s := range c.Campaigns {
		r := s.Report
		rec := []string{
			r.Campaign, "(all)",
			strconv.Itoa(r.Counts[OutcomeDetected]), strconv.Itoa(r.Effective),
			fmtFloat(r.Coverage), fmtFloat(r.CI.Lo), fmtFloat(r.CI.Hi),
			strconv.Itoa(r.Total), strconv.Itoa(r.Failed),
		}
		if run := s.LastRun(); run != nil {
			rec = append(rec,
				strconv.FormatInt(run.RunID, 10),
				strconv.FormatInt(run.ElapsedNs, 10),
				fmtFloat(ratePerSec(*run)),
				strconv.Itoa(run.Retries), strconv.Itoa(run.Hangs),
				strconv.Itoa(run.Quarantined), strconv.Itoa(run.Workers),
				strconv.FormatInt(run.StoreP95Ns, 10),
			)
			for _, ns := range run.PhaseNs {
				rec = append(rec, strconv.FormatInt(ns, 10))
			}
		} else {
			rec = append(rec, blankEngine...)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
		for _, m := range s.Mechanisms {
			rec := []string{
				r.Campaign, m.Mechanism,
				strconv.Itoa(m.Detected), strconv.Itoa(m.Effective),
				fmtFloat(m.Coverage), fmtFloat(m.CI.Lo), fmtFloat(m.CI.Hi),
				strconv.Itoa(r.Total), strconv.Itoa(r.Failed),
			}
			rec = append(rec, blankEngine...)
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// reportTemplate is the self-contained HTML rendering of a CrossReport: no
// external assets, so the file can be mailed or archived as-is.
var reportTemplate = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct":   func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) },
	"dur":   fmtNs,
	"rate":  func(r dbase.RunMetricsRow) string { return fmt.Sprintf("%.1f", ratePerSec(r)) },
	"top":   func(s CampaignSection) []LocationStats { return s.TopLocations(topLocationsShown) },
	"phase": func(i int) string { return obsv.Phase(i).String() },
	"out":   func(l LocationStats, o string) int { return l.Outcomes[o] },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>GOOFI cross-campaign report</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td { border: 1px solid #c8c8d8; padding: .25rem .6rem; text-align: right; }
th { background: #eef; } td:first-child, th:first-child { text-align: left; }
.bar { background: linear-gradient(to right, #6a8 var(--w), transparent var(--w)); }
</style>
</head>
<body>
<h1>GOOFI cross-campaign report</h1>

<h2>Error detection coverage</h2>
<table>
<tr><th>campaign</th><th>experiments</th><th>failed</th><th>effective</th><th>detected</th><th>coverage</th><th>95% CI</th></tr>
{{range .Campaigns}}{{with .Report}}
<tr><td>{{.Campaign}}</td><td>{{.Total}}</td><td>{{.Failed}}</td><td>{{.Effective}}</td>
<td>{{index .Counts "detected"}}</td>
<td class="bar" style="--w: {{pct .Coverage}}">{{pct .Coverage}}</td>
<td>{{pct .CI.Lo}}&ndash;{{pct .CI.Hi}}</td></tr>
{{end}}{{end}}
</table>

<h2>Per-mechanism coverage</h2>
<table>
<tr><th>campaign</th><th>mechanism</th><th>detected</th><th>effective</th><th>coverage</th><th>95% CI</th></tr>
{{range .Campaigns}}{{$c := .Report.Campaign}}{{range .Mechanisms}}
<tr><td>{{$c}}</td><td>{{.Mechanism}}</td><td>{{.Detected}}</td><td>{{.Effective}}</td>
<td class="bar" style="--w: {{pct .Coverage}}">{{pct .Coverage}}</td>
<td>{{pct .CI.Lo}}&ndash;{{pct .CI.Hi}}</td></tr>
{{end}}{{end}}
</table>

<h2>Engine metrics (latest run)</h2>
<table>
<tr><th>campaign</th><th>run</th><th>done</th><th>elapsed</th><th>rate/s</th><th>retries</th><th>hangs</th><th>quarantined</th><th>workers</th><th>store p95</th></tr>
{{range .Campaigns}}{{$c := .Report.Campaign}}{{with .LastRun}}
<tr><td>{{$c}}</td><td>{{.RunID}}</td><td>{{.Done}}/{{.Total}}</td><td>{{dur .ElapsedNs}}</td>
<td>{{rate .}}</td><td>{{.Retries}}</td><td>{{.Hangs}}</td><td>{{.Quarantined}}</td>
<td>{{.Workers}}</td><td>{{dur .StoreP95Ns}}</td></tr>
{{end}}{{end}}
</table>

<h2>Phase durations (latest run)</h2>
<table>
<tr><th>campaign</th>{{range $i := .PhaseIndexes}}<th>{{phase $i}}</th>{{end}}</tr>
{{range .Campaigns}}{{$c := .Report.Campaign}}{{with .LastRun}}
<tr><td>{{$c}}</td>{{range .PhaseNs}}<td>{{dur .}}</td>{{end}}</tr>
{{end}}{{end}}
</table>

{{range .Campaigns}}{{if .Locations}}
<h2>Top locations: {{.Report.Campaign}}</h2>
<table>
<tr><th>location</th><th>total</th><th>detected</th><th>escaped</th><th>latent</th><th>overwritten</th></tr>
{{range top .}}
<tr><td>{{.Location}}</td><td>{{.Total}}</td><td>{{out . "detected"}}</td><td>{{out . "escaped"}}</td><td>{{out . "latent"}}</td><td>{{out . "overwritten"}}</td></tr>
{{end}}
</table>
{{end}}{{end}}
</body>
</html>
`))

// htmlReport wraps CrossReport with the phase-axis helper the template needs.
type htmlReport struct {
	CrossReport
	PhaseIndexes []int
}

// WriteHTML renders the comparison as one self-contained HTML document.
func (c CrossReport) WriteHTML(w io.Writer) error {
	v := htmlReport{CrossReport: c}
	for p := 0; p < int(obsv.NumPhases); p++ {
		v.PhaseIndexes = append(v.PhaseIndexes, p)
	}
	return reportTemplate.Execute(w, v)
}

// ratePerSec is the run's completion rate (done experiments per second).
func ratePerSec(r dbase.RunMetricsRow) float64 {
	if r.ElapsedNs <= 0 {
		return 0
	}
	return float64(r.Done) / (float64(r.ElapsedNs) / 1e9)
}

// pctOf renders a proportion, or "-" when its denominator is empty.
func pctOf(v float64, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

// ciOf renders a Wilson interval, or "-" when its denominator is empty.
func ciOf(ci Interval, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%–%.1f%%", 100*ci.Lo, 100*ci.Hi)
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// fmtNs renders nanoseconds compactly for the report tables.
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(time.Second))
	}
}
