package sqldb

// This file defines the abstract syntax tree produced by the parser.

type statement interface{ stmt() }

// exprNode is any SQL expression.
type exprNode interface{ expr() }

// --- Statements ---

type createTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []columnDef
	PrimaryKey  []string     // column names; may come from inline PRIMARY KEY
	ForeignKeys []foreignKey // table-level constraints
}

type columnDef struct {
	Name    string
	Type    ColType
	NotNull bool
	Unique  bool
	Default *Value // nil when no DEFAULT clause
}

type foreignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

type dropTableStmt struct {
	Name     string
	IfExists bool
}

type insertStmt struct {
	Table   string
	Columns []string // empty means "all columns, declared order"
	Rows    [][]exprNode
}

type selectStmt struct {
	Distinct bool
	Items    []selectItem
	From     *fromClause // nil for e.g. SELECT 1+1
	Where    exprNode    // nil when absent
	GroupBy  []exprNode
	Having   exprNode
	OrderBy  []orderKey
	Limit    exprNode // nil when absent
	Offset   exprNode
}

type selectItem struct {
	Star      bool   // SELECT * or tbl.*
	StarTable string // non-empty for tbl.*
	Expr      exprNode
	Alias     string
}

type fromClause struct {
	Table string
	Alias string
	Joins []joinClause
}

type joinClause struct {
	Left  bool // LEFT JOIN vs INNER JOIN
	Table string
	Alias string
	On    exprNode
}

type orderKey struct {
	Expr exprNode
	Desc bool
}

type updateStmt struct {
	Table string
	Sets  []setClause
	Where exprNode
}

type setClause struct {
	Column string
	Value  exprNode
}

type deleteStmt struct {
	Table string
	Where exprNode
}

func (*createTableStmt) stmt() {}
func (*dropTableStmt) stmt()   {}
func (*insertStmt) stmt()      {}
func (*selectStmt) stmt()      {}
func (*updateStmt) stmt()      {}
func (*deleteStmt) stmt()      {}

// --- Expressions ---

type literalExpr struct{ Val Value }

type paramExpr struct{ Index int } // 0-based index into the args slice

type columnExpr struct {
	Table  string // optional qualifier
	Column string
}

type unaryExpr struct {
	Op string // "-" or "NOT"
	X  exprNode
}

type binaryExpr struct {
	Op   string // + - * / % = <> < <= > >= AND OR LIKE ||
	L, R exprNode
}

type isNullExpr struct {
	X   exprNode
	Not bool // IS NOT NULL
}

type inExpr struct {
	X    exprNode
	List []exprNode
	Not  bool
}

// betweenExpr is `X [NOT] BETWEEN Lo AND Hi`.
type betweenExpr struct {
	X, Lo, Hi exprNode
	Not       bool
}

// funcExpr is an aggregate or scalar function call.
type funcExpr struct {
	Name string // upper-cased: COUNT, SUM, AVG, MIN, MAX
	Star bool   // COUNT(*)
	Arg  exprNode
}

func (*literalExpr) expr() {}
func (*paramExpr) expr()   {}
func (*columnExpr) expr()  {}
func (*unaryExpr) expr()   {}
func (*binaryExpr) expr()  {}
func (*isNullExpr) expr()  {}
func (*inExpr) expr()      {}
func (*betweenExpr) expr() {}
func (*funcExpr) expr()    {}
