package sqldb

import (
	"fmt"
	"strings"
)

// rowEnv is the naming environment an expression is evaluated in: a flat
// slice of values with a map from (optionally qualified) column names to
// slice positions.
type rowEnv struct {
	// cols maps lower-cased "alias.col" and, when unambiguous, bare "col"
	// to an index in vals. Ambiguous bare names map to -1.
	cols map[string]int
	vals []Value
	args []Value
}

func (env *rowEnv) lookup(table, column string) (int, error) {
	var key string
	if table != "" {
		key = strings.ToLower(table) + "." + strings.ToLower(column)
	} else {
		key = strings.ToLower(column)
	}
	idx, ok := env.cols[key]
	if !ok {
		return 0, fmt.Errorf("no such column: %s", displayName(table, column))
	}
	if idx < 0 {
		return 0, fmt.Errorf("ambiguous column name: %s", displayName(table, column))
	}
	return idx, nil
}

func displayName(table, column string) string {
	if table != "" {
		return table + "." + column
	}
	return column
}

// evalExpr evaluates a non-aggregate expression in the environment.
func evalExpr(e exprNode, env *rowEnv) (Value, error) {
	switch x := e.(type) {
	case *literalExpr:
		return x.Val, nil
	case *paramExpr:
		if x.Index >= len(env.args) {
			return Value{}, fmt.Errorf("statement requires at least %d parameters, got %d", x.Index+1, len(env.args))
		}
		return env.args[x.Index], nil
	case *columnExpr:
		idx, err := env.lookup(x.Table, x.Column)
		if err != nil {
			return Value{}, err
		}
		return env.vals[idx], nil
	case *unaryExpr:
		return evalUnary(x, env)
	case *binaryExpr:
		return evalBinary(x, env)
	case *isNullExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return Value{}, err
		}
		return Bool(v.IsNull() != x.Not), nil
	case *inExpr:
		return evalIn(x, env)
	case *betweenExpr:
		return evalBetween(x, env)
	case *funcExpr:
		return Value{}, fmt.Errorf("aggregate function %s used outside aggregate context", x.Name)
	default:
		return Value{}, fmt.Errorf("unsupported expression node %T", e)
	}
}

func evalUnary(x *unaryExpr, env *rowEnv) (Value, error) {
	v, err := evalExpr(x.X, env)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "-":
		if v.IsNull() {
			return Null(), nil
		}
		switch v.Kind {
		case KindInt:
			return Int64(-v.Int), nil
		case KindReal:
			return Float64(-v.Real), nil
		default:
			return Value{}, fmt.Errorf("cannot negate %s", v.Kind)
		}
	case "NOT":
		if v.IsNull() {
			return Null(), nil
		}
		return Bool(!v.IsTruthy()), nil
	default:
		return Value{}, fmt.Errorf("unknown unary operator %q", x.Op)
	}
}

func evalBinary(x *binaryExpr, env *rowEnv) (Value, error) {
	// AND/OR get short-circuit treatment with SQL three-valued logic.
	switch x.Op {
	case "AND", "OR":
		return evalLogical(x, env)
	}
	l, err := evalExpr(x.L, env)
	if err != nil {
		return Value{}, err
	}
	r, err := evalExpr(x.R, env)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		return evalArith(x.Op, l, r)
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Text(l.String() + r.String()), nil
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c, ok := l.Compare(r)
		if !ok {
			// Incomparable kinds: SQL engines treat as simply unequal.
			return Bool(x.Op == "<>"), nil
		}
		switch x.Op {
		case "=":
			return Bool(c == 0), nil
		case "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(likeMatch(r.String(), l.String())), nil
	default:
		return Value{}, fmt.Errorf("unknown binary operator %q", x.Op)
	}
}

func evalLogical(x *binaryExpr, env *rowEnv) (Value, error) {
	l, err := evalExpr(x.L, env)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "AND":
		if !l.IsNull() && !l.IsTruthy() {
			return Bool(false), nil
		}
	case "OR":
		if !l.IsNull() && l.IsTruthy() {
			return Bool(true), nil
		}
	}
	r, err := evalExpr(x.R, env)
	if err != nil {
		return Value{}, err
	}
	// Three-valued logic combination.
	lt, ln := l.IsTruthy(), l.IsNull()
	rt, rn := r.IsTruthy(), r.IsNull()
	if x.Op == "AND" {
		switch {
		case (!ln && !lt) || (!rn && !rt):
			return Bool(false), nil
		case ln || rn:
			return Null(), nil
		default:
			return Bool(true), nil
		}
	}
	switch {
	case (!ln && lt) || (!rn && rt):
		return Bool(true), nil
	case ln || rn:
		return Null(), nil
	default:
		return Bool(false), nil
	}
}

func evalArith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	if l.Kind == KindInt && r.Kind == KindInt {
		switch op {
		case "+":
			return Int64(l.Int + r.Int), nil
		case "-":
			return Int64(l.Int - r.Int), nil
		case "*":
			return Int64(l.Int * r.Int), nil
		case "/":
			if r.Int == 0 {
				return Null(), nil
			}
			return Int64(l.Int / r.Int), nil
		case "%":
			if r.Int == 0 {
				return Null(), nil
			}
			return Int64(l.Int % r.Int), nil
		}
	}
	lf, err := l.AsReal()
	if err != nil {
		return Value{}, fmt.Errorf("arithmetic on %s: %w", l.Kind, err)
	}
	rf, err := r.AsReal()
	if err != nil {
		return Value{}, fmt.Errorf("arithmetic on %s: %w", r.Kind, err)
	}
	switch op {
	case "+":
		return Float64(lf + rf), nil
	case "-":
		return Float64(lf - rf), nil
	case "*":
		return Float64(lf * rf), nil
	case "/":
		if rf == 0 {
			return Null(), nil
		}
		return Float64(lf / rf), nil
	case "%":
		if int64(rf) == 0 {
			return Null(), nil
		}
		return Int64(int64(lf) % int64(rf)), nil
	}
	return Value{}, fmt.Errorf("unknown arithmetic operator %q", op)
}

func evalIn(x *inExpr, env *rowEnv) (Value, error) {
	v, err := evalExpr(x.X, env)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, item := range x.List {
		iv, err := evalExpr(item, env)
		if err != nil {
			return Value{}, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if v.Equal(iv) {
			return Bool(!x.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(x.Not), nil
}

func evalBetween(x *betweenExpr, env *rowEnv) (Value, error) {
	v, err := evalExpr(x.X, env)
	if err != nil {
		return Value{}, err
	}
	lo, err := evalExpr(x.Lo, env)
	if err != nil {
		return Value{}, err
	}
	hi, err := evalExpr(x.Hi, env)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return Null(), nil
	}
	cl, ok1 := v.Compare(lo)
	ch, ok2 := v.Compare(hi)
	if !ok1 || !ok2 {
		return Bool(x.Not), nil // incomparable kinds: not between
	}
	in := cl >= 0 && ch <= 0
	return Bool(in != x.Not), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char),
// matching case-insensitively over ASCII as common engines do.
func likeMatch(pattern, s string) bool {
	return likeMatchFold(strings.ToLower(pattern), strings.ToLower(s))
}

func likeMatchFold(p, s string) bool {
	// Iterative matcher with backtracking over the last %.
	var pi, si int
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// containsAggregate reports whether the expression tree contains an
// aggregate function call.
func containsAggregate(e exprNode) bool {
	switch x := e.(type) {
	case *funcExpr:
		return true
	case *unaryExpr:
		return containsAggregate(x.X)
	case *binaryExpr:
		return containsAggregate(x.L) || containsAggregate(x.R)
	case *isNullExpr:
		return containsAggregate(x.X)
	case *inExpr:
		if containsAggregate(x.X) {
			return true
		}
		for _, it := range x.List {
			if containsAggregate(it) {
				return true
			}
		}
	case *betweenExpr:
		return containsAggregate(x.X) || containsAggregate(x.Lo) || containsAggregate(x.Hi)
	}
	return false
}

// evalAggregate evaluates an expression in aggregate context over the rows
// of one group. Bare columns evaluate against the group's first row.
func evalAggregate(e exprNode, group []*rowEnv) (Value, error) {
	if len(group) == 0 {
		return Null(), nil
	}
	switch x := e.(type) {
	case *funcExpr:
		return evalAggFunc(x, group)
	case *unaryExpr:
		inner, err := evalAggregate(x.X, group)
		if err != nil {
			return Value{}, err
		}
		return evalUnary(&unaryExpr{Op: x.Op, X: &literalExpr{Val: inner}}, group[0])
	case *binaryExpr:
		l, err := evalAggregate(x.L, group)
		if err != nil {
			return Value{}, err
		}
		r, err := evalAggregate(x.R, group)
		if err != nil {
			return Value{}, err
		}
		return evalBinary(&binaryExpr{Op: x.Op, L: &literalExpr{Val: l}, R: &literalExpr{Val: r}}, group[0])
	case *isNullExpr:
		inner, err := evalAggregate(x.X, group)
		if err != nil {
			return Value{}, err
		}
		return Bool(inner.IsNull() != x.Not), nil
	default:
		return evalExpr(e, group[0])
	}
}

func evalAggFunc(x *funcExpr, group []*rowEnv) (Value, error) {
	if x.Star { // COUNT(*)
		return Int64(int64(len(group))), nil
	}
	var (
		count  int64
		sumI   int64
		sumF   float64
		isReal bool
		minV   Value
		maxV   Value
	)
	for _, env := range group {
		v, err := evalExpr(x.Arg, env)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		count++
		switch x.Name {
		case "SUM", "AVG":
			switch v.Kind {
			case KindInt:
				sumI += v.Int
				sumF += float64(v.Int)
			case KindReal:
				isReal = true
				sumF += v.Real
			default:
				f, err := v.AsReal()
				if err != nil {
					return Value{}, fmt.Errorf("%s over %s: %w", x.Name, v.Kind, err)
				}
				isReal = true
				sumF += f
			}
		case "MIN":
			if minV.IsNull() {
				minV = v
			} else if c, ok := v.Compare(minV); ok && c < 0 {
				minV = v
			}
		case "MAX":
			if maxV.IsNull() {
				maxV = v
			} else if c, ok := v.Compare(maxV); ok && c > 0 {
				maxV = v
			}
		}
	}
	switch x.Name {
	case "COUNT":
		return Int64(count), nil
	case "SUM":
		if count == 0 {
			return Null(), nil
		}
		if isReal {
			return Float64(sumF), nil
		}
		return Int64(sumI), nil
	case "AVG":
		if count == 0 {
			return Null(), nil
		}
		return Float64(sumF / float64(count)), nil
	case "MIN":
		return minV, nil
	case "MAX":
		return maxV, nil
	default:
		return Value{}, fmt.Errorf("unknown aggregate %q", x.Name)
	}
}
