// Package sqldb implements the embedded, SQL-compatible relational database
// that GOOFI stores all of its data in (paper §1, §2.3).
//
// The engine supports a pragmatic SQL subset sufficient for the GOOFI schema
// of Fig. 4 and for the analysis phase of §3.4: CREATE TABLE with PRIMARY KEY
// and enforced FOREIGN KEY constraints, INSERT, SELECT with WHERE / INNER
// JOIN / GROUP BY / aggregates / ORDER BY / LIMIT, UPDATE, DELETE, and `?`
// parameter placeholders. Databases persist to a single file.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// ColType enumerates the column types supported by the engine.
type ColType int

// Supported column types.
const (
	TypeInteger ColType = iota + 1
	TypeReal
	TypeText
	TypeBlob
)

// String returns the SQL name of the type.
func (t ColType) String() string {
	switch t {
	case TypeInteger:
		return "INTEGER"
	case TypeReal:
		return "REAL"
	case TypeText:
		return "TEXT"
	case TypeBlob:
		return "BLOB"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// ValueKind tags the dynamic type held by a Value.
type ValueKind int

// Value kinds. KindNull is deliberately the zero value so that a zero Value
// is SQL NULL.
const (
	KindNull ValueKind = iota
	KindInt
	KindReal
	KindText
	KindBlob
)

// Value is a single SQL value: NULL, INTEGER, REAL, TEXT or BLOB.
type Value struct {
	Kind ValueKind
	Int  int64
	Real float64
	Text string
	Blob []byte
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int64 returns an INTEGER value.
func Int64(v int64) Value { return Value{Kind: KindInt, Int: v} }

// Float64 returns a REAL value.
func Float64(v float64) Value { return Value{Kind: KindReal, Real: v} }

// Text returns a TEXT value.
func Text(v string) Value { return Value{Kind: KindText, Text: v} }

// Blob returns a BLOB value. The slice is copied so later caller mutations
// cannot corrupt stored rows.
func Blob(v []byte) Value {
	b := make([]byte, len(v))
	copy(b, v)
	return Value{Kind: KindBlob, Blob: b}
}

// Bool returns the engine's boolean encoding (INTEGER 0 or 1).
func Bool(v bool) Value {
	if v {
		return Int64(1)
	}
	return Int64(0)
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsTruthy reports whether the value counts as true in a WHERE clause.
// NULL is not truthy.
func (v Value) IsTruthy() bool {
	switch v.Kind {
	case KindInt:
		return v.Int != 0
	case KindReal:
		return v.Real != 0
	case KindText:
		return v.Text != ""
	case KindBlob:
		return len(v.Blob) > 0
	default:
		return false
	}
}

// AsInt converts the value to int64 where possible.
func (v Value) AsInt() (int64, error) {
	switch v.Kind {
	case KindInt:
		return v.Int, nil
	case KindReal:
		return int64(v.Real), nil
	case KindText:
		n, err := strconv.ParseInt(strings.TrimSpace(v.Text), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("convert %q to INTEGER: %w", v.Text, err)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("cannot convert %s to INTEGER", v.Kind)
	}
}

// AsReal converts the value to float64 where possible.
func (v Value) AsReal() (float64, error) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), nil
	case KindReal:
		return v.Real, nil
	case KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Text), 64)
		if err != nil {
			return 0, fmt.Errorf("convert %q to REAL: %w", v.Text, err)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("cannot convert %s to REAL", v.Kind)
	}
}

// String renders the value roughly as SQL would display it.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindReal:
		return strconv.FormatFloat(v.Real, 'g', -1, 64)
	case KindText:
		return v.Text
	case KindBlob:
		return fmt.Sprintf("x'%x'", v.Blob)
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.Kind))
	}
}

// String returns a readable name for the kind.
func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindReal:
		return "REAL"
	case KindText:
		return "TEXT"
	case KindBlob:
		return "BLOB"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// Equal reports SQL equality between two values (NULL never equals anything,
// including NULL; use IsNull for NULL checks). Numeric kinds compare across
// INTEGER/REAL.
func (v Value) Equal(o Value) bool {
	c, ok := compareValues(v, o)
	return ok && c == 0
}

// Compare orders two values. It returns (cmp, ok); ok is false when either
// value is NULL or the kinds are incomparable. cmp is -1, 0 or 1.
func (v Value) Compare(o Value) (int, bool) {
	return compareValues(v, o)
}

func compareValues(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	// Numeric cross-kind comparison.
	if (a.Kind == KindInt || a.Kind == KindReal) && (b.Kind == KindInt || b.Kind == KindReal) {
		if a.Kind == KindInt && b.Kind == KindInt {
			return cmpInt(a.Int, b.Int), true
		}
		af, _ := a.AsReal()
		bf, _ := b.AsReal()
		return cmpFloat(af, bf), true
	}
	if a.Kind != b.Kind {
		return 0, false
	}
	switch a.Kind {
	case KindText:
		return strings.Compare(a.Text, b.Text), true
	case KindBlob:
		return strings.Compare(string(a.Blob), string(b.Blob)), true
	default:
		return 0, false
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// key returns a map key uniquely identifying the value for PRIMARY KEY and
// GROUP BY purposes. Integers and reals that are numerically equal map to the
// same key.
func (v Value) key() string {
	switch v.Kind {
	case KindNull:
		return "n"
	case KindInt:
		return "i" + strconv.FormatInt(v.Int, 10)
	case KindReal:
		if v.Real == float64(int64(v.Real)) {
			return "i" + strconv.FormatInt(int64(v.Real), 10)
		}
		return "r" + strconv.FormatFloat(v.Real, 'b', -1, 64)
	case KindText:
		return "t" + v.Text
	case KindBlob:
		return "b" + string(v.Blob)
	default:
		return "?"
	}
}

// coerce adapts a value to a column type on INSERT/UPDATE, mirroring the lax
// affinity rules of common embedded SQL engines.
func coerce(v Value, t ColType) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case TypeInteger:
		switch v.Kind {
		case KindInt:
			return v, nil
		case KindReal:
			return Int64(int64(v.Real)), nil
		default:
			n, err := v.AsInt()
			if err != nil {
				return Value{}, err
			}
			return Int64(n), nil
		}
	case TypeReal:
		f, err := v.AsReal()
		if err != nil {
			return Value{}, err
		}
		return Float64(f), nil
	case TypeText:
		switch v.Kind {
		case KindText:
			return v, nil
		case KindBlob:
			return Text(string(v.Blob)), nil
		default:
			return Text(v.String()), nil
		}
	case TypeBlob:
		switch v.Kind {
		case KindBlob:
			return v, nil
		case KindText:
			return Blob([]byte(v.Text)), nil
		default:
			return Value{}, fmt.Errorf("cannot store %s in BLOB column", v.Kind)
		}
	default:
		return Value{}, fmt.Errorf("unknown column type %v", t)
	}
}
