package sqldb

import (
	"strings"
	"testing"
	"testing/quick"
)

func newPeopleDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT)")
	mustExec(t, db, `CREATE TABLE person (
		id INTEGER PRIMARY KEY, name TEXT, age INTEGER, dept INTEGER,
		FOREIGN KEY (dept) REFERENCES dept (id))`)
	mustExec(t, db, "INSERT INTO dept VALUES (1, 'hw'), (2, 'sw'), (3, 'empty')")
	mustExec(t, db, `INSERT INTO person VALUES
		(1, 'ada', 36, 2), (2, 'bob', 25, 1), (3, 'cyd', 30, 2),
		(4, 'dan', 25, NULL), (5, 'eva', 41, 1)`)
	return db
}

func TestSelectWhereComparisons(t *testing.T) {
	db := newPeopleDB(t)
	tests := []struct {
		where string
		want  int
	}{
		{"age = 25", 2},
		{"age <> 25", 3},
		{"age < 30", 2},
		{"age <= 30", 3},
		{"age > 30", 2},
		{"age >= 36", 2},
		{"name LIKE '%a%'", 3}, // ada, dan, eva
		{"name LIKE 'a__'", 1},
		{"dept IS NULL", 1},
		{"dept IS NOT NULL", 4},
		{"age IN (25, 41)", 3},
		{"age NOT IN (25, 41)", 2},
		{"age > 20 AND dept = 2", 2},
		{"age > 40 OR dept = 2", 3},
		{"NOT age = 25", 3},
	}
	for _, tt := range tests {
		t.Run(tt.where, func(t *testing.T) {
			rows := mustQuery(t, db, "SELECT id FROM person WHERE "+tt.where)
			if rows.Len() != tt.want {
				t.Fatalf("got %d rows, want %d", rows.Len(), tt.want)
			}
		})
	}
}

func TestSelectNullComparisonExcludesRows(t *testing.T) {
	db := newPeopleDB(t)
	// dept = NULL is never true — dan must not appear.
	rows := mustQuery(t, db, "SELECT id FROM person WHERE dept = NULL")
	if rows.Len() != 0 {
		t.Fatalf("NULL equality returned rows: %+v", rows.Data)
	}
}

func TestSelectExpressions(t *testing.T) {
	db := newPeopleDB(t)
	row, err := db.QueryRow("SELECT age * 2 + 1 FROM person WHERE id = 1")
	if err != nil || row[0].Int != 73 {
		t.Fatalf("row=%v err=%v", row, err)
	}
	row, err = db.QueryRow("SELECT name || '-' || age FROM person WHERE id = 2")
	if err != nil || row[0].Text != "bob-25" {
		t.Fatalf("row=%v err=%v", row, err)
	}
	row, err = db.QueryRow("SELECT -age FROM person WHERE id = 2")
	if err != nil || row[0].Int != -25 {
		t.Fatalf("row=%v err=%v", row, err)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := New()
	row, err := db.QueryRow("SELECT 1 + 1, 'x'")
	if err != nil || row[0].Int != 2 || row[1].Text != "x" {
		t.Fatalf("row=%v err=%v", row, err)
	}
}

func TestSelectOrderBy(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, "SELECT name FROM person ORDER BY age DESC, name ASC")
	var names []string
	for _, r := range rows.Data {
		names = append(names, r[0].Text)
	}
	want := "eva,ada,cyd,bob,dan"
	if strings.Join(names, ",") != want {
		t.Fatalf("order = %v, want %s", names, want)
	}
}

func TestSelectOrderByPositionAndAlias(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, "SELECT name, age AS years FROM person ORDER BY 2, years DESC")
	if rows.Data[0][1].Int != 25 {
		t.Fatalf("first row = %+v", rows.Data[0])
	}
}

func TestSelectOrderByNullsFirst(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, "SELECT id FROM person ORDER BY dept, id")
	if rows.Data[0][0].Int != 4 { // dan has NULL dept
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestSelectLimitOffset(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, "SELECT id FROM person ORDER BY id LIMIT 2")
	if rows.Len() != 2 || rows.Data[1][0].Int != 2 {
		t.Fatalf("rows = %+v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT id FROM person ORDER BY id LIMIT 2 OFFSET 3")
	if rows.Len() != 2 || rows.Data[0][0].Int != 4 {
		t.Fatalf("rows = %+v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT id FROM person ORDER BY id LIMIT 100 OFFSET 100")
	if rows.Len() != 0 {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestSelectDistinct(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, "SELECT DISTINCT age FROM person ORDER BY age")
	if rows.Len() != 4 {
		t.Fatalf("distinct ages = %+v", rows.Data)
	}
}

func TestSelectStar(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, "SELECT * FROM person WHERE id = 1")
	if len(rows.Columns) != 4 || rows.Columns[3] != "dept" {
		t.Fatalf("cols = %v", rows.Columns)
	}
}

func TestInnerJoin(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, `SELECT p.name, d.name FROM person p
		JOIN dept d ON p.dept = d.id ORDER BY p.id`)
	if rows.Len() != 4 { // dan has NULL dept, excluded
		t.Fatalf("rows = %+v", rows.Data)
	}
	if rows.Data[0][0].Text != "ada" || rows.Data[0][1].Text != "sw" {
		t.Fatalf("first = %+v", rows.Data[0])
	}
}

func TestLeftJoin(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, `SELECT p.name, d.name FROM person p
		LEFT JOIN dept d ON p.dept = d.id ORDER BY p.id`)
	if rows.Len() != 5 {
		t.Fatalf("rows = %+v", rows.Data)
	}
	if !rows.Data[3][1].IsNull() { // dan
		t.Fatalf("dan's dept = %+v", rows.Data[3])
	}
}

func TestJoinQualifiedStar(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, "SELECT d.* FROM person p JOIN dept d ON p.dept = d.id WHERE p.id = 1")
	if len(rows.Columns) != 2 || rows.Data[0][1].Text != "sw" {
		t.Fatalf("rows = %v %+v", rows.Columns, rows.Data)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := newPeopleDB(t)
	if _, err := db.Query("SELECT name FROM person p JOIN dept d ON p.dept = d.id"); err == nil {
		t.Fatal("ambiguous bare column should fail")
	}
}

func TestAggregatesWholeTable(t *testing.T) {
	db := newPeopleDB(t)
	row, err := db.QueryRow("SELECT COUNT(*), COUNT(dept), SUM(age), AVG(age), MIN(age), MAX(age) FROM person")
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int != 5 || row[1].Int != 4 { // COUNT(dept) skips NULL
		t.Fatalf("counts = %+v", row)
	}
	if row[2].Int != 157 {
		t.Fatalf("sum = %+v", row[2])
	}
	if row[3].Real != 157.0/5 {
		t.Fatalf("avg = %+v", row[3])
	}
	if row[4].Int != 25 || row[5].Int != 41 {
		t.Fatalf("min/max = %+v %+v", row[4], row[5])
	}
}

func TestAggregatesEmptyTable(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	row, err := db.QueryRow("SELECT COUNT(*), SUM(a), MIN(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int != 0 || !row[1].IsNull() || !row[2].IsNull() {
		t.Fatalf("row = %+v", row)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, `SELECT dept, COUNT(*) AS n, AVG(age) FROM person
		WHERE dept IS NOT NULL GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %+v", rows.Data)
	}
	if rows.Data[0][0].Int != 1 || rows.Data[0][1].Int != 2 || rows.Data[0][2].Real != 33 {
		t.Fatalf("dept 1 = %+v", rows.Data[0])
	}
}

func TestGroupByWithJoin(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, `SELECT d.name, COUNT(*) FROM person p
		JOIN dept d ON p.dept = d.id GROUP BY d.name ORDER BY d.name`)
	if rows.Len() != 2 || rows.Data[0][0].Text != "hw" || rows.Data[0][1].Int != 2 {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestAggregateOrderByAggregate(t *testing.T) {
	db := newPeopleDB(t)
	rows := mustQuery(t, db, `SELECT dept, COUNT(*) FROM person WHERE dept IS NOT NULL
		GROUP BY dept ORDER BY COUNT(*) DESC, dept`)
	if rows.Data[0][1].Int != 2 {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestAggregateArithmetic(t *testing.T) {
	db := newPeopleDB(t)
	row, err := db.QueryRow("SELECT MAX(age) - MIN(age) FROM person")
	if err != nil || row[0].Int != 16 {
		t.Fatalf("row=%v err=%v", row, err)
	}
	// Classification-ratio shape used by the analysis phase.
	row, err = db.QueryRow("SELECT COUNT(dept) * 100 / COUNT(*) FROM person")
	if err != nil || row[0].Int != 80 {
		t.Fatalf("row=%v err=%v", row, err)
	}
}

func TestAggregateOutsideContextFails(t *testing.T) {
	db := newPeopleDB(t)
	if _, err := db.Query("SELECT id FROM person WHERE COUNT(*) > 1"); err == nil {
		t.Fatal("aggregate in WHERE should fail")
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	db := New()
	row, err := db.QueryRow("SELECT 1 / 0, 1 % 0, 1.0 / 0")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range row {
		if !v.IsNull() {
			t.Fatalf("col %d = %v, want NULL", i, v)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	db := New()
	// NULL AND false = false; NULL OR true = true; NULL AND true = NULL.
	row, err := db.QueryRow("SELECT (NULL AND 0) IS NULL, (NULL OR 1) IS NULL, (NULL AND 1) IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int != 0 || row[1].Int != 0 || row[2].Int != 1 {
		t.Fatalf("row = %+v", row)
	}
}

func TestLikeMatcher(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "ABC", true}, // case-insensitive
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%", "", true},
		{"_", "", false},
		{"a%b%c", "axxbyyc", true},
		{"a%b%c", "axxbyy", false},
		{"", "", true},
		{"", "a", false},
	}
	for _, tt := range tests {
		if got := likeMatch(tt.pattern, tt.s); got != tt.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}

// Property: a pattern with no metacharacters matches exactly itself
// (case-insensitively).
func TestLikeLiteralProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: "%" matches everything, and prefix% matches any extension.
func TestLikePrefixProperty(t *testing.T) {
	f := func(prefix, rest string) bool {
		if strings.ContainsAny(prefix, "%_") {
			return true
		}
		return likeMatch("%", prefix+rest) && likeMatch(prefix+"%", prefix+rest)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: COUNT(*) equals the number of inserted rows for random sizes.
func TestCountMatchesInsertsProperty(t *testing.T) {
	f := func(n uint8) bool {
		db := New()
		if _, err := db.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			if _, err := db.Exec("INSERT INTO t VALUES (?)", Int64(int64(i))); err != nil {
				return false
			}
		}
		row, err := db.QueryRow("SELECT COUNT(*) FROM t")
		return err == nil && row[0].Int == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBetween(t *testing.T) {
	db := newPeopleDB(t)
	tests := []struct {
		where string
		want  int
	}{
		{"age BETWEEN 25 AND 30", 3},
		{"age BETWEEN 26 AND 29", 0},
		{"age NOT BETWEEN 25 AND 30", 2},
		{"age BETWEEN 41 AND 41", 1},
		{"name BETWEEN 'a' AND 'c'", 2}, // ada, bob ('cyd' > 'c')
		{"dept BETWEEN 1 AND 2", 4},     // dan's NULL dept excluded
	}
	for _, tt := range tests {
		t.Run(tt.where, func(t *testing.T) {
			rows := mustQuery(t, db, "SELECT id FROM person WHERE "+tt.where)
			if rows.Len() != tt.want {
				t.Fatalf("got %d rows, want %d", rows.Len(), tt.want)
			}
		})
	}
	// NULL bound yields NULL -> excluded.
	rows := mustQuery(t, db, "SELECT id FROM person WHERE age BETWEEN NULL AND 99")
	if rows.Len() != 0 {
		t.Fatalf("NULL bound returned rows: %+v", rows.Data)
	}
	// Parse errors.
	if _, err := db.Query("SELECT id FROM person WHERE age BETWEEN 1"); err == nil {
		t.Fatal("missing AND should fail")
	}
	// Renders back to parseable SQL.
	st, err := parse("SELECT a BETWEEN 1 AND 2 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rendered := exprString(st.(*selectStmt).Items[0].Expr)
	if _, err := parse("SELECT " + rendered + " FROM t"); err != nil {
		t.Fatalf("re-parse of %q failed: %v", rendered, err)
	}
}
