package sqldb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Dump serialises the whole database as a SQL script that, replayed against
// an empty database, reproduces it. Tables are emitted in creation order so
// foreign-key parents always precede children (FKs can only reference tables
// that already existed at CREATE time).
func (db *DB) Dump() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sb strings.Builder
	for _, key := range db.order {
		t := db.tables[key]
		sb.WriteString(createTableSQL(&t.def))
		sb.WriteString(";\n")
		for _, row := range t.rows {
			sb.WriteString("INSERT INTO ")
			sb.WriteString(t.def.Name)
			sb.WriteString(" VALUES (")
			for i, v := range row {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(valueSQL(v))
			}
			sb.WriteString(");\n")
		}
	}
	return sb.String()
}

func createTableSQL(def *createTableStmt) string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(def.Name)
	sb.WriteString(" (")
	for i, c := range def.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		sb.WriteString(c.Type.String())
		if c.NotNull {
			sb.WriteString(" NOT NULL")
		}
		if c.Unique {
			sb.WriteString(" UNIQUE")
		}
		if c.Default != nil {
			sb.WriteString(" DEFAULT ")
			sb.WriteString(valueSQL(*c.Default))
		}
	}
	if len(def.PrimaryKey) > 0 {
		sb.WriteString(", PRIMARY KEY (")
		sb.WriteString(strings.Join(def.PrimaryKey, ", "))
		sb.WriteString(")")
	}
	for _, fk := range def.ForeignKeys {
		sb.WriteString(", FOREIGN KEY (")
		sb.WriteString(strings.Join(fk.Columns, ", "))
		sb.WriteString(") REFERENCES ")
		sb.WriteString(fk.RefTable)
		sb.WriteString(" (")
		sb.WriteString(strings.Join(fk.RefColumns, ", "))
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}

func valueSQL(v Value) string {
	switch v.Kind {
	case KindText:
		return "'" + strings.ReplaceAll(v.Text, "'", "''") + "'"
	default:
		return v.String() // NULL, numbers, x'..' blobs are already SQL
	}
}

// ExecScript executes a multi-statement SQL script. Statements are separated
// by semicolons; semicolons inside string literals are handled. Errors abort
// the script and report the failing statement index.
func (db *DB) ExecScript(script string) error {
	stmts, err := SplitStatements(script)
	if err != nil {
		return err
	}
	for i, s := range stmts {
		if isSelect(s) {
			if _, err := db.Query(s); err != nil {
				return fmt.Errorf("script statement %d: %w", i+1, err)
			}
			continue
		}
		if _, err := db.Exec(s); err != nil {
			return fmt.Errorf("script statement %d: %w", i+1, err)
		}
	}
	return nil
}

func isSelect(s string) bool {
	// Skip leading whitespace and line comments.
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, "--") {
			break
		}
		nl := strings.IndexByte(s, '\n')
		if nl < 0 {
			return false
		}
		s = s[nl+1:]
	}
	return strings.HasPrefix(strings.ToUpper(s), "SELECT")
}

// SplitStatements splits a SQL script on top-level semicolons, respecting
// string literals and line comments. Empty statements are dropped.
func SplitStatements(script string) ([]string, error) {
	var (
		stmts []string
		start int
	)
	inString := false
	i := 0
	for i < len(script) {
		c := script[i]
		switch {
		case inString:
			if c == '\'' {
				if i+1 < len(script) && script[i+1] == '\'' {
					i++ // escaped quote
				} else {
					inString = false
				}
			}
		case c == '\'':
			inString = true
		case c == '-' && i+1 < len(script) && script[i+1] == '-':
			for i < len(script) && script[i] != '\n' {
				i++
			}
			continue
		case c == ';':
			s := strings.TrimSpace(script[start:i])
			if s != "" {
				stmts = append(stmts, s)
			}
			start = i + 1
		}
		i++
	}
	if inString {
		return nil, &SyntaxError{Pos: len(script), Msg: "unterminated string literal in script"}
	}
	if s := strings.TrimSpace(script[start:]); s != "" {
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// Save writes the database dump atomically to path.
func (db *DB) Save(path string) error {
	dump := db.Dump()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".goofidb-*")
	if err != nil {
		return fmt.Errorf("save database: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(dump); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("save database: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("save database: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("save database: %w", err)
	}
	return nil
}

// Open loads a database previously written with Save. A missing file yields
// an empty database, so first runs need no special casing.
func Open(path string) (*DB, error) {
	db := New()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return db, nil
		}
		return nil, fmt.Errorf("open database: %w", err)
	}
	if err := db.ExecScript(string(data)); err != nil {
		return nil, fmt.Errorf("open database %s: %w", path, err)
	}
	return db, nil
}
