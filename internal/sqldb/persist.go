package sqldb

import (
	"fmt"
	"os"
	"strings"

	"goofi/internal/vfs"
)

// Dump serialises the whole database as a SQL script that, replayed against
// an empty database, reproduces it. Tables are emitted in creation order so
// foreign-key parents always precede children (FKs can only reference tables
// that already existed at CREATE time).
func (db *DB) Dump() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dumpLocked()
}

func (db *DB) dumpLocked() string {
	var sb strings.Builder
	for _, key := range db.order {
		t := db.tables[key]
		sb.WriteString(createTableSQL(&t.def))
		sb.WriteString(";\n")
		for _, row := range t.rows {
			sb.WriteString("INSERT INTO ")
			sb.WriteString(t.def.Name)
			sb.WriteString(" VALUES (")
			for i, v := range row {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(valueSQL(v))
			}
			sb.WriteString(");\n")
		}
	}
	return sb.String()
}

func createTableSQL(def *createTableStmt) string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(def.Name)
	sb.WriteString(" (")
	for i, c := range def.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		sb.WriteString(c.Type.String())
		if c.NotNull {
			sb.WriteString(" NOT NULL")
		}
		if c.Unique {
			sb.WriteString(" UNIQUE")
		}
		if c.Default != nil {
			sb.WriteString(" DEFAULT ")
			sb.WriteString(valueSQL(*c.Default))
		}
	}
	if len(def.PrimaryKey) > 0 {
		sb.WriteString(", PRIMARY KEY (")
		sb.WriteString(strings.Join(def.PrimaryKey, ", "))
		sb.WriteString(")")
	}
	for _, fk := range def.ForeignKeys {
		sb.WriteString(", FOREIGN KEY (")
		sb.WriteString(strings.Join(fk.Columns, ", "))
		sb.WriteString(") REFERENCES ")
		sb.WriteString(fk.RefTable)
		sb.WriteString(" (")
		sb.WriteString(strings.Join(fk.RefColumns, ", "))
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}

func valueSQL(v Value) string {
	switch v.Kind {
	case KindText:
		return "'" + strings.ReplaceAll(v.Text, "'", "''") + "'"
	default:
		return v.String() // NULL, numbers, x'..' blobs are already SQL
	}
}

// ExecScript executes a multi-statement SQL script. Statements are separated
// by semicolons; semicolons inside string literals are handled. Errors abort
// the script and report the failing statement index.
func (db *DB) ExecScript(script string) error {
	stmts, err := SplitStatements(script)
	if err != nil {
		return err
	}
	for i, s := range stmts {
		if isSelect(s) {
			if _, err := db.Query(s); err != nil {
				return fmt.Errorf("script statement %d: %w", i+1, err)
			}
			continue
		}
		if _, err := db.Exec(s); err != nil {
			return fmt.Errorf("script statement %d: %w", i+1, err)
		}
	}
	return nil
}

func isSelect(s string) bool {
	// Skip leading whitespace and line comments.
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, "--") {
			break
		}
		nl := strings.IndexByte(s, '\n')
		if nl < 0 {
			return false
		}
		s = s[nl+1:]
	}
	return strings.HasPrefix(strings.ToUpper(s), "SELECT")
}

// SplitStatements splits a SQL script on top-level semicolons, respecting
// string literals and line comments. Empty statements are dropped.
func SplitStatements(script string) ([]string, error) {
	var (
		stmts []string
		start int
	)
	inString := false
	i := 0
	for i < len(script) {
		c := script[i]
		switch {
		case inString:
			if c == '\'' {
				if i+1 < len(script) && script[i+1] == '\'' {
					i++ // escaped quote
				} else {
					inString = false
				}
			}
		case c == '\'':
			inString = true
		case c == '-' && i+1 < len(script) && script[i+1] == '-':
			for i < len(script) && script[i] != '\n' {
				i++
			}
			continue
		case c == ';':
			s := strings.TrimSpace(script[start:i])
			if s != "" {
				stmts = append(stmts, s)
			}
			start = i + 1
		}
		i++
	}
	if inString {
		return nil, &SyntaxError{Pos: len(script), Msg: "unterminated string literal in script"}
	}
	if s := strings.TrimSpace(script[start:]); s != "" {
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// generationHeader is the comment line leading every saved image that names
// the image's generation. The SQL lexer skips line comments, so the header is
// invisible to replay; Open parses it to decide whether a sidecar WAL extends
// this image or predates it.
func generationHeader(gen uint64) string {
	return fmt.Sprintf("-- goofi generation %d\n", gen)
}

// parseGeneration extracts the generation from an image's header line.
// Headerless images (written before WAL support) are generation 0.
func parseGeneration(data string) uint64 {
	const prefix = "-- goofi generation "
	if !strings.HasPrefix(data, prefix) {
		return 0
	}
	rest := data[len(prefix):]
	var gen uint64
	for i := 0; i < len(rest) && rest[i] >= '0' && rest[i] <= '9'; i++ {
		gen = gen*10 + uint64(rest[i]-'0')
	}
	return gen
}

// writeFileDurable atomically and durably replaces path with data through
// the database's VFS — see vfs.WriteFileDurable for the fsync protocol.
func (db *DB) writeFileDurable(path string, data []byte) error {
	return vfs.WriteFileDurable(db.fsys(), path, data)
}

// fsys returns the database's filesystem, defaulting to the real one for DBs
// constructed before the seam existed (zero values in tests).
func (db *DB) fsys() vfs.FS {
	if db.fs == nil {
		return vfs.OS{}
	}
	return db.fs
}

// Save writes the database dump durably and atomically to path. On a
// WAL-backed database saving to its own path this is a checkpoint: the WAL is
// folded into the image and truncated. Every successful save advances the
// image generation, so a sidecar WAL left beside path by an earlier
// incarnation is recognised as stale and never replayed over data it is
// already part of. A failed save rolls the generation bump back: the on-disk
// image still carries the old generation, and leaving the in-memory counter
// ahead would make the *next* save write an image whose generation skips a
// step while the sidecar WAL still names the current one.
func (db *DB) Save(path string) error {
	if db.wal != nil && path == db.path {
		return db.Checkpoint()
	}
	db.mu.Lock()
	db.generation++
	gen := db.generation
	data := generationHeader(gen) + db.dumpLocked()
	db.mu.Unlock()
	if err := db.writeFileDurable(path, []byte(data)); err != nil {
		db.mu.Lock()
		// Roll back only if no concurrent save advanced past us.
		if db.generation == gen {
			db.generation = gen - 1
		}
		db.mu.Unlock()
		return fmt.Errorf("save database: %w", err)
	}
	return nil
}

// loadImage reads the dump image at path into db and returns its generation.
// A missing file is an empty generation-0 database.
func (db *DB) loadImage(path string) (uint64, error) {
	data, err := db.fsys().ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("open database: %w", err)
	}
	if err := db.ExecScript(string(data)); err != nil {
		return 0, fmt.Errorf("open database %s: %w", path, err)
	}
	return parseGeneration(string(data)), nil
}

// applyWALRecord executes one recovered statement without re-logging it.
func (db *DB) applyWALRecord(sql string, args []Value) error {
	_, err := db.exec(sql, args, false)
	return err
}

// Open loads a database previously written with Save. A missing file yields
// an empty database, so first runs need no special casing. If a sidecar
// write-ahead log (<path>.wal) from the image's generation exists — a WAL
// session that crashed before its final checkpoint — its records are replayed
// so every reader sees the crash-consistent state; the log itself is left for
// the next WAL open to truncate.
func Open(path string) (*DB, error) {
	return OpenFS(path, vfs.OS{})
}

// OpenFS is Open over an explicit filesystem — the storage-fault seam. Tests
// and `goofi run -storage-chaos` pass a vfs.Faulty; everything else uses
// vfs.OS via Open.
func OpenFS(path string, fsys vfs.FS) (*DB, error) {
	db := New()
	db.path = path
	db.fs = fsys
	gen, err := db.loadImage(path)
	if err != nil {
		return nil, err
	}
	db.generation = gen
	if _, err := replaySidecarWAL(fsys, path, gen, db.applyWALRecord); err != nil {
		return nil, fmt.Errorf("open database %s: %w", path, err)
	}
	return db, nil
}

// OpenWithWAL opens the database at path in write-ahead-logging mode: the
// image is loaded, a matching-generation <path>.wal is replayed (recovering
// anything a crash left unfolded) with any torn tail truncated, and every
// subsequent mutation is appended to the log by a group-commit goroutine
// before Exec returns. Close flushes and detaches the log; Save (to path) and
// Checkpoint fold it into the image.
func OpenWithWAL(path string, opts WALOptions) (*DB, error) {
	return OpenWithWALFS(path, vfs.OS{}, opts)
}

// OpenWithWALFS is OpenWithWAL over an explicit filesystem: dump image, WAL
// sidecar, checkpoints and group commits all route through fsys.
func OpenWithWALFS(path string, fsys vfs.FS, opts WALOptions) (*DB, error) {
	db := New()
	db.path = path
	db.fs = fsys
	gen, err := db.loadImage(path)
	if err != nil {
		return nil, err
	}
	db.generation = gen
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 1
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	w, err := openWAL(fsys, path+".wal", gen, opts, db.applyWALRecord)
	if err != nil {
		return nil, fmt.Errorf("open database %s: %w", path, err)
	}
	db.wal = w
	db.walOpts = w.opts
	go w.run()
	return db, nil
}
