// Write-ahead logging for the embedded database.
//
// A WAL-backed database appends every mutating statement — SQL text plus
// bound parameters — to an append-only log file (<db>.wal) as length-prefixed,
// CRC-framed records. A single committer goroutine performs group commit:
// concurrent committers enqueue records under the database lock (preserving
// execution order) and block on a ticket while the committer coalesces
// everything pending into one write and, per the sync policy, one fsync. A
// store flush therefore costs O(batch) — one log append — no matter how many
// rows the database already holds; the whole-file dump is only rewritten when
// the WAL is folded into it by a checkpoint.
//
// Crash consistency hangs on one number, the generation. The dump image
// carries its generation in a leading SQL comment; the WAL header carries the
// generation of the image it extends. Open replays the WAL over the image only
// when the two match. A checkpoint durably writes the new image (generation
// N+1) and only then resets the WAL to generation N+1 — a crash between the
// two steps leaves a stale WAL that the next open discards, never a record
// applied twice. Replay stops cleanly at a torn tail (short frame or CRC
// mismatch), which by the ack protocol can only hold records that were never
// acknowledged.
package sqldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"goofi/internal/obsv"
	"goofi/internal/vfs"
)

// WALOptions tunes a write-ahead-logged database.
type WALOptions struct {
	// SyncEvery is the group-commit sync policy: fsync after every Nth
	// commit batch. At 1 (and below, the default) every batch is fsynced
	// before its committers are acknowledged — an acknowledged write
	// survives SIGKILL. Above 1, batches are acknowledged after the write
	// and the fsync is deferred until SyncEvery batches or SyncInterval
	// have accumulated, trading the durability of the last few batches for
	// fewer fsyncs.
	SyncEvery int
	// SyncInterval bounds how long a deferred fsync (SyncEvery > 1) may lag
	// behind its write. Zero means DefaultSyncInterval.
	SyncInterval time.Duration
	// CheckpointBytes is the WAL size that triggers an automatic checkpoint
	// (fold the log into the dump image and truncate it). Zero means
	// DefaultCheckpointBytes; negative disables automatic checkpointing.
	CheckpointBytes int64
}

// Defaults for WALOptions zero values.
const (
	DefaultSyncInterval    = 2 * time.Millisecond
	DefaultCheckpointBytes = 8 << 20
)

// WAL file framing.
const (
	walMagic      = "GWAL"
	walVersion    = 1
	walHeaderSize = 16 // magic[4] version[4] generation[8]
	walFrameSize  = 8  // payloadLen[4] crc[4]
	// maxWALPayload rejects absurd frame lengths during replay so a
	// corrupted length field cannot drive a giant allocation.
	maxWALPayload = 64 << 20
)

// walCommitTID is the virtual thread id the committer's wal-append phase
// spans are recorded under: the WAL has its own goroutine, so the phase stays
// a leaf on its own timeline lane (-1, below the coordinator's 0).
const walCommitTID int32 = -1

// WALStats is a point-in-time summary of WAL activity, for logging and tests.
type WALStats struct {
	// Records and Bytes count appended statement records and their framed
	// size; CommitBatches counts group-commit rounds and Fsyncs the rounds
	// that ended in an fsync.
	Records, Bytes, CommitBatches, Fsyncs int64
	// IORetries counts transient storage faults the committer absorbed by
	// retrying (truncating any torn prefix first) instead of going sticky.
	IORetries int64
	// Replayed counts records applied by recovery at open.
	Replayed int64
	// Checkpoints counts WAL truncations (explicit and automatic).
	Checkpoints int64
	// Size is the current WAL file size in bytes, including frames not yet
	// handed to the committer.
	Size int64
	// Generation is the image generation the WAL currently extends.
	Generation uint64
}

// walAck is the committer's acknowledgement of one appended record: which
// commit batch made it durable, whether that batch ended in an fsync (false
// under a deferred sync policy), and the batch's write error if any. The
// batch id is what provenance tracing joins on — a row's wide event names the
// batch that carried it, and the batch's own wal-commit event carries the
// record/byte/sync detail.
type walAck struct {
	batch  int64
	synced bool
	err    error
}

// walWaiter is one committer blocked in a ticket until its record's batch is
// acknowledged.
type walWaiter struct{ ch chan walAck }

// walReset is a checkpoint's request to discard the log and start a new
// generation. It is processed by the committer goroutine, which owns the file.
type walReset struct {
	gen   uint64
	reply chan error
}

// wal is the append-only log behind one DB. All file I/O happens on the
// committer goroutine; producers only append to the pending buffer.
type wal struct {
	path string
	fsys vfs.FS
	opts WALOptions

	mu      sync.Mutex
	pending []byte
	waiters []walWaiter
	resets  []walReset
	failed  error // sticky I/O failure: all subsequent appends fail fast

	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	// size includes pending-but-unwritten bytes so the auto-checkpoint
	// trigger sees growth promptly.
	size atomic.Int64

	rec atomic.Pointer[obsv.Recorder]

	records, bytes, batches, fsyncs, replayed, checkpoints, ioRetries atomic.Int64

	// Committer-owned state.
	f          vfs.File
	fileEnd    int64 // logical end of the log: offset just past the last durable-intent byte
	generation uint64
	unsynced   int       // commit batches since the last fsync
	lastSync   time.Time // of the last fsync
}

// --- record codec ---

// appendWALPayload encodes one statement record: the SQL text and its bound
// parameters.
func appendWALPayload(dst []byte, sql string, args []Value) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sql)))
	dst = append(dst, sql...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(args)))
	for _, v := range args {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case KindInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int))
		case KindReal:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Real))
		case KindText:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.Text)))
			dst = append(dst, v.Text...)
		case KindBlob:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.Blob)))
			dst = append(dst, v.Blob...)
		}
	}
	return dst
}

// decodeWALPayload is the inverse of appendWALPayload. Every read is
// bounds-checked: arbitrary bytes decode to an error, never a panic.
func decodeWALPayload(p []byte) (string, []Value, error) {
	cur := walCursor{buf: p}
	sqlLen := cur.u32()
	sql := cur.bytes(int64(sqlLen))
	argc := cur.u32()
	if cur.err != nil {
		return "", nil, cur.err
	}
	// Each argument needs at least its kind byte; reject counts the
	// remaining bytes cannot possibly hold.
	if int64(argc) > int64(len(cur.buf)-cur.off) {
		return "", nil, fmt.Errorf("wal record: %d args in %d remaining bytes", argc, len(cur.buf)-cur.off)
	}
	args := make([]Value, 0, argc)
	for i := uint32(0); i < argc && cur.err == nil; i++ {
		switch kind := ValueKind(cur.u8()); kind {
		case KindNull:
			args = append(args, Null())
		case KindInt:
			args = append(args, Int64(int64(cur.u64())))
		case KindReal:
			args = append(args, Float64(math.Float64frombits(cur.u64())))
		case KindText:
			args = append(args, Text(string(cur.bytes(int64(cur.u32())))))
		case KindBlob:
			args = append(args, Blob(cur.bytes(int64(cur.u32()))))
		default:
			return "", nil, fmt.Errorf("wal record: unknown value kind %d", kind)
		}
	}
	if cur.err != nil {
		return "", nil, cur.err
	}
	if cur.off != len(cur.buf) {
		return "", nil, fmt.Errorf("wal record: %d trailing bytes", len(cur.buf)-cur.off)
	}
	return string(sql), args, nil
}

// walCursor is a bounds-checked reader over a record payload.
type walCursor struct {
	buf []byte
	off int
	err error
}

func (c *walCursor) bytes(n int64) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > int64(len(c.buf)-c.off) {
		c.err = fmt.Errorf("wal record: truncated (%d bytes wanted at offset %d of %d)", n, c.off, len(c.buf))
		return nil
	}
	b := c.buf[c.off : c.off+int(n)]
	c.off += int(n)
	return b
}

func (c *walCursor) u8() byte {
	b := c.bytes(1)
	if c.err != nil {
		return 0
	}
	return b[0]
}

func (c *walCursor) u32() uint32 {
	b := c.bytes(4)
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *walCursor) u64() uint64 {
	b := c.bytes(8)
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// appendWALFrame frames one payload: length, CRC32 (IEEE) of the payload,
// payload.
func appendWALFrame(dst []byte, sql string, args []Value) []byte {
	head := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = appendWALPayload(dst, sql, args)
	payload := dst[head+walFrameSize:]
	binary.LittleEndian.PutUint32(dst[head:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[head+4:], crc32.ChecksumIEEE(payload))
	return dst
}

func walHeader(gen uint64) []byte {
	h := make([]byte, walHeaderSize)
	copy(h, walMagic)
	binary.LittleEndian.PutUint32(h[4:], walVersion)
	binary.LittleEndian.PutUint64(h[8:], gen)
	return h
}

// --- open / replay ---

// replayWALFile reads frames from r and applies each decoded statement,
// stopping cleanly at the first torn or corrupt frame. It returns the file
// offset just past the last valid frame and the number of records applied.
// Apply errors and real read errors are reported — only EOF-shaped damage is
// the expected tail of a crash and simply where replay ends. A transient
// device error must not masquerade as a clean tail, or recovery would
// silently truncate acknowledged records.
func replayWALFile(r io.Reader, apply func(sql string, args []Value) error) (int64, int64, error) {
	br := &countingReader{r: r}
	valid := int64(walHeaderSize)
	var n int64
	var frame [walFrameSize]byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if !isEOFShaped(err) {
				return valid, n, fmt.Errorf("wal replay: read frame: %w", err)
			}
			return valid, n, nil // clean end or torn frame header
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		crc := binary.LittleEndian.Uint32(frame[4:])
		if length > maxWALPayload {
			return valid, n, nil // corrupt length: treat as tail damage
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if !isEOFShaped(err) {
				return valid, n, fmt.Errorf("wal replay: read payload: %w", err)
			}
			return valid, n, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return valid, n, nil // corrupt payload
		}
		sql, args, err := decodeWALPayload(payload)
		if err != nil {
			return valid, n, nil // framed garbage: stop before applying it
		}
		if err := apply(sql, args); err != nil {
			return valid, n, fmt.Errorf("wal replay: record %d: %w", n+1, err)
		}
		n++
		valid = int64(walHeaderSize) + br.n
	}
}

// isEOFShaped reports whether a read error means "the file ends here" — the
// one kind of failure replay is allowed to treat as a clean torn tail.
func isEOFShaped(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// replaySidecarWAL applies a matching-generation WAL beside a dump file, if
// one exists — the read-only recovery path used by plain Open so that every
// consumer of the database file (analysis, reporting, goofi-db) sees
// crash-consistent data without opting into WAL mode. A missing, empty,
// foreign or stale-generation sidecar is silently ignored.
func replaySidecarWAL(fsys vfs.FS, dbPath string, gen uint64, apply func(sql string, args []Value) error) (int64, error) {
	f, err := fsys.Open(dbPath + ".wal")
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("open wal: %w", err)
	}
	defer f.Close()
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if !isEOFShaped(err) {
			return 0, fmt.Errorf("open wal: read header: %w", err)
		}
		return 0, nil // empty or torn header: nothing durable in it
	}
	if string(hdr[:4]) != walMagic || binary.LittleEndian.Uint32(hdr[4:8]) != walVersion {
		return 0, nil
	}
	if binary.LittleEndian.Uint64(hdr[8:]) != gen {
		return 0, nil // stale log from before the image was rewritten
	}
	_, n, err := replayWALFile(f, apply)
	return n, err
}

// openWAL opens (or creates) the log at path, replays it over the database via
// apply when its generation matches gen, resets it when stale, truncates any
// torn tail, and returns the ready-to-append wal. The committer goroutine is
// not yet started.
func openWAL(fsys vfs.FS, path string, gen uint64, opts WALOptions, apply func(sql string, args []Value) error) (*wal, error) {
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open wal: %w", err)
	}
	w := &wal{
		path:       path,
		fsys:       fsys,
		opts:       opts,
		kick:       make(chan struct{}, 1),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		f:          f,
		generation: gen,
		lastSync:   time.Now(),
	}
	fail := func(err error) (*wal, error) {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("open wal: %w", err))
	}
	end := int64(walHeaderSize)
	fresh := st.Size() < walHeaderSize
	if !fresh {
		var hdr [walHeaderSize]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return fail(fmt.Errorf("open wal: read header: %w", err))
		}
		if string(hdr[:4]) != walMagic {
			return fail(fmt.Errorf("open wal: %s is not a goofi WAL", path))
		}
		if v := binary.LittleEndian.Uint32(hdr[4:8]); v != walVersion {
			return fail(fmt.Errorf("open wal: %s has unsupported version %d", path, v))
		}
		if binary.LittleEndian.Uint64(hdr[8:]) == gen {
			valid, n, err := replayWALFile(f, apply)
			if err != nil {
				return fail(err)
			}
			w.replayed.Store(n)
			end = valid
		} else {
			fresh = true // stale generation: discard the records
		}
	}
	if fresh {
		if err := f.Truncate(0); err != nil {
			return fail(fmt.Errorf("reset wal: %w", err))
		}
		if _, err := f.WriteAt(walHeader(gen), 0); err != nil {
			return fail(fmt.Errorf("reset wal: %w", err))
		}
		if err := f.Sync(); err != nil {
			return fail(fmt.Errorf("reset wal: %w", err))
		}
		// The file's *name* lives in directory metadata: without a directory
		// sync a power cut can erase a freshly created log along with every
		// record appended to it.
		if err := vfs.SyncDir(fsys, filepath.Dir(path)); err != nil {
			return fail(fmt.Errorf("open wal: %w", err))
		}
	} else if err := f.Truncate(end); err != nil { // drop any torn tail
		return fail(fmt.Errorf("truncate wal tail: %w", err))
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		return fail(fmt.Errorf("open wal: %w", err))
	}
	w.fileEnd = end
	w.size.Store(end)
	return w, nil
}

// --- producer side ---

// append enqueues one framed record for group commit, preserving the caller's
// position in the execution order (callers hold the DB lock while enqueuing).
// The returned channel delivers exactly one acknowledgement once the record's
// batch commits per the sync policy.
func (w *wal) append(sql string, args []Value) chan walAck {
	ch := make(chan walAck, 1)
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		ch <- walAck{err: err}
		return ch
	}
	before := len(w.pending)
	w.pending = appendWALFrame(w.pending, sql, args)
	w.size.Add(int64(len(w.pending) - before))
	w.waiters = append(w.waiters, walWaiter{ch: ch})
	w.mu.Unlock()
	w.wake()
	return ch
}

// reset asks the committer to discard the log and restart it at generation
// gen. Callers hold the DB lock, so no record can be enqueued between the
// request and the reply; every record already pending is covered by the dump
// image the caller just wrote, so its waiters are acknowledged successfully.
func (w *wal) reset(gen uint64) error {
	req := walReset{gen: gen, reply: make(chan error, 1)}
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return err
	}
	w.resets = append(w.resets, req)
	w.mu.Unlock()
	w.wake()
	return <-req.reply
}

func (w *wal) wake() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// close flushes and fsyncs everything pending, stops the committer and closes
// the file. A WAL that already went sticky-failed still has a live committer
// goroutine and an open descriptor: close stops and releases both, then
// reports the original failure.
func (w *wal) close() error {
	w.mu.Lock()
	prior := w.failed
	w.failed = errWALClosed
	w.mu.Unlock()
	if prior == errWALClosed {
		return nil // second close: committer already stopped, file already closed
	}
	close(w.quit)
	<-w.done
	cerr := w.f.Close()
	if prior != nil {
		return prior
	}
	return cerr
}

var errWALClosed = fmt.Errorf("sqldb: wal closed")

func (w *wal) stats() WALStats {
	return WALStats{
		Records:       w.records.Load(),
		Bytes:         w.bytes.Load(),
		CommitBatches: w.batches.Load(),
		Fsyncs:        w.fsyncs.Load(),
		IORetries:     w.ioRetries.Load(),
		Replayed:      w.replayed.Load(),
		Checkpoints:   w.checkpoints.Load(),
		Size:          w.size.Load(),
	}
}

// --- committer goroutine ---

// run is the group-commit loop. It owns the file: writes, fsyncs, and
// checkpoint resets all happen here, so they cannot race each other.
func (w *wal) run() {
	defer close(w.done)
	timer := time.NewTimer(w.opts.SyncInterval)
	timer.Stop()
	armed := false
	for {
		select {
		case <-w.kick:
		case <-timer.C:
			armed = false
			if w.unsynced > 0 {
				w.syncFile(w.rec.Load())
			}
			continue
		case <-w.quit:
			w.commit(true)
			if armed {
				timer.Stop()
			}
			return
		}
		deferred := w.commit(false)
		if deferred && !armed {
			timer.Reset(w.opts.SyncInterval)
			armed = true
		} else if !deferred && armed {
			timer.Stop()
			armed = false
		}
	}
}

// commit performs one group-commit round: swap out everything pending, write
// it in one call, fsync per policy, acknowledge the waiters, and process any
// checkpoint resets. It reports whether an fsync is still owed (deferred sync
// mode).
func (w *wal) commit(final bool) (deferred bool) {
	w.mu.Lock()
	buf, waiters, resets := w.pending, w.waiters, w.resets
	w.pending, w.waiters, w.resets = nil, nil, nil
	w.mu.Unlock()

	rec := w.rec.Load()

	if len(resets) > 0 {
		// Every pending record predates the reset request (producers hold
		// the DB lock across enqueue, and the checkpoint holds it across the
		// reset), so each is contained in the image the checkpointer just
		// wrote: acknowledge them without touching the file, then restart
		// the log at the new generation.
		for _, wt := range waiters {
			wt.ch <- walAck{batch: w.batches.Load(), synced: true}
		}
		gen := resets[len(resets)-1].gen
		err := w.resetFile(gen)
		for _, rq := range resets {
			rq.reply <- err
		}
		if err != nil {
			w.fail(err)
		}
		return false
	}

	if len(buf) == 0 {
		if final && w.unsynced > 0 {
			w.syncFile(rec)
		}
		return false
	}

	journal := rec.Journal()
	var began time.Time
	if journal != nil {
		began = time.Now()
	}
	sp := rec.Begin(obsv.PhaseWALAppend, walCommitTID)
	err := w.retryTransient(rec, func() error {
		_, werr := w.f.Write(buf)
		return werr
	}, func() error {
		// A failed write may still have landed a torn prefix; drop it and
		// restore the append position so the retry rewrites the whole batch.
		if terr := w.f.Truncate(w.fileEnd); terr != nil {
			return terr
		}
		_, serr := w.f.Seek(w.fileEnd, io.SeekStart)
		return serr
	})
	if err == nil {
		w.fileEnd += int64(len(buf))
	}
	batch := w.batches.Add(1)
	w.unsynced++
	doSync := err == nil &&
		(final || w.opts.SyncEvery <= 1 || w.unsynced >= w.opts.SyncEvery ||
			time.Since(w.lastSync) >= w.opts.SyncInterval)
	if doSync {
		if serr := w.syncFile(rec); err == nil {
			err = serr
		}
	}
	sp.End()
	if err == nil {
		w.records.Add(int64(len(waiters)))
		w.bytes.Add(int64(len(buf)))
		rec.Count("wal.records", int64(len(waiters)))
		rec.Count("wal.bytes", int64(len(buf)))
		rec.Count("wal.commit-batches", 1)
	} else {
		w.fail(err)
	}
	if journal != nil {
		// One wide event per group-commit round: rows acknowledged by this
		// batch name it (batch=N in their row-durable events), so a timeline
		// can show which fsync made each row durable.
		journal.Emit(obsv.WideEvent{
			Kind:   obsv.EvWALCommit,
			TID:    obsv.WALCommitTID,
			TimeNs: began.UnixNano(),
			DurNs:  time.Since(began).Nanoseconds(),
			Detail: fmt.Sprintf("batch=%d records=%d bytes=%d synced=%t err=%t", batch, len(waiters), len(buf), doSync, err != nil),
		})
	}
	for _, wt := range waiters {
		wt.ch <- walAck{batch: batch, synced: doSync && err == nil, err: err}
	}
	return err == nil && !doSync
}

// walIORetryLimit bounds how many times the committer retries an injected
// transient storage fault before declaring the WAL sticky-failed.
const walIORetryLimit = 3

// retryTransient runs fn, retrying transient injected storage faults (see
// vfs.IsTransient) up to walIORetryLimit times; any other error — or a real
// device error — fails on the first attempt, preserving the sticky-failure
// policy. Between attempts undo (when non-nil) repairs partial effects, e.g.
// truncating a torn write; if undo itself fails the original error is
// returned unretried.
func (w *wal) retryTransient(rec *obsv.Recorder, fn, undo func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || attempt >= walIORetryLimit || !vfs.IsTransient(err) {
			return err
		}
		if undo != nil {
			if uerr := undo(); uerr != nil {
				return err
			}
		}
		w.ioRetries.Add(1)
		rec.Count("wal.io-retries", 1)
	}
}

func (w *wal) syncFile(rec *obsv.Recorder) error {
	err := w.retryTransient(rec, w.f.Sync, nil)
	if err != nil {
		w.fail(err)
		return err
	}
	w.unsynced = 0
	w.lastSync = time.Now()
	w.fsyncs.Add(1)
	rec.Count("wal.fsyncs", 1)
	return nil
}

// resetFile truncates the log to a fresh header at generation gen. Header
// write and sync retry transient faults: a positional rewrite at offset 0
// self-repairs a torn header, so retrying is always safe here.
func (w *wal) resetFile(gen uint64) error {
	rec := w.rec.Load()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("reset wal: %w", err)
	}
	err := w.retryTransient(rec, func() error {
		_, werr := w.f.WriteAt(walHeader(gen), 0)
		return werr
	}, nil)
	if err != nil {
		return fmt.Errorf("reset wal: %w", err)
	}
	if err := w.retryTransient(rec, w.f.Sync, nil); err != nil {
		return fmt.Errorf("reset wal: %w", err)
	}
	if _, err := w.f.Seek(walHeaderSize, io.SeekStart); err != nil {
		return fmt.Errorf("reset wal: %w", err)
	}
	w.generation = gen
	w.unsynced = 0
	w.lastSync = time.Now()
	w.fileEnd = walHeaderSize
	w.size.Store(walHeaderSize)
	w.checkpoints.Add(1)
	rec.Count("wal.checkpoints", 1)
	return nil
}

// fail marks the WAL broken: producers get the error immediately instead of
// queueing records that can never become durable.
func (w *wal) fail(err error) {
	w.mu.Lock()
	if w.failed == nil {
		w.failed = fmt.Errorf("sqldb: wal failed: %w", err)
	}
	// Anything enqueued after the swap that caused the failure is drained
	// here so its waiters are not stranded.
	waiters, resets := w.waiters, w.resets
	w.pending, w.waiters, w.resets = nil, nil, nil
	failed := w.failed
	w.mu.Unlock()
	for _, wt := range waiters {
		wt.ch <- walAck{err: failed}
	}
	for _, rq := range resets {
		rq.reply <- failed
	}
}
