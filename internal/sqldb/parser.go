package sqldb

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []token
	pos     int
	nParams int
}

func parse(input string) (statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || t.text == text
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errorf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseStatement() (statement, error) {
	switch {
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreateTable()
	case p.at(tokKeyword, "DROP"):
		return p.parseDropTable()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	default:
		return nil, p.errorf("unsupported statement starting with %q", p.cur().text)
	}
}

func (p *parser) parseIdent() (string, error) {
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	// Permit non-reserved-looking keywords as identifiers where unambiguous
	// (e.g. a column named "key" is not supported, but COUNT etc. are common
	// enough that we keep the strict rule simple).
	return "", p.errorf("expected identifier, found %q", p.cur().text)
}

// --- CREATE TABLE ---

func (p *parser) parseCreateTable() (statement, error) {
	p.next() // CREATE
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	st := &createTableStmt{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokKeyword, "PRIMARY"):
			p.next()
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if len(st.PrimaryKey) > 0 {
				return nil, p.errorf("duplicate PRIMARY KEY clause")
			}
			st.PrimaryKey = cols
		case p.at(tokKeyword, "FOREIGN"):
			p.next()
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			refCols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if len(cols) != len(refCols) {
				return nil, p.errorf("FOREIGN KEY column count mismatch")
			}
			st.ForeignKeys = append(st.ForeignKeys, foreignKey{Columns: cols, RefTable: ref, RefColumns: refCols})
		default:
			col, pk, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if pk {
				if len(st.PrimaryKey) > 0 {
					return nil, p.errorf("multiple PRIMARY KEY definitions")
				}
				st.PrimaryKey = []string{col.Name}
			}
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if len(st.Columns) == 0 {
		return nil, p.errorf("table %s has no columns", st.Name)
	}
	return st, nil
}

func (p *parser) parseColumnDef() (columnDef, bool, error) {
	var def columnDef
	name, err := p.parseIdent()
	if err != nil {
		return def, false, err
	}
	def.Name = name
	typ, err := p.parseColType()
	if err != nil {
		return def, false, err
	}
	def.Type = typ
	isPK := false
	for {
		switch {
		case p.accept(tokKeyword, "PRIMARY"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return def, false, err
			}
			isPK = true
		case p.accept(tokKeyword, "NOT"):
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return def, false, err
			}
			def.NotNull = true
		case p.accept(tokKeyword, "UNIQUE"):
			def.Unique = true
		case p.accept(tokKeyword, "DEFAULT"):
			v, err := p.parseLiteralValue()
			if err != nil {
				return def, false, err
			}
			def.Default = &v
		default:
			return def, isPK, nil
		}
	}
}

func (p *parser) parseColType() (ColType, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return 0, p.errorf("expected column type, found %q", t.text)
	}
	p.next()
	switch t.text {
	case "INTEGER", "INT":
		return TypeInteger, nil
	case "REAL", "FLOAT":
		return TypeReal, nil
	case "TEXT":
		return TypeText, nil
	case "VARCHAR":
		// Accept VARCHAR(n); the length is parsed and ignored.
		if p.accept(tokSymbol, "(") {
			if _, err := p.expect(tokInt, ""); err != nil {
				return 0, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return 0, err
			}
		}
		return TypeText, nil
	case "BLOB":
		return TypeBlob, nil
	default:
		return 0, p.errorf("unknown column type %q", t.text)
	}
}

func (p *parser) parseLiteralValue() (Value, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, p.errorf("bad integer literal %q", t.text)
		}
		return Int64(n), nil
	case tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, p.errorf("bad float literal %q", t.text)
		}
		return Float64(f), nil
	case tokString:
		p.next()
		return Text(t.text), nil
	case tokBlobLit:
		p.next()
		b, err := hex.DecodeString(t.text)
		if err != nil {
			return Value{}, p.errorf("bad blob literal")
		}
		return Blob(b), nil
	case tokKeyword:
		if t.text == "NULL" {
			p.next()
			return Null(), nil
		}
	}
	return Value{}, p.errorf("expected literal, found %q", t.text)
}

func (p *parser) parseParenIdentList() ([]string, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

// --- DROP TABLE ---

func (p *parser) parseDropTable() (statement, error) {
	p.next() // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	st := &dropTableStmt{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

// --- INSERT ---

func (p *parser) parseInsert() (statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	st := &insertStmt{}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.at(tokSymbol, "(") {
		cols, err := p.parseParenIdentList()
		if err != nil {
			return nil, err
		}
		st.Columns = cols
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []exprNode
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return st, nil
}

// --- SELECT ---

func (p *parser) parseSelect() (statement, error) {
	p.next() // SELECT
	st := &selectStmt{}
	st.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "FROM") {
		fc, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		st.From = fc
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			k := orderKey{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				k.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, k)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Limit = e
		if p.accept(tokKeyword, "OFFSET") {
			o, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Offset = o
		}
	}
	return st, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if p.accept(tokSymbol, "*") {
		return selectItem{Star: true}, nil
	}
	// tbl.* needs two tokens of lookahead.
	if p.at(tokIdent, "") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		tbl := p.next().text
		p.next() // .
		p.next() // *
		return selectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return selectItem{}, err
		}
		item.Alias = alias
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseFrom() (*fromClause, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	fc := &fromClause{Table: name}
	if p.at(tokIdent, "") {
		fc.Alias = p.next().text
	}
	for {
		left := false
		switch {
		case p.accept(tokKeyword, "JOIN"):
		case p.accept(tokKeyword, "INNER"):
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		case p.accept(tokKeyword, "LEFT"):
			left = true
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		default:
			return fc, nil
		}
		jt, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		jc := joinClause{Left: left, Table: jt}
		if p.at(tokIdent, "") {
			jc.Alias = p.next().text
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		jc.On = on
		fc.Joins = append(fc.Joins, jc)
	}
}

// --- UPDATE / DELETE ---

func (p *parser) parseUpdate() (statement, error) {
	p.next() // UPDATE
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &updateStmt{Table: name}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, setClause{Column: col, Value: e})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &deleteStmt{Table: name}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// --- Expressions (precedence climbing) ---
//
// Precedence, low to high: OR, AND, NOT, comparison (= <> < <= > >= LIKE IN
// IS), additive (+ - ||), multiplicative (* / %), unary minus, primary.

func (p *parser) parseExpr() (exprNode, error) { return p.parseOr() }

func (p *parser) parseOr() (exprNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (exprNode, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (exprNode, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (exprNode, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokSymbol, "=") || p.at(tokSymbol, "<>") || p.at(tokSymbol, "!=") ||
			p.at(tokSymbol, "<") || p.at(tokSymbol, "<=") || p.at(tokSymbol, ">") || p.at(tokSymbol, ">="):
			op := p.next().text
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &binaryExpr{Op: op, L: l, R: r}
		case p.at(tokKeyword, "LIKE"):
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &binaryExpr{Op: "LIKE", L: l, R: r}
		case p.at(tokKeyword, "IS"):
			p.next()
			not := p.accept(tokKeyword, "NOT")
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
			l = &isNullExpr{X: l, Not: not}
		case p.at(tokKeyword, "NOT") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == "IN":
			p.next() // NOT
			p.next() // IN
			list, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			l = &inExpr{X: l, List: list, Not: true}
		case p.at(tokKeyword, "NOT") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == "BETWEEN":
			p.next() // NOT
			p.next() // BETWEEN
			be, err := p.parseBetween(l, true)
			if err != nil {
				return nil, err
			}
			l = be
		case p.at(tokKeyword, "BETWEEN"):
			p.next()
			be, err := p.parseBetween(l, false)
			if err != nil {
				return nil, err
			}
			l = be
		case p.at(tokKeyword, "IN"):
			p.next()
			list, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			l = &inExpr{X: l, List: list}
		default:
			return l, nil
		}
	}
}

// parseBetween finishes `X [NOT] BETWEEN lo AND hi` after the keyword.
func (p *parser) parseBetween(x exprNode, not bool) (exprNode, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &betweenExpr{X: x, Lo: lo, Hi: hi, Not: not}, nil
}

func (p *parser) parseExprList() ([]exprNode, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var list []exprNode
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return list, nil
}

func (p *parser) parseAdditive() (exprNode, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "+") || p.at(tokSymbol, "-") || p.at(tokSymbol, "||") {
		op := p.next().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (exprNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "*") || p.at(tokSymbol, "/") || p.at(tokSymbol, "%") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (exprNode, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{Op: "-", X: x}, nil
	}
	p.accept(tokSymbol, "+") // unary plus is a no-op
	return p.parsePrimary()
}

var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func (p *parser) parsePrimary() (exprNode, error) {
	t := p.cur()
	switch t.kind {
	case tokInt, tokFloat, tokString, tokBlobLit:
		v, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		return &literalExpr{Val: v}, nil
	case tokParam:
		p.next()
		e := &paramExpr{Index: p.nParams}
		p.nParams++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &literalExpr{Val: Null()}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			fe := &funcExpr{Name: t.text}
			if p.accept(tokSymbol, "*") {
				if t.text != "COUNT" {
					return nil, p.errorf("%s(*) is not valid", t.text)
				}
				fe.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fe.Arg = arg
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return fe, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.next()
		if p.accept(tokSymbol, ".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &columnExpr{Table: t.text, Column: col}, nil
		}
		return &columnExpr{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

// exprString renders an expression back to SQL-ish text, used in error
// messages and the generated-analysis feature.
func exprString(e exprNode) string {
	switch x := e.(type) {
	case *literalExpr:
		if x.Val.Kind == KindText {
			return "'" + strings.ReplaceAll(x.Val.Text, "'", "''") + "'"
		}
		return x.Val.String()
	case *paramExpr:
		return "?"
	case *columnExpr:
		if x.Table != "" {
			return x.Table + "." + x.Column
		}
		return x.Column
	case *unaryExpr:
		return x.Op + " " + exprString(x.X)
	case *binaryExpr:
		return "(" + exprString(x.L) + " " + x.Op + " " + exprString(x.R) + ")"
	case *isNullExpr:
		if x.Not {
			return exprString(x.X) + " IS NOT NULL"
		}
		return exprString(x.X) + " IS NULL"
	case *inExpr:
		parts := make([]string, len(x.List))
		for i, it := range x.List {
			parts[i] = exprString(it)
		}
		op := " IN ("
		if x.Not {
			op = " NOT IN ("
		}
		return exprString(x.X) + op + strings.Join(parts, ", ") + ")"
	case *betweenExpr:
		op := " BETWEEN "
		if x.Not {
			op = " NOT BETWEEN "
		}
		return exprString(x.X) + op + exprString(x.Lo) + " AND " + exprString(x.Hi)
	case *funcExpr:
		if x.Star {
			return x.Name + "(*)"
		}
		return x.Name + "(" + exprString(x.Arg) + ")"
	default:
		return "?expr?"
	}
}
