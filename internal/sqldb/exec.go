package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// --- INSERT ---

func (db *DB) execInsert(s *insertStmt, args []Value) (Result, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return Result{}, fmt.Errorf("insert: %w: %s", ErrNoSuchTable, s.Table)
	}
	// Map statement columns to table positions.
	targets := make([]int, 0, len(t.def.Columns))
	if len(s.Columns) == 0 {
		for i := range t.def.Columns {
			targets = append(targets, i)
		}
	} else {
		for _, c := range s.Columns {
			idx, ok := t.colIdx[strings.ToLower(c)]
			if !ok {
				return Result{}, fmt.Errorf("insert into %s: no such column %s", s.Table, c)
			}
			targets = append(targets, idx)
		}
	}
	env := &rowEnv{args: args}
	var inserted int64
	for _, exprs := range s.Rows {
		if len(exprs) != len(targets) {
			return Result{}, fmt.Errorf("insert into %s: %d values for %d columns", s.Table, len(exprs), len(targets))
		}
		row := make([]Value, len(t.def.Columns))
		filled := make([]bool, len(t.def.Columns))
		for i, e := range exprs {
			v, err := evalExpr(e, env)
			if err != nil {
				return Result{}, fmt.Errorf("insert into %s: %w", s.Table, err)
			}
			row[targets[i]] = v
			filled[targets[i]] = true
		}
		for i, c := range t.def.Columns {
			if !filled[i] && c.Default != nil {
				row[i] = *c.Default
			}
		}
		if err := db.insertRow(t, row); err != nil {
			return Result{}, fmt.Errorf("insert into %s: %w", s.Table, err)
		}
		inserted++
	}
	return Result{RowsAffected: inserted}, nil
}

// insertRow validates constraints and appends the row. The caller holds the
// write lock.
func (db *DB) insertRow(t *table, row []Value) error {
	// Type coercion and NOT NULL.
	for i, c := range t.def.Columns {
		v, err := coerce(row[i], c.Type)
		if err != nil {
			return fmt.Errorf("column %s: %w", c.Name, err)
		}
		row[i] = v
		if c.NotNull && v.IsNull() {
			return fmt.Errorf("%w: NOT NULL column %s", ErrConstraint, c.Name)
		}
	}
	// PRIMARY KEY uniqueness (and implicit NOT NULL).
	if t.pkIndex != nil {
		key, hasNull := t.pkKey(row)
		if hasNull {
			return fmt.Errorf("%w: NULL in PRIMARY KEY of %s", ErrConstraint, t.def.Name)
		}
		if _, dup := t.pkIndex[key]; dup {
			return fmt.Errorf("%w: duplicate PRIMARY KEY in %s", ErrConstraint, t.def.Name)
		}
	}
	// UNIQUE columns (linear scan; tables here are modest).
	for i, c := range t.def.Columns {
		if !c.Unique || row[i].IsNull() {
			continue
		}
		for _, existing := range t.rows {
			if existing[i].Equal(row[i]) {
				return fmt.Errorf("%w: UNIQUE column %s", ErrConstraint, c.Name)
			}
		}
	}
	// FOREIGN KEYs: every non-NULL FK tuple must exist in the parent.
	for _, fk := range t.def.ForeignKeys {
		if err := db.checkFKParentExists(t, fk, row); err != nil {
			return err
		}
	}
	if t.pkIndex != nil {
		key, _ := t.pkKey(row)
		t.pkIndex[key] = len(t.rows)
	}
	t.rows = append(t.rows, row)
	return nil
}

// pkKey builds the primary-key map key of a row. hasNull reports whether any
// PK component is NULL.
func (t *table) pkKey(row []Value) (string, bool) {
	var sb strings.Builder
	hasNull := false
	for _, col := range t.def.PrimaryKey {
		v := row[t.colIdx[strings.ToLower(col)]]
		if v.IsNull() {
			hasNull = true
		}
		sb.WriteString(v.key())
		sb.WriteByte(0)
	}
	return sb.String(), hasNull
}

func (db *DB) checkFKParentExists(t *table, fk foreignKey, row []Value) error {
	parent, ok := db.tables[strings.ToLower(fk.RefTable)]
	if !ok {
		return fmt.Errorf("%w: referenced table %s missing", ErrForeignKey, fk.RefTable)
	}
	vals := make([]Value, len(fk.Columns))
	anyNull := false
	for i, c := range fk.Columns {
		vals[i] = row[t.colIdx[strings.ToLower(c)]]
		if vals[i].IsNull() {
			anyNull = true
		}
	}
	if anyNull {
		return nil // SQL: NULL FK components satisfy the constraint
	}
	// Fast path: FK references the parent's full primary key.
	if parent.pkIndex != nil && sameColumns(fk.RefColumns, parent.def.PrimaryKey) {
		var sb strings.Builder
		for _, v := range vals {
			sb.WriteString(v.key())
			sb.WriteByte(0)
		}
		if _, found := parent.pkIndex[sb.String()]; found {
			return nil
		}
		return fmt.Errorf("%w: %s(%s) has no matching row in %s",
			ErrForeignKey, t.def.Name, strings.Join(fk.Columns, ","), fk.RefTable)
	}
	// Slow path: linear scan.
	refIdx := make([]int, len(fk.RefColumns))
	for i, c := range fk.RefColumns {
		refIdx[i] = parent.colIdx[strings.ToLower(c)]
	}
	for _, prow := range parent.rows {
		match := true
		for i, ri := range refIdx {
			if !prow[ri].Equal(vals[i]) {
				match = false
				break
			}
		}
		if match {
			return nil
		}
	}
	return fmt.Errorf("%w: %s(%s) has no matching row in %s",
		ErrForeignKey, t.def.Name, strings.Join(fk.Columns, ","), fk.RefTable)
}

func sameColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

// checkNoChildReferences enforces RESTRICT semantics on delete/update of a
// parent row.
func (db *DB) checkNoChildReferences(parent *table, row []Value) error {
	for _, childKey := range db.order {
		child := db.tables[childKey]
		for _, fk := range child.def.ForeignKeys {
			if !strings.EqualFold(fk.RefTable, parent.def.Name) {
				continue
			}
			refIdx := make([]int, len(fk.RefColumns))
			for i, c := range fk.RefColumns {
				refIdx[i] = parent.colIdx[strings.ToLower(c)]
			}
			childIdx := make([]int, len(fk.Columns))
			for i, c := range fk.Columns {
				childIdx[i] = child.colIdx[strings.ToLower(c)]
			}
			for _, crow := range child.rows {
				match := true
				for i := range refIdx {
					cv := crow[childIdx[i]]
					if cv.IsNull() || !cv.Equal(row[refIdx[i]]) {
						match = false
						break
					}
				}
				if match {
					return fmt.Errorf("%w: row in %s still referenced by %s",
						ErrForeignKey, parent.def.Name, child.def.Name)
				}
			}
		}
	}
	return nil
}

// --- single-table row environment ---

// buildSingleEnv prepares the name bindings for one table (used by UPDATE and
// DELETE and as a building block for SELECT).
func buildSingleEnv(t *table, alias string, args []Value) *rowEnv {
	if alias == "" {
		alias = t.def.Name
	}
	cols := make(map[string]int, 2*len(t.def.Columns))
	la := strings.ToLower(alias)
	for i, c := range t.def.Columns {
		lc := strings.ToLower(c.Name)
		cols[la+"."+lc] = i
		cols[lc] = i
	}
	return &rowEnv{cols: cols, args: args}
}

// --- UPDATE ---

func (db *DB) execUpdate(s *updateStmt, args []Value) (Result, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return Result{}, fmt.Errorf("update: %w: %s", ErrNoSuchTable, s.Table)
	}
	setIdx := make([]int, len(s.Sets))
	for i, sc := range s.Sets {
		idx, ok := t.colIdx[strings.ToLower(sc.Column)]
		if !ok {
			return Result{}, fmt.Errorf("update %s: no such column %s", s.Table, sc.Column)
		}
		setIdx[i] = idx
	}
	env := buildSingleEnv(t, "", args)
	var updated int64
	// Two passes: compute replacement rows, then validate and apply. This
	// keeps the table unchanged when any row fails a constraint.
	type change struct {
		rowIdx int
		newRow []Value
	}
	var changes []change
	for ri, row := range t.rows {
		env.vals = row
		if s.Where != nil {
			cond, err := evalExpr(s.Where, env)
			if err != nil {
				return Result{}, fmt.Errorf("update %s: %w", s.Table, err)
			}
			if !cond.IsTruthy() {
				continue
			}
		}
		newRow := append([]Value(nil), row...)
		for i, sc := range s.Sets {
			v, err := evalExpr(sc.Value, env)
			if err != nil {
				return Result{}, fmt.Errorf("update %s: %w", s.Table, err)
			}
			cv, err := coerce(v, t.def.Columns[setIdx[i]].Type)
			if err != nil {
				return Result{}, fmt.Errorf("update %s column %s: %w", s.Table, sc.Column, err)
			}
			newRow[setIdx[i]] = cv
		}
		changes = append(changes, change{rowIdx: ri, newRow: newRow})
	}
	// Validate.
	for _, ch := range changes {
		old := t.rows[ch.rowIdx]
		for i, c := range t.def.Columns {
			if c.NotNull && ch.newRow[i].IsNull() {
				return Result{}, fmt.Errorf("update %s: %w: NOT NULL column %s", s.Table, ErrConstraint, c.Name)
			}
		}
		if t.pkIndex != nil {
			oldKey, _ := t.pkKey(old)
			newKey, hasNull := t.pkKey(ch.newRow)
			if hasNull {
				return Result{}, fmt.Errorf("update %s: %w: NULL in PRIMARY KEY", s.Table, ErrConstraint)
			}
			if newKey != oldKey {
				if _, dup := t.pkIndex[newKey]; dup {
					return Result{}, fmt.Errorf("update %s: %w: duplicate PRIMARY KEY", s.Table, ErrConstraint)
				}
				// Changing a referenced key must not orphan children.
				if err := db.checkNoChildReferences(t, old); err != nil {
					return Result{}, fmt.Errorf("update %s: %w", s.Table, err)
				}
			}
		}
		for _, fk := range t.def.ForeignKeys {
			if err := db.checkFKParentExists(t, fk, ch.newRow); err != nil {
				return Result{}, fmt.Errorf("update %s: %w", s.Table, err)
			}
		}
	}
	// Apply.
	for _, ch := range changes {
		if t.pkIndex != nil {
			oldKey, _ := t.pkKey(t.rows[ch.rowIdx])
			newKey, _ := t.pkKey(ch.newRow)
			if oldKey != newKey {
				delete(t.pkIndex, oldKey)
				t.pkIndex[newKey] = ch.rowIdx
			}
		}
		t.rows[ch.rowIdx] = ch.newRow
		updated++
	}
	return Result{RowsAffected: updated}, nil
}

// --- DELETE ---

func (db *DB) execDelete(s *deleteStmt, args []Value) (Result, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return Result{}, fmt.Errorf("delete: %w: %s", ErrNoSuchTable, s.Table)
	}
	env := buildSingleEnv(t, "", args)
	victims := make(map[int]bool)
	for ri, row := range t.rows {
		env.vals = row
		if s.Where != nil {
			cond, err := evalExpr(s.Where, env)
			if err != nil {
				return Result{}, fmt.Errorf("delete from %s: %w", s.Table, err)
			}
			if !cond.IsTruthy() {
				continue
			}
		}
		victims[ri] = true
	}
	if len(victims) == 0 {
		return Result{}, nil
	}
	// RESTRICT: a victim row must not be referenced by surviving children.
	for ri := range victims {
		if err := db.checkNoChildReferences(t, t.rows[ri]); err != nil {
			// Self-references from rows that are also being deleted are
			// permitted; detect by re-checking against survivors only.
			if !db.onlyDeletedReferences(t, t.rows[ri], victims) {
				return Result{}, fmt.Errorf("delete from %s: %w", s.Table, err)
			}
		}
	}
	kept := make([][]Value, 0, len(t.rows)-len(victims))
	for ri, row := range t.rows {
		if !victims[ri] {
			kept = append(kept, row)
		}
	}
	t.rows = kept
	t.rebuildPKIndex()
	return Result{RowsAffected: int64(len(victims))}, nil
}

// onlyDeletedReferences reports whether every child row referencing the given
// parent row belongs to the same table and is itself being deleted.
func (db *DB) onlyDeletedReferences(parent *table, row []Value, victims map[int]bool) bool {
	for _, childKey := range db.order {
		child := db.tables[childKey]
		for _, fk := range child.def.ForeignKeys {
			if !strings.EqualFold(fk.RefTable, parent.def.Name) {
				continue
			}
			refIdx := make([]int, len(fk.RefColumns))
			for i, c := range fk.RefColumns {
				refIdx[i] = parent.colIdx[strings.ToLower(c)]
			}
			childIdx := make([]int, len(fk.Columns))
			for i, c := range fk.Columns {
				childIdx[i] = child.colIdx[strings.ToLower(c)]
			}
			for cri, crow := range child.rows {
				match := true
				for i := range refIdx {
					cv := crow[childIdx[i]]
					if cv.IsNull() || !cv.Equal(row[refIdx[i]]) {
						match = false
						break
					}
				}
				if match {
					if child != parent || !victims[cri] {
						return false
					}
				}
			}
		}
	}
	return true
}

func (t *table) rebuildPKIndex() {
	if t.pkIndex == nil {
		return
	}
	t.pkIndex = make(map[string]int, len(t.rows))
	for i, row := range t.rows {
		key, _ := t.pkKey(row)
		t.pkIndex[key] = i
	}
}

// --- SELECT ---

// joinedEnv describes the combined environment of the FROM clause.
type joinedEnv struct {
	cols    map[string]int
	width   int
	sources []sourceBinding
}

type sourceBinding struct {
	t      *table
	alias  string
	offset int
	left   bool     // filled from a LEFT JOIN
	on     exprNode // nil for the first source
}

func (db *DB) buildJoinedEnv(fc *fromClause) (*joinedEnv, error) {
	je := &joinedEnv{cols: make(map[string]int)}
	add := func(name, alias string, left bool, on exprNode) error {
		t, ok := db.tables[strings.ToLower(name)]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchTable, name)
		}
		if alias == "" {
			alias = t.def.Name
		}
		la := strings.ToLower(alias)
		for i, c := range t.def.Columns {
			lc := strings.ToLower(c.Name)
			q := la + "." + lc
			if _, dup := je.cols[q]; dup {
				return fmt.Errorf("duplicate table alias %s", alias)
			}
			je.cols[q] = je.width + i
			if prev, seen := je.cols[lc]; seen && prev != je.width+i {
				je.cols[lc] = -1 // ambiguous bare name
			} else if !seen {
				je.cols[lc] = je.width + i
			}
		}
		je.sources = append(je.sources, sourceBinding{t: t, alias: alias, offset: je.width, left: left, on: on})
		je.width += len(t.def.Columns)
		return nil
	}
	if err := add(fc.Table, fc.Alias, false, nil); err != nil {
		return nil, err
	}
	for _, j := range fc.Joins {
		if err := add(j.Table, j.Alias, j.Left, j.On); err != nil {
			return nil, err
		}
	}
	return je, nil
}

// enumerate produces every joined row (nested loops) and calls fn with a
// reusable environment. fn must copy anything it keeps.
func (je *joinedEnv) enumerate(args []Value, where exprNode, fn func(env *rowEnv) error) error {
	env := &rowEnv{cols: je.cols, vals: make([]Value, je.width), args: args}
	var rec func(si int) error
	rec = func(si int) error {
		if si == len(je.sources) {
			if where != nil {
				cond, err := evalExpr(where, env)
				if err != nil {
					return err
				}
				if !cond.IsTruthy() {
					return nil
				}
			}
			return fn(env)
		}
		src := je.sources[si]
		matched := false
		for _, row := range src.t.rows {
			copy(env.vals[src.offset:src.offset+len(row)], row)
			if src.on != nil {
				cond, err := evalExpr(src.on, env)
				if err != nil {
					return err
				}
				if !cond.IsTruthy() {
					continue
				}
			}
			matched = true
			if err := rec(si + 1); err != nil {
				return err
			}
		}
		if !matched && src.left {
			for i := 0; i < len(src.t.def.Columns); i++ {
				env.vals[src.offset+i] = Null()
			}
			return rec(si + 1)
		}
		return nil
	}
	return rec(0)
}

func (db *DB) execSelect(s *selectStmt, args []Value) (*Rows, error) {
	// SELECT without FROM: evaluate the items once against an empty env.
	if s.From == nil {
		env := &rowEnv{cols: map[string]int{}, args: args}
		out := &Rows{}
		row := make([]Value, 0, len(s.Items))
		for i, item := range s.Items {
			if item.Star {
				return nil, fmt.Errorf("SELECT * requires a FROM clause")
			}
			v, err := evalExpr(item.Expr, env)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			out.Columns = append(out.Columns, outputName(item, i))
		}
		out.Data = append(out.Data, row)
		return out, nil
	}

	je, err := db.buildJoinedEnv(s.From)
	if err != nil {
		return nil, err
	}
	items, colNames, err := expandItems(s.Items, je)
	if err != nil {
		return nil, err
	}

	aggregate := len(s.GroupBy) > 0 || s.Having != nil
	if !aggregate {
		for _, it := range items {
			if it.Expr != nil && containsAggregate(it.Expr) {
				aggregate = true
				break
			}
		}
	}

	var out *Rows
	if aggregate {
		out, err = db.selectAggregate(s, je, items, colNames, args)
	} else {
		out, err = db.selectPlain(s, je, items, colNames, args)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		out.Data = distinctRows(out.Data)
	}
	if len(s.OrderBy) > 0 && !aggregate {
		// Plain queries were already ordered during collection below.
		_ = out
	}
	if err := applyLimit(s, out, args); err != nil {
		return nil, err
	}
	return out, nil
}

// expandItems resolves * and tbl.* into concrete column expressions.
func expandItems(items []selectItem, je *joinedEnv) ([]selectItem, []string, error) {
	var (
		flat  []selectItem
		names []string
	)
	for i, item := range items {
		if !item.Star {
			flat = append(flat, item)
			names = append(names, outputName(item, i))
			continue
		}
		for _, src := range je.sources {
			if item.StarTable != "" && !strings.EqualFold(item.StarTable, src.alias) {
				continue
			}
			for _, c := range src.t.def.Columns {
				flat = append(flat, selectItem{Expr: &columnExpr{Table: src.alias, Column: c.Name}})
				names = append(names, c.Name)
			}
		}
		if item.StarTable != "" {
			found := false
			for _, src := range je.sources {
				if strings.EqualFold(item.StarTable, src.alias) {
					found = true
					break
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("no such table alias: %s", item.StarTable)
			}
		}
	}
	return flat, names, nil
}

func outputName(item selectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ce, ok := item.Expr.(*columnExpr); ok {
		return ce.Column
	}
	if item.Expr != nil {
		return exprString(item.Expr)
	}
	return fmt.Sprintf("col%d", pos+1)
}

type sortableRow struct {
	out  []Value
	keys []Value
}

func (db *DB) selectPlain(s *selectStmt, je *joinedEnv, items []selectItem, colNames []string, args []Value) (*Rows, error) {
	var rows []sortableRow
	err := je.enumerate(args, s.Where, func(env *rowEnv) error {
		out := make([]Value, len(items))
		for i, item := range items {
			v, err := evalExpr(item.Expr, env)
			if err != nil {
				return err
			}
			out[i] = v
		}
		sr := sortableRow{out: out}
		for _, k := range s.OrderBy {
			v, err := evalOrderKey(k.Expr, env, items, out, colNames)
			if err != nil {
				return err
			}
			sr.keys = append(sr.keys, v)
		}
		rows = append(rows, sr)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortRows(rows, s.OrderBy)
	res := &Rows{Columns: colNames, Data: make([][]Value, len(rows))}
	for i, r := range rows {
		res.Data[i] = r.out
	}
	return res, nil
}

func (db *DB) selectAggregate(s *selectStmt, je *joinedEnv, items []selectItem, colNames []string, args []Value) (*Rows, error) {
	type groupBucket struct {
		envs []*rowEnv
	}
	groups := make(map[string]*groupBucket)
	var order []string
	err := je.enumerate(args, s.Where, func(env *rowEnv) error {
		var key strings.Builder
		for _, g := range s.GroupBy {
			v, err := evalExpr(g, env)
			if err != nil {
				return err
			}
			key.WriteString(v.key())
			key.WriteByte(0)
		}
		k := key.String()
		b, ok := groups[k]
		if !ok {
			b = &groupBucket{}
			groups[k] = b
			order = append(order, k)
		}
		// Snapshot the env: enumerate reuses the vals slice.
		vals := append([]Value(nil), env.vals...)
		b.envs = append(b.envs, &rowEnv{cols: env.cols, vals: vals, args: args})
		return nil
	})
	if err != nil {
		return nil, err
	}
	// A no-GROUP-BY aggregate over zero rows still yields one group.
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &groupBucket{}
		order = append(order, "")
	}

	var rows []sortableRow
	for _, k := range order {
		g := groups[k].envs
		if s.Having != nil {
			hv, err := evalAggregate(s.Having, g)
			if err != nil {
				return nil, err
			}
			if !hv.IsTruthy() {
				continue
			}
		}
		out := make([]Value, len(items))
		for i, item := range items {
			v, err := evalAggregate(item.Expr, g)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		sr := sortableRow{out: out}
		for _, ok := range s.OrderBy {
			v, err := evalAggOrderKey(ok.Expr, g, items, out, colNames)
			if err != nil {
				return nil, err
			}
			sr.keys = append(sr.keys, v)
		}
		rows = append(rows, sr)
	}
	sortRows(rows, s.OrderBy)
	res := &Rows{Columns: colNames, Data: make([][]Value, len(rows))}
	for i, r := range rows {
		res.Data[i] = r.out
	}
	return res, nil
}

// evalOrderKey resolves ORDER BY keys: 1-based output position, output alias,
// or a full expression over the row.
func evalOrderKey(e exprNode, env *rowEnv, items []selectItem, out []Value, colNames []string) (Value, error) {
	if idx, ok := orderKeyOutputIndex(e, items, colNames); ok {
		return out[idx], nil
	}
	return evalExpr(e, env)
}

func evalAggOrderKey(e exprNode, group []*rowEnv, items []selectItem, out []Value, colNames []string) (Value, error) {
	if idx, ok := orderKeyOutputIndex(e, items, colNames); ok {
		return out[idx], nil
	}
	return evalAggregate(e, group)
}

func orderKeyOutputIndex(e exprNode, items []selectItem, colNames []string) (int, bool) {
	switch x := e.(type) {
	case *literalExpr:
		if x.Val.Kind == KindInt && x.Val.Int >= 1 && int(x.Val.Int) <= len(items) {
			return int(x.Val.Int) - 1, true
		}
	case *columnExpr:
		if x.Table == "" {
			for i, name := range colNames {
				if items[i].Alias != "" && strings.EqualFold(name, x.Column) {
					return i, true
				}
			}
		}
	}
	return 0, false
}

func sortRows(rows []sortableRow, keys []orderKey) {
	if len(keys) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range keys {
			a, b := rows[i].keys[k], rows[j].keys[k]
			// NULLs sort first.
			switch {
			case a.IsNull() && b.IsNull():
				continue
			case a.IsNull():
				return !keys[k].Desc
			case b.IsNull():
				return keys[k].Desc
			}
			c, ok := a.Compare(b)
			if !ok || c == 0 {
				continue
			}
			if keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func distinctRows(data [][]Value) [][]Value {
	seen := make(map[string]bool, len(data))
	out := data[:0]
	for _, row := range data {
		var sb strings.Builder
		for _, v := range row {
			sb.WriteString(v.key())
			sb.WriteByte(0)
		}
		k := sb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, row)
	}
	return out
}

func applyLimit(s *selectStmt, out *Rows, args []Value) error {
	if s.Limit == nil {
		return nil
	}
	env := &rowEnv{cols: map[string]int{}, args: args}
	lv, err := evalExpr(s.Limit, env)
	if err != nil {
		return err
	}
	limit, err := lv.AsInt()
	if err != nil {
		return fmt.Errorf("LIMIT: %w", err)
	}
	offset := int64(0)
	if s.Offset != nil {
		ov, err := evalExpr(s.Offset, env)
		if err != nil {
			return err
		}
		offset, err = ov.AsInt()
		if err != nil {
			return fmt.Errorf("OFFSET: %w", err)
		}
	}
	if offset < 0 {
		offset = 0
	}
	if offset > int64(len(out.Data)) {
		offset = int64(len(out.Data))
	}
	end := offset + limit
	if limit < 0 || end > int64(len(out.Data)) {
		end = int64(len(out.Data))
	}
	out.Data = out.Data[offset:end]
	return nil
}
