package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// mustExec is a test helper running a statement that must succeed.
func mustExec(t *testing.T, db *DB, q string, args ...Value) Result {
	t.Helper()
	res, err := db.Exec(q, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, q string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return rows
}

func newGOOFISchema(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE TargetSystemData (
		testCardName TEXT PRIMARY KEY,
		description TEXT
	)`)
	mustExec(t, db, `CREATE TABLE CampaignData (
		campaignName TEXT PRIMARY KEY,
		testCardName TEXT NOT NULL,
		nExperiments INTEGER,
		FOREIGN KEY (testCardName) REFERENCES TargetSystemData (testCardName)
	)`)
	mustExec(t, db, `CREATE TABLE LoggedSystemState (
		experimentName TEXT PRIMARY KEY,
		parentExperiment TEXT,
		campaignName TEXT NOT NULL,
		experimentData TEXT,
		stateVector BLOB,
		FOREIGN KEY (campaignName) REFERENCES CampaignData (campaignName),
		FOREIGN KEY (parentExperiment) REFERENCES LoggedSystemState (experimentName)
	)`)
	return db
}

func TestCreateTableDuplicate(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if _, err := db.Exec("CREATE TABLE t (a INTEGER)"); !errors.Is(err, ErrTableExists) {
		t.Fatalf("err = %v, want ErrTableExists", err)
	}
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (a INTEGER)")
}

func TestCreateTableValidation(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (a INTEGER, a TEXT)"); err == nil {
		t.Fatal("duplicate column should fail")
	}
	if _, err := db.Exec("CREATE TABLE t (a INTEGER, PRIMARY KEY (zz))"); err == nil {
		t.Fatal("PK over unknown column should fail")
	}
	if _, err := db.Exec("CREATE TABLE t (a INTEGER, FOREIGN KEY (a) REFERENCES missing (x))"); !errorsIsNoTable(err) {
		t.Fatalf("FK to missing table: err = %v", err)
	}
}

func errorsIsNoTable(err error) bool { return errors.Is(err, ErrNoSuchTable) }

func TestInsertAndSelectBasic(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	res := mustExec(t, db, "INSERT INTO t VALUES (1, 'one'), (2, 'two')")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT a, b FROM t ORDER BY a")
	if rows.Len() != 2 || rows.Data[0][1].Text != "one" || rows.Data[1][0].Int != 2 {
		t.Fatalf("rows = %+v", rows.Data)
	}
	if rows.Columns[0] != "a" || rows.Columns[1] != "b" {
		t.Fatalf("columns = %v", rows.Columns)
	}
}

func TestInsertColumnSubsetAndDefaults(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT DEFAULT 'dflt', c REAL)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	row, err := db.QueryRow("SELECT a, b, c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if row[1].Text != "dflt" {
		t.Fatalf("default not applied: %+v", row)
	}
	if !row[2].IsNull() {
		t.Fatalf("unset column should be NULL: %+v", row)
	}
}

func TestInsertParams(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT, c BLOB)")
	mustExec(t, db, "INSERT INTO t VALUES (?, ?, ?)", Int64(7), Text("x"), Blob([]byte{9}))
	row, err := db.QueryRow("SELECT a, b, c FROM t WHERE a = ?", Int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int != 7 || row[1].Text != "x" || row[2].Blob[0] != 9 {
		t.Fatalf("row = %+v", row)
	}
}

func TestInsertMissingParam(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if _, err := db.Exec("INSERT INTO t VALUES (?)"); err == nil {
		t.Fatal("missing parameter should fail")
	}
}

func TestPrimaryKeyConstraints(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id TEXT PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1)")
	if _, err := db.Exec("INSERT INTO t VALUES ('a', 2)"); !errors.Is(err, ErrConstraint) {
		t.Fatalf("duplicate PK: err = %v", err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (NULL, 3)"); !errors.Is(err, ErrConstraint) {
		t.Fatalf("NULL PK: err = %v", err)
	}
}

func TestCompositePrimaryKey(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))")
	mustExec(t, db, "INSERT INTO t VALUES (1, 1), (1, 2), (2, 1)")
	if _, err := db.Exec("INSERT INTO t VALUES (1, 2)"); !errors.Is(err, ErrConstraint) {
		t.Fatalf("dup composite PK: err = %v", err)
	}
}

func TestNotNullAndUnique(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER NOT NULL, b TEXT UNIQUE)")
	if _, err := db.Exec("INSERT INTO t VALUES (NULL, 'x')"); !errors.Is(err, ErrConstraint) {
		t.Fatalf("NOT NULL: err = %v", err)
	}
	mustExec(t, db, "INSERT INTO t VALUES (1, 'x')")
	if _, err := db.Exec("INSERT INTO t VALUES (2, 'x')"); !errors.Is(err, ErrConstraint) {
		t.Fatalf("UNIQUE: err = %v", err)
	}
	// NULLs don't collide under UNIQUE.
	mustExec(t, db, "INSERT INTO t VALUES (3, NULL)")
	mustExec(t, db, "INSERT INTO t VALUES (4, NULL)")
}

func TestForeignKeyInsertEnforcement(t *testing.T) {
	db := newGOOFISchema(t)
	if _, err := db.Exec("INSERT INTO CampaignData VALUES ('c1', 'missing-card', 10)"); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("orphan insert: err = %v", err)
	}
	mustExec(t, db, "INSERT INTO TargetSystemData VALUES ('thor-rd', 'Thor RD test card')")
	mustExec(t, db, "INSERT INTO CampaignData VALUES ('c1', 'thor-rd', 10)")
	mustExec(t, db, "INSERT INTO LoggedSystemState VALUES ('e1', NULL, 'c1', 'data', x'00')")
	// parentExperiment self-FK.
	mustExec(t, db, "INSERT INTO LoggedSystemState VALUES ('e2', 'e1', 'c1', 'rerun', x'01')")
	if _, err := db.Exec("INSERT INTO LoggedSystemState VALUES ('e3', 'nope', 'c1', '', x'00')"); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("bad parent: err = %v", err)
	}
}

func TestForeignKeyDeleteRestrict(t *testing.T) {
	db := newGOOFISchema(t)
	mustExec(t, db, "INSERT INTO TargetSystemData VALUES ('thor-rd', '')")
	mustExec(t, db, "INSERT INTO CampaignData VALUES ('c1', 'thor-rd', 1)")
	if _, err := db.Exec("DELETE FROM TargetSystemData WHERE testCardName = 'thor-rd'"); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("restrict delete: err = %v", err)
	}
	mustExec(t, db, "DELETE FROM CampaignData WHERE campaignName = 'c1'")
	mustExec(t, db, "DELETE FROM TargetSystemData WHERE testCardName = 'thor-rd'")
}

func TestForeignKeySelfReferenceDeleteTogether(t *testing.T) {
	db := newGOOFISchema(t)
	mustExec(t, db, "INSERT INTO TargetSystemData VALUES ('tc', '')")
	mustExec(t, db, "INSERT INTO CampaignData VALUES ('c1', 'tc', 1)")
	mustExec(t, db, "INSERT INTO LoggedSystemState VALUES ('e1', NULL, 'c1', '', x'00')")
	mustExec(t, db, "INSERT INTO LoggedSystemState VALUES ('e2', 'e1', 'c1', '', x'00')")
	// Deleting parent e1 alone must fail...
	if _, err := db.Exec("DELETE FROM LoggedSystemState WHERE experimentName = 'e1'"); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("err = %v", err)
	}
	// ...but deleting both rows in one statement succeeds.
	mustExec(t, db, "DELETE FROM LoggedSystemState WHERE campaignName = 'c1'")
	if n, _ := db.RowCount("LoggedSystemState"); n != 0 {
		t.Fatalf("rows left: %d", n)
	}
}

func TestUpdateBasics(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
	res := mustExec(t, db, "UPDATE t SET v = v + 1 WHERE v >= 20")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT v FROM t ORDER BY id")
	got := []int64{rows.Data[0][0].Int, rows.Data[1][0].Int, rows.Data[2][0].Int}
	if got[0] != 10 || got[1] != 21 || got[2] != 31 {
		t.Fatalf("values = %v", got)
	}
}

func TestUpdatePKChange(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, 20)")
	if _, err := db.Exec("UPDATE t SET id = 2 WHERE id = 1"); !errors.Is(err, ErrConstraint) {
		t.Fatalf("dup PK via update: err = %v", err)
	}
	mustExec(t, db, "UPDATE t SET id = 3 WHERE id = 1")
	// Old key must be free again, new key occupied.
	mustExec(t, db, "INSERT INTO t VALUES (1, 99)")
	if _, err := db.Exec("INSERT INTO t VALUES (3, 99)"); !errors.Is(err, ErrConstraint) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateForeignKeyCheck(t *testing.T) {
	db := newGOOFISchema(t)
	mustExec(t, db, "INSERT INTO TargetSystemData VALUES ('tc', '')")
	mustExec(t, db, "INSERT INTO CampaignData VALUES ('c1', 'tc', 1)")
	if _, err := db.Exec("UPDATE CampaignData SET testCardName = 'nope'"); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("err = %v", err)
	}
	// Changing a referenced parent key is rejected while children exist.
	if _, err := db.Exec("UPDATE TargetSystemData SET testCardName = 'tc2'"); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateAtomicOnFailure(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER NOT NULL)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, 20)")
	// Second row would violate NOT NULL; nothing must change.
	if _, err := db.Exec("UPDATE t SET v = NULL WHERE id >= 1"); err == nil {
		t.Fatal("want constraint error")
	}
	rows := mustQuery(t, db, "SELECT v FROM t ORDER BY id")
	if rows.Data[0][0].Int != 10 || rows.Data[1][0].Int != 20 {
		t.Fatalf("table mutated on failed update: %+v", rows.Data)
	}
}

func TestDeleteWhere(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3), (4)")
	res := mustExec(t, db, "DELETE FROM t WHERE a % 2 = 0")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT a FROM t ORDER BY a")
	if rows.Len() != 2 || rows.Data[0][0].Int != 1 || rows.Data[1][0].Int != 3 {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestDropTable(t *testing.T) {
	db := newGOOFISchema(t)
	if _, err := db.Exec("DROP TABLE TargetSystemData"); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("drop referenced table: err = %v", err)
	}
	mustExec(t, db, "DROP TABLE LoggedSystemState")
	mustExec(t, db, "DROP TABLE CampaignData")
	mustExec(t, db, "DROP TABLE TargetSystemData")
	if _, err := db.Exec("DROP TABLE TargetSystemData"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v", err)
	}
	mustExec(t, db, "DROP TABLE IF EXISTS TargetSystemData")
}

func TestCaseInsensitiveNames(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE MyTable (MyCol INTEGER)")
	mustExec(t, db, "INSERT INTO mytable (mycol) VALUES (5)")
	row, err := db.QueryRow("SELECT MYCOL FROM MYTABLE")
	if err != nil || row[0].Int != 5 {
		t.Fatalf("row=%v err=%v", row, err)
	}
}

func TestSchemaIntrospection(t *testing.T) {
	db := newGOOFISchema(t)
	ts, err := db.Schema("LoggedSystemState")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Name != "LoggedSystemState" || len(ts.Columns) != 5 {
		t.Fatalf("schema = %+v", ts)
	}
	if len(ts.ForeignKeys) != 2 {
		t.Fatalf("fks = %+v", ts.ForeignKeys)
	}
	names := db.Tables()
	if len(names) != 3 || names[0] != "TargetSystemData" {
		t.Fatalf("tables = %v", names)
	}
	if _, err := db.Schema("nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestExecRejectsSelect(t *testing.T) {
	db := New()
	if _, err := db.Exec("SELECT 1"); err == nil {
		t.Fatal("Exec(SELECT) should fail")
	}
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if _, err := db.Query("INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("Query(INSERT) should fail")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	var wg sync.WaitGroup
	const n = 20
	errs := make(chan error, 2*n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := db.Exec("INSERT INTO t VALUES (?, ?)", Int64(int64(i)), Int64(int64(i*10))); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := db.Query("SELECT COUNT(*) FROM t"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n2, _ := db.RowCount("t"); n2 != n {
		t.Fatalf("rows = %d, want %d", n2, n)
	}
}

func TestQueryRowErrors(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if _, err := db.QueryRow("SELECT a FROM t"); err == nil {
		t.Fatal("0 rows should fail")
	}
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	if _, err := db.QueryRow("SELECT a FROM t"); err == nil {
		t.Fatal("2 rows should fail")
	}
}

func TestManyRowsPKIndexConsistency(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 0; i < 500; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", i, i))
	}
	mustExec(t, db, "DELETE FROM t WHERE id % 3 = 0")
	// After the delete the PK index must still locate every survivor.
	for i := 0; i < 500; i++ {
		rows := mustQuery(t, db, "SELECT v FROM t WHERE id = ?", Int64(int64(i)))
		wantLen := 1
		if i%3 == 0 {
			wantLen = 0
		}
		if rows.Len() != wantLen {
			t.Fatalf("id %d: got %d rows, want %d", i, rows.Len(), wantLen)
		}
	}
	// Reinserting deleted keys must succeed; reinserting survivors must not.
	mustExec(t, db, "INSERT INTO t VALUES (0, 'new')")
	if _, err := db.Exec("INSERT INTO t VALUES (1, 'dup')"); !errors.Is(err, ErrConstraint) {
		t.Fatalf("err = %v", err)
	}
}
