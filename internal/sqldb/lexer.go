package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokBlobLit
	tokSymbol
	tokParam // the ? placeholder
)

type token struct {
	kind tokenKind
	text string // uppercased for keywords, raw for everything else
	pos  int    // byte offset in the input, for error messages
}

// keywords recognised by the lexer. Identifiers matching these (case
// insensitively) are classified as keywords.
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "DROP": true, "IF": true, "EXISTS": true,
	"PRIMARY": true, "KEY": true, "NOT": true, "NULL": true, "FOREIGN": true,
	"REFERENCES": true, "UNIQUE": true, "DEFAULT": true,
	"INTEGER": true, "INT": true, "REAL": true, "FLOAT": true, "TEXT": true,
	"VARCHAR": true, "BLOB": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AS": true, "DISTINCT": true,
	"JOIN": true, "INNER": true, "LEFT": true, "ON": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"AND": true, "OR": true, "IN": true, "IS": true, "LIKE": true, "BETWEEN": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at offset %d: %s", e.Pos, e.Msg)
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if upper == "X" && i < n && input[i] == '\'' {
				// Blob literal x'DEADBEEF'.
				lit, next, err := lexBlob(input, i, start)
				if err != nil {
					return nil, err
				}
				toks = append(toks, token{kind: tokBlobLit, text: lit, pos: start})
				i = next
				continue
			}
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			isFloat := false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !isFloat {
					isFloat = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && i+1 < n &&
					(input[i+1] == '+' || input[i+1] == '-' || unicode.IsDigit(rune(input[i+1]))) {
					isFloat = true
					i += 2
					continue
				}
				break
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind: kind, text: input[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{Pos: start, Msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '"': // quoted identifier
			start := i
			i++
			j := strings.IndexByte(input[i:], '"')
			if j < 0 {
				return nil, &SyntaxError{Pos: start, Msg: "unterminated quoted identifier"}
			}
			toks = append(toks, token{kind: tokIdent, text: input[i : i+j], pos: start})
			i += j + 1
		case c == '?':
			toks = append(toks, token{kind: tokParam, text: "?", pos: i})
			i++
		default:
			start := i
			// Two-character operators first.
			if i+1 < n {
				two := input[i : i+2]
				switch two {
				case "<=", ">=", "<>", "!=", "||":
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, &SyntaxError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "", pos: n})
	return toks, nil
}

func lexBlob(input string, quotePos, start int) (lit string, next int, err error) {
	i := quotePos + 1
	j := strings.IndexByte(input[i:], '\'')
	if j < 0 {
		return "", 0, &SyntaxError{Pos: start, Msg: "unterminated blob literal"}
	}
	hex := input[i : i+j]
	if len(hex)%2 != 0 {
		return "", 0, &SyntaxError{Pos: start, Msg: "blob literal must have even number of hex digits"}
	}
	for k := 0; k < len(hex); k++ {
		if _, err := strconv.ParseUint(string(hex[k]), 16, 8); err != nil {
			return "", 0, &SyntaxError{Pos: start, Msg: fmt.Sprintf("invalid hex digit %q in blob literal", hex[k])}
		}
	}
	return hex, i + j + 1, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
