package sqldb

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b FROM t WHERE x >= 10.5 AND name LIKE 'a%'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{
		tokKeyword, tokIdent, tokSymbol, tokIdent, tokKeyword, tokIdent,
		tokKeyword, tokIdent, tokSymbol, tokFloat, tokKeyword, tokIdent,
		tokKeyword, tokString, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "it's" {
		t.Fatalf("string literal = %q, want %q", toks[0].text, "it's")
	}
}

func TestLexBlobLiteral(t *testing.T) {
	toks, err := lex("x'DEADbeef'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokBlobLit || toks[0].text != "DEADbeef" {
		t.Fatalf("blob literal = %+v", toks[0])
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "x'abc'", "x'zz'", "\"open", "@"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) should fail", bad)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("lex(%q) error is not *SyntaxError: %v", bad, err)
			}
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("SELECT 1 -- trailing comment\n+ 2")
	if err != nil {
		t.Fatal(err)
	}
	// SELECT, 1, +, 2, EOF
	if len(toks) != 5 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := parse(`CREATE TABLE IF NOT EXISTS CampaignData (
		campaignName TEXT PRIMARY KEY,
		testCardName TEXT NOT NULL,
		nExperiments INTEGER DEFAULT 0,
		FOREIGN KEY (testCardName) REFERENCES TargetSystemData (testCardName)
	)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := st.(*createTableStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if !ct.IfNotExists || ct.Name != "CampaignData" || len(ct.Columns) != 3 {
		t.Fatalf("bad parse: %+v", ct)
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "campaignName" {
		t.Fatalf("pk = %v", ct.PrimaryKey)
	}
	if len(ct.ForeignKeys) != 1 || ct.ForeignKeys[0].RefTable != "TargetSystemData" {
		t.Fatalf("fks = %+v", ct.ForeignKeys)
	}
	if ct.Columns[2].Default == nil || ct.Columns[2].Default.Int != 0 {
		t.Fatalf("default = %+v", ct.Columns[2].Default)
	}
}

func TestParseCreateTableCompositePK(t *testing.T) {
	st, err := parse("CREATE TABLE t (a INTEGER, b INTEGER, c TEXT, PRIMARY KEY (a, b))")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*createTableStmt)
	if len(ct.PrimaryKey) != 2 {
		t.Fatalf("pk = %v", ct.PrimaryKey)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := parse("INSERT INTO t (a, b) VALUES (1, 'x'), (?, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*insertStmt)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("bad insert: %+v", ins)
	}
	if _, ok := ins.Rows[1][0].(*paramExpr); !ok {
		t.Fatalf("expected param, got %T", ins.Rows[1][0])
	}
}

func TestParseSelectFull(t *testing.T) {
	st, err := parse(`SELECT c.name AS n, COUNT(*) FROM exps e
		JOIN campaigns c ON e.camp = c.id
		WHERE e.outcome <> 'x' AND e.t >= 5
		GROUP BY c.name HAVING COUNT(*) > 1
		ORDER BY 2 DESC, n LIMIT 10 OFFSET 2`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*selectStmt)
	if len(sel.Items) != 2 || sel.Items[0].Alias != "n" {
		t.Fatalf("items = %+v", sel.Items)
	}
	if sel.From.Table != "exps" || sel.From.Alias != "e" || len(sel.From.Joins) != 1 {
		t.Fatalf("from = %+v", sel.From)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("missing clauses")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("missing limit/offset")
	}
}

func TestParseSelectStarVariants(t *testing.T) {
	st, err := parse("SELECT *, t.*, a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*selectStmt)
	if !sel.Items[0].Star || sel.Items[0].StarTable != "" {
		t.Fatalf("item0 = %+v", sel.Items[0])
	}
	if !sel.Items[1].Star || sel.Items[1].StarTable != "t" {
		t.Fatalf("item1 = %+v", sel.Items[1])
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st, err := parse("UPDATE t SET a = a + 1, b = 'y' WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*updateStmt)
	if len(up.Sets) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	st, err = parse("DELETE FROM t WHERE a IN (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	del := st.(*deleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("delete = %+v", del)
	}
}

func TestParsePrecedence(t *testing.T) {
	st, err := parse("SELECT 1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*selectStmt)
	be := sel.Items[0].Expr.(*binaryExpr)
	if be.Op != "+" {
		t.Fatalf("top op = %q, want +", be.Op)
	}
	if inner, ok := be.R.(*binaryExpr); !ok || inner.Op != "*" {
		t.Fatalf("rhs = %+v", be.R)
	}
}

func TestParseNotInAndIsNull(t *testing.T) {
	st, err := parse("SELECT * FROM t WHERE a NOT IN (1,2) AND b IS NOT NULL AND c IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*selectStmt).Where == nil {
		t.Fatal("where missing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"CREATE TABLE",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a BOGUS)",
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)",
		"CREATE TABLE t (a INTEGER, FOREIGN KEY (a, b) REFERENCES p (x))",
		"INSERT t VALUES (1)",
		"SELECT FROM t",
		"SELECT a FROM t WHERE",
		"UPDATE t",
		"DELETE t",
		"SELECT a FROM t GROUP",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t extra garbage here",
		"EXPLAIN SELECT 1",
	}
	for _, q := range bad {
		if _, err := parse(q); err == nil {
			t.Errorf("parse(%q) should fail", q)
		}
	}
}

func TestParamIndexing(t *testing.T) {
	st, err := parse("SELECT ? + ?, ?")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*selectStmt)
	sum := sel.Items[0].Expr.(*binaryExpr)
	if sum.L.(*paramExpr).Index != 0 || sum.R.(*paramExpr).Index != 1 {
		t.Fatal("first two params misnumbered")
	}
	if sel.Items[1].Expr.(*paramExpr).Index != 2 {
		t.Fatal("third param misnumbered")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// exprString output must re-parse to an equivalent expression.
	exprs := []string{
		"(a + 1)", "(x AND (y OR z))", "name LIKE 'a%'",
		"a IN (1, 2)", "b IS NOT NULL", "COUNT(*)", "SUM((v * 2))",
	}
	for _, src := range exprs {
		st, err := parse("SELECT " + src + " FROM t")
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rendered := exprString(st.(*selectStmt).Items[0].Expr)
		if _, err := parse("SELECT " + rendered + " FROM t"); err != nil {
			t.Errorf("re-parse of %q (from %q) failed: %v", rendered, src, err)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := parse("SELECT $ FROM t")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("err = %v", err)
	}
}

// TestParserNeverPanicsOnRandomInput feeds random byte soup and random
// token recombinations to the parser; it must return errors, never panic.
func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	words := []string{
		"SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "CREATE",
		"TABLE", "PRIMARY", "KEY", "FOREIGN", "REFERENCES", "GROUP", "BY",
		"ORDER", "LIMIT", "t", "a", "b", "(", ")", ",", "*", "=", "?", "'x'",
		"1", "2.5", "x'ab'", "NULL", "AND", "OR", "NOT", "IN", "IS", "--c",
		";", "+", "-", "/", "%", "||", "<=", ">=", "<>",
	}
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(15)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		// Must not panic; errors are fine.
		_, _ = parse(sb.String())
	}
	// Random raw bytes through the lexer.
	for trial := 0; trial < 200; trial++ {
		b := make([]byte, rng.Intn(40))
		for i := range b {
			b[i] = byte(rng.Intn(128))
		}
		_, _ = parse(string(b))
	}
}

// TestExecutorNeverPanicsOnRandomQueries runs random statements against a
// live database: every outcome must be a value or an error, never a panic.
func TestExecutorNeverPanicsOnRandomQueries(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT, c REAL)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', -2.5)")
	rng := rand.New(rand.NewSource(17))
	cols := []string{"a", "b", "c", "t.a", "zz", "*"}
	ops := []string{"=", "<>", "<", ">", "LIKE", "IS NULL", "IN (1, 'x')"}
	for trial := 0; trial < 300; trial++ {
		col := cols[rng.Intn(len(cols))]
		op := ops[rng.Intn(len(ops))]
		q := "SELECT " + col + " FROM t WHERE " + cols[rng.Intn(len(cols)-1)] + " " + op
		if op == "=" || op == "<>" || op == "<" || op == ">" || op == "LIKE" {
			q += " 'v'"
		}
		_, _ = db.Query(q) // errors fine, panics not
	}
}
