package sqldb

import (
	"errors"
	"testing"
)

// FuzzParseSelect feeds arbitrary input through the full lex+parse pipeline.
// The parser's contract is total: any input yields either a statement or a
// positioned *SyntaxError — never a panic, never a nil statement with a nil
// error. Seeds cover every statement kind plus known near-miss syntax.
func FuzzParseSelect(f *testing.F) {
	seeds := []string{
		"SELECT * FROM experiment",
		"SELECT campaignName, COUNT(*) FROM experiment WHERE cycles > 100 " +
			"GROUP BY campaignName HAVING COUNT(*) >= 2 ORDER BY 2 DESC LIMIT 10",
		"SELECT e.experimentName FROM experiment e JOIN campaign c ON e.campaignName = c.campaignName",
		"INSERT INTO t (a, b) VALUES (?, 'it''s'), (2, x'deadbeef')",
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT NOT NULL, c BLOB)",
		"DROP TABLE IF EXISTS t",
		"SELECT a FROM t WHERE b LIKE 'x%' AND c IS NOT NULL AND d IN (1, 2, 3)",
		"SELECT x FROM t WHERE a BETWEEN 1 AND 2 OR NOT (b = -3.5e2)",
		"SELECT",
		"((((",
		"'unterminated",
		"SELECT x FROM t WHERE a BETWEEN 1 AND",
		"SELECT \"quoted ident\" FROM t; trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := parse(input)
		if err != nil {
			var serr *SyntaxError
			if !errors.As(err, &serr) {
				t.Fatalf("parse(%q) error is %T, want *SyntaxError: %v", input, err, err)
			}
			if serr.Pos < 0 || serr.Pos > len(input) {
				t.Fatalf("parse(%q) error position %d outside input (len %d)", input, serr.Pos, len(input))
			}
			return
		}
		if st == nil {
			t.Fatalf("parse(%q) returned nil statement without error", input)
		}
	})
}

// FuzzLexer pins the token-stream invariants the parser relies on: exactly
// one EOF token, last, at offset len(input); every other token anchored at a
// strictly increasing in-bounds byte offset; failures are positioned
// *SyntaxError values.
func FuzzLexer(f *testing.F) {
	seeds := []string{
		"",
		"SELECT * FROM t WHERE a >= 10 AND b <> 'str''esc' -- comment",
		"x'0a1B' ?, ident_2 \"q id\" 3.14e-2 <= != ||",
		"\x00\xff\twhere\n",
		"'unterminated",
		"x'odd",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			var serr *SyntaxError
			if !errors.As(err, &serr) {
				t.Fatalf("lex(%q) error is %T, want *SyntaxError: %v", input, err, err)
			}
			if serr.Pos < 0 || serr.Pos > len(input) {
				t.Fatalf("lex(%q) error position %d outside input (len %d)", input, serr.Pos, len(input))
			}
			return
		}
		if len(toks) == 0 {
			t.Fatalf("lex(%q) returned no tokens, want at least EOF", input)
		}
		last := toks[len(toks)-1]
		if last.kind != tokEOF || last.pos != len(input) {
			t.Fatalf("lex(%q): last token %+v, want EOF at %d", input, last, len(input))
		}
		prev := -1
		for i, tok := range toks {
			if tok.pos < 0 || tok.pos > len(input) {
				t.Fatalf("lex(%q): token %d at offset %d outside input (len %d)", input, i, tok.pos, len(input))
			}
			if i < len(toks)-1 && tok.kind == tokEOF {
				t.Fatalf("lex(%q): EOF token mid-stream at index %d", input, i)
			}
			// Every token consumes at least one byte, so offsets strictly
			// increase (the EOF of an empty input shares offset 0 with
			// nothing — prev starts at -1).
			if tok.pos <= prev {
				t.Fatalf("lex(%q): token %d offset %d not after previous %d", input, i, tok.pos, prev)
			}
			prev = tok.pos
		}
	})
}
