package sqldb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// walValuesEqual compares Values structurally (unlike SQL Equal, NULL equals
// NULL here and NaN equals NaN bit-for-bit — codec tests care about exact
// round-trips, not SQL semantics).
func walValuesEqual(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindInt:
		return a.Int == b.Int
	case KindReal:
		return math.Float64bits(a.Real) == math.Float64bits(b.Real)
	case KindText:
		return a.Text == b.Text
	case KindBlob:
		return bytes.Equal(a.Blob, b.Blob)
	default:
		return true
	}
}

func TestWALPayloadRoundTrip(t *testing.T) {
	cases := [][]Value{
		nil,
		{Null()},
		{Int64(-42), Float64(3.5), Text("héllo"), Blob([]byte{0, 1, 255}), Bool(true)},
		{Text(""), Blob(nil), Float64(math.Inf(-1)), Int64(math.MaxInt64)},
	}
	for i, args := range cases {
		sql := fmt.Sprintf("INSERT INTO t VALUES (?); -- case %d", i)
		payload := appendWALPayload(nil, sql, args)
		gotSQL, gotArgs, err := decodeWALPayload(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if gotSQL != sql {
			t.Fatalf("case %d: sql round-trip: %q != %q", i, gotSQL, sql)
		}
		if len(gotArgs) != len(args) {
			t.Fatalf("case %d: got %d args, want %d", i, len(gotArgs), len(args))
		}
		for j := range args {
			if !walValuesEqual(gotArgs[j], args[j]) {
				t.Fatalf("case %d arg %d: %+v != %+v", i, j, gotArgs[j], args[j])
			}
		}
	}
}

func TestWALPayloadDecodeTruncated(t *testing.T) {
	payload := appendWALPayload(nil, "INSERT INTO t VALUES (?, ?, ?)",
		[]Value{Int64(7), Text("abcdef"), Blob([]byte{1, 2, 3})})
	for cut := 0; cut < len(payload); cut++ {
		if _, _, err := decodeWALPayload(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(payload))
		}
	}
}

// walTestDB opens a WAL-backed DB at dir/test.db with a simple table.
func walTestDB(t *testing.T, dir string, opts WALOptions) *DB {
	t.Helper()
	db, err := OpenWithWAL(filepath.Join(dir, "test.db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE IF NOT EXISTS kv (k TEXT PRIMARY KEY, v INTEGER NOT NULL)"); err != nil {
		db.Close()
		t.Fatal(err)
	}
	return db
}

func kvCount(t *testing.T, db *DB) int {
	t.Helper()
	n, err := db.RowCount("kv")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestWALReopenReplaysRecords(t *testing.T) {
	dir := t.TempDir()
	db := walTestDB(t, dir, WALOptions{})
	for i := 0; i < 20; i++ {
		if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)",
			Text(fmt.Sprintf("k%02d", i)), Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// No checkpoint ran: the image file may not even exist, everything lives
	// in the log. Both open paths must recover all 20 rows.
	plain, err := Open(filepath.Join(dir, "test.db"))
	if err != nil {
		t.Fatal(err)
	}
	if n := kvCount(t, plain); n != 20 {
		t.Fatalf("plain Open recovered %d rows, want 20", n)
	}
	db2 := walTestDB(t, dir, WALOptions{})
	defer db2.Close()
	if n := kvCount(t, db2); n != 20 {
		t.Fatalf("WAL reopen recovered %d rows, want 20", n)
	}
	if got := db2.WALStats().Replayed; got != 21 { // CREATE TABLE + 20 inserts
		t.Fatalf("replayed %d records, want 21", got)
	}
	// The recovered DB keeps working and survives another cycle.
	if _, err := db2.Exec("INSERT INTO kv VALUES (?, ?)", Text("extra"), Int64(99)); err != nil {
		t.Fatal(err)
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	db := walTestDB(t, dir, WALOptions{})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)",
					Text(fmt.Sprintf("w%d-%03d", w, i)), Int64(int64(i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := db.WALStats()
	if st.Records != writers*each+1 {
		t.Fatalf("recorded %d, want %d", st.Records, writers*each+1)
	}
	// Group commit must have coalesced at least some committers: strictly
	// fewer fsyncs than records would be flaky on a fast machine, but batch
	// count can never exceed record count and must be non-zero.
	if st.CommitBatches == 0 || st.CommitBatches > st.Records {
		t.Fatalf("implausible commit batches %d for %d records", st.CommitBatches, st.Records)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := walTestDB(t, dir, WALOptions{})
	defer db2.Close()
	if n := kvCount(t, db2); n != writers*each {
		t.Fatalf("recovered %d rows, want %d", n, writers*each)
	}
}

func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	db := walTestDB(t, dir, WALOptions{})
	for i := 0; i < 10; i++ {
		if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)",
			Text(fmt.Sprintf("k%d", i)), Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "test.db.wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way into the last record.
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := walTestDB(t, dir, WALOptions{})
	if n := kvCount(t, db2); n != 9 {
		t.Fatalf("recovered %d rows after torn tail, want 9", n)
	}
	// The torn bytes were truncated; appending must produce a valid log.
	if _, err := db2.Exec("INSERT INTO kv VALUES (?, ?)", Text("post"), Int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := walTestDB(t, dir, WALOptions{})
	defer db3.Close()
	if n := kvCount(t, db3); n != 10 {
		t.Fatalf("recovered %d rows after repair, want 10", n)
	}
}

func TestWALCorruptCRCStopsReplay(t *testing.T) {
	dir := t.TempDir()
	db := walTestDB(t, dir, WALOptions{})
	for i := 0; i < 10; i++ {
		if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)",
			Text(fmt.Sprintf("k%d", i)), Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "test.db.wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the last record (well past its frame).
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := walTestDB(t, dir, WALOptions{})
	defer db2.Close()
	if n := kvCount(t, db2); n != 9 {
		t.Fatalf("recovered %d rows after CRC corruption, want 9 (stop before bad record)", n)
	}
}

func TestWALCheckpointFoldsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	db := walTestDB(t, dir, WALOptions{})
	for i := 0; i < 10; i++ {
		if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)",
			Text(fmt.Sprintf("k%d", i)), Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	before := db.WALStats().Size
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.WALStats()
	if st.Size != walHeaderSize {
		t.Fatalf("wal size after checkpoint = %d, want %d", st.Size, walHeaderSize)
	}
	if before <= walHeaderSize {
		t.Fatalf("wal size before checkpoint = %d, expected records", before)
	}
	if st.Checkpoints != 1 || st.Generation != 1 {
		t.Fatalf("stats after checkpoint: %+v", st)
	}
	// The image alone now carries everything.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen := parseGeneration(string(img)); gen != 1 {
		t.Fatalf("image generation = %d, want 1", gen)
	}
	// Post-checkpoint writes land in the fresh log and replay over the image.
	if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)", Text("post"), Int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := walTestDB(t, dir, WALOptions{})
	defer db2.Close()
	if n := kvCount(t, db2); n != 11 {
		t.Fatalf("recovered %d rows, want 11", n)
	}
	if got := db2.WALStats().Replayed; got != 1 {
		t.Fatalf("replayed %d records over the checkpoint image, want 1", got)
	}
}

func TestWALStaleGenerationDiscarded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	db := walTestDB(t, dir, WALOptions{})
	for i := 0; i < 5; i++ {
		if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)",
			Text(fmt.Sprintf("k%d", i)), Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash in the checkpoint window after the image rename but
	// before the WAL reset: write a generation-1 image by hand, leaving the
	// generation-0 log (with its 5 inserts) beside it.
	img, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	data := generationHeader(1) + img.Dump()
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, open := range []string{"plain", "wal"} {
		var got *DB
		if open == "plain" {
			if got, err = Open(path); err != nil {
				t.Fatal(err)
			}
		} else {
			if got, err = OpenWithWAL(path, WALOptions{}); err != nil {
				t.Fatal(err)
			}
			defer got.Close()
		}
		if n := kvCount(t, got); n != 5 {
			t.Fatalf("%s open: %d rows, want 5 (stale WAL must not double-apply)", open, n)
		}
		if got.WALStats().Replayed != 0 {
			t.Fatalf("%s open replayed records from a stale-generation WAL", open)
		}
	}
}

func TestWALSaveElsewhereThenReopen(t *testing.T) {
	// A plain (non-WAL) Save to the DB's own path must invalidate a sidecar
	// WAL it has absorbed — the generation bump covers this.
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	db := walTestDB(t, dir, WALOptions{})
	if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)", Text("a"), Int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	plain, err := Open(path) // replays the sidecar WAL
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Save(path); err != nil { // non-WAL durable save, new generation
		t.Fatal(err)
	}
	again, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := kvCount(t, again); n != 1 {
		t.Fatalf("after save+reopen: %d rows, want 1 (WAL replayed twice?)", n)
	}
}

func TestWALAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := walTestDB(t, dir, WALOptions{CheckpointBytes: 2048})
	for i := 0; i < 200; i++ {
		if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)",
			Text(fmt.Sprintf("key-%04d", i)), Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := db.WALStats()
	if st.Checkpoints == 0 {
		t.Fatalf("no automatic checkpoint after %d bytes of records", st.Bytes)
	}
	if st.Size >= st.Bytes+walHeaderSize {
		t.Fatalf("wal never truncated: size=%d appended=%d", st.Size, st.Bytes)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := walTestDB(t, dir, WALOptions{})
	defer db2.Close()
	if n := kvCount(t, db2); n != 200 {
		t.Fatalf("recovered %d rows, want 200", n)
	}
}

func TestWALRelaxedSyncStillRecovers(t *testing.T) {
	dir := t.TempDir()
	db := walTestDB(t, dir, WALOptions{SyncEvery: 16})
	for i := 0; i < 50; i++ {
		if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)",
			Text(fmt.Sprintf("k%03d", i)), Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Close fsyncs the deferred tail, so a clean shutdown loses nothing even
	// under the relaxed policy.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := walTestDB(t, dir, WALOptions{})
	defer db2.Close()
	if n := kvCount(t, db2); n != 50 {
		t.Fatalf("recovered %d rows, want 50", n)
	}
}

func TestWALNoRecordsForNoOps(t *testing.T) {
	dir := t.TempDir()
	db := walTestDB(t, dir, WALOptions{})
	defer db.Close()
	base := db.WALStats().Records
	// Schema reinstall and no-op DML must not grow the log.
	if _, err := db.Exec("CREATE TABLE IF NOT EXISTS kv (k TEXT PRIMARY KEY, v INTEGER NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM kv WHERE k = ?", Text("absent")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE kv SET v = 0 WHERE k = ?", Text("absent")); err != nil {
		t.Fatal(err)
	}
	if got := db.WALStats().Records; got != base {
		t.Fatalf("no-op statements appended %d records", got-base)
	}
}

func TestWALMutationsFailAfterClose(t *testing.T) {
	dir := t.TempDir()
	db := walTestDB(t, dir, WALOptions{})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)", Text("x"), Int64(1)); err == nil {
		t.Fatal("insert after Close succeeded")
	}
	// Reads still work.
	if _, err := db.Query("SELECT * FROM kv"); err != nil {
		t.Fatal(err)
	}
}

// FuzzWALRecord fuzzes both directions of the frame codec: arbitrary bytes
// through replay must stop cleanly (no panic, no apply of a corrupt frame),
// and a valid encoded record prefixed to the fuzz data must always survive.
func FuzzWALRecord(f *testing.F) {
	f.Add("INSERT INTO t VALUES (?)", int64(1), "txt", []byte{1, 2}, []byte{})
	f.Add("", int64(-9), "", []byte(nil), []byte{0xff, 0xff, 0xff, 0xff})
	f.Add("UPDATE x SET a = ?", int64(0), "δ", []byte{0, 0, 0}, []byte("GWAL garbage"))
	f.Fuzz(func(t *testing.T, sql string, n int64, txt string, blob, tail []byte) {
		args := []Value{Int64(n), Text(txt), Blob(blob), Null(), Float64(float64(n) / 3)}
		payload := appendWALPayload(nil, sql, args)
		gotSQL, gotArgs, err := decodeWALPayload(payload)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if gotSQL != sql || len(gotArgs) != len(args) {
			t.Fatalf("round-trip mismatch: %q/%d vs %q/%d", gotSQL, len(gotArgs), sql, len(args))
		}
		for i := range args {
			if !walValuesEqual(gotArgs[i], args[i]) {
				t.Fatalf("arg %d mismatch: %+v vs %+v", i, gotArgs[i], args[i])
			}
		}
		// One valid frame, then arbitrary tail bytes: replay must apply
		// exactly the valid record and stop cleanly at the damage.
		stream := appendWALFrame(nil, sql, args)
		validLen := int64(walHeaderSize + len(stream))
		stream = append(stream, tail...)
		applied := 0
		off, cnt, err := replayWALFile(bytes.NewReader(stream), func(gotSQL string, gotArgs []Value) error {
			applied++
			if gotSQL != sql {
				t.Fatalf("replayed sql %q, want %q", gotSQL, sql)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay returned error: %v", err)
		}
		if applied < 1 || cnt < 1 {
			t.Fatalf("valid leading record not applied (applied=%d cnt=%d)", applied, cnt)
		}
		if off < validLen {
			t.Fatalf("valid offset %d went backwards past the intact record end %d", off, validLen)
		}
		// Raw tail bytes alone: must never panic, never report an error
		// (tail damage is a clean stop), and never apply a frame whose CRC
		// does not check out — replayWALFile verifies CRC before apply, so
		// reaching apply with corrupt data would be the codec's bug.
		_, _, err = replayWALFile(bytes.NewReader(tail), func(string, []Value) error { return nil })
		if err != nil {
			t.Fatalf("tail-only replay returned error: %v", err)
		}
	})
}

func TestWALFrameLengthSanity(t *testing.T) {
	// A frame claiming an absurd payload length must stop replay, not
	// allocate gigabytes.
	var frame [walFrameSize]byte
	binary.LittleEndian.PutUint32(frame[:4], maxWALPayload+1)
	off, n, err := replayWALFile(bytes.NewReader(frame[:]), func(string, []Value) error {
		t.Fatal("applied a frame with an absurd length")
		return nil
	})
	if err != nil || n != 0 || off != walHeaderSize {
		t.Fatalf("replay of absurd frame: off=%d n=%d err=%v", off, n, err)
	}
}
