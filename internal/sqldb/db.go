package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"goofi/internal/obsv"
	"goofi/internal/vfs"
)

// Exported error values callers can match with errors.Is.
var (
	// ErrNoSuchTable is returned when a statement names an unknown table.
	ErrNoSuchTable = errors.New("no such table")
	// ErrTableExists is returned by CREATE TABLE for an existing table.
	ErrTableExists = errors.New("table already exists")
	// ErrConstraint is returned when a NOT NULL, UNIQUE or PRIMARY KEY
	// constraint is violated.
	ErrConstraint = errors.New("constraint violation")
	// ErrForeignKey is returned when a FOREIGN KEY constraint is violated.
	// The paper (§2.3) relies on these to keep campaign data consistent.
	ErrForeignKey = errors.New("foreign key constraint violation")
)

// DB is an in-memory relational database with optional file persistence.
// All methods are safe for concurrent use.
//
// A DB opened with OpenWithWAL additionally appends every mutating statement
// to a write-ahead log before Exec returns, replays that log on open, and
// folds it into the dump image on Checkpoint — see wal.go.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table // keyed by lower-cased name
	order  []string          // creation order of lower-cased names

	// generation numbers the dump image this in-memory state extends; it is
	// guarded by mu and advanced by every Save/Checkpoint.
	generation uint64
	// path is the image file this DB was opened from ("" for New()).
	path string
	// fs is the filesystem every file operation routes through; nil means
	// vfs.OS (see fsys). Immutable once set by the Open* constructors.
	fs vfs.FS

	// WAL state; wal is nil outside WAL mode and immutable once set.
	wal     *wal
	walOpts WALOptions
	// lastWALBatch is the most recent commit batch acknowledged to this DB's
	// callers, and lastWALSynced whether that batch ended in an fsync —
	// provenance for "which group commit made my row durable".
	lastWALBatch  atomic.Int64
	lastWALSynced atomic.Bool
	// ckptMu serialises checkpoints (explicit and size-triggered).
	ckptMu sync.Mutex
}

// table holds the definition and rows of one table.
type table struct {
	def     createTableStmt
	rows    [][]Value
	pkIndex map[string]int // PK key -> index in rows; nil when table has no PK
	colIdx  map[string]int // lower-cased column name -> position
}

// Result reports the effect of a non-query statement.
type Result struct {
	// RowsAffected counts rows inserted, updated or deleted.
	RowsAffected int64
}

// Rows is the fully materialised result of a query.
type Rows struct {
	// Columns holds the output column names in order.
	Columns []string
	// Data holds one slice per result row.
	Data [][]Value
}

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.Data) }

// New creates an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table)}
}

// Exec parses and executes a statement that does not return rows.
// Parameters referenced with ? bind to args in order. On a WAL-backed
// database a state-changing statement is also appended to the log, and Exec
// returns only once the record is acknowledged per the sync policy — under
// the default strict policy, once it is fsynced.
func (db *DB) Exec(query string, args ...Value) (Result, error) {
	return db.exec(query, args, true)
}

func (db *DB) exec(query string, args []Value, logWAL bool) (Result, error) {
	st, err := parse(query)
	if err != nil {
		return Result{}, fmt.Errorf("exec %q: %w", abbreviate(query), err)
	}
	db.mu.Lock()
	res, mutated, err := db.execStmtLocked(st, args, query)
	// Enqueue under mu so WAL order matches execution order; wait for the
	// group commit after unlocking so concurrent committers coalesce.
	var ack chan walAck
	if err == nil && mutated && logWAL && db.wal != nil {
		ack = db.wal.append(query, args)
	}
	db.mu.Unlock()
	if ack != nil {
		a := <-ack
		if a.err != nil {
			return res, a.err
		}
		db.lastWALBatch.Store(a.batch)
		db.lastWALSynced.Store(a.synced)
		db.maybeAutoCheckpoint()
	}
	return res, err
}

// LastWALBatch reports the WAL group-commit batch that acknowledged this DB's
// most recent logged statement, and whether that batch was fsynced before the
// acknowledgement. Zero batch means no statement has been WAL-committed (or
// the DB runs without a WAL).
func (db *DB) LastWALBatch() (batch int64, synced bool) {
	return db.lastWALBatch.Load(), db.lastWALSynced.Load()
}

// execStmtLocked dispatches a parsed statement under db.mu and reports
// whether it changed state — only state changes are worth a WAL record, so
// no-ops (CREATE IF NOT EXISTS of an existing table, a DELETE matching
// nothing) don't grow the log on every open.
func (db *DB) execStmtLocked(st statement, args []Value, query string) (Result, bool, error) {
	switch s := st.(type) {
	case *createTableStmt:
		_, existed := db.tables[strings.ToLower(s.Name)]
		err := db.execCreate(s)
		return Result{}, err == nil && !existed, err
	case *dropTableStmt:
		_, existed := db.tables[strings.ToLower(s.Name)]
		err := db.execDrop(s)
		return Result{}, err == nil && existed, err
	case *insertStmt:
		res, err := db.execInsert(s, args)
		return res, err == nil && res.RowsAffected > 0, err
	case *updateStmt:
		res, err := db.execUpdate(s, args)
		return res, err == nil && res.RowsAffected > 0, err
	case *deleteStmt:
		res, err := db.execDelete(s, args)
		return res, err == nil && res.RowsAffected > 0, err
	case *selectStmt:
		return Result{}, false, fmt.Errorf("exec %q: use Query for SELECT", abbreviate(query))
	default:
		return Result{}, false, fmt.Errorf("exec %q: unsupported statement", abbreviate(query))
	}
}

// Checkpoint folds the write-ahead log into the dump image: the current state
// is durably written to the database path at the next generation and the log
// is truncated to a fresh header carrying that generation. A crash anywhere
// in between is safe — until the image rename lands the old image + old WAL
// is the recovery state, and after it the leftover old-generation WAL is
// recognised as stale and discarded.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("sqldb: checkpoint: database has no write-ahead log")
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpointNow()
}

// checkpointNow is Checkpoint's body; callers hold ckptMu.
func (db *DB) checkpointNow() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	gen := db.generation + 1
	data := generationHeader(gen) + db.dumpLocked()
	if err := db.writeFileDurable(db.path, []byte(data)); err != nil {
		return fmt.Errorf("checkpoint database: %w", err)
	}
	// Holding mu means nothing can be enqueued between the image write and
	// the log reset, so every record the reset discards is in the image.
	if err := db.wal.reset(gen); err != nil {
		return fmt.Errorf("checkpoint database: %w", err)
	}
	db.generation = gen
	return nil
}

// maybeAutoCheckpoint runs a checkpoint when the log has outgrown the
// configured threshold. Best-effort: if another checkpoint is already
// running it backs off, and a failure is recorded as a counter rather than
// surfaced — the log keeps the data safe either way, just un-compacted.
func (db *DB) maybeAutoCheckpoint() {
	limit := db.walOpts.CheckpointBytes
	if db.wal == nil || limit <= 0 || db.wal.size.Load() < limit {
		return
	}
	if !db.ckptMu.TryLock() {
		return
	}
	defer db.ckptMu.Unlock()
	if db.wal.size.Load() < limit {
		return // a racing checkpoint already folded it
	}
	if err := db.checkpointNow(); err != nil {
		db.wal.rec.Load().Count("wal.checkpoint-errors", 1)
	}
}

// Close flushes and detaches the write-ahead log, fsyncing anything still
// pending. On a non-WAL database it is a no-op. The DB remains readable;
// further mutations fail.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.close()
}

// SetObserver attaches a recorder to the WAL's group-commit loop (wal-append
// phase spans and wal.* counters). No-op outside WAL mode; safe to call at
// any time, including with nil to detach.
func (db *DB) SetObserver(rec *obsv.Recorder) {
	if db.wal != nil {
		db.wal.rec.Store(rec)
	}
}

// WALEnabled reports whether this database was opened with OpenWithWAL.
func (db *DB) WALEnabled() bool { return db.wal != nil }

// WALStats returns a snapshot of write-ahead log activity (zero outside WAL
// mode, except Generation which is always current).
func (db *DB) WALStats() WALStats {
	var s WALStats
	if db.wal != nil {
		s = db.wal.stats()
	}
	db.mu.RLock()
	s.Generation = db.generation
	db.mu.RUnlock()
	return s
}

// Query parses and executes a SELECT, returning the materialised rows.
func (db *DB) Query(query string, args ...Value) (*Rows, error) {
	st, err := parse(query)
	if err != nil {
		return nil, fmt.Errorf("query %q: %w", abbreviate(query), err)
	}
	sel, ok := st.(*selectStmt)
	if !ok {
		return nil, fmt.Errorf("query %q: not a SELECT statement", abbreviate(query))
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	rows, err := db.execSelect(sel, args)
	if err != nil {
		return nil, fmt.Errorf("query %q: %w", abbreviate(query), err)
	}
	return rows, nil
}

// QueryRow runs a query expected to return exactly one row and returns it.
func (db *DB) QueryRow(query string, args ...Value) ([]Value, error) {
	rows, err := db.Query(query, args...)
	if err != nil {
		return nil, err
	}
	if rows.Len() != 1 {
		return nil, fmt.Errorf("query %q: expected 1 row, got %d", abbreviate(query), rows.Len())
	}
	return rows.Data[0], nil
}

// Tables returns the table names in creation order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.order))
	for _, name := range db.order {
		out = append(out, db.tables[name].def.Name)
	}
	return out
}

// TableSchema describes a table for introspection.
type TableSchema struct {
	Name        string
	Columns     []ColumnSchema
	PrimaryKey  []string
	ForeignKeys []ForeignKeySchema
}

// ColumnSchema describes one column.
type ColumnSchema struct {
	Name    string
	Type    ColType
	NotNull bool
	Unique  bool
}

// ForeignKeySchema describes one foreign-key constraint.
type ForeignKeySchema struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Schema returns the schema of the named table.
func (db *DB) Schema(name string) (TableSchema, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return TableSchema{}, fmt.Errorf("schema: %w: %s", ErrNoSuchTable, name)
	}
	ts := TableSchema{Name: t.def.Name}
	for _, c := range t.def.Columns {
		ts.Columns = append(ts.Columns, ColumnSchema{Name: c.Name, Type: c.Type, NotNull: c.NotNull, Unique: c.Unique})
	}
	ts.PrimaryKey = append(ts.PrimaryKey, t.def.PrimaryKey...)
	for _, fk := range t.def.ForeignKeys {
		ts.ForeignKeys = append(ts.ForeignKeys, ForeignKeySchema{
			Columns:    append([]string(nil), fk.Columns...),
			RefTable:   fk.RefTable,
			RefColumns: append([]string(nil), fk.RefColumns...),
		})
	}
	return ts, nil
}

// RowCount returns the number of rows stored in the named table.
func (db *DB) RowCount(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("rowcount: %w: %s", ErrNoSuchTable, name)
	}
	return len(t.rows), nil
}

func abbreviate(q string) string {
	q = strings.Join(strings.Fields(q), " ")
	if len(q) > 60 {
		return q[:57] + "..."
	}
	return q
}

// --- DDL execution ---

func (db *DB) execCreate(s *createTableStmt) error {
	key := strings.ToLower(s.Name)
	if _, exists := db.tables[key]; exists {
		if s.IfNotExists {
			return nil
		}
		return fmt.Errorf("create table: %w: %s", ErrTableExists, s.Name)
	}
	colIdx := make(map[string]int, len(s.Columns))
	for i, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if _, dup := colIdx[lc]; dup {
			return fmt.Errorf("create table %s: duplicate column %s", s.Name, c.Name)
		}
		colIdx[lc] = i
	}
	for _, pk := range s.PrimaryKey {
		if _, ok := colIdx[strings.ToLower(pk)]; !ok {
			return fmt.Errorf("create table %s: PRIMARY KEY names unknown column %s", s.Name, pk)
		}
	}
	for _, fk := range s.ForeignKeys {
		for _, c := range fk.Columns {
			if _, ok := colIdx[strings.ToLower(c)]; !ok {
				return fmt.Errorf("create table %s: FOREIGN KEY names unknown column %s", s.Name, c)
			}
		}
		// Self-references (e.g. LoggedSystemState.parentExperiment) resolve
		// against the table being created.
		refCols := colIdx
		if !strings.EqualFold(fk.RefTable, s.Name) {
			ref, ok := db.tables[strings.ToLower(fk.RefTable)]
			if !ok {
				return fmt.Errorf("create table %s: %w: referenced table %s", s.Name, ErrNoSuchTable, fk.RefTable)
			}
			refCols = ref.colIdx
		}
		for _, rc := range fk.RefColumns {
			if _, ok := refCols[strings.ToLower(rc)]; !ok {
				return fmt.Errorf("create table %s: FOREIGN KEY references unknown column %s.%s", s.Name, fk.RefTable, rc)
			}
		}
	}
	t := &table{def: *s, colIdx: colIdx}
	if len(s.PrimaryKey) > 0 {
		t.pkIndex = make(map[string]int)
	}
	db.tables[key] = t
	db.order = append(db.order, key)
	return nil
}

func (db *DB) execDrop(s *dropTableStmt) error {
	key := strings.ToLower(s.Name)
	if _, ok := db.tables[key]; !ok {
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("drop table: %w: %s", ErrNoSuchTable, s.Name)
	}
	// Refuse to drop a table that other tables reference.
	for _, other := range db.tables {
		if strings.EqualFold(other.def.Name, s.Name) {
			continue
		}
		for _, fk := range other.def.ForeignKeys {
			if strings.EqualFold(fk.RefTable, s.Name) {
				return fmt.Errorf("drop table %s: %w: referenced by %s", s.Name, ErrForeignKey, other.def.Name)
			}
		}
	}
	delete(db.tables, key)
	for i, n := range db.order {
		if n == key {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	return nil
}
