package sqldb

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind ValueKind
	}{
		{"null", Null(), KindNull},
		{"int", Int64(42), KindInt},
		{"real", Float64(3.5), KindReal},
		{"text", Text("hi"), KindText},
		{"blob", Blob([]byte{1, 2}), KindBlob},
		{"bool true", Bool(true), KindInt},
		{"bool false", Bool(false), KindInt},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind != tt.kind {
				t.Fatalf("kind = %v, want %v", tt.v.Kind, tt.kind)
			}
		})
	}
}

func TestBlobCopiesInput(t *testing.T) {
	src := []byte{1, 2, 3}
	v := Blob(src)
	src[0] = 99
	if v.Blob[0] != 1 {
		t.Fatalf("Blob aliased caller slice: %v", v.Blob)
	}
}

func TestValueIsTruthy(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		want bool
	}{
		{"null", Null(), false},
		{"zero int", Int64(0), false},
		{"nonzero int", Int64(-1), true},
		{"zero real", Float64(0), false},
		{"nonzero real", Float64(0.1), true},
		{"empty text", Text(""), false},
		{"text", Text("x"), true},
		{"empty blob", Blob(nil), false},
		{"blob", Blob([]byte{0}), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.IsTruthy(); got != tt.want {
				t.Fatalf("IsTruthy = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValueAsInt(t *testing.T) {
	if n, err := Int64(7).AsInt(); err != nil || n != 7 {
		t.Fatalf("AsInt(7) = %d, %v", n, err)
	}
	if n, err := Float64(7.9).AsInt(); err != nil || n != 7 {
		t.Fatalf("AsInt(7.9) = %d, %v", n, err)
	}
	if n, err := Text(" 12 ").AsInt(); err != nil || n != 12 {
		t.Fatalf("AsInt(' 12 ') = %d, %v", n, err)
	}
	if _, err := Text("xyz").AsInt(); err == nil {
		t.Fatal("AsInt('xyz') should fail")
	}
	if _, err := Null().AsInt(); err == nil {
		t.Fatal("AsInt(NULL) should fail")
	}
}

func TestValueAsReal(t *testing.T) {
	if f, err := Int64(3).AsReal(); err != nil || f != 3 {
		t.Fatalf("AsReal(3) = %g, %v", f, err)
	}
	if f, err := Text("2.5").AsReal(); err != nil || f != 2.5 {
		t.Fatalf("AsReal('2.5') = %g, %v", f, err)
	}
	if _, err := Blob([]byte{1}).AsReal(); err == nil {
		t.Fatal("AsReal(blob) should fail")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		cmp  int
		ok   bool
	}{
		{"int lt", Int64(1), Int64(2), -1, true},
		{"int eq", Int64(2), Int64(2), 0, true},
		{"int vs real", Int64(2), Float64(1.5), 1, true},
		{"real vs int equal", Float64(2), Int64(2), 0, true},
		{"text", Text("a"), Text("b"), -1, true},
		{"blob", Blob([]byte("ab")), Blob([]byte("ab")), 0, true},
		{"null left", Null(), Int64(1), 0, false},
		{"null right", Int64(1), Null(), 0, false},
		{"text vs int", Text("1"), Int64(1), 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, ok := tt.a.Compare(tt.b)
			if ok != tt.ok || (ok && c != tt.cmp) {
				t.Fatalf("Compare = %d,%v want %d,%v", c, ok, tt.cmp, tt.ok)
			}
		})
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Fatal("NULL must not equal NULL")
	}
	if Null().Equal(Int64(0)) {
		t.Fatal("NULL must not equal 0")
	}
}

func TestCoerce(t *testing.T) {
	tests := []struct {
		name    string
		in      Value
		typ     ColType
		want    Value
		wantErr bool
	}{
		{"int to int", Int64(5), TypeInteger, Int64(5), false},
		{"real to int", Float64(5.7), TypeInteger, Int64(5), false},
		{"text to int", Text("9"), TypeInteger, Int64(9), false},
		{"bad text to int", Text("q"), TypeInteger, Value{}, true},
		{"int to real", Int64(2), TypeReal, Float64(2), false},
		{"int to text", Int64(2), TypeText, Text("2"), false},
		{"blob to text", Blob([]byte("hi")), TypeText, Text("hi"), false},
		{"text to blob", Text("hi"), TypeBlob, Blob([]byte("hi")), false},
		{"int to blob", Int64(1), TypeBlob, Value{}, true},
		{"null passes through", Null(), TypeInteger, Null(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := coerce(tt.in, tt.typ)
			if (err != nil) != tt.wantErr {
				t.Fatalf("coerce err = %v, wantErr=%v", err, tt.wantErr)
			}
			if err == nil && got.Kind != tt.want.Kind {
				t.Fatalf("coerce kind = %v, want %v", got.Kind, tt.want.Kind)
			}
		})
	}
}

// Property: Compare is antisymmetric and consistent with Equal for integers.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int64(a), Int64(b)
		c1, ok1 := va.Compare(vb)
		c2, ok2 := vb.Compare(va)
		if !ok1 || !ok2 {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the PK key function is injective on integers and distinguishes
// kinds (no text collides with the int encoding of its own digits).
func TestValueKeyProperty(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return Int64(a).key() == Int64(b).key()
		}
		return Int64(a).key() != Int64(b).key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Int64(12).key() == Text("12").key() {
		t.Fatal("int and text keys must differ")
	}
	// Numerically equal int and real share a key (needed for cross-kind PKs).
	if Int64(3).key() != Float64(3).key() {
		t.Fatal("int 3 and real 3.0 should share a key")
	}
}

func TestColTypeString(t *testing.T) {
	for typ, want := range map[ColType]string{
		TypeInteger: "INTEGER", TypeReal: "REAL", TypeText: "TEXT", TypeBlob: "BLOB",
	} {
		if got := typ.String(); got != want {
			t.Errorf("ColType.String() = %q, want %q", got, want)
		}
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int64(-3), "-3"},
		{Float64(2.5), "2.5"},
		{Text("abc"), "abc"},
		{Blob([]byte{0xde, 0xad}), "x'dead'"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
