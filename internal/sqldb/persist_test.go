package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestDumpRoundTrip(t *testing.T) {
	db := newGOOFISchema(t)
	mustExec(t, db, "INSERT INTO TargetSystemData VALUES ('thor-rd', 'it''s a card')")
	mustExec(t, db, "INSERT INTO CampaignData VALUES ('c1', 'thor-rd', 100)")
	mustExec(t, db, "INSERT INTO LoggedSystemState VALUES ('e1', NULL, 'c1', 'loc=R1;bit=3', x'deadbeef')")
	mustExec(t, db, "INSERT INTO LoggedSystemState VALUES ('e2', 'e1', 'c1', 'detail rerun', x'00ff')")

	dump := db.Dump()
	db2 := New()
	if err := db2.ExecScript(dump); err != nil {
		t.Fatalf("replay dump: %v\n%s", err, dump)
	}
	if db2.Dump() != dump {
		t.Fatalf("second dump differs:\n%s\nvs\n%s", db2.Dump(), dump)
	}
	row, err := db2.QueryRow("SELECT stateVector FROM LoggedSystemState WHERE experimentName = 'e1'")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row[0].Blob, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("blob = %x", row[0].Blob)
	}
	row, err = db2.QueryRow("SELECT description FROM TargetSystemData")
	if err != nil || row[0].Text != "it's a card" {
		t.Fatalf("quote escape broken: %v %v", row, err)
	}
}

func TestSaveAndOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.goofidb")
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER PRIMARY KEY, b REAL, c TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2.5, 'x'), (2, -0.125, NULL)")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db2, "SELECT a, b, c FROM t ORDER BY a")
	if rows.Len() != 2 || rows.Data[0][1].Real != 2.5 || !rows.Data[1][2].IsNull() {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestOpenMissingFileGivesEmptyDB(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "nope.db"))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Tables()) != 0 {
		t.Fatalf("tables = %v", db.Tables())
	}
}

func TestOpenCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.db")
	if err := os.WriteFile(path, []byte("CREATE GARBAGE;"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt file should fail to open")
	}
}

func TestSplitStatements(t *testing.T) {
	stmts, err := SplitStatements(`
		CREATE TABLE t (a TEXT); -- comment with ; inside
		INSERT INTO t VALUES ('semi;colon');
		SELECT * FROM t
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %q", stmts)
	}
	if !strings.Contains(stmts[1], "semi;colon") {
		t.Fatalf("string literal split: %q", stmts[1])
	}
}

func TestSplitStatementsUnterminated(t *testing.T) {
	if _, err := SplitStatements("INSERT INTO t VALUES ('oops"); err == nil {
		t.Fatal("should fail")
	}
}

func TestExecScriptReportsStatementIndex(t *testing.T) {
	db := New()
	err := db.ExecScript("CREATE TABLE t (a INTEGER); INSERT INTO missing VALUES (1);")
	if err == nil || !strings.Contains(err.Error(), "statement 2") {
		t.Fatalf("err = %v", err)
	}
}

// Property-style test: random tables with random contents survive a
// dump/replay round trip byte-identically.
func TestDumpRoundTripRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		db := New()
		nCols := 1 + rng.Intn(4)
		cols := make([]string, nCols)
		types := make([]ColType, nCols)
		for c := 0; c < nCols; c++ {
			types[c] = ColType(1 + rng.Intn(4))
			cols[c] = fmt.Sprintf("c%d %s", c, types[c])
		}
		mustExec(t, db, "CREATE TABLE rt ("+strings.Join(cols, ", ")+")")
		nRows := rng.Intn(30)
		for r := 0; r < nRows; r++ {
			vals := make([]Value, nCols)
			ph := make([]string, nCols)
			for c := 0; c < nCols; c++ {
				ph[c] = "?"
				switch rng.Intn(5) {
				case 0:
					vals[c] = Null()
				default:
					switch types[c] {
					case TypeInteger:
						vals[c] = Int64(rng.Int63n(1e9) - 5e8)
					case TypeReal:
						vals[c] = Float64(float64(rng.Int63n(1e6)) / 64.0)
					case TypeText:
						vals[c] = Text(randText(rng))
					case TypeBlob:
						b := make([]byte, rng.Intn(8))
						rng.Read(b)
						vals[c] = Blob(b)
					}
				}
			}
			mustExec(t, db, "INSERT INTO rt VALUES ("+strings.Join(ph, ",")+")", vals...)
		}
		dump := db.Dump()
		db2 := New()
		if err := db2.ExecScript(dump); err != nil {
			t.Fatalf("trial %d replay: %v\n%s", trial, err, dump)
		}
		if db2.Dump() != dump {
			t.Fatalf("trial %d: dumps differ", trial)
		}
	}
}

func randText(rng *rand.Rand) string {
	alphabet := "abcXYZ 0123'%;_-"
	n := rng.Intn(12)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}
