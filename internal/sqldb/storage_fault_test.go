package sqldb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goofi/internal/vfs"
)

// TestOpenTruncatedImage: an image cut off mid-statement (the shape a torn
// non-atomic write would leave) must fail the open loudly, not come up as a
// silently smaller database.
func TestOpenTruncatedImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'first'), (2, 'second')")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the final INSERT's string literal: unterminated statement.
	if err := os.WriteFile(path, img[:len(img)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("truncated image opened cleanly")
	}
}

// TestOpenWALCorruptImage: WAL-mode open goes through the same image load and
// must reject a corrupt image the same way the plain open does.
func TestOpenWALCorruptImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.db")
	if err := os.WriteFile(path, []byte("CREATE GARBAGE;"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWithWAL(path, WALOptions{SyncEvery: 1}); err == nil {
		t.Fatal("corrupt image opened cleanly in WAL mode")
	}
}

// TestOpenUnreadableWALSidecar: a read error while replaying the sidecar is a
// device fault, not a torn tail — the open must surface it instead of
// silently truncating acknowledged records.
func TestOpenUnreadableWALSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	db, err := OpenWithWAL(path, WALOptions{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (42)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Sanity: the sidecar holds the records and a healthy open recovers them.
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if rows := mustQuery(t, db2, "SELECT a FROM t"); rows.Len() != 1 {
		t.Fatalf("sanity open recovered %d rows, want 1", rows.Len())
	}

	// Op 0 is the image ReadFile, op 1 the sidecar open; op 2 is the first
	// read of the sidecar header — fail exactly that.
	fsys, err := vfs.NewFaulty(vfs.OS{}, vfs.FaultyConfig{
		Schedule: vfs.Schedule{{Op: 2, Kind: vfs.FaultReadErr}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = OpenFS(path, fsys)
	if err == nil {
		t.Fatal("open with an unreadable WAL sidecar succeeded silently")
	}
	if !vfs.IsTransient(err) {
		t.Errorf("sidecar read fault should stay transient through the wraps: %v", err)
	}
	if !strings.Contains(err.Error(), "wal") {
		t.Errorf("error does not identify the WAL as the failing part: %v", err)
	}
}

// TestSaveRollsBackGenerationOnError: a failed save must roll the generation
// bump back, or the next successful save writes an image whose generation
// skips a step while the sidecar WAL still names the current one.
func TestSaveRollsBackGenerationOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.db")
	fsys, err := vfs.NewFaulty(vfs.OS{}, vfs.FaultyConfig{
		Schedule: vfs.Schedule{{Op: 0, Kind: vfs.FaultOpenErr}}, // fail the temp-file create of the first save only
	})
	if err != nil {
		t.Fatal(err)
	}
	db := New()
	db.fs = fsys
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if err := db.Save(path); err == nil {
		t.Fatal("save with an injected temp-create fault succeeded")
	}
	if db.generation != 0 {
		t.Fatalf("generation advanced to %d on a failed save", db.generation)
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g := parseGeneration(string(data)); g != 1 {
		t.Fatalf("image generation %d after fail-then-succeed, want 1", g)
	}
}
