package thor

import (
	"strings"
	"testing"
)

func newSystemT(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildTAPChains(t *testing.T) {
	s := newSystemT(t)
	tap, err := BuildTAP(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{ChainCore, ChainICache, ChainDCache, ChainDebug, ChainBoundary}
	got := tap.Chains()
	if len(got) != len(want) {
		t.Fatalf("chains = %d, want %d", len(got), len(want))
	}
	names := make(map[string]bool)
	for _, c := range got {
		names[c.Name()] = true
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("missing chain %s", n)
		}
	}
}

func TestCoreChainReadsAndWritesRegisters(t *testing.T) {
	s := newSystemT(t)
	tap, err := BuildTAP(s)
	if err != nil {
		t.Fatal(err)
	}
	s.CPU.Regs[3] = 0xAABBCCDD
	s.CPU.PC = 0x40
	tap.Reset()
	if err := tap.SelectChain(ChainCore); err != nil {
		t.Fatal(err)
	}
	ch, err := tap.ChainByName(ChainCore)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := tap.ReadChain()
	if err != nil {
		t.Fatal(err)
	}
	off, width, err := ch.FieldOffset("R3")
	if err != nil {
		t.Fatal(err)
	}
	if got := bits.Uint64(off, width); got != 0xAABBCCDD {
		t.Fatalf("R3 via scan = %#x", got)
	}
	pcOff, pcWidth, _ := ch.FieldOffset("PC")
	if got := bits.Uint64(pcOff, pcWidth); got != 0x40 {
		t.Fatalf("PC via scan = %#x", got)
	}
	// Inject a bit flip into R3 through the chain (the SCIFI operation).
	bits.Flip(off + 7)
	if _, err := tap.WriteChain(bits); err != nil {
		t.Fatal(err)
	}
	if s.CPU.Regs[3] != 0xAABBCCDD^(1<<7) {
		t.Fatalf("R3 after injection = %#x", s.CPU.Regs[3])
	}
}

func TestDebugChainProgramsBreakpoint(t *testing.T) {
	s := newSystemT(t)
	tap, err := BuildTAP(s)
	if err != nil {
		t.Fatal(err)
	}
	tap.Reset()
	if err := tap.SelectChain(ChainDebug); err != nil {
		t.Fatal(err)
	}
	ch, _ := tap.ChainByName(ChainDebug)
	bits, err := tap.ReadChain()
	if err != nil {
		t.Fatal(err)
	}
	addrOff, _, _ := ch.FieldOffset("bp_addr")
	enOff, _, _ := ch.FieldOffset("bp_addr_en")
	bits.PutUint64(addrOff, 32, 0x8)
	bits.Set(enOff, true)
	if _, err := tap.WriteChain(bits); err != nil {
		t.Fatal(err)
	}
	if !s.Debug.BPAddrEnable || s.Debug.BPAddr != 0x8 {
		t.Fatalf("debug = %+v", s.Debug)
	}
	// Read-only cells must reject writes: flip "cycles" and confirm no change.
	cyclesOff, _, _ := ch.FieldOffset("cycles")
	bits2, _ := tap.ReadChain()
	bits2.PutUint64(cyclesOff, 64, 999)
	if _, err := tap.WriteChain(bits2); err != nil {
		t.Fatal(err)
	}
	if s.CPU.Cycles() != 0 {
		t.Fatal("read-only cycle counter was driven")
	}
}

func TestRunUntilBreakPC(t *testing.T) {
	s := newSystemT(t)
	prog := []Instr{
		{Op: OpLDI, Rd: 1, Imm: 1},
		{Op: OpLDI, Rd: 2, Imm: 2},
		{Op: OpLDI, Rd: 3, Imm: 3},
		{Op: OpHALT},
	}
	for i, in := range prog {
		w, _ := Encode(in)
		if err := s.CPU.WriteWordHost(uint32(4*i), w); err != nil {
			t.Fatal(err)
		}
	}
	s.Debug.BPAddr = 8
	s.Debug.BPAddrEnable = true
	reason, st := s.RunUntilBreak(100)
	if reason != BreakPC || st != StatusRunning {
		t.Fatalf("reason=%v status=%v", reason, st)
	}
	if s.CPU.PC != 8 || s.CPU.Regs[3] != 0 {
		t.Fatal("breakpoint did not halt before the instruction")
	}
	if !s.Debug.Hit {
		t.Fatal("Hit latch not set")
	}
	// Resume without the breakpoint: runs to completion.
	s.Debug.BPAddrEnable = false
	reason, st = s.RunUntilBreak(100)
	if reason != BreakNone || st != StatusHalted || s.CPU.Regs[3] != 3 {
		t.Fatalf("resume: reason=%v status=%v R3=%d", reason, st, s.CPU.Regs[3])
	}
}

func TestRunUntilBreakCycle(t *testing.T) {
	s := newSystemT(t)
	w, _ := Encode(Instr{Op: OpBRA, Imm: -1})
	if err := s.CPU.WriteWordHost(0, w); err != nil {
		t.Fatal(err)
	}
	s.Debug.BPCycle = 10
	s.Debug.BPCycleEnable = true
	reason, _ := s.RunUntilBreak(1000)
	if reason != BreakCycle || s.CPU.Cycles() != 10 {
		t.Fatalf("reason=%v cycles=%d", reason, s.CPU.Cycles())
	}
}

func TestRunUntilBreakMaxSteps(t *testing.T) {
	s := newSystemT(t)
	w, _ := Encode(Instr{Op: OpBRA, Imm: -1})
	if err := s.CPU.WriteWordHost(0, w); err != nil {
		t.Fatal(err)
	}
	reason, st := s.RunUntilBreak(25)
	if reason != BreakNone || st != StatusRunning || s.CPU.Cycles() != 25 {
		t.Fatalf("reason=%v status=%v cycles=%d", reason, st, s.CPU.Cycles())
	}
}

func TestCacheChainInjectionDetectedByParity(t *testing.T) {
	s := newSystemT(t)
	prog := []Instr{
		{Op: OpLDI, Rd: 1, Imm: 0x8000},
		{Op: OpLD, Rd: 2, Rs: 1, Imm: 0},
		{Op: OpLD, Rd: 3, Rs: 1, Imm: 0},
		{Op: OpHALT},
	}
	for i, in := range prog {
		w, _ := Encode(in)
		if err := s.CPU.WriteWordHost(uint32(4*i), w); err != nil {
			t.Fatal(err)
		}
	}
	// Run two instructions so the D-cache line for 0x8000 is filled.
	s.CPU.Step()
	s.CPU.Step()
	tap, err := BuildTAP(s)
	if err != nil {
		t.Fatal(err)
	}
	tap.Reset()
	if err := tap.SelectChain(ChainDCache); err != nil {
		t.Fatal(err)
	}
	ch, _ := tap.ChainByName(ChainDCache)
	idx, _ := s.CPU.DCache().index(0x8000)
	off, _, err := ch.FieldOffset(lineField(idx, "data"))
	if err != nil {
		t.Fatal(err)
	}
	bits, err := tap.ReadChain()
	if err != nil {
		t.Fatal(err)
	}
	bits.Flip(off + 3)
	if _, err := tap.WriteChain(bits); err != nil {
		t.Fatal(err)
	}
	// The next load hits the corrupted line and the parity EDM fires.
	st := s.CPU.Run(10)
	if st != StatusDetected {
		t.Fatalf("status = %v", st)
	}
	if d := s.CPU.Detection(); d.Mechanism != EDMDCacheParity {
		t.Fatalf("detection = %v", d)
	}
}

func lineField(idx int, part string) string {
	return "line" + itoa(idx) + "." + part
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var sb strings.Builder
	var digits []byte
	for n > 0 {
		digits = append(digits, byte('0'+n%10))
		n /= 10
	}
	for i := len(digits) - 1; i >= 0; i-- {
		sb.WriteByte(digits[i])
	}
	return sb.String()
}

func TestBoundaryChainWritable(t *testing.T) {
	s := newSystemT(t)
	tap, err := BuildTAP(s)
	if err != nil {
		t.Fatal(err)
	}
	tap.Reset()
	if err := tap.SelectChain(ChainBoundary); err != nil {
		t.Fatal(err)
	}
	ch, _ := tap.ChainByName(ChainBoundary)
	bits, _ := tap.ReadChain()
	off, _, _ := ch.FieldOffset("addr_bus")
	bits.PutUint64(off, 32, 0x12345678)
	if _, err := tap.WriteChain(bits); err != nil {
		t.Fatal(err)
	}
	if s.CPU.AddrBus != 0x12345678 {
		t.Fatalf("AddrBus = %#x", s.CPU.AddrBus)
	}
}

func TestTagWidth(t *testing.T) {
	// 64 KiB memory, 64 lines: 16K words / 64 = 256 tags -> max 255 -> 8 bits.
	if w := tagWidth(64*1024, 64); w != 8 {
		t.Fatalf("tagWidth = %d", w)
	}
	if w := tagWidth(4, 1); w != 1 {
		t.Fatalf("tagWidth minimum = %d", w)
	}
}

// TestScanInjectionEqualsDirectWrite is a metamorphic check tying the whole
// scan stack together: flipping any writable core-chain bit through the TAP
// must change exactly the same architectural bit as a direct field write.
func TestScanInjectionEqualsDirectWrite(t *testing.T) {
	s := newSystemT(t)
	// Give the registers distinctive values.
	for i := range s.CPU.Regs {
		s.CPU.Regs[i] = 0x01010101 * uint32(i+1)
	}
	s.CPU.PC = 0x1234
	s.CPU.PSW = 0x0A
	tap, err := BuildTAP(s)
	if err != nil {
		t.Fatal(err)
	}
	tap.Reset()
	if err := tap.SelectChain(ChainCore); err != nil {
		t.Fatal(err)
	}
	ch, err := tap.ChainByName(ChainCore)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func() (regs [NumRegs]uint32, pc uint32, psw uint8) {
		return s.CPU.Regs, s.CPU.PC, s.CPU.PSW
	}
	for bit := 0; bit < 16*32+32+8; bit += 37 { // stride across regs+PC+PSW
		beforeRegs, beforePC, beforePSW := snapshot()
		bits, err := tap.ReadChain()
		if err != nil {
			t.Fatal(err)
		}
		bits.Flip(bit)
		if _, err := tap.WriteChain(bits); err != nil {
			t.Fatal(err)
		}
		afterRegs, afterPC, afterPSW := snapshot()
		// Compute the expected single-bit difference.
		name := ch.BitName(bit)
		f, bitInField, err := ch.Locate(bit)
		if err != nil {
			t.Fatal(err)
		}
		diffCount := 0
		for r := 0; r < NumRegs; r++ {
			if d := beforeRegs[r] ^ afterRegs[r]; d != 0 {
				diffCount++
				if d != 1<<uint(bitInField) {
					t.Fatalf("%s: register delta %#x", name, d)
				}
			}
		}
		if d := beforePC ^ afterPC; d != 0 {
			diffCount++
			if d != 1<<uint(bitInField) {
				t.Fatalf("%s: PC delta %#x", name, d)
			}
		}
		if d := beforePSW ^ afterPSW; d != 0 {
			diffCount++
			if d != 1<<uint(bitInField) {
				t.Fatalf("%s: PSW delta %#x", name, d)
			}
		}
		if diffCount != 1 {
			t.Fatalf("%s (field %s): %d state elements changed", name, f.Name, diffCount)
		}
	}
}
