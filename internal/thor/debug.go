package thor

import "fmt"

// Debug is the on-chip debug logic the paper's SCIFI algorithm programs via
// the scan chains (§3.3): breakpoint registers that halt the workload at the
// injection point, and read-only observability cells for the campaign's
// termination conditions (timeout, error detected, workload end).
type Debug struct {
	// BPAddr halts execution when the program counter reaches this address
	// (before the instruction executes) while BPAddrEnable is set.
	BPAddr       uint32
	BPAddrEnable bool
	// BPCycle halts execution once the executed-instruction count reaches
	// this value while BPCycleEnable is set. This is how "points in time"
	// from the campaign definition become breakpoints.
	BPCycle       uint64
	BPCycleEnable bool
	// Hit latches when a breakpoint fires; the host clears it through the
	// debug scan chain before resuming.
	Hit bool
}

// BreakReason explains why RunUntilBreak returned.
type BreakReason int

// Break reasons.
const (
	// BreakNone: the CPU left the running state (halt or detection) or the
	// step budget ran out.
	BreakNone BreakReason = iota + 1
	// BreakPC: the PC breakpoint matched.
	BreakPC
	// BreakCycle: the cycle-count breakpoint matched.
	BreakCycle
)

// String names the break reason.
func (r BreakReason) String() string {
	switch r {
	case BreakNone:
		return "none"
	case BreakPC:
		return "pc-breakpoint"
	case BreakCycle:
		return "cycle-breakpoint"
	default:
		return fmt.Sprintf("BreakReason(%d)", int(r))
	}
}

// check evaluates the breakpoint conditions against the CPU state.
func (d *Debug) check(c *CPU) (BreakReason, bool) {
	if d.BPCycleEnable && c.Cycles() >= d.BPCycle {
		return BreakCycle, true
	}
	if d.BPAddrEnable && c.PC == d.BPAddr {
		return BreakPC, true
	}
	return BreakNone, false
}

// System bundles the chip: CPU core, debug logic and (once attached) the
// test access port. It is what a test card plugs into.
type System struct {
	CPU   *CPU
	Debug *Debug
}

// NewSystem builds a CPU with attached debug logic.
func NewSystem(cfg Config) (*System, error) {
	cpu, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{CPU: cpu, Debug: &Debug{}}, nil
}

// RunUntilBreak executes instructions until a breakpoint fires, the CPU
// stops running, or maxSteps instructions have executed. Breakpoints are
// evaluated before each instruction, so a PC breakpoint halts with the
// instruction at BPAddr not yet executed — faults injected at the break are
// visible to it, matching the paper's injection semantics.
func (s *System) RunUntilBreak(maxSteps uint64) (BreakReason, Status) {
	for i := uint64(0); i < maxSteps; i++ {
		if s.CPU.Status() != StatusRunning {
			return BreakNone, s.CPU.Status()
		}
		if r, hit := s.Debug.check(s.CPU); hit {
			s.Debug.Hit = true
			return r, s.CPU.Status()
		}
		s.CPU.Step()
	}
	return BreakNone, s.CPU.Status()
}
