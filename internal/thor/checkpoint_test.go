package thor

import (
	"bytes"
	"reflect"
	"testing"
)

// memoryLoop is a program that keeps mutating memory: it walks a store
// pointer through RAM while counting down, so every few cycles another page
// of the image diverges from the reset state.
func memoryLoop(t *testing.T, c *CPU, rounds int32) {
	t.Helper()
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: rounds}, // counter
		Instr{Op: OpLDI, Rd: 2, Imm: 0x8000}, // store pointer
		Instr{Op: OpLDI, Rd: 3, Imm: 0},      // running value
		// loop: (pc=12)
		Instr{Op: OpST, Rd: 3, Rs: 2, Imm: 0},
		Instr{Op: OpADDI, Rd: 3, Rs: 3, Imm: 7},
		Instr{Op: OpADDI, Rd: 2, Rs: 2, Imm: 4},
		Instr{Op: OpSUBI, Rd: 1, Rs: 1, Imm: 1},
		Instr{Op: OpCMPI, Rd: 1, Imm: 0},
		Instr{Op: OpBNE, Imm: -6},
		Instr{Op: OpHALT},
	)
}

// runToCycle steps the CPU until it reaches at least the given cycle count.
func runToCycle(t *testing.T, c *CPU, cycle uint64) {
	t.Helper()
	for c.Cycles() < cycle {
		if c.Step() != StatusRunning {
			t.Fatalf("stopped at cycle %d before reaching %d (%v)", c.Cycles(), cycle, c.Detection())
		}
	}
}

// TestCheckpointDeltaRoundTrip pins the byte-identity of delta restores: a
// delta checkpoint must restore exactly the state a full checkpoint taken at
// the same instant restores.
func TestCheckpointDeltaRoundTrip(t *testing.T) {
	c := mustCPU(t)
	memoryLoop(t, c, 2000)

	runToCycle(t, c, 500)
	golden := c.Checkpoint()

	runToCycle(t, c, 2500)
	full := c.Checkpoint()
	delta, err := c.CheckpointDelta(golden)
	if err != nil {
		t.Fatal(err)
	}
	if delta.mem != nil || delta.base == nil {
		t.Fatal("CheckpointDelta did not produce a delta-form checkpoint")
	}
	if len(delta.delta) == 0 {
		t.Fatal("workload mutated memory but the delta has no pages")
	}
	if delta.Bytes() >= full.Bytes() {
		t.Errorf("delta footprint %d not smaller than full footprint %d", delta.Bytes(), full.Bytes())
	}

	// Diverge, then restore via the delta and via the full copy; the two
	// restored states must be identical.
	runToCycle(t, c, 4000)
	if err := c.Restore(delta); err != nil {
		t.Fatal(err)
	}
	fromDelta := c.Checkpoint()
	if err := c.Restore(full); err != nil {
		t.Fatal(err)
	}
	fromFull := c.Checkpoint()
	if !reflect.DeepEqual(fromDelta, fromFull) {
		t.Fatal("delta restore and full restore disagree")
	}
	if !bytes.Equal(fromDelta.mem, full.mem) {
		t.Fatal("restored memory image is not byte-identical")
	}
}

// TestCheckpointDeterminism pins the forking engine's core assumption:
// running to cycle N, checkpointing, and resuming from the checkpoint yields
// exactly the state of an uninterrupted run.
func TestCheckpointDeterminism(t *testing.T) {
	fresh := func() *CPU {
		c := mustCPU(t)
		memoryLoop(t, c, 1500)
		return c
	}

	ref := fresh()
	if st := ref.Run(100000); st != StatusHalted {
		t.Fatalf("reference run: %v (%v)", st, ref.Detection())
	}
	want := ref.Checkpoint()

	c := fresh()
	runToCycle(t, c, 3000)
	cp := c.Checkpoint()
	if st := c.Run(100000); st != StatusHalted {
		t.Fatalf("first leg: %v (%v)", st, c.Detection())
	}
	if !reflect.DeepEqual(c.Checkpoint(), want) {
		t.Fatal("interrupted run diverged from uninterrupted run")
	}

	if err := c.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if c.Cycles() != 3000 {
		t.Fatalf("restored cycle count = %d, want 3000", c.Cycles())
	}
	if st := c.Run(100000); st != StatusHalted {
		t.Fatalf("resumed leg: %v (%v)", st, c.Detection())
	}
	if !reflect.DeepEqual(c.Checkpoint(), want) {
		t.Fatal("resumed run diverged from uninterrupted run")
	}
}

// TestCheckpointDeltaShapeChecks covers the error paths.
func TestCheckpointDeltaShapeChecks(t *testing.T) {
	c := mustCPU(t)
	if _, err := c.CheckpointDelta(nil); err == nil {
		t.Error("nil golden accepted")
	}
	golden := c.Checkpoint()
	delta, err := c.CheckpointDelta(golden)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckpointDelta(delta); err == nil {
		t.Error("delta-form golden accepted")
	}
	small, err := New(Config{MemSize: 4096, ROMSize: 1024, ICacheLines: 8,
		DCacheLines: 8, StackBase: 4096, StackLimit: 3072})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.CheckpointDelta(golden); err == nil {
		t.Error("golden with mismatched memory size accepted")
	}
	if err := small.Restore(delta); err == nil {
		t.Error("restore of mismatched delta checkpoint accepted")
	}
}

// FuzzCheckpointDelta round-trips the page-delta encoding over arbitrary
// image pairs: applying diffPages(base, mem) onto a copy of base must
// reproduce mem exactly.
func FuzzCheckpointDelta(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{9})
	f.Add(bytes.Repeat([]byte{0xAA}, 3*ckptPageSize+17), bytes.Repeat([]byte{0x55}, 100))
	f.Fuzz(func(t *testing.T, base, tail []byte) {
		// Build mem as base with the fuzzer's tail spliced in at a
		// tail-derived offset, so images agree on most pages and differ on a
		// few — the shape the engine produces.
		mem := append([]byte(nil), base...)
		if len(mem) > 0 && len(tail) > 0 {
			off := int(tail[0]) * len(mem) / 256
			copy(mem[off:], tail)
		}
		pages := diffPages(base, mem)
		got := append([]byte(nil), base...)
		applyDelta(got, pages)
		if !bytes.Equal(got, mem) {
			t.Fatalf("delta round-trip mismatch: base=%d bytes, %d pages", len(base), len(pages))
		}
		maxPages := (len(base) + ckptPageSize - 1) / ckptPageSize
		if len(pages) > maxPages {
			t.Fatalf("%d delta pages for a %d-page image", len(pages), maxPages)
		}
	})
}
