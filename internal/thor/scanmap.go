package thor

import (
	"fmt"
	"math/bits"

	"goofi/internal/scan"
)

// IR codes under which the chip's scan chains register with the TAP.
// These values appear in TargetSystemData when a Thor target is configured.
const (
	ChainCore     = "internal.core"
	ChainICache   = "internal.icache"
	ChainDCache   = "internal.dcache"
	ChainDebug    = "internal.debug"
	ChainBoundary = "boundary.pins"
)

// IRCodes maps chain names to their TAP instruction-register codes.
func IRCodes() map[string]uint8 {
	return map[string]uint8{
		ChainCore:     0x01,
		ChainICache:   0x02,
		ChainDCache:   0x03,
		ChainDebug:    0x04,
		ChainBoundary: 0x05,
	}
}

// BuildTAP assembles the chip's scan chains over the system's live state and
// attaches them to a fresh TAP controller. This is the only access path the
// SCIFI technique has to the processor internals.
func BuildTAP(s *System) (*scan.TAP, error) {
	chains := map[uint8]*scan.Chain{}
	codes := IRCodes()

	core, err := coreChain(s.CPU)
	if err != nil {
		return nil, err
	}
	chains[codes[ChainCore]] = core

	ic, err := cacheChain(ChainICache, s.CPU, s.CPU.icache)
	if err != nil {
		return nil, err
	}
	chains[codes[ChainICache]] = ic

	dc, err := cacheChain(ChainDCache, s.CPU, s.CPU.dcache)
	if err != nil {
		return nil, err
	}
	chains[codes[ChainDCache]] = dc

	dbg, err := debugChain(s)
	if err != nil {
		return nil, err
	}
	chains[codes[ChainDebug]] = dbg

	bp, err := boundaryChain(s.CPU)
	if err != nil {
		return nil, err
	}
	chains[codes[ChainBoundary]] = bp

	return scan.NewTAP(chains)
}

// The field builders below are the word-granular bridge between device
// state and the packed scan.Bits representation: every field reads and
// writes its whole window as one uint64, so a chain capture or update is a
// handful of word-level PutUint64/Uint64 calls, never per-bit work.

// reg32 builds a writable 32-bit field over a word of state.
func reg32(name string, p *uint32) scan.Field {
	return scan.Field{
		Name:  name,
		Width: 32,
		Get:   func() uint64 { return uint64(*p) },
		Set:   func(v uint64) { *p = uint32(v) },
	}
}

// reg64 builds a writable 64-bit field over a doubleword of state.
func reg64(name string, p *uint64) scan.Field {
	return scan.Field{
		Name:  name,
		Width: 64,
		Get:   func() uint64 { return *p },
		Set:   func(v uint64) { *p = v },
	}
}

// flag builds a writable single-bit field over a boolean latch.
func flag(name string, p *bool) scan.Field {
	return scan.Field{
		Name:  name,
		Width: 1,
		Get:   func() uint64 { return b2u(*p) },
		Set:   func(v uint64) { *p = v&1 != 0 },
	}
}

func ro64(name string, width int, get func() uint64) scan.Field {
	return scan.Field{Name: name, Width: width, Get: get, ReadOnly: true}
}

// coreChain exposes the register file, PC, PSW and pipeline latches.
func coreChain(c *CPU) (*scan.Chain, error) {
	fields := make([]scan.Field, 0, NumRegs+5)
	for i := 0; i < NumRegs; i++ {
		fields = append(fields, reg32(fmt.Sprintf("R%d", i), &c.Regs[i]))
	}
	fields = append(fields,
		reg32("PC", &c.PC),
		scan.Field{
			Name:  "PSW",
			Width: 8,
			Get:   func() uint64 { return uint64(c.PSW) },
			Set:   func(v uint64) { c.PSW = uint8(v) },
		},
		reg32("IR", &c.IR),
		reg32("MAR", &c.MAR),
		reg32("MDR", &c.MDR),
	)
	return scan.NewChain(ChainCore, fields)
}

// tagWidth computes how many tag bits a cache line stores for the given
// memory size and line count.
func tagWidth(memSize uint32, lines int) int {
	maxTag := (memSize/4 - 1) / uint32(lines)
	w := bits.Len32(maxTag)
	if w == 0 {
		w = 1
	}
	return w
}

// cacheChain exposes every line of a cache: valid, tag, data and the parity
// bit. Injecting into any of them is how SCIFI reaches state that SWIFI
// cannot (paper §1; comparison experiment E4).
func cacheChain(name string, c *CPU, ca *Cache) (*scan.Chain, error) {
	tw := tagWidth(c.cfg.MemSize, len(ca.lines))
	fields := make([]scan.Field, 0, 4*len(ca.lines))
	for i := range ca.lines {
		ln := &ca.lines[i]
		fields = append(fields,
			flag(fmt.Sprintf("line%d.valid", i), &ln.valid),
			scan.Field{
				Name:  fmt.Sprintf("line%d.tag", i),
				Width: tw,
				Get:   func() uint64 { return uint64(ln.tag) },
				Set:   func(v uint64) { ln.tag = uint32(v) },
			},
			scan.Field{
				Name:  fmt.Sprintf("line%d.data", i),
				Width: 32,
				Get:   func() uint64 { return uint64(ln.data) },
				Set:   func(v uint64) { ln.data = uint32(v) },
			},
			scan.Field{
				Name:  fmt.Sprintf("line%d.parity", i),
				Width: 1,
				Get:   func() uint64 { return uint64(ln.parity & 1) },
				Set:   func(v uint64) { ln.parity = uint8(v & 1) },
			},
		)
	}
	return scan.NewChain(name, fields)
}

// debugChain exposes the breakpoint registers (writable) and the chip's
// observability counters (read-only), including the detection latch the
// campaign's termination conditions poll.
func debugChain(s *System) (*scan.Chain, error) {
	d := s.Debug
	c := s.CPU
	fields := []scan.Field{
		reg32("bp_addr", &d.BPAddr),
		flag("bp_addr_en", &d.BPAddrEnable),
		reg64("bp_cycle", &d.BPCycle),
		flag("bp_cycle_en", &d.BPCycleEnable),
		flag("bp_hit", &d.Hit),
		ro64("cycles", 64, func() uint64 { return c.cycles }),
		ro64("iterations", 64, func() uint64 { return c.iters }),
		ro64("status", 2, func() uint64 { return uint64(c.status) }),
		ro64("detected", 1, func() uint64 {
			return b2u(c.detection != nil)
		}),
		ro64("wd_counter", 64, func() uint64 { return c.wdCounter }),
	}
	return scan.NewChain(ChainDebug, fields)
}

// boundaryChain exposes the boundary-scan pin latches.
func boundaryChain(c *CPU) (*scan.Chain, error) {
	fields := []scan.Field{
		reg32("addr_bus", &c.AddrBus),
		reg32("data_bus", &c.DataBus),
		{
			Name:  "ctrl_bus",
			Width: 8,
			Get:   func() uint64 { return uint64(c.CtrlBus) },
			Set:   func(v uint64) { c.CtrlBus = uint8(v) },
		},
	}
	return scan.NewChain(ChainBoundary, fields)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
