package thor

import "fmt"

// ckptPageSize is the granularity of delta memory images: a delta checkpoint
// stores only the pages that differ from its base image. 256 bytes keeps the
// diff loop cache-friendly while a typical workload suffix touches only a
// handful of pages out of the 64 KiB address space.
const ckptPageSize = 256

// deltaPage is one divergent page of a delta checkpoint. data is an owned
// copy of ckptPageSize bytes (the final page of an image may be shorter).
type deltaPage struct {
	index int
	data  []byte
}

// diffPages returns owned copies of the pages of mem that differ from base.
// The images must have equal length.
func diffPages(base, mem []byte) []deltaPage {
	var pages []deltaPage
	for off := 0; off < len(mem); off += ckptPageSize {
		end := off + ckptPageSize
		if end > len(mem) {
			end = len(mem)
		}
		if !bytesEqual(base[off:end], mem[off:end]) {
			pages = append(pages, deltaPage{
				index: off / ckptPageSize,
				data:  append([]byte(nil), mem[off:end]...),
			})
		}
	}
	return pages
}

// bytesEqual is bytes.Equal without the import, kept local to the hot diff
// loop.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyDelta overwrites dst's divergent pages from the delta list. dst must
// already hold the base image.
func applyDelta(dst []byte, pages []deltaPage) {
	for _, p := range pages {
		copy(dst[p.index*ckptPageSize:], p.data)
	}
}

// Checkpoint is a full snapshot of the processor's architectural state,
// memory and caches. Campaigns whose injection window starts late in the
// workload use checkpoints to amortise the common prefix of every experiment
// (the optimisation GOOFI's successor introduced to cut campaign time).
//
// A checkpoint stores its memory image in one of two forms: a full copy
// (mem != nil) or a page-granular delta against a base image (base != nil),
// produced by CheckpointDelta. Both restore byte-identically; the delta form
// exists so a forking campaign can hold many checkpoints of one golden run
// within a memory budget.
type Checkpoint struct {
	regs      [NumRegs]uint32
	pc        uint32
	psw       uint8
	ir        uint32
	mar       uint32
	mdr       uint32
	addrBus   uint32
	dataBus   uint32
	ctrlBus   uint8
	mem       []byte      // full memory image, or nil for delta form
	base      []byte      // shared read-only base image (delta form only)
	delta     []deltaPage // pages diverging from base (delta form only)
	icache    []cacheLine
	dcache    []cacheLine
	iHits     uint64
	iMisses   uint64
	dHits     uint64
	dMisses   uint64
	wdCounter uint64
	cycles    uint64
	iters     uint64
	status    Status
	detection *Detection
	inPorts   [16]uint32
	outPorts  [16]uint32
}

// Checkpoint captures the CPU's complete state with a full memory copy.
func (c *CPU) Checkpoint() *Checkpoint {
	cp := c.snapshotWithoutMemory()
	cp.mem = append([]byte(nil), c.mem...)
	return cp
}

// CheckpointDelta captures the CPU's complete state, storing memory as a
// page-granular delta against the golden checkpoint's full image. golden must
// be a full-form checkpoint of a CPU with the same memory size; its image is
// aliased (read-only), so golden must stay unmodified while the delta lives.
func (c *CPU) CheckpointDelta(golden *Checkpoint) (*Checkpoint, error) {
	if golden == nil || golden.mem == nil {
		return nil, fmt.Errorf("thor: delta checkpoint needs a full-form golden checkpoint")
	}
	if len(golden.mem) != len(c.mem) {
		return nil, fmt.Errorf("thor: golden image is %d bytes, CPU memory is %d", len(golden.mem), len(c.mem))
	}
	cp := c.snapshotWithoutMemory()
	cp.base = golden.mem
	cp.delta = diffPages(golden.mem, c.mem)
	return cp, nil
}

// snapshotWithoutMemory copies every state element except the memory image.
func (c *CPU) snapshotWithoutMemory() *Checkpoint {
	cp := &Checkpoint{
		regs:      c.Regs,
		pc:        c.PC,
		psw:       c.PSW,
		ir:        c.IR,
		mar:       c.MAR,
		mdr:       c.MDR,
		addrBus:   c.AddrBus,
		dataBus:   c.DataBus,
		ctrlBus:   c.CtrlBus,
		icache:    append([]cacheLine(nil), c.icache.lines...),
		dcache:    append([]cacheLine(nil), c.dcache.lines...),
		iHits:     c.icache.hits,
		iMisses:   c.icache.misses,
		dHits:     c.dcache.hits,
		dMisses:   c.dcache.misses,
		wdCounter: c.wdCounter,
		cycles:    c.cycles,
		iters:     c.iters,
		status:    c.status,
		inPorts:   c.inPorts,
		outPorts:  c.outPorts,
	}
	if c.detection != nil {
		d := *c.detection
		cp.detection = &d
	}
	return cp
}

// Restore copies a checkpoint back into the CPU. It writes into the existing
// memory and cache arrays, so scan chains built over this CPU stay valid.
// The CPU configuration must match the one the checkpoint was taken from.
func (c *CPU) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("thor: nil checkpoint")
	}
	img, base := cp.mem, false
	if img == nil {
		img, base = cp.base, true
	}
	if len(img) != len(c.mem) ||
		len(cp.icache) != len(c.icache.lines) ||
		len(cp.dcache) != len(c.dcache.lines) {
		return fmt.Errorf("thor: checkpoint shape does not match this CPU")
	}
	c.Regs = cp.regs
	c.PC = cp.pc
	c.PSW = cp.psw
	c.IR = cp.ir
	c.MAR = cp.mar
	c.MDR = cp.mdr
	c.AddrBus = cp.addrBus
	c.DataBus = cp.dataBus
	c.CtrlBus = cp.ctrlBus
	copy(c.mem, img)
	if base {
		applyDelta(c.mem, cp.delta)
	}
	copy(c.icache.lines, cp.icache)
	copy(c.dcache.lines, cp.dcache)
	c.icache.hits, c.icache.misses = cp.iHits, cp.iMisses
	c.dcache.hits, c.dcache.misses = cp.dHits, cp.dMisses
	c.wdCounter = cp.wdCounter
	c.cycles = cp.cycles
	c.iters = cp.iters
	c.status = cp.status
	c.detection = nil
	if cp.detection != nil {
		d := *cp.detection
		c.detection = &d
	}
	c.inPorts = cp.inPorts
	c.outPorts = cp.outPorts
	c.last = Events{}
	return nil
}

// ckptLineBytes is the accounting weight of one cache line: valid bit + tag +
// data + parity padded to the struct's in-memory footprint.
const ckptLineBytes = 12

// ckptFixedBytes is the accounting weight of the fixed-size state (registers,
// buses, counters, ports) plus struct overhead. Accounting is deliberately
// approximate — it feeds a memory budget, not an allocator.
const ckptFixedBytes = 512

// Bytes estimates the checkpoint's owned memory footprint. A delta-form
// checkpoint counts only its divergent pages, not the shared base image.
func (cp *Checkpoint) Bytes() int64 {
	n := int64(ckptFixedBytes)
	n += int64(len(cp.mem))
	for _, p := range cp.delta {
		n += int64(len(p.data)) + 16
	}
	n += int64((len(cp.icache) + len(cp.dcache)) * ckptLineBytes)
	return n
}
