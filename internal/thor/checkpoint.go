package thor

import "fmt"

// Checkpoint is a full snapshot of the processor's architectural state,
// memory and caches. Campaigns whose injection window starts late in the
// workload use checkpoints to amortise the common prefix of every experiment
// (the optimisation GOOFI's successor introduced to cut campaign time).
type Checkpoint struct {
	regs      [NumRegs]uint32
	pc        uint32
	psw       uint8
	ir        uint32
	mar       uint32
	mdr       uint32
	addrBus   uint32
	dataBus   uint32
	ctrlBus   uint8
	mem       []byte
	icache    []cacheLine
	dcache    []cacheLine
	iHits     uint64
	iMisses   uint64
	dHits     uint64
	dMisses   uint64
	wdCounter uint64
	cycles    uint64
	iters     uint64
	status    Status
	detection *Detection
	inPorts   [16]uint32
	outPorts  [16]uint32
}

// Checkpoint captures the CPU's complete state.
func (c *CPU) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		regs:      c.Regs,
		pc:        c.PC,
		psw:       c.PSW,
		ir:        c.IR,
		mar:       c.MAR,
		mdr:       c.MDR,
		addrBus:   c.AddrBus,
		dataBus:   c.DataBus,
		ctrlBus:   c.CtrlBus,
		mem:       append([]byte(nil), c.mem...),
		icache:    append([]cacheLine(nil), c.icache.lines...),
		dcache:    append([]cacheLine(nil), c.dcache.lines...),
		iHits:     c.icache.hits,
		iMisses:   c.icache.misses,
		dHits:     c.dcache.hits,
		dMisses:   c.dcache.misses,
		wdCounter: c.wdCounter,
		cycles:    c.cycles,
		iters:     c.iters,
		status:    c.status,
		inPorts:   c.inPorts,
		outPorts:  c.outPorts,
	}
	if c.detection != nil {
		d := *c.detection
		cp.detection = &d
	}
	return cp
}

// Restore copies a checkpoint back into the CPU. It writes into the existing
// memory and cache arrays, so scan chains built over this CPU stay valid.
// The CPU configuration must match the one the checkpoint was taken from.
func (c *CPU) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("thor: nil checkpoint")
	}
	if len(cp.mem) != len(c.mem) ||
		len(cp.icache) != len(c.icache.lines) ||
		len(cp.dcache) != len(c.dcache.lines) {
		return fmt.Errorf("thor: checkpoint shape does not match this CPU")
	}
	c.Regs = cp.regs
	c.PC = cp.pc
	c.PSW = cp.psw
	c.IR = cp.ir
	c.MAR = cp.mar
	c.MDR = cp.mdr
	c.AddrBus = cp.addrBus
	c.DataBus = cp.dataBus
	c.CtrlBus = cp.ctrlBus
	copy(c.mem, cp.mem)
	copy(c.icache.lines, cp.icache)
	copy(c.dcache.lines, cp.dcache)
	c.icache.hits, c.icache.misses = cp.iHits, cp.iMisses
	c.dcache.hits, c.dcache.misses = cp.dHits, cp.dMisses
	c.wdCounter = cp.wdCounter
	c.cycles = cp.cycles
	c.iters = cp.iters
	c.status = cp.status
	c.detection = nil
	if cp.detection != nil {
		d := *cp.detection
		c.detection = &d
	}
	c.inPorts = cp.inPorts
	c.outPorts = cp.outPorts
	c.last = Events{}
	return nil
}
