package thor

import (
	"encoding/binary"
	"fmt"
)

// Status describes the execution state of the CPU.
type Status int

// CPU execution states.
const (
	// StatusRunning means the CPU can execute further instructions.
	StatusRunning Status = iota + 1
	// StatusHalted means the workload executed HALT (normal completion).
	StatusHalted
	// StatusDetected means a hardware or software error detection mechanism
	// fired and execution stopped (the paper's "detected error" outcome).
	StatusDetected
)

// String returns a readable status name.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusDetected:
		return "detected"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Error detection mechanism names. The analysis phase (§3.4) classifies
// detected errors per mechanism under these keys.
const (
	EDMICacheParity  = "icache-parity"
	EDMDCacheParity  = "dcache-parity"
	EDMIllegalOpcode = "illegal-opcode"
	EDMAccess        = "access-violation"
	EDMROMWrite      = "rom-write"
	EDMDivZero       = "div-zero"
	EDMStackLimit    = "stack-limit"
	EDMWatchdog      = "watchdog"
	EDMControlFlow   = "control-flow"
	EDMAssertion     = "assertion" // software TRAP (executable assertions)
)

// EDMs lists every error detection mechanism of the processor.
func EDMs() []string {
	return []string{
		EDMICacheParity, EDMDCacheParity, EDMIllegalOpcode, EDMAccess,
		EDMROMWrite, EDMDivZero, EDMStackLimit, EDMWatchdog,
		EDMControlFlow, EDMAssertion,
	}
}

// Detection records a fired error detection mechanism.
type Detection struct {
	// Mechanism is one of the EDM* constants.
	Mechanism string
	// Code carries the TRAP immediate for assertion detections, 0 otherwise.
	Code int32
	// PC is the program counter at detection time.
	PC uint32
	// Cycle is the instruction count at detection time.
	Cycle uint64
}

func (d Detection) String() string {
	return fmt.Sprintf("%s at pc=%#x cycle=%d code=%d", d.Mechanism, d.PC, d.Cycle, d.Code)
}

// Events summarises what the last executed instruction did; the fault
// triggers of internal/trigger key off these.
type Events struct {
	BranchTaken bool
	Call        bool // JAL executed
	TaskSwitch  bool // YIELD executed
	Sync        bool // SYNC executed (loop iteration boundary)
	MemRead     bool
	MemWrite    bool
	MemAddr     uint32
	MemValue    uint32 // value loaded or stored
	RegsRead    uint16 // bitmask of registers read
	RegsWritten uint16 // bitmask of registers written
}

// TraceRecord is handed to the trace hook after every instruction in detail
// mode and during pre-injection analysis.
type TraceRecord struct {
	Cycle  uint64
	PC     uint32 // address of the executed instruction
	Raw    Word
	Instr  Instr
	Events Events
}

// Config sizes the processor. The zero value is not usable; call
// DefaultConfig and adjust.
type Config struct {
	// MemSize is the total byte size of physical memory.
	MemSize uint32
	// ROMSize is the size of the write-protected code region starting at 0.
	ROMSize uint32
	// ICacheLines and DCacheLines size the direct-mapped caches.
	ICacheLines int
	DCacheLines int
	// StackBase is the initial stack pointer (grows down); StackLimit is the
	// lowest legal SP value (stack-limit EDM).
	StackBase  uint32
	StackLimit uint32
	// WatchdogLimit is the maximum number of instructions between SYNCs
	// before the watchdog EDM fires. 0 disables the watchdog.
	WatchdogLimit uint64
	// IOBase/IOEnd bound the uncached memory-mapped I/O window used for the
	// environment exchange. Loads and stores inside [IOBase, IOEnd) bypass
	// the data cache so test-card writes are immediately visible, exactly
	// like an uncached I/O region on real hardware. Both zero disables the
	// window.
	IOBase uint32
	IOEnd  uint32
}

// DefaultConfig returns the configuration used throughout the reproduction:
// 64 KiB memory with a 16 KiB ROM, 64-line caches, 4 KiB stack.
func DefaultConfig() Config {
	return Config{
		MemSize:       64 * 1024,
		ROMSize:       16 * 1024,
		ICacheLines:   64,
		DCacheLines:   64,
		StackBase:     64 * 1024,
		StackLimit:    60 * 1024,
		WatchdogLimit: 0,
		IOBase:        0x7000,
		IOEnd:         0x8000,
	}
}

// CPU is the simulated processor. Architectural state that scan chains can
// reach is exported; everything else is internal.
type CPU struct {
	// Regs is the general-purpose register file.
	Regs [NumRegs]uint32
	// PC is the program counter.
	PC uint32
	// PSW is the program status word (flag bits Flag*).
	PSW uint8
	// IR, MAR and MDR are pipeline latches: the last fetched instruction
	// word, memory address register and memory data register. They are
	// rewritten by almost every instruction, so faults injected into them
	// are frequently overwritten — mirroring real scan-chain campaigns.
	IR  uint32
	MAR uint32
	MDR uint32
	// AddrBus, DataBus and CtrlBus model the boundary-scan pin latches.
	AddrBus uint32
	DataBus uint32
	CtrlBus uint8

	cfg       Config
	mem       []byte
	icache    *Cache
	dcache    *Cache
	wdCounter uint64
	cycles    uint64
	iters     uint64
	status    Status
	detection *Detection
	inPorts   [16]uint32
	outPorts  [16]uint32
	syncHook  func(*CPU)
	traceHook func(TraceRecord)
	last      Events
}

// New builds a CPU from cfg.
func New(cfg Config) (*CPU, error) {
	switch {
	case cfg.MemSize == 0 || cfg.MemSize%4 != 0:
		return nil, fmt.Errorf("thor: MemSize %d must be a positive multiple of 4", cfg.MemSize)
	case cfg.ROMSize == 0 || cfg.ROMSize%4 != 0 || cfg.ROMSize > cfg.MemSize:
		return nil, fmt.Errorf("thor: ROMSize %d invalid for MemSize %d", cfg.ROMSize, cfg.MemSize)
	case cfg.ICacheLines <= 0 || cfg.DCacheLines <= 0:
		return nil, fmt.Errorf("thor: cache sizes must be positive")
	case cfg.StackBase > cfg.MemSize || cfg.StackLimit >= cfg.StackBase:
		return nil, fmt.Errorf("thor: stack region [%#x, %#x) invalid", cfg.StackLimit, cfg.StackBase)
	}
	c := &CPU{
		cfg:    cfg,
		mem:    make([]byte, cfg.MemSize),
		icache: newCache(cfg.ICacheLines),
		dcache: newCache(cfg.DCacheLines),
	}
	c.Reset()
	return c, nil
}

// Config returns the CPU's configuration.
func (c *CPU) Config() Config { return c.cfg }

// Reset restores the architectural state to power-on: registers, flags and
// latches cleared, caches invalidated, SP at StackBase. Memory contents are
// preserved so a loaded workload survives (the test card reloads memory
// explicitly between experiments, as in the paper's algorithm).
func (c *CPU) Reset() {
	for i := range c.Regs {
		c.Regs[i] = 0
	}
	c.Regs[RegSP] = c.cfg.StackBase
	c.PC = 0
	c.PSW = 0
	c.IR, c.MAR, c.MDR = 0, 0, 0
	c.AddrBus, c.DataBus, c.CtrlBus = 0, 0, 0
	c.icache.invalidate()
	c.dcache.invalidate()
	c.wdCounter = 0
	c.cycles = 0
	c.iters = 0
	c.status = StatusRunning
	c.detection = nil
	c.inPorts = [16]uint32{}
	c.outPorts = [16]uint32{}
	c.last = Events{}
}

// ClearMemory zeroes all memory (used before loading a fresh workload).
func (c *CPU) ClearMemory() {
	for i := range c.mem {
		c.mem[i] = 0
	}
}

// SetSyncHook installs the environment-exchange callback invoked on SYNC.
func (c *CPU) SetSyncHook(fn func(*CPU)) { c.syncHook = fn }

// SetTraceHook installs a per-instruction callback (detail mode / analysis).
// Pass nil to disable tracing.
func (c *CPU) SetTraceHook(fn func(TraceRecord)) { c.traceHook = fn }

// Status returns the current execution status.
func (c *CPU) Status() Status { return c.status }

// Detection returns the recorded detection, or nil.
func (c *CPU) Detection() *Detection {
	if c.detection == nil {
		return nil
	}
	d := *c.detection
	return &d
}

// Cycles returns the number of executed instructions since Reset.
func (c *CPU) Cycles() uint64 { return c.cycles }

// Iterations returns the number of SYNC instructions executed since Reset.
func (c *CPU) Iterations() uint64 { return c.iters }

// LastEvents returns the event summary of the most recent instruction.
func (c *CPU) LastEvents() Events { return c.last }

// ICache and DCache expose the caches for the scan-chain map.
func (c *CPU) ICache() *Cache { return c.icache }

// DCache returns the data cache.
func (c *CPU) DCache() *Cache { return c.dcache }

// InPort returns input port p as seen by IOR.
func (c *CPU) InPort(p int) uint32 { return c.inPorts[p&15] }

// SetInPort sets input port p (environment simulator side).
func (c *CPU) SetInPort(p int, v uint32) { c.inPorts[p&15] = v }

// OutPort returns output port p written by IOW.
func (c *CPU) OutPort(p int) uint32 { return c.outPorts[p&15] }

// --- Host (test card) memory access: bypasses caches and ROM protection ---

// ReadWordHost reads a 32-bit word via the test-card port, without touching
// caches, buses or EDMs.
func (c *CPU) ReadWordHost(addr uint32) (uint32, error) {
	if addr%4 != 0 || addr+4 > c.cfg.MemSize {
		return 0, fmt.Errorf("host read at %#x out of range", addr)
	}
	return binary.LittleEndian.Uint32(c.mem[addr:]), nil
}

// WriteWordHost writes a 32-bit word via the test-card port. It may write
// the ROM region (that is how workloads are downloaded and how pre-runtime
// SWIFI injects faults into code).
func (c *CPU) WriteWordHost(addr, v uint32) error {
	if addr%4 != 0 || addr+4 > c.cfg.MemSize {
		return fmt.Errorf("host write at %#x out of range", addr)
	}
	binary.LittleEndian.PutUint32(c.mem[addr:], v)
	return nil
}

// ReadBytesHost copies length bytes starting at addr.
func (c *CPU) ReadBytesHost(addr, length uint32) ([]byte, error) {
	if addr+length > c.cfg.MemSize || addr+length < addr {
		return nil, fmt.Errorf("host read [%#x,%#x) out of range", addr, addr+length)
	}
	out := make([]byte, length)
	copy(out, c.mem[addr:addr+length])
	return out, nil
}

// WriteBytesHost copies data into memory starting at addr.
func (c *CPU) WriteBytesHost(addr uint32, data []byte) error {
	end := addr + uint32(len(data))
	if end > c.cfg.MemSize || end < addr {
		return fmt.Errorf("host write [%#x,%#x) out of range", addr, end)
	}
	copy(c.mem[addr:], data)
	return nil
}

// --- Execution ---

func (c *CPU) detect(mechanism string, code int32) Status {
	d := Detection{Mechanism: mechanism, Code: code, PC: c.PC, Cycle: c.cycles}
	c.detection = &d
	c.status = StatusDetected
	return c.status
}

// fetch reads the instruction word at PC through the instruction cache.
func (c *CPU) fetch() (uint32, bool) {
	if c.PC%4 != 0 || c.PC+4 > c.cfg.ROMSize {
		c.detect(EDMControlFlow, 0)
		return 0, false
	}
	c.AddrBus = c.PC
	c.CtrlBus = 0x1 // instruction fetch
	if data, hit, parityOK := c.icache.lookup(c.PC); hit {
		if !parityOK {
			c.detect(EDMICacheParity, 0)
			return 0, false
		}
		c.DataBus = data
		return data, true
	}
	data := binary.LittleEndian.Uint32(c.mem[c.PC:])
	c.icache.fill(c.PC, data)
	c.DataBus = data
	return data, true
}

// loadWord reads a data word through the data cache.
func (c *CPU) loadWord(addr uint32) (uint32, bool) {
	if addr%4 != 0 || addr+4 > c.cfg.MemSize {
		c.detect(EDMAccess, 0)
		return 0, false
	}
	c.MAR = addr
	c.AddrBus = addr
	c.CtrlBus = 0x2 // data read
	c.last.MemRead = true
	c.last.MemAddr = addr
	if c.uncached(addr) {
		data := binary.LittleEndian.Uint32(c.mem[addr:])
		c.MDR = data
		c.DataBus = data
		c.last.MemValue = data
		return data, true
	}
	if data, hit, parityOK := c.dcache.lookup(addr); hit {
		if !parityOK {
			c.detect(EDMDCacheParity, 0)
			return 0, false
		}
		c.MDR = data
		c.DataBus = data
		c.last.MemValue = data
		return data, true
	}
	data := binary.LittleEndian.Uint32(c.mem[addr:])
	c.dcache.fill(addr, data)
	c.MDR = data
	c.DataBus = data
	c.last.MemValue = data
	return data, true
}

// storeWord writes a data word (write-through, write-allocate).
func (c *CPU) storeWord(addr, v uint32) bool {
	if addr%4 != 0 || addr+4 > c.cfg.MemSize {
		c.detect(EDMAccess, 0)
		return false
	}
	if addr < c.cfg.ROMSize {
		c.detect(EDMROMWrite, 0)
		return false
	}
	c.MAR = addr
	c.MDR = v
	c.AddrBus = addr
	c.DataBus = v
	c.CtrlBus = 0x4 // data write
	c.last.MemWrite = true
	c.last.MemAddr = addr
	c.last.MemValue = v
	binary.LittleEndian.PutUint32(c.mem[addr:], v)
	if !c.uncached(addr) {
		c.dcache.fill(addr, v)
	}
	return true
}

// uncached reports whether addr lies in the memory-mapped I/O window.
func (c *CPU) uncached(addr uint32) bool {
	return c.cfg.IOEnd > c.cfg.IOBase && addr >= c.cfg.IOBase && addr < c.cfg.IOEnd
}

func (c *CPU) setZN(v uint32) {
	c.PSW &^= FlagZ | FlagN
	if v == 0 {
		c.PSW |= FlagZ
	}
	if v&(1<<31) != 0 {
		c.PSW |= FlagN
	}
}

func (c *CPU) setAddFlags(a, b, r uint32) {
	c.setZN(r)
	c.PSW &^= FlagC | FlagV
	if uint64(a)+uint64(b) > 0xFFFFFFFF {
		c.PSW |= FlagC
	}
	if (a^r)&(b^r)&(1<<31) != 0 {
		c.PSW |= FlagV
	}
}

func (c *CPU) setSubFlags(a, b, r uint32) {
	c.setZN(r)
	c.PSW &^= FlagC | FlagV
	if a < b {
		c.PSW |= FlagC // borrow
	}
	if (a^b)&(a^r)&(1<<31) != 0 {
		c.PSW |= FlagV
	}
}

func (c *CPU) branchCond(op Op) bool {
	z := c.PSW&FlagZ != 0
	n := c.PSW&FlagN != 0
	v := c.PSW&FlagV != 0
	switch op {
	case OpBEQ:
		return z
	case OpBNE:
		return !z
	case OpBLT:
		return n != v
	case OpBGE:
		return n == v
	case OpBGT:
		return !z && n == v
	case OpBLE:
		return z || n != v
	case OpBRA:
		return true
	default:
		return false
	}
}

// regUse computes the read and write register bitmasks of an instruction.
func regUse(in Instr) (read, written uint16) {
	bit := func(r int) uint16 { return 1 << uint(r) }
	switch in.Op {
	case OpMOV:
		return bit(in.Rs), bit(in.Rd)
	case OpLDI, OpLUI, OpIOR:
		return 0, bit(in.Rd)
	case OpADD, OpSUB, OpMUL, OpDIV, OpAND, OpOR, OpXOR, OpSHL, OpSHR, OpSAR:
		return bit(in.Rs) | bit(in.Rt), bit(in.Rd)
	case OpADDI, OpSUBI:
		return bit(in.Rs), bit(in.Rd)
	case OpCMP:
		return bit(in.Rd) | bit(in.Rs), 0
	case OpCMPI:
		return bit(in.Rd), 0
	case OpLD, OpLDB:
		return bit(in.Rs), bit(in.Rd)
	case OpST, OpSTB:
		return bit(in.Rd) | bit(in.Rs), 0
	case OpJAL:
		return 0, bit(RegLR)
	case OpJR:
		return bit(in.Rd), 0
	case OpPUSH:
		return bit(in.Rd) | bit(RegSP), bit(RegSP)
	case OpPOP:
		return bit(RegSP), bit(in.Rd) | bit(RegSP)
	case OpIOW:
		return bit(in.Rd), 0
	default:
		return 0, 0
	}
}

// Step executes one instruction and returns the resulting status.
func (c *CPU) Step() Status {
	if c.status != StatusRunning {
		return c.status
	}
	c.last = Events{}
	startPC := c.PC

	raw, ok := c.fetch()
	if !ok {
		return c.status
	}
	c.IR = raw
	in, err := Decode(raw)
	if err != nil {
		return c.detect(EDMIllegalOpcode, 0)
	}
	c.last.RegsRead, c.last.RegsWritten = regUse(in)

	nextPC := c.PC + 4
	switch in.Op {
	case OpNOP:
	case OpHALT:
		c.status = StatusHalted
	case OpMOV:
		c.Regs[in.Rd] = c.Regs[in.Rs]
		c.setZN(c.Regs[in.Rd])
	case OpLDI:
		c.Regs[in.Rd] = uint32(in.Imm)
	case OpLUI:
		c.Regs[in.Rd] = uint32(in.Imm) << 12
	case OpADD:
		a, b := c.Regs[in.Rs], c.Regs[in.Rt]
		r := a + b
		c.Regs[in.Rd] = r
		c.setAddFlags(a, b, r)
	case OpSUB:
		a, b := c.Regs[in.Rs], c.Regs[in.Rt]
		r := a - b
		c.Regs[in.Rd] = r
		c.setSubFlags(a, b, r)
	case OpMUL:
		r := c.Regs[in.Rs] * c.Regs[in.Rt]
		c.Regs[in.Rd] = r
		c.setZN(r)
	case OpDIV:
		if c.Regs[in.Rt] == 0 {
			return c.detect(EDMDivZero, 0)
		}
		r := uint32(int32(c.Regs[in.Rs]) / int32(c.Regs[in.Rt]))
		c.Regs[in.Rd] = r
		c.setZN(r)
	case OpAND:
		r := c.Regs[in.Rs] & c.Regs[in.Rt]
		c.Regs[in.Rd] = r
		c.setZN(r)
	case OpOR:
		r := c.Regs[in.Rs] | c.Regs[in.Rt]
		c.Regs[in.Rd] = r
		c.setZN(r)
	case OpXOR:
		r := c.Regs[in.Rs] ^ c.Regs[in.Rt]
		c.Regs[in.Rd] = r
		c.setZN(r)
	case OpSHL:
		r := c.Regs[in.Rs] << (c.Regs[in.Rt] & 31)
		c.Regs[in.Rd] = r
		c.setZN(r)
	case OpSHR:
		r := c.Regs[in.Rs] >> (c.Regs[in.Rt] & 31)
		c.Regs[in.Rd] = r
		c.setZN(r)
	case OpSAR:
		r := uint32(int32(c.Regs[in.Rs]) >> (c.Regs[in.Rt] & 31))
		c.Regs[in.Rd] = r
		c.setZN(r)
	case OpADDI:
		a, b := c.Regs[in.Rs], uint32(in.Imm)
		r := a + b
		c.Regs[in.Rd] = r
		c.setAddFlags(a, b, r)
	case OpSUBI:
		a, b := c.Regs[in.Rs], uint32(in.Imm)
		r := a - b
		c.Regs[in.Rd] = r
		c.setSubFlags(a, b, r)
	case OpCMP:
		a, b := c.Regs[in.Rd], c.Regs[in.Rs]
		c.setSubFlags(a, b, a-b)
	case OpCMPI:
		a, b := c.Regs[in.Rd], uint32(in.Imm)
		c.setSubFlags(a, b, a-b)
	case OpLD:
		v, ok := c.loadWord(c.Regs[in.Rs] + uint32(in.Imm))
		if !ok {
			return c.status
		}
		c.Regs[in.Rd] = v
	case OpST:
		if !c.storeWord(c.Regs[in.Rs]+uint32(in.Imm), c.Regs[in.Rd]) {
			return c.status
		}
	case OpLDB:
		addr := c.Regs[in.Rs] + uint32(in.Imm)
		word, ok := c.loadWord(addr &^ 3)
		if !ok {
			return c.status
		}
		c.Regs[in.Rd] = (word >> ((addr & 3) * 8)) & 0xFF
	case OpSTB:
		addr := c.Regs[in.Rs] + uint32(in.Imm)
		word, ok := c.loadWord(addr &^ 3)
		if !ok {
			return c.status
		}
		shift := (addr & 3) * 8
		word = (word &^ (0xFF << shift)) | ((c.Regs[in.Rd] & 0xFF) << shift)
		if !c.storeWord(addr&^3, word) {
			return c.status
		}
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpBRA:
		if c.branchCond(in.Op) {
			nextPC = uint32(int64(c.PC) + 4 + int64(in.Imm)*4)
			c.last.BranchTaken = true
		}
	case OpJAL:
		c.Regs[RegLR] = c.PC + 4
		nextPC = uint32(int64(c.PC) + 4 + int64(in.Imm)*4)
		c.last.Call = true
		c.last.BranchTaken = true
	case OpJR:
		nextPC = c.Regs[in.Rd]
		c.last.BranchTaken = true
	case OpPUSH:
		sp := c.Regs[RegSP] - 4
		if sp < c.cfg.StackLimit {
			return c.detect(EDMStackLimit, 0)
		}
		if !c.storeWord(sp, c.Regs[in.Rd]) {
			return c.status
		}
		c.Regs[RegSP] = sp
	case OpPOP:
		sp := c.Regs[RegSP]
		if sp+4 > c.cfg.StackBase {
			return c.detect(EDMStackLimit, 0)
		}
		v, ok := c.loadWord(sp)
		if !ok {
			return c.status
		}
		c.Regs[in.Rd] = v
		c.Regs[RegSP] = sp + 4
	case OpTRAP:
		return c.detect(EDMAssertion, in.Imm)
	case OpIOW:
		c.outPorts[uint32(in.Imm)&15] = c.Regs[in.Rd]
	case OpIOR:
		c.Regs[in.Rd] = c.inPorts[uint32(in.Imm)&15]
	case OpSYNC:
		c.iters++
		c.wdCounter = 0
		c.last.Sync = true
		if c.syncHook != nil {
			c.syncHook(c)
		}
	case OpYIELD:
		c.last.TaskSwitch = true
	default:
		return c.detect(EDMIllegalOpcode, 0)
	}

	c.cycles++
	c.wdCounter++
	if c.status == StatusRunning {
		c.PC = nextPC
		if c.cfg.WatchdogLimit > 0 && c.wdCounter > c.cfg.WatchdogLimit {
			c.detect(EDMWatchdog, 0)
		}
	}
	if c.traceHook != nil {
		c.traceHook(TraceRecord{Cycle: c.cycles - 1, PC: startPC, Raw: raw, Instr: in, Events: c.last})
	}
	return c.status
}

// Run executes until the CPU leaves StatusRunning or maxSteps instructions
// have executed, and returns the final status.
func (c *CPU) Run(maxSteps uint64) Status {
	for i := uint64(0); i < maxSteps; i++ {
		if c.Step() != StatusRunning {
			break
		}
	}
	return c.status
}
