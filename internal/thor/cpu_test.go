package thor

import (
	"math/rand"
	"testing"
)

// newTestRand returns a seeded PRNG for reproducible randomised tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// mustCPU builds a CPU with the default configuration.
func mustCPU(t *testing.T) *CPU {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// load assembles a sequence of instructions at address 0 and loads it.
func load(t *testing.T, c *CPU, ins ...Instr) {
	t.Helper()
	for i, in := range ins {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		if err := c.WriteWordHost(uint32(4*i), w); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{MemSize: 10, ROMSize: 4, ICacheLines: 1, DCacheLines: 1, StackBase: 8, StackLimit: 4},
		{MemSize: 64, ROMSize: 0, ICacheLines: 1, DCacheLines: 1, StackBase: 64, StackLimit: 32},
		{MemSize: 64, ROMSize: 128, ICacheLines: 1, DCacheLines: 1, StackBase: 64, StackLimit: 32},
		{MemSize: 64, ROMSize: 32, ICacheLines: 0, DCacheLines: 1, StackBase: 64, StackLimit: 32},
		{MemSize: 64, ROMSize: 32, ICacheLines: 1, DCacheLines: 1, StackBase: 32, StackLimit: 32},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestArithmeticAndFlags(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 7},
		Instr{Op: OpLDI, Rd: 2, Imm: 5},
		Instr{Op: OpADD, Rd: 3, Rs: 1, Rt: 2}, // 12
		Instr{Op: OpSUB, Rd: 4, Rs: 1, Rt: 2}, // 2
		Instr{Op: OpMUL, Rd: 5, Rs: 1, Rt: 2}, // 35
		Instr{Op: OpDIV, Rd: 6, Rs: 1, Rt: 2}, // 1
		Instr{Op: OpXOR, Rd: 7, Rs: 1, Rt: 1}, // 0, Z set
		Instr{Op: OpHALT},
	)
	if st := c.Run(100); st != StatusHalted {
		t.Fatalf("status = %v, detection=%v", st, c.Detection())
	}
	want := map[int]uint32{3: 12, 4: 2, 5: 35, 6: 1, 7: 0}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("R%d = %d, want %d", r, c.Regs[r], v)
		}
	}
	if c.PSW&FlagZ == 0 {
		t.Error("Z flag not set after XOR to zero")
	}
}

func TestSignedArithmeticFlags(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: -3},
		Instr{Op: OpLDI, Rd: 2, Imm: 4},
		Instr{Op: OpCMP, Rd: 1, Rs: 2}, // -3 - 4 = -7: N set, V clear
		Instr{Op: OpHALT},
	)
	c.Run(10)
	if c.PSW&FlagN == 0 || c.PSW&FlagV != 0 {
		t.Fatalf("PSW = %08b after CMP -3,4", c.PSW)
	}
}

func TestShifts(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: -8},
		Instr{Op: OpLDI, Rd: 2, Imm: 1},
		Instr{Op: OpSHR, Rd: 3, Rs: 1, Rt: 2}, // logical
		Instr{Op: OpSAR, Rd: 4, Rs: 1, Rt: 2}, // arithmetic
		Instr{Op: OpSHL, Rd: 5, Rs: 2, Rt: 2},
		Instr{Op: OpHALT},
	)
	c.Run(10)
	if c.Regs[3] != 0x7FFFFFFC {
		t.Errorf("SHR = %#x", c.Regs[3])
	}
	if int32(c.Regs[4]) != -4 {
		t.Errorf("SAR = %d", int32(c.Regs[4]))
	}
	if c.Regs[5] != 2 {
		t.Errorf("SHL = %d", c.Regs[5])
	}
}

func TestLoadStoreWordAndByte(t *testing.T) {
	c := mustCPU(t)
	base := int32(0x8000)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: base},
		Instr{Op: OpLDI, Rd: 2, Imm: 0x1234},
		Instr{Op: OpST, Rd: 2, Rs: 1, Imm: 0},
		Instr{Op: OpLD, Rd: 3, Rs: 1, Imm: 0},
		Instr{Op: OpLDI, Rd: 4, Imm: 0xAB},
		Instr{Op: OpSTB, Rd: 4, Rs: 1, Imm: 1},
		Instr{Op: OpLDB, Rd: 5, Rs: 1, Imm: 1},
		Instr{Op: OpLD, Rd: 6, Rs: 1, Imm: 0},
		Instr{Op: OpHALT},
	)
	if st := c.Run(20); st != StatusHalted {
		t.Fatalf("status = %v (%v)", st, c.Detection())
	}
	if c.Regs[3] != 0x1234 {
		t.Errorf("LD = %#x", c.Regs[3])
	}
	if c.Regs[5] != 0xAB {
		t.Errorf("LDB = %#x", c.Regs[5])
	}
	if c.Regs[6] != 0xAB34 {
		t.Errorf("word after STB = %#x", c.Regs[6])
	}
}

func TestBranches(t *testing.T) {
	c := mustCPU(t)
	// Count down from 3; loop body increments R2.
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 3},
		Instr{Op: OpLDI, Rd: 2, Imm: 0},
		// loop: (pc=8)
		Instr{Op: OpCMPI, Rd: 1, Imm: 0},
		Instr{Op: OpBEQ, Imm: 3}, // -> halt at pc=24
		Instr{Op: OpADDI, Rd: 2, Rs: 2, Imm: 1},
		Instr{Op: OpSUBI, Rd: 1, Rs: 1, Imm: 1},
		Instr{Op: OpBRA, Imm: -5}, // -> loop
		Instr{Op: OpHALT},
	)
	if st := c.Run(100); st != StatusHalted {
		t.Fatalf("status = %v (%v)", st, c.Detection())
	}
	if c.Regs[2] != 3 {
		t.Fatalf("loop executed %d times", c.Regs[2])
	}
}

func TestCallReturnAndStack(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 10},
		Instr{Op: OpJAL, Imm: 2}, // call func at pc=16
		Instr{Op: OpHALT},        // pc=8
		Instr{Op: OpNOP},         // pc=12
		Instr{Op: OpPUSH, Rd: 1}, // func: pc=16
		Instr{Op: OpADDI, Rd: 1, Rs: 1, Imm: 5},
		Instr{Op: OpPOP, Rd: 2},
		Instr{Op: OpJR, Rd: RegLR},
	)
	if st := c.Run(20); st != StatusHalted {
		t.Fatalf("status = %v (%v)", st, c.Detection())
	}
	if c.Regs[1] != 15 || c.Regs[2] != 10 {
		t.Fatalf("R1=%d R2=%d", c.Regs[1], c.Regs[2])
	}
	if c.Regs[RegSP] != c.Config().StackBase {
		t.Fatalf("SP = %#x", c.Regs[RegSP])
	}
}

func TestEDMDivZero(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 1},
		Instr{Op: OpLDI, Rd: 2, Imm: 0},
		Instr{Op: OpDIV, Rd: 3, Rs: 1, Rt: 2},
	)
	if st := c.Run(10); st != StatusDetected {
		t.Fatalf("status = %v", st)
	}
	if d := c.Detection(); d == nil || d.Mechanism != EDMDivZero {
		t.Fatalf("detection = %v", c.Detection())
	}
}

func TestEDMIllegalOpcode(t *testing.T) {
	c := mustCPU(t)
	if err := c.WriteWordHost(0, 0xEE000000); err != nil {
		t.Fatal(err)
	}
	c.Run(1)
	if d := c.Detection(); d == nil || d.Mechanism != EDMIllegalOpcode {
		t.Fatalf("detection = %v", c.Detection())
	}
}

func TestEDMAccessViolation(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 2}, // unaligned
		Instr{Op: OpLD, Rd: 2, Rs: 1, Imm: 0},
	)
	c.Run(10)
	if d := c.Detection(); d == nil || d.Mechanism != EDMAccess {
		t.Fatalf("detection = %v", c.Detection())
	}
}

func TestEDMAccessOutOfRange(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLUI, Rd: 1, Imm: 0x40}, // 0x40000 > 64K
		Instr{Op: OpLD, Rd: 2, Rs: 1, Imm: 0},
	)
	c.Run(10)
	if d := c.Detection(); d == nil || d.Mechanism != EDMAccess {
		t.Fatalf("detection = %v", c.Detection())
	}
}

func TestEDMROMWrite(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x100},
		Instr{Op: OpST, Rd: 1, Rs: 1, Imm: 0}, // store into ROM
	)
	c.Run(10)
	if d := c.Detection(); d == nil || d.Mechanism != EDMROMWrite {
		t.Fatalf("detection = %v", c.Detection())
	}
}

func TestEDMControlFlow(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x9000}, // outside ROM
		Instr{Op: OpJR, Rd: 1},
	)
	c.Run(10)
	if d := c.Detection(); d == nil || d.Mechanism != EDMControlFlow {
		t.Fatalf("detection = %v", c.Detection())
	}
}

func TestEDMStackLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StackLimit = cfg.StackBase - 8 // room for 2 words
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	load(t, c,
		Instr{Op: OpPUSH, Rd: 0},
		Instr{Op: OpPUSH, Rd: 0},
		Instr{Op: OpPUSH, Rd: 0}, // overflow
	)
	c.Run(10)
	if d := c.Detection(); d == nil || d.Mechanism != EDMStackLimit {
		t.Fatalf("detection = %v", c.Detection())
	}
}

func TestEDMStackUnderflow(t *testing.T) {
	c := mustCPU(t)
	load(t, c, Instr{Op: OpPOP, Rd: 1})
	c.Run(10)
	if d := c.Detection(); d == nil || d.Mechanism != EDMStackLimit {
		t.Fatalf("detection = %v", c.Detection())
	}
}

func TestEDMAssertionTrap(t *testing.T) {
	c := mustCPU(t)
	load(t, c, Instr{Op: OpTRAP, Imm: 99})
	c.Run(10)
	d := c.Detection()
	if d == nil || d.Mechanism != EDMAssertion || d.Code != 99 {
		t.Fatalf("detection = %v", d)
	}
}

func TestEDMWatchdog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogLimit = 10
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Infinite loop with no SYNC.
	load(t, c, Instr{Op: OpBRA, Imm: -1})
	c.Run(100)
	if d := c.Detection(); d == nil || d.Mechanism != EDMWatchdog {
		t.Fatalf("detection = %v", c.Detection())
	}
	// With SYNC in the loop, the watchdog stays quiet.
	c2, _ := New(cfg)
	load(t, c2, Instr{Op: OpSYNC}, Instr{Op: OpBRA, Imm: -2})
	if st := c2.Run(100); st != StatusRunning {
		t.Fatalf("status = %v (%v)", st, c2.Detection())
	}
}

func TestSyncHookAndIterations(t *testing.T) {
	c := mustCPU(t)
	var calls int
	c.SetSyncHook(func(cc *CPU) { calls++ })
	load(t, c,
		Instr{Op: OpSYNC},
		Instr{Op: OpSYNC},
		Instr{Op: OpHALT},
	)
	c.Run(10)
	if calls != 2 || c.Iterations() != 2 {
		t.Fatalf("calls=%d iterations=%d", calls, c.Iterations())
	}
}

func TestIOPorts(t *testing.T) {
	c := mustCPU(t)
	c.SetInPort(3, 77)
	load(t, c,
		Instr{Op: OpIOR, Rd: 1, Imm: 3},
		Instr{Op: OpIOW, Rd: 1, Imm: 5},
		Instr{Op: OpHALT},
	)
	c.Run(10)
	if c.Regs[1] != 77 || c.OutPort(5) != 77 {
		t.Fatalf("R1=%d out5=%d", c.Regs[1], c.OutPort(5))
	}
}

func TestTraceHook(t *testing.T) {
	c := mustCPU(t)
	var recs []TraceRecord
	c.SetTraceHook(func(r TraceRecord) { recs = append(recs, r) })
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 1},
		Instr{Op: OpADDI, Rd: 1, Rs: 1, Imm: 2},
		Instr{Op: OpHALT},
	)
	c.Run(10)
	if len(recs) != 3 {
		t.Fatalf("trace records = %d", len(recs))
	}
	if recs[0].PC != 0 || recs[1].PC != 4 || recs[1].Instr.Op != OpADDI {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[1].Events.RegsRead != 1<<1 || recs[1].Events.RegsWritten != 1<<1 {
		t.Fatalf("reg masks = %+v", recs[1].Events)
	}
}

func TestEventsMemoryAndBranch(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x8000},
		Instr{Op: OpST, Rd: 1, Rs: 1, Imm: 0},
		Instr{Op: OpBRA, Imm: 0},
		Instr{Op: OpJAL, Imm: 0},
		Instr{Op: OpYIELD},
		Instr{Op: OpHALT},
	)
	c.Step()
	c.Step()
	ev := c.LastEvents()
	if !ev.MemWrite || ev.MemAddr != 0x8000 || ev.MemValue != 0x8000 {
		t.Fatalf("store events = %+v", ev)
	}
	c.Step()
	if !c.LastEvents().BranchTaken {
		t.Fatal("branch event missing")
	}
	c.Step()
	ev = c.LastEvents()
	if !ev.Call || !ev.BranchTaken {
		t.Fatalf("call events = %+v", ev)
	}
	c.Step()
	if !c.LastEvents().TaskSwitch {
		t.Fatal("task switch event missing")
	}
}

func TestHostAccessBounds(t *testing.T) {
	c := mustCPU(t)
	if _, err := c.ReadWordHost(c.Config().MemSize); err == nil {
		t.Error("read past end should fail")
	}
	if err := c.WriteWordHost(2, 1); err == nil {
		t.Error("unaligned host write should fail")
	}
	if _, err := c.ReadBytesHost(c.Config().MemSize-2, 4); err == nil {
		t.Error("byte read past end should fail")
	}
	if err := c.WriteBytesHost(c.Config().MemSize-2, []byte{1, 2, 3, 4}); err == nil {
		t.Error("byte write past end should fail")
	}
}

func TestResetPreservesMemory(t *testing.T) {
	c := mustCPU(t)
	load(t, c, Instr{Op: OpLDI, Rd: 1, Imm: 42}, Instr{Op: OpHALT})
	c.Run(10)
	c.Reset()
	if c.Status() != StatusRunning || c.PC != 0 || c.Regs[1] != 0 {
		t.Fatal("reset incomplete")
	}
	if c.Regs[RegSP] != c.Config().StackBase {
		t.Fatalf("SP = %#x", c.Regs[RegSP])
	}
	// Program still loaded.
	if st := c.Run(10); st != StatusHalted || c.Regs[1] != 42 {
		t.Fatalf("after reset: %v R1=%d", st, c.Regs[1])
	}
}

func TestStepAfterHaltIsNoOp(t *testing.T) {
	c := mustCPU(t)
	load(t, c, Instr{Op: OpHALT})
	c.Run(10)
	cycles := c.Cycles()
	if st := c.Step(); st != StatusHalted || c.Cycles() != cycles {
		t.Fatal("step after halt must not execute")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, [NumRegs]uint32) {
		c := mustCPU(t)
		load(t, c,
			Instr{Op: OpLDI, Rd: 1, Imm: 1000},
			Instr{Op: OpADDI, Rd: 2, Rs: 2, Imm: 3},
			Instr{Op: OpSUBI, Rd: 1, Rs: 1, Imm: 1},
			Instr{Op: OpCMPI, Rd: 1, Imm: 0},
			Instr{Op: OpBNE, Imm: -4},
			Instr{Op: OpHALT},
		)
		c.Run(100000)
		return c.Cycles(), c.Regs
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatal("execution is not deterministic")
	}
}

func TestICacheParityDetection(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 1},
		Instr{Op: OpBRA, Imm: -2}, // tight loop keeps lines hot
	)
	c.Run(4) // warm the I-cache
	// Flip a data bit in the cached line for PC=0.
	idx, _ := c.icache.index(0)
	c.icache.lines[idx].data ^= 1 << 5
	st := c.Run(4)
	if st != StatusDetected {
		t.Fatalf("status = %v", st)
	}
	if d := c.Detection(); d.Mechanism != EDMICacheParity {
		t.Fatalf("detection = %v", d)
	}
}

func TestDCacheParityDetection(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x8000},
		Instr{Op: OpST, Rd: 1, Rs: 1, Imm: 0},
		Instr{Op: OpLD, Rd: 2, Rs: 1, Imm: 0},
		Instr{Op: OpLD, Rd: 3, Rs: 1, Imm: 0},
		Instr{Op: OpHALT},
	)
	c.Step()
	c.Step() // store fills the D-cache line
	idx, _ := c.dcache.index(0x8000)
	c.dcache.lines[idx].data ^= 1 << 9
	c.Step() // the next load hits the corrupted line
	if d := c.Detection(); d == nil || d.Mechanism != EDMDCacheParity {
		t.Fatalf("detection = %v", c.Detection())
	}
}

func TestCacheTagFlipCausesMissNotFalseHit(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x8000},
		Instr{Op: OpST, Rd: 1, Rs: 1, Imm: 0},
		Instr{Op: OpLD, Rd: 2, Rs: 1, Imm: 0},
		Instr{Op: OpHALT},
	)
	c.Step()
	c.Step()
	idx, _ := c.dcache.index(0x8000)
	c.dcache.lines[idx].tag ^= 1 // tag no longer matches -> miss, refill
	if st := c.Run(10); st != StatusHalted {
		t.Fatalf("status = %v (%v)", st, c.Detection())
	}
	if c.Regs[2] != 0x8000 {
		t.Fatalf("R2 = %#x", c.Regs[2])
	}
}

func TestCacheStats(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x8000},
		Instr{Op: OpLD, Rd: 2, Rs: 1, Imm: 0},
		Instr{Op: OpLD, Rd: 3, Rs: 1, Imm: 0},
		Instr{Op: OpHALT},
	)
	c.Run(10)
	hits, misses := c.DCache().Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("dcache hits=%d misses=%d", hits, misses)
	}
	if c.DCache().Lines() != DefaultConfig().DCacheLines {
		t.Fatal("Lines() mismatch")
	}
}

func TestUncachedIOWindow(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x7000},
		Instr{Op: OpLD, Rd: 2, Rs: 1, Imm: 0}, // read IO word (0)
		Instr{Op: OpLD, Rd: 3, Rs: 1, Imm: 0}, // read again after host write
		Instr{Op: OpHALT},
	)
	c.Step()
	c.Step()
	if c.Regs[2] != 0 {
		t.Fatalf("initial IO read = %d", c.Regs[2])
	}
	// Host writes the IO word between the two loads; the second load must
	// see it because the window is uncached.
	if err := c.WriteWordHost(0x7000, 1234); err != nil {
		t.Fatal(err)
	}
	c.Run(10)
	if c.Regs[3] != 1234 {
		t.Fatalf("IO read after host write = %d", c.Regs[3])
	}
	// IO accesses must not populate the data cache.
	hits, misses := c.DCache().Stats()
	if hits != 0 || misses != 0 {
		t.Fatalf("dcache touched by IO: hits=%d misses=%d", hits, misses)
	}
}

func TestCachedRegionMasksHostWrite(t *testing.T) {
	// Outside the IO window, a cached line legitimately masks a later host
	// write until the line is evicted — the behaviour runtime SWIFI on a
	// write-through cache system really exhibits.
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x4000},
		Instr{Op: OpLD, Rd: 2, Rs: 1, Imm: 0},
		Instr{Op: OpLD, Rd: 3, Rs: 1, Imm: 0},
		Instr{Op: OpHALT},
	)
	c.Step()
	c.Step()
	if err := c.WriteWordHost(0x4000, 555); err != nil {
		t.Fatal(err)
	}
	c.Run(10)
	if c.Regs[3] != 0 {
		t.Fatalf("cached read = %d, expected stale 0", c.Regs[3])
	}
}

// TestRandomProgramsNeverPanic executes long streams of random but valid
// instructions and checks the simulator only ever stops through a defined
// status — a fuzz-style robustness property for the fault injector's
// substrate (injected faults routinely create wild programs).
func TestRandomProgramsNeverPanic(t *testing.T) {
	rng := newTestRand(99)
	ops := make([]Op, 0, len(validOps))
	for op := range validOps {
		ops = append(ops, op)
	}
	// Deterministic op order for reproducibility across map iteration.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j-1] > ops[j]; j-- {
			ops[j-1], ops[j] = ops[j], ops[j-1]
		}
	}
	for trial := 0; trial < 50; trial++ {
		c := mustCPU(t)
		nWords := 256
		for i := 0; i < nWords; i++ {
			in := Instr{Op: ops[rng.Intn(len(ops))], Rd: rng.Intn(NumRegs)}
			if formatI(in.Op) {
				in.Imm = int32(rng.Intn(imm20Max-imm20Min+1) + imm20Min)
			} else {
				in.Rs = rng.Intn(NumRegs)
				in.Rt = rng.Intn(NumRegs)
				in.Imm = int32(rng.Intn(imm12Max-imm12Min+1) + imm12Min)
			}
			w, err := Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.WriteWordHost(uint32(4*i), w); err != nil {
				t.Fatal(err)
			}
		}
		st := c.Run(20000)
		switch st {
		case StatusRunning, StatusHalted, StatusDetected:
		default:
			t.Fatalf("trial %d: bad status %v", trial, st)
		}
		if st == StatusDetected && c.Detection() == nil {
			t.Fatalf("trial %d: detected without detection record", trial)
		}
	}
}

// TestRandomProgramsDeterministic re-runs a random program and requires
// byte-identical final state.
func TestRandomProgramsDeterministic(t *testing.T) {
	build := func(seed int64) *CPU {
		rng := newTestRand(seed)
		c := mustCPU(t)
		for i := 0; i < 200; i++ {
			in := Instr{Op: OpADDI, Rd: rng.Intn(NumRegs), Rs: rng.Intn(NumRegs),
				Imm: int32(rng.Intn(100))}
			if i%7 == 0 {
				in = Instr{Op: OpST, Rd: rng.Intn(NumRegs), Rs: 0, Imm: int32(0x7F0)}
				// Stores at [R0+0x7F0] hit ROM -> some runs detect early.
			}
			w, _ := Encode(in)
			if err := c.WriteWordHost(uint32(4*i), w); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(5000)
		return c
	}
	for seed := int64(0); seed < 10; seed++ {
		a, b := build(seed), build(seed)
		if a.Regs != b.Regs || a.PC != b.PC || a.Cycles() != b.Cycles() || a.Status() != b.Status() {
			t.Fatalf("seed %d: nondeterministic execution", seed)
		}
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x8000},
		Instr{Op: OpST, Rd: 1, Rs: 1, Imm: 0},
		Instr{Op: OpLD, Rd: 2, Rs: 1, Imm: 0},
		Instr{Op: OpADDI, Rd: 3, Rs: 3, Imm: 1},
		Instr{Op: OpBRA, Imm: -2},
	)
	c.Run(10) // past the store, mid-loop; caches warm
	cp := c.Checkpoint()
	snapshotCycles := c.Cycles()
	snapshotR3 := c.Regs[3]

	c.Run(100) // diverge
	if c.Cycles() == snapshotCycles {
		t.Fatal("CPU did not advance")
	}
	// Corrupt state that Restore must repair, including memory and caches.
	c.Regs[3] = 0xFFFF
	if err := c.WriteWordHost(0x8000, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if c.Cycles() != snapshotCycles || c.Regs[3] != snapshotR3 {
		t.Fatalf("restore incomplete: cycles=%d R3=%d", c.Cycles(), c.Regs[3])
	}
	v, _ := c.ReadWordHost(0x8000)
	if v != 0x8000 {
		t.Fatalf("memory not restored: %#x", v)
	}
	// Continuation after restore is deterministic: run both and compare.
	c2 := mustCPU(t)
	load(t, c2,
		Instr{Op: OpLDI, Rd: 1, Imm: 0x8000},
		Instr{Op: OpST, Rd: 1, Rs: 1, Imm: 0},
		Instr{Op: OpLD, Rd: 2, Rs: 1, Imm: 0},
		Instr{Op: OpADDI, Rd: 3, Rs: 3, Imm: 1},
		Instr{Op: OpBRA, Imm: -2},
	)
	c2.Run(10)
	c.Run(50)
	c2.Run(50)
	if c.Regs != c2.Regs || c.Cycles() != c2.Cycles() || c.PC != c2.PC {
		t.Fatal("restored continuation diverged from straight run")
	}
}

func TestCheckpointRestoreErrors(t *testing.T) {
	c := mustCPU(t)
	if err := c.Restore(nil); err == nil {
		t.Fatal("nil checkpoint should fail")
	}
	cfg := DefaultConfig()
	cfg.MemSize = 32 * 1024
	cfg.StackBase = 32 * 1024
	cfg.StackLimit = 28 * 1024
	small, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Restore(c.Checkpoint()); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestCheckpointCapturesDetection(t *testing.T) {
	c := mustCPU(t)
	load(t, c, Instr{Op: OpTRAP, Imm: 7})
	c.Run(5)
	cp := c.Checkpoint()
	c.Reset()
	if err := c.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if c.Status() != StatusDetected || c.Detection() == nil || c.Detection().Code != 7 {
		t.Fatalf("detection not restored: %v %v", c.Status(), c.Detection())
	}
}

func TestAddSubCarryOverflowFlags(t *testing.T) {
	c := mustCPU(t)
	load(t, c,
		// 0x7FFFFFFF + 1: signed overflow, no carry.
		Instr{Op: OpLUI, Rd: 1, Imm: 0x7FFFF}, // 0x7FFFF000
		Instr{Op: OpLDI, Rd: 4, Imm: 0xFFF},
		Instr{Op: OpOR, Rd: 1, Rs: 1, Rt: 4}, // 0x7FFFFFFF
		Instr{Op: OpLDI, Rd: 2, Imm: 1},
		Instr{Op: OpADD, Rd: 3, Rs: 1, Rt: 2},
		Instr{Op: OpHALT},
	)
	c.Run(10)
	if c.PSW&FlagV == 0 {
		t.Fatalf("V not set on signed overflow: PSW=%04b", c.PSW)
	}
	if c.PSW&FlagC != 0 {
		t.Fatalf("C set without unsigned carry: PSW=%04b", c.PSW)
	}
	if c.PSW&FlagN == 0 {
		t.Fatalf("N not set on negative result: PSW=%04b", c.PSW)
	}

	// 0xFFFFFFFF + 1: carry, no signed overflow, zero result.
	c2 := mustCPU(t)
	load(t, c2,
		Instr{Op: OpLDI, Rd: 1, Imm: -1},
		Instr{Op: OpLDI, Rd: 2, Imm: 1},
		Instr{Op: OpADD, Rd: 3, Rs: 1, Rt: 2},
		Instr{Op: OpHALT},
	)
	c2.Run(10)
	if c2.PSW&FlagC == 0 || c2.PSW&FlagV != 0 || c2.PSW&FlagZ == 0 {
		t.Fatalf("flags = %04b", c2.PSW)
	}

	// 1 - 2: borrow sets C, N set.
	c3 := mustCPU(t)
	load(t, c3,
		Instr{Op: OpLDI, Rd: 1, Imm: 1},
		Instr{Op: OpLDI, Rd: 2, Imm: 2},
		Instr{Op: OpSUB, Rd: 3, Rs: 1, Rt: 2},
		Instr{Op: OpHALT},
	)
	c3.Run(10)
	if c3.PSW&FlagC == 0 || c3.PSW&FlagN == 0 {
		t.Fatalf("flags = %04b", c3.PSW)
	}
}

func TestBranchConditionMatrix(t *testing.T) {
	// For each (a, b) pair, check every conditional branch takes exactly
	// when the signed relation holds.
	rel := map[Op]func(a, b int32) bool{
		OpBEQ: func(a, b int32) bool { return a == b },
		OpBNE: func(a, b int32) bool { return a != b },
		OpBLT: func(a, b int32) bool { return a < b },
		OpBGE: func(a, b int32) bool { return a >= b },
		OpBGT: func(a, b int32) bool { return a > b },
		OpBLE: func(a, b int32) bool { return a <= b },
	}
	pairs := [][2]int32{
		{0, 0}, {1, 2}, {2, 1}, {-1, 1}, {1, -1}, {-5, -5}, {-7, -2},
	}
	for op, want := range rel {
		for _, p := range pairs {
			c := mustCPU(t)
			load(t, c,
				Instr{Op: OpLDI, Rd: 1, Imm: p[0]},
				Instr{Op: OpLDI, Rd: 2, Imm: p[1]},
				Instr{Op: OpCMP, Rd: 1, Rs: 2},
				Instr{Op: op, Imm: 1},            // skip the marker when taken
				Instr{Op: OpLDI, Rd: 3, Imm: 99}, // marker: branch NOT taken
				Instr{Op: OpHALT},
			)
			if st := c.Run(10); st != StatusHalted {
				t.Fatalf("%v %v: status %v", op, p, st)
			}
			taken := c.Regs[3] != 99
			if taken != want(p[0], p[1]) {
				t.Errorf("%v with (%d, %d): taken=%v", op, p[0], p[1], taken)
			}
		}
	}
}
