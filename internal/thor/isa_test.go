package thor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpNOP},
		{Op: OpHALT},
		{Op: OpMOV, Rd: 1, Rs: 2},
		{Op: OpLDI, Rd: 15, Imm: -1},
		{Op: OpLDI, Rd: 0, Imm: imm20Max},
		{Op: OpLDI, Rd: 0, Imm: imm20Min},
		{Op: OpLUI, Rd: 3, Imm: 0xFF},
		{Op: OpADD, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpADDI, Rd: 1, Rs: 2, Imm: imm12Max},
		{Op: OpSUBI, Rd: 1, Rs: 2, Imm: imm12Min},
		{Op: OpCMP, Rd: 4, Rs: 5},
		{Op: OpCMPI, Rd: 4, Imm: -7},
		{Op: OpLD, Rd: 2, Rs: 13, Imm: -4},
		{Op: OpST, Rd: 2, Rs: 13, Imm: 8},
		{Op: OpBEQ, Imm: -100},
		{Op: OpJAL, Imm: 4000},
		{Op: OpJR, Rd: 14},
		{Op: OpPUSH, Rd: 7},
		{Op: OpTRAP, Imm: 42},
		{Op: OpIOW, Rd: 3, Imm: 5},
		{Op: OpSYNC},
		{Op: OpYIELD},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %+v: %v", in, err)
		}
		if got != in {
			t.Fatalf("round trip %+v -> %#x -> %+v", in, w, got)
		}
	}
}

func TestEncodeRangeChecks(t *testing.T) {
	bad := []Instr{
		{Op: Op(0xEE)},
		{Op: OpADD, Rd: 16},
		{Op: OpADD, Rs: -1},
		{Op: OpLDI, Imm: imm20Max + 1},
		{Op: OpLDI, Imm: imm20Min - 1},
		{Op: OpADDI, Imm: imm12Max + 1},
		{Op: OpADDI, Imm: imm12Min - 1},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("encode %+v should fail", in)
		}
	}
}

func TestDecodeIllegalOpcode(t *testing.T) {
	if _, err := Decode(0xEE000000); err == nil {
		t.Fatal("decode of illegal opcode should fail")
	}
}

// Property: every encodable instruction round-trips.
func TestEncodeDecodeProperty(t *testing.T) {
	ops := make([]Op, 0, len(validOps))
	for op := range validOps {
		ops = append(ops, op)
	}
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		op := ops[rng.Intn(len(ops))]
		in := Instr{Op: op, Rd: rng.Intn(NumRegs)}
		if formatI(op) {
			in.Imm = int32(rng.Intn(imm20Max-imm20Min+1) + imm20Min)
		} else {
			in.Rs = rng.Intn(NumRegs)
			in.Rt = rng.Intn(NumRegs)
			in.Imm = int32(rng.Intn(imm12Max-imm12Min+1) + imm12Min)
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if OpADD.String() != "ADD" {
		t.Fatalf("OpADD = %q", OpADD.String())
	}
	if Op(0xEE).String() != "OP(0xee)" {
		t.Fatalf("unknown op = %q", Op(0xEE).String())
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNOP}, "NOP"},
		{Instr{Op: OpLDI, Rd: 1, Imm: -5}, "LDI R1, -5"},
		{Instr{Op: OpADD, Rd: 1, Rs: 2, Rt: 3}, "ADD R1, R2, R3"},
		{Instr{Op: OpLD, Rd: 2, Rs: 13, Imm: 4}, "LD R2, [R13+4]"},
		{Instr{Op: OpBRA, Imm: -2}, "BRA -2"},
		{Instr{Op: OpTRAP, Imm: 9}, "TRAP 9"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String(%+v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestMnemonicsComplete(t *testing.T) {
	m := Mnemonics()
	if len(m) != len(validOps) {
		t.Fatalf("mnemonic table has %d entries, validOps %d", len(m), len(validOps))
	}
	for name, op := range m {
		if !validOps[op] {
			t.Errorf("mnemonic %s maps to invalid op %v", name, op)
		}
	}
}
