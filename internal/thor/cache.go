package thor

import "math/bits"

// cacheLine is one direct-mapped cache line holding a single word. The
// parity bit covers the valid bit, the tag and the data word, matching the
// Thor RD's parity-protected instruction and data caches (paper §1).
type cacheLine struct {
	valid  bool
	tag    uint32
	data   uint32
	parity uint8 // single even-parity bit
}

// Cache is a direct-mapped, write-through, write-allocate cache of one-word
// lines. It is exported only through the CPU's scan-chain state map.
type Cache struct {
	lines []cacheLine
	// hits and misses feed the benchmark harness.
	hits, misses uint64
}

func newCache(nLines int) *Cache {
	return &Cache{lines: make([]cacheLine, nLines)}
}

func (c *Cache) index(addr uint32) (idx int, tag uint32) {
	wordAddr := addr >> 2
	n := uint32(len(c.lines))
	return int(wordAddr % n), wordAddr / n
}

func lineParity(valid bool, tag, data uint32) uint8 {
	n := bits.OnesCount32(tag) + bits.OnesCount32(data)
	if valid {
		n++
	}
	return uint8(n & 1)
}

// lookup returns the cached word for addr. ok reports a hit; parityOK
// reports whether the stored parity matched the recomputed one — a mismatch
// means a bit-flip was injected into the line and must raise the cache's
// parity EDM.
func (c *Cache) lookup(addr uint32) (data uint32, ok, parityOK bool) {
	idx, tag := c.index(addr)
	ln := &c.lines[idx]
	if !ln.valid || ln.tag != tag {
		c.misses++
		return 0, false, true
	}
	c.hits++
	if lineParity(ln.valid, ln.tag, ln.data) != ln.parity {
		return 0, true, false
	}
	return ln.data, true, true
}

// fill installs a word fetched from memory.
func (c *Cache) fill(addr, data uint32) {
	idx, tag := c.index(addr)
	c.lines[idx] = cacheLine{valid: true, tag: tag, data: data,
		parity: lineParity(true, tag, data)}
}

// invalidate clears every line; used at reset.
func (c *Cache) invalidate() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	c.hits, c.misses = 0, 0
}

// Stats returns the hit and miss counters.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Lines returns the number of cache lines.
func (c *Cache) Lines() int { return len(c.lines) }
