// Package thor implements the target microprocessor of the reproduction: a
// cycle-counted 32-bit processor modelled on the role the Thor RD plays in
// the GOOFI paper (DSN 2001, §1, §3).
//
// Like the Thor RD, the simulated processor features parity-protected
// instruction and data caches, a set of hardware error detection mechanisms
// (EDMs), and full observability/controllability of its internal state
// elements through scan chains (see internal/scan). The real Thor RD is a
// proprietary rad-hard part; this simulator substitutes a synthetic ISA that
// exercises the same fault-injection surface: registers, program status word,
// pipeline latches, cache arrays and boundary pins.
package thor

import "fmt"

// Word is the processor's natural data unit.
type Word = uint32

// Register file layout. R13 serves as the stack pointer and R14 as the link
// register by software convention; the hardware enforces nothing about them
// except the stack-limit EDM on PUSH/POP.
const (
	// NumRegs is the number of general-purpose registers.
	NumRegs = 16
	// RegSP is the stack-pointer register index.
	RegSP = 13
	// RegLR is the link-register index used by JAL/JR.
	RegLR = 14
)

// Op is an instruction opcode.
type Op uint8

// Instruction set. Two encodings exist: format R packs rd/rs/rt plus a
// signed 12-bit immediate; format I packs rd plus a signed 20-bit immediate.
const (
	OpNOP  Op = 0x00 // no operation
	OpHALT Op = 0x01 // stop execution, workload completed
	OpMOV  Op = 0x02 // rd = rs
	OpLDI  Op = 0x03 // rd = signext(imm20)            [format I]
	OpLUI  Op = 0x04 // rd = imm20 << 12               [format I]

	OpADD  Op = 0x10 // rd = rs + rt (flags)
	OpSUB  Op = 0x11 // rd = rs - rt (flags)
	OpMUL  Op = 0x12 // rd = rs * rt (flags Z,N)
	OpDIV  Op = 0x13 // rd = rs / rt; rt==0 raises the div-zero EDM
	OpAND  Op = 0x14 // rd = rs & rt
	OpOR   Op = 0x15 // rd = rs | rt
	OpXOR  Op = 0x16 // rd = rs ^ rt
	OpSHL  Op = 0x17 // rd = rs << (rt & 31)
	OpSHR  Op = 0x18 // rd = rs >> (rt & 31) logical
	OpSAR  Op = 0x19 // rd = rs >> (rt & 31) arithmetic
	OpADDI Op = 0x1A // rd = rs + imm12 (flags)
	OpSUBI Op = 0x1B // rd = rs - imm12 (flags)
	OpCMP  Op = 0x1C // flags on rd - rs
	OpCMPI Op = 0x1D // flags on rd - imm12

	OpLD  Op = 0x20 // rd = mem32[rs + imm12]
	OpST  Op = 0x21 // mem32[rs + imm12] = rd
	OpLDB Op = 0x22 // rd = mem8[rs + imm12]
	OpSTB Op = 0x23 // mem8[rs + imm12] = rd & 0xFF

	OpBEQ Op = 0x30 // branch if Z                      [format I]
	OpBNE Op = 0x31 // branch if !Z                     [format I]
	OpBLT Op = 0x32 // branch if N != V (signed <)      [format I]
	OpBGE Op = 0x33 // branch if N == V                 [format I]
	OpBGT Op = 0x34 // branch if !Z && N == V           [format I]
	OpBLE Op = 0x35 // branch if Z || N != V            [format I]
	OpBRA Op = 0x36 // unconditional branch             [format I]
	OpJAL Op = 0x37 // LR = PC + 4; branch (subprogram call) [format I]
	OpJR  Op = 0x38 // PC = rd (subprogram return)

	OpPUSH Op = 0x40 // SP -= 4; mem32[SP] = rd (stack-limit EDM)
	OpPOP  Op = 0x41 // rd = mem32[SP]; SP += 4 (stack-limit EDM)

	OpTRAP  Op = 0x51 // software-detected error (executable assertion), code imm20 [format I]
	OpIOW   Op = 0x53 // output port imm12 = rd
	OpIOR   Op = 0x54 // rd = input port imm12
	OpSYNC  Op = 0x55 // end of workload loop iteration: environment exchange, watchdog reset
	OpYIELD Op = 0x56 // task switch marker (drives the task-switch fault trigger)
)

// PSW flag bit positions.
const (
	FlagZ uint8 = 1 << 0 // zero
	FlagN uint8 = 1 << 1 // negative
	FlagC uint8 = 1 << 2 // carry / borrow
	FlagV uint8 = 1 << 3 // signed overflow
)

// Instr is a decoded instruction.
type Instr struct {
	Op  Op
	Rd  int
	Rs  int
	Rt  int
	Imm int32 // sign-extended imm12 (format R) or imm20 (format I)
}

// formatI reports whether the opcode uses the rd+imm20 encoding.
func formatI(op Op) bool {
	switch op {
	case OpLDI, OpLUI, OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpBRA, OpJAL, OpTRAP:
		return true
	default:
		return false
	}
}

// validOps is the set of defined opcodes; anything else raises the
// illegal-opcode EDM when fetched.
var validOps = map[Op]bool{
	OpNOP: true, OpHALT: true, OpMOV: true, OpLDI: true, OpLUI: true,
	OpADD: true, OpSUB: true, OpMUL: true, OpDIV: true, OpAND: true,
	OpOR: true, OpXOR: true, OpSHL: true, OpSHR: true, OpSAR: true,
	OpADDI: true, OpSUBI: true, OpCMP: true, OpCMPI: true,
	OpLD: true, OpST: true, OpLDB: true, OpSTB: true,
	OpBEQ: true, OpBNE: true, OpBLT: true, OpBGE: true, OpBGT: true,
	OpBLE: true, OpBRA: true, OpJAL: true, OpJR: true,
	OpPUSH: true, OpPOP: true,
	OpTRAP: true, OpIOW: true, OpIOR: true, OpSYNC: true, OpYIELD: true,
}

const (
	imm12Min = -(1 << 11)
	imm12Max = (1 << 11) - 1
	imm20Min = -(1 << 19)
	imm20Max = (1 << 19) - 1
)

// Encode packs an instruction into its 32-bit machine form.
func Encode(in Instr) (Word, error) {
	if !validOps[in.Op] {
		return 0, fmt.Errorf("encode: invalid opcode %#02x", uint8(in.Op))
	}
	if in.Rd < 0 || in.Rd >= NumRegs || in.Rs < 0 || in.Rs >= NumRegs || in.Rt < 0 || in.Rt >= NumRegs {
		return 0, fmt.Errorf("encode %v: register out of range", in.Op)
	}
	w := Word(in.Op) << 24
	if formatI(in.Op) {
		if in.Imm < imm20Min || in.Imm > imm20Max {
			return 0, fmt.Errorf("encode %v: imm20 %d out of range", in.Op, in.Imm)
		}
		w |= Word(in.Rd) << 20
		w |= Word(uint32(in.Imm) & 0xFFFFF)
		return w, nil
	}
	if in.Imm < imm12Min || in.Imm > imm12Max {
		return 0, fmt.Errorf("encode %v: imm12 %d out of range", in.Op, in.Imm)
	}
	w |= Word(in.Rd) << 20
	w |= Word(in.Rs) << 16
	w |= Word(in.Rt) << 12
	w |= Word(uint32(in.Imm) & 0xFFF)
	return w, nil
}

// Decode unpacks a machine word. Unknown opcodes return an error which the
// CPU converts into an illegal-opcode detection.
func Decode(w Word) (Instr, error) {
	op := Op(w >> 24)
	if !validOps[op] {
		return Instr{}, fmt.Errorf("decode: illegal opcode %#02x", uint8(op))
	}
	in := Instr{Op: op, Rd: int((w >> 20) & 0xF)}
	if formatI(op) {
		imm := int32(w & 0xFFFFF)
		if imm&(1<<19) != 0 {
			imm -= 1 << 20
		}
		in.Imm = imm
		return in, nil
	}
	in.Rs = int((w >> 16) & 0xF)
	in.Rt = int((w >> 12) & 0xF)
	imm := int32(w & 0xFFF)
	if imm&(1<<11) != 0 {
		imm -= 1 << 12
	}
	in.Imm = imm
	return in, nil
}

// opNames maps opcodes to their assembly mnemonics (shared with the
// assembler in internal/asm).
var opNames = map[Op]string{
	OpNOP: "NOP", OpHALT: "HALT", OpMOV: "MOV", OpLDI: "LDI", OpLUI: "LUI",
	OpADD: "ADD", OpSUB: "SUB", OpMUL: "MUL", OpDIV: "DIV", OpAND: "AND",
	OpOR: "OR", OpXOR: "XOR", OpSHL: "SHL", OpSHR: "SHR", OpSAR: "SAR",
	OpADDI: "ADDI", OpSUBI: "SUBI", OpCMP: "CMP", OpCMPI: "CMPI",
	OpLD: "LD", OpST: "ST", OpLDB: "LDB", OpSTB: "STB",
	OpBEQ: "BEQ", OpBNE: "BNE", OpBLT: "BLT", OpBGE: "BGE", OpBGT: "BGT",
	OpBLE: "BLE", OpBRA: "BRA", OpJAL: "JAL", OpJR: "JR",
	OpPUSH: "PUSH", OpPOP: "POP",
	OpTRAP: "TRAP", OpIOW: "IOW", OpIOR: "IOR", OpSYNC: "SYNC", OpYIELD: "YIELD",
}

// String returns the assembly mnemonic of the opcode.
func (op Op) String() string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("OP(%#02x)", uint8(op))
}

// Mnemonics returns the full mnemonic→opcode table, used by the assembler.
func Mnemonics() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}

// String renders the instruction in assembly-like form.
func (in Instr) String() string {
	switch in.Op {
	case OpNOP, OpHALT, OpSYNC, OpYIELD:
		return in.Op.String()
	case OpLDI, OpLUI:
		return fmt.Sprintf("%s R%d, %d", in.Op, in.Rd, in.Imm)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpBRA, OpJAL:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case OpTRAP:
		return fmt.Sprintf("TRAP %d", in.Imm)
	case OpJR, OpPUSH, OpPOP:
		return fmt.Sprintf("%s R%d", in.Op, in.Rd)
	case OpMOV:
		return fmt.Sprintf("MOV R%d, R%d", in.Rd, in.Rs)
	case OpCMP:
		return fmt.Sprintf("CMP R%d, R%d", in.Rd, in.Rs)
	case OpCMPI:
		return fmt.Sprintf("CMPI R%d, %d", in.Rd, in.Imm)
	case OpLD, OpLDB:
		return fmt.Sprintf("%s R%d, [R%d%+d]", in.Op, in.Rd, in.Rs, in.Imm)
	case OpST, OpSTB:
		return fmt.Sprintf("%s R%d, [R%d%+d]", in.Op, in.Rd, in.Rs, in.Imm)
	case OpADDI, OpSUBI:
		return fmt.Sprintf("%s R%d, R%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case OpIOW, OpIOR:
		return fmt.Sprintf("%s R%d, %d", in.Op, in.Rd, in.Imm)
	default:
		return fmt.Sprintf("%s R%d, R%d, R%d", in.Op, in.Rd, in.Rs, in.Rt)
	}
}
