package faultmodel

import (
	"fmt"
	"strconv"
	"strings"

	"goofi/internal/target"
)

// Filter selects fault locations compactly so CampaignData can store the
// chosen location set as text (paper Fig. 6: the user picks locations from a
// hierarchical list). Grammar, comma separated:
//
//	chain:<name>            every writable bit of the chain
//	chain:<name>/<field>    every writable bit of one field, e.g.
//	                        chain:internal.core/R3
//	mem:<lo>-<hi>           every bit of the word-aligned address range
//	                        [lo, hi), e.g. mem:0x4000-0x4100
type Filter string

// Resolve expands the filter into concrete locations against a target.
func (f Filter) Resolve(ops target.Operations) ([]Location, error) {
	var out []Location
	items := strings.Split(string(f), ",")
	for _, item := range items {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		switch {
		case strings.HasPrefix(item, "chain:"):
			locs, err := resolveChain(ops, strings.TrimPrefix(item, "chain:"))
			if err != nil {
				return nil, err
			}
			out = append(out, locs...)
		case strings.HasPrefix(item, "mem:"):
			locs, err := resolveMem(ops, strings.TrimPrefix(item, "mem:"))
			if err != nil {
				return nil, err
			}
			out = append(out, locs...)
		default:
			return nil, fmt.Errorf("faultmodel: malformed filter item %q", item)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultmodel: filter %q selects no locations", string(f))
	}
	return out, nil
}

func resolveChain(ops target.Operations, spec string) ([]Location, error) {
	chainName := spec
	fieldName := ""
	if slash := strings.IndexByte(spec, '/'); slash >= 0 {
		chainName = spec[:slash]
		fieldName = spec[slash+1:]
	}
	var info *target.ChainInfo
	for _, ci := range ops.Chains() {
		if ci.Name == chainName {
			c := ci
			info = &c
			break
		}
	}
	if info == nil {
		return nil, fmt.Errorf("faultmodel: target has no chain %q", chainName)
	}
	var out []Location
	for _, bit := range info.Writable {
		if fieldName != "" {
			name, err := ops.BitName(chainName, bit)
			if err != nil {
				return nil, err
			}
			// Names look like "chain/field[i]".
			rest := strings.TrimPrefix(name, chainName+"/")
			if !strings.HasPrefix(rest, fieldName+"[") {
				continue
			}
		}
		out = append(out, Location{Domain: DomainScan, Chain: chainName, Bit: bit})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultmodel: chain filter %q matches nothing", spec)
	}
	return out, nil
}

func resolveMem(ops target.Operations, spec string) ([]Location, error) {
	dash := strings.IndexByte(spec, '-')
	if dash < 0 {
		return nil, fmt.Errorf("faultmodel: malformed memory range %q", spec)
	}
	lo, err := strconv.ParseUint(spec[:dash], 0, 32)
	if err != nil {
		return nil, fmt.Errorf("faultmodel: bad range start in %q", spec)
	}
	hi, err := strconv.ParseUint(spec[dash+1:], 0, 32)
	if err != nil {
		return nil, fmt.Errorf("faultmodel: bad range end in %q", spec)
	}
	memSize, _ := ops.MemLayout()
	if lo%4 != 0 || hi%4 != 0 || lo >= hi || hi > uint64(memSize) {
		return nil, fmt.Errorf("faultmodel: memory range %q invalid for %d-byte memory", spec, memSize)
	}
	out := make([]Location, 0, (hi-lo)/4*32)
	for addr := uint32(lo); addr < uint32(hi); addr += 4 {
		for bit := 0; bit < 32; bit++ {
			out = append(out, Location{Domain: DomainMemory, Addr: addr, MemBit: bit})
		}
	}
	return out, nil
}
