package faultmodel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLocationStringRoundTrip(t *testing.T) {
	locs := []Location{
		{Domain: DomainScan, Chain: "internal.core", Bit: 531},
		{Domain: DomainScan, Chain: "boundary.pins", Bit: 0},
		{Domain: DomainMemory, Addr: 0x4000, MemBit: 31},
		{Domain: DomainMemory, Addr: 0, MemBit: 0},
	}
	for _, l := range locs {
		got, err := ParseLocation(l.String())
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		if got != l {
			t.Fatalf("round trip %v -> %v", l, got)
		}
	}
}

func TestParseLocationErrors(t *testing.T) {
	bad := []string{
		"", "scan", "scan:c", "scan::5", "scan:c:x", "scan:c:-1",
		"mem:zz:0", "mem:0x4000:32", "mem:0x4000:-1", "pin:0:1", "a:b:c:d",
	}
	for _, s := range bad {
		if _, err := ParseLocation(s); err == nil {
			t.Errorf("ParseLocation(%q) should fail", s)
		}
	}
}

func TestModelStringRoundTrip(t *testing.T) {
	models := []Model{
		{Kind: Transient},
		{Kind: TransientMultiple, Multiplicity: 3},
		{Kind: Intermittent, Burst: 4, BurstSpacing: 100},
		{Kind: Permanent, Period: 50, StuckValue: 1},
		{Kind: Permanent, Period: 1, StuckValue: 0},
	}
	for _, m := range models {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip %+v -> %+v", m, got)
		}
	}
}

func TestParseModelErrors(t *testing.T) {
	bad := []string{
		"", "bogus", "transient-multiple", "transient-multiple,m=1",
		"intermittent,burst=1,spacing=5", "intermittent,burst=3",
		"permanent", "permanent,period=0", "permanent,period=5,stuck=2",
		"transient,zz=1", "transient,m", "transient,m=x",
	}
	for _, s := range bad {
		if _, err := ParseModel(s); err == nil {
			t.Errorf("ParseModel(%q) should fail", s)
		}
	}
}

func TestModelValidate(t *testing.T) {
	if err := (Model{Kind: Transient}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{Kind: Kind(99)}).Validate(); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func someLocs(n int) []Location {
	locs := make([]Location, n)
	for i := range locs {
		locs[i] = Location{Domain: DomainScan, Chain: "c", Bit: i}
	}
	return locs
}

func TestTransientPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Model{Kind: Transient}
	plan, err := m.Plan(rng, someLocs(10), 100, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Injections) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	inj := plan.Injections[0]
	if inj.Time < 100 || inj.Time > 200 || inj.Op != OpFlip {
		t.Fatalf("injection = %+v", inj)
	}
}

func TestTransientMultiplePlanDistinctLocations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := Model{Kind: TransientMultiple, Multiplicity: 4}
	plan, err := m.Plan(rng, someLocs(50), 10, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Injections) != 4 {
		t.Fatalf("plan = %+v", plan)
	}
	seen := map[Location]bool{}
	for _, inj := range plan.Injections {
		if inj.Time != 10 {
			t.Fatalf("simultaneous flips must share the time: %+v", inj)
		}
		if seen[inj.Loc] {
			t.Fatalf("duplicate location %v", inj.Loc)
		}
		seen[inj.Loc] = true
	}
}

func TestIntermittentPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := Model{Kind: Intermittent, Burst: 3, BurstSpacing: 100}
	plan, err := m.Plan(rng, someLocs(5), 50, 50, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Injections) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	for i, inj := range plan.Injections {
		if inj.Time != 50+uint64(i)*100 {
			t.Fatalf("injection %d time = %d", i, inj.Time)
		}
		if inj.Loc != plan.Injections[0].Loc {
			t.Fatal("intermittent fault must reuse one location")
		}
	}
	// Horizon truncates the burst.
	plan, err = m.Plan(rng, someLocs(5), 50, 50, 160)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Injections) != 2 { // t=50 and t=150; t=250 exceeds horizon
		t.Fatalf("truncated plan = %+v", plan)
	}
}

func TestPermanentPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := Model{Kind: Permanent, Period: 100, StuckValue: 1}
	plan, err := m.Plan(rng, someLocs(5), 0, 0, 450)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Injections) != 5 { // t = 0,100,200,300,400
		t.Fatalf("plan = %+v", plan)
	}
	for _, inj := range plan.Injections {
		if inj.Op != OpStuck1 {
			t.Fatalf("op = %v", inj.Op)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Model{Kind: Transient}
	if _, err := m.Plan(rng, nil, 0, 10, 100); err == nil {
		t.Fatal("no locations should fail")
	}
	if _, err := m.Plan(rng, someLocs(1), 10, 5, 100); err == nil {
		t.Fatal("inverted window should fail")
	}
	if _, err := (Model{Kind: TransientMultiple}).Plan(rng, someLocs(1), 0, 1, 10); err == nil {
		t.Fatal("invalid model should fail")
	}
}

func TestPlanTimesAndAt(t *testing.T) {
	p := Plan{Injections: []Injection{
		{Time: 5, Loc: Location{Domain: DomainScan, Chain: "c", Bit: 1}, Op: OpFlip},
		{Time: 5, Loc: Location{Domain: DomainScan, Chain: "c", Bit: 2}, Op: OpFlip},
		{Time: 9, Loc: Location{Domain: DomainScan, Chain: "c", Bit: 1}, Op: OpFlip},
	}}
	times := p.Times()
	if len(times) != 2 || times[0] != 5 || times[1] != 9 {
		t.Fatalf("times = %v", times)
	}
	if len(p.At(5)) != 2 || len(p.At(9)) != 1 || len(p.At(7)) != 0 {
		t.Fatal("At grouping wrong")
	}
	if !strings.Contains(p.String(), "t=5 flip scan:c:1") {
		t.Fatalf("plan string = %q", p.String())
	}
}

func TestOpApply(t *testing.T) {
	if v, _ := OpFlip.Apply(true); v {
		t.Fatal("flip true -> false")
	}
	if v, _ := OpStuck0.Apply(true); v {
		t.Fatal("stuck0")
	}
	if v, _ := OpStuck1.Apply(false); !v {
		t.Fatal("stuck1")
	}
	if _, err := Op(9).Apply(false); err == nil {
		t.Fatal("bad op should fail")
	}
}

// Property: transient plans always fall inside the configured window and
// choose locations from the candidate set.
func TestTransientPlanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	locs := someLocs(20)
	f := func(seed int64, lo, span uint16) bool {
		r := rand.New(rand.NewSource(seed))
		minT := uint64(lo)
		maxT := minT + uint64(span)
		plan, err := (Model{Kind: Transient}).Plan(r, locs, minT, maxT, maxT+1000)
		if err != nil || len(plan.Injections) != 1 {
			return false
		}
		inj := plan.Injections[0]
		if inj.Time < minT || inj.Time > maxT {
			return false
		}
		return inj.Loc.Bit >= 0 && inj.Loc.Bit < len(locs)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: plans are deterministic for a fixed seed.
func TestPlanDeterminismProperty(t *testing.T) {
	m := Model{Kind: Intermittent, Burst: 3, BurstSpacing: 10}
	locs := someLocs(30)
	f := func(seed int64) bool {
		p1, err1 := m.Plan(rand.New(rand.NewSource(seed)), locs, 0, 100, 1000)
		p2, err2 := m.Plan(rand.New(rand.NewSource(seed)), locs, 0, 100, 1000)
		if err1 != nil || err2 != nil || len(p1.Injections) != len(p2.Injections) {
			return false
		}
		for i := range p1.Injections {
			if p1.Injections[i] != p2.Injections[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
