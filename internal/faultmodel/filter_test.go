package faultmodel

import (
	"testing"

	"goofi/internal/target"
	"goofi/internal/thor"
)

func newOps(t *testing.T) target.Operations {
	t.Helper()
	tt := target.NewDefaultThorTarget()
	if err := tt.InitTestCard(); err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestFilterWholeChain(t *testing.T) {
	ops := newOps(t)
	locs, err := Filter("chain:" + thor.ChainCore).Resolve(ops)
	if err != nil {
		t.Fatal(err)
	}
	// Core chain: 16 regs + PC + PSW + IR/MAR/MDR, all writable.
	want := 16*32 + 32 + 8 + 3*32
	if len(locs) != want {
		t.Fatalf("locations = %d, want %d", len(locs), want)
	}
	for _, l := range locs {
		if l.Domain != DomainScan || l.Chain != thor.ChainCore {
			t.Fatalf("bad location %v", l)
		}
	}
}

func TestFilterChainField(t *testing.T) {
	ops := newOps(t)
	locs, err := Filter("chain:" + thor.ChainCore + "/R3").Resolve(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 32 {
		t.Fatalf("R3 bits = %d", len(locs))
	}
	name, err := ops.BitName(thor.ChainCore, locs[0].Bit)
	if err != nil || name != "internal.core/R3[0]" {
		t.Fatalf("first bit = %q, %v", name, err)
	}
}

func TestFilterExcludesReadOnly(t *testing.T) {
	ops := newOps(t)
	locs, err := Filter("chain:" + thor.ChainDebug).Resolve(ops)
	if err != nil {
		t.Fatal(err)
	}
	// Writable debug bits: bp_addr(32) + en(1) + bp_cycle(64) + en(1) + hit(1).
	if len(locs) != 32+1+64+1+1 {
		t.Fatalf("debug writable bits = %d", len(locs))
	}
}

func TestFilterMemoryRange(t *testing.T) {
	ops := newOps(t)
	locs, err := Filter("mem:0x4000-0x4010").Resolve(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 4*32 {
		t.Fatalf("locations = %d", len(locs))
	}
	if locs[0].Addr != 0x4000 || locs[len(locs)-1].Addr != 0x400C {
		t.Fatalf("range = %v .. %v", locs[0], locs[len(locs)-1])
	}
}

func TestFilterCombination(t *testing.T) {
	ops := newOps(t)
	locs, err := Filter("chain:internal.core/PSW, mem:0x4000-0x4004").Resolve(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 8+32 {
		t.Fatalf("locations = %d", len(locs))
	}
}

func TestFilterErrors(t *testing.T) {
	ops := newOps(t)
	bad := []string{
		"", "zz:1", "chain:nope", "chain:internal.core/NOPE",
		"mem:0x4000", "mem:0x4001-0x4009", "mem:0x5000-0x4000",
		"mem:0x4000-0x40000000", "mem:xx-0x4000", "mem:0x4000-yy",
	}
	for _, f := range bad {
		if _, err := Filter(f).Resolve(ops); err == nil {
			t.Errorf("filter %q should fail", f)
		}
	}
}
