// Package faultmodel defines GOOFI's fault models and fault locations.
//
// The paper's current version supports single and multiple transient
// bit-flips (§1, §3.2); intermittent and permanent faults are listed as
// extensions (§4). All four are implemented here. A fault model expands into
// a concrete injection plan — a time-ordered list of (time, location,
// operation) triples — which the campaign algorithms execute with
// breakpoints and scan/memory writes.
package faultmodel

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Domain says which access path reaches a fault location.
type Domain int

// Location domains.
const (
	// DomainScan locations are bits of a scan chain (SCIFI, pin-level).
	DomainScan Domain = iota + 1
	// DomainMemory locations are bits of memory words (SWIFI).
	DomainMemory
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case DomainScan:
		return "scan"
	case DomainMemory:
		return "mem"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Location identifies one injectable bit of the target system.
type Location struct {
	Domain Domain
	// Chain and Bit address a scan-chain bit (DomainScan).
	Chain string
	Bit   int
	// Addr and MemBit address a bit of a memory word (DomainMemory).
	Addr   uint32
	MemBit int
}

// String serialises the location for CampaignData / LoggedSystemState.
func (l Location) String() string {
	switch l.Domain {
	case DomainScan:
		return fmt.Sprintf("scan:%s:%d", l.Chain, l.Bit)
	case DomainMemory:
		return fmt.Sprintf("mem:%#x:%d", l.Addr, l.MemBit)
	default:
		return "invalid"
	}
}

// ParseLocation inverts Location.String.
func ParseLocation(s string) (Location, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Location{}, fmt.Errorf("faultmodel: malformed location %q", s)
	}
	switch parts[0] {
	case "scan":
		bit, err := strconv.Atoi(parts[2])
		if err != nil || bit < 0 {
			return Location{}, fmt.Errorf("faultmodel: bad bit in %q", s)
		}
		if parts[1] == "" {
			return Location{}, fmt.Errorf("faultmodel: empty chain in %q", s)
		}
		return Location{Domain: DomainScan, Chain: parts[1], Bit: bit}, nil
	case "mem":
		addr, err := strconv.ParseUint(parts[1], 0, 32)
		if err != nil {
			return Location{}, fmt.Errorf("faultmodel: bad address in %q", s)
		}
		bit, err := strconv.Atoi(parts[2])
		if err != nil || bit < 0 || bit > 31 {
			return Location{}, fmt.Errorf("faultmodel: bad bit in %q", s)
		}
		return Location{Domain: DomainMemory, Addr: uint32(addr), MemBit: bit}, nil
	default:
		return Location{}, fmt.Errorf("faultmodel: unknown domain in %q", s)
	}
}

// Op is the state manipulation applied at a location.
type Op int

// Injection operations. Transient and intermittent faults flip; permanent
// stuck-at faults force a value.
const (
	OpFlip Op = iota + 1
	OpStuck0
	OpStuck1
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpFlip:
		return "flip"
	case OpStuck0:
		return "stuck-0"
	case OpStuck1:
		return "stuck-1"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Injection is one scheduled state manipulation.
type Injection struct {
	// Time is the injection point in executed instructions.
	Time uint64
	Loc  Location
	Op   Op
}

// Plan is the complete injection schedule of one experiment, sorted by time.
type Plan struct {
	Injections []Injection
}

// Times returns the distinct injection times in ascending order.
func (p Plan) Times() []uint64 {
	seen := make(map[uint64]bool, len(p.Injections))
	var out []uint64
	for _, inj := range p.Injections {
		if !seen[inj.Time] {
			seen[inj.Time] = true
			out = append(out, inj.Time)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// At returns the injections scheduled at time t.
func (p Plan) At(t uint64) []Injection {
	var out []Injection
	for _, inj := range p.Injections {
		if inj.Time == t {
			out = append(out, inj)
		}
	}
	return out
}

// String renders the plan for the experimentData column.
func (p Plan) String() string {
	parts := make([]string, len(p.Injections))
	for i, inj := range p.Injections {
		parts[i] = fmt.Sprintf("t=%d %s %s", inj.Time, inj.Op, inj.Loc)
	}
	return strings.Join(parts, "; ")
}

// Kind selects the fault model.
type Kind int

// Fault-model kinds.
const (
	// Transient: a single bit-flip at one point in time (the paper's
	// primary model).
	Transient Kind = iota + 1
	// TransientMultiple: Multiplicity simultaneous bit-flips.
	TransientMultiple
	// Intermittent: the same bit flips Burst times, BurstSpacing apart
	// (§4 extension).
	Intermittent
	// Permanent: a stuck-at fault, emulated by re-forcing the value every
	// Period instructions from the injection time onward (§4 extension).
	Permanent
)

// String names the kind, matching the CampaignData encoding.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case TransientMultiple:
		return "transient-multiple"
	case Intermittent:
		return "intermittent"
	case Permanent:
		return "permanent"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "transient":
		return Transient, nil
	case "transient-multiple":
		return TransientMultiple, nil
	case "intermittent":
		return Intermittent, nil
	case "permanent":
		return Permanent, nil
	default:
		return 0, fmt.Errorf("faultmodel: unknown kind %q", s)
	}
}

// Model is a configured fault model.
type Model struct {
	Kind Kind
	// Multiplicity is the number of simultaneous flips (TransientMultiple).
	Multiplicity int
	// Burst is the number of re-injections (Intermittent).
	Burst int
	// BurstSpacing is the instruction distance between re-injections.
	BurstSpacing uint64
	// Period is the stuck-at re-force interval (Permanent).
	Period uint64
	// StuckValue selects stuck-at-0 or stuck-at-1 (Permanent).
	StuckValue int
}

// Validate checks model parameters.
func (m Model) Validate() error {
	switch m.Kind {
	case Transient:
		return nil
	case TransientMultiple:
		if m.Multiplicity < 2 {
			return fmt.Errorf("faultmodel: multiplicity %d must be >= 2", m.Multiplicity)
		}
		return nil
	case Intermittent:
		if m.Burst < 2 || m.BurstSpacing == 0 {
			return fmt.Errorf("faultmodel: intermittent needs Burst >= 2 and BurstSpacing > 0")
		}
		return nil
	case Permanent:
		if m.Period == 0 {
			return fmt.Errorf("faultmodel: permanent needs Period > 0")
		}
		if m.StuckValue != 0 && m.StuckValue != 1 {
			return fmt.Errorf("faultmodel: StuckValue must be 0 or 1")
		}
		return nil
	default:
		return fmt.Errorf("faultmodel: unknown kind %d", int(m.Kind))
	}
}

// String encodes the model compactly for CampaignData.
func (m Model) String() string {
	switch m.Kind {
	case TransientMultiple:
		return fmt.Sprintf("%s,m=%d", m.Kind, m.Multiplicity)
	case Intermittent:
		return fmt.Sprintf("%s,burst=%d,spacing=%d", m.Kind, m.Burst, m.BurstSpacing)
	case Permanent:
		return fmt.Sprintf("%s,period=%d,stuck=%d", m.Kind, m.Period, m.StuckValue)
	default:
		return m.Kind.String()
	}
}

// ParseModel inverts Model.String.
func ParseModel(s string) (Model, error) {
	parts := strings.Split(s, ",")
	kind, err := ParseKind(parts[0])
	if err != nil {
		return Model{}, err
	}
	m := Model{Kind: kind}
	for _, p := range parts[1:] {
		kv := strings.SplitN(p, "=", 2)
		if len(kv) != 2 {
			return Model{}, fmt.Errorf("faultmodel: malformed model parameter %q", p)
		}
		n, err := strconv.ParseUint(kv[1], 10, 64)
		if err != nil {
			return Model{}, fmt.Errorf("faultmodel: bad value in %q", p)
		}
		switch kv[0] {
		case "m":
			m.Multiplicity = int(n)
		case "burst":
			m.Burst = int(n)
		case "spacing":
			m.BurstSpacing = n
		case "period":
			m.Period = n
		case "stuck":
			m.StuckValue = int(n)
		default:
			return Model{}, fmt.Errorf("faultmodel: unknown model parameter %q", kv[0])
		}
	}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// Plan samples one experiment's injection schedule: locations uniformly from
// locs, the base time uniformly from [minTime, maxTime]. maxHorizon bounds
// permanent-fault re-forcing.
func (m Model) Plan(rng *rand.Rand, locs []Location, minTime, maxTime, maxHorizon uint64) (Plan, error) {
	if err := m.Validate(); err != nil {
		return Plan{}, err
	}
	if len(locs) == 0 {
		return Plan{}, fmt.Errorf("faultmodel: no candidate locations")
	}
	if maxTime < minTime {
		return Plan{}, fmt.Errorf("faultmodel: time window [%d,%d] invalid", minTime, maxTime)
	}
	baseTime := minTime + uint64(rng.Int63n(int64(maxTime-minTime+1)))
	pick := func() Location { return locs[rng.Intn(len(locs))] }

	var plan Plan
	switch m.Kind {
	case Transient:
		plan.Injections = []Injection{{Time: baseTime, Loc: pick(), Op: OpFlip}}
	case TransientMultiple:
		seen := make(map[Location]bool, m.Multiplicity)
		for len(plan.Injections) < m.Multiplicity {
			loc := pick()
			if seen[loc] && len(seen) < len(locs) {
				continue
			}
			seen[loc] = true
			plan.Injections = append(plan.Injections, Injection{Time: baseTime, Loc: loc, Op: OpFlip})
		}
	case Intermittent:
		loc := pick()
		for i := 0; i < m.Burst; i++ {
			t := baseTime + uint64(i)*m.BurstSpacing
			if t > maxHorizon {
				break
			}
			plan.Injections = append(plan.Injections, Injection{Time: t, Loc: loc, Op: OpFlip})
		}
	case Permanent:
		loc := pick()
		op := OpStuck0
		if m.StuckValue == 1 {
			op = OpStuck1
		}
		for t := baseTime; t <= maxHorizon; t += m.Period {
			plan.Injections = append(plan.Injections, Injection{Time: t, Loc: loc, Op: op})
		}
	}
	sort.SliceStable(plan.Injections, func(i, j int) bool {
		return plan.Injections[i].Time < plan.Injections[j].Time
	})
	return plan, nil
}

// Apply computes the new value of a bit under the operation.
func (o Op) Apply(bit bool) (bool, error) {
	switch o {
	case OpFlip:
		return !bit, nil
	case OpStuck0:
		return false, nil
	case OpStuck1:
		return true, nil
	default:
		return bit, fmt.Errorf("faultmodel: unknown op %d", int(o))
	}
}

// ParseOp inverts Op.String.
func ParseOp(s string) (Op, error) {
	switch s {
	case "flip":
		return OpFlip, nil
	case "stuck-0":
		return OpStuck0, nil
	case "stuck-1":
		return OpStuck1, nil
	default:
		return 0, fmt.Errorf("faultmodel: unknown op %q", s)
	}
}

// ParsePlan inverts Plan.String; it is how a detail-mode rerun recovers the
// exact injection schedule of a logged experiment (paper §2.3, the
// parentExperiment scenario).
func ParsePlan(s string) (Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Plan{}, nil
	}
	var plan Plan
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Fields(part)
		if len(fields) != 3 || !strings.HasPrefix(fields[0], "t=") {
			return Plan{}, fmt.Errorf("faultmodel: malformed plan entry %q", part)
		}
		t, err := strconv.ParseUint(fields[0][2:], 10, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("faultmodel: bad time in %q", part)
		}
		op, err := ParseOp(fields[1])
		if err != nil {
			return Plan{}, err
		}
		loc, err := ParseLocation(fields[2])
		if err != nil {
			return Plan{}, err
		}
		plan.Injections = append(plan.Injections, Injection{Time: t, Loc: loc, Op: op})
	}
	return plan, nil
}
