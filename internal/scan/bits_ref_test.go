package scan

import (
	"bytes"
	"math/rand"
	"testing"
)

// refBits is the retained pre-rewrite reference implementation of Bits: one
// bool per bit, every operation written the obvious way. The differential
// tests below drive it in lockstep with the packed implementation over
// randomized operation sequences — any divergence is a packing bug.
type refBits []bool

func newRefBits(n int) refBits { return make(refBits, n) }

func (b refBits) get(i int) bool    { return b[i] }
func (b refBits) set(i int, v bool) { b[i] = v }
func (b refBits) flip(i int)        { b[i] = !b[i] }
func (b refBits) onesCount() int {
	n := 0
	for _, bit := range b {
		if bit {
			n++
		}
	}
	return n
}

func (b refBits) uint64(offset, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if b[offset+i] {
			v |= 1 << uint(i)
		}
	}
	return v
}

func (b refBits) putUint64(offset, width int, v uint64) {
	for i := 0; i < width; i++ {
		b[offset+i] = v&(1<<uint(i)) != 0
	}
}

func (b refBits) pack() []byte {
	out := make([]byte, (len(b)+7)/8)
	for i, bit := range b {
		if bit {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

func (b refBits) diff(o refBits) []int {
	var out []int
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i] != o[i] {
			out = append(out, i)
		}
	}
	for i := n; i < len(b) || i < len(o); i++ {
		out = append(out, i)
	}
	return out
}

func (b refBits) shiftOut(tdi bool) bool {
	if len(b) == 0 {
		return false
	}
	tdo := b[0]
	copy(b, b[1:])
	b[len(b)-1] = tdi
	return tdo
}

// requireSame fails unless the packed vector matches the reference bit for
// bit, via Get, Pack and OnesCount simultaneously.
func requireSame(t *testing.T, step int, got Bits, want refBits) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("step %d: len %d != %d", step, got.Len(), len(want))
	}
	for i := range want {
		if got.Get(i) != want[i] {
			t.Fatalf("step %d: bit %d: packed %v, reference %v", step, i, got.Get(i), want[i])
		}
	}
	if !bytes.Equal(got.Pack(), want.pack()) {
		t.Fatalf("step %d: Pack mismatch:\npacked    %x\nreference %x", step, got.Pack(), want.pack())
	}
	if got.OnesCount() != want.onesCount() {
		t.Fatalf("step %d: OnesCount %d != %d", step, got.OnesCount(), want.onesCount())
	}
}

// TestBitsDifferentialAgainstReference runs randomized op sequences on the
// packed implementation and the []bool reference in lockstep.
func TestBitsDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for _, n := range []int{1, 7, 8, 63, 64, 65, 127, 128, 129, 680, 2688} {
		packed := NewBits(n)
		ref := newRefBits(n)
		other := NewBits(n)
		refOther := newRefBits(n)
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(7); op {
			case 0: // Set
				i, v := rng.Intn(n), rng.Intn(2) == 0
				packed.Set(i, v)
				ref.set(i, v)
			case 1: // Flip
				i := rng.Intn(n)
				packed.Flip(i)
				ref.flip(i)
			case 2: // PutUint64
				width := 1 + rng.Intn(64)
				if width > n {
					width = n
				}
				offset := rng.Intn(n - width + 1)
				v := rng.Uint64()
				packed.PutUint64(offset, width, v)
				ref.putUint64(offset, width, v)
			case 3: // Uint64 readback
				width := 1 + rng.Intn(64)
				if width > n {
					width = n
				}
				offset := rng.Intn(n - width + 1)
				if g, w := packed.Uint64(offset, width), ref.uint64(offset, width); g != w {
					t.Fatalf("n=%d step %d: Uint64(%d,%d) = %#x, reference %#x", n, step, offset, width, g, w)
				}
			case 4: // mutate the comparison partner, then Diff
				i := rng.Intn(n)
				other.Flip(i)
				refOther.flip(i)
				g, w := packed.Diff(other), ref.diff(refOther)
				if len(g) != len(w) {
					t.Fatalf("n=%d step %d: Diff lengths %d != %d", n, step, len(g), len(w))
				}
				for k := range g {
					if g[k] != w[k] {
						t.Fatalf("n=%d step %d: Diff[%d] = %d, reference %d", n, step, k, g[k], w[k])
					}
				}
			case 5: // shift one step, compare TDO
				tdi := rng.Intn(2) == 0
				if g, w := packed.shiftOut(tdi), ref.shiftOut(tdi); g != w {
					t.Fatalf("n=%d step %d: shiftOut tdo %v, reference %v", n, step, g, w)
				}
			case 6: // pack/unpack round-trip
				up, err := Unpack(packed.Pack(), n)
				if err != nil {
					t.Fatalf("n=%d step %d: %v", n, step, err)
				}
				if !up.Equal(packed) {
					t.Fatalf("n=%d step %d: unpack(pack) differs", n, step)
				}
			}
		}
		requireSame(t, -1, packed, ref)
		if eq := packed.Equal(other); eq != (len(ref.diff(refOther)) == 0) {
			t.Fatalf("n=%d: Equal = %v disagrees with reference diff", n, eq)
		}
	}
}

// TestBitsPackGolden pins the Pack byte encoding against fixtures captured
// from the pre-rewrite []bool implementation: bit i lives in byte i/8 at
// position i%8. Logged stateVector columns were written in this encoding;
// it must never change.
func TestBitsPackGolden(t *testing.T) {
	cases := []struct {
		name string
		n    int
		set  []int
		want []byte
	}{
		{"empty", 0, nil, []byte{}},
		{"single-low", 1, []int{0}, []byte{0x01}},
		{"byte-msb", 8, []int{7}, []byte{0x80}},
		{"multiples-of-3-in-12", 12, []int{0, 3, 6, 9}, []byte{0x49, 0x02}},
		{"word-boundary", 65, []int{0, 63, 64}, []byte{0x01, 0, 0, 0, 0, 0, 0, 0x80, 0x01}},
		{"dense-27", 27, []int{0, 1, 2, 3, 8, 9, 16, 24, 26}, []byte{0x0F, 0x03, 0x01, 0x05}},
		{"every-7th-of-80", 80, []int{0, 7, 14, 21, 28, 35, 42, 49, 56, 63, 70, 77},
			[]byte{0x81, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x81, 0x40, 0x20}},
	}
	for _, tc := range cases {
		b := NewBits(tc.n)
		for _, i := range tc.set {
			b.Set(i, true)
		}
		if got := b.Pack(); !bytes.Equal(got, tc.want) {
			t.Errorf("%s: Pack = %x, golden %x", tc.name, got, tc.want)
		}
		// The reference implementation agrees with the fixtures by
		// construction; check anyway so fixture typos are caught.
		r := newRefBits(tc.n)
		for _, i := range tc.set {
			r.set(i, true)
		}
		if got := r.pack(); !bytes.Equal(got, tc.want) {
			t.Errorf("%s: reference pack = %x, golden %x", tc.name, got, tc.want)
		}
	}
}

// TestBitsAppendPackedNoAlloc pins the zero-allocation guarantee of the
// reused-buffer pack path.
func TestBitsAppendPackedNoAlloc(t *testing.T) {
	b := NewBits(2688)
	for i := 0; i < b.Len(); i += 7 {
		b.Set(i, true)
	}
	buf := make([]byte, 0, (b.Len()+7)/8)
	allocs := testing.AllocsPerRun(100, func() {
		buf = b.AppendPacked(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendPacked into reused buffer allocates %.1f times per run", allocs)
	}
	if !bytes.Equal(buf, b.Pack()) {
		t.Fatal("AppendPacked output differs from Pack")
	}
}

// TestBitsTailInvariant checks that mutators never leave set bits beyond
// Len() in the last storage word — Equal and Pack rely on it.
func TestBitsTailInvariant(t *testing.T) {
	for _, n := range []int{1, 5, 63, 65, 100} {
		b := NewBits(n)
		for i := 0; i < n; i++ {
			b.Set(i, true)
		}
		width := n
		if width > 64 {
			width = 64
		}
		b.PutUint64(n-width, width, ^uint64(0))
		words := b.Words()
		if r := n % 64; r != 0 {
			if tail := words[len(words)-1] >> uint(r); tail != 0 {
				t.Fatalf("n=%d: tail bits set: %#x", n, tail)
			}
		}
		if b.OnesCount() != n {
			t.Fatalf("n=%d: OnesCount = %d", n, b.OnesCount())
		}
	}
}
