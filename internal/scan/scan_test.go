package scan

import (
	"testing"
	"testing/quick"
)

func TestBitsBasics(t *testing.T) {
	b := NewBits(10)
	if b.Len() != 10 || b.OnesCount() != 0 {
		t.Fatal("fresh vector not empty")
	}
	b.Set(3, true)
	b.Flip(4)
	b.Flip(3)
	if b.Get(3) || !b.Get(4) || b.OnesCount() != 1 {
		t.Fatalf("bits = %s", b)
	}
}

func TestBitsUint64RoundTrip(t *testing.T) {
	b := NewBits(80)
	b.PutUint64(5, 40, 0xABCDE12345)
	if got := b.Uint64(5, 40); got != 0xABCDE12345 {
		t.Fatalf("got %#x", got)
	}
	// Neighbouring bits untouched.
	if b.Get(4) || b.Get(45) {
		t.Fatal("neighbours disturbed")
	}
}

func TestBitsPackUnpack(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65} {
		b := NewBits(n)
		for i := 0; i < n; i += 3 {
			b.Set(i, true)
		}
		packed := b.Pack()
		got, err := Unpack(packed, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(b) {
			t.Fatalf("n=%d: %s != %s", n, got, b)
		}
	}
	if _, err := Unpack([]byte{1, 2}, 3); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

// Property: pack/unpack round-trips arbitrary data.
func TestBitsPackProperty(t *testing.T) {
	f := func(data []byte) bool {
		n := len(data) * 8
		b, err := Unpack(data, n)
		if err != nil {
			return false
		}
		packed := b.Pack()
		if len(packed) != len(data) {
			return false
		}
		for i := range data {
			if packed[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsDiff(t *testing.T) {
	a := NewBits(8)
	b := NewBits(8)
	a.Set(2, true)
	b.Set(5, true)
	d := a.Diff(b)
	if len(d) != 2 || d[0] != 2 || d[1] != 5 {
		t.Fatalf("diff = %v", d)
	}
	if len(a.Diff(a)) != 0 {
		t.Fatal("self diff not empty")
	}
	short := NewBits(6)
	if len(a.Diff(short)) < 2 {
		t.Fatal("length mismatch not reported")
	}
}

// testDevice is a fake chip with a couple of state elements.
type testDevice struct {
	regA uint32
	regB uint16
	ro   uint8
	flag bool
}

func (d *testDevice) chain(t *testing.T) *Chain {
	t.Helper()
	c, err := NewChain("test", []Field{
		{Name: "A", Width: 32,
			Get: func() uint64 { return uint64(d.regA) },
			Set: func(v uint64) { d.regA = uint32(v) }},
		{Name: "B", Width: 16,
			Get: func() uint64 { return uint64(d.regB) },
			Set: func(v uint64) { d.regB = uint16(v) }},
		{Name: "RO", Width: 8, ReadOnly: true,
			Get: func() uint64 { return uint64(d.ro) }},
		{Name: "F", Width: 1,
			Get: func() uint64 {
				if d.flag {
					return 1
				}
				return 0
			},
			Set: func(v uint64) { d.flag = v&1 != 0 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainValidation(t *testing.T) {
	get := func() uint64 { return 0 }
	set := func(uint64) {}
	bad := [][]Field{
		{{Name: "", Width: 1, Get: get, Set: set}},
		{{Name: "x", Width: 0, Get: get, Set: set}},
		{{Name: "x", Width: 65, Get: get, Set: set}},
		{{Name: "x", Width: 1, Set: set}},
		{{Name: "x", Width: 1, Get: get}}, // writable without Set
		{{Name: "x", Width: 1, Get: get, Set: set}, {Name: "x", Width: 1, Get: get, Set: set}},
	}
	for i, fields := range bad {
		if _, err := NewChain("c", fields); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewChain("", []Field{{Name: "x", Width: 1, Get: get, Set: set}}); err == nil {
		t.Error("empty chain name should fail")
	}
}

func TestChainCaptureUpdate(t *testing.T) {
	d := &testDevice{regA: 0xDEADBEEF, regB: 0x1234, ro: 0x5A, flag: true}
	c := d.chain(t)
	if c.Length() != 32+16+8+1 {
		t.Fatalf("length = %d", c.Length())
	}
	b := c.Capture()
	if got := b.Uint64(0, 32); got != 0xDEADBEEF {
		t.Fatalf("A = %#x", got)
	}
	if got := b.Uint64(48, 8); got != 0x5A {
		t.Fatalf("RO = %#x", got)
	}
	if !b.Get(56) {
		t.Fatal("flag bit clear")
	}
	// Modify A and the read-only field, write back.
	b.PutUint64(0, 32, 0x0BADF00D)
	b.PutUint64(48, 8, 0xFF)
	if err := c.Update(b); err != nil {
		t.Fatal(err)
	}
	if d.regA != 0x0BADF00D {
		t.Fatalf("A = %#x", d.regA)
	}
	if d.ro != 0x5A {
		t.Fatal("read-only field was driven")
	}
	if err := c.Update(NewBits(3)); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestChainLocateAndBitName(t *testing.T) {
	d := &testDevice{}
	c := d.chain(t)
	f, off, err := c.Locate(33)
	if err != nil || f.Name != "B" || off != 1 {
		t.Fatalf("Locate(33) = %v %d %v", f.Name, off, err)
	}
	if name := c.BitName(33); name != "test/B[1]" {
		t.Fatalf("BitName = %q", name)
	}
	bit, err := c.ParseBitName("test/B[1]")
	if err != nil || bit != 33 {
		t.Fatalf("ParseBitName = %d, %v", bit, err)
	}
	if _, err := c.ParseBitName("other/B[1]"); err == nil {
		t.Fatal("wrong chain prefix should fail")
	}
	if _, err := c.ParseBitName("test/B[99]"); err == nil {
		t.Fatal("out-of-range bit should fail")
	}
	if _, err := c.ParseBitName("test/nope[0]"); err == nil {
		t.Fatal("unknown field should fail")
	}
	if _, _, err := c.Locate(-1); err == nil {
		t.Fatal("negative bit should fail")
	}
	if _, _, err := c.Locate(c.Length()); err == nil {
		t.Fatal("past-end bit should fail")
	}
}

// Property: BitName/ParseBitName round-trip for every bit of the chain.
func TestBitNameRoundTripAllBits(t *testing.T) {
	d := &testDevice{}
	c := d.chain(t)
	for i := 0; i < c.Length(); i++ {
		got, err := c.ParseBitName(c.BitName(i))
		if err != nil || got != i {
			t.Fatalf("bit %d: got %d, %v", i, got, err)
		}
	}
}

func TestWritableBits(t *testing.T) {
	d := &testDevice{}
	c := d.chain(t)
	w := c.WritableBits()
	// 32 + 16 + 1 writable bits, RO excluded.
	if len(w) != 49 {
		t.Fatalf("writable = %d", len(w))
	}
	for _, bit := range w {
		f, _, err := c.Locate(bit)
		if err != nil || f.ReadOnly {
			t.Fatalf("bit %d is not writable", bit)
		}
	}
}

func TestFieldOffset(t *testing.T) {
	d := &testDevice{}
	c := d.chain(t)
	off, width, err := c.FieldOffset("RO")
	if err != nil || off != 48 || width != 8 {
		t.Fatalf("FieldOffset = %d %d %v", off, width, err)
	}
	if _, _, err := c.FieldOffset("missing"); err == nil {
		t.Fatal("missing field should fail")
	}
}

// --- TAP controller ---

func newTestTAP(t *testing.T, d *testDevice) *TAP {
	t.Helper()
	tap, err := NewTAP(map[uint8]*Chain{0x01: d.chain(t)})
	if err != nil {
		t.Fatal(err)
	}
	return tap
}

func TestTAPStateMachineReset(t *testing.T) {
	d := &testDevice{}
	tap := newTestTAP(t, d)
	// From any state, five TMS-high clocks reach Test-Logic-Reset.
	tap.Clock(false, false) // wander off
	tap.Clock(true, false)
	tap.Reset()
	if tap.State() != StateRunTestIdle {
		t.Fatalf("state = %v", tap.State())
	}
}

func TestTAPWalkAllStates(t *testing.T) {
	d := &testDevice{}
	tap := newTestTAP(t, d)
	tap.Reset()
	// DR column: Idle -> Select-DR -> Capture -> Shift -> Exit1 -> Pause ->
	// Exit2 -> Shift -> Exit1 -> Update -> Idle.
	seq := []struct {
		tms  bool
		want TAPState
	}{
		{true, StateSelectDRScan},
		{false, StateCaptureDR},
		{false, StateShiftDR},
		{true, StateExit1DR},
		{false, StatePauseDR},
		{true, StateExit2DR},
		{false, StateShiftDR},
		{true, StateExit1DR},
		{true, StateUpdateDR},
		{false, StateRunTestIdle},
		// IR column.
		{true, StateSelectDRScan},
		{true, StateSelectIRScan},
		{false, StateCaptureIR},
		{false, StateShiftIR},
		{true, StateExit1IR},
		{false, StatePauseIR},
		{true, StateExit2IR},
		{true, StateUpdateIR},
		{false, StateRunTestIdle},
		// Select-IR with TMS high goes to Test-Logic-Reset.
		{true, StateSelectDRScan},
		{true, StateSelectIRScan},
		{true, StateTestLogicReset},
	}
	for i, s := range seq {
		tap.Clock(s.tms, false)
		if tap.State() != s.want {
			t.Fatalf("step %d: state = %v, want %v", i, tap.State(), s.want)
		}
	}
}

func TestTAPReadChain(t *testing.T) {
	d := &testDevice{regA: 0xCAFEBABE, regB: 0x77, ro: 3, flag: true}
	tap := newTestTAP(t, d)
	tap.Reset()
	if err := tap.SelectChain("test"); err != nil {
		t.Fatal(err)
	}
	bits, err := tap.ReadChain()
	if err != nil {
		t.Fatal(err)
	}
	if got := bits.Uint64(0, 32); got != 0xCAFEBABE {
		t.Fatalf("A = %#x", got)
	}
	// Read must not disturb device state.
	if d.regA != 0xCAFEBABE || d.regB != 0x77 || !d.flag {
		t.Fatal("read disturbed the device")
	}
}

func TestTAPWriteChain(t *testing.T) {
	d := &testDevice{regA: 1, regB: 2, ro: 9}
	tap := newTestTAP(t, d)
	tap.Reset()
	if err := tap.SelectChain("test"); err != nil {
		t.Fatal(err)
	}
	bits, err := tap.ReadChain()
	if err != nil {
		t.Fatal(err)
	}
	bits.PutUint64(0, 32, 0x55AA55AA)
	bits.PutUint64(48, 8, 0xEE) // read-only: must be ignored
	prev, err := tap.WriteChain(bits)
	if err != nil {
		t.Fatal(err)
	}
	if got := prev.Uint64(0, 32); got != 1 {
		t.Fatalf("previous A = %#x", got)
	}
	if d.regA != 0x55AA55AA || d.ro != 9 {
		t.Fatalf("device: A=%#x RO=%d", d.regA, d.ro)
	}
}

func TestTAPWriteWrongLength(t *testing.T) {
	d := &testDevice{}
	tap := newTestTAP(t, d)
	tap.Reset()
	if err := tap.SelectChain("test"); err != nil {
		t.Fatal(err)
	}
	if _, err := tap.WriteChain(NewBits(5)); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestTAPSelectUnknownChain(t *testing.T) {
	d := &testDevice{}
	tap := newTestTAP(t, d)
	tap.Reset()
	if err := tap.SelectChain("nope"); err == nil {
		t.Fatal("unknown chain should fail")
	}
}

func TestTAPBypassWhenNoChainSelected(t *testing.T) {
	d := &testDevice{}
	tap := newTestTAP(t, d)
	tap.Reset() // IR = bypass
	if _, err := tap.ReadChain(); err == nil {
		t.Fatal("read in bypass should fail")
	}
}

func TestTAPChainsListing(t *testing.T) {
	d := &testDevice{}
	tap := newTestTAP(t, d)
	chains := tap.Chains()
	if len(chains) != 1 || chains[0].Name() != "test" {
		t.Fatalf("chains = %v", chains)
	}
	if _, err := tap.ChainByName("test"); err != nil {
		t.Fatal(err)
	}
	if _, err := tap.ChainByName("zz"); err == nil {
		t.Fatal("unknown name should fail")
	}
}

func TestNewTAPValidation(t *testing.T) {
	if _, err := NewTAP(nil); err == nil {
		t.Fatal("empty TAP should fail")
	}
	d := &testDevice{}
	if _, err := NewTAP(map[uint8]*Chain{0xFF: d.chain(t)}); err == nil {
		t.Fatal("bypass code should be rejected")
	}
	if _, err := NewTAP(map[uint8]*Chain{1: nil}); err == nil {
		t.Fatal("nil chain should be rejected")
	}
}

func TestTAPClockCounter(t *testing.T) {
	d := &testDevice{}
	tap := newTestTAP(t, d)
	before := tap.Clocks()
	tap.Reset()
	if tap.Clocks() <= before {
		t.Fatal("clock counter not advancing")
	}
}

// Property: writing random patterns through the TAP and reading them back
// returns the same pattern on writable fields.
func TestTAPWriteReadProperty(t *testing.T) {
	f := func(a uint32, bVal uint16, flag bool) bool {
		d := &testDevice{}
		tap, err := NewTAP(map[uint8]*Chain{1: deviceChain(d)})
		if err != nil {
			return false
		}
		tap.Reset()
		if err := tap.SelectChain("test"); err != nil {
			return false
		}
		bits, err := tap.ReadChain()
		if err != nil {
			return false
		}
		bits.PutUint64(0, 32, uint64(a))
		bits.PutUint64(32, 16, uint64(bVal))
		if flag {
			bits.Set(56, true)
		}
		if _, err := tap.WriteChain(bits); err != nil {
			return false
		}
		back, err := tap.ReadChain()
		if err != nil {
			return false
		}
		return back.Uint64(0, 32) == uint64(a) &&
			back.Uint64(32, 16) == uint64(bVal) &&
			back.Get(56) == flag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// deviceChain builds the test chain without *testing.T for property tests.
func deviceChain(d *testDevice) *Chain {
	c, _ := NewChain("test", []Field{
		{Name: "A", Width: 32,
			Get: func() uint64 { return uint64(d.regA) },
			Set: func(v uint64) { d.regA = uint32(v) }},
		{Name: "B", Width: 16,
			Get: func() uint64 { return uint64(d.regB) },
			Set: func(v uint64) { d.regB = uint16(v) }},
		{Name: "RO", Width: 8, ReadOnly: true,
			Get: func() uint64 { return uint64(d.ro) }},
		{Name: "F", Width: 1,
			Get: func() uint64 {
				if d.flag {
					return 1
				}
				return 0
			},
			Set: func(v uint64) { d.flag = v&1 != 0 }},
	})
	return c
}

// TestShiftThroughPauseDR shifts a DR in two halves with a Pause-DR stop in
// between — the standard's mechanism for hosts that cannot stream a whole
// chain in one burst. The committed result must equal a single-burst shift.
func TestShiftThroughPauseDR(t *testing.T) {
	d := &testDevice{regA: 0xDEADBEEF, regB: 0x1234, ro: 0x5A, flag: true}
	tap := newTestTAP(t, d)
	tap.Reset()
	if err := tap.SelectChain("test"); err != nil {
		t.Fatal(err)
	}
	ch, err := tap.ChainByName("test")
	if err != nil {
		t.Fatal(err)
	}
	n := ch.Length()
	in := NewBits(n)
	in.PutUint64(0, 32, 0x0BADF00D)
	in.PutUint64(32, 16, 0x4321)
	in.Set(56, true)

	// Manual drive: Idle -> Select-DR -> Capture -> Shift.
	tap.Clock(true, false)
	tap.Clock(false, false)
	tap.Clock(false, false)
	half := n / 2
	// First burst: bits 0..half-1. Per the standard, the clock that exits
	// Shift-DR still shifts, so the burst's last bit rides the TMS=1 edge.
	for k := 0; k < half-1; k++ {
		tap.Clock(false, in.Get(k))
	}
	tap.Clock(true, in.Get(half-1)) // -> Exit1-DR, shifting the half-1 bit
	tap.Clock(false, false)         // Pause-DR (no shift)
	tap.Clock(false, false)         // stay paused a cycle
	tap.Clock(true, false)          // Exit2-DR
	tap.Clock(false, false)         // re-enter Shift-DR (no shift on entry)
	// Second burst: bits half..n-1, last one on the exit edge again.
	for k := half; k < n-1; k++ {
		tap.Clock(false, in.Get(k))
	}
	tap.Clock(true, in.Get(n-1)) // -> Exit1-DR
	tap.Clock(true, false)       // Update-DR
	tap.Clock(false, false)      // Idle

	if d.regA != 0x0BADF00D || d.regB != 0x4321 || !d.flag {
		t.Fatalf("device after paused shift: A=%#x B=%#x flag=%v", d.regA, d.regB, d.flag)
	}
	if d.ro != 0x5A {
		t.Fatal("read-only field driven")
	}
}

func TestChainWithOnlyReadOnlyFields(t *testing.T) {
	c, err := NewChain("ro", []Field{
		{Name: "counter", Width: 16, ReadOnly: true, Get: func() uint64 { return 42 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.WritableBits()) != 0 {
		t.Fatal("read-only chain reports writable bits")
	}
	bits := c.Capture()
	if bits.Uint64(0, 16) != 42 {
		t.Fatal("capture wrong")
	}
	bits.PutUint64(0, 16, 7)
	if err := c.Update(bits); err != nil {
		t.Fatal(err)
	}
	if c.Capture().Uint64(0, 16) != 42 {
		t.Fatal("read-only field changed")
	}
}

// TestTAPSnapshotRestore pins that a snapshot restores the controller
// mid-walk: the FSM state, committed IR, shift stages and TCK count all
// return to their captured values, and the restored controller behaves
// exactly like the original from that point on.
func TestTAPSnapshotRestore(t *testing.T) {
	d := &testDevice{regA: 0x12345678, regB: 0x5A, ro: 1, flag: true}
	tap := newTestTAP(t, d)
	tap.Reset()
	if err := tap.SelectChain("test"); err != nil {
		t.Fatal(err)
	}
	// Walk into the middle of an IR shift so the snapshot covers a
	// non-trivial FSM state and shift stage.
	tap.Clock(true, false)  // Select-DR
	tap.Clock(true, false)  // Select-IR
	tap.Clock(false, false) // Capture-IR
	tap.Clock(false, true)  // Shift-IR, one bit in
	snap := tap.Snapshot()
	wantState, wantClocks := tap.State(), tap.Clocks()

	// Diverge: finish a reset and a full read.
	tap.Reset()
	if err := tap.SelectChain("test"); err != nil {
		t.Fatal(err)
	}
	if _, err := tap.ReadChain(); err != nil {
		t.Fatal(err)
	}

	tap.RestoreSnapshot(snap)
	if tap.State() != wantState || tap.Clocks() != wantClocks {
		t.Fatalf("restored state=%v clocks=%d, want %v %d",
			tap.State(), tap.Clocks(), wantState, wantClocks)
	}
	// The snapshot must stay valid for a second restore after more activity.
	tap.Reset()
	tap.RestoreSnapshot(snap)
	if tap.State() != wantState || tap.Clocks() != wantClocks {
		t.Fatal("second restore from the same snapshot diverged")
	}
	// From the restored point the controller must complete the interrupted
	// IR shift and land in Run-Test/Idle exactly as an undisturbed walk.
	for i := 1; i < 8; i++ {
		tap.Clock(i == 7, false)
	}
	tap.Clock(true, false)  // Exit1-IR -> Update-IR
	tap.Clock(false, false) // -> Run-Test/Idle
	if tap.State() != StateRunTestIdle {
		t.Fatalf("after resumed walk: state = %v", tap.State())
	}
}
