package scan

import (
	"fmt"
	"sort"
)

// TAPState is a state of the IEEE 1149.1 TAP controller state machine.
type TAPState int

// The sixteen TAP controller states.
const (
	StateTestLogicReset TAPState = iota + 1
	StateRunTestIdle
	StateSelectDRScan
	StateCaptureDR
	StateShiftDR
	StateExit1DR
	StatePauseDR
	StateExit2DR
	StateUpdateDR
	StateSelectIRScan
	StateCaptureIR
	StateShiftIR
	StateExit1IR
	StatePauseIR
	StateExit2IR
	StateUpdateIR

	numTAPStates = int(StateUpdateIR) + 1
)

var tapStateNames = map[TAPState]string{
	StateTestLogicReset: "Test-Logic-Reset",
	StateRunTestIdle:    "Run-Test/Idle",
	StateSelectDRScan:   "Select-DR-Scan",
	StateCaptureDR:      "Capture-DR",
	StateShiftDR:        "Shift-DR",
	StateExit1DR:        "Exit1-DR",
	StatePauseDR:        "Pause-DR",
	StateExit2DR:        "Exit2-DR",
	StateUpdateDR:       "Update-DR",
	StateSelectIRScan:   "Select-IR-Scan",
	StateCaptureIR:      "Capture-IR",
	StateShiftIR:        "Shift-IR",
	StateExit1IR:        "Exit1-IR",
	StatePauseIR:        "Pause-IR",
	StateExit2IR:        "Exit2-IR",
	StateUpdateIR:       "Update-IR",
}

// String returns the standard state name.
func (s TAPState) String() string {
	if n, ok := tapStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("TAPState(%d)", int(s))
}

// tapNext encodes the 1149.1 state transition table as a dense array indexed
// by [state][tms] — the hot lookup of every TCK, so no map hashing here.
var tapNext = [numTAPStates][2]TAPState{
	StateTestLogicReset: {StateRunTestIdle, StateTestLogicReset},
	StateRunTestIdle:    {StateRunTestIdle, StateSelectDRScan},
	StateSelectDRScan:   {StateCaptureDR, StateSelectIRScan},
	StateCaptureDR:      {StateShiftDR, StateExit1DR},
	StateShiftDR:        {StateShiftDR, StateExit1DR},
	StateExit1DR:        {StatePauseDR, StateUpdateDR},
	StatePauseDR:        {StatePauseDR, StateExit2DR},
	StateExit2DR:        {StateShiftDR, StateUpdateDR},
	StateUpdateDR:       {StateRunTestIdle, StateSelectDRScan},
	StateSelectIRScan:   {StateCaptureIR, StateTestLogicReset},
	StateCaptureIR:      {StateShiftIR, StateExit1IR},
	StateShiftIR:        {StateShiftIR, StateExit1IR},
	StateExit1IR:        {StatePauseIR, StateUpdateIR},
	StatePauseIR:        {StatePauseIR, StateExit2IR},
	StateExit2IR:        {StateShiftIR, StateUpdateIR},
	StateUpdateIR:       {StateRunTestIdle, StateSelectDRScan},
}

// irWidth is the instruction-register width: chain select codes are 8 bits.
const irWidth = 8

// The bypass chain is selected in Test-Logic-Reset and by unknown IR codes,
// per the standard.
const irBypass uint8 = 0xFF

// TAP is the chip's test access port: the only path from the GOOFI host to
// the device's scan chains. Chains register under an 8-bit IR code.
type TAP struct {
	state    TAPState
	ir       uint8 // committed instruction register
	irShift  uint8 // IR shift stage
	drShift  Bits  // DR shift stage for the selected chain
	bypass   bool  // one-bit bypass register value
	chains   map[uint8]*Chain
	clocks   uint64 // TCK count, a cheap progress metric for benchmarks
	captured bool   // drShift holds a captured value
}

// NewTAP builds a TAP controller over the given chains keyed by IR code.
func NewTAP(chains map[uint8]*Chain) (*TAP, error) {
	if len(chains) == 0 {
		return nil, fmt.Errorf("scan: TAP needs at least one chain")
	}
	for code, ch := range chains {
		if code == irBypass {
			return nil, fmt.Errorf("scan: IR code %#02x is reserved for bypass", irBypass)
		}
		if ch == nil {
			return nil, fmt.Errorf("scan: nil chain at IR code %#02x", code)
		}
	}
	cs := make(map[uint8]*Chain, len(chains))
	for code, ch := range chains {
		cs[code] = ch
	}
	return &TAP{state: StateTestLogicReset, ir: irBypass, chains: cs}, nil
}

// State returns the current controller state.
func (t *TAP) State() TAPState { return t.state }

// Clocks returns the number of TCK cycles applied since creation.
func (t *TAP) Clocks() uint64 { return t.clocks }

// Chains returns the registered chains sorted by IR code.
func (t *TAP) Chains() []*Chain {
	codes := make([]int, 0, len(t.chains))
	for c := range t.chains {
		codes = append(codes, int(c))
	}
	sort.Ints(codes)
	out := make([]*Chain, 0, len(codes))
	for _, c := range codes {
		out = append(out, t.chains[uint8(c)])
	}
	return out
}

// ChainByName returns the chain with the given name.
func (t *TAP) ChainByName(name string) (*Chain, error) {
	for _, ch := range t.chains {
		if ch.Name() == name {
			return ch, nil
		}
	}
	return nil, fmt.Errorf("scan: no chain named %q", name)
}

// selected returns the chain addressed by the committed IR, or nil (bypass).
func (t *TAP) selected() *Chain {
	if ch, ok := t.chains[t.ir]; ok {
		return ch
	}
	return nil
}

// Clock advances the TAP by one TCK cycle with the given TMS and TDI pin
// values and returns TDO.
func (t *TAP) Clock(tms, tdi bool) (tdo bool) {
	t.clocks++
	// TDO reflects the shift stage output of the current state; in Shift-DR
	// the shift itself happens at word granularity inside Bits.shiftOut.
	switch t.state {
	case StateShiftIR:
		tdo = t.irShift&1 != 0
		t.irShift >>= 1
		if tdi {
			t.irShift |= 1 << (irWidth - 1)
		}
	case StateShiftDR:
		if ch := t.selected(); ch != nil {
			tdo = t.drShift.shiftOut(tdi)
		} else {
			tdo = t.bypass
			t.bypass = tdi
		}
	}

	var idx int
	if tms {
		idx = 1
	}
	newState := tapNext[t.state][idx]

	// Perform the action of the state being entered, per the standard's
	// TCK-rising semantics.
	switch newState {
	case StateTestLogicReset:
		t.ir = irBypass
		t.captured = false
	case StateCaptureIR:
		t.irShift = 0x01 // standard: capture b01 pattern
	case StateUpdateIR:
		t.ir = t.irShift
	case StateCaptureDR:
		if ch := t.selected(); ch != nil {
			t.captureDR(ch)
		} else {
			t.bypass = false
		}
	case StateUpdateDR:
		if ch := t.selected(); ch != nil && t.captured {
			// Chain lengths always match here: drShift came from Capture.
			_ = ch.Update(t.drShift)
		}
	}
	t.state = newState
	return tdo
}

// captureDR fills the DR shift stage from the chain, reusing the stage's
// words when the selected chain has not changed length since the last
// capture — the steady state of a campaign hammering one chain.
func (t *TAP) captureDR(ch *Chain) {
	if t.drShift.Len() == ch.Length() {
		ch.CaptureInto(t.drShift)
	} else {
		t.drShift = ch.Capture()
	}
	t.captured = true
}

// TAPSnapshot is a value copy of the complete controller state — FSM state,
// committed and shifting instruction register, DR shift stage, bypass bit and
// TCK count — so a full-system checkpoint can restore the TAP alongside the
// chains it fronts. The snapshot owns its DR stage copy and stays valid after
// further TAP activity.
type TAPSnapshot struct {
	state    TAPState
	ir       uint8
	irShift  uint8
	drShift  Bits
	bypass   bool
	clocks   uint64
	captured bool
}

// Snapshot captures the controller state. The registered chain set is not
// part of the snapshot: it is structural, not stateful, and chain contents
// are checkpointed by the device (the CPU state the chains front).
func (t *TAP) Snapshot() TAPSnapshot {
	return TAPSnapshot{
		state:    t.state,
		ir:       t.ir,
		irShift:  t.irShift,
		drShift:  t.drShift.Clone(),
		bypass:   t.bypass,
		clocks:   t.clocks,
		captured: t.captured,
	}
}

// RestoreSnapshot copies a snapshot back into the controller. The snapshot
// remains independently reusable (the DR stage is cloned again on restore).
func (t *TAP) RestoreSnapshot(s TAPSnapshot) {
	t.state = s.state
	t.ir = s.ir
	t.irShift = s.irShift
	t.drShift = s.drShift.Clone()
	t.bypass = s.bypass
	t.clocks = s.clocks
	t.captured = s.captured
}

// --- Host-side driver built purely on Clock ---

// Reset drives five TMS-high clocks, guaranteeing Test-Logic-Reset from any
// state.
func (t *TAP) Reset() {
	for i := 0; i < 5; i++ {
		t.Clock(true, false)
	}
	t.Clock(false, false) // settle in Run-Test/Idle
}

// SelectChain shifts the IR code for the named chain, committing it. The
// controller ends in Run-Test/Idle.
func (t *TAP) SelectChain(name string) error {
	var code uint8
	found := false
	for c, ch := range t.chains {
		if ch.Name() == name {
			code, found = c, true
			break
		}
	}
	if !found {
		return fmt.Errorf("scan: no chain named %q", name)
	}
	if t.state == StateRunTestIdle && t.ir == code {
		// Already committed: re-shifting the identical IR code is a no-op on
		// the device, so the host skips the walk entirely.
		return nil
	}
	// Run-Test/Idle -> Select-DR -> Select-IR -> Capture-IR.
	t.Clock(true, false)
	t.Clock(true, false)
	t.Clock(false, false)
	// Shift-IR: present irWidth bits, LSB first; assert TMS on the last bit
	// to fall through Exit1-IR.
	t.Clock(false, false) // enter Shift-IR
	for i := 0; i < irWidth; i++ {
		tdi := code&(1<<uint(i)) != 0
		tms := i == irWidth-1
		t.Clock(tms, tdi)
	}
	t.Clock(true, false)  // Exit1-IR -> Update-IR
	t.Clock(false, false) // -> Run-Test/Idle
	return nil
}

// shiftDR clocks the data register of the selected chain: it captures the
// device state, shifts `in` through the chain (in[i] lands on chain bit i)
// while collecting the outgoing bits, and optionally commits with Update-DR.
// The returned vector is the captured device state, bit i = chain bit i.
//
// The n Shift-DR clocks are applied as a bulk word-level transfer rather
// than n Clock calls: after n shifts the stage provably holds exactly `in`
// (or, for reads, the restored capture) and the TDO stream is exactly the
// captured vector, so the fast path copies whole words and advances the TCK
// counter by n. The controller still walks Capture-DR, Shift-DR, Exit1-DR
// and Update-DR, so state-machine observers and TCK accounting see the same
// sequence as a per-bit drive.
func (t *TAP) shiftDR(in Bits, update bool) (Bits, error) {
	ch := t.selected()
	if ch == nil {
		return Bits{}, fmt.Errorf("scan: no chain selected (IR=%#02x)", t.ir)
	}
	n := ch.Length()
	if in.Words() != nil && in.Len() != n {
		return Bits{}, fmt.Errorf("scan: shift of %d bits into chain %s of length %d", in.Len(), ch.Name(), n)
	}
	// Run-Test/Idle -> Select-DR -> Capture-DR -> Shift-DR.
	t.Clock(true, false)
	t.Clock(false, false)
	t.Clock(false, false)
	// Bulk Shift-DR: n TCKs, TMS rising on the final one (-> Exit1-DR).
	out := t.drShift.Clone()
	if update {
		t.drShift.CopyFrom(in)
	}
	// A read leaves the captured value in the stage: the standard offers no
	// Update-free exit from Exit1-DR, and a real driver makes reads
	// non-destructive by shifting the captured stream back in on a second
	// pass. The bulk transfer models both passes at once.
	t.clocks += uint64(n)
	t.state = StateExit1DR
	t.Clock(true, false)  // Exit1-DR -> Update-DR
	t.Clock(false, false) // -> Run-Test/Idle
	return out, nil
}

// ReadChain captures and returns the selected chain's contents, restoring
// the captured value on update so the device state is unchanged.
func (t *TAP) ReadChain() (Bits, error) {
	return t.shiftDR(Bits{}, false)
}

// WriteChain shifts the vector into the selected chain and commits it.
// It returns the previous contents.
func (t *TAP) WriteChain(b Bits) (Bits, error) {
	if b.Words() == nil {
		return Bits{}, fmt.Errorf("scan: write of a nil vector")
	}
	return t.shiftDR(b, true)
}
