// Package scan implements the built-in test logic that Scan-Chain
// Implemented Fault Injection (SCIFI) drives: named scan chains over a
// device's state elements and an IEEE 1149.1-style TAP controller through
// which a host shifts chain contents in and out bit by bit (paper §1, §3.1).
//
// The package is device-agnostic: a chip (internal/thor) registers Fields —
// windows onto its state elements — and the GOOFI tool reads, flips and
// writes back bits without any other access path to the internals, exactly
// as the paper's SCIFI technique prescribes.
package scan

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

// wordBits is the width of one storage word of a Bits vector.
const wordBits = 64

// Bits is a mutable bit vector stored as packed 64-bit words. Index 0 is the
// bit closest to TDO, i.e. the first bit shifted out of the chain; bit i
// lives in word i/64 at position i%64, so the byte layout of Pack — bit i in
// byte i/8 at position i%8 — falls directly out of little-endian word
// encoding and stays identical to the historical []bool encoding.
//
// Bits has reference semantics like a slice: copies share the underlying
// words, Clone makes an independent vector. The zero value is an empty
// vector. Tail bits beyond Len() in the last word are always zero — every
// mutator maintains that invariant so Equal, Pack and OnesCount can work on
// whole words without masking.
type Bits struct {
	n int
	w []uint64
}

// NewBits returns an all-zero bit vector of length n.
func NewBits(n int) Bits { return Bits{n: n, w: make([]uint64, (n+wordBits-1)/wordBits)} }

// Len returns the number of bits.
func (b Bits) Len() int { return b.n }

// Words exposes the packed storage words (bit i at word i/64, position
// i%64). Callers must preserve the zero-tail invariant when mutating.
func (b Bits) Words() []uint64 { return b.w }

func (b Bits) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("scan: bit index %d out of range [0,%d)", i, b.n))
	}
}

// Get returns bit i.
func (b Bits) Get(i int) bool {
	b.check(i)
	return b.w[i/wordBits]>>(uint(i)%wordBits)&1 != 0
}

// Set assigns bit i.
func (b Bits) Set(i int, v bool) {
	b.check(i)
	mask := uint64(1) << (uint(i) % wordBits)
	if v {
		b.w[i/wordBits] |= mask
	} else {
		b.w[i/wordBits] &^= mask
	}
}

// Flip inverts bit i — the transient bit-flip fault model's basic operation.
func (b Bits) Flip(i int) {
	b.check(i)
	b.w[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	c := Bits{n: b.n, w: make([]uint64, len(b.w))}
	copy(c.w, b.w)
	return c
}

// CopyFrom overwrites b with the contents of o. The lengths must match.
func (b Bits) CopyFrom(o Bits) {
	if b.n != o.n {
		panic(fmt.Sprintf("scan: copy of %d bits into vector of %d", o.n, b.n))
	}
	copy(b.w, o.w)
}

// Zero clears every bit.
func (b Bits) Zero() {
	for i := range b.w {
		b.w[i] = 0
	}
}

// Equal reports whether two vectors have identical length and contents.
// Thanks to the zero-tail invariant this is a whole-word comparison.
func (b Bits) Equal(o Bits) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.w {
		if w != o.w[i] {
			return false
		}
	}
	return true
}

// Diff returns the indices at which b and o differ. Vectors of different
// lengths additionally differ at every position beyond the shorter one.
// Matching words are skipped wholesale; differing ones are walked one set
// bit of the XOR at a time.
func (b Bits) Diff(o Bits) []int {
	var out []int
	short, long := b, o
	if o.n < b.n {
		short, long = o, b
	}
	nw := len(short.w)
	for wi := 0; wi < nw; wi++ {
		x := short.w[wi] ^ long.w[wi]
		if wi == nw-1 {
			// Compare only the bits both vectors have; the overhang is
			// appended below as pure length difference.
			if r := short.n % wordBits; r != 0 {
				x &= 1<<uint(r) - 1
			}
		}
		for x != 0 {
			out = append(out, wi*wordBits+bits.TrailingZeros64(x))
			x &= x - 1
		}
	}
	for i := short.n; i < long.n; i++ {
		out = append(out, i)
	}
	return out
}

// OnesCount returns the number of set bits.
func (b Bits) OnesCount() int {
	n := 0
	for _, w := range b.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Uint64 reads width bits starting at offset as a little-endian integer
// (bit offset holds the least significant bit). The window may span two
// storage words.
func (b Bits) Uint64(offset, width int) uint64 {
	if width < 0 || width > wordBits || offset < 0 || offset+width > b.n {
		panic(fmt.Sprintf("scan: read of %d bits at offset %d from vector of %d", width, offset, b.n))
	}
	if width == 0 {
		return 0
	}
	wi, sh := offset/wordBits, uint(offset)%wordBits
	v := b.w[wi] >> sh
	if sh+uint(width) > wordBits {
		v |= b.w[wi+1] << (wordBits - sh)
	}
	if width < wordBits {
		v &= 1<<uint(width) - 1
	}
	return v
}

// PutUint64 writes width bits of v starting at offset.
func (b Bits) PutUint64(offset, width int, v uint64) {
	if width < 0 || width > wordBits || offset < 0 || offset+width > b.n {
		panic(fmt.Sprintf("scan: write of %d bits at offset %d into vector of %d", width, offset, b.n))
	}
	if width == 0 {
		return
	}
	if width < wordBits {
		v &= 1<<uint(width) - 1
	}
	wi, sh := offset/wordBits, uint(offset)%wordBits
	var mask uint64 = ^uint64(0)
	if width < wordBits {
		mask = 1<<uint(width) - 1
	}
	b.w[wi] = b.w[wi]&^(mask<<sh) | v<<sh
	if sh+uint(width) > wordBits {
		rem := wordBits - sh
		b.w[wi+1] = b.w[wi+1]&^(mask>>rem) | v>>rem
	}
}

// shiftOut performs one shift-register step at word granularity: it removes
// and returns bit 0, moves every bit down one position and inserts tdi as
// the new bit n-1 — the TAP's Shift-DR action for a single TCK.
func (b Bits) shiftOut(tdi bool) (tdo bool) {
	if b.n == 0 {
		return false
	}
	tdo = b.w[0]&1 != 0
	last := len(b.w) - 1
	for i := 0; i < last; i++ {
		b.w[i] = b.w[i]>>1 | b.w[i+1]<<(wordBits-1)
	}
	b.w[last] >>= 1
	if tdi {
		i := b.n - 1
		b.w[i/wordBits] |= 1 << (uint(i) % wordBits)
	}
	return tdo
}

// Pack serialises the vector into bytes (little-endian bit order), the form
// stored in the LoggedSystemState.stateVector column. The output is
// byte-identical to the historical per-bit encoding.
func (b Bits) Pack() []byte {
	return b.AppendPacked(make([]byte, 0, (b.n+7)/8))
}

// AppendPacked appends the Pack encoding to dst and returns the extended
// slice — the allocation-free path for callers that reuse a capture buffer.
func (b Bits) AppendPacked(dst []byte) []byte {
	nb := (b.n + 7) / 8
	full := nb / 8 // words encoded as complete 8-byte groups
	for i := 0; i < full; i++ {
		dst = binary.LittleEndian.AppendUint64(dst, b.w[i])
	}
	if rem := nb - full*8; rem > 0 {
		w := b.w[full]
		for i := 0; i < rem; i++ {
			dst = append(dst, byte(w>>(8*uint(i))))
		}
	}
	return dst
}

// Unpack rebuilds a vector of length n from Pack output.
func Unpack(data []byte, n int) (Bits, error) {
	if need := (n + 7) / 8; len(data) != need {
		return Bits{}, fmt.Errorf("scan: unpack %d bits needs %d bytes, got %d", n, need, len(data))
	}
	b := NewBits(n)
	full := len(data) / 8
	for i := 0; i < full; i++ {
		b.w[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	if rem := len(data) - full*8; rem > 0 {
		var w uint64
		for i := 0; i < rem; i++ {
			w |= uint64(data[full*8+i]) << (8 * uint(i))
		}
		b.w[full] = w
	}
	// Mask the tail: Pack tolerates junk in the final byte's unused bits but
	// the in-memory invariant requires them zero.
	if r := n % wordBits; r != 0 && len(b.w) > 0 {
		b.w[len(b.w)-1] &= 1<<uint(r) - 1
	}
	return b, nil
}

// PackedOnesCountDiff counts the bit positions at which two Pack encodings
// differ, comparing eight bytes per step. Analysis code uses it to diff
// logged chain images without unpacking them.
func PackedOnesCountDiff(a, b []byte) int {
	n := 0
	for len(a) >= 8 && len(b) >= 8 {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(a) ^ binary.LittleEndian.Uint64(b))
		a, b = a[8:], b[8:]
	}
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	for i := 0; i < m; i++ {
		n += bits.OnesCount8(a[i] ^ b[i])
	}
	return n
}

// String renders the vector as a 0/1 string, bit 0 first, for debugging.
func (b Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
