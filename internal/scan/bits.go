// Package scan implements the built-in test logic that Scan-Chain
// Implemented Fault Injection (SCIFI) drives: named scan chains over a
// device's state elements and an IEEE 1149.1-style TAP controller through
// which a host shifts chain contents in and out bit by bit (paper §1, §3.1).
//
// The package is device-agnostic: a chip (internal/thor) registers Fields —
// windows onto its state elements — and the GOOFI tool reads, flips and
// writes back bits without any other access path to the internals, exactly
// as the paper's SCIFI technique prescribes.
package scan

import (
	"fmt"
	"strings"
)

// Bits is a mutable bit vector. Index 0 is the bit closest to TDO, i.e. the
// first bit shifted out of the chain.
type Bits []bool

// NewBits returns an all-zero bit vector of length n.
func NewBits(n int) Bits { return make(Bits, n) }

// Len returns the number of bits.
func (b Bits) Len() int { return len(b) }

// Get returns bit i.
func (b Bits) Get(i int) bool { return b[i] }

// Set assigns bit i.
func (b Bits) Set(i int, v bool) { b[i] = v }

// Flip inverts bit i — the transient bit-flip fault model's basic operation.
func (b Bits) Flip(i int) { b[i] = !b[i] }

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// Equal reports whether two vectors have identical length and contents.
func (b Bits) Equal(o Bits) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Diff returns the indices at which b and o differ. Vectors of different
// lengths additionally differ at every position beyond the shorter one.
func (b Bits) Diff(o Bits) []int {
	var out []int
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i] != o[i] {
			out = append(out, i)
		}
	}
	for i := n; i < len(b) || i < len(o); i++ {
		out = append(out, i)
	}
	return out
}

// Uint64 reads width bits starting at offset as a little-endian integer
// (bit offset holds the least significant bit).
func (b Bits) Uint64(offset, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if b[offset+i] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// PutUint64 writes width bits of v starting at offset.
func (b Bits) PutUint64(offset, width int, v uint64) {
	for i := 0; i < width; i++ {
		b[offset+i] = v&(1<<uint(i)) != 0
	}
}

// Pack serialises the vector into bytes (little-endian bit order), the form
// stored in the LoggedSystemState.stateVector column.
func (b Bits) Pack() []byte {
	out := make([]byte, (len(b)+7)/8)
	for i, bit := range b {
		if bit {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// Unpack rebuilds a vector of length n from Pack output.
func Unpack(data []byte, n int) (Bits, error) {
	if need := (n + 7) / 8; len(data) != need {
		return nil, fmt.Errorf("scan: unpack %d bits needs %d bytes, got %d", n, need, len(data))
	}
	b := NewBits(n)
	for i := 0; i < n; i++ {
		b[i] = data[i/8]&(1<<uint(i%8)) != 0
	}
	return b, nil
}

// String renders the vector as a 0/1 string, bit 0 first, for debugging.
func (b Bits) String() string {
	var sb strings.Builder
	sb.Grow(len(b))
	for _, bit := range b {
		if bit {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// OnesCount returns the number of set bits.
func (b Bits) OnesCount() int {
	n := 0
	for _, bit := range b {
		if bit {
			n++
		}
	}
	return n
}
