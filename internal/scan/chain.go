package scan

import (
	"fmt"
	"strings"
)

// Field is one state element reachable through a scan chain: a named window
// of up to 64 bits with accessors into the device state. ReadOnly fields can
// be observed but not driven — Update skips them, exactly as the paper notes
// for some Thor RD scan locations (§3.1).
type Field struct {
	// Name identifies the state element, e.g. "R3", "PC", "icache[7].data".
	Name string
	// Width is the number of bits, 1..64.
	Width int
	// Get reads the current value of the element.
	Get func() uint64
	// Set drives a new value into the element. nil implies ReadOnly.
	Set func(uint64)
	// ReadOnly marks observable-but-not-controllable locations.
	ReadOnly bool
}

// Chain is a named scan chain: an ordered sequence of fields forming one
// shift register through the device.
type Chain struct {
	name     string
	fields   []Field
	offsets  []int // bit offset of each field
	length   int
	writable []int // writable bit indices, fixed at construction
}

// NewChain validates the fields and assembles a chain.
func NewChain(name string, fields []Field) (*Chain, error) {
	if name == "" {
		return nil, fmt.Errorf("scan: chain name must not be empty")
	}
	c := &Chain{name: name}
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("scan: chain %s: field with empty name", name)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("scan: chain %s: duplicate field %s", name, f.Name)
		}
		seen[f.Name] = true
		if f.Width < 1 || f.Width > 64 {
			return nil, fmt.Errorf("scan: chain %s: field %s has width %d", name, f.Name, f.Width)
		}
		if f.Get == nil {
			return nil, fmt.Errorf("scan: chain %s: field %s has no Get", name, f.Name)
		}
		if f.Set == nil && !f.ReadOnly {
			return nil, fmt.Errorf("scan: chain %s: writable field %s has no Set", name, f.Name)
		}
		c.offsets = append(c.offsets, c.length)
		c.fields = append(c.fields, f)
		c.length += f.Width
	}
	for i, f := range c.fields {
		if f.ReadOnly || f.Set == nil {
			continue
		}
		for b := 0; b < f.Width; b++ {
			c.writable = append(c.writable, c.offsets[i]+b)
		}
	}
	return c, nil
}

// Name returns the chain's name.
func (c *Chain) Name() string { return c.name }

// Length returns the chain length in bits.
func (c *Chain) Length() int { return c.length }

// Fields returns a copy of the field descriptors in chain order.
func (c *Chain) Fields() []Field { return append([]Field(nil), c.fields...) }

// Capture reads every field into a fresh bit vector (the TAP's Capture-DR
// action).
func (c *Chain) Capture() Bits {
	b := NewBits(c.length)
	c.CaptureInto(b)
	return b
}

// CaptureInto reads every field into an existing vector of the chain's
// length — the allocation-free capture path. Each field lands with one or
// two word-level writes; no per-bit work happens.
func (c *Chain) CaptureInto(b Bits) {
	if b.Len() != c.length {
		panic(fmt.Sprintf("scan: chain %s: capture into %d bits, chain has %d", c.name, b.Len(), c.length))
	}
	for i, f := range c.fields {
		b.PutUint64(c.offsets[i], f.Width, f.Get())
	}
}

// Update drives the bit vector back into the device (the TAP's Update-DR
// action). Read-only fields are skipped; their device state is untouched no
// matter what the vector holds.
func (c *Chain) Update(b Bits) error {
	if b.Len() != c.length {
		return fmt.Errorf("scan: chain %s: update with %d bits, chain has %d", c.name, b.Len(), c.length)
	}
	for i, f := range c.fields {
		if f.ReadOnly || f.Set == nil {
			continue
		}
		f.Set(b.Uint64(c.offsets[i], f.Width))
	}
	return nil
}

// Locate maps a chain bit index to the field it belongs to and the bit
// position within that field.
func (c *Chain) Locate(bit int) (field Field, bitInField int, err error) {
	if bit < 0 || bit >= c.length {
		return Field{}, 0, fmt.Errorf("scan: chain %s: bit %d out of range [0,%d)", c.name, bit, c.length)
	}
	for i, f := range c.fields {
		if bit < c.offsets[i]+f.Width {
			return f, bit - c.offsets[i], nil
		}
	}
	// Unreachable: the loop always terminates for validated chains.
	return Field{}, 0, fmt.Errorf("scan: chain %s: bit %d not located", c.name, bit)
}

// FieldOffset returns the bit offset of the named field within the chain.
func (c *Chain) FieldOffset(name string) (offset, width int, err error) {
	for i, f := range c.fields {
		if f.Name == name {
			return c.offsets[i], f.Width, nil
		}
	}
	return 0, 0, fmt.Errorf("scan: chain %s: no field %q", c.name, name)
}

// BitName renders a human-readable fault-location name for a chain bit,
// e.g. "internal.core/R3[17]". These names appear in the TargetSystemData
// and CampaignData tables.
func (c *Chain) BitName(bit int) string {
	f, i, err := c.Locate(bit)
	if err != nil {
		return fmt.Sprintf("%s/?[%d]", c.name, bit)
	}
	return fmt.Sprintf("%s/%s[%d]", c.name, f.Name, i)
}

// ParseBitName inverts BitName given the chain, returning the bit index.
func (c *Chain) ParseBitName(name string) (int, error) {
	rest, ok := strings.CutPrefix(name, c.name+"/")
	if !ok {
		return 0, fmt.Errorf("scan: %q does not belong to chain %s", name, c.name)
	}
	open := strings.LastIndexByte(rest, '[')
	if open < 0 || !strings.HasSuffix(rest, "]") {
		return 0, fmt.Errorf("scan: malformed bit name %q", name)
	}
	fieldName := rest[:open]
	var bit int
	if _, err := fmt.Sscanf(rest[open:], "[%d]", &bit); err != nil {
		return 0, fmt.Errorf("scan: malformed bit index in %q", name)
	}
	off, width, err := c.FieldOffset(fieldName)
	if err != nil {
		return 0, err
	}
	if bit < 0 || bit >= width {
		return 0, fmt.Errorf("scan: bit %d out of range for field %s (width %d)", bit, fieldName, width)
	}
	return off + bit, nil
}

// WritableBits returns the chain indices of every bit belonging to a
// writable field — the legal fault-injection locations of this chain. The
// topology is fixed at construction, so the slice is computed once and
// shared: callers must treat it as read-only. (State capture fetches the
// chain inventory once per experiment; rebuilding this list there used to
// dominate the engine's un-instrumented glue time.)
func (c *Chain) WritableBits() []int {
	return c.writable
}
