package scan

import (
	"bytes"
	"testing"
)

// FuzzBitsPackUnpack pins the Pack/Unpack byte-encoding contract from both
// directions: a length-mismatched buffer is always rejected; a well-sized
// buffer always unpacks, and repacking yields the same bytes modulo the
// unused high bits of the final byte (which Unpack masks to keep the
// in-memory tail-word invariant).
func FuzzBitsPackUnpack(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0x01}, 9)
	f.Add([]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x11, 0x22, 0x01}, 65)
	f.Add([]byte{0x80}, 8)
	f.Add([]byte{0xff}, 3) // junk in unused tail bits
	f.Add([]byte{1, 2, 3}, 9)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			t.Skip()
		}
		b, err := Unpack(data, n)
		if len(data) != (n+7)/8 {
			if err == nil {
				t.Fatalf("Unpack(%d bytes, n=%d) accepted a mis-sized buffer", len(data), n)
			}
			return
		}
		if err != nil {
			t.Fatalf("Unpack(%d bytes, n=%d): %v", len(data), n, err)
		}
		if b.Len() != n {
			t.Fatalf("unpacked length %d, want %d", b.Len(), n)
		}
		repacked := b.Pack()
		want := append([]byte(nil), data...)
		if r := n % 8; r != 0 && len(want) > 0 {
			want[len(want)-1] &= byte(1<<uint(r)) - 1
		}
		if !bytes.Equal(repacked, want) {
			t.Fatalf("Pack(Unpack(data)) = %x, want %x (n=%d)", repacked, want, n)
		}
		// A second cycle must be an exact fixed point, bit-for-bit.
		b2, err := Unpack(repacked, n)
		if err != nil {
			t.Fatalf("re-Unpack: %v", err)
		}
		if !b2.Equal(b) {
			t.Fatalf("re-unpacked vector differs (n=%d)", n)
		}
		// The packed-domain diff of identical encodings is zero, and against
		// the all-zero vector it equals the population count.
		if d := PackedOnesCountDiff(repacked, repacked); d != 0 {
			t.Fatalf("self-diff = %d", d)
		}
		if d := PackedOnesCountDiff(repacked, NewBits(n).Pack()); d != b.OnesCount() {
			t.Fatalf("diff vs zero = %d, OnesCount = %d", d, b.OnesCount())
		}
	})
}
