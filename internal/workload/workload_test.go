package workload

import (
	"strings"
	"testing"

	"goofi/internal/asm"
)

func TestAllSpecsValid(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("workloads = %d", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload name %s", w.Name)
		}
		seen[w.Name] = true
		if w.Description == "" {
			t.Errorf("%s: missing description", w.Name)
		}
	}
}

func TestAllSourcesAssemble(t *testing.T) {
	for _, w := range All() {
		if _, err := asm.Assemble(w.Source); err != nil {
			t.Errorf("%s does not assemble: %v", w.Name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{},
		{Name: "x"},
		{Name: "x", Source: "NOP"}, // non-terminating, no iterations
		{Name: "x", Source: "NOP", MaxCycles: 10}, // non-terminating, no iterations
		{Name: "", Source: "NOP", TerminatesSelf: true, MaxCycles: 1},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, s)
		}
	}
	// MaxCycles == 0 means "unbounded" at the spec level; campaign validation
	// is where an unbounded budget requires a wall-clock watchdog.
	unbounded := Spec{Name: "x", Source: "NOP", TerminatesSelf: true, MaxCycles: 0}
	if err := unbounded.Validate(); err != nil {
		t.Errorf("unbounded spec should validate: %v", err)
	}
}

func TestGetAndNames(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	// Sorted.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, n := range names {
		w, err := Get(n)
		if err != nil || w.Name != n {
			t.Errorf("Get(%s) = %v, %v", n, w.Name, err)
		}
	}
	if _, err := Get("missing"); err == nil {
		t.Fatal("unknown name should fail")
	}
}

func TestExpectedHelpers(t *testing.T) {
	if FibonacciExpected() != 144 {
		t.Fatalf("fib(12) = %d", FibonacciExpected())
	}
	if CRC16Expected() == 0 || CRC16Expected() > 0xFFFF {
		t.Fatalf("crc = %#x", CRC16Expected())
	}
	want := MatMulExpected()
	if len(want) != 16 || want[0] != 1*17+2*21+3*25+4*29 {
		t.Fatalf("matmul expected = %v", want)
	}
}

func TestControlWorkloadShape(t *testing.T) {
	c := Control()
	if c.TerminatesSelf {
		t.Fatal("control must be an infinite loop")
	}
	if c.Env != "jet-engine" || len(c.OutputAddrs) != 1 || len(c.InputAddrs) != 2 {
		t.Fatalf("exchange config = %+v", c)
	}
	// The hard assertion's TRAP code must appear in the source.
	if !strings.Contains(c.Source, "TRAP 42") {
		t.Fatal("control source lost its assertion TRAP")
	}
	if ControlAssertionTrapCode != 42 {
		t.Fatal("trap code constant out of sync")
	}
}

func TestExchangeAddressesAreInIOWindow(t *testing.T) {
	// The control workload's exchange words must live in the uncached I/O
	// window [0x7000, 0x8000) of the default config, or the workload would
	// read stale cached inputs.
	c := Control()
	for _, a := range append(append([]uint32{}, c.OutputAddrs...), c.InputAddrs...) {
		if a < 0x7000 || a >= 0x8000 {
			t.Errorf("exchange address %#x outside the I/O window", a)
		}
	}
}
