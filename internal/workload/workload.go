// Package workload ships the target-system workloads of the reproduction
// (paper §3.2): programs in the thor assembly language together with the
// metadata the campaign needs — environment exchange locations, result
// locations, and termination style.
//
// The flagship workload is the jet-engine control application with
// executable assertions and best-effort recovery, mirroring the companion
// study the paper applied GOOFI to (ref. [12]). Three terminating batch
// workloads (sort, matrix multiply, CRC) cover the "program that terminates
// by itself" case.
package workload

import (
	"fmt"
	"sort"
)

// Spec describes one workload.
type Spec struct {
	// Name identifies the workload in CampaignData.
	Name string
	// Description is a one-line summary shown by the CLI.
	Description string
	// Source is the thor assembly text.
	Source string
	// TerminatesSelf is true for batch programs ending in HALT; false for
	// infinite control loops, which the campaign stops after MaxIterations.
	TerminatesSelf bool
	// MaxIterations bounds non-terminating workloads (number of SYNCs).
	MaxIterations uint64
	// Env names the environment simulator to attach, or "" for none.
	Env string
	// OutputAddrs are the memory words read and passed to the environment
	// simulator at each SYNC.
	OutputAddrs []uint32
	// InputAddrs are the memory words the simulator's reply is written to.
	InputAddrs []uint32
	// ResultAddrs are the memory words holding the workload's results,
	// compared against the reference run to detect escaped errors.
	ResultAddrs []uint32
	// MaxCycles is the per-experiment cycle budget in instructions; 0 means
	// unbounded, which campaign validation only accepts together with a
	// wall-clock watchdog (Campaign.ExperimentTimeout).
	MaxCycles uint64
}

// Validate performs basic sanity checks on the spec.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.Source == "":
		return fmt.Errorf("workload %s: empty source", s.Name)
	case !s.TerminatesSelf && s.MaxIterations == 0:
		return fmt.Errorf("workload %s: non-terminating workload needs MaxIterations", s.Name)
	}
	return nil
}

// Get returns a built-in workload by name.
func Get(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists the built-in workloads in sorted order.
func Names() []string {
	all := All()
	names := make([]string, 0, len(all))
	for _, s := range all {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// All returns every built-in workload.
func All() []Spec {
	return []Spec{
		BubbleSort(),
		MatMul(),
		CRC16(),
		Fibonacci(),
		Control(),
	}
}

// Memory-layout constants shared by the workloads. The default thor config
// places ROM at [0, 0x4000); workload data lives above it.
const (
	fibResultAddr = 0x4400

	sortArrayAddr = 0x4000
	sortArrayLen  = 16

	matAAddr = 0x4100
	matBAddr = 0x4140
	matCAddr = 0x4180

	crcDataAddr   = 0x4200
	crcDataBytes  = 32
	crcResultAddr = 0x4300

	ctlInSpeed = 0x7000
	ctlInSetpt = 0x7004
	ctlOutCmd  = 0x7010
	ctlLastCmd = 0x7020
	ctlLastSpd = 0x7024
)

// BubbleSort sorts a 16-word array in place and halts.
func BubbleSort() Spec {
	results := make([]uint32, sortArrayLen)
	for i := range results {
		results[i] = sortArrayAddr + uint32(4*i)
	}
	return Spec{
		Name:           "bubblesort",
		Description:    "sort a 16-word array in place (batch, self-terminating)",
		TerminatesSelf: true,
		MaxCycles:      50000,
		ResultAddrs:    results,
		Source: `
; bubblesort: sort ARR[0..N) ascending.
.equ ARR, 0x4000
.equ N, 16
start:
    LDI  R7, ARR
    LDI  R1, 0            ; i
outer:
    CMPI R1, N-1
    BGE  sorted
    LDI  R2, 0            ; j
    LDI  R6, N-1
    SUB  R6, R6, R1       ; limit = N-1-i
inner:
    CMP  R2, R6
    BGE  endinner
    LDI  R3, 4
    MUL  R3, R2, R3
    ADD  R3, R3, R7       ; &a[j]
    LD   R4, [R3]
    LD   R5, [R3+4]
    CMP  R4, R5
    BLE  noswap
    ST   R5, [R3]
    ST   R4, [R3+4]
noswap:
    ADDI R2, R2, 1
    BRA  inner
endinner:
    ADDI R1, R1, 1
    BRA  outer
sorted:
    HALT
.org ARR
arr:
    .word 14, 3, 9, 1, 16, 5, 11, 2, 8, 15, 4, 12, 7, 10, 6, 13
`,
	}
}

// MatMul multiplies two 4x4 matrices and halts.
func MatMul() Spec {
	results := make([]uint32, 16)
	for i := range results {
		results[i] = matCAddr + uint32(4*i)
	}
	return Spec{
		Name:           "matmul",
		Description:    "4x4 integer matrix multiply (batch, self-terminating)",
		TerminatesSelf: true,
		MaxCycles:      100000,
		ResultAddrs:    results,
		Source: `
; matmul: C = A * B for 4x4 matrices of words.
.equ A, 0x4100
.equ B, 0x4140
.equ C, 0x4180
start:
    LDI  R7, A
    LDI  R8, B
    LDI  R9, C
    LDI  R1, 0            ; i
iloop:
    CMPI R1, 4
    BGE  mdone
    LDI  R2, 0            ; j
jloop:
    CMPI R2, 4
    BGE  jdone
    LDI  R3, 0            ; k
    LDI  R4, 0            ; acc
kloop:
    CMPI R3, 4
    BGE  kdone
    LDI  R5, 4
    MUL  R5, R1, R5       ; i*4
    ADD  R5, R5, R3       ; i*4+k
    LDI  R6, 4
    MUL  R5, R5, R6
    ADD  R5, R5, R7
    LD   R5, [R5]         ; A[i][k]
    LDI  R6, 4
    MUL  R6, R3, R6       ; k*4
    ADD  R6, R6, R2       ; k*4+j
    LDI  R10, 4
    MUL  R6, R6, R10
    ADD  R6, R6, R8
    LD   R6, [R6]         ; B[k][j]
    MUL  R5, R5, R6
    ADD  R4, R4, R5
    ADDI R3, R3, 1
    BRA  kloop
kdone:
    LDI  R5, 4
    MUL  R5, R1, R5
    ADD  R5, R5, R2
    LDI  R6, 4
    MUL  R5, R5, R6
    ADD  R5, R5, R9
    ST   R4, [R5]         ; C[i][j]
    ADDI R2, R2, 1
    BRA  jloop
jdone:
    ADDI R1, R1, 1
    BRA  iloop
mdone:
    HALT
.org A
    .word 1, 2, 3, 4
    .word 5, 6, 7, 8
    .word 9, 10, 11, 12
    .word 13, 14, 15, 16
.org B
    .word 17, 18, 19, 20
    .word 21, 22, 23, 24
    .word 25, 26, 27, 28
    .word 29, 30, 31, 32
`,
	}
}

// MatMulExpected returns the correct product for MatMul's fixed operands.
func MatMulExpected() []uint32 {
	a := [4][4]int64{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}, {13, 14, 15, 16}}
	b := [4][4]int64{{17, 18, 19, 20}, {21, 22, 23, 24}, {25, 26, 27, 28}, {29, 30, 31, 32}}
	out := make([]uint32, 0, 16)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var sum int64
			for k := 0; k < 4; k++ {
				sum += a[i][k] * b[k][j]
			}
			out = append(out, uint32(sum))
		}
	}
	return out
}

// CRC16 computes CRC-16/CCITT over a 32-byte block and halts.
func CRC16() Spec {
	return Spec{
		Name:           "crc16",
		Description:    "CRC-16/CCITT over a 32-byte block (batch, self-terminating)",
		TerminatesSelf: true,
		MaxCycles:      200000,
		ResultAddrs:    []uint32{crcResultAddr},
		Source: `
; crc16: CRC-16/CCITT-FALSE (init 0xFFFF, poly 0x1021) over LEN bytes.
.equ DATA, 0x4200
.equ LEN, 32
.equ RESULT, 0x4300
start:
    LDI  R1, DATA
    LDI  R2, 0            ; index
    LDI  R3, 0xFFFF       ; crc
byteloop:
    CMPI R2, LEN
    BGE  crcdone
    ADD  R4, R1, R2
    LDB  R5, [R4]
    LDI  R6, 8
    SHL  R5, R5, R6
    XOR  R3, R3, R5
    LDI  R7, 8            ; bit counter
bitloop:
    CMPI R7, 0
    BEQ  bitdone
    LDI  R8, 0x8000
    AND  R8, R3, R8
    LDI  R9, 1
    SHL  R3, R3, R9
    CMPI R8, 0
    BEQ  nopoly
    LDI  R9, 0x1021
    XOR  R3, R3, R9
nopoly:
    LDI  R9, 0xFFFF
    AND  R3, R3, R9
    SUBI R7, R7, 1
    BRA  bitloop
bitdone:
    ADDI R2, R2, 1
    BRA  byteloop
crcdone:
    LDI  R1, RESULT
    ST   R3, [R1]
    HALT
.org DATA
    .word 0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c
    .word 0x13121110, 0x17161514, 0x1b1a1918, 0x1f1e1d1c
`,
	}
}

// CRC16Expected computes the reference CRC for CRC16's fixed data.
func CRC16Expected() uint32 {
	crc := uint32(0xFFFF)
	for b := 0; b < crcDataBytes; b++ {
		crc ^= uint32(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = (crc << 1) ^ 0x1021
			} else {
				crc <<= 1
			}
			crc &= 0xFFFF
		}
	}
	return crc
}

// Fibonacci computes fib(12) by naive recursion. It is the stack-heavy
// workload: hundreds of subprogram calls with PUSH/POP frames, giving
// call-triggered injection plenty of events and the stack-limit EDM a
// realistic chance of firing under stack-pointer faults.
func Fibonacci() Spec {
	return Spec{
		Name:           "fib",
		Description:    "recursive fib(12) exercising the stack and subprogram calls",
		TerminatesSelf: true,
		MaxCycles:      100000,
		ResultAddrs:    []uint32{fibResultAddr},
		Source: `
; fib: naive recursion, result at RESULT.
.equ RESULT, 0x4400
.equ N, 12
start:
    LDI  R1, N
    CALL fib              ; R2 = fib(N)
    LDI  R3, RESULT
    ST   R2, [R3]
    HALT

; fib(R1) -> R2; preserves nothing else.
fib:
    CMPI R1, 2
    BLT  base
    PUSH R1
    PUSH LR
    SUBI R1, R1, 1
    CALL fib              ; R2 = fib(n-1)
    POP  LR
    POP  R1
    PUSH R2
    PUSH LR
    SUBI R1, R1, 2
    CALL fib              ; R2 = fib(n-2)
    POP  LR
    POP  R3
    ADD  R2, R2, R3
    RET
base:
    MOV  R2, R1           ; fib(0)=0, fib(1)=1
    RET
`,
	}
}

// FibonacciExpected returns fib(12), the reference result.
func FibonacciExpected() uint32 {
	a, b := uint32(0), uint32(1)
	for i := 0; i < 12; i++ {
		a, b = b, a+b
	}
	return a
}

// Control is the jet-engine control application with executable assertions
// and best-effort recovery (paper ref. [12]). It runs as an infinite loop,
// exchanging [command] for [speed, setpoint] with the jet-engine environment
// simulator every iteration.
//
// Two software error-handling layers are present:
//   - assertion 1 checks the speed reading against its physical range and
//     recovers by reusing the last good reading (best-effort recovery);
//   - assertion 2 re-checks the actuator command after clamping; a
//     violation is impossible in a fault-free run, so it TRAPs — the
//     "detected by software assertion" outcome.
func Control() Spec {
	return Spec{
		Name:           "control",
		Description:    "jet-engine PI control loop with executable assertions + best-effort recovery",
		TerminatesSelf: false,
		MaxIterations:  120,
		MaxCycles:      200000,
		Env:            "jet-engine",
		OutputAddrs:    []uint32{ctlOutCmd},
		InputAddrs:     []uint32{ctlInSpeed, ctlInSetpt},
		ResultAddrs:    []uint32{ctlLastCmd, ctlLastSpd},
		Source: `
; control: incremental PI speed controller with executable assertions.
.equ IN_SPEED, 0x7000
.equ IN_SETPT, 0x7004
.equ OUT_CMD,  0x7010
.equ LASTCMD,  0x7020
.equ LASTSPD,  0x7024
.equ CMD_MAX,  4095
.equ SPD_MAX,  20000
start:
    LDI  R1, 2048
    LDI  R2, LASTCMD
    ST   R1, [R2]
    LDI  R1, 2000
    LDI  R2, LASTSPD
    ST   R1, [R2]
loop:
    LDI  R2, IN_SPEED
    LD   R3, [R2]         ; speed
    LDI  R2, IN_SETPT
    LD   R4, [R2]         ; setpoint

    ; executable assertion 1: 0 <= speed <= SPD_MAX, else best-effort
    ; recovery with the last good reading.
    CMPI R3, 0
    BLT  badspeed
    LDI  R5, SPD_MAX
    CMP  R3, R5
    BGT  badspeed
    LDI  R2, LASTSPD
    ST   R3, [R2]
    BRA  speedok
badspeed:
    LDI  R2, LASTSPD
    LD   R3, [R2]
speedok:

    CALL compute          ; R5 = new clamped command

    LDI  R2, OUT_CMD
    ST   R5, [R2]
    LDI  R2, LASTCMD
    ST   R5, [R2]
    SYNC
    YIELD
    BRA  loop

; compute: cmd = clamp(lastcmd + (setpoint - speed) >> 5) with a hard
; executable assertion on the result.
compute:
    LDI  R2, LASTCMD
    LD   R5, [R2]
    SUB  R6, R4, R3
    LDI  R7, 5
    SAR  R6, R6, R7
    ADD  R5, R5, R6

    ; clamp to [0, CMD_MAX]
    CMPI R5, 0
    BGE  notneg
    LDI  R5, 0
notneg:
    LDI  R7, CMD_MAX
    CMP  R5, R7
    BLE  notbig
    MOV  R5, R7
notbig:

    ; executable assertion 2: impossible unless corrupted -> TRAP.
    CMPI R5, 0
    BLT  corrupt
    LDI  R7, CMD_MAX
    CMP  R5, R7
    BGT  corrupt
    RET
corrupt:
    TRAP 42
`,
	}
}

// ControlAssertionTrapCode is the TRAP code of the control workload's hard
// assertion; analysis uses it to attribute detections to the software layer.
const ControlAssertionTrapCode = 42
