package asm

import (
	"errors"
	"strings"
	"testing"

	"goofi/internal/thor"
)

// run assembles src, loads it into a default CPU and runs it.
func run(t *testing.T, src string, maxSteps uint64) *thor.CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := thor.New(thor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range p.Segments {
		for i, w := range seg.Words {
			if err := c.WriteWordHost(seg.Addr+uint32(4*i), w); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Run(maxSteps)
	return c
}

func TestAssembleBasicProgram(t *testing.T) {
	c := run(t, `
		; compute 6*7 the slow way
		LDI  R1, 6
		LDI  R2, 7
		LDI  R3, 0
	loop:
		CMPI R1, 0
		BEQ  done
		ADD  R3, R3, R2
		SUBI R1, R1, 1
		BRA  loop
	done:
		HALT
	`, 1000)
	if c.Status() != thor.StatusHalted {
		t.Fatalf("status = %v (%v)", c.Status(), c.Detection())
	}
	if c.Regs[3] != 42 {
		t.Fatalf("R3 = %d", c.Regs[3])
	}
}

func TestAssembleDataAndMemoryOps(t *testing.T) {
	c := run(t, `
		LDI  R1, table
		LD   R2, [R1]        ; 11
		LD   R3, [R1+4]      ; 22
		LD   R4, [R1+offset] ; 33
		LDI  R5, 0x8000
		ST   R3, [R5+0]
		LD   R6, [R5]
		HALT
	.equ offset, 8
	.org 0x1000
	table:
		.word 11, 22, 33
	`, 100)
	if c.Status() != thor.StatusHalted {
		t.Fatalf("status = %v (%v)", c.Status(), c.Detection())
	}
	if c.Regs[2] != 11 || c.Regs[3] != 22 || c.Regs[4] != 33 || c.Regs[6] != 22 {
		t.Fatalf("regs = %v", c.Regs[:8])
	}
}

func TestAssembleCallRet(t *testing.T) {
	c := run(t, `
		LDI  R1, 5
		CALL double
		CALL double
		HALT
	double:
		ADD  R1, R1, R1
		RET
	`, 100)
	if c.Regs[1] != 20 {
		t.Fatalf("R1 = %d", c.Regs[1])
	}
}

func TestAssembleStackAliases(t *testing.T) {
	c := run(t, `
		LDI  R1, 9
		PUSH R1
		LDI  R1, 0
		POP  R2
		MOV  R3, SP
		HALT
	`, 100)
	if c.Regs[2] != 9 {
		t.Fatalf("R2 = %d", c.Regs[2])
	}
	if c.Regs[3] != thor.DefaultConfig().StackBase {
		t.Fatalf("SP = %#x", c.Regs[3])
	}
}

func TestAssembleCharAndHex(t *testing.T) {
	c := run(t, `
		LDI R1, 'A'
		LDI R2, 0xFF
		LDI R3, 'A'+1
		HALT
	`, 10)
	if c.Regs[1] != 'A' || c.Regs[2] != 0xFF || c.Regs[3] != 'B' {
		t.Fatalf("regs = %v", c.Regs[:4])
	}
}

func TestAssembleBackwardAndForwardLabels(t *testing.T) {
	p, err := Assemble(`
	start:
		BRA  end
	mid:
		NOP
	end:
		BEQ  mid
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := p.WordAt(0)
	if !ok {
		t.Fatal("no word at 0")
	}
	in, err := thor.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	// BRA at pc 0 to end at 8: (8 - 4)/4 = 1.
	if in.Op != thor.OpBRA || in.Imm != 1 {
		t.Fatalf("instr = %+v", in)
	}
	w, _ = p.WordAt(8)
	in, _ = thor.Decode(w)
	// BEQ at pc 8 to mid at 4: (4 - 12)/4 = -2.
	if in.Imm != -2 {
		t.Fatalf("backward offset = %d", in.Imm)
	}
}

func TestAssembleSymbols(t *testing.T) {
	p, err := Assemble(`
	.equ N, 10
	start:
		LDI R1, N
		HALT
	.org 0x2000
	data:
		.word N+5, data, start
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Symbol("N"); v != 10 {
		t.Fatalf("N = %d", v)
	}
	if v, _ := p.Symbol("data"); v != 0x2000 {
		t.Fatalf("data = %#x", v)
	}
	if w, _ := p.WordAt(0x2000); w != 15 {
		t.Fatalf("word = %d", w)
	}
	if w, _ := p.WordAt(0x2004); w != 0x2000 {
		t.Fatalf("word = %#x", w)
	}
	if w, _ := p.WordAt(0x2008); w != 0 {
		t.Fatalf("word = %#x", w)
	}
}

func TestAssembleSpace(t *testing.T) {
	p, err := Assemble(`
	.org 0x100
	buf:
		.space 16
	after:
		.word 1
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Symbol("after"); v != 0x110 {
		t.Fatalf("after = %#x", v)
	}
	if p.Size != 0x114 {
		t.Fatalf("size = %#x", p.Size)
	}
}

func TestAssembleSegments(t *testing.T) {
	p, err := Assemble(`
		NOP
		HALT
	.org 0x1000
		.word 7
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %+v", p.Segments)
	}
	if p.Segments[0].Addr != 0 || len(p.Segments[0].Words) != 2 {
		t.Fatalf("seg0 = %+v", p.Segments[0])
	}
	if p.Segments[1].Addr != 0x1000 || p.Segments[1].Words[0] != 7 {
		t.Fatalf("seg1 = %+v", p.Segments[1])
	}
}

func TestAssembleComments(t *testing.T) {
	_, err := Assemble(`
		NOP ; semicolon
		NOP # hash
		NOP // slashes
		LDI R1, ';' ; char literal containing comment char
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"unknown op", "FROB R1", "unknown instruction"},
		{"bad register", "MOV R16, R1", "expected register"},
		{"missing operand", "ADD R1, R2", "takes 3 operand"},
		{"undefined label", "BRA nowhere", "undefined label"},
		{"undefined symbol", "LDI R1, missing", "undefined symbol"},
		{"duplicate label", "x:\nNOP\nx:\nNOP", "duplicate symbol"},
		{"bad org", ".org 3", "not word-aligned"},
		{"bad directive", ".bogus 1", "unknown directive"},
		{"bad mem operand", "LD R1, R2", "expected memory operand"},
		{"imm too big", "LDI R1, 0x100000", "out of range"},
		{"bad space", ".space 3", "not a multiple of 4"},
		{"equ missing arg", ".equ N", "takes name, value"},
		{"ret with args", "RET R1", "no operands"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(tt.src)
			if err == nil {
				t.Fatalf("assemble(%q) should fail", tt.src)
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Fatalf("error %q does not mention %q", err, tt.frag)
			}
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("error is not *Error: %v", err)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("NOP\nNOP\nFROB\n")
	var ae *Error
	if !errors.As(err, &ae) || ae.Line != 3 {
		t.Fatalf("err = %v", err)
	}
}

func TestDisassemble(t *testing.T) {
	w, err := thor.Encode(thor.Instr{Op: thor.OpADDI, Rd: 1, Rs: 2, Imm: -3})
	if err != nil {
		t.Fatal(err)
	}
	if got := Disassemble(w); got != "ADDI R1, R2, -3" {
		t.Fatalf("disasm = %q", got)
	}
	if got := Disassemble(0xEE000000); !strings.HasPrefix(got, ".word") {
		t.Fatalf("disasm of garbage = %q", got)
	}
}

func TestWordAtMisses(t *testing.T) {
	p, err := Assemble("NOP")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.WordAt(100); ok {
		t.Fatal("WordAt(100) should miss")
	}
	if _, ok := p.WordAt(2); ok {
		t.Fatal("unaligned WordAt should miss")
	}
}

func TestAssembleIOAndTrap(t *testing.T) {
	p, err := Assemble(`
		IOR R1, 2
		IOW R1, 3
		TRAP 7
		SYNC
		YIELD
	`)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := p.WordAt(8)
	in, _ := thor.Decode(w)
	if in.Op != thor.OpTRAP || in.Imm != 7 {
		t.Fatalf("trap = %+v", in)
	}
}

// Round trip: assemble → disassemble → compare mnemonics for a broad program.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := []string{
		"NOP", "HALT", "MOV R1, R2", "LDI R3, -100", "LUI R4, 15",
		"ADD R1, R2, R3", "SUB R1, R2, R3", "MUL R1, R2, R3",
		"DIV R1, R2, R3", "AND R1, R2, R3", "OR R1, R2, R3",
		"XOR R1, R2, R3", "SHL R1, R2, R3", "SHR R1, R2, R3",
		"SAR R1, R2, R3", "ADDI R1, R2, 5", "SUBI R1, R2, 5",
		"CMP R1, R2", "CMPI R1, 5", "LD R1, [R2+4]", "ST R1, [R2-4]",
		"LDB R1, [R2+1]", "STB R1, [R2+1]", "JR R14", "PUSH R1",
		"POP R1", "TRAP 3", "IOW R1, 2", "IOR R1, 2", "SYNC", "YIELD",
	}
	p, err := Assemble(strings.Join(src, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range src {
		w, ok := p.WordAt(uint32(4 * i))
		if !ok {
			t.Fatalf("no word for %q", want)
		}
		got := Disassemble(w)
		if normalise(got) != normalise(want) {
			t.Errorf("line %d: %q -> %q", i, want, got)
		}
	}
}

func normalise(s string) string {
	s = strings.ReplaceAll(s, " ", "")
	s = strings.ReplaceAll(s, "+", "")
	return strings.ToUpper(s)
}

func TestMemOperandWithSymbolOffset(t *testing.T) {
	c := run(t, `
.equ BASE, 0x4000
.equ OFF, 8
	LDI R1, BASE
	LDI R2, 77
	ST  R2, [R1+OFF]
	LD  R3, [R1+OFF]
	LD  R4, [R1+OFF-4]
	HALT
.org BASE
	.word 1, 2, 3
`, 100)
	if c.Status() != thor.StatusHalted {
		t.Fatalf("status = %v (%v)", c.Status(), c.Detection())
	}
	if c.Regs[3] != 77 {
		t.Fatalf("R3 = %d", c.Regs[3])
	}
	if c.Regs[4] != 2 { // BASE+4 holds 2
		t.Fatalf("R4 = %d", c.Regs[4])
	}
}

func TestNegativeMemOffset(t *testing.T) {
	c := run(t, `
	LDI R1, 0x8004
	LDI R2, 5
	ST  R2, [R1-4]
	LD  R3, [R1-4]
	HALT
`, 100)
	if c.Regs[3] != 5 {
		t.Fatalf("R3 = %d", c.Regs[3])
	}
}
