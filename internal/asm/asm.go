// Package asm implements a two-pass assembler for the thor ISA. GOOFI's
// workloads (paper §3.2) are written in this assembly language, assembled to
// memory images, and downloaded to the target by the test card.
//
// Syntax overview:
//
//	; full-line or trailing comment (also # and //)
//	.org  0x4000          ; move the location counter
//	.word 1, 0x2, sym     ; emit 32-bit data words
//	.space 64             ; reserve zeroed bytes
//	.equ  N, 16           ; define a constant
//	loop:                 ; label
//	    LDI  R1, N        ; immediates: decimal, hex, 'c', symbols
//	    LD   R2, [R1+4]   ; memory operands: [Rn], [Rn+imm], [Rn-imm]
//	    ADD  R2, R2, R1
//	    BNE  loop         ; branch targets: labels or literal word offsets
//	    RET               ; pseudo-instruction for JR LR
package asm

import (
	"fmt"
	"sort"
	"strings"

	"goofi/internal/thor"
)

// Segment is a contiguous run of words at a fixed byte address.
type Segment struct {
	Addr  uint32
	Words []uint32
}

// Program is the output of the assembler.
type Program struct {
	// Segments hold the code and data in ascending address order.
	Segments []Segment
	// Symbols maps every label and .equ constant to its value.
	Symbols map[string]uint32
	// Size is one past the highest byte written.
	Size uint32
}

// Error reports an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// WordAt returns the word assembled at the given byte address, if any.
func (p *Program) WordAt(addr uint32) (uint32, bool) {
	for _, seg := range p.Segments {
		end := seg.Addr + uint32(4*len(seg.Words))
		if addr >= seg.Addr && addr < end && (addr-seg.Addr)%4 == 0 {
			return seg.Words[(addr-seg.Addr)/4], true
		}
	}
	return 0, false
}

// Symbol returns the value of a symbol.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

type line struct {
	num   int
	label string
	op    string   // directive (with dot) or mnemonic, upper-cased
	args  []string // comma-separated operand texts
}

type assembler struct {
	lines   []line
	symbols map[string]uint32
	words   map[uint32]uint32 // byte address -> word
	pc      uint32
	maxEnd  uint32
	ops     map[string]thor.Op
}

// Assemble translates source text into a Program.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		symbols: make(map[string]uint32),
		words:   make(map[uint32]uint32),
		ops:     thor.Mnemonics(),
	}
	if err := a.scan(src); err != nil {
		return nil, err
	}
	if err := a.pass(false); err != nil { // pass 1: addresses and labels
		return nil, err
	}
	a.pc = 0
	if err := a.pass(true); err != nil { // pass 2: encoding
		return nil, err
	}
	return a.emit(), nil
}

// scan splits the source into structured lines.
func (a *assembler) scan(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		var ln line
		ln.num = num
		// Labels: everything up to the first ':' when it precedes any space
		// in the remaining text.
		if colon := strings.IndexByte(text, ':'); colon >= 0 {
			candidate := strings.TrimSpace(text[:colon])
			if isSymbolName(candidate) {
				ln.label = candidate
				text = strings.TrimSpace(text[colon+1:])
			}
		}
		if text != "" {
			fields := strings.SplitN(text, " ", 2)
			ln.op = strings.ToUpper(strings.TrimSpace(fields[0]))
			if len(fields) == 2 {
				for _, arg := range splitArgs(fields[1]) {
					ln.args = append(ln.args, strings.TrimSpace(arg))
				}
			}
		}
		a.lines = append(a.lines, ln)
	}
	return nil
}

func stripComment(s string) string {
	inChar := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\'' {
			inChar = !inChar
			continue
		}
		if inChar {
			continue
		}
		if c == ';' || c == '#' {
			return s[:i]
		}
		if c == '/' && i+1 < len(s) && s[i+1] == '/' {
			return s[:i]
		}
	}
	return s
}

// splitArgs splits on commas that are not inside character literals.
func splitArgs(s string) []string {
	var (
		out   []string
		start int
	)
	inChar := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			inChar = !inChar
		case ',':
			if !inChar {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func isSymbolName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	// A bare register name cannot be a label.
	if _, isReg := parseRegName(s); isReg {
		return false
	}
	return true
}

func (a *assembler) errf(n int, format string, args ...any) error {
	return &Error{Line: n, Msg: fmt.Sprintf(format, args...)}
}

// pass walks all lines updating the location counter; when encode is true
// it also resolves operands and emits machine words.
func (a *assembler) pass(encode bool) error {
	for _, ln := range a.lines {
		if ln.label != "" {
			if !encode {
				if _, dup := a.symbols[ln.label]; dup {
					return a.errf(ln.num, "duplicate symbol %q", ln.label)
				}
				a.symbols[ln.label] = a.pc
			}
		}
		if ln.op == "" {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(ln.op, "."):
			err = a.directive(ln, encode)
		default:
			err = a.instruction(ln, encode)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) directive(ln line, encode bool) error {
	switch ln.op {
	case ".ORG":
		if len(ln.args) != 1 {
			return a.errf(ln.num, ".org takes one argument")
		}
		v, err := a.evalConst(ln.num, ln.args[0])
		if err != nil {
			return err
		}
		if v%4 != 0 {
			return a.errf(ln.num, ".org address %#x not word-aligned", v)
		}
		a.pc = v
	case ".WORD":
		if len(ln.args) == 0 {
			return a.errf(ln.num, ".word needs at least one value")
		}
		for _, arg := range ln.args {
			if encode {
				v, err := a.evalExpr(ln.num, arg)
				if err != nil {
					return err
				}
				a.put(ln.num, uint32(v))
			}
			a.advance(4)
		}
		return nil
	case ".SPACE":
		if len(ln.args) != 1 {
			return a.errf(ln.num, ".space takes one argument")
		}
		n, err := a.evalConst(ln.num, ln.args[0])
		if err != nil {
			return err
		}
		if n%4 != 0 {
			return a.errf(ln.num, ".space size %d not a multiple of 4", n)
		}
		a.advance(n)
	case ".EQU":
		if len(ln.args) != 2 {
			return a.errf(ln.num, ".equ takes name, value")
		}
		name := ln.args[0]
		if !isSymbolName(name) {
			return a.errf(ln.num, "invalid constant name %q", name)
		}
		if !encode {
			if _, dup := a.symbols[name]; dup {
				return a.errf(ln.num, "duplicate symbol %q", name)
			}
			v, err := a.evalConst(ln.num, ln.args[1])
			if err != nil {
				return err
			}
			a.symbols[name] = v
		}
	default:
		return a.errf(ln.num, "unknown directive %s", ln.op)
	}
	return nil
}

func (a *assembler) advance(n uint32) {
	a.pc += n
	if a.pc > a.maxEnd {
		a.maxEnd = a.pc
	}
}

func (a *assembler) put(num int, w uint32) {
	a.words[a.pc] = w
}

// emit groups the sparse word map into contiguous segments.
func (a *assembler) emit() *Program {
	addrs := make([]uint32, 0, len(a.words))
	for addr := range a.words {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	p := &Program{Symbols: a.symbols, Size: a.maxEnd}
	for _, addr := range addrs {
		n := len(p.Segments)
		if n > 0 {
			seg := &p.Segments[n-1]
			if seg.Addr+uint32(4*len(seg.Words)) == addr {
				seg.Words = append(seg.Words, a.words[addr])
				continue
			}
		}
		p.Segments = append(p.Segments, Segment{Addr: addr, Words: []uint32{a.words[addr]}})
	}
	return p
}
