package asm

import (
	"fmt"
	"strconv"
	"strings"

	"goofi/internal/thor"
)

// parseRegName recognises R0..R15 and the SP/LR aliases.
func parseRegName(s string) (int, bool) {
	switch strings.ToUpper(s) {
	case "SP":
		return thor.RegSP, true
	case "LR":
		return thor.RegLR, true
	}
	up := strings.ToUpper(s)
	if !strings.HasPrefix(up, "R") {
		return 0, false
	}
	n, err := strconv.Atoi(up[1:])
	if err != nil || n < 0 || n >= thor.NumRegs {
		return 0, false
	}
	return n, true
}

func (a *assembler) reg(num int, s string) (int, error) {
	r, ok := parseRegName(strings.TrimSpace(s))
	if !ok {
		return 0, a.errf(num, "expected register, got %q", s)
	}
	return r, nil
}

// evalConst evaluates an expression during pass 1, where every symbol used
// must already be defined (needed by .org/.space/.equ).
func (a *assembler) evalConst(num int, s string) (uint32, error) {
	v, err := a.evalExpr(num, s)
	if err != nil {
		return 0, err
	}
	return uint32(v), nil
}

// evalExpr evaluates numeric operands: literals, character constants,
// symbols, unary minus, and binary +/- between terms.
func (a *assembler) evalExpr(num int, s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf(num, "empty expression")
	}
	// Scan left to right over +/- separated terms, honouring a leading sign.
	total := int64(0)
	sign := int64(1)
	i := 0
	first := true
	for i < len(s) {
		switch s[i] {
		case '+':
			sign = 1
			i++
			continue
		case '-':
			sign = -1
			i++
			continue
		case ' ', '\t':
			i++
			continue
		}
		j := i
		if s[j] == '\'' { // character constant
			j++
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				return 0, a.errf(num, "unterminated character constant in %q", s)
			}
			j++
		} else {
			for j < len(s) && s[j] != '+' && s[j] != '-' && s[j] != ' ' && s[j] != '\t' {
				j++
			}
		}
		term, err := a.evalTerm(num, s[i:j])
		if err != nil {
			return 0, err
		}
		total += sign * term
		sign = 1
		first = false
		i = j
	}
	if first {
		return 0, a.errf(num, "malformed expression %q", s)
	}
	return total, nil
}

func (a *assembler) evalTerm(num int, s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf(num, "empty term")
	}
	// Character constant.
	if strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") && len(s) >= 3 {
		inner := s[1 : len(s)-1]
		if len(inner) != 1 {
			return 0, a.errf(num, "character constant %q must hold one byte", s)
		}
		return int64(inner[0]), nil
	}
	// Numeric literal (hex, binary, octal, decimal via ParseInt base 0).
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return int64(v), nil
	}
	// Symbol.
	if v, ok := a.symbols[s]; ok {
		return int64(v), nil
	}
	if isSymbolName(s) {
		return 0, a.errf(num, "undefined symbol %q", s)
	}
	return 0, a.errf(num, "malformed operand %q", s)
}

// memOperand parses "[Rn]", "[Rn+expr]" or "[Rn-expr]".
func (a *assembler) memOperand(num int, s string) (reg int, off int64, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, a.errf(num, "expected memory operand [Rn+off], got %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	// Find the end of the register name.
	sep := strings.IndexAny(inner, "+-")
	regPart := inner
	var offPart string
	if sep > 0 {
		regPart = strings.TrimSpace(inner[:sep])
		offPart = inner[sep:] // keep the sign
	}
	r, ok := parseRegName(regPart)
	if !ok {
		return 0, 0, a.errf(num, "bad base register in %q", s)
	}
	if offPart != "" {
		off, err = a.evalExpr(num, offPart)
		if err != nil {
			return 0, 0, err
		}
	}
	return r, off, nil
}

// instruction assembles one mnemonic line. During pass 1 it only advances
// the location counter (every instruction is exactly one word).
func (a *assembler) instruction(ln line, encode bool) error {
	defer a.advance(4)
	if !encode {
		// Validate the mnemonic early so pass 1 reports unknown ops.
		if _, ok := a.ops[ln.op]; !ok && ln.op != "RET" && ln.op != "CALL" {
			return a.errf(ln.num, "unknown instruction %q", ln.op)
		}
		return nil
	}

	// Pseudo-instructions.
	op := ln.op
	args := ln.args
	switch op {
	case "RET":
		if len(args) != 0 {
			return a.errf(ln.num, "RET takes no operands")
		}
		op, args = "JR", []string{"LR"}
	case "CALL":
		op = "JAL"
	}

	code, ok := a.ops[op]
	if !ok {
		return a.errf(ln.num, "unknown instruction %q", op)
	}

	in := thor.Instr{Op: code}
	need := func(n int) error {
		if len(args) != n {
			return a.errf(ln.num, "%s takes %d operand(s), got %d", op, n, len(args))
		}
		return nil
	}
	var err error
	switch code {
	case thor.OpNOP, thor.OpHALT, thor.OpSYNC, thor.OpYIELD:
		if err = need(0); err != nil {
			return err
		}
	case thor.OpMOV, thor.OpCMP:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.reg(ln.num, args[0]); err != nil {
			return err
		}
		if in.Rs, err = a.reg(ln.num, args[1]); err != nil {
			return err
		}
	case thor.OpLDI, thor.OpLUI:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.reg(ln.num, args[0]); err != nil {
			return err
		}
		v, err := a.evalExpr(ln.num, args[1])
		if err != nil {
			return err
		}
		in.Imm = int32(v)
	case thor.OpADD, thor.OpSUB, thor.OpMUL, thor.OpDIV, thor.OpAND,
		thor.OpOR, thor.OpXOR, thor.OpSHL, thor.OpSHR, thor.OpSAR:
		if err = need(3); err != nil {
			return err
		}
		if in.Rd, err = a.reg(ln.num, args[0]); err != nil {
			return err
		}
		if in.Rs, err = a.reg(ln.num, args[1]); err != nil {
			return err
		}
		if in.Rt, err = a.reg(ln.num, args[2]); err != nil {
			return err
		}
	case thor.OpADDI, thor.OpSUBI:
		if err = need(3); err != nil {
			return err
		}
		if in.Rd, err = a.reg(ln.num, args[0]); err != nil {
			return err
		}
		if in.Rs, err = a.reg(ln.num, args[1]); err != nil {
			return err
		}
		v, err := a.evalExpr(ln.num, args[2])
		if err != nil {
			return err
		}
		in.Imm = int32(v)
	case thor.OpCMPI:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.reg(ln.num, args[0]); err != nil {
			return err
		}
		v, err := a.evalExpr(ln.num, args[1])
		if err != nil {
			return err
		}
		in.Imm = int32(v)
	case thor.OpLD, thor.OpST, thor.OpLDB, thor.OpSTB:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.reg(ln.num, args[0]); err != nil {
			return err
		}
		r, off, err := a.memOperand(ln.num, args[1])
		if err != nil {
			return err
		}
		in.Rs = r
		in.Imm = int32(off)
	case thor.OpBEQ, thor.OpBNE, thor.OpBLT, thor.OpBGE,
		thor.OpBGT, thor.OpBLE, thor.OpBRA, thor.OpJAL:
		if err = need(1); err != nil {
			return err
		}
		off, err := a.branchOffset(ln.num, args[0])
		if err != nil {
			return err
		}
		in.Imm = off
	case thor.OpJR, thor.OpPUSH, thor.OpPOP:
		if err = need(1); err != nil {
			return err
		}
		if in.Rd, err = a.reg(ln.num, args[0]); err != nil {
			return err
		}
	case thor.OpTRAP:
		if err = need(1); err != nil {
			return err
		}
		v, err := a.evalExpr(ln.num, args[0])
		if err != nil {
			return err
		}
		in.Imm = int32(v)
	case thor.OpIOW, thor.OpIOR:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.reg(ln.num, args[0]); err != nil {
			return err
		}
		v, err := a.evalExpr(ln.num, args[1])
		if err != nil {
			return err
		}
		in.Imm = int32(v)
	default:
		return a.errf(ln.num, "unhandled opcode %v", code)
	}

	w, err := thor.Encode(in)
	if err != nil {
		return a.errf(ln.num, "%v", err)
	}
	a.put(ln.num, w)
	return nil
}

// branchOffset resolves a branch target: a known label becomes a
// PC-relative word offset; a bare number is taken as an already-relative
// word offset.
func (a *assembler) branchOffset(num int, s string) (int32, error) {
	s = strings.TrimSpace(s)
	if v, ok := a.symbols[s]; ok {
		delta := int64(v) - int64(a.pc) - 4
		if delta%4 != 0 {
			return 0, a.errf(num, "branch target %q not word-aligned", s)
		}
		return int32(delta / 4), nil
	}
	if isSymbolName(s) {
		return 0, a.errf(num, "undefined label %q", s)
	}
	v, err := a.evalExpr(num, s)
	if err != nil {
		return 0, err
	}
	return int32(v), nil
}

// Disassemble renders a machine word as assembly text, used by listings and
// the detail-mode trace output.
func Disassemble(w uint32) string {
	in, err := thor.Decode(w)
	if err != nil {
		return fmt.Sprintf(".word %#08x", w)
	}
	return in.String()
}
