package preinject

import (
	"context"
	"math/rand"
	"testing"

	"goofi/internal/analysis"
	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/faultmodel"
	"goofi/internal/target"
	"goofi/internal/workload"
)

func analyze(t *testing.T, w workload.Spec) *Analysis {
	t.Helper()
	ops := target.NewDefaultThorTarget()
	a, err := Analyze(ops, w)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeBasics(t *testing.T) {
	a := analyze(t, workload.BubbleSort())
	if a.MaxCycle() == 0 {
		t.Fatal("no cycles recorded")
	}
	// R7 holds the array base pointer and is read throughout the sort:
	// it must be live early in the run.
	r7 := faultmodel.Location{Domain: faultmodel.DomainScan, Chain: "internal.core", Bit: 7 * 32}
	if !a.Live(r7, 100) {
		t.Fatal("array base register should be live mid-sort")
	}
	// After the workload ends nothing is live.
	if a.Live(r7, a.MaxCycle()+10) {
		t.Fatal("register live after termination")
	}
	// R11 is never used by the sort: dead at all times.
	r11 := faultmodel.Location{Domain: faultmodel.DomainScan, Chain: "internal.core", Bit: 11 * 32}
	if a.Live(r11, 100) {
		t.Fatal("unused register reported live")
	}
}

func TestLiveMemory(t *testing.T) {
	a := analyze(t, workload.BubbleSort())
	// The sorted array is read repeatedly during the sort.
	arr := faultmodel.Location{Domain: faultmodel.DomainMemory, Addr: 0x4000, MemBit: 0}
	if !a.Live(arr, 50) {
		t.Fatal("array word should be live during the sort")
	}
	// A word the workload never touches is dead.
	dead := faultmodel.Location{Domain: faultmodel.DomainMemory, Addr: 0x6000, MemBit: 0}
	if a.Live(dead, 50) {
		t.Fatal("untouched word reported live")
	}
}

func TestLiveReadModifyWrite(t *testing.T) {
	// A location whose next access both reads and writes (e.g. the loop
	// counter in ADDI R2, R2, 1) counts as live: the read comes first.
	a := analyze(t, workload.BubbleSort())
	r2 := faultmodel.Location{Domain: faultmodel.DomainScan, Chain: "internal.core", Bit: 2 * 32}
	if !a.Live(r2, 30) {
		t.Fatal("loop counter should be live")
	}
}

func TestLiveUnknownLocationsConservative(t *testing.T) {
	a := analyze(t, workload.BubbleSort())
	cache := faultmodel.Location{Domain: faultmodel.DomainScan, Chain: "internal.dcache", Bit: 5}
	if !a.Live(cache, 100) {
		t.Fatal("cache locations must be conservatively live")
	}
	psw := faultmodel.Location{Domain: faultmodel.DomainScan, Chain: "internal.core", Bit: 16*32 + 33}
	if !a.Live(psw, 100) {
		t.Fatal("non-register core fields must be conservatively live")
	}
}

func TestLiveFraction(t *testing.T) {
	a := analyze(t, workload.BubbleSort())
	locs, err := faultmodel.Filter("chain:internal.core").Resolve(newOps(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	frac := a.LiveFraction(rng, locs, 10, a.MaxCycle()-10, 2000)
	// The sort uses roughly half the register file; the live fraction must
	// be strictly between 0 and 1.
	if frac <= 0.05 || frac >= 0.95 {
		t.Fatalf("live fraction = %f", frac)
	}
	if a.LiveFraction(rng, nil, 0, 10, 10) != 0 {
		t.Fatal("empty location set should give 0")
	}
}

func newOps(t *testing.T) *target.ThorTarget {
	t.Helper()
	ops := target.NewDefaultThorTarget()
	if err := ops.InitTestCard(); err != nil {
		t.Fatal(err)
	}
	return ops
}

func TestPlannerPrefersLivePlans(t *testing.T) {
	a := analyze(t, workload.BubbleSort())
	locs, err := faultmodel.Filter("chain:internal.core").Resolve(newOps(t))
	if err != nil {
		t.Fatal(err)
	}
	p := &Planner{Analysis: a, Model: faultmodel.Model{Kind: faultmodel.Transient}}
	rng := rand.New(rand.NewSource(6))
	liveCount := 0
	const n = 50
	for i := 0; i < n; i++ {
		plan, err := p.Plan(rng, locs, 10, a.MaxCycle()-10, a.MaxCycle())
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Injections) != 1 {
			t.Fatalf("plan = %+v", plan)
		}
		if a.Live(plan.Injections[0].Loc, plan.Injections[0].Time) {
			liveCount++
		}
	}
	if liveCount < n*9/10 {
		t.Fatalf("only %d/%d plans hit live locations", liveCount, n)
	}
}

// The headline E6 result: a campaign with pre-injection analysis yields a
// markedly higher effective-error rate than the plain campaign.
func TestPreInjectionImprovesEffectiveness(t *testing.T) {
	runWith := func(name string, usePlanner bool) analysis.Report {
		ops := target.NewDefaultThorTarget()
		store, err := dbase.NewMemoryStore()
		if err != nil {
			t.Fatal(err)
		}
		if err := core.RegisterTarget(store, ops, "test"); err != nil {
			t.Fatal(err)
		}
		c := core.Campaign{
			Name:           name,
			Workload:       workload.BubbleSort(),
			Technique:      core.TechSCIFI,
			Model:          faultmodel.Model{Kind: faultmodel.Transient},
			LocationFilter: "chain:internal.core",
			NExperiments:   40,
			Seed:           11,
			InjectMinTime:  10,
			InjectMaxTime:  1400,
		}
		r := core.NewRunner(ops, store, c)
		if usePlanner {
			a, err := Analyze(target.NewDefaultThorTarget(), c.Workload)
			if err != nil {
				t.Fatal(err)
			}
			p := &Planner{Analysis: a, Model: c.Model}
			r.PlanFunc = p.Plan
		}
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		rep, err := analysis.Classify(store, name)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := runWith("pre-plain", false)
	live := runWith("pre-live", true)
	t.Logf("plain: eff=%d/%d; live: eff=%d/%d",
		plain.Effective, plain.Total, live.Effective, live.Total)
	if live.Effective <= plain.Effective {
		t.Fatalf("pre-injection analysis did not raise effectiveness: %d vs %d",
			live.Effective, plain.Effective)
	}
}
