// Package preinject implements the pre-injection analysis the paper lists as
// a planned extension (§4): "determine when registers and other fault
// injection locations hold live data. Injecting a fault into a location that
// does not hold live data serves no purpose, since the fault will be
// overwritten."
//
// The analysis performs one instrumented reference execution of the
// workload, recording every register and memory access with its direction.
// A location is *live* at time t when its next access after t is a read —
// only then can an injected bit-flip propagate. Plans restricted to live
// (location, time) pairs raise the effective-error yield per experiment,
// which is exactly the efficiency improvement the extension targets
// (experiment E6).
package preinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"goofi/internal/faultmodel"
	"goofi/internal/target"
	"goofi/internal/thor"
	"goofi/internal/workload"
)

// access is one recorded register or memory access.
type access struct {
	cycle uint64
	read  bool
}

// Analysis holds the liveness tables of one workload execution.
type Analysis struct {
	regAccesses [thor.NumRegs][]access
	memAccesses map[uint32][]access
	// maxCycle is the reference execution's length.
	maxCycle uint64
}

// Analyze performs the instrumented reference run on a fresh target.
func Analyze(ops *target.ThorTarget, w workload.Spec) (*Analysis, error) {
	if err := ops.InitTestCard(); err != nil {
		return nil, fmt.Errorf("preinject: %w", err)
	}
	if err := ops.LoadWorkload(w); err != nil {
		return nil, fmt.Errorf("preinject: %w", err)
	}
	if err := ops.RunWorkload(); err != nil {
		return nil, fmt.Errorf("preinject: %w", err)
	}
	a := &Analysis{memAccesses: make(map[uint32][]access)}
	cpu := ops.System().CPU
	cpu.SetTraceHook(func(rec thor.TraceRecord) {
		for r := 0; r < thor.NumRegs; r++ {
			bit := uint16(1) << uint(r)
			// Reads are recorded before writes: an instruction that both
			// reads and writes a register (e.g. ADDI R1, R1, 1) consumes
			// the old value first.
			if rec.Events.RegsRead&bit != 0 {
				a.regAccesses[r] = append(a.regAccesses[r], access{cycle: rec.Cycle, read: true})
			}
			if rec.Events.RegsWritten&bit != 0 {
				a.regAccesses[r] = append(a.regAccesses[r], access{cycle: rec.Cycle, read: false})
			}
		}
		if rec.Events.MemRead {
			addr := rec.Events.MemAddr &^ 3
			a.memAccesses[addr] = append(a.memAccesses[addr], access{cycle: rec.Cycle, read: true})
		}
		if rec.Events.MemWrite {
			addr := rec.Events.MemAddr &^ 3
			a.memAccesses[addr] = append(a.memAccesses[addr], access{cycle: rec.Cycle, read: false})
		}
	})
	term, err := ops.WaitForTermination(target.TerminationSpec{
		MaxCycles:     w.MaxCycles,
		MaxIterations: w.MaxIterations,
	})
	cpu.SetTraceHook(nil)
	if err != nil {
		return nil, fmt.Errorf("preinject: %w", err)
	}
	a.maxCycle = term.Cycles
	return a, nil
}

// MaxCycle returns the reference execution length in instructions.
func (a *Analysis) MaxCycle() uint64 { return a.maxCycle }

// Live reports whether the location holds live data at time t: whether the
// next access strictly after t reads the old value. Locations the analysis
// cannot see (cache arrays, pipeline latches, pins) are conservatively
// reported live.
func (a *Analysis) Live(loc faultmodel.Location, t uint64) bool {
	switch loc.Domain {
	case faultmodel.DomainMemory:
		return nextIsRead(a.memAccesses[loc.Addr&^3], t)
	case faultmodel.DomainScan:
		reg, ok := coreRegisterOf(loc)
		if !ok {
			return true // not a register field: conservatively live
		}
		return nextIsRead(a.regAccesses[reg], t)
	default:
		return true
	}
}

// nextIsRead finds the first access after cycle t and reports whether it is
// a read. No further access means the value is dead.
func nextIsRead(accs []access, t uint64) bool {
	// Accesses are recorded in cycle order; binary search for the first
	// access with cycle >= t (a breakpoint at t halts before the
	// instruction that executes at cycle t).
	i := sort.Search(len(accs), func(i int) bool { return accs[i].cycle >= t })
	if i == len(accs) {
		return false
	}
	return accs[i].read
}

// coreRegisterOf maps a scan location in the core chain's register file to
// its register index. The register file occupies the first 16 × 32 bits of
// the core chain (see thor.BuildTAP).
func coreRegisterOf(loc faultmodel.Location) (int, bool) {
	if !strings.HasPrefix(loc.Chain, "internal.core") {
		return 0, false
	}
	if loc.Bit < 0 || loc.Bit >= thor.NumRegs*32 {
		return 0, false
	}
	return loc.Bit / 32, true
}

// Planner wraps a fault model so that sampled plans only hit live
// (location, time) pairs. It plugs into core.Runner.PlanFunc.
type Planner struct {
	Analysis *Analysis
	Model    faultmodel.Model
	// MaxAttempts bounds the resampling; 0 means DefaultMaxAttempts.
	MaxAttempts int
}

// DefaultMaxAttempts bounds live-plan resampling.
const DefaultMaxAttempts = 500

// Plan samples plans from the model until one whose first injection hits a
// live location, or MaxAttempts is exhausted (the last sample is returned
// then, so campaigns degrade gracefully on workloads with little liveness).
func (p *Planner) Plan(rng *rand.Rand, locs []faultmodel.Location, minTime, maxTime, horizon uint64) (faultmodel.Plan, error) {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	var (
		plan faultmodel.Plan
		err  error
	)
	for i := 0; i < attempts; i++ {
		plan, err = p.Model.Plan(rng, locs, minTime, maxTime, horizon)
		if err != nil {
			return faultmodel.Plan{}, err
		}
		if len(plan.Injections) == 0 {
			continue
		}
		inj := plan.Injections[0]
		if p.Analysis.Live(inj.Loc, inj.Time) {
			return plan, nil
		}
	}
	return plan, nil
}

// LiveFraction estimates, by uniform sampling with the given rng, the
// fraction of (location, time) pairs that hold live data — the headline
// number of the pre-injection analysis (how much injection effort the
// extension saves).
func (a *Analysis) LiveFraction(rng *rand.Rand, locs []faultmodel.Location, minTime, maxTime uint64, samples int) float64 {
	if samples <= 0 || len(locs) == 0 || maxTime < minTime {
		return 0
	}
	live := 0
	for i := 0; i < samples; i++ {
		loc := locs[rng.Intn(len(locs))]
		t := minTime + uint64(rng.Int63n(int64(maxTime-minTime+1)))
		if a.Live(loc, t) {
			live++
		}
	}
	return float64(live) / float64(samples)
}
