package envsim

import (
	"reflect"
	"testing"
)

func TestRegistry(t *testing.T) {
	RegisterBuiltins()
	names := Names()
	want := map[string]bool{"echo": true, "jet-engine": true, "pendulum": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing simulators: %v (have %v)", want, names)
	}
	if _, err := New("echo"); err != nil {
		t.Fatal(err)
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown simulator should fail")
	}
	// Duplicate registration is rejected.
	if err := Register("echo", func() Simulator { return NewEcho() }); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	// Fresh names register fine.
	if err := Register("custom-test-sim", func() Simulator { return NewEcho() }); err != nil {
		t.Fatal(err)
	}
}

func TestEcho(t *testing.T) {
	e := NewEcho()
	out := e.Step([]uint32{1, 2, 3})
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Fatalf("echo = %v", out)
	}
	e.Reset() // must not panic
	if e.Name() != "echo" {
		t.Fatal("name")
	}
}

func TestJetEngineConvergesUnderConstantCommand(t *testing.T) {
	j := NewJetEngine()
	var speed uint32
	for i := 0; i < 200; i++ {
		in := j.Step([]uint32{400})
		speed = in[0]
	}
	// Steady state for cmd c: c*gain/8 = speed/drag => speed = 12*c = 4800.
	if speed < 4500 || speed > 5100 {
		t.Fatalf("steady speed = %d", speed)
	}
}

func TestJetEngineSetpointStep(t *testing.T) {
	j := NewJetEngine()
	var set uint32
	for i := 0; i < JetStepChange+2; i++ {
		in := j.Step([]uint32{0})
		set = in[1]
	}
	if set != JetSetpointHigh {
		t.Fatalf("setpoint after step = %d", set)
	}
	j.Reset()
	in := j.Step([]uint32{0})
	if in[1] != JetSetpointLow {
		t.Fatalf("setpoint after reset = %d", in[1])
	}
}

func TestJetEngineClampsAndEmptyOutputs(t *testing.T) {
	j := NewJetEngine()
	// Negative and huge commands are clamped, speed stays within bounds.
	for i := 0; i < 300; i++ {
		in := j.Step([]uint32{0xFFFFFFFF}) // -1 as int32 -> clamped to 0
		if int32(in[0]) < 0 || in[0] > JetMaxSpeed {
			t.Fatalf("speed out of range: %d", in[0])
		}
	}
	j.Reset()
	for i := 0; i < 300; i++ {
		in := j.Step(nil)
		if in[0] > JetMaxSpeed {
			t.Fatalf("speed out of range: %d", in[0])
		}
	}
	j.Reset()
	for i := 0; i < 300; i++ {
		in := j.Step([]uint32{4095})
		if in[0] > JetMaxSpeed {
			t.Fatalf("speed exceeded clamp: %d", in[0])
		}
	}
}

func TestJetEngineDeterminism(t *testing.T) {
	run := func() []uint32 {
		j := NewJetEngine()
		var last []uint32
		for i := 0; i < 100; i++ {
			last = j.Step([]uint32{uint32(i * 13 % 4096)})
		}
		return last
	}
	a, b := run(), run()
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestPendulumRespondsToForce(t *testing.T) {
	p := NewPendulum()
	// No force: the pole falls (angle grows).
	for i := 0; i < 50; i++ {
		p.Step([]uint32{0})
	}
	fallen := p.Angle()
	if fallen <= 120 {
		t.Fatalf("pole did not fall: %d", fallen)
	}
	// A stabilising proportional controller keeps it bounded.
	p.Reset()
	var maxAbs int64
	for i := 0; i < 300; i++ {
		in := p.Step([]uint32{uint32(int32(p.Angle()))}) // force = angle
		a := int64(int32(in[0]))
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs >= fallen {
		t.Fatalf("controlled pendulum worse than free fall: %d vs %d", maxAbs, fallen)
	}
	if p.Name() != "pendulum" {
		t.Fatal("name")
	}
}

func TestPendulumForceClamp(t *testing.T) {
	p := NewPendulum()
	for i := 0; i < 1000; i++ {
		neg := int32(-1 << 30)
		in := p.Step([]uint32{uint32(neg)})
		a := int64(int32(in[0]))
		if a > 1<<20 || a < -(1<<20) {
			t.Fatalf("angle escaped clamp: %d", a)
		}
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(NewEcho())
	r.Step([]uint32{1})
	r.Step([]uint32{2, 3})
	h := r.History()
	if len(h) != 2 || h[0][0] != 1 || h[1][1] != 3 {
		t.Fatalf("history = %v", h)
	}
	// History is a deep copy.
	h[0][0] = 99
	if r.History()[0][0] != 1 {
		t.Fatal("history aliased internal state")
	}
	r.Reset()
	if len(r.History()) != 0 {
		t.Fatal("reset did not clear history")
	}
	if r.Name() != "echo" {
		t.Fatal("recorder name should delegate")
	}
}

func TestStatefulSnapshots(t *testing.T) {
	// Jet engine: state survives a save/restore round trip mid-trajectory.
	j := NewJetEngine()
	for i := 0; i < 50; i++ {
		j.Step([]uint32{300})
	}
	snap := j.SaveState()
	want := j.Step([]uint32{300})
	for i := 0; i < 20; i++ {
		j.Step([]uint32{4095}) // diverge hard
	}
	if err := j.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	got := j.Step([]uint32{300})
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("restored continuation %v != %v", got, want)
	}
	if err := j.RestoreState("wrong type"); err == nil {
		t.Fatal("bad state should fail")
	}

	// Pendulum.
	p := NewPendulum()
	for i := 0; i < 30; i++ {
		p.Step([]uint32{10})
	}
	psnap := p.SaveState()
	pwant := p.Step([]uint32{10})
	p.Step([]uint32{2000})
	if err := p.RestoreState(psnap); err != nil {
		t.Fatal(err)
	}
	pgot := p.Step([]uint32{10})
	if pgot[0] != pwant[0] || pgot[1] != pwant[1] {
		t.Fatalf("pendulum restore broken: %v != %v", pgot, pwant)
	}
	if err := p.RestoreState(42); err == nil {
		t.Fatal("bad state should fail")
	}

	// Echo is stateless but implements the interface.
	e := NewEcho()
	if err := e.RestoreState(e.SaveState()); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderStateful(t *testing.T) {
	r := NewRecorder(NewJetEngine())
	r.Step([]uint32{100})
	r.Step([]uint32{200})
	snap := r.SaveState()
	r.Step([]uint32{300})
	r.Step([]uint32{400})
	if err := r.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	h := r.History()
	if len(h) != 2 || h[1][0] != 200 {
		t.Fatalf("history after restore = %v", h)
	}
	// The wrapped simulator's state was restored too: continuing from the
	// snapshot twice gives identical trajectories.
	a := r.Step([]uint32{150})
	if err := r.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	b := r.Step([]uint32{150})
	if a[0] != b[0] {
		t.Fatalf("inner state not restored: %v vs %v", a, b)
	}
	if err := r.RestoreState(3.14); err == nil {
		t.Fatal("bad state should fail")
	}
}

// TestRestoreStateRoundTrip pins the checkpoint contract of every built-in
// Stateful simulator: snapshot, diverge, restore, and the simulator must
// produce byte-identical trajectories from the snapshot point — including
// the Recorder's history, which feeds the logged StateVector.
func TestRestoreStateRoundTrip(t *testing.T) {
	RegisterBuiltins()
	for _, name := range []string{"echo", "jet-engine", "pendulum"} {
		t.Run(name, func(t *testing.T) {
			sim, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			rec := NewRecorder(sim)
			rec.Reset()
			step := func(r *Recorder, i int) []uint32 {
				return r.Step([]uint32{uint32(1000 + 17*i), uint32(i)})
			}
			for i := 0; i < 5; i++ {
				step(rec, i)
			}
			snap := rec.SaveState()
			wantHist := rec.History()

			// Reference trajectory from the snapshot point.
			var wantOut [][]uint32
			for i := 5; i < 10; i++ {
				wantOut = append(wantOut, step(rec, i))
			}

			// Diverge hard: different inputs, then a reset for good measure.
			for i := 0; i < 7; i++ {
				rec.Step([]uint32{0xFFFF, 9})
			}
			rec.Reset()

			if err := rec.RestoreState(snap); err != nil {
				t.Fatal(err)
			}
			if got := rec.History(); !reflect.DeepEqual(got, wantHist) {
				t.Fatalf("restored history = %v, want %v", got, wantHist)
			}
			for i := 5; i < 10; i++ {
				if got := step(rec, i); !reflect.DeepEqual(got, wantOut[i-5]) {
					t.Fatalf("step %d after restore = %v, want %v", i, got, wantOut[i-5])
				}
			}
			// The snapshot must survive the restore and further stepping:
			// restoring it a second time replays the same trajectory.
			if err := rec.RestoreState(snap); err != nil {
				t.Fatal(err)
			}
			for i := 5; i < 10; i++ {
				if got := step(rec, i); !reflect.DeepEqual(got, wantOut[i-5]) {
					t.Fatalf("second replay step %d = %v, want %v", i, got, wantOut[i-5])
				}
			}
		})
	}
}

// TestRestoreStateTypeMismatch covers the error paths.
func TestRestoreStateTypeMismatch(t *testing.T) {
	if err := NewJetEngine().RestoreState("bogus"); err == nil {
		t.Error("jet-engine accepted a foreign snapshot")
	}
	if err := NewPendulum().RestoreState(42); err == nil {
		t.Error("pendulum accepted a foreign snapshot")
	}
	if err := NewRecorder(NewEcho()).RestoreState(jetState{}); err == nil {
		t.Error("recorder accepted a foreign snapshot")
	}
}
