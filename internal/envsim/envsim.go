// Package envsim provides the user-supplied environment simulator of the
// GOOFI architecture (paper Fig. 1 and §3.2): a model of the target system's
// physical environment that exchanges data with the workload at the end of
// every workload loop iteration.
//
// At each exchange the tool reads the workload's output memory locations,
// hands them to the simulator's Step, and writes the returned values into
// the workload's input locations before execution resumes.
package envsim

import (
	"fmt"
	"sort"
	"sync"
)

// Simulator models the target system environment.
type Simulator interface {
	// Name identifies the simulator in CampaignData.
	Name() string
	// Step consumes the workload's outputs for this iteration and produces
	// the inputs for the next one.
	Step(outputs []uint32) (inputs []uint32)
	// Reset restores the initial environment state before each experiment.
	Reset()
}

// registry of built-in simulators, keyed by name.
var (
	regMu    sync.RWMutex
	registry = map[string]func() Simulator{}
)

// Register installs a simulator constructor under its name. Registering a
// duplicate name returns an error rather than silently replacing it.
func Register(name string, ctor func() Simulator) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("envsim: simulator %q already registered", name)
	}
	registry[name] = ctor
	return nil
}

// New instantiates a registered simulator.
func New(name string) (Simulator, error) {
	regMu.RLock()
	ctor, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("envsim: unknown simulator %q", name)
	}
	return ctor(), nil
}

// Names lists the registered simulators in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Builtins registers the simulators shipped with the reproduction. It is
// idempotent per process only if called once; callers normally use
// DefaultRegistry instead.
func builtins() map[string]func() Simulator {
	return map[string]func() Simulator{
		"echo":       func() Simulator { return NewEcho() },
		"jet-engine": func() Simulator { return NewJetEngine() },
		"pendulum":   func() Simulator { return NewPendulum() },
	}
}

// RegisterBuiltins installs the built-in simulators, ignoring duplicates so
// it can be called from multiple setup paths.
func RegisterBuiltins() {
	for name, ctor := range builtins() {
		regMu.Lock()
		if _, dup := registry[name]; !dup {
			registry[name] = ctor
		}
		regMu.Unlock()
	}
}

// --- Echo ---

// Echo returns its outputs unchanged as next inputs; useful in tests.
type Echo struct{}

// NewEcho builds an Echo simulator.
func NewEcho() *Echo { return &Echo{} }

// Name implements Simulator.
func (*Echo) Name() string { return "echo" }

// Step implements Simulator.
func (*Echo) Step(outputs []uint32) []uint32 {
	in := make([]uint32, len(outputs))
	copy(in, outputs)
	return in
}

// Reset implements Simulator.
func (*Echo) Reset() {}

// --- Jet engine ---

// JetEngine is a first-order integer model of the jet-engine plant used by
// the companion control-application study (paper ref. [12]): the workload
// commands a throttle, the engine speed follows with lag, and the simulator
// feeds the measured speed and the setpoint back to the workload.
//
// All quantities are scaled integers so the integer-only target can close
// the loop. The model is fully deterministic.
type JetEngine struct {
	speed    int64
	setpoint int64
	step     int
}

// Jet-engine model constants.
const (
	// JetSetpointLow/High are the commanded speeds; the setpoint steps from
	// low to high mid-run to exercise the transient response.
	JetSetpointLow  = 6000
	JetSetpointHigh = 9000
	// jetGain converts throttle command to acceleration; jetDrag is the
	// speed-proportional deceleration divisor.
	jetGain = 12
	jetDrag = 8
	// JetStepChange is the iteration at which the setpoint steps.
	JetStepChange = 40
	// JetMaxSpeed bounds the physical model.
	JetMaxSpeed = 20000
)

// NewJetEngine builds the plant at rest with the low setpoint.
func NewJetEngine() *JetEngine {
	return &JetEngine{speed: 2000, setpoint: JetSetpointLow}
}

// Name implements Simulator.
func (*JetEngine) Name() string { return "jet-engine" }

// Step consumes outputs[0] = throttle command and returns
// [measured speed, setpoint].
func (j *JetEngine) Step(outputs []uint32) []uint32 {
	var cmd int64
	if len(outputs) > 0 {
		cmd = int64(int32(outputs[0]))
	}
	if cmd < 0 {
		cmd = 0
	}
	if cmd > 4095 {
		cmd = 4095
	}
	j.step++
	if j.step == JetStepChange {
		j.setpoint = JetSetpointHigh
	}
	j.speed += cmd*jetGain/8 - j.speed/jetDrag
	if j.speed < 0 {
		j.speed = 0
	}
	if j.speed > JetMaxSpeed {
		j.speed = JetMaxSpeed
	}
	return []uint32{uint32(j.speed), uint32(j.setpoint)}
}

// Reset implements Simulator.
func (j *JetEngine) Reset() {
	j.speed = 2000
	j.setpoint = JetSetpointLow
	j.step = 0
}

// Speed exposes the plant state for assertions in tests and analysis.
func (j *JetEngine) Speed() int64 { return j.speed }

// --- Inverted pendulum ---

// Pendulum is a small second-order integer plant: the workload applies a
// corrective force to keep the pole near upright. Angle and velocity are in
// scaled milliradians.
type Pendulum struct {
	angle    int64 // scaled mrad, positive = falling right
	velocity int64
}

// NewPendulum starts slightly off balance.
func NewPendulum() *Pendulum { return &Pendulum{angle: 120} }

// Name implements Simulator.
func (*Pendulum) Name() string { return "pendulum" }

// Step consumes outputs[0] = signed force command and returns
// [angle, velocity] as two's-complement words.
func (p *Pendulum) Step(outputs []uint32) []uint32 {
	var force int64
	if len(outputs) > 0 {
		force = int64(int32(outputs[0]))
	}
	if force > 2000 {
		force = 2000
	}
	if force < -2000 {
		force = -2000
	}
	// Gravity torque proportional to angle; force opposes it.
	p.velocity += p.angle/8 - force/4
	p.angle += p.velocity / 4
	const limit = 1 << 20
	if p.angle > limit {
		p.angle = limit
	}
	if p.angle < -limit {
		p.angle = -limit
	}
	return []uint32{uint32(int32(p.angle)), uint32(int32(p.velocity))}
}

// Reset implements Simulator.
func (p *Pendulum) Reset() {
	p.angle = 120
	p.velocity = 0
}

// Angle exposes the plant state.
func (p *Pendulum) Angle() int64 { return p.angle }

// --- Recorder ---

// Recorder wraps a simulator and records every output vector the workload
// produced. The campaign runner logs this trace so the analysis phase can
// classify escaped errors of non-terminating workloads by comparing output
// histories against the reference run (paper §3.4, "incorrect results").
type Recorder struct {
	inner   Simulator
	history [][]uint32
}

// NewRecorder wraps inner.
func NewRecorder(inner Simulator) *Recorder { return &Recorder{inner: inner} }

// Name implements Simulator.
func (r *Recorder) Name() string { return r.inner.Name() }

// Step implements Simulator, recording the outputs.
func (r *Recorder) Step(outputs []uint32) []uint32 {
	snap := make([]uint32, len(outputs))
	copy(snap, outputs)
	r.history = append(r.history, snap)
	return r.inner.Step(outputs)
}

// Reset implements Simulator and clears the recording.
func (r *Recorder) Reset() {
	r.inner.Reset()
	r.history = nil
}

// History returns the recorded output vectors in iteration order.
func (r *Recorder) History() [][]uint32 {
	out := make([][]uint32, len(r.history))
	for i, h := range r.history {
		out[i] = append([]uint32(nil), h...)
	}
	return out
}

// Stateful is implemented by simulators whose internal state can be saved
// and restored; checkpointed campaigns need it so that a restored machine
// resumes against the same environment trajectory.
type Stateful interface {
	SaveState() any
	RestoreState(state any) error
}

type jetState struct {
	speed, setpoint int64
	step            int
}

// SaveState implements Stateful.
func (j *JetEngine) SaveState() any {
	return jetState{speed: j.speed, setpoint: j.setpoint, step: j.step}
}

// RestoreState implements Stateful.
func (j *JetEngine) RestoreState(state any) error {
	s, ok := state.(jetState)
	if !ok {
		return fmt.Errorf("envsim: jet-engine cannot restore %T", state)
	}
	j.speed, j.setpoint, j.step = s.speed, s.setpoint, s.step
	return nil
}

type pendulumState struct {
	angle, velocity int64
}

// SaveState implements Stateful.
func (p *Pendulum) SaveState() any {
	return pendulumState{angle: p.angle, velocity: p.velocity}
}

// RestoreState implements Stateful.
func (p *Pendulum) RestoreState(state any) error {
	s, ok := state.(pendulumState)
	if !ok {
		return fmt.Errorf("envsim: pendulum cannot restore %T", state)
	}
	p.angle, p.velocity = s.angle, s.velocity
	return nil
}

// SaveState implements Stateful; Echo has no state.
func (*Echo) SaveState() any { return nil }

// RestoreState implements Stateful.
func (*Echo) RestoreState(any) error { return nil }

type recorderState struct {
	history [][]uint32
	inner   any
}

// SaveState implements Stateful: the recording and, when the wrapped
// simulator is itself Stateful, its state too.
func (r *Recorder) SaveState() any {
	st := recorderState{history: make([][]uint32, len(r.history))}
	for i, h := range r.history {
		st.history[i] = append([]uint32(nil), h...)
	}
	if s, ok := r.inner.(Stateful); ok {
		st.inner = s.SaveState()
	}
	return st
}

// RestoreState implements Stateful.
func (r *Recorder) RestoreState(state any) error {
	st, ok := state.(recorderState)
	if !ok {
		return fmt.Errorf("envsim: recorder cannot restore %T", state)
	}
	r.history = make([][]uint32, len(st.history))
	for i, h := range st.history {
		r.history[i] = append([]uint32(nil), h...)
	}
	if s, ok := r.inner.(Stateful); ok {
		return s.RestoreState(st.inner)
	}
	return nil
}
