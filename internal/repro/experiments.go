package repro

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/faultmodel"
	"goofi/internal/preinject"
	"goofi/internal/sqldb"
	"goofi/internal/target"
	"goofi/internal/workload"
)

// Standard campaign shapes reused by several experiments.

func sortCampaign(name string, n int) core.Campaign {
	return core.Campaign{
		Name:           name,
		Workload:       workload.BubbleSort(),
		Technique:      core.TechSCIFI,
		Model:          faultmodel.Model{Kind: faultmodel.Transient},
		LocationFilter: "chain:internal.core",
		NExperiments:   n,
		Seed:           1,
		InjectMinTime:  10,
		InjectMaxTime:  1400,
	}
}

func controlCampaign(name string, n int) core.Campaign {
	return core.Campaign{
		Name:           name,
		Workload:       workload.Control(),
		Technique:      core.TechSCIFI,
		Model:          faultmodel.Model{Kind: faultmodel.Transient},
		LocationFilter: "chain:internal.core,chain:internal.icache,chain:internal.dcache",
		NExperiments:   n,
		Seed:           2,
		InjectMinTime:  100,
		InjectMaxTime:  3800,
	}
}

// E2DatabaseIntegrity exercises the Fig. 4 schema: foreign keys between the
// three tables, rejection of inconsistent rows, and the parentExperiment
// tracking scenario described in §2.3.
func E2DatabaseIntegrity(w io.Writer) error {
	ops, store, err := newEnv()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "schema (Fig. 4 + normalised extensions):")
	for _, t := range store.DB().Tables() {
		ts, err := store.DB().Schema(t)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-18s %2d columns, PK(%v)", ts.Name, len(ts.Columns), ts.PrimaryKey)
		for _, fk := range ts.ForeignKeys {
			fmt.Fprintf(w, ", FK->%s", fk.RefTable)
		}
		fmt.Fprintln(w)
	}

	// FK rejections.
	err = store.PutCampaign(dbase.CampaignRow{
		CampaignName: "orphan", TestCardName: "no-such-card",
		Workload: "bubblesort", Technique: "scifi", FaultModel: "transient",
		LocationFilter: "x", NExperiments: 1,
	})
	if !errors.Is(err, sqldb.ErrForeignKey) {
		return fmt.Errorf("orphan campaign accepted: %v", err)
	}
	fmt.Fprintln(w, "INSERT of campaign for unknown target: rejected by FK (PASS)")

	err = store.PutExperiment(dbase.ExperimentRow{ExperimentName: "x", CampaignName: "ghost"})
	if !errors.Is(err, sqldb.ErrForeignKey) {
		return fmt.Errorf("orphan experiment accepted: %v", err)
	}
	fmt.Fprintln(w, "INSERT of experiment for unknown campaign: rejected by FK (PASS)")

	// parentExperiment scenario: campaign, experiment E1, detail rerun E2.
	c := sortCampaign("e2", 2)
	r := core.NewRunner(ops, store, c)
	if _, err := r.Run(contextBackground()); err != nil {
		return err
	}
	detailName, err := r.RerunDetail("e2/e0000")
	if err != nil {
		return err
	}
	row, err := store.GetExperiment(detailName)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "detail rerun %q has parentExperiment=%q (PASS)\n",
		detailName, row.ParentExperiment)

	// Deleting the parent while the rerun exists violates the self-FK.
	_, err = store.DB().Exec("DELETE FROM LoggedSystemState WHERE experimentName = 'e2/e0000'")
	if !errors.Is(err, sqldb.ErrForeignKey) {
		return fmt.Errorf("parent delete accepted: %v", err)
	}
	fmt.Fprintln(w, "DELETE of parent experiment with live rerun: rejected by FK (PASS)")
	return nil
}

// E3ControlClassification runs the headline campaign — transient scan-chain
// faults against the jet-engine control application — and prints the §3.4
// outcome taxonomy with per-mechanism breakdown and coverage.
func E3ControlClassification(w io.Writer) error {
	rep, err := ClassifiedCampaign(controlCampaign("e3", 300))
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep)
	if rep.Total != 300 {
		return fmt.Errorf("expected 300 classified experiments, got %d", rep.Total)
	}
	if rep.NonEffective == 0 || rep.Effective == 0 {
		return fmt.Errorf("degenerate outcome distribution: %v", rep.Counts)
	}
	return nil
}

// E4TechniqueComparison runs the same fault budget through SCIFI and
// pre-runtime SWIFI (per the comparison study the paper builds on, ref [10])
// and prints reachability and outcome differences.
func E4TechniqueComparison(w io.Writer) error {
	const n = 200
	scifi := sortCampaign("e4-scifi", n)
	scifi.LocationFilter = "chain:internal.core,chain:internal.icache,chain:internal.dcache"
	swifi := sortCampaign("e4-swifi", n)
	swifi.Technique = core.TechSWIFIPre
	swifi.LocationFilter = "mem:0x0000-0x0140,mem:0x4000-0x4040" // code + data image

	ops := target.NewDefaultThorTarget()
	if err := ops.InitTestCard(); err != nil {
		return err
	}
	scifiLocs, err := scifi.LocationFilter.Resolve(ops)
	if err != nil {
		return err
	}
	swifiLocs, err := swifi.LocationFilter.Resolve(ops)
	if err != nil {
		return err
	}
	// Total reachable state: SCIFI additionally reaches everything SWIFI
	// does (memory is observable/writable via the test card), while SWIFI
	// cannot reach registers, caches or pins.
	fmt.Fprintf(w, "%-22s %10s %10s\n", "", "SCIFI", "SWIFI-pre")
	fmt.Fprintf(w, "%-22s %10d %10d\n", "candidate fault bits", len(scifiLocs), len(swifiLocs))

	repS, err := ClassifiedCampaign(scifi)
	if err != nil {
		return err
	}
	repW, err := ClassifiedCampaign(swifi)
	if err != nil {
		return err
	}
	rows := []struct {
		label string
		s, sw int
	}{
		{"detected", repS.Counts[analysis.OutcomeDetected], repW.Counts[analysis.OutcomeDetected]},
		{"escaped", repS.Counts[analysis.OutcomeEscaped], repW.Counts[analysis.OutcomeEscaped]},
		{"latent", repS.Counts[analysis.OutcomeLatent], repW.Counts[analysis.OutcomeLatent]},
		{"overwritten", repS.Counts[analysis.OutcomeOverwritten], repW.Counts[analysis.OutcomeOverwritten]},
		{"effective", repS.Effective, repW.Effective},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %10d %10d\n", r.label, r.s, r.sw)
	}
	fmt.Fprintf(w, "%-22s %9.1f%% %9.1f%%\n", "coverage", 100*repS.Coverage, 100*repW.Coverage)

	// Shape checks: SCIFI reaches strictly more locations, and the two
	// techniques estimate different coverage (the comparison study's
	// qualitative finding).
	if len(scifiLocs) <= len(swifiLocs) {
		return fmt.Errorf("SCIFI should reach more locations than SWIFI")
	}
	if repS.Coverage == repW.Coverage && repS.Counts[analysis.OutcomeDetected] == repW.Counts[analysis.OutcomeDetected] {
		return fmt.Errorf("techniques produced identical estimates; comparison degenerate")
	}
	return nil
}

// E5DetailMode measures the time overhead of detail mode (§3.3: logging
// after each instruction "increases the time-overhead", which is why it is
// not used for every fault) and demonstrates the error-propagation trace.
func E5DetailMode(w io.Writer) error {
	const n = 15
	normal := sortCampaign("e5-normal", n)
	detail := sortCampaign("e5-detail", n)
	detail.DetailMode = true

	tNormal, err := TimedCampaign(normal)
	if err != nil {
		return err
	}
	tDetail, err := TimedCampaign(detail)
	if err != nil {
		return err
	}
	factor := float64(tDetail) / float64(tNormal)
	fmt.Fprintf(w, "normal mode: %8.2fms for %d experiments\n", ms(tNormal), n)
	fmt.Fprintf(w, "detail mode: %8.2fms for %d experiments\n", ms(tDetail), n)
	fmt.Fprintf(w, "overhead factor: %.1fx\n", factor)
	if factor < 2 {
		return fmt.Errorf("detail mode overhead factor %.2f implausibly low", factor)
	}

	// Propagation trace: rerun an experiment and the reference in detail
	// mode and locate the divergence point.
	ops, store, err := newEnv()
	if err != nil {
		return err
	}
	c := sortCampaign("e5-prop", 5)
	r := core.NewRunner(ops, store, c)
	if _, err := r.Run(contextBackground()); err != nil {
		return err
	}
	refDetail, err := r.RerunDetail(c.Name + core.RefSuffix)
	if err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		expName := fmt.Sprintf("%s/e%04d", c.Name, i)
		detailName, err := r.RerunDetail(expName)
		if err != nil {
			return err
		}
		refRow, err := store.GetExperiment(refDetail)
		if err != nil {
			return err
		}
		expRow, err := store.GetExperiment(detailName)
		if err != nil {
			return err
		}
		refSV, err := core.DecodeStateVector(refRow.StateVector)
		if err != nil {
			return err
		}
		expSV, err := core.DecodeStateVector(expRow.StateVector)
		if err != nil {
			return err
		}
		pr, err := analysis.ComparePropagation(refSV, expSV)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "propagation %s: %s\n", expName, pr)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// E6PreInjection compares a plain campaign with one whose plans are
// restricted to live locations (the §4 pre-injection analysis extension) and
// reports the effectiveness improvement.
func E6PreInjection(w io.Writer) error {
	const n = 200
	plain := sortCampaign("e6-plain", n)
	live := sortCampaign("e6-live", n)

	a, err := preinject.Analyze(target.NewDefaultThorTarget(), plain.Workload)
	if err != nil {
		return err
	}
	ops := target.NewDefaultThorTarget()
	if err := ops.InitTestCard(); err != nil {
		return err
	}
	locs, err := plain.LocationFilter.Resolve(ops)
	if err != nil {
		return err
	}
	frac := a.LiveFraction(rand.New(rand.NewSource(9)), locs, plain.InjectMinTime, plain.InjectMaxTime, 4000)
	fmt.Fprintf(w, "live fraction of sampled (location, time) pairs: %.1f%%\n", 100*frac)

	repPlain, err := ClassifiedCampaign(plain)
	if err != nil {
		return err
	}
	repLive, err := ClassifiedCampaignWithPlanner(live)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-28s %8s %8s\n", "", "plain", "pre-inj")
	fmt.Fprintf(w, "%-28s %8d %8d\n", "effective errors", repPlain.Effective, repLive.Effective)
	fmt.Fprintf(w, "%-28s %7.1f%% %7.1f%%\n", "effective rate",
		100*float64(repPlain.Effective)/float64(n), 100*float64(repLive.Effective)/float64(n))
	fmt.Fprintf(w, "%-28s %8d %8d\n", "overwritten (wasted)",
		repPlain.Counts[analysis.OutcomeOverwritten], repLive.Counts[analysis.OutcomeOverwritten])
	if repLive.Effective <= repPlain.Effective {
		return fmt.Errorf("pre-injection analysis did not improve effectiveness")
	}
	return nil
}

// E7FaultModels runs the same campaign shape under each fault model and
// prints the outcome distributions (§4 extension: intermittent and permanent
// faults beside the baseline transients).
func E7FaultModels(w io.Writer) error {
	const n = 120
	models := []struct {
		label string
		model faultmodel.Model
	}{
		{"transient", faultmodel.Model{Kind: faultmodel.Transient}},
		{"transient x3", faultmodel.Model{Kind: faultmodel.TransientMultiple, Multiplicity: 3}},
		{"intermittent", faultmodel.Model{Kind: faultmodel.Intermittent, Burst: 5, BurstSpacing: 60}},
		{"permanent s-a-1", faultmodel.Model{Kind: faultmodel.Permanent, Period: 40, StuckValue: 1}},
	}
	fmt.Fprintf(w, "%-16s %9s %8s %7s %7s %12s %9s\n",
		"model", "detected", "escaped", "latent", "overwr", "effective", "coverage")
	prevEffective := -1
	for i, m := range models {
		c := sortCampaign(fmt.Sprintf("e7-%d", i), n)
		c.Model = m.model
		rep, err := ClassifiedCampaign(c)
		if err != nil {
			return fmt.Errorf("%s: %w", m.label, err)
		}
		fmt.Fprintf(w, "%-16s %9d %8d %7d %7d %12d %8.1f%%\n", m.label,
			rep.Counts[analysis.OutcomeDetected], rep.Counts[analysis.OutcomeEscaped],
			rep.Counts[analysis.OutcomeLatent], rep.Counts[analysis.OutcomeOverwritten],
			rep.Effective, 100*rep.Coverage)
		if i == 0 {
			prevEffective = rep.Effective
		}
	}
	_ = prevEffective
	return nil
}

// E8Triggers runs a campaign per event trigger and verifies each fired.
func E8Triggers(w io.Writer) error {
	triggers := []string{"branch:5", "call:1", "taskswitch:2", "memaccess:0x7010:3", "datavalue:0x800:1", "clock:500:2"}
	fmt.Fprintf(w, "%-22s %12s %12s\n", "trigger", "injected", "experiments")
	for i, spec := range triggers {
		c := controlCampaign(fmt.Sprintf("e8-%d", i), 20)
		c.LocationFilter = "chain:internal.core"
		c.Technique = core.TechSCIFITriggered
		c.TriggerSpec = spec
		ops, store, err := newEnv()
		if err != nil {
			return err
		}
		if _, err := runCampaign(ops, store, c); err != nil {
			return fmt.Errorf("trigger %s: %w", spec, err)
		}
		exps, err := store.Experiments(c.Name)
		if err != nil {
			return err
		}
		injected := 0
		for _, e := range exps {
			if e.ParentExperiment == "" && e.ExperimentName != c.Name+core.RefSuffix &&
				containsStr(e.ExperimentData, "injected=1/1") {
				injected++
			}
		}
		fmt.Fprintf(w, "%-22s %12d %12d\n", spec, injected, c.NExperiments)
		if injected == 0 {
			return fmt.Errorf("trigger %s never injected", spec)
		}
	}
	return nil
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// E9GeneratedSQL verifies that the generated SQL analysis scripts reproduce
// the natively computed classification aggregates.
func E9GeneratedSQL(w io.Writer) error {
	ops, store, err := newEnv()
	if err != nil {
		return err
	}
	c := sortCampaign("e9", 100)
	if _, err := runCampaign(ops, store, c); err != nil {
		return err
	}
	rep, err := analysis.Classify(store, "e9")
	if err != nil {
		return err
	}
	script := analysis.GenerateSQL("e9")
	fmt.Fprintln(w, "generated analysis script:")
	fmt.Fprintln(w, script)
	if err := store.DB().ExecScript(script); err != nil {
		return fmt.Errorf("generated script failed: %w", err)
	}
	outcomes, mechanisms, err := analysis.SQLAggregates(store, "e9")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SQL outcomes:      %v\n", sortedCounts(outcomes))
	fmt.Fprintf(w, "native outcomes:   %v\n", sortedCounts(rep.Counts))
	fmt.Fprintf(w, "SQL mechanisms:    %v\n", sortedCounts(mechanisms))
	fmt.Fprintf(w, "native mechanisms: %v\n", sortedCounts(rep.PerMechanism))
	for k, v := range rep.Counts {
		if outcomes[k] != v {
			return fmt.Errorf("outcome %s: SQL %d != native %d", k, outcomes[k], v)
		}
	}
	for k, v := range rep.PerMechanism {
		if mechanisms[k] != v {
			return fmt.Errorf("mechanism %s: SQL %d != native %d", k, mechanisms[k], v)
		}
	}
	cov, err := analysis.CoverageViaSQL(store, "e9")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "coverage: SQL %.3f, native %.3f — match: PASS\n", cov, rep.Coverage)
	return nil
}

// E10Portability demonstrates §2.2 end to end: the same campaign engine and
// database drive a second, architecturally unrelated target system (the
// 16-bit accumulator machine) that implements only the memory-port subset of
// the Framework operations.
func E10Portability(w io.Writer) error {
	ops := target.NewSimpleTarget()
	store, err := dbase.NewMemoryStore()
	if err != nil {
		return err
	}
	if err := core.RegisterTarget(store, ops, "16-bit accumulator machine"); err != nil {
		return err
	}
	ts, err := store.GetTargetSystem(ops.Name())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "second target %q registered: %d bytes memory, %d scan chains\n",
		ts.TestCardName, ts.MemSize, len(ops.Chains()))

	c := core.Campaign{
		Name:           "e10",
		Workload:       target.SimpleChecksumWorkload(),
		Technique:      core.TechSWIFIPre,
		Model:          faultmodel.Model{Kind: faultmodel.Transient},
		LocationFilter: "mem:0x800-0x840", // the checksum's input block
		NExperiments:   60,
		Seed:           10,
	}
	if _, err := runCampaign(ops, store, c); err != nil {
		return err
	}
	rep, err := analysis.Classify(store, "e10")
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep)
	if rep.Total != 60 || rep.Counts[analysis.OutcomeEscaped] == 0 {
		return fmt.Errorf("degenerate outcome distribution: %v", rep.Counts)
	}
	// SCIFI must be rejected against a target without scan chains.
	bad := c
	bad.Name = "e10-scifi"
	bad.Technique = core.TechSCIFI
	bad.LocationFilter = "chain:internal.core"
	if err := bad.Validate(ops); err == nil {
		return fmt.Errorf("SCIFI validated against a chainless target")
	}
	fmt.Fprintln(w, "SCIFI campaign against the chainless target: rejected at validation (PASS)")
	return nil
}
