// Package repro implements the reproduction experiments E1–E9 of DESIGN.md:
// one runnable harness per figure/result of the paper (and per §4 extension
// the reproduction implements). cmd/goofi-repro prints their reports;
// the root-level benchmarks regenerate them under `go test -bench`.
package repro

import (
	"context"

	"fmt"
	"goofi/internal/scan"
	"io"
	"sort"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/core"
	"goofi/internal/dbase"
	"goofi/internal/faultmodel"
	"goofi/internal/preinject"
	"goofi/internal/target"
	"goofi/internal/workload"
)

// Experiment is one reproduction experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All returns the reproduction experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig. 2 — SCIFI campaign algorithm operation sequence", E1OperationSequence},
		{"E2", "Fig. 4 — database schema, foreign keys, parentExperiment", E2DatabaseIntegrity},
		{"E3", "§3.4 — outcome taxonomy on the control application", E3ControlClassification},
		{"E4", "§1/§3 — SCIFI vs pre-runtime SWIFI", E4TechniqueComparison},
		{"E5", "§3.3 — normal vs detail mode overhead and propagation", E5DetailMode},
		{"E6", "§4 — pre-injection analysis efficiency", E6PreInjection},
		{"E7", "§4 — transient / intermittent / permanent fault models", E7FaultModels},
		{"E8", "§4 — event-based fault triggers", E8Triggers},
		{"E9", "§4 — generated SQL analysis scripts", E9GeneratedSQL},
		{"E10", "§2.2 — portability: a second target system", E10Portability},
	}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("repro: unknown experiment %q", id)
}

// newEnv builds a registered target/store pair.
func newEnv() (*target.ThorTarget, *dbase.Store, error) {
	ops := target.NewDefaultThorTarget()
	store, err := dbase.NewMemoryStore()
	if err != nil {
		return nil, nil, err
	}
	if err := core.RegisterTarget(store, ops, "simulated Thor RD"); err != nil {
		return nil, nil, err
	}
	return ops, store, nil
}

func runCampaign(ops target.Operations, store *dbase.Store, c core.Campaign) (core.Summary, error) {
	return core.NewRunner(ops, store, c).Run(context.Background())
}

// sortedCounts renders a count map deterministically.
func sortedCounts(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

// --- E1 ---

// opRecorder wraps a target and records which abstract operations the
// campaign algorithm invoked, in order — making Fig. 2's sequence a testable
// artifact.
type opRecorder struct {
	*target.ThorTarget
	Ops []string
}

func (r *opRecorder) log(name string) { r.Ops = append(r.Ops, name) }

func (r *opRecorder) InitTestCard() error {
	r.log("initTestCard")
	return r.ThorTarget.InitTestCard()
}

func (r *opRecorder) LoadWorkload(w workload.Spec) error {
	r.log("loadWorkload")
	return r.ThorTarget.LoadWorkload(w)
}

func (r *opRecorder) WriteMemory(addr uint32, vals []uint32) error {
	r.log("writeMemory")
	return r.ThorTarget.WriteMemory(addr, vals)
}

func (r *opRecorder) ReadMemory(addr uint32, n int) ([]uint32, error) {
	r.log("readMemory")
	return r.ThorTarget.ReadMemory(addr, n)
}

func (r *opRecorder) SetBreakpoint(cycle uint64) error {
	r.log("setBreakpoint")
	return r.ThorTarget.SetBreakpoint(cycle)
}

func (r *opRecorder) RunWorkload() error {
	r.log("runWorkload")
	return r.ThorTarget.RunWorkload()
}

func (r *opRecorder) WaitForBreakpoint(maxCycles uint64) (bool, error) {
	r.log("waitForBreakpoint")
	return r.ThorTarget.WaitForBreakpoint(maxCycles)
}

func (r *opRecorder) ReadScanChain(chain string) (scan.Bits, error) {
	r.log("readScanChain")
	return r.ThorTarget.ReadScanChain(chain)
}

func (r *opRecorder) WriteScanChain(chain string, bits scan.Bits) error {
	r.log("writeScanChain")
	return r.ThorTarget.WriteScanChain(chain, bits)
}

func (r *opRecorder) WaitForTermination(spec target.TerminationSpec) (target.Termination, error) {
	r.log("waitForTermination")
	return r.ThorTarget.WaitForTermination(spec)
}

// E1OperationSequence runs one SCIFI experiment through a recording wrapper
// and prints the operation sequence next to Fig. 2's listing.
func E1OperationSequence(w io.Writer) error {
	_, store, err := newEnv()
	if err != nil {
		return err
	}
	rec := &opRecorder{ThorTarget: target.NewDefaultThorTarget()}
	if err := core.RegisterTarget(store, rec, "recorded"); err != nil {
		return err
	}
	// The control workload exchanges input data, so the full Fig. 2
	// sequence -- including the initial writeMemory -- is exercised.
	c := core.Campaign{
		Name:           "e1",
		Workload:       workload.Control(),
		Technique:      core.TechSCIFI,
		Model:          faultmodel.Model{Kind: faultmodel.Transient},
		LocationFilter: "chain:internal.core",
		NExperiments:   1,
		Seed:           1,
		InjectMinTime:  500,
		InjectMaxTime:  500, // fixed injection time: the breakpoint always hits
	}
	if _, err := runCampaign(rec, store, c); err != nil {
		return err
	}
	fmt.Fprintln(w, "recorded abstract-operation sequence (reference run, then experiment):")
	for i, op := range rec.Ops {
		fmt.Fprintf(w, "  %2d  %s\n", i+1, op)
	}
	// Verify the experiment's inner sequence matches faultInjectorSCIFI.
	inner := experimentSlice(rec.Ops)
	want := []string{
		"initTestCard", "loadWorkload", "writeMemory", "runWorkload",
		"setBreakpoint", "waitForBreakpoint",
		"readScanChain", "writeScanChain", // injectFault happens between these
		"waitForTermination",
	}
	if err := isSubsequence(want, inner); err != nil {
		return fmt.Errorf("operation sequence does not match Fig. 2: %w", err)
	}
	fmt.Fprintln(w, "sequence matches faultInjectorSCIFI (Fig. 2): PASS")
	return nil
}

// experimentSlice returns the operations of the second (fault-injection)
// round: everything after the second initTestCard.
func experimentSlice(ops []string) []string {
	count := 0
	for i, op := range ops {
		if op == "initTestCard" {
			count++
			if count == 2 {
				return ops[i:]
			}
		}
	}
	return nil
}

func isSubsequence(want, have []string) error {
	i := 0
	for _, op := range have {
		if i < len(want) && op == want[i] {
			i++
		}
	}
	if i != len(want) {
		return fmt.Errorf("missing %q (matched %d/%d)", want[i], i, len(want))
	}
	return nil
}

// --- E5 helper shared with benchmarks ---

// TimedCampaign runs a campaign and returns its wall-clock duration.
func TimedCampaign(c core.Campaign) (time.Duration, error) {
	ops, store, err := newEnv()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := runCampaign(ops, store, c); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// ClassifiedCampaign runs a campaign and returns its analysis report.
func ClassifiedCampaign(c core.Campaign) (analysis.Report, error) {
	ops, store, err := newEnv()
	if err != nil {
		return analysis.Report{}, err
	}
	if _, err := runCampaign(ops, store, c); err != nil {
		return analysis.Report{}, err
	}
	return analysis.Classify(store, c.Name)
}

// ClassifiedCampaignWithPlanner runs a campaign with a pre-injection planner.
func ClassifiedCampaignWithPlanner(c core.Campaign) (analysis.Report, error) {
	ops, store, err := newEnv()
	if err != nil {
		return analysis.Report{}, err
	}
	a, err := preinject.Analyze(target.NewDefaultThorTarget(), c.Workload)
	if err != nil {
		return analysis.Report{}, err
	}
	r := core.NewRunner(ops, store, c)
	p := &preinject.Planner{Analysis: a, Model: c.Model}
	r.PlanFunc = p.Plan
	if _, err := r.Run(context.Background()); err != nil {
		return analysis.Report{}, err
	}
	return analysis.Classify(store, c.Name)
}

// contextBackground avoids importing context in experiments.go twice; kept
// tiny for readability of the experiment code.
func contextBackground() context.Context { return context.Background() }
