package repro

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestAllListsExperiments(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("experiments = %d", len(all))
	}
	for i, e := range all {
		want := fmt.Sprintf("E%d", i+1)
		if e.ID != want {
			t.Errorf("experiment %d id = %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestGet(t *testing.T) {
	e, err := Get("E3")
	if err != nil || e.ID != "E3" {
		t.Fatalf("Get(E3) = %+v, %v", e, err)
	}
	if _, err := Get("E99"); err == nil {
		t.Fatal("unknown id should fail")
	}
}

// The fast experiments run in full as part of the test suite; the slow
// campaign experiments are covered by cmd/goofi-repro and the benchmarks.

func TestE1OperationSequence(t *testing.T) {
	var buf bytes.Buffer
	if err := E1OperationSequence(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestE2DatabaseIntegrity(t *testing.T) {
	var buf bytes.Buffer
	if err := E2DatabaseIntegrity(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	for _, frag := range []string{"TargetSystemData", "parentExperiment", "rejected by FK"} {
		if !strings.Contains(buf.String(), frag) {
			t.Fatalf("output missing %q:\n%s", frag, buf.String())
		}
	}
}

func TestE8Triggers(t *testing.T) {
	var buf bytes.Buffer
	if err := E8Triggers(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
}

func TestE10Portability(t *testing.T) {
	var buf bytes.Buffer
	if err := E10Portability(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestE9GeneratedSQL(t *testing.T) {
	var buf bytes.Buffer
	if err := E9GeneratedSQL(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestSlowExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale experiments skipped with -short")
	}
	for _, id := range []string{"E3", "E4", "E5", "E6", "E7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%v\n%s", err, buf.String())
			}
		})
	}
}
