// Package trigger implements the fault triggers of the paper's §4 extension
// list: beyond the baseline time/breakpoint trigger, faults can be injected
// on "access of certain data values, execution of branch instructions or
// subprogram calls, when task switches occur, or at specific times
// determined by a real-time clock".
//
// A trigger observes the per-instruction event stream of the target
// processor and reports when the injection condition is met. The campaign
// engine steps the workload with the trigger attached and injects at the
// first firing.
package trigger

import (
	"fmt"
	"strconv"
	"strings"

	"goofi/internal/thor"
)

// Trigger decides when to inject based on the executed instruction stream.
// Implementations carry occurrence counters and must be Reset between
// experiments.
type Trigger interface {
	// Name serialises the trigger for CampaignData; Parse inverts it.
	Name() string
	// Fired is called after every instruction with the instruction's event
	// summary and the total executed-instruction count; it returns true at
	// the injection point.
	Fired(ev thor.Events, cycles uint64) bool
	// Reset restores the trigger for a fresh experiment.
	Reset()
}

// nthCounter fires on the nth occurrence (1-based) of a predicate.
type nthCounter struct {
	n     int
	count int
}

func (c *nthCounter) hit() bool {
	c.count++
	return c.count == c.n
}

func (c *nthCounter) reset() { c.count = 0 }

// --- Concrete triggers ---

// OnCycle fires when the executed-instruction count reaches a value: the
// baseline "point in time" trigger (§3.2).
type OnCycle struct {
	Cycle uint64
}

// Name implements Trigger.
func (t *OnCycle) Name() string { return fmt.Sprintf("cycle:%d", t.Cycle) }

// Fired implements Trigger.
func (t *OnCycle) Fired(_ thor.Events, cycles uint64) bool { return cycles >= t.Cycle }

// Reset implements Trigger.
func (t *OnCycle) Reset() {}

// OnBranch fires on the Nth taken branch.
type OnBranch struct {
	N int
	c nthCounter
}

// Name implements Trigger.
func (t *OnBranch) Name() string { return fmt.Sprintf("branch:%d", t.N) }

// Fired implements Trigger.
func (t *OnBranch) Fired(ev thor.Events, _ uint64) bool {
	if !ev.BranchTaken {
		return false
	}
	t.c.n = t.N
	return t.c.hit()
}

// Reset implements Trigger.
func (t *OnBranch) Reset() { t.c.reset() }

// OnCall fires on the Nth subprogram call (JAL).
type OnCall struct {
	N int
	c nthCounter
}

// Name implements Trigger.
func (t *OnCall) Name() string { return fmt.Sprintf("call:%d", t.N) }

// Fired implements Trigger.
func (t *OnCall) Fired(ev thor.Events, _ uint64) bool {
	if !ev.Call {
		return false
	}
	t.c.n = t.N
	return t.c.hit()
}

// Reset implements Trigger.
func (t *OnCall) Reset() { t.c.reset() }

// OnTaskSwitch fires on the Nth task switch (YIELD).
type OnTaskSwitch struct {
	N int
	c nthCounter
}

// Name implements Trigger.
func (t *OnTaskSwitch) Name() string { return fmt.Sprintf("taskswitch:%d", t.N) }

// Fired implements Trigger.
func (t *OnTaskSwitch) Fired(ev thor.Events, _ uint64) bool {
	if !ev.TaskSwitch {
		return false
	}
	t.c.n = t.N
	return t.c.hit()
}

// Reset implements Trigger.
func (t *OnTaskSwitch) Reset() { t.c.reset() }

// OnMemAccess fires on the Nth access (read or write) to an address.
type OnMemAccess struct {
	Addr uint32
	N    int
	c    nthCounter
}

// Name implements Trigger.
func (t *OnMemAccess) Name() string { return fmt.Sprintf("memaccess:%#x:%d", t.Addr, t.N) }

// Fired implements Trigger.
func (t *OnMemAccess) Fired(ev thor.Events, _ uint64) bool {
	if !(ev.MemRead || ev.MemWrite) || ev.MemAddr != t.Addr {
		return false
	}
	t.c.n = t.N
	return t.c.hit()
}

// Reset implements Trigger.
func (t *OnMemAccess) Reset() { t.c.reset() }

// OnDataValue fires on the Nth memory access transferring a given value —
// the "access of certain data values" trigger.
type OnDataValue struct {
	Value uint32
	N     int
	c     nthCounter
}

// Name implements Trigger.
func (t *OnDataValue) Name() string { return fmt.Sprintf("datavalue:%#x:%d", t.Value, t.N) }

// Fired implements Trigger.
func (t *OnDataValue) Fired(ev thor.Events, _ uint64) bool {
	if !(ev.MemRead || ev.MemWrite) || ev.MemValue != t.Value {
		return false
	}
	t.c.n = t.N
	return t.c.hit()
}

// Reset implements Trigger.
func (t *OnDataValue) Reset() { t.c.reset() }

// OnClock fires at the Nth tick of a simulated real-time clock with the
// given period in instructions.
type OnClock struct {
	Period uint64
	Tick   int
}

// Name implements Trigger.
func (t *OnClock) Name() string { return fmt.Sprintf("clock:%d:%d", t.Period, t.Tick) }

// Fired implements Trigger.
func (t *OnClock) Fired(_ thor.Events, cycles uint64) bool {
	return cycles >= t.Period*uint64(t.Tick)
}

// Reset implements Trigger.
func (t *OnClock) Reset() {}

// Parse builds a trigger from its Name encoding.
func Parse(s string) (Trigger, error) {
	parts := strings.Split(s, ":")
	fail := func() (Trigger, error) {
		return nil, fmt.Errorf("trigger: malformed trigger %q", s)
	}
	num := func(p string, bits int) (uint64, bool) {
		v, err := strconv.ParseUint(p, 0, bits)
		return v, err == nil
	}
	switch parts[0] {
	case "cycle":
		if len(parts) != 2 {
			return fail()
		}
		v, ok := num(parts[1], 64)
		if !ok {
			return fail()
		}
		return &OnCycle{Cycle: v}, nil
	case "branch", "call", "taskswitch":
		if len(parts) != 2 {
			return fail()
		}
		v, ok := num(parts[1], 31)
		if !ok || v == 0 {
			return fail()
		}
		switch parts[0] {
		case "branch":
			return &OnBranch{N: int(v)}, nil
		case "call":
			return &OnCall{N: int(v)}, nil
		default:
			return &OnTaskSwitch{N: int(v)}, nil
		}
	case "memaccess":
		if len(parts) != 3 {
			return fail()
		}
		addr, ok1 := num(parts[1], 32)
		n, ok2 := num(parts[2], 31)
		if !ok1 || !ok2 || n == 0 {
			return fail()
		}
		return &OnMemAccess{Addr: uint32(addr), N: int(n)}, nil
	case "datavalue":
		if len(parts) != 3 {
			return fail()
		}
		v, ok1 := num(parts[1], 32)
		n, ok2 := num(parts[2], 31)
		if !ok1 || !ok2 || n == 0 {
			return fail()
		}
		return &OnDataValue{Value: uint32(v), N: int(n)}, nil
	case "clock":
		if len(parts) != 3 {
			return fail()
		}
		period, ok1 := num(parts[1], 64)
		tick, ok2 := num(parts[2], 31)
		if !ok1 || !ok2 || period == 0 || tick == 0 {
			return fail()
		}
		return &OnClock{Period: period, Tick: int(tick)}, nil
	default:
		return fail()
	}
}
