package trigger

import (
	"testing"

	"goofi/internal/thor"
)

func TestParseRoundTrip(t *testing.T) {
	triggers := []Trigger{
		&OnCycle{Cycle: 1234},
		&OnBranch{N: 3},
		&OnCall{N: 1},
		&OnTaskSwitch{N: 7},
		&OnMemAccess{Addr: 0x7010, N: 2},
		&OnDataValue{Value: 0xDEAD, N: 4},
		&OnClock{Period: 500, Tick: 3},
	}
	for _, tr := range triggers {
		got, err := Parse(tr.Name())
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if got.Name() != tr.Name() {
			t.Fatalf("round trip %q -> %q", tr.Name(), got.Name())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "bogus:1", "cycle", "cycle:x", "branch:0", "branch:1:2",
		"memaccess:0x10", "memaccess:zz:1", "memaccess:0x10:0",
		"datavalue:1", "clock:0:1", "clock:5:0", "clock:5",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestOnCycle(t *testing.T) {
	tr := &OnCycle{Cycle: 10}
	if tr.Fired(thor.Events{}, 9) {
		t.Fatal("fired early")
	}
	if !tr.Fired(thor.Events{}, 10) {
		t.Fatal("did not fire")
	}
	tr.Reset() // no state; must not panic
}

func TestNthOccurrenceTriggers(t *testing.T) {
	tests := []struct {
		name string
		tr   Trigger
		ev   thor.Events
	}{
		{"branch", &OnBranch{N: 3}, thor.Events{BranchTaken: true}},
		{"call", &OnCall{N: 3}, thor.Events{Call: true}},
		{"taskswitch", &OnTaskSwitch{N: 3}, thor.Events{TaskSwitch: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			// Non-matching events never fire.
			if tt.tr.Fired(thor.Events{}, 1) {
				t.Fatal("fired on empty event")
			}
			// Fires exactly on the 3rd matching event.
			if tt.tr.Fired(tt.ev, 1) || tt.tr.Fired(tt.ev, 2) {
				t.Fatal("fired before Nth occurrence")
			}
			if !tt.tr.Fired(tt.ev, 3) {
				t.Fatal("did not fire on Nth occurrence")
			}
			if tt.tr.Fired(tt.ev, 4) {
				t.Fatal("fired again after Nth occurrence")
			}
			tt.tr.Reset()
			if tt.tr.Fired(tt.ev, 1) || tt.tr.Fired(tt.ev, 2) {
				t.Fatal("reset did not clear the counter")
			}
			if !tt.tr.Fired(tt.ev, 3) {
				t.Fatal("did not fire after reset")
			}
		})
	}
}

func TestOnMemAccess(t *testing.T) {
	tr := &OnMemAccess{Addr: 0x4000, N: 2}
	hit := thor.Events{MemRead: true, MemAddr: 0x4000}
	miss := thor.Events{MemRead: true, MemAddr: 0x4004}
	if tr.Fired(miss, 1) {
		t.Fatal("fired on wrong address")
	}
	if tr.Fired(hit, 1) {
		t.Fatal("fired on first access")
	}
	if !tr.Fired(hit, 2) {
		t.Fatal("did not fire on second access")
	}
	// Writes count too.
	tr.Reset()
	w := thor.Events{MemWrite: true, MemAddr: 0x4000}
	tr.Fired(w, 1)
	if !tr.Fired(w, 2) {
		t.Fatal("write access not counted")
	}
}

func TestOnDataValue(t *testing.T) {
	tr := &OnDataValue{Value: 42, N: 1}
	if tr.Fired(thor.Events{MemRead: true, MemValue: 41}, 1) {
		t.Fatal("fired on wrong value")
	}
	if !tr.Fired(thor.Events{MemWrite: true, MemValue: 42}, 1) {
		t.Fatal("did not fire on value")
	}
}

func TestOnClock(t *testing.T) {
	tr := &OnClock{Period: 100, Tick: 3}
	if tr.Fired(thor.Events{}, 299) {
		t.Fatal("fired early")
	}
	if !tr.Fired(thor.Events{}, 300) {
		t.Fatal("did not fire at tick")
	}
}
