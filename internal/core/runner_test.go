package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"goofi/internal/dbase"
	"goofi/internal/faultmodel"
	"goofi/internal/target"
	"goofi/internal/workload"
)

func newStoreT(t *testing.T) *dbase.Store {
	t.Helper()
	s, err := dbase.NewMemoryStore()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newEnv builds a registered target + store pair.
func newEnv(t *testing.T) (*target.ThorTarget, *dbase.Store) {
	t.Helper()
	ops := target.NewDefaultThorTarget()
	store := newStoreT(t)
	if err := RegisterTarget(store, ops, "simulated Thor RD"); err != nil {
		t.Fatal(err)
	}
	return ops, store
}

func scifiCampaign(name string, n int) Campaign {
	return Campaign{
		Name:           name,
		Workload:       workload.BubbleSort(),
		Technique:      TechSCIFI,
		Model:          faultmodel.Model{Kind: faultmodel.Transient},
		LocationFilter: "chain:internal.core",
		NExperiments:   n,
		Seed:           1,
		InjectMinTime:  10,
		InjectMaxTime:  1400,
	}
}

func TestRegisterTargetRows(t *testing.T) {
	ops, store := newEnv(t)
	ts, err := store.GetTargetSystem(ops.Name())
	if err != nil {
		t.Fatal(err)
	}
	if ts.MemSize != 64*1024 || ts.ROMSize != 16*1024 {
		t.Fatalf("target = %+v", ts)
	}
	locs, err := store.FaultLocations(ops.Name())
	if err != nil {
		t.Fatal(err)
	}
	// 21 core fields + 4*64 icache + 4*64 dcache + 10 debug + 3 boundary.
	want := 21 + 256 + 256 + 10 + 3
	if len(locs) != want {
		t.Fatalf("locations = %d, want %d", len(locs), want)
	}
	byName := map[string]dbase.LocationRow{}
	for _, l := range locs {
		byName[l.LocationName] = l
	}
	r3 := byName["internal.core/R3"]
	if r3.Width != 32 || r3.FirstBit != 96 || !r3.Writable {
		t.Fatalf("R3 = %+v", r3)
	}
	cyc := byName["internal.debug/cycles"]
	if cyc.Writable || cyc.Width != 64 {
		t.Fatalf("cycles = %+v", cyc)
	}
}

func TestCampaignRowRoundTrip(t *testing.T) {
	c := scifiCampaign("rt", 5)
	c.TriggerSpec = "branch:2"
	c.DetailMode = true
	c.Notes = "note"
	row := c.Row("thor-rd")
	got, err := CampaignFromRow(row)
	if err != nil {
		t.Fatal(err)
	}
	// The workload spec is resolved by name, so compare the row forms.
	if got.Row("thor-rd") != row {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got.Row("thor-rd"), row)
	}
	if _, err := CampaignFromRow(dbase.CampaignRow{Workload: "nope", FaultModel: "transient"}); err == nil {
		t.Fatal("unknown workload should fail")
	}
	if _, err := CampaignFromRow(dbase.CampaignRow{Workload: "bubblesort", FaultModel: "zz"}); err == nil {
		t.Fatal("bad model should fail")
	}
}

func TestCampaignValidate(t *testing.T) {
	ops, _ := newEnv(t)
	RegisterBuiltins()
	good := scifiCampaign("v", 5)
	if err := good.Validate(ops); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Campaign){
		func(c *Campaign) { c.Name = "" },
		func(c *Campaign) { c.NExperiments = 0 },
		func(c *Campaign) { c.InjectMinTime = 10; c.InjectMaxTime = 5 },
		func(c *Campaign) { c.Technique = "bogus" },
		func(c *Campaign) { c.Model = faultmodel.Model{Kind: faultmodel.TransientMultiple} },
		func(c *Campaign) { c.LocationFilter = "chain:nope" },
		func(c *Campaign) { c.LocationFilter = "mem:0x4000-0x4100" }, // SCIFI can't reach memory
		func(c *Campaign) { c.Workload.Source = "" },
		func(c *Campaign) { c.Technique = TechSCIFITriggered }, // missing trigger
		func(c *Campaign) { c.Technique = TechSCIFITriggered; c.TriggerSpec = "zz" },
		func(c *Campaign) { c.Technique = TechSWIFIPre }, // scan filter with SWIFI
		func(c *Campaign) { c.Technique = TechPinLevel }, // core chain is not pins
	}
	for i, mutate := range cases {
		c := scifiCampaign("v", 5)
		mutate(&c)
		if err := c.Validate(ops); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestTechniqueRegistry(t *testing.T) {
	RegisterBuiltins()
	names := Techniques()
	for _, want := range []string{TechSCIFI, TechSWIFIPre, TechSWIFIRuntime, TechPinLevel, TechSCIFITriggered} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("technique %s missing from %v", want, names)
		}
	}
	if err := RegisterTechnique(TechSCIFI, faultInjectorSCIFI, nil); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if err := RegisterTechnique("", nil, nil); err == nil {
		t.Fatal("empty registration should fail")
	}
	// A custom technique registers and validates (the §2.1 extension path).
	custom := func(ops target.Operations, c Campaign, plan faultmodel.Plan) (Experiment, error) {
		return faultInjectorSCIFI(ops, c, plan)
	}
	if err := RegisterTechnique("custom-test-technique", custom, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSCIFICampaignEndToEnd(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("camp-scifi", 25)
	r := NewRunner(ops, store, c)
	var progress []Progress
	r.OnProgress = func(p Progress) { progress = append(progress, p) }

	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 25 {
		t.Fatalf("completed = %d", sum.Completed)
	}
	// Progress: 1 reference + 25 experiments.
	if len(progress) != 26 || progress[25].Done != 25 {
		t.Fatalf("progress events = %d", len(progress))
	}
	// The DB holds the campaign row, the reference run and 25 experiments.
	if _, err := store.GetCampaign("camp-scifi"); err != nil {
		t.Fatal(err)
	}
	exps, err := store.Experiments("camp-scifi")
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 26 {
		t.Fatalf("experiments = %d", len(exps))
	}
	ref, err := store.GetExperiment("camp-scifi" + RefSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if ref.TerminationReason != "workload-end" {
		t.Fatalf("reference = %+v", ref)
	}
	refSV, err := DecodeStateVector(ref.StateVector)
	if err != nil {
		t.Fatal(err)
	}
	if len(refSV.Chains) != 5 || len(refSV.Memory) != 16 {
		t.Fatalf("ref state: chains=%d mem=%d", len(refSV.Chains), len(refSV.Memory))
	}
	// Reference memory must be the sorted array.
	for i, mw := range refSV.Memory {
		if mw.Value != uint32(i+1) {
			t.Fatalf("ref memory[%d] = %d", i, mw.Value)
		}
	}
	// Termination reasons must cover more than one class across 25 random
	// register faults (some detected or wrong, some benign).
	if len(sum.Terminations) < 1 || sum.Completed != 25 {
		t.Fatalf("summary = %+v", sum)
	}
	// Every experiment decodes and carries plan metadata.
	for _, e := range exps {
		if _, err := DecodeStateVector(e.StateVector); err != nil {
			t.Fatalf("experiment %s: %v", e.ExperimentName, err)
		}
		if !strings.Contains(e.ExperimentData, "plan=[") {
			t.Fatalf("experimentData = %q", e.ExperimentData)
		}
	}
}

func TestSCIFICampaignDeterministicForSeed(t *testing.T) {
	run := func(name string) []dbase.ExperimentRow {
		ops, store := newEnv(t)
		r := NewRunner(ops, store, scifiCampaign(name, 8))
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		exps, err := store.Experiments(name)
		if err != nil {
			t.Fatal(err)
		}
		return exps
	}
	a := run("det")
	b := run("det")
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].ExperimentData != b[i].ExperimentData ||
			a[i].TerminationReason != b[i].TerminationReason ||
			string(a[i].StateVector) != string(b[i].StateVector) {
			t.Fatalf("experiment %s differs between runs", a[i].ExperimentName)
		}
	}
}

func TestSWIFIPreCampaign(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("camp-swifi", 15)
	c.Technique = TechSWIFIPre
	c.LocationFilter = "mem:0x0000-0x0100" // the sort's code area
	r := NewRunner(ops, store, c)
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 15 {
		t.Fatalf("completed = %d", sum.Completed)
	}
	// Flipping bits in code words must produce at least one detection or
	// failure across 15 experiments.
	if sum.Terminations["workload-end"] == 15 {
		exps, _ := store.Experiments("camp-swifi")
		t.Fatalf("all code faults benign? %+v (%d rows)", sum.Terminations, len(exps))
	}
}

func TestRuntimeSWIFICampaign(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("camp-rt", 10)
	c.Technique = TechSWIFIRuntime
	c.LocationFilter = "mem:0x4000-0x4040" // the array being sorted
	r := NewRunner(ops, store, c)
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 10 {
		t.Fatalf("completed = %d", sum.Completed)
	}
}

func TestPinLevelCampaign(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("camp-pin", 5)
	c.Technique = TechPinLevel
	c.LocationFilter = "chain:boundary.pins"
	r := NewRunner(ops, store, c)
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 5 {
		t.Fatalf("completed = %d", sum.Completed)
	}
}

func TestTriggeredCampaign(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("camp-trig", 5)
	c.Technique = TechSCIFITriggered
	c.TriggerSpec = "branch:3"
	r := NewRunner(ops, store, c)
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 5 {
		t.Fatalf("completed = %d", sum.Completed)
	}
	exps, _ := store.Experiments("camp-trig")
	injectedSome := false
	for _, e := range exps {
		if strings.Contains(e.ExperimentData, "injected=1/1") {
			injectedSome = true
		}
	}
	if !injectedSome {
		t.Fatal("no triggered experiment injected its fault")
	}
}

func TestControlWorkloadCampaign(t *testing.T) {
	ops, store := newEnv(t)
	c := Campaign{
		Name:           "camp-ctl",
		Workload:       workload.Control(),
		Technique:      TechSCIFI,
		Model:          faultmodel.Model{Kind: faultmodel.Transient},
		LocationFilter: "chain:internal.core",
		NExperiments:   10,
		Seed:           7,
		InjectMinTime:  100,
		InjectMaxTime:  3500,
	}
	r := NewRunner(ops, store, c)
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 10 {
		t.Fatalf("completed = %d", sum.Completed)
	}
	ref, err := store.GetExperiment("camp-ctl" + RefSuffix)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := DecodeStateVector(ref.StateVector)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Env) != int(workload.Control().MaxIterations) {
		t.Fatalf("env history = %d iterations", len(sv.Env))
	}
}

func TestCampaignRowConflict(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("dup", 3)
	if _, err := NewRunner(ops, store, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Same name, different definition: refused.
	c2 := scifiCampaign("dup", 4)
	if _, err := NewRunner(ops, store, c2).Run(context.Background()); err == nil {
		t.Fatal("conflicting campaign should fail")
	}
}

func TestPauseResumeStop(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("camp-ctlr", 50)
	r := NewRunner(ops, store, c)

	var (
		mu        sync.Mutex
		pausedAt  = -1
		resumed   = make(chan struct{})
		stopAfter = 10
	)
	r.OnProgress = func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Done == 3 && pausedAt < 0 {
			pausedAt = p.Done
			r.Pause()
			go func() {
				r.Resume()
				close(resumed)
			}()
		}
		if p.Done == stopAfter {
			r.Stop()
		}
	}
	sum, err := r.Run(context.Background())
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
	<-resumed
	if sum.Completed != stopAfter {
		t.Fatalf("completed = %d, want %d", sum.Completed, stopAfter)
	}
	exps, _ := store.Experiments("camp-ctlr")
	if len(exps) != stopAfter+1 { // + reference
		t.Fatalf("rows = %d", len(exps))
	}
}

func TestContextCancellation(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("camp-cancel", 1000)
	r := NewRunner(ops, store, c)
	ctx, cancel := context.WithCancel(context.Background())
	r.OnProgress = func(p Progress) {
		if p.Done == 5 {
			cancel()
		}
	}
	sum, err := r.Run(ctx)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
	// Cancellation propagates through a watcher goroutine, so a handful of
	// further experiments may complete before the stop lands.
	if sum.Completed < 5 || sum.Completed == 1000 {
		t.Fatalf("completed = %d", sum.Completed)
	}
}

func TestDetailRerunParentTracking(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("camp-detail", 3)
	r := NewRunner(ops, store, c)
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	name, err := r.RerunDetail("camp-detail/e0001")
	if err != nil {
		t.Fatal(err)
	}
	if name != "camp-detail/e0001"+DetailSuffix {
		t.Fatalf("name = %q", name)
	}
	row, err := store.GetExperiment(name)
	if err != nil {
		t.Fatal(err)
	}
	if row.ParentExperiment != "camp-detail/e0001" {
		t.Fatalf("parent = %q", row.ParentExperiment)
	}
	sv, err := DecodeStateVector(row.StateVector)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Trace) == 0 {
		t.Fatal("detail rerun produced no trace")
	}
	// The rerun must reproduce the original execution: same termination.
	orig, _ := store.GetExperiment("camp-detail/e0001")
	if row.TerminationReason != orig.TerminationReason || row.Cycles != orig.Cycles {
		t.Fatalf("rerun diverged: %+v vs %+v", row, orig)
	}
	// Detail reruns of unknown experiments fail.
	if _, err := r.RerunDetail("camp-detail/e9999"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestParseExperimentPlan(t *testing.T) {
	p, err := parseExperimentPlan("plan=[t=5 flip scan:internal.core:3] injected=1/1")
	if err != nil || len(p.Injections) != 1 || p.Injections[0].Time != 5 {
		t.Fatalf("plan = %+v, %v", p, err)
	}
	p, err = parseExperimentPlan("plan=[] injected=0/0")
	if err != nil || len(p.Injections) != 0 {
		t.Fatalf("empty plan = %+v, %v", p, err)
	}
	if _, err := parseExperimentPlan("no plan here"); err == nil {
		t.Fatal("missing plan should fail")
	}
	if _, err := parseExperimentPlan("plan=[t=5 flip scan:c:1"); err == nil {
		t.Fatal("unterminated plan should fail")
	}
}

func TestReferenceRunStateIsReproducible(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("camp-ref", 1)
	r := NewRunner(ops, store, c)
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ref1, _ := store.GetExperiment("camp-ref" + RefSuffix)

	ops2, store2 := newEnv(t)
	r2 := NewRunner(ops2, store2, scifiCampaign("camp-ref", 1))
	if _, err := r2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ref2, _ := store2.GetExperiment("camp-ref" + RefSuffix)
	if string(ref1.StateVector) != string(ref2.StateVector) {
		t.Fatal("reference runs differ across fresh targets")
	}
}

func TestResumeStoppedCampaign(t *testing.T) {
	// Stop a campaign part way, then re-run it: the remaining experiments
	// complete and the final database is bit-identical to an uninterrupted
	// run of the same campaign.
	runInterrupted := func() *dbase.Store {
		ops, store := newEnv(t)
		c := scifiCampaign("resume", 20)
		r := NewRunner(ops, store, c)
		r.OnProgress = func(p Progress) {
			if p.Done == 7 {
				r.Stop()
			}
		}
		if _, err := r.Run(context.Background()); !errors.Is(err, ErrStopped) {
			t.Fatalf("err = %v", err)
		}
		// Resume with a fresh runner (and a fresh target, as after a tool
		// restart).
		ops2 := target.NewDefaultThorTarget()
		r2 := NewRunner(ops2, store, c)
		sum, err := r2.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if sum.Completed != 13 { // 20 total, 7 done before the stop
			t.Fatalf("resumed completed = %d", sum.Completed)
		}
		return store
	}
	runStraight := func() *dbase.Store {
		ops, store := newEnv(t)
		r := NewRunner(ops, store, scifiCampaign("resume", 20))
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return store
	}
	a, err := runInterrupted().Experiments("resume")
	if err != nil {
		t.Fatal(err)
	}
	b, err := runStraight().Experiments("resume")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 21 {
		t.Fatalf("rows: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ExperimentName != b[i].ExperimentName ||
			a[i].ExperimentData != b[i].ExperimentData ||
			string(a[i].StateVector) != string(b[i].StateVector) {
			t.Fatalf("experiment %s differs between resumed and straight runs", a[i].ExperimentName)
		}
	}
}

func TestRunCompletedCampaignIsNoOp(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("noop", 4)
	if _, err := NewRunner(ops, store, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sum, err := NewRunner(ops, store, c).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 0 {
		t.Fatalf("re-run completed = %d", sum.Completed)
	}
	exps, _ := store.Experiments("noop")
	if len(exps) != 5 {
		t.Fatalf("rows = %d", len(exps))
	}
}

// TestSimpleTargetCampaign runs a full pre-runtime SWIFI campaign on the
// second target system through the same engine — the §2.2 porting claim
// demonstrated end to end.
func TestSimpleTargetCampaign(t *testing.T) {
	ops := target.NewSimpleTarget()
	store := newStoreT(t)
	if err := RegisterTarget(store, ops, "accumulator machine"); err != nil {
		t.Fatal(err)
	}
	c := Campaign{
		Name:           "simple-camp",
		Workload:       target.SimpleChecksumWorkload(),
		Technique:      TechSWIFIPre,
		Model:          faultmodel.Model{Kind: faultmodel.Transient},
		LocationFilter: "mem:0x800-0x840", // the 16 data words at 0x200*4
		NExperiments:   20,
		Seed:           6,
		InjectMinTime:  0,
		InjectMaxTime:  0, // pre-runtime: time is irrelevant
	}
	r := NewRunner(ops, store, c)
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 20 {
		t.Fatalf("completed = %d", sum.Completed)
	}
	// SCIFI campaigns must fail validation against this target: it reports
	// no scan chains.
	bad := c
	bad.Name = "simple-scifi"
	bad.Technique = TechSCIFI
	bad.LocationFilter = "chain:internal.core"
	if err := bad.Validate(ops); err == nil {
		t.Fatal("SCIFI on the simple target should fail validation")
	}
}

func TestIntermittentCampaignInjectsRepeatedly(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("int-camp", 10)
	c.Model = faultmodel.Model{Kind: faultmodel.Intermittent, Burst: 3, BurstSpacing: 100}
	c.InjectMinTime = 10
	c.InjectMaxTime = 800 // leaves room for all three bursts within ~1570 cycles
	r := NewRunner(ops, store, c)
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	exps, err := store.Experiments("int-camp")
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	for _, e := range exps {
		if strings.Contains(e.ExperimentData, "injected=3/3") {
			full++
		}
	}
	// Most experiments complete all three bursts (some may detect early,
	// truncating the burst).
	if full < 5 {
		t.Fatalf("only %d/10 experiments completed the burst", full)
	}
}

func TestPermanentCampaignForcesValue(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("perm-camp", 5)
	c.Model = faultmodel.Model{Kind: faultmodel.Permanent, Period: 200, StuckValue: 1}
	c.InjectMinTime = 10
	c.InjectMaxTime = 200
	r := NewRunner(ops, store, c)
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	exps, err := store.Experiments("perm-camp")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		if e.ExperimentName == "perm-camp"+RefSuffix {
			continue
		}
		if !strings.Contains(e.ExperimentData, "stuck-1") {
			t.Fatalf("experimentData lacks stuck-at op: %q", e.ExperimentData)
		}
	}
}

func TestTriggeredCampaignWithUnfirableTrigger(t *testing.T) {
	// The bubblesort workload never executes YIELD, so a task-switch
	// trigger cannot fire; experiments complete with zero injections.
	ops, store := newEnv(t)
	c := scifiCampaign("trig-none", 3)
	c.Technique = TechSCIFITriggered
	c.TriggerSpec = "taskswitch:1"
	r := NewRunner(ops, store, c)
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 3 {
		t.Fatalf("completed = %d", sum.Completed)
	}
	exps, _ := store.Experiments("trig-none")
	for _, e := range exps {
		if e.ExperimentName == "trig-none"+RefSuffix {
			continue
		}
		if !strings.Contains(e.ExperimentData, "injected=0/1") {
			t.Fatalf("expected no injection: %q", e.ExperimentData)
		}
	}
}

// TestCheckpointCampaignMatchesPlainSCIFI is the checkpoint technique's
// correctness contract: with the same seed, a checkpointed campaign logs
// bit-identical experiments to plain SCIFI — the snapshot/restore prefix
// must be observationally equivalent to re-running from reset.
func TestCheckpointCampaignMatchesPlainSCIFI(t *testing.T) {
	run := func(name, technique string, w workload.Spec, minT, maxT uint64) []dbase.ExperimentRow {
		ops, store := newEnv(t)
		c := Campaign{
			Name:           name,
			Workload:       w,
			Technique:      technique,
			Model:          faultmodel.Model{Kind: faultmodel.Transient},
			LocationFilter: "chain:internal.core",
			NExperiments:   15,
			Seed:           21,
			InjectMinTime:  minT,
			InjectMaxTime:  maxT,
		}
		if _, err := NewRunner(ops, store, c).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		exps, err := store.Experiments(name)
		if err != nil {
			t.Fatal(err)
		}
		return exps
	}
	// The control workload exercises the environment snapshot too.
	for _, wl := range []workload.Spec{workload.BubbleSort(), workload.Control()} {
		minT, maxT := uint64(400), uint64(1200)
		if !wl.TerminatesSelf {
			minT, maxT = 1000, 3500
		}
		plain := run("cp-plain-"+wl.Name, TechSCIFI, wl, minT, maxT)
		ckpt := run("cp-ckpt-"+wl.Name, TechSCIFICheckpoint, wl, minT, maxT)
		if len(plain) != len(ckpt) {
			t.Fatalf("%s: row counts differ", wl.Name)
		}
		for i := range plain {
			if plain[i].ExperimentData != ckpt[i].ExperimentData {
				t.Fatalf("%s row %d: plans differ:\n%s\nvs\n%s", wl.Name, i,
					plain[i].ExperimentData, ckpt[i].ExperimentData)
			}
			if plain[i].TerminationReason != ckpt[i].TerminationReason ||
				plain[i].Mechanism != ckpt[i].Mechanism ||
				plain[i].Cycles != ckpt[i].Cycles {
				t.Fatalf("%s row %d: terminations differ: %+v vs %+v", wl.Name, i, plain[i], ckpt[i])
			}
			if string(plain[i].StateVector) != string(ckpt[i].StateVector) {
				t.Fatalf("%s row %d: state vectors differ", wl.Name, i)
			}
		}
	}
}

func TestCheckpointValidation(t *testing.T) {
	ops, _ := newEnv(t)
	c := scifiCampaign("cp-v", 2)
	c.Technique = TechSCIFICheckpoint
	c.DetailMode = true
	if err := c.Validate(ops); err == nil {
		t.Fatal("detail mode + checkpoint should fail validation")
	}
	// A target without the capability is rejected.
	c.DetailMode = false
	simple := target.NewSimpleTarget()
	c.Workload = target.SimpleChecksumWorkload()
	c.LocationFilter = "mem:0x800-0x840"
	if err := c.Validate(simple); err == nil {
		t.Fatal("chainless/checkpointless target should fail validation")
	}
}

func TestCheckpointIsFasterForLateWindows(t *testing.T) {
	// With a late injection window the checkpoint amortises most of the
	// prefix. Per-experiment cost also includes the scan-chain state capture
	// (shared by both techniques), so require only a modest, robust speedup.
	timeIt := func(technique string) time.Duration {
		ops, store := newEnv(t)
		c := Campaign{
			Name:           "cp-t-" + technique,
			Workload:       workload.Control(),
			Technique:      technique,
			Model:          faultmodel.Model{Kind: faultmodel.Transient},
			LocationFilter: "chain:internal.core",
			NExperiments:   30,
			Seed:           4,
			InjectMinTime:  3500,
			InjectMaxTime:  4000,
		}
		start := time.Now()
		if _, err := NewRunner(ops, store, c).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	plain := timeIt(TechSCIFI)
	ckpt := timeIt(TechSCIFICheckpoint)
	t.Logf("plain=%v checkpoint=%v speedup=%.1fx", plain, ckpt, float64(plain)/float64(ckpt))
	if float64(plain) <= float64(ckpt) {
		t.Fatalf("checkpointing not faster: plain=%v ckpt=%v", plain, ckpt)
	}
}

func TestStopConditionEndsCampaignEarly(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("adaptive", 200)
	r := NewRunner(ops, store, c)
	// Stop once five detections have accumulated — a miniature version of
	// "run until the coverage estimate is confident enough".
	r.StopCondition = func(s Summary) bool {
		return s.Terminations["detected"] >= 5
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Terminations["detected"] != 5 {
		t.Fatalf("detections = %d", sum.Terminations["detected"])
	}
	if sum.Completed >= 200 {
		t.Fatalf("campaign did not stop early: %d", sum.Completed)
	}
}

func TestProgressAndSummaryContents(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("prog", 12)
	r := NewRunner(ops, store, c)
	var outcomes []string
	r.OnProgress = func(p Progress) {
		if p.Campaign != "prog" || p.Total != 12 {
			t.Errorf("progress = %+v", p)
		}
		outcomes = append(outcomes, p.LastOutcome)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(outcomes[0], "reference ") {
		t.Fatalf("first event = %q", outcomes[0])
	}
	// The summary's termination counts match the experiment rows, and every
	// detection is attributed to a mechanism.
	exps, _ := store.Experiments("prog")
	counts := map[string]int{}
	for _, e := range exps {
		if e.ExperimentName == "prog"+RefSuffix {
			continue
		}
		counts[e.TerminationReason]++
	}
	for k, v := range sum.Terminations {
		if counts[k] != v {
			t.Fatalf("summary[%s]=%d, rows=%d", k, v, counts[k])
		}
	}
	nDet := 0
	for _, v := range sum.Detections {
		nDet += v
	}
	if nDet != sum.Terminations["detected"] {
		t.Fatalf("detections %d != detected %d", nDet, sum.Terminations["detected"])
	}
}
