package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"goofi/internal/obsv"
	"goofi/internal/target"
)

// collectEvents drains a broadcaster subscription until Close, returning the
// received frames.
func collectEvents(b *obsv.Broadcaster) (wait func() []obsv.CampaignEvent) {
	ch, _ := b.Subscribe(256)
	var mu sync.Mutex
	var events []obsv.CampaignEvent
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	}()
	return func() []obsv.CampaignEvent {
		<-done
		mu.Lock()
		defer mu.Unlock()
		return events
	}
}

// TestMonitorPersistsRunMetrics is the persistence acceptance check: a
// metrics-enabled run leaves at least one final CampaignRunMetrics row,
// FK-linked to its campaign, whose counters equal the Runner's Summary — and
// the live event stream ends with a frame carrying the same totals.
func TestMonitorPersistsRunMetrics(t *testing.T) {
	rec := obsv.New(obsv.Options{})
	thor, store := newEnv(t)
	store.SetRecorder(rec)
	events := obsv.NewBroadcaster()
	c := scifiCampaign("mon1", 6)
	r := NewRunner(target.NewMeasured(thor, rec), store, c)
	r.Recorder = rec
	r.Events = events
	wait := collectEvents(events)

	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 6 {
		t.Fatalf("completed = %d", sum.Completed)
	}

	final, err := store.FinalRunMetrics("mon1")
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 1 {
		t.Fatalf("final rows = %d, want 1", len(final))
	}
	row := final[0]
	if !row.Final || row.RunID != 1 {
		t.Fatalf("final row = %+v", row)
	}
	if row.Done != sum.Completed+sum.Skipped || row.Total != c.NExperiments ||
		row.Retries != sum.Retries || row.Hangs != sum.Hangs ||
		row.Quarantined != sum.Quarantined {
		t.Fatalf("final row %+v does not match summary %+v", row, sum)
	}
	if row.ElapsedNs <= 0 || row.Workers != 1 {
		t.Fatalf("final row engine fields = %+v", row)
	}
	if row.PhaseNs[obsv.PhaseWorkload] <= 0 || row.PhaseNs[obsv.PhaseScanIn] <= 0 {
		t.Fatalf("phase durations not persisted: %v", row.PhaseNs)
	}
	if row.StoreCalls <= 0 || row.StoreRows <= 0 {
		t.Fatalf("store traffic not persisted: %+v", row)
	}

	// The broadcaster was closed by the run; the collector must terminate
	// with a final frame matching the summary.
	evs := wait()
	if len(evs) == 0 {
		t.Fatal("no events broadcast")
	}
	last := evs[len(evs)-1]
	if !last.Final || last.Done != sum.Completed+sum.Skipped ||
		last.Total != c.NExperiments || last.Campaign != "mon1" {
		t.Fatalf("final event = %+v, summary = %+v", last, sum)
	}
	wantDetected := 0
	for _, v := range sum.Detections {
		wantDetected += v
	}
	if last.Detected != wantDetected {
		t.Fatalf("final event detected = %d, want %d", last.Detected, wantDetected)
	}
}

// TestMonitorIntervalSamples: with a tiny interval, a longer run persists
// interval rows before the final one, with increasing Seq and monotone
// progress.
func TestMonitorIntervalSamples(t *testing.T) {
	rec := obsv.New(obsv.Options{})
	thor, store := newEnv(t)
	store.SetRecorder(rec)
	c := scifiCampaign("mon2", 4000)
	r := NewRunner(target.NewMeasured(thor, rec), store, c)
	r.Recorder = rec
	r.Events = obsv.NewBroadcaster()
	r.MonitorInterval = time.Millisecond
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rows, err := store.RunMetrics("mon2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows = %d, want interval samples plus the final row", len(rows))
	}
	for i, row := range rows {
		if row.RunID != 1 || row.Seq != int64(i) {
			t.Fatalf("row %d keys = run %d seq %d", i, row.RunID, row.Seq)
		}
		if i > 0 {
			prev := rows[i-1]
			if row.Done < prev.Done || row.ElapsedNs < prev.ElapsedNs {
				t.Fatalf("row %d regressed: %+v after %+v", i, row, prev)
			}
		}
		if row.Final != (i == len(rows)-1) {
			t.Fatalf("row %d final flag = %v", i, row.Final)
		}
	}
}

// TestMonitorRunIDAcrossRuns: re-running a finished campaign (a resume
// no-op) records a second run with its own final row.
func TestMonitorRunIDAcrossRuns(t *testing.T) {
	rec := obsv.New(obsv.Options{})
	thor, store := newEnv(t)
	store.SetRecorder(rec)
	c := scifiCampaign("mon3", 3)
	for want := int64(1); want <= 2; want++ {
		r := NewRunner(target.NewMeasured(thor, rec), store, c)
		r.Recorder = rec
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		final, err := store.FinalRunMetrics("mon3")
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(final)) != want || final[want-1].RunID != want {
			t.Fatalf("after run %d: final rows = %+v", want, final)
		}
	}
	// The second run resumed everything: its final row says so.
	final, _ := store.FinalRunMetrics("mon3")
	if got := final[1]; got.Skipped != 3 || got.Done != 3 {
		t.Fatalf("resumed run row = %+v", got)
	}
}

// TestMonitorWithoutRecorder: an events-only run (no Recorder) streams live
// frames but persists nothing — metrics persistence is tied to the
// observability opt-in.
func TestMonitorWithoutRecorder(t *testing.T) {
	thor, store := newEnv(t)
	events := obsv.NewBroadcaster()
	r := NewRunner(thor, store, scifiCampaign("mon4", 4))
	r.Events = events
	wait := collectEvents(events)
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	evs := wait()
	if len(evs) == 0 || !evs[len(evs)-1].Final {
		t.Fatalf("events = %+v, want a final frame", evs)
	}
	if evs[len(evs)-1].Done != sum.Completed {
		t.Fatalf("final event = %+v", evs[len(evs)-1])
	}
	rows, err := store.RunMetrics("mon4")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("recorder-less run persisted %d rows", len(rows))
	}
}

// TestMonitorStoppedRunStillFlushes: a stopped campaign flushes its final
// row too, so a post-mortem sees how far the run got.
func TestMonitorStoppedRunStillFlushes(t *testing.T) {
	rec := obsv.New(obsv.Options{})
	thor, store := newEnv(t)
	store.SetRecorder(rec)
	c := scifiCampaign("mon5", 50)
	r := NewRunner(target.NewMeasured(thor, rec), store, c)
	r.Recorder = rec
	r.OnProgress = func(p Progress) {
		if p.Done >= 3 && p.LastOutcome != "stopped" {
			r.Stop()
		}
	}
	if _, err := r.Run(context.Background()); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	final, err := store.FinalRunMetrics("mon5")
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 1 || final[0].Done == 0 || final[0].Done >= 50 {
		t.Fatalf("stopped-run final rows = %+v", final)
	}
}
