package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"goofi/internal/dbase"
	"goofi/internal/faultmodel"
	"goofi/internal/target"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// Technique names supported by the engine (§1 and §2.1: SCIFI, pre-runtime
// SWIFI, plus the extensions: runtime SWIFI, pin-level injection and
// event-triggered SCIFI).
const (
	TechSCIFI           = "scifi"
	TechSWIFIPre        = "swifi-pre"
	TechSWIFIRuntime    = "swifi-runtime"
	TechPinLevel        = "pin-level"
	TechSCIFITriggered  = "scifi-triggered"
	TechSCIFICheckpoint = "scifi-checkpoint"
)

// Campaign is the in-memory form of a CampaignData row with the workload
// resolved.
type Campaign struct {
	Name           string
	Workload       workload.Spec
	Technique      string
	Model          faultmodel.Model
	LocationFilter faultmodel.Filter
	// TriggerSpec selects the event trigger for TechSCIFITriggered.
	TriggerSpec string
	// NExperiments is the number of faults to inject (paper Fig. 6).
	NExperiments int
	// Seed makes the campaign reproducible.
	Seed int64
	// InjectMinTime and InjectMaxTime bound the sampled injection times in
	// executed instructions.
	InjectMinTime uint64
	InjectMaxTime uint64
	// DetailMode logs the system state after every instruction (§3.3).
	DetailMode bool
	Notes      string
	// Workers selects parallel campaign execution: with Workers > 1 and a
	// Runner.Factory set, experiments fan out to that many workers, each on
	// its own target instance. 0 or 1 runs sequentially. Workers is an
	// execution-engine knob, not part of the campaign definition, and is not
	// persisted in the CampaignData row — the logged result of a campaign is
	// identical at any worker count.
	Workers int
	// RetryLimit bounds how often one experiment is retried after a transient
	// target fault (target.IsTransient) before it is recorded as failed. The
	// target is fully re-initialised between attempts. Retries never consume
	// the campaign's seeded plan stream: a retried experiment reuses its
	// already-drawn plan, so a flaky campaign logs the same plans as a clean
	// one. Like Workers, an engine knob that is not persisted.
	RetryLimit int
	// RetryBackoff is the base delay between retry attempts, doubling per
	// attempt (exponential backoff). 0 retries immediately.
	RetryBackoff time.Duration
	// ExperimentTimeout is the wall-clock watchdog per experiment attempt: an
	// attempt still running after this long is recorded as a "hang"
	// termination and the campaign moves on with a replacement target instead
	// of wedging. 0 disables the watchdog, which Validate only allows when
	// the workload's cycle budget bounds execution. Engine knob, not
	// persisted.
	ExperimentTimeout time.Duration
	// Fork enables golden-run checkpoint forking: the reference run snapshots
	// the system at a grid of cycles plus every distinct first-injection time
	// of the pre-drawn plans, and each experiment restores the nearest
	// checkpoint at or before its first injection instead of re-executing the
	// fault-free prefix. The logged rows and state vectors are bit-identical
	// to a non-forking run of the same seed — plans are still drawn in
	// experiment order from the single PRNG stream, only execution is
	// reordered. Requires a target.CheckpointStore; engine knob, not
	// persisted.
	Fork bool
	// CheckpointEvery is the reference-run checkpoint grid spacing in cycles.
	// 0 picks an automatic grid of roughly InjectMaxTime/16. Engine knob.
	CheckpointEvery uint64
	// CheckpointMem bounds the checkpoint memory footprint in bytes — for the
	// reference-run harvest and for each worker's imported pool alike. When
	// the harvest overflows, the checkpoint closest to its predecessor is
	// dropped (the cycle-0 snapshot is always kept); workers evict least
	// recently used imports. 0 means 64 MiB. Engine knob.
	CheckpointMem int64
}

// Row converts the campaign to its CampaignData representation.
func (c Campaign) Row(targetName string) dbase.CampaignRow {
	return dbase.CampaignRow{
		CampaignName:   c.Name,
		TestCardName:   targetName,
		Workload:       c.Workload.Name,
		Technique:      c.Technique,
		FaultModel:     c.Model.String(),
		LocationFilter: string(c.LocationFilter),
		TriggerSpec:    c.TriggerSpec,
		NExperiments:   c.NExperiments,
		Seed:           c.Seed,
		InjectMinTime:  c.InjectMinTime,
		InjectMaxTime:  c.InjectMaxTime,
		MaxCycles:      c.Workload.MaxCycles,
		MaxIterations:  c.Workload.MaxIterations,
		DetailMode:     c.DetailMode,
		EnvSimulator:   c.Workload.Env,
		Notes:          c.Notes,
	}
}

// CampaignFromRow rebuilds a campaign from its stored row, resolving the
// workload by name.
func CampaignFromRow(r dbase.CampaignRow) (Campaign, error) {
	w, err := workload.Get(r.Workload)
	if err != nil {
		return Campaign{}, fmt.Errorf("core: campaign %s: %w", r.CampaignName, err)
	}
	m, err := faultmodel.ParseModel(r.FaultModel)
	if err != nil {
		return Campaign{}, fmt.Errorf("core: campaign %s: %w", r.CampaignName, err)
	}
	return Campaign{
		Name:           r.CampaignName,
		Workload:       w,
		Technique:      r.Technique,
		Model:          m,
		LocationFilter: faultmodel.Filter(r.LocationFilter),
		TriggerSpec:    r.TriggerSpec,
		NExperiments:   r.NExperiments,
		Seed:           r.Seed,
		InjectMinTime:  r.InjectMinTime,
		InjectMaxTime:  r.InjectMaxTime,
		DetailMode:     r.DetailMode,
		Notes:          r.Notes,
	}, nil
}

// Validate checks the campaign against the target it will run on: the
// technique must exist, the fault model must be sound, and every candidate
// location must live in a domain the technique can reach.
func (c Campaign) Validate(ops target.Operations) error {
	if c.Name == "" {
		return errors.New("core: campaign needs a name")
	}
	if err := c.Workload.Validate(); err != nil {
		return fmt.Errorf("core: campaign %s: %w", c.Name, err)
	}
	if err := c.Model.Validate(); err != nil {
		return fmt.Errorf("core: campaign %s: %w", c.Name, err)
	}
	if c.NExperiments <= 0 {
		return fmt.Errorf("core: campaign %s: NExperiments must be positive", c.Name)
	}
	if c.InjectMaxTime < c.InjectMinTime {
		return fmt.Errorf("core: campaign %s: injection window [%d,%d] invalid",
			c.Name, c.InjectMinTime, c.InjectMaxTime)
	}
	if c.RetryLimit < 0 || c.RetryBackoff < 0 || c.ExperimentTimeout < 0 {
		return fmt.Errorf("core: campaign %s: negative retry/timeout configuration", c.Name)
	}
	// No configuration may hang unbounded: an unbounded cycle budget
	// (Workload.MaxCycles == 0) needs the wall-clock watchdog as a backstop.
	if c.Workload.MaxCycles == 0 && c.ExperimentTimeout <= 0 {
		return fmt.Errorf("core: campaign %s: workload %s has no cycle budget (MaxCycles=0); set Campaign.ExperimentTimeout so experiments cannot hang unbounded",
			c.Name, c.Workload.Name)
	}
	tech, err := techniqueFor(c.Technique)
	if err != nil {
		return fmt.Errorf("core: campaign %s: %w", c.Name, err)
	}
	locs, err := c.LocationFilter.Resolve(ops)
	if err != nil {
		return fmt.Errorf("core: campaign %s: %w", c.Name, err)
	}
	for _, l := range locs {
		if err := tech.checkLocation(l); err != nil {
			return fmt.Errorf("core: campaign %s: %w", c.Name, err)
		}
	}
	if c.Technique == TechSCIFICheckpoint {
		if _, ok := ops.(target.Checkpointer); !ok {
			return fmt.Errorf("core: campaign %s: target %s cannot checkpoint", c.Name, ops.Name())
		}
		if c.DetailMode {
			return fmt.Errorf("core: campaign %s: detail mode records per-instruction traces from reset and cannot be combined with checkpointing", c.Name)
		}
	}
	if c.Fork {
		switch c.Technique {
		case TechSCIFI, TechPinLevel, TechSWIFIRuntime, TechSWIFIPre:
		default:
			return fmt.Errorf("core: campaign %s: checkpoint forking does not support technique %s (its injection points are not plan times)",
				c.Name, c.Technique)
		}
		if _, ok := target.AsCheckpointStore(ops); !ok {
			return fmt.Errorf("core: campaign %s: checkpoint forking needs a target with a checkpoint store; %s has none",
				c.Name, ops.Name())
		}
		if c.DetailMode {
			return fmt.Errorf("core: campaign %s: detail mode records per-instruction traces from reset and cannot be combined with checkpoint forking", c.Name)
		}
		if c.CheckpointMem < 0 {
			return fmt.Errorf("core: campaign %s: negative checkpoint memory budget", c.Name)
		}
	}
	if c.Technique == TechSCIFITriggered {
		if c.TriggerSpec == "" {
			return fmt.Errorf("core: campaign %s: technique %s needs a trigger", c.Name, c.Technique)
		}
		if _, err := trigger.Parse(c.TriggerSpec); err != nil {
			return fmt.Errorf("core: campaign %s: %w", c.Name, err)
		}
		if _, ok := ops.(target.TriggerWaiter); !ok {
			return fmt.Errorf("core: campaign %s: target %s cannot wait for triggers",
				c.Name, ops.Name())
		}
	}
	return nil
}

// Experiment is the outcome of one fault-injection experiment.
type Experiment struct {
	Plan faultmodel.Plan
	// Injected counts the injections actually applied; injections whose
	// breakpoint fell beyond the workload's execution never happen.
	Injected int
	Term     target.Termination
	State    *StateVector
}

// Data renders the experimentData column content.
func (e Experiment) Data() string {
	return fmt.Sprintf("plan=[%s] injected=%d/%d", e.Plan, e.Injected, len(e.Plan.Injections))
}

// technique bundles an algorithm with its location-domain constraint.
type technique struct {
	name          string
	run           Algorithm
	checkLocation func(faultmodel.Location) error
}

// Algorithm executes one experiment of a technique over the abstract target
// operations — one of the faultInjector* methods of Fig. 2.
type Algorithm func(ops target.Operations, c Campaign, plan faultmodel.Plan) (Experiment, error)

var (
	techMu     sync.RWMutex
	techniques = map[string]technique{}
)

// RegisterTechnique installs a new fault-injection technique — the paper's
// §2.1 extension path ("adding a new fault injection technique to GOOFI").
// The checkLocation hook constrains which location domains the technique can
// reach; nil accepts everything.
func RegisterTechnique(name string, algo Algorithm, checkLocation func(faultmodel.Location) error) error {
	if name == "" || algo == nil {
		return errors.New("core: technique needs a name and an algorithm")
	}
	techMu.Lock()
	defer techMu.Unlock()
	if _, dup := techniques[name]; dup {
		return fmt.Errorf("core: technique %q already registered", name)
	}
	if checkLocation == nil {
		checkLocation = func(faultmodel.Location) error { return nil }
	}
	techniques[name] = technique{name: name, run: algo, checkLocation: checkLocation}
	return nil
}

// Techniques lists the registered technique names, sorted.
func Techniques() []string {
	techMu.RLock()
	defer techMu.RUnlock()
	out := make([]string, 0, len(techniques))
	for n := range techniques {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func techniqueFor(name string) (technique, error) {
	RegisterBuiltins() // the shipped techniques are always resolvable
	techMu.RLock()
	defer techMu.RUnlock()
	t, ok := techniques[name]
	if !ok {
		return technique{}, fmt.Errorf("core: unknown technique %q (have %v)", name, Techniques())
	}
	return t, nil
}

func scanOnly(l faultmodel.Location) error {
	if l.Domain != faultmodel.DomainScan {
		return fmt.Errorf("core: SCIFI can only inject into scan chains, got %s", l)
	}
	return nil
}

func memOnly(l faultmodel.Location) error {
	if l.Domain != faultmodel.DomainMemory {
		return fmt.Errorf("core: SWIFI can only inject into memory, got %s", l)
	}
	return nil
}

func pinsOnly(l faultmodel.Location) error {
	if l.Domain != faultmodel.DomainScan || l.Chain != "boundary.pins" {
		return fmt.Errorf("core: pin-level injection is restricted to boundary.pins, got %s", l)
	}
	return nil
}

// registerBuiltinTechniques installs the shipped algorithms; guarded so both
// the facade and tests can call it.
var registerOnce sync.Once

// RegisterBuiltins installs the built-in techniques. Safe to call multiple
// times.
func RegisterBuiltins() {
	registerOnce.Do(func() {
		mustRegister(TechSCIFI, faultInjectorSCIFI, scanOnly)
		mustRegister(TechSWIFIPre, faultInjectorSWIFIPre, memOnly)
		mustRegister(TechSWIFIRuntime, faultInjectorSWIFIRuntime, memOnly)
		mustRegister(TechPinLevel, faultInjectorSCIFI, pinsOnly)
		mustRegister(TechSCIFITriggered, faultInjectorTriggered, scanOnly)
		mustRegister(TechSCIFICheckpoint, faultInjectorSCIFICheckpoint, scanOnly)
	})
}

func mustRegister(name string, algo Algorithm, check func(faultmodel.Location) error) {
	if err := RegisterTechnique(name, algo, check); err != nil {
		// Registration of the built-ins cannot collide; reaching this is a
		// programming error caught immediately by every test.
		panic(err)
	}
}
