package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"goofi/internal/dbase"
	"goofi/internal/target"
)

// mergeShards reassembles per-shard stores into one sorted row slice: every
// shard contributes its owned experiments, and the reference row — which every
// shard derives independently — is kept once after checking the copies agree.
func mergeShards(t *testing.T, stores []*dbase.Store, campaign string) []dbase.ExperimentRow {
	t.Helper()
	byName := map[string]dbase.ExperimentRow{}
	for si, s := range stores {
		for _, row := range campaignRows(t, s, campaign) {
			if prev, ok := byName[row.ExperimentName]; ok {
				if !reflect.DeepEqual(prev, row) {
					t.Fatalf("shard %d disagrees on %s:\n%+v\nvs\n%+v", si, row.ExperimentName, prev, row)
				}
				continue
			}
			byName[row.ExperimentName] = row
		}
	}
	merged := make([]dbase.ExperimentRow, 0, len(byName))
	for _, row := range byName {
		merged = append(merged, row)
	}
	// Experiments() returns name order; reproduce it for the merged set.
	for i := 0; i < len(merged); i++ {
		for j := i + 1; j < len(merged); j++ {
			if merged[j].ExperimentName < merged[i].ExperimentName {
				merged[i], merged[j] = merged[j], merged[i]
			}
		}
	}
	return merged
}

// TestShardedCampaignMatchesUnsharded is the sharding determinism contract:
// three shard runners, each drawing the full seeded plan stream but executing
// only its own indices, must reassemble into exactly the row set of a
// single-process run.
func TestShardedCampaignMatchesUnsharded(t *testing.T) {
	c := scifiCampaign("shard-det", 13)

	opsOne, storeOne := newEnv(t)
	if _, err := NewRunner(opsOne, storeOne, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := campaignRows(t, storeOne, c.Name)

	const shards = 3
	stores := make([]*dbase.Store, shards)
	totalCompleted := 0
	for si := 0; si < shards; si++ {
		ops, store := newEnv(t)
		stores[si] = store
		r := NewRunner(ops, store, c)
		r.ShardIndex, r.ShardCount = si, shards
		sum, err := r.Run(context.Background())
		if err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
		wantN := r.ownedTotal()
		if sum.Completed != wantN {
			t.Fatalf("shard %d completed %d, want %d", si, sum.Completed, wantN)
		}
		totalCompleted += sum.Completed
	}
	if totalCompleted != c.NExperiments {
		t.Fatalf("shards completed %d experiments, want %d", totalCompleted, c.NExperiments)
	}

	got := mergeShards(t, stores, c.Name)
	if len(got) != len(want) {
		t.Fatalf("merged rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("row %d differs:\nunsharded: %+v\nsharded:   %+v", i, want[i], got[i])
		}
	}
}

// TestShardedParallelWorkers stacks the two execution axes: each shard runs
// its slice through the worker pool, and the reassembly must still be
// bit-identical to the sequential single-process run.
func TestShardedParallelWorkers(t *testing.T) {
	c := scifiCampaign("shard-par", 10)

	opsOne, storeOne := newEnv(t)
	if _, err := NewRunner(opsOne, storeOne, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := campaignRows(t, storeOne, c.Name)

	const shards = 2
	stores := make([]*dbase.Store, shards)
	for si := 0; si < shards; si++ {
		cs := c
		cs.Workers = 3
		ops, store := newEnv(t)
		stores[si] = store
		r := NewRunner(ops, store, cs)
		r.Factory = target.DefaultThorFactory()
		r.ShardIndex, r.ShardCount = si, shards
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
	}

	got := mergeShards(t, stores, c.Name)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded parallel rows diverge from sequential run")
	}
}

// TestShardedResume interrupts one shard and re-runs it: the resumed shard
// must skip its logged rows and the final reassembly must match the
// uninterrupted run.
func TestShardedResume(t *testing.T) {
	c := scifiCampaign("shard-res", 9)

	opsOne, storeOne := newEnv(t)
	if _, err := NewRunner(opsOne, storeOne, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := campaignRows(t, storeOne, c.Name)

	const shards = 3
	stores := make([]*dbase.Store, shards)
	for si := 0; si < shards; si++ {
		ops, store := newEnv(t)
		stores[si] = store
		r := NewRunner(ops, store, c)
		r.ShardIndex, r.ShardCount = si, shards
		if si == 1 {
			// Stop shard 1 after its first experiment, then resume it.
			n := 0
			r.StopCondition = func(Summary) bool { n++; return n >= 1 }
			if _, err := r.Run(context.Background()); err != nil {
				t.Fatalf("shard %d first leg: %v", si, err)
			}
			r2 := NewRunner(target.NewDefaultThorTarget(), store, c)
			r2.ShardIndex, r2.ShardCount = si, shards
			sum, err := r2.Run(context.Background())
			if err != nil {
				t.Fatalf("shard %d resume: %v", si, err)
			}
			if sum.Skipped == 0 {
				t.Fatalf("resumed shard skipped nothing")
			}
			continue
		}
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
	}

	got := mergeShards(t, stores, c.Name)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed sharded rows diverge from uninterrupted run")
	}
}

// TestShardValidation rejects impossible shard configurations.
func TestShardValidation(t *testing.T) {
	cases := []struct {
		name   string
		mut    func(*Runner, *Campaign)
		substr string
	}{
		{"index out of range", func(r *Runner, c *Campaign) { r.ShardIndex, r.ShardCount = 3, 3 }, "out of range"},
		{"negative index", func(r *Runner, c *Campaign) { r.ShardIndex, r.ShardCount = -1, 2 }, "out of range"},
		{"fork incompatible", func(r *Runner, c *Campaign) { c.Fork = true; r.ShardIndex, r.ShardCount = 0, 2 }, "checkpoint forking"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ops, store := newEnv(t)
			c := scifiCampaign("shard-bad", 4)
			r := NewRunner(ops, store, c)
			tc.mut(r, &c)
			r.campaign = c
			_, err := r.Run(context.Background())
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("err = %v, want substring %q", err, tc.substr)
			}
		})
	}
}
