package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"goofi/internal/dbase"
	"goofi/internal/target"
	"goofi/internal/workload"
)

func campaignRows(t *testing.T, store *dbase.Store, name string) []dbase.ExperimentRow {
	t.Helper()
	rows, err := store.Experiments(name)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestParallelCampaignMatchesSequential is the determinism contract of the
// worker pool: a W=4 run must produce experiment rows identical to a
// sequential run of the same campaign — same names, terminations, cycle
// counts and state vectors — because all plans are pre-drawn from the seeded
// PRNG in experiment order and every experiment fully resets its target.
func TestParallelCampaignMatchesSequential(t *testing.T) {
	c := scifiCampaign("par-det", 12)

	opsSeq, storeSeq := newEnv(t)
	if _, err := NewRunner(opsSeq, storeSeq, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	cPar := c
	cPar.Workers = 4
	opsPar, storePar := newEnv(t)
	r := NewRunner(opsPar, storePar, cPar)
	r.Factory = target.DefaultThorFactory()
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != c.NExperiments {
		t.Fatalf("completed = %d, want %d", sum.Completed, c.NExperiments)
	}

	seq := campaignRows(t, storeSeq, c.Name)
	par := campaignRows(t, storePar, c.Name)
	if len(seq) != c.NExperiments+1 || len(par) != len(seq) {
		t.Fatalf("rows: sequential %d, parallel %d, want %d", len(seq), len(par), c.NExperiments+1)
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("row %d differs:\nsequential: %+v\nparallel:   %+v", i, seq[i], par[i])
		}
	}
}

// TestParallelControlWorkloadMatchesSequential runs the determinism check
// over the control workload: every worker owns its own environment
// simulator, and the recorded environment histories in the state vectors
// must still be bit-identical to a sequential run.
func TestParallelControlWorkloadMatchesSequential(t *testing.T) {
	c := scifiCampaign("par-ctl", 6)
	c.Workload = workload.Control()
	c.InjectMinTime = 100
	c.InjectMaxTime = 3000

	opsSeq, storeSeq := newEnv(t)
	if _, err := NewRunner(opsSeq, storeSeq, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	cPar := c
	cPar.Workers = 3
	opsPar, storePar := newEnv(t)
	r := NewRunner(opsPar, storePar, cPar)
	r.Factory = target.DefaultThorFactory()
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	seq := campaignRows(t, storeSeq, c.Name)
	par := campaignRows(t, storePar, c.Name)
	if len(seq) != len(par) {
		t.Fatalf("rows: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("row %d (%s) differs between sequential and parallel run", i, seq[i].ExperimentName)
		}
	}
}

// TestParallelResumeAfterStop stops a parallel campaign mid-flight and
// resumes it with a fresh runner: completed work must not be redone or
// double-logged, and the final rows must match an uninterrupted run.
func TestParallelResumeAfterStop(t *testing.T) {
	const n = 20
	c := scifiCampaign("par-resume", n)

	opsClean, storeClean := newEnv(t)
	if _, err := NewRunner(opsClean, storeClean, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	cPar := c
	cPar.Workers = 4
	ops, store := newEnv(t)
	r := NewRunner(ops, store, cPar)
	r.Factory = target.DefaultThorFactory()
	var stopOnce sync.Once
	r.OnProgress = func(p Progress) {
		if p.Done >= 6 {
			stopOnce.Do(r.Stop)
		}
	}
	sum, err := r.Run(context.Background())
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if sum.Completed == 0 || sum.Completed >= n {
		t.Fatalf("stopped campaign completed %d of %d", sum.Completed, n)
	}
	if got := campaignRows(t, store, c.Name); len(got) != sum.Completed+1 {
		t.Fatalf("stopped campaign logged %d rows, summary says %d", len(got), sum.Completed+1)
	}

	r2 := NewRunner(target.NewDefaultThorTarget(), store, cPar)
	r2.Factory = target.DefaultThorFactory()
	sum2, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Every experiment ran exactly once across the two runs: a redone
	// experiment would be double-counted here (and double-logging would
	// fail the primary-key constraint above).
	if sum.Completed+sum2.Completed != n {
		t.Fatalf("split %d + %d, want %d total", sum.Completed, sum2.Completed, n)
	}

	want := campaignRows(t, storeClean, c.Name)
	got := campaignRows(t, store, c.Name)
	if len(got) != len(want) {
		t.Fatalf("resumed rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("row %d differs after resume:\nclean:   %+v\nresumed: %+v", i, want[i], got[i])
		}
	}
}

// TestParallelPauseResume exercises Pause/Resume against the dispatcher
// (under -race this is the concurrency check of the worker pool).
func TestParallelPauseResume(t *testing.T) {
	c := scifiCampaign("par-pause", 10)
	c.Workers = 2
	ops, store := newEnv(t)
	r := NewRunner(ops, store, c)
	r.Factory = target.DefaultThorFactory()
	var pauseOnce sync.Once
	r.OnProgress = func(p Progress) {
		pauseOnce.Do(func() {
			r.Pause()
			go func() {
				time.Sleep(30 * time.Millisecond)
				r.Resume()
			}()
		})
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != c.NExperiments {
		t.Fatalf("completed = %d, want %d", sum.Completed, c.NExperiments)
	}
}

// TestParallelStopCondition: the adaptive stop ends dispatch early; results
// already in flight drain into the log, so the campaign completes at least
// the threshold and at most threshold + workers experiments.
func TestParallelStopCondition(t *testing.T) {
	c := scifiCampaign("par-cond", 40)
	c.Workers = 4
	ops, store := newEnv(t)
	r := NewRunner(ops, store, c)
	r.Factory = target.DefaultThorFactory()
	r.StopCondition = func(s Summary) bool { return s.Completed >= 5 }
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed < 5 || sum.Completed >= c.NExperiments {
		t.Fatalf("completed = %d, want early stop at >= 5", sum.Completed)
	}
	if got := campaignRows(t, store, c.Name); len(got) != sum.Completed+1 {
		t.Fatalf("logged %d rows, summary says %d", len(got), sum.Completed+1)
	}
}

// TestParallelWorkersRequireFactory: Workers > 1 without a Factory is a
// configuration error, not a silent fall-back.
func TestParallelWorkersRequireFactory(t *testing.T) {
	c := scifiCampaign("par-nofactory", 4)
	c.Workers = 4
	ops, store := newEnv(t)
	_, err := NewRunner(ops, store, c).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "Factory") {
		t.Fatalf("err = %v, want a Factory configuration error", err)
	}
}

// TestRunPropagatesStoreErrors: a failing store lookup must surface instead
// of being treated as "experiment absent" — silently re-running completed
// work would corrupt a resumed campaign.
func TestRunPropagatesStoreErrors(t *testing.T) {
	ops, store := newEnv(t)
	c := scifiCampaign("store-err", 3)
	if _, err := NewRunner(ops, store, c).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := store.DB().ExecScript("DROP TABLE AnalysisResult; DROP TABLE LoggedSystemState;"); err != nil {
		t.Fatal(err)
	}
	_, err := NewRunner(target.NewDefaultThorTarget(), store, c).Run(context.Background())
	if err == nil || errors.Is(err, dbase.ErrNotFound) {
		t.Fatalf("err = %v, want a propagated store error", err)
	}
}

// TestParseExperimentPlanEdgeCases complements TestParseExperimentPlan with
// offsets and malformed inputs.
func TestParseExperimentPlanEdgeCases(t *testing.T) {
	p, err := parseExperimentPlan("note=x plan=[t=7 flip scan:internal.core:3] injected=1/1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Injections) != 1 || p.Injections[0].Time != 7 {
		t.Fatalf("plan = %+v", p)
	}
	// A ']' before the prefix must not terminate the plan early.
	p, err = parseExperimentPlan("w[3] plan=[] injected=0/0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Injections) != 0 {
		t.Fatalf("plan = %+v", p)
	}
	for _, bad := range []string{"", "plan=[", "plan=[t=1 flip scan:internal.core:3", "injected=1/1", "plan=]"} {
		if _, err := parseExperimentPlan(bad); err == nil {
			t.Errorf("parseExperimentPlan(%q) accepted malformed input", bad)
		}
	}
}
