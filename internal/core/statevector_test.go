package core

import (
	"math/rand"
	"testing"
)

func sampleSV() *StateVector {
	return &StateVector{
		Chains: []ChainState{
			{Name: "internal.core", Bits: 12, Data: []byte{0xAB, 0x05}},
			{Name: "boundary.pins", Bits: 3, Data: []byte{0x07}},
		},
		Memory: []MemWord{{Addr: 0x4000, Value: 7}, {Addr: 0x4004, Value: 9}},
		Env:    [][]uint32{{1, 2}, {3}},
		Trace: []TraceSample{
			{Cycle: 0, PC: 0, Disasm: "NOP", Core: []byte{1}},
			{Cycle: 1, PC: 4, Disasm: "HALT", Core: []byte{2}},
		},
	}
}

func TestStateVectorRoundTrip(t *testing.T) {
	sv := sampleSV()
	data := sv.Encode()
	got, err := DecodeStateVector(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.StateEqual(sv) || !sv.StateEqual(got) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, sv)
	}
	if len(got.Trace) != 2 || got.Trace[1].Disasm != "HALT" {
		t.Fatalf("trace = %+v", got.Trace)
	}
}

func TestStateVectorRoundTripEmpty(t *testing.T) {
	sv := &StateVector{}
	got, err := DecodeStateVector(sv.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chains) != 0 || len(got.Memory) != 0 || len(got.Env) != 0 || len(got.Trace) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeStateVectorErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("GSV1"),                   // truncated
		[]byte("GSV1\xff\xff\xff\xff"),   // absurd chain count
		append(sampleSV().Encode(), 0x0), // trailing garbage
	}
	for i, data := range cases {
		if _, err := DecodeStateVector(data); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestStateVectorComparisons(t *testing.T) {
	ref := sampleSV()

	same := sampleSV()
	if !ref.StateEqual(same) || !ref.OutputsEqual(same) {
		t.Fatal("identical vectors must compare equal")
	}

	chainDiff := sampleSV()
	chainDiff.Chains[0].Data = []byte{0xAB, 0x04}
	if ref.StateEqual(chainDiff) {
		t.Fatal("chain difference not detected")
	}
	if !ref.OutputsEqual(chainDiff) {
		t.Fatal("chain difference must not affect outputs")
	}

	memDiff := sampleSV()
	memDiff.Memory[1].Value = 99
	if ref.OutputsEqual(memDiff) || ref.StateEqual(memDiff) {
		t.Fatal("memory difference not detected")
	}

	envDiff := sampleSV()
	envDiff.Env[0][1] = 42
	if ref.OutputsEqual(envDiff) {
		t.Fatal("env difference not detected")
	}

	envLen := sampleSV()
	envLen.Env = envLen.Env[:1]
	if ref.OutputsEqual(envLen) {
		t.Fatal("env length difference not detected")
	}
}

func TestStateVectorDiffSummary(t *testing.T) {
	ref := sampleSV()
	if got := ref.DiffSummary(sampleSV()); got != "identical" {
		t.Fatalf("summary = %q", got)
	}
	other := sampleSV()
	other.Chains[0].Data = []byte{0xAA, 0x05}
	other.Memory[0].Value = 1
	other.Env[1] = []uint32{9}
	got := ref.DiffSummary(other)
	for _, want := range []string{"internal.core", "memory: 1", "env history: 1"} {
		if !contains(got, want) {
			t.Errorf("summary %q missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: random vectors survive the encode/decode round trip.
func TestStateVectorRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		sv := &StateVector{}
		for i := 0; i < rng.Intn(4); i++ {
			n := rng.Intn(100) + 1
			data := make([]byte, (n+7)/8)
			rng.Read(data)
			sv.Chains = append(sv.Chains, ChainState{
				Name: randName(rng), Bits: n, Data: data,
			})
		}
		for i := 0; i < rng.Intn(5); i++ {
			sv.Memory = append(sv.Memory, MemWord{Addr: rng.Uint32(), Value: rng.Uint32()})
		}
		for i := 0; i < rng.Intn(4); i++ {
			iter := make([]uint32, rng.Intn(3))
			for j := range iter {
				iter[j] = rng.Uint32()
			}
			sv.Env = append(sv.Env, iter)
		}
		got, err := DecodeStateVector(sv.Encode())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.StateEqual(sv) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func randName(rng *rand.Rand) string {
	letters := "abcdef.[]0123"
	n := rng.Intn(10) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
