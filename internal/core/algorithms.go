package core

import (
	"fmt"

	"goofi/internal/faultmodel"
	"goofi/internal/obsv"
	"goofi/internal/target"
	"goofi/internal/trigger"
)

// This file holds the fault-injection algorithms of the paper's
// FaultInjectionAlgorithms class (Fig. 2), composed from the abstract
// operations of target.Operations. Each algorithm executes ONE experiment;
// the Runner loops them over the campaign.

// prepare performs the common opening sequence of every algorithm:
// initTestCard → loadWorkload → writeMemory (initial input data) →
// runWorkload.
func prepare(ops target.Operations, c Campaign) error {
	if err := ops.InitTestCard(); err != nil {
		return err
	}
	if err := ops.LoadWorkload(c.Workload); err != nil {
		return err
	}
	// Download initial input data: the input exchange words start at zero.
	for _, addr := range c.Workload.InputAddrs {
		if err := ops.WriteMemory(addr, []uint32{0}); err != nil {
			return err
		}
	}
	return ops.RunWorkload()
}

// finish performs the common closing sequence: waitForTermination →
// readMemory → readScanChain, bundling the logged state.
func finish(ops target.Operations, c Campaign, plan faultmodel.Plan, injected int) (Experiment, error) {
	term, err := ops.WaitForTermination(target.TerminationSpec{
		MaxCycles:     c.Workload.MaxCycles,
		MaxIterations: c.Workload.MaxIterations,
	})
	if err != nil {
		return Experiment{}, err
	}
	state, err := captureState(ops, c.Workload.ResultAddrs, ops.TraceLog())
	if err != nil {
		return Experiment{}, err
	}
	return Experiment{Plan: plan, Injected: injected, Term: term, State: state}, nil
}

// injectScan applies scan-domain injections: readScanChain → flip/force →
// writeScanChain, grouped per chain so simultaneous multi-bit faults in one
// chain need a single shift sequence. When ops is instrumented
// (target.Measured), the whole read-modify-write appears as an "inject"
// group span in the trace; the scan shifts inside it are the leaf phases.
func injectScan(ops target.Operations, injs []faultmodel.Injection) error {
	defer obsv.GroupOf(ops, "inject").End()
	emitInject(ops, "scan", injs)
	byChain := map[string][]faultmodel.Injection{}
	var order []string
	for _, inj := range injs {
		if _, seen := byChain[inj.Loc.Chain]; !seen {
			order = append(order, inj.Loc.Chain)
		}
		byChain[inj.Loc.Chain] = append(byChain[inj.Loc.Chain], inj)
	}
	for _, chain := range order {
		bits, err := ops.ReadScanChain(chain)
		if err != nil {
			return err
		}
		for _, inj := range byChain[chain] {
			if inj.Loc.Bit < 0 || inj.Loc.Bit >= bits.Len() {
				return fmt.Errorf("core: injection bit %d out of range for chain %s", inj.Loc.Bit, chain)
			}
			nv, err := inj.Op.Apply(bits.Get(inj.Loc.Bit))
			if err != nil {
				return err
			}
			bits.Set(inj.Loc.Bit, nv)
		}
		if err := ops.WriteScanChain(chain, bits); err != nil {
			return err
		}
	}
	return nil
}

// emitInject records the performed injection as a provenance wide event,
// attributed to the attempt in flight via the context the runner stamped
// onto the target stack. Disabled journals cost one branch.
func emitInject(ops target.Operations, domain string, injs []faultmodel.Injection) {
	if tc := target.TraceContextOf(ops); tc.Enabled() {
		tc.Emit(obsv.EvInject, fmt.Sprintf("domain=%s injections=%d", domain, len(injs)))
	}
}

// injectMemory applies memory-domain injections through the test-card port.
func injectMemory(ops target.Operations, injs []faultmodel.Injection) error {
	defer obsv.GroupOf(ops, "inject").End()
	emitInject(ops, "memory", injs)
	for _, inj := range injs {
		vals, err := ops.ReadMemory(inj.Loc.Addr, 1)
		if err != nil {
			return err
		}
		word := vals[0]
		bit := word&(1<<uint(inj.Loc.MemBit)) != 0
		nv, err := inj.Op.Apply(bit)
		if err != nil {
			return err
		}
		if nv {
			word |= 1 << uint(inj.Loc.MemBit)
		} else {
			word &^= 1 << uint(inj.Loc.MemBit)
		}
		if err := ops.WriteMemory(inj.Loc.Addr, []uint32{word}); err != nil {
			return err
		}
	}
	return nil
}

// faultInjectorSCIFI is the paper's faultInjectorSCIFI (Fig. 2): breakpoints
// programmed via the scan chains halt the workload at each injection time;
// the faults are injected by reading the chain contents, inverting the
// chosen bits and writing them back; then execution resumes until a
// termination condition.
func faultInjectorSCIFI(ops target.Operations, c Campaign, plan faultmodel.Plan) (Experiment, error) {
	if err := prepare(ops, c); err != nil {
		return Experiment{}, err
	}
	injected := 0
	for _, t := range plan.Times() {
		if err := ops.SetBreakpoint(t); err != nil {
			return Experiment{}, err
		}
		hit, err := ops.WaitForBreakpoint(c.Workload.MaxCycles)
		if err != nil {
			return Experiment{}, err
		}
		if !hit {
			// The injection time lies beyond the workload's execution; the
			// remaining injections never happen.
			break
		}
		injs := plan.At(t)
		if err := injectScan(ops, injs); err != nil {
			return Experiment{}, err
		}
		injected += len(injs)
	}
	return finish(ops, c, plan, injected)
}

// faultInjectorSWIFIPre is pre-runtime software-implemented fault injection
// (§1): the program and data areas are corrupted through the test-card
// memory port before the workload starts.
func faultInjectorSWIFIPre(ops target.Operations, c Campaign, plan faultmodel.Plan) (Experiment, error) {
	if err := ops.InitTestCard(); err != nil {
		return Experiment{}, err
	}
	if err := ops.LoadWorkload(c.Workload); err != nil {
		return Experiment{}, err
	}
	for _, addr := range c.Workload.InputAddrs {
		if err := ops.WriteMemory(addr, []uint32{0}); err != nil {
			return Experiment{}, err
		}
	}
	if err := injectMemory(ops, plan.Injections); err != nil {
		return Experiment{}, err
	}
	if err := ops.RunWorkload(); err != nil {
		return Experiment{}, err
	}
	return finish(ops, c, plan, len(plan.Injections))
}

// faultInjectorSWIFIRuntime is runtime SWIFI (§4 extension): the workload is
// halted at the injection time like SCIFI, but the fault is written into
// memory through the software-visible path rather than the scan chains.
func faultInjectorSWIFIRuntime(ops target.Operations, c Campaign, plan faultmodel.Plan) (Experiment, error) {
	if err := prepare(ops, c); err != nil {
		return Experiment{}, err
	}
	injected := 0
	for _, t := range plan.Times() {
		if err := ops.SetBreakpoint(t); err != nil {
			return Experiment{}, err
		}
		hit, err := ops.WaitForBreakpoint(c.Workload.MaxCycles)
		if err != nil {
			return Experiment{}, err
		}
		if !hit {
			break
		}
		injs := plan.At(t)
		if err := injectMemory(ops, injs); err != nil {
			return Experiment{}, err
		}
		injected += len(injs)
	}
	return finish(ops, c, plan, injected)
}

// faultInjectorTriggered injects scan-chain faults when an event trigger
// fires (§4 extension: data access, branch, call, task switch, clock). The
// plan's sampled times are ignored; the trigger decides the injection point.
func faultInjectorTriggered(ops target.Operations, c Campaign, plan faultmodel.Plan) (Experiment, error) {
	waiter, ok := ops.(target.TriggerWaiter)
	if !ok {
		return Experiment{}, fmt.Errorf("core: target %s cannot wait for triggers", ops.Name())
	}
	trig, err := trigger.Parse(c.TriggerSpec)
	if err != nil {
		return Experiment{}, err
	}
	trig.Reset()
	if err := prepare(ops, c); err != nil {
		return Experiment{}, err
	}
	injected := 0
	if len(plan.Injections) > 0 {
		fired, err := waiter.WaitForTrigger(trig, c.Workload.MaxCycles)
		if err != nil {
			return Experiment{}, err
		}
		if fired {
			if err := injectScan(ops, plan.Injections); err != nil {
				return Experiment{}, err
			}
			injected = len(plan.Injections)
		}
	}
	return finish(ops, c, plan, injected)
}

// faultInjectorSCIFICheckpoint is SCIFI with checkpoint amortisation: the
// first run of a campaign executes the workload from reset to the start of
// the injection window and snapshots the complete target state; every later
// experiment restores the snapshot instead of re-running the prefix. The
// optimisation is behaviour-preserving because the simulator, environment
// and debug logic are all part of the snapshot.
func faultInjectorSCIFICheckpoint(ops target.Operations, c Campaign, plan faultmodel.Plan) (Experiment, error) {
	cp, ok := ops.(target.Checkpointer)
	if !ok {
		return Experiment{}, fmt.Errorf("core: target %s cannot checkpoint", ops.Name())
	}
	restored, err := cp.RestoreCheckpoint()
	if err != nil {
		return Experiment{}, err
	}
	if !restored {
		if err := prepare(ops, c); err != nil {
			return Experiment{}, err
		}
		// Run the common prefix once and snapshot at the injection window's
		// start. If the workload ends earlier, the snapshot holds the final
		// state and injections (all at t >= InjectMinTime) never happen —
		// the same outcome plain SCIFI produces.
		if c.InjectMinTime > 0 {
			if err := ops.SetBreakpoint(c.InjectMinTime); err != nil {
				return Experiment{}, err
			}
			if _, err := ops.WaitForBreakpoint(c.Workload.MaxCycles); err != nil {
				return Experiment{}, err
			}
		}
		if err := cp.SaveCheckpoint(); err != nil {
			return Experiment{}, err
		}
	}
	injected := 0
	for _, t := range plan.Times() {
		if err := ops.SetBreakpoint(t); err != nil {
			return Experiment{}, err
		}
		hit, err := ops.WaitForBreakpoint(c.Workload.MaxCycles)
		if err != nil {
			return Experiment{}, err
		}
		if !hit {
			break
		}
		injs := plan.At(t)
		if err := injectScan(ops, injs); err != nil {
			return Experiment{}, err
		}
		injected += len(injs)
	}
	return finish(ops, c, plan, injected)
}
