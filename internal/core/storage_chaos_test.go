package core

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"goofi/internal/dbase"
	"goofi/internal/sqldb"
	"goofi/internal/target"
	"goofi/internal/vfs"
)

// chaosRun executes campaign c over a file-backed WAL store whose every
// storage operation routes through a vfs.Faulty with transient-only error
// rates, then proves the logged rows are also the durable ones by reopening
// the file through the plain OS. It fails the test if no fault was actually
// injected — a quiet disk proves nothing.
func chaosRun(t *testing.T, c Campaign, faults string) ([]dbase.ExperimentRow, Summary) {
	t.Helper()
	fcfg, err := vfs.ParseFaultyConfig(faults)
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := vfs.NewFaulty(vfs.OS{}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.db")
	store, err := dbase.OpenStoreWALFS(path, fsys, sqldb.WALOptions{SyncEvery: 1, CheckpointBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ops := target.NewDefaultThorTarget()
	if err := RegisterTarget(store, ops, "storage chaos target"); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(ops, store, c)
	if c.Workers > 1 {
		r.Factory = target.DefaultThorFactory()
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("campaign under transient storage chaos failed: %v", err)
	}
	if err := store.Save(); err != nil {
		t.Fatalf("final save under transient storage chaos failed: %v", err)
	}
	rows := campaignRows(t, store, c.Name)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if st := fsys.Stats(); st.InjectedErrors == 0 {
		t.Fatalf("no storage faults injected across %d ops — the chaos rates or seed need retuning", st.Ops)
	}

	plain, err := dbase.OpenStore(path)
	if err != nil {
		t.Fatalf("plain reopen of the chaos-written store failed: %v", err)
	}
	durable := campaignRows(t, plain, c.Name)
	if !reflect.DeepEqual(rows, durable) {
		t.Fatalf("durable rows differ from the rows the live store reported: live %d, durable %d", len(rows), len(durable))
	}
	return rows, sum
}

// TestStorageChaosCampaignMatchesFaultFree is the acceptance property of the
// -storage-chaos flag: with transient-only fault rates every layer's retry
// (WAL group commit, checkpoint, store flush, experiment logging) absorbs
// the injected errors, so the campaign's rows and summary are byte-identical
// to a fault-free in-memory run. Covers the sequential path (Workers=1,
// Runner.putExperiment) and the parallel flush path.
func TestStorageChaosCampaignMatchesFaultFree(t *testing.T) {
	const faults = "open=0.02,read=0.02,write=0.05,sync=0.05,rename=0.02,seed=11"
	c := scifiCampaign("storage-chaos", 18)

	opsBase, storeBase := newEnv(t)
	sumBase, err := NewRunner(opsBase, storeBase, c).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	base := campaignRows(t, storeBase, c.Name)
	if len(base) != c.NExperiments+1 {
		t.Fatalf("baseline rows = %d, want %d", len(base), c.NExperiments+1)
	}

	seqRows, seqSum := chaosRun(t, c, faults)
	if !reflect.DeepEqual(base, seqRows) {
		t.Errorf("sequential chaos rows differ from the fault-free baseline")
	}
	if seqSum.Completed != sumBase.Completed || !reflect.DeepEqual(seqSum.Terminations, sumBase.Terminations) {
		t.Errorf("sequential chaos summary differs: %+v vs baseline %+v", seqSum, sumBase)
	}

	cPar := c
	cPar.Workers = 4
	parRows, parSum := chaosRun(t, cPar, faults)
	if !reflect.DeepEqual(base, parRows) {
		t.Errorf("parallel chaos rows differ from the fault-free baseline")
	}
	if parSum.Completed != sumBase.Completed || !reflect.DeepEqual(parSum.Terminations, sumBase.Terminations) {
		t.Errorf("parallel chaos summary differs: %+v vs baseline %+v", parSum, sumBase)
	}
}
