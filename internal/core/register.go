package core

import (
	"fmt"
	"strings"

	"goofi/internal/dbase"
	"goofi/internal/target"
)

// RegisterTarget stores a target system's description and fault-location
// inventory in the database — the configuration phase of §3.1 (Fig. 5),
// where the names and positions of the possible fault-injection locations
// are entered into TargetSystemData.
//
// Locations are recorded per named state element (scan-chain field), e.g.
// "internal.core/R3" with its first bit, width and writability.
func RegisterTarget(store *dbase.Store, ops target.Operations, description string) error {
	if err := ops.InitTestCard(); err != nil {
		return fmt.Errorf("core: register target: %w", err)
	}
	mem, rom := ops.MemLayout()
	ts := dbase.TargetSystem{
		TestCardName: ops.Name(),
		Description:  description,
		MemSize:      mem,
		ROMSize:      rom,
	}
	if err := store.PutTargetSystem(ts); err != nil {
		return err
	}
	var rows []dbase.LocationRow
	for _, ci := range ops.Chains() {
		writable := make(map[int]bool, len(ci.Writable))
		for _, b := range ci.Writable {
			writable[b] = true
		}
		fields, err := chainFields(ops, ci)
		if err != nil {
			return err
		}
		for _, f := range fields {
			rows = append(rows, dbase.LocationRow{
				TestCardName: ops.Name(),
				LocationName: ci.Name + "/" + f.name,
				ChainName:    ci.Name,
				FirstBit:     f.firstBit,
				Width:        f.width,
				Writable:     writable[f.firstBit],
			})
		}
	}
	return store.PutFaultLocations(rows)
}

type fieldSpan struct {
	name     string
	firstBit int
	width    int
}

// chainFields reconstructs the chain's field layout from per-bit names
// ("chain/field[i]"), grouping consecutive bits of the same field.
func chainFields(ops target.Operations, ci target.ChainInfo) ([]fieldSpan, error) {
	var (
		out  []fieldSpan
		cur  string
		span fieldSpan
	)
	flush := func() {
		if cur != "" {
			out = append(out, span)
		}
	}
	for bit := 0; bit < ci.Bits; bit++ {
		name, err := ops.BitName(ci.Name, bit)
		if err != nil {
			return nil, fmt.Errorf("core: chain %s bit %d: %w", ci.Name, bit, err)
		}
		rest := strings.TrimPrefix(name, ci.Name+"/")
		open := strings.LastIndexByte(rest, '[')
		if open < 0 {
			return nil, fmt.Errorf("core: malformed bit name %q", name)
		}
		field := rest[:open]
		if field != cur {
			flush()
			cur = field
			span = fieldSpan{name: field, firstBit: bit, width: 1}
			continue
		}
		span.width++
	}
	flush()
	return out, nil
}
