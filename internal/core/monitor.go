package core

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"goofi/internal/dbase"
	"goofi/internal/obsv"
)

// RunMetricsStore is the optional persistence surface for campaign run
// metrics (the CampaignRunMetrics table); *dbase.Store implements it. It is
// type-asserted from the runner's CampaignStore rather than added to that
// interface, so existing store decorators keep working and metrics
// persistence degrades to disabled on stores that lack it.
type RunMetricsStore interface {
	NextRunID(campaign string) (int64, error)
	PutRunMetrics(rows []dbase.RunMetricsRow) error
}

// monitor is the live-monitoring side-car of one Run: a ticker goroutine
// that periodically snapshots campaign progress into CampaignEvent frames
// (published through Runner.Events) and buffered CampaignRunMetrics rows.
//
// Threading: observe runs on the Run goroutine (it is fed from report);
// the ticker goroutine only reads the latest Progress and appends rows to
// the in-memory buffer under the mutex. No store call happens off the Run
// goroutine — NextRunID runs at start and PutRunMetrics in finish, both on
// the Run goroutine, because the underlying SQL engine is not verified
// thread-safe.
type monitor struct {
	r      *Runner
	events *obsv.Broadcaster
	sink   RunMetricsStore
	runID  int64
	start  time.Time

	mu   sync.Mutex
	last Progress
	seq  int64
	rows []dbase.RunMetricsRow

	stop chan struct{}
	done chan struct{}
}

// startMonitor builds and starts the run's monitor, or returns nil when
// neither live events nor metrics persistence are enabled. Metrics rows are
// persisted only with a Recorder attached (they embed its phase and store
// latencies) and a store implementing RunMetricsStore. Must be called after
// ensureCampaignRow: CampaignRunMetrics rows are FK-linked to CampaignData.
func (r *Runner) startMonitor() (*monitor, error) {
	var sink RunMetricsStore
	if r.Recorder != nil {
		if s, ok := r.store.(RunMetricsStore); ok {
			sink = s
		}
	}
	if r.Events == nil && sink == nil {
		return nil, nil
	}
	m := &monitor{
		r:      r,
		events: r.Events,
		sink:   sink,
		start:  time.Now(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	m.last = Progress{Campaign: r.campaign.Name, Total: r.ownedTotal()}
	if sink != nil {
		id, err := sink.NextRunID(r.campaign.Name)
		if err != nil {
			return nil, fmt.Errorf("core: campaign %s: allocate metrics run id: %w",
				r.campaign.Name, err)
		}
		m.runID = id
	}
	interval := r.MonitorInterval
	if interval <= 0 {
		interval = time.Second
	}
	go m.loop(interval)
	return m, nil
}

// loop is the ticker goroutine: one sample per interval until finish stops it.
func (m *monitor) loop(interval time.Duration) {
	defer close(m.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.sample(false)
		case <-m.stop:
			return
		}
	}
}

// observe records the latest progress tick. Runs on the Run goroutine; a nil
// monitor (monitoring disabled) no-ops.
func (m *monitor) observe(p Progress) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.last = p
	m.mu.Unlock()
}

// sample turns the latest observed progress into one event frame and, with
// persistence enabled, one buffered metrics row.
func (m *monitor) sample(final bool) {
	m.mu.Lock()
	p := m.last
	seq := m.seq
	m.seq++
	m.mu.Unlock()

	elapsed := time.Since(m.start)
	ev := obsv.CampaignEvent{
		Campaign:    p.Campaign,
		Seq:         seq,
		ElapsedNs:   int64(elapsed),
		Done:        p.Done,
		Total:       p.Total,
		Skipped:     p.Skipped,
		Detected:    p.Detected,
		Retries:     p.Retries,
		Hangs:       p.Hangs,
		Quarantined: p.Quarantined,
		Workers:     max(m.r.campaign.Workers, 1),
		LastOutcome: p.LastOutcome,
		Final:       final,
	}
	if secs := elapsed.Seconds(); secs > 0 && p.Done > 0 {
		ev.RatePerSec = float64(p.Done) / secs
		if rem := p.Total - p.Done; rem > 0 {
			ev.EtaNs = int64(float64(rem) / ev.RatePerSec * 1e9)
		}
	}
	m.events.Publish(ev)

	if m.sink != nil {
		row := m.metricsRow(seq, final, p, int64(elapsed))
		m.mu.Lock()
		m.rows = append(m.rows, row)
		m.mu.Unlock()
	}
}

// metricsRow assembles one CampaignRunMetrics row from the progress counters
// plus the recorder's phase totals and store-latency instruments.
func (m *monitor) metricsRow(seq int64, final bool, p Progress, elapsedNs int64) dbase.RunMetricsRow {
	row := dbase.RunMetricsRow{
		CampaignName: m.r.campaign.Name,
		RunID:        m.runID,
		Seq:          seq,
		Final:        final,
		ElapsedNs:    elapsedNs,
		Done:         p.Done,
		Total:        p.Total,
		Skipped:      p.Skipped,
		Retries:      p.Retries,
		Hangs:        p.Hangs,
		Quarantined:  p.Quarantined,
		Workers:      max(m.r.campaign.Workers, 1),
	}
	rec := m.r.Recorder
	for ph := obsv.Phase(0); ph < obsv.NumPhases; ph++ {
		row.PhaseNs[ph] = rec.PhaseTotal(ph)
	}
	s := rec.Snapshot()
	row.StoreCalls = s.Counters["store.calls"]
	row.StoreRows = s.Counters["store.rows"]
	for _, h := range s.Histograms {
		if strings.HasPrefix(h.Name, "store.") && h.P95Ns > row.StoreP95Ns {
			row.StoreP95Ns = h.P95Ns
		}
	}
	return row
}

// finish ends monitoring on the Run goroutine: the ticker is stopped, a
// final frame with the summary's exact counters is published, the event
// stream is closed so subscribers terminate, and the buffered metrics rows —
// interval samples plus the final row — are flushed to the store in one
// batch. The returned error only reports the flush; callers surface it when
// the campaign itself succeeded.
func (m *monitor) finish(sum Summary) error {
	if m == nil {
		return nil
	}
	close(m.stop)
	<-m.done

	m.mu.Lock()
	outcome := m.last.LastOutcome
	m.mu.Unlock()
	m.observe(Progress{
		Campaign:    m.r.campaign.Name,
		Done:        sum.Completed + sum.Skipped,
		Total:       m.r.ownedTotal(),
		Skipped:     sum.Skipped,
		Detected:    detectedOf(sum),
		Retries:     sum.Retries,
		Hangs:       sum.Hangs,
		Quarantined: sum.Quarantined,
		LastOutcome: outcome,
	})
	m.sample(true)
	m.events.Close()

	if m.sink == nil {
		return nil
	}
	m.mu.Lock()
	rows := m.rows
	m.rows = nil
	m.mu.Unlock()
	if err := m.sink.PutRunMetrics(rows); err != nil {
		return fmt.Errorf("core: campaign %s: persist run metrics: %w", sum.Campaign, err)
	}
	m.r.logger().Debug("run metrics persisted",
		"campaign", sum.Campaign, "runId", m.runID, "rows", len(rows))
	return nil
}

// detectedOf totals the summary's per-mechanism detections.
func detectedOf(sum Summary) int {
	n := 0
	for _, v := range sum.Detections {
		n += v
	}
	return n
}

// logger returns the runner's logger, or a discard logger when none is set,
// so engine code logs unconditionally without nil checks.
func (r *Runner) logger() *slog.Logger {
	if r.Logger != nil {
		return r.Logger
	}
	return discardLogger
}

var discardLogger = slog.New(discardHandler{})

// discardHandler is a no-op slog.Handler. (slog.DiscardHandler exists from
// Go 1.24; this module's language version predates it.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
