// Package core implements GOOFI's fault-injection campaign engine: the Go
// rendering of the paper's FaultInjectionAlgorithms class (Fig. 2) plus the
// campaign runner with reference runs, normal/detail logging modes and
// progress control (Fig. 7).
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"goofi/internal/scan"
	"goofi/internal/target"
)

// encodedSize returns the exact Encode output length, so serialisation runs
// as appends into one right-sized allocation.
func (sv *StateVector) encodedSize() int {
	n := len(svMagic) + 4
	for _, c := range sv.Chains {
		n += 4 + len(c.Name) + 4 + 4 + len(c.Data)
	}
	n += 4 + 8*len(sv.Memory)
	n += 4
	for _, iter := range sv.Env {
		n += 4 + 4*len(iter)
	}
	n += 4
	for _, tr := range sv.Trace {
		n += 8 + 4 + 4 + len(tr.Disasm) + 4 + len(tr.Core)
	}
	return n
}

// StateVector is the logged system state of one experiment: the contents of
// every observed scan chain, the workload's result memory, the environment
// exchange history and, in detail mode, the per-instruction trace. It is
// serialised into LoggedSystemState.stateVector (paper §2.3, §3.3).
type StateVector struct {
	Chains []ChainState
	Memory []MemWord
	Env    [][]uint32
	Trace  []TraceSample
}

// ChainState is one captured scan chain.
type ChainState struct {
	Name string
	Bits int
	Data []byte // scan.Bits.Pack encoding
}

// MemWord is one observed memory word.
type MemWord struct {
	Addr  uint32
	Value uint32
}

// TraceSample is one detail-mode record.
type TraceSample struct {
	Cycle  uint64
	PC     uint32
	Disasm string
	Core   []byte // packed core-chain bits
}

const (
	svMagic   = "GSV1"
	svMaxStr  = 1 << 16
	svMaxList = 1 << 24
)

// Encode serialises the vector with direct little-endian appends into one
// exactly-sized buffer — no reflection, no intermediate writer.
func (sv *StateVector) Encode() []byte {
	buf := make([]byte, 0, sv.encodedSize())
	buf = append(buf, svMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sv.Chains)))
	for _, c := range sv.Chains {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Bits))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Data)))
		buf = append(buf, c.Data...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sv.Memory)))
	for _, m := range sv.Memory {
		buf = binary.LittleEndian.AppendUint32(buf, m.Addr)
		buf = binary.LittleEndian.AppendUint32(buf, m.Value)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sv.Env)))
	for _, iter := range sv.Env {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(iter)))
		for _, v := range iter {
			buf = binary.LittleEndian.AppendUint32(buf, v)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sv.Trace)))
	for _, tr := range sv.Trace {
		buf = binary.LittleEndian.AppendUint64(buf, tr.Cycle)
		buf = binary.LittleEndian.AppendUint32(buf, tr.PC)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tr.Disasm)))
		buf = append(buf, tr.Disasm...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tr.Core)))
		buf = append(buf, tr.Core...)
	}
	return buf
}

// svCursor walks an encoded state vector. Every read checks the remaining
// length first, so a truncated input fails loudly instead of yielding
// zero-filled garbage (the partial-read hazard of bytes.Reader.Read).
type svCursor struct {
	data []byte
	off  int
}

func (c *svCursor) take(n int) ([]byte, error) {
	if n < 0 || len(c.data)-c.off < n {
		return nil, fmt.Errorf("need %d bytes, %d left", n, len(c.data)-c.off)
	}
	b := c.data[c.off : c.off+n : c.off+n]
	c.off += n
	return b, nil
}

func (c *svCursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *svCursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *svCursor) str() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	if n > svMaxStr {
		return "", fmt.Errorf("string length %d too large", n)
	}
	b, err := c.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (c *svCursor) bytes() ([]byte, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if n > svMaxList {
		return nil, fmt.Errorf("byte block length %d too large", n)
	}
	return c.take(int(n))
}

// DecodeStateVector inverts Encode. Byte blocks in the result alias the
// input slice; callers must not mutate data afterwards.
func DecodeStateVector(data []byte) (*StateVector, error) {
	c := &svCursor{data: data}
	magic, err := c.take(4)
	if err != nil || string(magic) != svMagic {
		return nil, fmt.Errorf("core: state vector has bad magic")
	}
	fail := func(section string, err error) (*StateVector, error) {
		if err == nil {
			err = fmt.Errorf("count exceeds limit")
		}
		return nil, fmt.Errorf("core: decode state vector %s: %w", section, err)
	}

	sv := &StateVector{}
	nChains, err := c.u32()
	if err != nil || nChains > svMaxList {
		return fail("chain count", err)
	}
	for i := uint32(0); i < nChains; i++ {
		name, err := c.str()
		if err != nil {
			return fail("chain name", err)
		}
		bits, err := c.u32()
		if err != nil {
			return fail("chain bits", err)
		}
		data, err := c.bytes()
		if err != nil {
			return fail("chain data", err)
		}
		sv.Chains = append(sv.Chains, ChainState{Name: name, Bits: int(bits), Data: data})
	}
	nMem, err := c.u32()
	if err != nil || nMem > svMaxList {
		return fail("memory count", err)
	}
	for i := uint32(0); i < nMem; i++ {
		addr, err := c.u32()
		if err != nil {
			return fail("memory addr", err)
		}
		val, err := c.u32()
		if err != nil {
			return fail("memory value", err)
		}
		sv.Memory = append(sv.Memory, MemWord{Addr: addr, Value: val})
	}
	nEnv, err := c.u32()
	if err != nil || nEnv > svMaxList {
		return fail("env count", err)
	}
	for i := uint32(0); i < nEnv; i++ {
		n, err := c.u32()
		if err != nil || n > svMaxList {
			return fail("env iteration", err)
		}
		iter := make([]uint32, n)
		for j := range iter {
			if iter[j], err = c.u32(); err != nil {
				return fail("env value", err)
			}
		}
		sv.Env = append(sv.Env, iter)
	}
	nTrace, err := c.u32()
	if err != nil || nTrace > svMaxList {
		return fail("trace count", err)
	}
	for i := uint32(0); i < nTrace; i++ {
		cycle, err := c.u64()
		if err != nil {
			return fail("trace cycle", err)
		}
		pc, err := c.u32()
		if err != nil {
			return fail("trace pc", err)
		}
		dis, err := c.str()
		if err != nil {
			return fail("trace disasm", err)
		}
		coreBits, err := c.bytes()
		if err != nil {
			return fail("trace core", err)
		}
		sv.Trace = append(sv.Trace, TraceSample{Cycle: cycle, PC: pc, Disasm: dis, Core: coreBits})
	}
	if rest := len(c.data) - c.off; rest != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in state vector", rest)
	}
	return sv, nil
}

// OutputsEqual reports whether the workload-visible outputs — result memory
// and environment exchange history — match. A mismatch is the paper's
// "incorrect results" escaped failure.
func (sv *StateVector) OutputsEqual(o *StateVector) bool {
	if len(sv.Memory) != len(o.Memory) || len(sv.Env) != len(o.Env) {
		return false
	}
	for i := range sv.Memory {
		if sv.Memory[i] != o.Memory[i] {
			return false
		}
	}
	for i := range sv.Env {
		if len(sv.Env[i]) != len(o.Env[i]) {
			return false
		}
		for j := range sv.Env[i] {
			if sv.Env[i][j] != o.Env[i][j] {
				return false
			}
		}
	}
	return true
}

// StateEqual reports whether the full observable state (chains + outputs)
// matches. Equal state means the injected fault was overwritten (§3.4).
func (sv *StateVector) StateEqual(o *StateVector) bool {
	if !sv.OutputsEqual(o) {
		return false
	}
	if len(sv.Chains) != len(o.Chains) {
		return false
	}
	for i := range sv.Chains {
		a, b := sv.Chains[i], o.Chains[i]
		if a.Name != b.Name || a.Bits != b.Bits || !bytes.Equal(a.Data, b.Data) {
			return false
		}
	}
	return true
}

// DiffSummary renders a short description of where two vectors differ, for
// experiment reports.
func (sv *StateVector) DiffSummary(o *StateVector) string {
	var sb bytes.Buffer
	for i := range sv.Chains {
		if i >= len(o.Chains) {
			break
		}
		a, b := sv.Chains[i], o.Chains[i]
		if a.Name != b.Name || a.Bits != b.Bits {
			fmt.Fprintf(&sb, "chain %s shape differs; ", a.Name)
			continue
		}
		// Popcount the packed encodings directly — no unpacking needed.
		if d := scan.PackedOnesCountDiff(a.Data, b.Data); d > 0 {
			fmt.Fprintf(&sb, "chain %s: %d bit(s) differ; ", a.Name, d)
		}
	}
	nm := 0
	for i := range sv.Memory {
		if i < len(o.Memory) && sv.Memory[i] != o.Memory[i] {
			nm++
		}
	}
	if nm > 0 {
		fmt.Fprintf(&sb, "memory: %d word(s) differ; ", nm)
	}
	ne := 0
	for i := range sv.Env {
		if i >= len(o.Env) {
			ne++
			continue
		}
		for j := range sv.Env[i] {
			if j >= len(o.Env[i]) || sv.Env[i][j] != o.Env[i][j] {
				ne++
				break
			}
		}
	}
	if len(sv.Env) != len(o.Env) || ne > 0 {
		fmt.Fprintf(&sb, "env history: %d iteration(s) differ; ", ne)
	}
	if sb.Len() == 0 {
		return "identical"
	}
	return sb.String()
}

// captureState reads the observable state through the target operations:
// every scan chain, the workload's result memory and the recorded
// environment history (§3.3: "the logged system state typically includes
// the contents of all the locations in the target system that are
// observable ... as well as the workload input and output values").
func captureState(ops target.Operations, resultAddrs []uint32, trace []target.TraceEntry) (*StateVector, error) {
	chains := ops.Chains()
	// All chain images (and trace samples) pack into one contiguous buffer:
	// one allocation for the whole capture tail instead of one per chain.
	packed := 0
	for _, ci := range chains {
		packed += (ci.Bits + 7) / 8
	}
	for _, te := range trace {
		packed += (te.Core.Len() + 7) / 8
	}
	buf := make([]byte, 0, packed)

	sv := &StateVector{Chains: make([]ChainState, 0, len(chains))}
	for _, ci := range chains {
		bits, err := ops.ReadScanChain(ci.Name)
		if err != nil {
			return nil, fmt.Errorf("capture state: %w", err)
		}
		start := len(buf)
		buf = bits.AppendPacked(buf)
		sv.Chains = append(sv.Chains, ChainState{Name: ci.Name, Bits: bits.Len(), Data: buf[start:len(buf):len(buf)]})
	}
	if len(resultAddrs) > 0 {
		sv.Memory = make([]MemWord, 0, len(resultAddrs))
	}
	for _, addr := range resultAddrs {
		vals, err := ops.ReadMemory(addr, 1)
		if err != nil {
			return nil, fmt.Errorf("capture state: %w", err)
		}
		sv.Memory = append(sv.Memory, MemWord{Addr: addr, Value: vals[0]})
	}
	sv.Env = ops.EnvHistory()
	if len(trace) > 0 {
		sv.Trace = make([]TraceSample, 0, len(trace))
	}
	for _, te := range trace {
		start := len(buf)
		buf = te.Core.AppendPacked(buf)
		sv.Trace = append(sv.Trace, TraceSample{
			Cycle:  te.Cycle,
			PC:     te.PC,
			Disasm: te.Disasm,
			Core:   buf[start:len(buf):len(buf)],
		})
	}
	return sv, nil
}
