// Package core implements GOOFI's fault-injection campaign engine: the Go
// rendering of the paper's FaultInjectionAlgorithms class (Fig. 2) plus the
// campaign runner with reference runs, normal/detail logging modes and
// progress control (Fig. 7).
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"goofi/internal/scan"
	"goofi/internal/target"
)

// StateVector is the logged system state of one experiment: the contents of
// every observed scan chain, the workload's result memory, the environment
// exchange history and, in detail mode, the per-instruction trace. It is
// serialised into LoggedSystemState.stateVector (paper §2.3, §3.3).
type StateVector struct {
	Chains []ChainState
	Memory []MemWord
	Env    [][]uint32
	Trace  []TraceSample
}

// ChainState is one captured scan chain.
type ChainState struct {
	Name string
	Bits int
	Data []byte // scan.Bits.Pack encoding
}

// MemWord is one observed memory word.
type MemWord struct {
	Addr  uint32
	Value uint32
}

// TraceSample is one detail-mode record.
type TraceSample struct {
	Cycle  uint64
	PC     uint32
	Disasm string
	Core   []byte // packed core-chain bits
}

const (
	svMagic   = "GSV1"
	svMaxStr  = 1 << 16
	svMaxList = 1 << 24
)

// Encode serialises the vector.
func (sv *StateVector) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(svMagic)
	writeU32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	writeStr := func(s string) {
		writeU32(uint32(len(s)))
		buf.WriteString(s)
	}
	writeBytes := func(b []byte) {
		writeU32(uint32(len(b)))
		buf.Write(b)
	}

	writeU32(uint32(len(sv.Chains)))
	for _, c := range sv.Chains {
		writeStr(c.Name)
		writeU32(uint32(c.Bits))
		writeBytes(c.Data)
	}
	writeU32(uint32(len(sv.Memory)))
	for _, m := range sv.Memory {
		writeU32(m.Addr)
		writeU32(m.Value)
	}
	writeU32(uint32(len(sv.Env)))
	for _, iter := range sv.Env {
		writeU32(uint32(len(iter)))
		for _, v := range iter {
			writeU32(v)
		}
	}
	writeU32(uint32(len(sv.Trace)))
	for _, tr := range sv.Trace {
		writeU64(tr.Cycle)
		writeU32(tr.PC)
		writeStr(tr.Disasm)
		writeBytes(tr.Core)
	}
	return buf.Bytes()
}

// DecodeStateVector inverts Encode.
func DecodeStateVector(data []byte) (*StateVector, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := r.Read(magic); err != nil || string(magic) != svMagic {
		return nil, fmt.Errorf("core: state vector has bad magic")
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > svMaxStr {
			return "", fmt.Errorf("core: string length %d too large", n)
		}
		b := make([]byte, n)
		if _, err := r.Read(b); err != nil && n > 0 {
			return "", err
		}
		return string(b), nil
	}
	readBytes := func() ([]byte, error) {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if n > svMaxList {
			return nil, fmt.Errorf("core: byte block length %d too large", n)
		}
		b := make([]byte, n)
		if _, err := r.Read(b); err != nil && n > 0 {
			return nil, err
		}
		return b, nil
	}
	fail := func(section string, err error) (*StateVector, error) {
		return nil, fmt.Errorf("core: decode state vector %s: %w", section, err)
	}

	sv := &StateVector{}
	nChains, err := readU32()
	if err != nil || nChains > svMaxList {
		return fail("chain count", err)
	}
	for i := uint32(0); i < nChains; i++ {
		name, err := readStr()
		if err != nil {
			return fail("chain name", err)
		}
		bits, err := readU32()
		if err != nil {
			return fail("chain bits", err)
		}
		data, err := readBytes()
		if err != nil {
			return fail("chain data", err)
		}
		sv.Chains = append(sv.Chains, ChainState{Name: name, Bits: int(bits), Data: data})
	}
	nMem, err := readU32()
	if err != nil || nMem > svMaxList {
		return fail("memory count", err)
	}
	for i := uint32(0); i < nMem; i++ {
		addr, err := readU32()
		if err != nil {
			return fail("memory addr", err)
		}
		val, err := readU32()
		if err != nil {
			return fail("memory value", err)
		}
		sv.Memory = append(sv.Memory, MemWord{Addr: addr, Value: val})
	}
	nEnv, err := readU32()
	if err != nil || nEnv > svMaxList {
		return fail("env count", err)
	}
	for i := uint32(0); i < nEnv; i++ {
		n, err := readU32()
		if err != nil || n > svMaxList {
			return fail("env iteration", err)
		}
		iter := make([]uint32, n)
		for j := range iter {
			if iter[j], err = readU32(); err != nil {
				return fail("env value", err)
			}
		}
		sv.Env = append(sv.Env, iter)
	}
	nTrace, err := readU32()
	if err != nil || nTrace > svMaxList {
		return fail("trace count", err)
	}
	for i := uint32(0); i < nTrace; i++ {
		cycle, err := readU64()
		if err != nil {
			return fail("trace cycle", err)
		}
		pc, err := readU32()
		if err != nil {
			return fail("trace pc", err)
		}
		dis, err := readStr()
		if err != nil {
			return fail("trace disasm", err)
		}
		coreBits, err := readBytes()
		if err != nil {
			return fail("trace core", err)
		}
		sv.Trace = append(sv.Trace, TraceSample{Cycle: cycle, PC: pc, Disasm: dis, Core: coreBits})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in state vector", r.Len())
	}
	return sv, nil
}

// OutputsEqual reports whether the workload-visible outputs — result memory
// and environment exchange history — match. A mismatch is the paper's
// "incorrect results" escaped failure.
func (sv *StateVector) OutputsEqual(o *StateVector) bool {
	if len(sv.Memory) != len(o.Memory) || len(sv.Env) != len(o.Env) {
		return false
	}
	for i := range sv.Memory {
		if sv.Memory[i] != o.Memory[i] {
			return false
		}
	}
	for i := range sv.Env {
		if len(sv.Env[i]) != len(o.Env[i]) {
			return false
		}
		for j := range sv.Env[i] {
			if sv.Env[i][j] != o.Env[i][j] {
				return false
			}
		}
	}
	return true
}

// StateEqual reports whether the full observable state (chains + outputs)
// matches. Equal state means the injected fault was overwritten (§3.4).
func (sv *StateVector) StateEqual(o *StateVector) bool {
	if !sv.OutputsEqual(o) {
		return false
	}
	if len(sv.Chains) != len(o.Chains) {
		return false
	}
	for i := range sv.Chains {
		a, b := sv.Chains[i], o.Chains[i]
		if a.Name != b.Name || a.Bits != b.Bits || !bytes.Equal(a.Data, b.Data) {
			return false
		}
	}
	return true
}

// DiffSummary renders a short description of where two vectors differ, for
// experiment reports.
func (sv *StateVector) DiffSummary(o *StateVector) string {
	var sb bytes.Buffer
	for i := range sv.Chains {
		if i >= len(o.Chains) {
			break
		}
		a, b := sv.Chains[i], o.Chains[i]
		if a.Name != b.Name || a.Bits != b.Bits {
			fmt.Fprintf(&sb, "chain %s shape differs; ", a.Name)
			continue
		}
		ba, err1 := scan.Unpack(a.Data, a.Bits)
		bb, err2 := scan.Unpack(b.Data, b.Bits)
		if err1 != nil || err2 != nil {
			continue
		}
		if d := ba.Diff(bb); len(d) > 0 {
			fmt.Fprintf(&sb, "chain %s: %d bit(s) differ; ", a.Name, len(d))
		}
	}
	nm := 0
	for i := range sv.Memory {
		if i < len(o.Memory) && sv.Memory[i] != o.Memory[i] {
			nm++
		}
	}
	if nm > 0 {
		fmt.Fprintf(&sb, "memory: %d word(s) differ; ", nm)
	}
	ne := 0
	for i := range sv.Env {
		if i >= len(o.Env) {
			ne++
			continue
		}
		for j := range sv.Env[i] {
			if j >= len(o.Env[i]) || sv.Env[i][j] != o.Env[i][j] {
				ne++
				break
			}
		}
	}
	if len(sv.Env) != len(o.Env) || ne > 0 {
		fmt.Fprintf(&sb, "env history: %d iteration(s) differ; ", ne)
	}
	if sb.Len() == 0 {
		return "identical"
	}
	return sb.String()
}

// captureState reads the observable state through the target operations:
// every scan chain, the workload's result memory and the recorded
// environment history (§3.3: "the logged system state typically includes
// the contents of all the locations in the target system that are
// observable ... as well as the workload input and output values").
func captureState(ops target.Operations, resultAddrs []uint32, trace []target.TraceEntry) (*StateVector, error) {
	sv := &StateVector{}
	for _, ci := range ops.Chains() {
		bits, err := ops.ReadScanChain(ci.Name)
		if err != nil {
			return nil, fmt.Errorf("capture state: %w", err)
		}
		sv.Chains = append(sv.Chains, ChainState{Name: ci.Name, Bits: bits.Len(), Data: bits.Pack()})
	}
	for _, addr := range resultAddrs {
		vals, err := ops.ReadMemory(addr, 1)
		if err != nil {
			return nil, fmt.Errorf("capture state: %w", err)
		}
		sv.Memory = append(sv.Memory, MemWord{Addr: addr, Value: vals[0]})
	}
	sv.Env = ops.EnvHistory()
	for _, te := range trace {
		sv.Trace = append(sv.Trace, TraceSample{
			Cycle:  te.Cycle,
			PC:     te.PC,
			Disasm: te.Disasm,
			Core:   te.Core.Pack(),
		})
	}
	return sv, nil
}
