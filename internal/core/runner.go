package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"goofi/internal/dbase"
	"goofi/internal/faultmodel"
	"goofi/internal/target"
)

// ErrStopped is returned by Run when the campaign was ended through Stop or
// context cancellation (Fig. 7's "end the campaign" control).
var ErrStopped = errors.New("core: campaign stopped")

// RefSuffix and DetailSuffix name the special experiment rows.
const (
	// RefSuffix is appended to the campaign name for the reference run.
	RefSuffix = "/ref"
	// DetailSuffix is appended to an experiment name for its detail-mode
	// rerun (the parentExperiment scenario of §2.3).
	DetailSuffix = "/detail"
)

// Progress is delivered to the progress callback after every experiment —
// the data behind the paper's progress window (Fig. 7).
type Progress struct {
	Campaign string
	// Done counts completed experiments out of Total.
	Done, Total int
	// LastOutcome summarises the most recent experiment's termination.
	LastOutcome string
}

// Summary reports a finished (or stopped) campaign.
type Summary struct {
	Campaign string
	// Completed is the number of fault-injection experiments logged.
	Completed int
	// Terminations counts experiments per termination reason.
	Terminations map[string]int
	// Detections counts detected experiments per mechanism.
	Detections map[string]int
}

// Runner executes a fault-injection campaign over a target, logging
// everything to the GOOFI database. It may be paused, resumed and stopped
// from other goroutines while Run executes (Fig. 7).
type Runner struct {
	ops      target.Operations
	store    *dbase.Store
	campaign Campaign

	// OnProgress, when set, is called after the reference run and after
	// every experiment. It runs on the Run goroutine.
	OnProgress func(Progress)

	// PlanFunc, when set, replaces the fault model's default sampling. The
	// pre-injection analysis (§4 extension, internal/preinject) uses it to
	// schedule injections only into live locations.
	PlanFunc func(rng *rand.Rand, locs []faultmodel.Location, minTime, maxTime, horizon uint64) (faultmodel.Plan, error)

	// StopCondition, when set, is evaluated after every experiment with the
	// running summary; returning true ends the campaign early with a nil
	// error (an adaptive alternative to a fixed NExperiments, e.g. "stop
	// once enough detections accumulated for the target confidence").
	StopCondition func(Summary) bool

	// Factory, when set, supplies independent target instances for parallel
	// execution (Campaign.Workers > 1): one target per worker, so
	// experiments share no simulator state. The runner's own ops still
	// performs validation and the reference run.
	Factory target.Factory

	mu      sync.Mutex
	cond    *sync.Cond
	paused  bool
	stopped bool
}

// NewRunner builds a runner. RegisterBuiltins is called implicitly so the
// shipped techniques are always available.
func NewRunner(ops target.Operations, store *dbase.Store, campaign Campaign) *Runner {
	RegisterBuiltins()
	r := &Runner{ops: ops, store: store, campaign: campaign}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Pause suspends the campaign after the in-flight experiment completes.
func (r *Runner) Pause() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused = true
}

// Resume continues a paused campaign.
func (r *Runner) Resume() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused = false
	r.cond.Broadcast()
}

// Stop ends the campaign after the in-flight experiment completes.
func (r *Runner) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
	r.cond.Broadcast()
}

// checkpoint blocks while paused and reports whether the campaign must stop.
func (r *Runner) checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.paused && !r.stopped {
		r.cond.Wait()
	}
	if r.stopped {
		return ErrStopped
	}
	return nil
}

// Run executes the campaign: it stores the campaign definition, performs the
// fault-free reference run, then runs and logs NExperiments fault-injection
// experiments (the outer loop of Fig. 2's faultInjectorSCIFI). Cancelling
// ctx stops the campaign between experiments.
func (r *Runner) Run(ctx context.Context) (Summary, error) {
	c := r.campaign
	// Power up the test card first: campaign validation resolves location
	// filters against the live chain inventory.
	if err := r.ops.InitTestCard(); err != nil {
		return Summary{}, err
	}
	if err := c.Validate(r.ops); err != nil {
		return Summary{}, err
	}
	tech, err := techniqueFor(c.Technique)
	if err != nil {
		return Summary{}, err
	}
	locs, err := c.LocationFilter.Resolve(r.ops)
	if err != nil {
		return Summary{}, err
	}
	if err := r.ensureCampaignRow(); err != nil {
		return Summary{}, err
	}

	// Propagate context cancellation into the pause/stop machinery.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			r.Stop()
		case <-watchDone:
		}
	}()

	sum := Summary{
		Campaign:     c.Name,
		Terminations: map[string]int{},
		Detections:   map[string]int{},
	}

	r.ops.SetDetailMode(c.DetailMode)
	defer r.ops.SetDetailMode(false)

	// A stale snapshot from an earlier campaign must never leak in.
	if cp, ok := r.ops.(target.Checkpointer); ok {
		cp.ClearCheckpoint()
	}

	// One prefix-scan of the campaign's logged experiments answers every
	// resume question below: a store failure is propagated rather than
	// treated as "nothing logged", which would re-run completed work.
	logged, err := r.store.ExperimentNames(c.Name)
	if err != nil {
		return Summary{}, err
	}

	// Reference run: the same algorithm with an empty plan (Fig. 2,
	// makeReferenceRun), logged under <campaign>/ref. A stopped campaign
	// that is re-run resumes instead of redoing completed work (the
	// "restart" control of Fig. 7): the logged reference is reused.
	if !logged[c.Name+RefSuffix] {
		ref, err := tech.run(r.ops, c, faultmodel.Plan{})
		if err != nil {
			return Summary{}, fmt.Errorf("core: reference run: %w", err)
		}
		if err := r.logExperiment(c.Name+RefSuffix, "", ref); err != nil {
			return Summary{}, err
		}
		r.report(Progress{Campaign: c.Name, Done: 0, Total: c.NExperiments,
			LastOutcome: "reference " + ref.Term.Reason.String()})
	}

	if c.Workers > 1 {
		return r.runParallel(tech, locs, logged, sum)
	}

	rng := rand.New(rand.NewSource(c.Seed))
	for i := 0; i < c.NExperiments; i++ {
		if err := r.checkpoint(); err != nil {
			return sum, err
		}
		planFn := c.Model.Plan
		if r.PlanFunc != nil {
			planFn = r.PlanFunc
		}
		// The plan is drawn even for experiments that are skipped on
		// resume, keeping the PRNG stream aligned so a resumed campaign is
		// bit-identical to an uninterrupted one.
		plan, err := planFn(rng, locs, c.InjectMinTime, c.InjectMaxTime, c.Workload.MaxCycles)
		if err != nil {
			return sum, fmt.Errorf("core: experiment %d: %w", i, err)
		}
		name := fmt.Sprintf("%s/e%04d", c.Name, i)
		if logged[name] {
			continue
		}
		exp, err := tech.run(r.ops, c, plan)
		if err != nil {
			return sum, fmt.Errorf("core: experiment %d: %w", i, err)
		}
		if err := r.logExperiment(name, "", exp); err != nil {
			return sum, err
		}
		r.account(&sum, exp)
		r.report(Progress{Campaign: c.Name, Done: i + 1, Total: c.NExperiments, LastOutcome: outcomeOf(exp)})
		if r.StopCondition != nil && r.StopCondition(sum) {
			return sum, nil
		}
	}
	return sum, nil
}

// account folds one completed experiment into the running summary.
func (r *Runner) account(sum *Summary, exp Experiment) {
	sum.Completed++
	sum.Terminations[exp.Term.Reason.String()]++
	if exp.Term.Reason == target.TerminDetected {
		sum.Detections[exp.Term.Mechanism]++
	}
}

// outcomeOf renders an experiment's termination for progress reporting.
func outcomeOf(exp Experiment) string {
	outcome := exp.Term.Reason.String()
	if exp.Term.Mechanism != "" {
		outcome += " (" + exp.Term.Mechanism + ")"
	}
	return outcome
}

// parallelJob is one pre-planned experiment awaiting a worker.
type parallelJob struct {
	idx  int
	name string
	plan faultmodel.Plan
}

// parallelResult is one finished experiment on its way to the logging stage.
type parallelResult struct {
	idx  int
	name string
	exp  Experiment
	err  error
}

// maxLogBatch caps how many experiment rows accumulate before the logging
// stage flushes them in one batched insert.
const maxLogBatch = 32

// runParallel is the worker-pool campaign engine. Every injection plan is
// pre-drawn here, on the coordinating goroutine, from the single seeded PRNG
// in experiment order — the PRNG stream, and therefore every experiment, is
// bit-identical to a sequential run. Experiments then fan out to
// Campaign.Workers workers, each owning a factory-minted target instance,
// and results funnel back through a logging stage that batches rows into
// dbase.Store.PutExperiments. Resume semantics (completed experiments are
// skipped before dispatch), Pause/Stop (honoured between dispatches;
// in-flight experiments drain and are logged) and StopCondition are
// preserved. Progress is reported in completion order, which is the only
// observable difference from a sequential run.
func (r *Runner) runParallel(tech technique, locs []faultmodel.Location, logged map[string]bool, sum Summary) (Summary, error) {
	c := r.campaign
	if r.Factory == nil {
		return sum, fmt.Errorf("core: campaign %s: parallel execution (Workers=%d) needs a Runner.Factory",
			c.Name, c.Workers)
	}
	planFn := c.Model.Plan
	if r.PlanFunc != nil {
		planFn = r.PlanFunc
	}
	rng := rand.New(rand.NewSource(c.Seed))
	jobs := make([]parallelJob, 0, c.NExperiments)
	skipped := 0
	for i := 0; i < c.NExperiments; i++ {
		// Drawn even for experiments skipped on resume, exactly like the
		// sequential loop: the stream stays aligned.
		plan, err := planFn(rng, locs, c.InjectMinTime, c.InjectMaxTime, c.Workload.MaxCycles)
		if err != nil {
			return sum, fmt.Errorf("core: experiment %d: %w", i, err)
		}
		name := fmt.Sprintf("%s/e%04d", c.Name, i)
		if logged[name] {
			skipped++
			continue
		}
		jobs = append(jobs, parallelJob{idx: i, name: name, plan: plan})
	}

	workers := c.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 0 {
		return sum, nil
	}
	// Mint every worker's target up front so a factory failure aborts
	// before any experiment runs.
	targets := make([]target.Operations, workers)
	for i := range targets {
		ops, err := r.Factory.New()
		if err != nil {
			return sum, fmt.Errorf("core: campaign %s: worker %d: %w", c.Name, i, err)
		}
		targets[i] = ops
	}

	jobCh := make(chan parallelJob)
	resCh := make(chan parallelResult, workers)
	haltDispatch := make(chan struct{})
	var haltOnce sync.Once
	halt := func() { haltOnce.Do(func() { close(haltDispatch) }) }

	var wg sync.WaitGroup
	for _, ops := range targets {
		wg.Add(1)
		go func(ops target.Operations) {
			defer wg.Done()
			ops.SetDetailMode(c.DetailMode)
			defer ops.SetDetailMode(false)
			if cp, ok := ops.(target.Checkpointer); ok {
				cp.ClearCheckpoint()
			}
			for j := range jobCh {
				exp, err := tech.run(ops, c, j.plan)
				resCh <- parallelResult{idx: j.idx, name: j.name, exp: exp, err: err}
			}
		}(ops)
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// The dispatcher honours Pause and Stop between experiments exactly
	// like the sequential loop: checkpoint blocks while paused and aborts
	// dispatch on Stop; in-flight experiments then drain into the log.
	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			if r.checkpoint() != nil {
				return
			}
			select {
			case jobCh <- j:
			case <-haltDispatch:
				return
			}
		}
	}()

	// Logging stage: results are folded into the summary as they arrive and
	// buffered into batched inserts; the batch flushes when full or when the
	// result stream runs momentarily dry, so logging latency stays bounded.
	var (
		pending  []dbase.ExperimentRow
		firstErr error
		condStop bool
	)
	done := skipped
	received := 0
	flush := func() {
		if len(pending) == 0 {
			return
		}
		err := r.store.PutExperiments(pending)
		pending = pending[:0]
		if err != nil && firstErr == nil {
			firstErr = err
			halt()
		}
	}
	handle := func(res parallelResult) {
		received++
		if res.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: experiment %d: %w", res.idx, res.err)
				halt()
			}
			return
		}
		if firstErr != nil {
			return
		}
		pending = append(pending, r.experimentRow(res.name, "", res.exp))
		done++
		r.account(&sum, res.exp)
		r.report(Progress{Campaign: c.Name, Done: done, Total: c.NExperiments, LastOutcome: outcomeOf(res.exp)})
		if !condStop && r.StopCondition != nil && r.StopCondition(sum) {
			condStop = true
			halt()
		}
	}
	for {
		var res parallelResult
		var ok bool
		select {
		case res, ok = <-resCh:
		default:
			flush()
			res, ok = <-resCh
		}
		if !ok {
			break
		}
		handle(res)
		if len(pending) >= maxLogBatch {
			flush()
		}
	}
	flush()

	if firstErr != nil {
		return sum, firstErr
	}
	if condStop {
		return sum, nil
	}
	if received < len(jobs) {
		// Dispatch was cut short by Stop (or context cancellation, which
		// maps to Stop): same contract as the sequential loop.
		return sum, ErrStopped
	}
	return sum, nil
}

// ensureCampaignRow stores the CampaignData row, tolerating an identical
// pre-existing definition (the CLI setup phase may have written it already).
func (r *Runner) ensureCampaignRow() error {
	row := r.campaign.Row(r.ops.Name())
	existing, err := r.store.GetCampaign(r.campaign.Name)
	if err == nil {
		if existing != row {
			return fmt.Errorf("core: campaign %q already exists with a different definition", r.campaign.Name)
		}
		return nil
	}
	if !errors.Is(err, dbase.ErrNotFound) {
		return err
	}
	return r.store.PutCampaign(row)
}

func (r *Runner) report(p Progress) {
	if r.OnProgress != nil {
		r.OnProgress(p)
	}
}

func (r *Runner) experimentRow(name, parent string, exp Experiment) dbase.ExperimentRow {
	return dbase.ExperimentRow{
		ExperimentName:    name,
		ParentExperiment:  parent,
		CampaignName:      r.campaign.Name,
		ExperimentData:    exp.Data(),
		TerminationReason: exp.Term.Reason.String(),
		Mechanism:         exp.Term.Mechanism,
		Cycles:            exp.Term.Cycles,
		Iterations:        exp.Term.Iterations,
		StateVector:       exp.State.Encode(),
	}
}

func (r *Runner) logExperiment(name, parent string, exp Experiment) error {
	return r.store.PutExperiment(r.experimentRow(name, parent, exp))
}

// RerunDetail repeats a logged experiment in detail mode, logging the trace
// under "<experiment>/detail" with parentExperiment set — the exact E1/E2
// scenario the paper uses to motivate the parentExperiment column (§2.3).
// It returns the new experiment's name.
func (r *Runner) RerunDetail(experimentName string) (string, error) {
	row, err := r.store.GetExperiment(experimentName)
	if err != nil {
		return "", err
	}
	if row.CampaignName != r.campaign.Name {
		return "", fmt.Errorf("core: experiment %s belongs to campaign %s, runner holds %s",
			experimentName, row.CampaignName, r.campaign.Name)
	}
	plan, err := parseExperimentPlan(row.ExperimentData)
	if err != nil {
		return "", err
	}
	tech, err := techniqueFor(r.campaign.Technique)
	if err != nil {
		return "", err
	}
	r.ops.SetDetailMode(true)
	defer r.ops.SetDetailMode(false)
	exp, err := tech.run(r.ops, r.campaign, plan)
	if err != nil {
		return "", fmt.Errorf("core: detail rerun of %s: %w", experimentName, err)
	}
	name := experimentName + DetailSuffix
	if err := r.logExperiment(name, experimentName, exp); err != nil {
		return "", err
	}
	return name, nil
}

// parseExperimentPlan recovers the injection plan from an experimentData
// column ("plan=[...] injected=k/n").
func parseExperimentPlan(data string) (faultmodel.Plan, error) {
	const prefix = "plan=["
	start := strings.Index(data, prefix)
	if start < 0 {
		return faultmodel.Plan{}, fmt.Errorf("core: experimentData %q has no plan", data)
	}
	start += len(prefix)
	length := strings.IndexByte(data[start:], ']')
	if length < 0 {
		return faultmodel.Plan{}, fmt.Errorf("core: experimentData %q has unterminated plan", data)
	}
	return faultmodel.ParsePlan(data[start : start+length])
}

// PlanOfExperiment recovers the injection plan from a LoggedSystemState
// experimentData value; analysis code uses it to attribute outcomes to
// fault locations.
func PlanOfExperiment(experimentData string) (faultmodel.Plan, error) {
	return parseExperimentPlan(experimentData)
}
